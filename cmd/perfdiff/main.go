// Command perfdiff compares two committed perf baselines
// (BENCH_*.json) workload by workload and prints the wall-time,
// allocation and simulated-seconds deltas with a pass/fail verdict per
// row against the regression gate's thresholds:
//
//	perfdiff BENCH_0006.json BENCH_0008.json
//
// The exit code is 1 when any workload breaches a gate threshold and 0
// otherwise, so the tool doubles as a gate on pre-captured files; CI
// runs it after the live perf gate to print the margins even on a
// pass.
package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: perfdiff BEFORE.json AFTER.json")
		os.Exit(2)
	}
	before, err := bench.ReadPerfBaseline(os.Args[1])
	if err != nil {
		fatal(err)
	}
	after, err := bench.ReadPerfBaseline(os.Args[2])
	if err != nil {
		fatal(err)
	}
	fmt.Printf("perf baseline diff: %s -> %s\n", os.Args[1], os.Args[2])
	_, breached := bench.PerfDiff(os.Stdout, before, after)
	if breached {
		fmt.Println("perfdiff: at least one workload breaches the gate thresholds")
		os.Exit(1)
	}
	fmt.Println("perfdiff: all shared workloads within gate thresholds")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfdiff:", err)
	os.Exit(2)
}
