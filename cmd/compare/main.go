// Command compare runs every distributed strategy side by side at one
// configuration and prints a verdict table: the paper's pipeline
// (sequential and overlapped), the Quiver baseline (GPU and UVA), and
// the 1D-partitioned sampling baseline.
//
//	compare -dataset products -profile small -p 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/distsample"
	"repro/internal/pipeline"
)

func main() {
	var (
		dataset   = flag.String("dataset", "products", "products, protein, papers")
		profile   = flag.String("profile", "small", cliutil.ProfileUsage)
		p         = flag.Int("p", 8, "simulated GPUs")
		maxB      = flag.Int("maxbatches", 0, "cap batches per epoch (0 = all)")
		seed      = flag.Int64("seed", 1, "seed")
		allreduce = flag.String("allreduce", "default", cluster.AllReduceFlagUsage)
		alltoall  = flag.String("alltoall", "default", cluster.AllToAllFlagUsage)
		topology  = flag.String("topology", "ideal", cluster.TopologyFlagUsage)
		backend   = flag.String("backend", "default", cluster.BackendFlagUsage)
	)
	flag.Parse()

	coll, err := cluster.ParseCollectives(*allreduce, *alltoall)
	if err != nil {
		fatal(err)
	}
	topo, err := cluster.ParseTopology(*topology)
	if err != nil {
		fatal(err)
	}
	be, err := cluster.ParseBackend(*backend)
	if err != nil {
		fatal(err)
	}

	prof, err := cliutil.ParseProfile(*profile)
	if err != nil {
		fatal(err)
	}
	d, err := datasets.ByName(*dataset, prof)
	if err != nil {
		fatal(err)
	}
	c := bench.CFor(*p)
	k := bench.KFor(*p, d.NumBatches())
	fmt.Printf("dataset=%s p=%d c=%d | per-epoch simulated seconds\n", *dataset, *p, c)
	fmt.Printf("%-28s %10s %10s %10s %10s\n", "system", "sampling", "fetch", "prop", "total")

	row := func(name string, e pipeline.EpochStats) {
		fmt.Printf("%-28s %10.4f %10.4f %10.4f %10.4f\n",
			name, e.Sampling, e.FeatureFetch, e.Propagation, e.Total)
	}

	ours, err := pipeline.Run(d, pipeline.Config{
		P: *p, C: c, K: k, MaxBatches: *maxB, Seed: *seed, Collectives: coll, Topology: topo, Backend: be})
	if err != nil {
		fatal(err)
	}
	row("bulk pipeline (replicated)", ours.LastEpoch())

	over, err := pipeline.Run(d, pipeline.Config{
		P: *p, C: c, K: maxInt(d.NumBatches()/4, *p), MaxBatches: *maxB, Seed: *seed, Overlap: true,
		Collectives: coll, Topology: topo, Backend: be})
	if err != nil {
		fatal(err)
	}
	row("bulk pipeline (overlapped)", over.LastEpoch())

	if *p >= 4 && (*p/2)%2 == 0 {
		part, err := pipeline.Run(d, pipeline.Config{
			P: *p, C: 2, K: k, MaxBatches: *maxB, Seed: *seed,
			Algorithm: pipeline.GraphPartitioned, SparsityAware: true, Collectives: coll,
			Topology: topo, Backend: be})
		if err != nil {
			fatal(err)
		}
		row("bulk pipeline (partitioned)", part.LastEpoch())
	}

	quiver, err := baseline.RunQuiver(d, baseline.QuiverConfig{
		P: *p, MaxBatches: *maxB, Seed: *seed, Collectives: coll, Topology: topo, Backend: be})
	if err != nil {
		fatal(err)
	}
	row("quiver strategy (GPU)", quiver.LastEpoch())

	uva, err := baseline.RunQuiver(d, baseline.QuiverConfig{
		P: *p, UVA: true, MaxBatches: *maxB, Seed: *seed, Collectives: coll, Topology: topo, Backend: be})
	if err != nil {
		fatal(err)
	}
	row("quiver strategy (UVA)", uva.LastEpoch())

	// 1D sampling baseline (sampling only — no training pipeline).
	batches := d.Batches()
	if *maxB > 0 && *maxB < len(batches) {
		batches = batches[:*maxB]
	}
	model := cluster.Perlmutter()
	model.Collectives = coll
	model.Topology = topo
	model.Backend = be
	cl := cluster.New(*p, model)
	world := cl.World()
	oneD := distsample.NewOneDSet(*p, d.Graph.Adj)
	res, err := cl.Run(func(r *cluster.Rank) error {
		local := distsample.ReplicatedBatches(*p, r.ID, batches)
		distsample.SampleSAGE1D(r, oneD[r.ID], world, local, d.Fanouts, *seed)
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-28s %10.4f %10s %10s %10s\n", "1D-partitioned sampling",
		res.SimTime, "-", "-", "-")

	best := ours.LastEpoch().Total
	if over.LastEpoch().Total < best {
		best = over.LastEpoch().Total
	}
	fmt.Printf("\nbulk pipeline vs quiver: %.2fx faster\n", quiver.LastEpoch().Total/best)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compare:", err)
	os.Exit(1)
}
