// Command datagen generates, inspects, saves and reloads the synthetic
// dataset analogs (Table 3):
//
//	datagen -profile small                      # print statistics
//	datagen -profile bench -dataset papers -out papers.gnnds
//	datagen -in papers.gnnds                    # inspect a saved file
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/graphio"
)

func main() {
	var (
		profile = flag.String("profile", "small", cliutil.ProfileUsage)
		dataset = flag.String("dataset", "", "one dataset (default: all)")
		out     = flag.String("out", "", "save the selected dataset to this file")
		analyze = flag.Bool("analyze", false, "run graph analytics (triangles, components, k-core)")
		in      = flag.String("in", "", "load and describe a saved dataset file")
		// datagen runs no simulated collectives; the algorithm flags are
		// accepted (and validated) for flag-set parity with trainer,
		// gnnbench and compare, so scripted sweeps can pass one uniform
		// flag set to all four binaries.
		allreduce = flag.String("allreduce", "default", cluster.AllReduceFlagUsage+" (validated only; datagen runs no collectives)")
		alltoall  = flag.String("alltoall", "default", cluster.AllToAllFlagUsage+" (validated only; datagen runs no collectives)")
		topology  = flag.String("topology", "ideal", cluster.TopologyFlagUsage+" (validated only; datagen runs no transfers)")
	)
	flag.Parse()

	if _, err := cluster.ParseCollectives(*allreduce, *alltoall); err != nil {
		fatal(err)
	}
	if _, err := cluster.ParseTopology(*topology); err != nil {
		fatal(err)
	}

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		d, err := graphio.ReadDataset(f)
		if err != nil {
			fatal(err)
		}
		describe(d)
		if *analyze {
			analyzeGraph(d)
		}
		return
	}

	prof, err := cliutil.ParseProfile(*profile)
	if err != nil {
		fatal(err)
	}

	names := datasets.Names()
	if *dataset != "" {
		names = []string{*dataset}
	}
	for _, name := range names {
		d, err := datasets.ByName(name, prof)
		if err != nil {
			fatal(err)
		}
		describe(d)
		if *analyze {
			analyzeGraph(d)
		}
		if *out != "" {
			if len(names) > 1 {
				fatal(fmt.Errorf("-out requires -dataset to select one dataset"))
			}
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			if err := graphio.WriteDataset(f, d); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			info, _ := os.Stat(*out)
			fmt.Printf("  saved to %s (%d bytes)\n", *out, info.Size())
		}
	}
}

func analyzeGraph(d *datasets.Dataset) {
	tri := graph.TriangleCount(d.Graph)
	_, comps := graph.ConnectedComponents(d.Graph)
	core := graph.KCoreDecomposition(d.Graph)
	maxCore := 0
	for _, c := range core {
		if c > maxCore {
			maxCore = c
		}
	}
	fmt.Printf("  triangles=%d components=%d max-core=%d\n", tri, comps, maxCore)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}

func describe(d *datasets.Dataset) {
	degs := d.Graph.Degrees()
	sort.Ints(degs)
	pct := func(q float64) int { return degs[int(q*float64(len(degs)-1))] }
	fmt.Printf("%s: %d vertices, %d edges (avg degree %.1f)\n",
		d.Name, d.Graph.NumVertices(), d.Graph.NumEdges(), d.Graph.AvgDegree())
	fmt.Printf("  degree p50=%d p90=%d p99=%d max=%d\n", pct(0.5), pct(0.9), pct(0.99), degs[len(degs)-1])
	fmt.Printf("  features=%d classes=%d train/val/test=%d/%d/%d\n",
		d.Features.Cols, d.NumClasses, len(d.Train), len(d.Val), len(d.Test))
	fmt.Printf("  batch size=%d batches=%d fanouts=%v ladies width=%d\n",
		d.BatchSize, d.NumBatches(), d.Fanouts, d.LayerWidth)
}
