// Command trainer runs simulated distributed GNN training end to end
// and reports the per-epoch pipeline breakdown and final test accuracy:
//
//	trainer -dataset sbm -p 8 -c 2 -epochs 10
//	trainer -dataset products -profile small -p 16 -c 4 -sampler sage
//	trainer -dataset papers -profile small -p 8 -c 2 -algorithm partitioned
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/autotune"
	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/graphio"
	"repro/internal/pipeline"
)

func main() {
	var (
		dataset   = flag.String("dataset", "sbm", "sbm, products, protein, papers")
		profile   = flag.String("profile", "small", cliutil.ProfileUsage+" (ignored for sbm)")
		p         = flag.Int("p", 4, "simulated GPUs")
		c         = flag.Int("c", 1, "replication factor")
		k         = flag.Int("k", 0, "bulk size (0 or negative = all minibatches at once; with -autotune, 0 = choose for me, -1 = explicitly all)")
		sampler   = flag.String("sampler", "sage", "sage or ladies")
		algorithm = flag.String("algorithm", "replicated", "replicated or partitioned")
		epochs    = flag.Int("epochs", 5, "training epochs")
		lr        = flag.Float64("lr", 0.01, "learning rate")
		seed      = flag.Int64("seed", 1, "seed")
		maxB      = flag.Int("maxbatches", 0, "cap batches per epoch (0 = all)")
		cachePol  = flag.String("cache", "none", "feature cache: none, static, lru")
		cacheFrac = flag.Float64("cachefrac", 0.1, "cache capacity as fraction of vertices")
		dropout   = flag.Float64("dropout", 0, "dropout rate on hidden activations")
		overlap   = flag.Bool("overlap", false, "software-pipeline sampling and feature fetch against propagation (both algorithms; partitioned collectives run on per-stage streams)")
		allreduce = flag.String("allreduce", "default", cluster.AllReduceFlagUsage+" (with -autotune, default = choose by node span)")
		alltoall  = flag.String("alltoall", "default", cluster.AllToAllFlagUsage)
		topology  = flag.String("topology", "ideal", cluster.TopologyFlagUsage)
		backend   = flag.String("backend", "default", cluster.BackendFlagUsage)
		ckptOut   = flag.String("checkpoint", "", "write trained parameters to this file")
		ckptIn    = flag.String("resume", "", "initialize parameters from this checkpoint")
		faults    = flag.String("faults", "default", cliutil.FaultsUsage)
		ckptEvery = flag.String("ckpt-interval", "default", cliutil.CkptIntervalUsage)
		tune      = flag.Bool("autotune", false, "choose c and k automatically by memory model")
	)
	flag.Parse()

	var d *datasets.Dataset
	if *dataset == "sbm" {
		d = datasets.DefaultSBM()
	} else {
		prof, err := cliutil.ParseProfile(*profile)
		if err != nil {
			fatal(err)
		}
		d, err = datasets.ByName(*dataset, prof)
		if err != nil {
			fatal(err)
		}
	}

	coll, err := cluster.ParseCollectives(*allreduce, *alltoall)
	if err != nil {
		fatal(err)
	}
	topo, err := cluster.ParseTopology(*topology)
	if err != nil {
		fatal(err)
	}
	be, err := cluster.ParseBackend(*backend)
	if err != nil {
		fatal(err)
	}
	faultPlan, err := cliutil.ParseFaults(*faults)
	if err != nil {
		fatal(err)
	}
	ckptInterval, err := cliutil.ParseCkptInterval(*ckptEvery)
	if err != nil {
		fatal(err)
	}
	cfg := pipeline.Config{
		P: *p, C: *c, K: *k,
		Sampler: *sampler,
		Epochs:  *epochs, LR: *lr, Seed: *seed,
		MaxBatches:   *maxB,
		Overlap:      *overlap,
		Collectives:  coll,
		Topology:     topo,
		Backend:      be,
		Faults:       faultPlan,
		CkptInterval: ckptInterval,
	}
	if *algorithm == "partitioned" {
		cfg.Algorithm = pipeline.GraphPartitioned
		cfg.SparsityAware = true
	}
	switch *cachePol {
	case "static":
		cfg.CachePolicy = cache.StaticDegree
		cfg.CacheFrac = *cacheFrac
	case "lru":
		cfg.CachePolicy = cache.LRU
		cfg.CacheFrac = *cacheFrac
	case "none":
	default:
		fatal(fmt.Errorf("unknown cache policy %q", *cachePol))
	}

	cfg.Dropout = *dropout
	if *tune {
		tuned, err := autotune.TuneConfig(autotune.DefaultMemoryModel(), d, cfg)
		if err != nil {
			fatal(err)
		}
		cfg = tuned
		fmt.Printf("autotune: c=%d k=%s allreduce=%s\n", cfg.C, kLabel(cfg.K), cfg.Collectives.AllReduce)
	}

	fmt.Printf("dataset=%s vertices=%d edges=%d batches=%d | p=%d c=%d sampler=%s algorithm=%s\n",
		d.Name, d.Graph.NumVertices(), d.Graph.NumEdges(), d.NumBatches(),
		*p, *c, *sampler, *algorithm)

	if *ckptIn != "" {
		fmt.Printf("note: -resume loads parameters for evaluation only (training starts fresh)\n")
	}
	res, err := pipeline.Run(d, cfg)
	if err != nil {
		fatal(err)
	}
	if cfg.K > 0 && res.EffectiveK > cfg.K {
		fmt.Printf("note: bulk size clamped up from k=%d to %d (the schedule samples at least one batch per block per round)\n",
			cfg.K, res.EffectiveK)
	}
	if rec := res.Recovery; rec != nil && rec.Attempts > 1 {
		fmt.Printf("recovery: %d attempt(s), %d failure(s) fired, %.6g sim-sec wasted\n",
			rec.Attempts, len(rec.Failures), rec.WastedSim)
		for i, f := range rec.Failures {
			fmt.Printf("  failure %d: rank %d at %.6g sim-sec, resumed from epoch %d\n",
				i, f.Rank, f.At, rec.RestartEpochs[i])
		}
	}
	if *ckptOut != "" {
		f, err := os.Create(*ckptOut)
		if err != nil {
			fatal(err)
		}
		if err := graphio.WriteParams(f, res.Params); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *ckptOut)
	}
	fmt.Printf("%5s %10s %10s %10s %10s %10s %10s\n",
		"epoch", "sampling", "fetch", "prop", "stall", "total", "loss")
	for e, st := range res.Epochs {
		fmt.Printf("%5d %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			e, st.Sampling, st.FeatureFetch, st.Propagation, st.Stall, st.Total, st.Loss)
	}
	params := res.Params
	if *ckptIn != "" {
		f, err := os.Open(*ckptIn)
		if err != nil {
			fatal(err)
		}
		params, err = graphio.ReadParams(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	acc := pipeline.Evaluate(d, params, cfg, d.Test, nil)
	fmt.Printf("test accuracy: %.3f\n", acc)
}

func kLabel(k int) string {
	if k <= 0 {
		return "all"
	}
	return fmt.Sprint(k)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trainer:", err)
	os.Exit(1)
}
