// Command gnnbench regenerates the paper's tables and figures on the
// simulated cluster. Each experiment id corresponds to one artifact of
// the evaluation section (see DESIGN.md's per-experiment index):
//
//	gnnbench -experiment fig4 -profile bench
//	gnnbench -experiment fig7ladies -profile small
//	gnnbench -experiment all -profile tiny -json results.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/trace"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "one of: table2, table3, fig4, fig5, fig6, fig7sage, fig7ladies, acc, tprob, collectives, contention, scaling, perf, amortization, cachesweep, sparsity, partition, explosion, variance, overlap, sensitivity, straggler, resilience, verify, all")
		profile    = flag.String("profile", "small", cliutil.ProfileUsage)
		gpus       = flag.String("gpus", "", "comma-separated GPU counts (default per experiment)")
		maxBatches = flag.Int("maxbatches", 0, "cap batches per epoch and extrapolate (0 = all)")
		epochs     = flag.Int("epochs", 15, "training epochs for the accuracy experiment")
		seed       = flag.Int64("seed", 20240101, "experiment seed")
		jsonOut    = flag.String("json", "", "also write results as JSON to this file")
		overlap    = flag.Bool("overlap", false, "run the replicated-pipeline training experiments (fig4, fig6) on the overlapped engine schedule; the overlap experiment always measures sequential vs overlapped for both algorithms")
		allreduce  = flag.String("allreduce", "default", cluster.AllReduceFlagUsage+" (the collectives and tprob experiments sweep their algorithm sets regardless)")
		alltoall   = flag.String("alltoall", "default", cluster.AllToAllFlagUsage)
		topology   = flag.String("topology", "ideal", cluster.TopologyFlagUsage+" (the contention experiment sweeps its topology set regardless)")
		backend    = flag.String("backend", "default", cluster.BackendFlagUsage)
		perfOut    = flag.String("perfout", "", "perf experiment: write the measured rows as a new baseline file (BENCH_*.json)")
		perfBase   = flag.String("perfbaseline", "", "perf experiment: compare against this committed baseline and fail on >25% wall-time regression")
		perfReps   = flag.String("perfreps", "default", "perf experiment: repetitions per workload (reported as wall min and median; baselines are captured at the default, 5)")
		sweepWorks = flag.String("sweepworkers", "default", "worker-pool size for sweep experiments (scaling): default = one per CPU, 1 = serial; tables are byte-identical at any setting")
		faultsFlag = flag.String("faults", "default", cliutil.FaultsUsage+" (resilience experiment: overrides the auto fault at ~60% of the clean span)")
		ckptFlag   = flag.String("ckpt-interval", "default", cliutil.CkptIntervalUsage+" (resilience experiment: restricts the interval sweep to this cadence)")
	)
	flag.Parse()

	prof, err := cliutil.ParseProfile(*profile)
	if err != nil {
		fatal(err)
	}
	coll, err := cluster.ParseCollectives(*allreduce, *alltoall)
	if err != nil {
		fatal(err)
	}
	topo, err := cluster.ParseTopology(*topology)
	if err != nil {
		fatal(err)
	}
	be, err := cluster.ParseBackend(*backend)
	if err != nil {
		fatal(err)
	}
	workers, err := cliutil.ParseSweepWorkers(*sweepWorks)
	if err != nil {
		fatal(err)
	}
	reps, err := cliutil.ParsePerfReps(*perfReps)
	if err != nil {
		fatal(err)
	}
	faultPlan, err := cliutil.ParseFaults(*faultsFlag)
	if err != nil {
		fatal(err)
	}
	ckptInterval, err := cliutil.ParseCkptInterval(*ckptFlag)
	if err != nil {
		fatal(err)
	}
	// Experiment-scoped flags error out under any other experiment
	// instead of silently doing nothing.
	for _, c := range []struct{ name, value, want string }{
		{"perfout", *perfOut, "perf"},
		{"perfbaseline", *perfBase, "perf"},
		{"perfreps", *perfReps, "perf"},
		{"sweepworkers", *sweepWorks, "scaling"},
		{"faults", *faultsFlag, "resilience"},
		{"ckpt-interval", *ckptFlag, "resilience"},
	} {
		if err := cliutil.RequireExperiment(c.name, c.value, *experiment, c.want); err != nil {
			fatal(err)
		}
	}
	opts := bench.Options{Profile: prof, MaxBatches: *maxBatches, Seed: *seed, Overlap: *overlap,
		Collectives: coll, Topology: topo, Backend: be,
		SweepWorkers: workers, PerfReps: reps}
	if *gpus != "" {
		counts, err := cliutil.ParseGPUCounts(*gpus)
		if err != nil {
			fatal(err)
		}
		opts.GPUCounts = counts
	}
	report := trace.NewReport(map[string]string{
		"profile":    *profile,
		"seed":       fmt.Sprint(*seed),
		"maxbatches": fmt.Sprint(*maxBatches),
		"overlap":    fmt.Sprint(*overlap),
		"allreduce":  coll.AllReduce.String(),
		"alltoall":   coll.AllToAll.String(),
		"topology":   topo.String(),
		"backend":    be.String(),
	})

	run := func(id string) error {
		switch id {
		case "table2":
			bench.Table2(os.Stdout)
		case "table3":
			rows, err := bench.Table3(os.Stdout, prof)
			report.Add(id, rows)
			return err
		case "fig4":
			rows, err := bench.Fig4(os.Stdout, opts)
			report.Add(id, rows)
			return err
		case "fig5":
			rows, err := bench.Fig5(os.Stdout, opts)
			report.Add(id, rows)
			return err
		case "fig6":
			rows, err := bench.Fig6(os.Stdout, opts)
			report.Add(id, rows)
			return err
		case "fig7sage":
			rows, err := bench.Fig7(os.Stdout, "sage", opts)
			report.Add(id, rows)
			return err
		case "fig7ladies":
			rows, err := bench.Fig7(os.Stdout, "ladies", opts)
			report.Add(id, rows)
			return err
		case "acc":
			res, err := bench.Accuracy(os.Stdout, nil, *epochs, *seed)
			report.Add(id, res)
			return err
		case "tprob":
			p := 16
			if len(opts.GPUCounts) > 0 {
				p = opts.GPUCounts[0]
			}
			rows, err := bench.Tprob(os.Stdout, "products", p, []int{1, 2, 4}, opts)
			report.Add(id, rows)
			return err
		case "collectives":
			rows, err := bench.CollectiveSweep(os.Stdout, opts)
			report.Add(id, rows)
			return err
		case "contention":
			rows, err := bench.Contention(os.Stdout, opts)
			report.Add(id, rows)
			return err
		case "scaling":
			rows, err := bench.Scaling(os.Stdout, opts)
			report.Add(id, rows)
			return err
		case "perf":
			rows, err := bench.Perf(os.Stdout, opts)
			report.Add(id, rows)
			if err != nil {
				return err
			}
			if *perfOut != "" {
				if err := bench.WritePerfBaseline(*perfOut, rows); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote perf baseline %s\n", *perfOut)
			}
			if *perfBase != "" {
				if err := bench.PerfGate(os.Stdout, *perfBase, rows); err != nil {
					return err
				}
			}
			return nil
		case "amortization":
			rows, err := bench.Amortization(os.Stdout, "products", []int{1, 4, 16, 0}, opts)
			report.Add(id, rows)
			return err
		case "cachesweep":
			rows, err := bench.CacheSweep(os.Stdout, "products", 8, []float64{0.05, 0.2}, opts)
			report.Add(id, rows)
			return err
		case "sparsity":
			row, err := bench.SparsityAblation(os.Stdout, "products", 16, 2, opts)
			report.Add(id, row)
			return err
		case "straggler":
			rows, err := bench.StragglerSensitivity(os.Stdout, "products", 8, []float64{1, 1.5, 2, 4}, opts)
			report.Add(id, rows)
			return err
		case "overlap":
			rows, err := bench.OverlapAnalysis(os.Stdout, opts)
			report.Add(id, rows)
			return err
		case "sensitivity":
			rows, err := bench.Sensitivity(os.Stdout, "products", []int{8, 32}, opts)
			report.Add(id, rows)
			return err
		case "variance":
			rows, err := bench.SamplerVariance(os.Stdout, "products", []int{2, 5, 10}, opts)
			report.Add(id, rows)
			return err
		case "verify":
			rows, err := bench.Verify(os.Stdout, opts)
			report.Add(id, rows)
			return err
		case "partition":
			rows, err := bench.PartitionAblation(os.Stdout, "products", []int{8, 16, 32}, opts)
			report.Add(id, rows)
			return err
		case "explosion":
			rows, err := bench.Explosion(os.Stdout, "products", opts)
			report.Add(id, rows)
			return err
		case "resilience":
			p := 16
			if len(opts.GPUCounts) > 0 {
				p = opts.GPUCounts[0]
			}
			var intervals []int
			if ckptInterval > 0 {
				intervals = []int{0, ckptInterval}
			}
			rows, err := bench.Resilience(os.Stdout, "products", p, intervals, faultPlan, opts)
			report.Add(id, rows)
			return err
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*experiment}
	if *experiment == "all" {
		// perf is deliberately not part of "all": it measures the
		// simulator itself (wall-clock), not the paper's figures, and
		// is driven separately by the CI regression gate.
		ids = []string{"table2", "table3", "fig4", "fig5", "fig6", "fig7sage", "fig7ladies",
			"acc", "tprob", "collectives", "contention", "scaling", "amortization", "cachesweep", "sparsity", "partition", "explosion", "variance", "overlap", "sensitivity", "straggler", "resilience", "verify"}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if err := run(id); err != nil {
			fatal(err)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gnnbench:", err)
	os.Exit(1)
}
