// Command gnnvet is the repo's invariant checker: a multichecker over
// the internal/analysis suite. It mechanically enforces what the
// goldens and the perf gate only observe after the fact — that every
// run is a pure function of its config (walltime, globalrand,
// maporder), that all collective cost flows through the single
// charging path (charging), and that all blocking is backend-neutral
// (parkwake).
//
// Usage:
//
//	go run ./cmd/gnnvet ./...
//	go run ./cmd/gnnvet -checks charging,parkwake ./...
//
// gnnvet always analyzes the whole module containing the working
// directory (test files included); the ./... argument is accepted for
// familiarity. Exit status: 0 clean, 1 findings, 2 usage or load
// failure. Findings are suppressed only by an audited marker:
//
//	//gnnvet:allow <check> — <reason>
//
// on the flagged line or the line above; a marker without a reason (or
// naming an unknown check) is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gnnvet [-checks c1,c2] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "gnnvet: only ./... (the whole module) is supported, got %q\n", arg)
			os.Exit(2)
		}
	}
	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnnvet: %v\n", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnnvet: %v\n", err)
		os.Exit(2)
	}
	loader := &analysis.Loader{IncludeTests: true}
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnnvet: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gnnvet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Printf("%s:%d:%d: %s [%s]\n", name, pos.Line, pos.Column, d.Message, d.Check)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "gnnvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
