// Command gnnvet is the repo's invariant checker: a multichecker over
// the internal/analysis suite. It mechanically enforces what the
// goldens and the perf gate only observe after the fact — that every
// run is a pure function of its config (walltime, globalrand,
// maporder), that all collective cost flows through the single
// charging path (charging), that all blocking is backend-neutral
// (parkwake), that arena-backed buffers stay within their epoch
// (arenaescape), and that fault-injection plans are constructed only
// behind the FaultPlan seam (faultseam). Since PR 9 the suite is
// interprocedural: a call-graph
// facts layer summarizes every function in the module, so wrapping a
// violation in a helper — even one in another package — no longer
// hides it.
//
// Usage:
//
//	go run ./cmd/gnnvet ./...
//	go run ./cmd/gnnvet -checks charging,parkwake ./...
//	go run ./cmd/gnnvet -sarif gnnvet.sarif -expectallows 8 ./...
//
// gnnvet always analyzes the whole module containing the working
// directory (test files included); the ./... argument is accepted for
// familiarity. Exit status: 0 clean, 1 findings, 2 usage or load
// failure. Findings are suppressed only by an audited marker:
//
//	//gnnvet:allow <check> — <reason>
//
// on the flagged line or the line above; a marker without a reason (or
// naming an unknown check) is itself a finding. -expectallows N fails
// the run when the module-wide count of well-formed markers differs
// from N, so CI notices silent suppression growth. -json writes the
// findings as a JSON array to a file ("-" for stdout); -sarif writes
// SARIF 2.1.0 for diff annotation, with the engine's fact base
// embedded as a run property.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	jsonOut := flag.String("json", "", "write findings as JSON to this file (\"-\" for stdout)")
	sarifOut := flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
	expectAllows := flag.Int("expectallows", -1, "fail unless the module-wide //gnnvet:allow marker count equals this (-1 disables)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gnnvet [-checks c1,c2] [-json f] [-sarif f] [-expectallows n] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "gnnvet: only ./... (the whole module) is supported, got %q\n", arg)
			os.Exit(2)
		}
	}
	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnnvet: %v\n", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnnvet: %v\n", err)
		os.Exit(2)
	}
	loader := &analysis.Loader{IncludeTests: true}
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnnvet: %v\n", err)
		os.Exit(2)
	}

	results, facts, markers, err := analysis.RunModule(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gnnvet: %v\n", err)
		os.Exit(2)
	}

	var findings []finding
	for _, res := range results {
		for _, d := range res.Diags {
			pos := res.Pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = filepath.ToSlash(rel)
			}
			findings = append(findings, finding{
				File: name, Line: pos.Line, Column: pos.Column,
				Check: d.Check, Message: d.Message, Package: res.Pkg.Path,
			})
		}
	}

	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Column, f.Message, f.Check)
	}
	if err := writeMachine(*jsonOut, *sarifOut, findings, facts); err != nil {
		fmt.Fprintf(os.Stderr, "gnnvet: %v\n", err)
		os.Exit(2)
	}
	if *expectAllows >= 0 && markers != *expectAllows {
		fmt.Fprintf(os.Stderr,
			"gnnvet: module has %d //gnnvet:allow marker(s), expected %d — if a new suppression is justified, update the count in .github/workflows/ci.yml alongside its audit\n",
			markers, *expectAllows)
		os.Exit(1)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gnnvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
	Package string `json:"package"`
}

func writeMachine(jsonOut, sarifOut string, findings []finding, facts *analysis.FactBase) error {
	if jsonOut != "" {
		if findings == nil {
			findings = []finding{} // emit [], not null
		}
		blob, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			return err
		}
		if err := writeOut(jsonOut, append(blob, '\n')); err != nil {
			return err
		}
	}
	if sarifOut != "" {
		blob, err := json.MarshalIndent(sarifLog(findings, facts), "", "  ")
		if err != nil {
			return err
		}
		if err := writeOut(sarifOut, append(blob, '\n')); err != nil {
			return err
		}
	}
	return nil
}

func writeOut(dest string, blob []byte) error {
	if dest == "-" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(dest, blob, 0o644)
}

// sarifLog renders the minimal SARIF 2.1.0 document CI annotation
// needs: one run, one rule per analyzer, one result per finding, and
// the serialized fact base as a run property so a reviewer can see
// what the engine concluded about every function.
func sarifLog(findings []finding, facts *analysis.FactBase) map[string]any {
	rules := make([]map[string]any, 0, len(analysis.Analyzers))
	for _, a := range analysis.Analyzers {
		rules = append(rules, map[string]any{
			"id":               a.Name,
			"shortDescription": map[string]any{"text": a.Doc},
		})
	}
	results := make([]map[string]any, 0, len(findings))
	for _, f := range findings {
		results = append(results, map[string]any{
			"ruleId":  f.Check,
			"level":   "error",
			"message": map[string]any{"text": f.Message},
			"locations": []map[string]any{{
				"physicalLocation": map[string]any{
					"artifactLocation": map[string]any{"uri": f.File},
					"region": map[string]any{
						"startLine":   f.Line,
						"startColumn": f.Column,
					},
				},
			}},
		})
	}
	props := map[string]any{}
	if facts != nil {
		props["gnnvetFacts"] = facts.Export()
	}
	return map[string]any{
		"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":           "gnnvet",
					"informationUri": "https://example.invalid/gnnvet",
					"rules":          rules,
				},
			},
			"results":    results,
			"properties": props,
		}},
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
