// Quickstart: bulk-sample minibatches with the matrix-based approach
// and inspect the result — the 60-second tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A small OGB-Products-like graph with features and labels.
	d := repro.ProductsLike(repro.ProfileFromEnv(repro.Tiny))
	fmt.Printf("graph: %d vertices, %d edges (avg degree %.1f)\n",
		d.Graph.NumVertices(), d.Graph.NumEdges(), d.Graph.AvgDegree())

	// Sample EVERY minibatch of the training set in one bulk call
	// (Equation 1 of the paper): the per-batch Q, P and A^l matrices
	// are stacked so the whole epoch's sampling becomes a handful of
	// large sparse matrix products.
	batches := d.Batches()
	bulk := repro.SampleBulk(repro.GraphSAGE(), d.Graph.Adj, batches, d.Fanouts, 42)

	fmt.Printf("sampled %d minibatches in bulk, %d layers deep\n",
		len(batches), len(bulk.Layers))
	for l, ls := range bulk.Layers {
		fmt.Printf("  layer %d: stacked adjacency %d x %d with %d sampled edges\n",
			l, ls.Adj.Rows, ls.Adj.Cols, ls.Adj.NNZ())
	}
	fmt.Printf("operation counts: %d SpGEMM flops, %d sampling ops, %d extraction ops\n",
		bulk.Cost.ProbFlops, bulk.Cost.SampleOps, bulk.Cost.ExtractOps)

	// Pull one minibatch out of the bulk: its per-layer adjacencies
	// are ready for message passing.
	bg := bulk.ExtractBatch(0)
	fmt.Printf("batch 0: %d seeds, input frontier %d vertices\n",
		len(bg.Seeds), len(bg.InputVertices()))

	// The same sampling, layer-wise with LADIES: one probability
	// distribution per batch instead of per vertex.
	lb := repro.SampleBulk(repro.LADIES(), d.Graph.Adj, batches, []int{d.LayerWidth}, 42)
	fmt.Printf("LADIES: layer frontier %d vertices across %d batches\n",
		lb.Layers[0].Cols.Len(), len(batches))
}
