// Distributed GraphSAGE: train on a simulated 8-GPU cluster with the
// Graph Replicated algorithm and compare against the Quiver-strategy
// baseline — the Figure 4 experiment in miniature.
//
//	go run ./examples/distributed_sage
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	d := repro.ProductsLike(repro.ProfileFromEnv(repro.Small))
	fmt.Printf("Products-like: %d vertices, %d edges, %d minibatches\n",
		d.Graph.NumVertices(), d.Graph.NumEdges(), d.NumBatches())

	// Our pipeline: bulk sampling (communication-free with the graph
	// replicated), 1.5D feature fetching with replication factor 2,
	// then propagation.
	ours, err := repro.Train(d, repro.TrainConfig{P: 8, C: 2, Epochs: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	e := ours.LastEpoch()
	fmt.Printf("bulk pipeline (p=8, c=2): sampling %.4fs fetch %.4fs prop %.4fs total %.4fs\n",
		e.Sampling, e.FeatureFetch, e.Propagation, e.Total)

	// Quiver strategy: per-minibatch sampling, no fetch locality.
	quiver, err := repro.TrainQuiver(d, repro.QuiverConfig{P: 8, Epochs: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	q := quiver.LastEpoch()
	fmt.Printf("quiver baseline (p=8):  sampling %.4fs fetch %.4fs prop %.4fs total %.4fs\n",
		q.Sampling, q.FeatureFetch, q.Propagation, q.Total)
	fmt.Printf("speedup: %.2fx\n", q.Total/e.Total)
}
