// Accuracy experiment (Section 8.1.3 analog): train the 3-layer SAGE
// pipeline on a learnable stochastic-block-model dataset, distributed
// over 4 simulated GPUs, and verify the bulk-sampling optimizations do
// not hurt model quality.
//
//	go run ./examples/accuracy
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	d := repro.LearnableSBM()
	fmt.Printf("SBM: %d vertices, %d classes, %d features\n",
		d.Graph.NumVertices(), d.NumClasses, d.Features.Cols)

	cfg := repro.TrainConfig{P: 4, C: 2, Epochs: 10, Seed: 3, LR: 0.02}
	res, err := repro.Train(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for e, st := range res.Epochs {
		fmt.Printf("epoch %2d: loss %.4f\n", e, st.Loss)
	}
	acc := repro.Evaluate(d, res.Params, cfg, d.Test)
	fmt.Printf("test accuracy: %.3f\n", acc)

	// Single-GPU training must reach the same quality — the paper's
	// point is that distribution and bulk sampling change performance,
	// not the learning outcome.
	solo, err := repro.Train(d, repro.TrainConfig{P: 1, C: 1, Epochs: 10, Seed: 3, LR: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	soloAcc := repro.Evaluate(d, solo.Params, repro.TrainConfig{P: 1, C: 1, Seed: 3}, d.Test)
	fmt.Printf("serial (p=1) accuracy: %.3f — distributed within %.3f\n",
		soloAcc, soloAcc-acc)
}
