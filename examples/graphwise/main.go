// Graph-wise sampling (ClusterGCN) in the matrix framework — the third
// sampler taxonomy of Section 2.2, which the paper leaves as future
// work. Vertices are pre-clustered; a minibatch is a union of clusters
// and its sample is the induced subgraph A_S = Q_R·A·Q_C. The frontier
// never grows, so a deep GNN trains on a constant-size subgraph.
//
//	go run ./examples/graphwise
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/gnn"
)

func main() {
	d := datasets.DefaultSBM()
	fmt.Printf("SBM: %d vertices, %d classes\n", d.Graph.NumVertices(), d.NumClasses)

	// Cluster the graph and form cluster-union minibatches.
	cg := core.NewClusterGCN(d.Graph.Adj, 32, 1)
	batches := cg.Batches(8, 1)
	fmt.Printf("32 clusters -> %d minibatches (first has %d vertices)\n",
		len(batches), len(batches[0]))

	// One bulk call extracts every batch's induced subgraph; the
	// two-layer GNN reuses the same adjacency at each depth.
	bulk := repro.SampleBulk(cg, d.Graph.Adj, batches, []int{0, 0}, 1)
	fmt.Printf("induced bulk adjacency: %d x %d, %d edges kept\n",
		bulk.Layers[0].Adj.Rows, bulk.Layers[0].Adj.Cols, bulk.Layers[0].Adj.NNZ())

	// Train on the induced subgraphs.
	model := gnn.NewModel(gnn.Config{
		In: d.Features.Cols, Hidden: 32, Classes: d.NumClasses, Layers: 2, Seed: 2,
	})
	opt := dense.NewAdam(0.02)
	for epoch := 0; epoch < 6; epoch++ {
		epochBatches := cg.Batches(8, int64(epoch))
		eb := repro.SampleBulk(cg, d.Graph.Adj, epochBatches, []int{0, 0}, int64(epoch))
		total, n := 0.0, 0
		for i := range epochBatches {
			bg := eb.ExtractBatch(i)
			feats := gnn.GatherFeatures(d.Features, bg.InputVertices())
			act, _ := model.Forward(bg, feats)
			labels := make([]int, len(bg.Seeds))
			for j, v := range bg.Seeds {
				labels[j] = d.Labels[v]
			}
			loss, dLogits := gnn.Loss(act, labels)
			grads, _ := model.Backward(act, dLogits)
			opt.Step(model.Params(), grads)
			total += loss
			n++
		}
		fmt.Printf("epoch %d: loss %.4f\n", epoch, total/float64(n))
	}

	// Evaluate on the test split using full-cluster inference.
	correct, count := 0, 0
	testBatches := cg.Batches(8, 99)
	tb := repro.SampleBulk(cg, d.Graph.Adj, testBatches, []int{0, 0}, 99)
	inTest := map[int]bool{}
	for _, v := range d.Test {
		inTest[v] = true
	}
	for i := range testBatches {
		bg := tb.ExtractBatch(i)
		feats := gnn.GatherFeatures(d.Features, bg.InputVertices())
		act, _ := model.Forward(bg, feats)
		pred := dense.Argmax(act.Logits)
		for j, v := range bg.Seeds {
			if inTest[v] {
				count++
				if pred[j] == d.Labels[v] {
					correct++
				}
			}
		}
	}
	if count == 0 {
		log.Fatal("no test vertices covered")
	}
	fmt.Printf("graph-wise test accuracy: %.3f\n", float64(correct)/float64(count))
}
