// Distributed LADIES on a partitioned graph: the paper's Section 5.2
// Graph Partitioned algorithm — to the authors' knowledge the first
// fully distributed LADIES — run on a simulated 8-GPU, c=2 grid, with
// the phase breakdown of Figure 7 and the serial CPU reference.
//
//	go run ./examples/ladies_partitioned
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/distsample"
)

func main() {
	d := repro.PapersLike(repro.ProfileFromEnv(repro.Small))
	fmt.Printf("Papers-like: %d vertices, %d edges, %d minibatches\n",
		d.Graph.NumVertices(), d.Graph.NumEdges(), d.NumBatches())

	// Graph Partitioned LADIES sampling: the adjacency matrix is 1.5D
	// partitioned over a 4x2 grid, P = QA runs as a sparsity-aware
	// staged SpGEMM (Algorithm 2), and extraction splits across
	// process rows.
	res, err := bench.RunPartitionedSampling(d, "ladies", 8, 2, true, 0, 1, 11, repro.Perlmutter())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed LADIES (p=8, c=2):\n")
	fmt.Printf("  probability: %.4fs (comm %.4fs)\n",
		res.Phase(distsample.PhaseProbability), res.PhaseComm(distsample.PhaseProbability))
	fmt.Printf("  sampling:    %.4fs\n", res.Phase(distsample.PhaseSampling))
	fmt.Printf("  extraction:  %.4fs (comm %.4fs)\n",
		res.Phase(distsample.PhaseExtraction), res.PhaseComm(distsample.PhaseExtraction))

	// The serial CPU reference the distributed runs must beat
	// (Section 8.2.2).
	ref, err := baseline.CPULadiesReference(d, 1, 0, 11, repro.Perlmutter())
	if err != nil {
		log.Fatal(err)
	}
	total := res.Phase(distsample.PhaseProbability) +
		res.Phase(distsample.PhaseSampling) + res.Phase(distsample.PhaseExtraction)
	fmt.Printf("CPU reference: %.4fs — distributed is %.1fx faster\n", ref, ref/total)

	// End-to-end training with partitioned LADIES also works:
	train, err := repro.Train(d, repro.TrainConfig{
		P: 8, C: 2, Epochs: 1, Seed: 11,
		Sampler:   "ladies",
		Algorithm: repro.GraphPartitioned, SparsityAware: true,
		MaxBatches: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	e := train.LastEpoch()
	fmt.Printf("end-to-end epoch (extrapolated): sampling %.4fs fetch %.4fs prop %.4fs\n",
		e.Sampling, e.FeatureFetch, e.Propagation)

}
