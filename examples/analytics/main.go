// Graph analytics in the same sparse linear algebra the sampler is
// built on: the semiring SpGEMM/SpMV layer (Combinatorial BLAS /
// GraphBLAST tradition) computing triangles, components, BFS and
// k-cores over a generated dataset.
//
//	go run ./examples/analytics
package main

import (
	"fmt"

	"repro"
	"repro/internal/graph"
	"repro/internal/sparse"
)

func main() {
	d := repro.ProductsLike(repro.ProfileFromEnv(repro.Small))
	g := d.Graph
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Triangle counting via masked SpGEMM: Σ (A ⊙ A·A) / 6.
	fmt.Printf("triangles: %d\n", graph.TriangleCount(g))

	// Weakly connected components.
	_, comps := graph.ConnectedComponents(g)
	fmt.Printf("connected components: %d\n", comps)

	// BFS levels from vertex 0 with or-and frontier SpMV.
	levels := graph.BFSLevels(g, 0)
	hist := map[int]int{}
	maxLevel := 0
	for _, l := range levels {
		hist[l]++
		if l > maxLevel {
			maxLevel = l
		}
	}
	fmt.Printf("BFS from vertex 0: eccentricity %d, frontier sizes:", maxLevel)
	for l := 0; l <= maxLevel; l++ {
		fmt.Printf(" %d", hist[l])
	}
	fmt.Println()

	// k-core decomposition.
	core := graph.KCoreDecomposition(g)
	maxCore := 0
	for _, c := range core {
		if c > maxCore {
			maxCore = c
		}
	}
	fmt.Printf("max k-core: %d\n", maxCore)

	// Semirings directly: 2-hop shortest paths on a weighted toy graph.
	w := sparse.FromEntries(4, 4, [][3]float64{
		{0, 1, 2.5}, {1, 2, 1.0}, {0, 2, 5.0}, {2, 3, 2.0},
	})
	two, _ := sparse.SpGEMMSemiring(w, w, sparse.MinPlus)
	fmt.Printf("min-plus A^2: dist(0,2)=%.1f (direct edge was 5.0)\n", two.At(0, 2))
}
