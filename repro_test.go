package repro

import (
	"bytes"
	"io"
	"testing"
)

// tinyDataset returns a small learnable dataset for fast API tests.
func tinyDataset() *Dataset {
	return SBMDataset(512, 4, 8, 1)
}

func TestPublicSamplers(t *testing.T) {
	d := ProductsLike(Tiny)
	for _, s := range []Sampler{GraphSAGE(), LADIES(), FastGCN()} {
		fanouts := d.Fanouts
		if s.Name() != "GraphSAGE" {
			fanouts = []int{d.LayerWidth}
		}
		bulk := SampleBulk(s, d.Graph.Adj, d.Batches(), fanouts, 1)
		if err := bulk.Validate(d.Graph.NumVertices()); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(bulk.Layers) != len(fanouts) {
			t.Fatalf("%s: layer count", s.Name())
		}
	}
}

func TestPublicClusterGCN(t *testing.T) {
	d := ProductsLike(Tiny)
	cg := NewClusterGCN(d.Graph.Adj, 4, 1)
	batches := cg.Batches(2, 1)
	bulk := SampleBulk(cg, d.Graph.Adj, batches, []int{0}, 1)
	if err := bulk.Validate(d.Graph.NumVertices()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTrainAndEvaluate(t *testing.T) {
	d := tinyDataset()
	cfg := TrainConfig{P: 2, C: 1, Epochs: 2, Seed: 1, LR: 0.02, MaxBatches: 8}
	res, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 || res.Params == nil {
		t.Fatal("train result incomplete")
	}
	acc := Evaluate(d, res.Params, cfg, d.Test)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
}

func TestPublicTrainWithCache(t *testing.T) {
	d := tinyDataset()
	res, err := Train(d, TrainConfig{
		P: 4, C: 1, Epochs: 1, Seed: 2, MaxBatches: 8,
		CachePolicy: CacheStaticDegree, CacheFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LastEpoch().FeatureFetch <= 0 {
		t.Fatal("no fetch time")
	}
}

func TestPublicQuiverBaseline(t *testing.T) {
	d := ProductsLike(Tiny)
	res, err := TrainQuiver(d, QuiverConfig{P: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.LastEpoch().Total <= 0 {
		t.Fatal("baseline produced no time")
	}
}

func TestPublicFigures(t *testing.T) {
	opts := ExperimentOptions{Profile: Tiny, GPUCounts: []int{4}, Seed: 4}
	if _, err := Figure4(io.Discard, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure5(io.Discard, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure6(io.Discard, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure7(io.Discard, "sage", opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Table2(&buf)
	if buf.Len() == 0 {
		t.Fatal("table 2 empty")
	}
	if _, err := Table3(io.Discard, Tiny); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSaveLoadDataset(t *testing.T) {
	d := ProductsLike(Tiny)
	var buf bytes.Buffer
	if err := SaveDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Graph.NumEdges() != d.Graph.NumEdges() {
		t.Fatal("round trip lost edges")
	}
	// Loaded dataset must be usable for sampling directly.
	bulk := SampleBulk(GraphSAGE(), back.Graph.Adj, back.Batches(), back.Fanouts, 5)
	if err := bulk.Validate(back.Graph.NumVertices()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCostModel(t *testing.T) {
	m := Perlmutter()
	if m.GPUsPerNode != 4 {
		t.Fatal("Perlmutter model should have 4 GPUs per node")
	}
}

func TestPublicAccuracyExperiment(t *testing.T) {
	d := tinyDataset()
	res, err := AccuracyExperiment(io.Discard, d, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAccuracy <= 0 {
		t.Fatal("no accuracy measured")
	}
}

func TestPublicAutoTune(t *testing.T) {
	d := ProductsLike(Tiny)
	cfg, err := AutoTune(d, TrainConfig{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.C < 1 || 4%cfg.C != 0 {
		t.Fatalf("bad tuned c: %d", cfg.C)
	}
	if _, err := Train(d, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAnalytics(t *testing.T) {
	d := ProductsLike(Tiny)
	if TriangleCount(d.Graph) <= 0 {
		t.Fatal("no triangles in a dense scale-free graph?")
	}
	_, comps := ConnectedComponents(d.Graph)
	if comps < 1 {
		t.Fatal("no components")
	}
	levels := BFSLevels(d.Graph, 0)
	if levels[0] != 0 {
		t.Fatal("source level wrong")
	}
}

func TestPublicEvaluateFull(t *testing.T) {
	d := tinyDataset()
	cfg := TrainConfig{P: 2, C: 1, Epochs: 3, Seed: 21, LR: 0.02}
	res, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := EvaluateFull(d, res.Params, cfg, d.Test)
	if acc <= 0.3 {
		t.Fatalf("full-batch accuracy %.3f too low", acc)
	}
}

func TestPublicFigure7LadiesAndTables(t *testing.T) {
	opts := ExperimentOptions{Profile: Tiny, GPUCounts: []int{4}, Seed: 22}
	if _, err := Figure7(io.Discard, "ladies", opts); err != nil {
		t.Fatal(err)
	}
}

func TestPublicFaultRecovery(t *testing.T) {
	d := tinyDataset()
	cfg := TrainConfig{P: 4, C: 1, Epochs: 2, Seed: 31, LR: 0.02, MaxBatches: 8}
	clean, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CkptInterval = 1
	cfgCkpt := cfg
	ckpt, err := Train(d, cfgCkpt)
	if err != nil {
		t.Fatal(err)
	}
	cfgCkpt.Faults = FailAt(1, clean.Cluster.SimTime*0.9)
	failed, err := Train(d, cfgCkpt)
	if err != nil {
		t.Fatal(err)
	}
	rec := failed.Recovery
	if rec.Attempts != 2 || len(rec.Failures) != 1 || rec.WastedSim <= 0 {
		t.Fatalf("unexpected recovery stats: %+v", rec)
	}
	if rec.Failures[0] != FaultFailure(1, clean.Cluster.SimTime*0.9) {
		t.Fatalf("fired failure mismatch: %+v", rec.Failures[0])
	}
	for i, got := range failed.Params {
		if got != ckpt.Params[i] {
			t.Fatalf("param %d diverged after recovery: %v != %v", i, got, ckpt.Params[i])
		}
	}
	if _, err := ParseFaults("1@0.5,3@1.25"); err != nil {
		t.Fatal(err)
	}
	if p, err := ParseFaults("default"); err != nil || p != nil {
		t.Fatalf("default spelling: plan %v err %v", p, err)
	}
	if NewFaultPlan(FaultFailure(0, 0.5)) == nil || RandomFaultPlan(1, 4, 2, 0.1, 0.2) == nil {
		t.Fatal("plan constructors returned nil")
	}
}

func TestPublicResilienceExperiment(t *testing.T) {
	opts := ExperimentOptions{Profile: Tiny, Seed: 33, MaxBatches: 2}
	rows, err := ResilienceExperiment(io.Discard, "products", 4, []int{0, 1}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows (2 strategies x 2 intervals), got %d", len(rows))
	}
	for _, r := range rows {
		if r.Attempts < 2 {
			t.Fatalf("%s interval %d: failure did not fire (attempts %d)", r.Strategy, r.Interval, r.Attempts)
		}
	}
}
