package repro_test

import (
	"fmt"

	"repro"
)

// ExampleSampleBulk demonstrates matrix-based bulk sampling: every
// minibatch of an epoch sampled in one call.
func ExampleSampleBulk() {
	d := repro.ProductsLike(repro.Tiny)
	bulk := repro.SampleBulk(repro.GraphSAGE(), d.Graph.Adj, d.Batches(), d.Fanouts, 42)
	fmt.Println("batches:", len(bulk.Batches))
	fmt.Println("layers:", len(bulk.Layers))
	fmt.Println("deepest frontier rows:", bulk.InputFrontier().Len() > 0)
	// Output:
	// batches: 4
	// layers: 2
	// deepest frontier rows: true
}

// ExampleBulkSample_ExtractBatch pulls one minibatch's computation
// graph out of a bulk sample.
func ExampleBulkSample_ExtractBatch() {
	d := repro.ProductsLike(repro.Tiny)
	bulk := repro.SampleBulk(repro.GraphSAGE(), d.Graph.Adj, d.Batches(), d.Fanouts, 42)
	bg := bulk.ExtractBatch(0)
	fmt.Println("seeds:", len(bg.Seeds))
	fmt.Println("depth:", bg.Depth())
	// Output:
	// seeds: 16
	// depth: 2
}

// ExampleTrain runs a small simulated distributed training job.
func ExampleTrain() {
	d := repro.SBMDataset(512, 4, 8, 1)
	res, err := repro.Train(d, repro.TrainConfig{P: 2, C: 1, Epochs: 2, Seed: 1, MaxBatches: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	e := res.LastEpoch()
	fmt.Println("phases recorded:", e.Sampling > 0 && e.FeatureFetch > 0 && e.Propagation > 0)
	// Output:
	// phases recorded: true
}

// ExampleLADIES shows layer-wise sampling probabilities in action: the
// sampled set per batch is capped at the layer width.
func ExampleLADIES() {
	d := repro.ProductsLike(repro.Tiny)
	bulk := repro.SampleBulk(repro.LADIES(), d.Graph.Adj, d.Batches(), []int{d.LayerWidth}, 7)
	batchZero := bulk.Layers[0].Cols.Batch(0)
	fmt.Println("frontier within budget:", len(batchZero) <= d.BatchSize+d.LayerWidth)
	// Output:
	// frontier within budget: true
}

// ExampleNewClusterGCN demonstrates graph-wise sampling: minibatches
// are cluster unions and samples are induced subgraphs.
func ExampleNewClusterGCN() {
	d := repro.ProductsLike(repro.Tiny)
	cg := repro.NewClusterGCN(d.Graph.Adj, 4, 1)
	batches := cg.Batches(2, 1)
	bulk := repro.SampleBulk(cg, d.Graph.Adj, batches, []int{0}, 1)
	ls := bulk.Layers[0]
	fmt.Println("square per-batch blocks:", ls.Adj.Rows == ls.Adj.Cols)
	// Output:
	// square per-batch blocks: true
}
