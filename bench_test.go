// Benchmarks regenerating every table and figure of the paper's
// evaluation section (one Benchmark per artifact — see the
// per-experiment index in DESIGN.md), plus kernel microbenchmarks and
// ablations of the design choices DESIGN.md calls out.
//
// Experiment benches run at the Tiny profile so `go test -bench=.`
// completes quickly; record headline results with
// `go run ./cmd/gnnbench -profile bench`. Custom b.ReportMetric
// columns expose the *simulated* seconds (the figure's y-axis), which
// are the reproduction target; wall-clock ns/op only measures the
// simulator.
package repro

import (
	"io"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/pipeline"
	"repro/internal/sparse"
)

func benchOpts() bench.Options {
	return bench.Options{
		Profile:   datasets.Tiny,
		GPUCounts: []int{4, 8},
		Seed:      20240101,
	}
}

// BenchmarkTable2Systems regenerates the system capability matrix.
func BenchmarkTable2Systems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table2(io.Discard)
	}
}

// BenchmarkTable3Datasets regenerates the dataset statistics table.
func BenchmarkTable3Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(io.Discard, datasets.Tiny); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Pipeline regenerates Figure 4: Graph Replicated
// pipeline vs Quiver per-epoch breakdowns.
func BenchmarkFig4Pipeline(b *testing.B) {
	var last []bench.Fig4Row
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig4(io.Discard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	if len(last) > 0 {
		final := last[len(last)-1]
		b.ReportMetric(final.Total, "sim_sec/epoch")
		b.ReportMetric(final.Speedup, "speedup_vs_quiver")
	}
}

// BenchmarkFig5UVA regenerates Figure 5: Quiver GPU vs UVA sampling.
func BenchmarkFig5UVA(b *testing.B) {
	var last []bench.Fig5Row
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig5(io.Discard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	if len(last) > 0 {
		b.ReportMetric(last[len(last)-1].UVATotal/last[len(last)-1].GPUTotal, "uva_slowdown")
	}
}

// BenchmarkFig6Replication regenerates Figure 6: replication on/off.
func BenchmarkFig6Replication(b *testing.B) {
	var last []bench.Fig6Row
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6(io.Discard, bench.Options{
			Profile: datasets.Tiny, GPUCounts: []int{8}, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	if len(last) > 0 {
		b.ReportMetric(last[0].FetchNone/last[0].FetchRep, "fetch_speedup_from_rep")
	}
}

// BenchmarkFig7Sage regenerates the GraphSAGE half of Figure 7.
func BenchmarkFig7Sage(b *testing.B) {
	benchmarkFig7(b, "sage")
}

// BenchmarkFig7Ladies regenerates the LADIES half of Figure 7,
// including the serial CPU reference.
func BenchmarkFig7Ladies(b *testing.B) {
	benchmarkFig7(b, "ladies")
}

func benchmarkFig7(b *testing.B, sampler string) {
	var last []bench.Fig7Row
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7(io.Discard, sampler, bench.Options{
			Profile: datasets.Tiny, GPUCounts: []int{4}, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	if len(last) > 0 {
		b.ReportMetric(last[0].Total, "sim_sec/sampling")
		b.ReportMetric(last[0].Comm, "sim_sec/comm")
	}
}

// BenchmarkAccuracy regenerates the Section 8.1.3 accuracy check.
func BenchmarkAccuracy(b *testing.B) {
	d := datasets.SBM(datasets.SBMConfig{
		N: 512, Classes: 4, Features: 8,
		IntraDeg: 10, InterDeg: 2, Noise: 0.5,
		BatchSize: 32, Fanouts: []int{5, 3}, LayerWidth: 32, Seed: 9,
	})
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Accuracy(io.Discard, d, 6, 9)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.TestAccuracy
	}
	b.ReportMetric(acc, "test_accuracy")
}

// BenchmarkTprobSweep checks the Section 5.2.1 communication model
// against measured 1.5D SpGEMM communication.
func BenchmarkTprobSweep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Tprob(io.Discard, "products", 4, []int{1, 2}, bench.Options{
			Profile: datasets.Tiny, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[len(rows)-1].Ratio
	}
	b.ReportMetric(ratio, "measured_over_model")
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationBulkVsPerBatch quantifies the bulk-sampling
// amortization: sampling all minibatches in one call vs one call per
// minibatch (k=all vs k=1), the heart of Section 4's contribution.
func BenchmarkAblationBulkVsPerBatch(b *testing.B) {
	d := datasets.ProductsLike(datasets.Tiny)
	batches := d.Batches()
	model := cluster.Perlmutter()

	simTime := func(bulkSize int) float64 {
		cl := cluster.New(1, model)
		res, err := cl.Run(func(r *cluster.Rank) error {
			for lo := 0; lo < len(batches); lo += bulkSize {
				hi := lo + bulkSize
				if hi > len(batches) {
					hi = len(batches)
				}
				bs := core.SampleBulk(core.SAGE{}, d.Graph.Adj, batches[lo:hi], d.Fanouts, 5)
				r.ChargeSparse(bs.Cost.Total())
				r.ChargeKernels(bs.Cost.Kernels)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.SimTime
	}

	var bulk, perBatch float64
	for i := 0; i < b.N; i++ {
		bulk = simTime(len(batches))
		perBatch = simTime(1)
	}
	b.ReportMetric(perBatch/bulk, "bulk_amortization_x")
}

// BenchmarkAblationSparsityAware compares Algorithm 2's sparsity-aware
// row fetching against the oblivious full-block broadcast in the 1.5D
// SpGEMM.
func BenchmarkAblationSparsityAware(b *testing.B) {
	d := datasets.ProductsLike(datasets.Tiny)
	var aware, obliv float64
	for i := 0; i < b.N; i++ {
		ra, err := bench.RunPartitionedSampling(d, "sage", 4, 2, true, 0, 0, 3, cluster.Perlmutter())
		if err != nil {
			b.Fatal(err)
		}
		ro, err := bench.RunPartitionedSampling(d, "sage", 4, 2, false, 0, 0, 3, cluster.Perlmutter())
		if err != nil {
			b.Fatal(err)
		}
		aware = ra.SimTime
		obliv = ro.SimTime
	}
	b.ReportMetric(obliv/aware, "oblivious_over_aware")
}

// --- Kernel microbenchmarks ------------------------------------------

// BenchmarkSpGEMM measures the Gustavson SpGEMM on a Products-like
// probability product (Q·A for one bulk).
func BenchmarkSpGEMM(b *testing.B) {
	d := datasets.ProductsLike(datasets.Small)
	q := core.SAGE{}.BuildQ(core.NewFrontier(d.Batches()), d.Graph.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.SpGEMM(q, d.Graph.Adj)
	}
}

// BenchmarkBulkSampleSAGE measures one full bulk GraphSAGE sampling
// call over every minibatch of the Small Products analog.
func BenchmarkBulkSampleSAGE(b *testing.B) {
	d := datasets.ProductsLike(datasets.Small)
	batches := d.Batches()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SampleBulk(core.SAGE{}, d.Graph.Adj, batches, d.Fanouts, int64(i))
	}
}

// BenchmarkBulkSampleLADIES measures one full bulk LADIES sampling
// call.
func BenchmarkBulkSampleLADIES(b *testing.B) {
	d := datasets.ProductsLike(datasets.Small)
	batches := d.Batches()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SampleBulk(core.LADIES{}, d.Graph.Adj, batches, []int{d.LayerWidth}, int64(i))
	}
}

// BenchmarkITS measures inverse transform sampling on a 256-entry
// distribution.
func BenchmarkITS(b *testing.B) {
	w := make([]float64, 256)
	for i := range w {
		w[i] = float64(i%17) + 1
	}
	rng := core.NewRowRNG(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SampleRowITS(w, 16, rng)
	}
}

// BenchmarkCPULadiesReference measures the serial baseline sampler.
func BenchmarkCPULadiesReference(b *testing.B) {
	d := datasets.ProductsLike(datasets.Tiny)
	var ref float64
	for i := 0; i < b.N; i++ {
		r, err := baseline.CPULadiesReference(d, 1, 0, 1, cluster.Perlmutter())
		if err != nil {
			b.Fatal(err)
		}
		ref = r
	}
	b.ReportMetric(ref, "sim_sec")
}

// BenchmarkGNNForwardBackward measures one training step (forward,
// loss, backward) over a sampled minibatch at example scale.
func BenchmarkGNNForwardBackward(b *testing.B) {
	d := datasets.ProductsLike(datasets.Small)
	bulk := core.SampleBulk(core.SAGE{}, d.Graph.Adj, d.Batches()[:1], d.Fanouts, 1)
	bg := bulk.ExtractBatch(0)
	model := gnn.NewModel(gnn.Config{
		In: d.Features.Cols, Hidden: 64, Classes: d.NumClasses,
		Layers: len(d.Fanouts), Seed: 1,
	})
	feats := gnn.GatherFeatures(d.Features, bg.InputVertices())
	labels := make([]int, len(bg.Seeds))
	for i, v := range bg.Seeds {
		labels[i] = d.Labels[v]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		act, _ := model.Forward(bg, feats)
		_, dLogits := gnn.Loss(act, labels)
		model.Backward(act, dLogits)
	}
}

// BenchmarkPipelineEpoch measures one simulated distributed training
// epoch end to end (p=4 replicated, tiny dataset).
func BenchmarkPipelineEpoch(b *testing.B) {
	d := datasets.ProductsLike(datasets.Tiny)
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Run(d, pipeline.Config{P: 4, C: 2, Epochs: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		total = res.LastEpoch().Total
	}
	b.ReportMetric(total, "sim_sec/epoch")
}

// BenchmarkAblationOverlap reports the measured gain of the staged
// engine's overlapped schedule over the sequential bulk-synchronous
// pipeline at the Tiny profile.
func BenchmarkAblationOverlap(b *testing.B) {
	d := datasets.ProductsLike(datasets.Tiny)
	var speedup float64
	for i := 0; i < b.N; i++ {
		seq, err := pipeline.Run(d, pipeline.Config{P: 2, C: 1, K: 1, Epochs: 1, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		ov, err := pipeline.Run(d, pipeline.Config{P: 2, C: 1, K: 1, Epochs: 1, Seed: 3, Overlap: true})
		if err != nil {
			b.Fatal(err)
		}
		speedup = seq.LastEpoch().Total / ov.LastEpoch().Total
	}
	b.ReportMetric(speedup, "overlap_speedup")
}

// BenchmarkOverlapVsSequentialSmall compares the staged engine's
// overlapped schedule against the sequential one at the Small profile
// — the headline check that prefetching sampling and feature fetch
// onto their own streams shortens the simulated epoch. Both runs share
// a seed, so they train identically; only the schedule differs. A
// quarter-epoch bulk size gives the pipeline rounds to overlap (k=all
// has a single round and nothing to prefetch across).
func BenchmarkOverlapVsSequentialSmall(b *testing.B) {
	d := datasets.ProductsLike(datasets.Small)
	k := d.NumBatches() / 4
	cfg := pipeline.Config{P: 4, C: 2, K: k, Epochs: 1, Seed: 41}
	var seqT, ovT float64
	for i := 0; i < b.N; i++ {
		seq, err := pipeline.Run(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ovCfg := cfg
		ovCfg.Overlap = true
		ov, err := pipeline.Run(d, ovCfg)
		if err != nil {
			b.Fatal(err)
		}
		seqT, ovT = seq.LastEpoch().Total, ov.LastEpoch().Total
		if ovT > seqT {
			b.Fatalf("overlapped epoch (%v) slower than sequential (%v)", ovT, seqT)
		}
		if ov.LastEpoch().Loss != seq.LastEpoch().Loss {
			b.Fatalf("overlap changed training: loss %v vs %v",
				ov.LastEpoch().Loss, seq.LastEpoch().Loss)
		}
	}
	b.ReportMetric(seqT, "seq_sim_sec/epoch")
	b.ReportMetric(ovT, "overlap_sim_sec/epoch")
	b.ReportMetric(seqT/ovT, "overlap_speedup")
}

// BenchmarkOverlapVsSequentialPartitionedSmall compares the staged
// engine's overlapped schedule against the sequential one for the 1.5D
// Graph Partitioned algorithm at the Small profile — the stream-safe
// collectives check: the sampling stage drives grid collectives from
// its own prefetch stream (per-stage communicator clones) while the
// fetch all-to-allv and the gradient all-reduce run on theirs, and the
// training outcome must not change.
func BenchmarkOverlapVsSequentialPartitionedSmall(b *testing.B) {
	d := datasets.ProductsLike(datasets.Small)
	k := d.NumBatches() / 4
	cfg := pipeline.Config{P: 4, C: 2, K: k, Epochs: 1, Seed: 41,
		Algorithm: pipeline.GraphPartitioned, SparsityAware: true}
	var seqT, ovT float64
	for i := 0; i < b.N; i++ {
		seq, err := pipeline.Run(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ovCfg := cfg
		ovCfg.Overlap = true
		ov, err := pipeline.Run(d, ovCfg)
		if err != nil {
			b.Fatal(err)
		}
		seqT, ovT = seq.LastEpoch().Total, ov.LastEpoch().Total
		if ovT > seqT {
			b.Fatalf("overlapped partitioned epoch (%v) slower than sequential (%v)", ovT, seqT)
		}
		if ov.LastEpoch().Loss != seq.LastEpoch().Loss {
			b.Fatalf("overlap changed partitioned training: loss %v vs %v",
				ov.LastEpoch().Loss, seq.LastEpoch().Loss)
		}
	}
	b.ReportMetric(seqT, "seq_sim_sec/epoch")
	b.ReportMetric(ovT, "overlap_sim_sec/epoch")
	b.ReportMetric(seqT/ovT, "overlap_speedup")
}

// BenchmarkSemiringSpGEMM measures the generic semiring kernel against
// the specialized arithmetic one (BenchmarkSpGEMM).
func BenchmarkSemiringSpGEMM(b *testing.B) {
	d := datasets.ProductsLike(datasets.Tiny)
	a := d.Graph.Adj
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.SpGEMMSemiring(a, a, sparse.OrAnd)
	}
}

// BenchmarkTriangleCount measures the masked-SpGEMM analytics path.
func BenchmarkTriangleCount(b *testing.B) {
	d := datasets.ProductsLike(datasets.Tiny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.TriangleCount(d.Graph)
	}
}
