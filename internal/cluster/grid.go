package cluster

import "fmt"

// Grid arranges p ranks as the p/c × c process grid of Section 5.2:
// rank = i*c + j sits at grid position P(i, j). Block rows of the 1.5D
// partitioned matrices live on process rows (replicated across the c
// members of a row); process columns each hold one full copy of every
// block-row-partitioned matrix.
type Grid struct {
	P, C int
	Rows int // P / C

	rowComms []*Comm // indexed by grid row i: members {i*c .. i*c+c-1}
	colComms []*Comm // indexed by grid column j: members {j, c+j, ...}
	world    *Comm
}

// NewGrid builds the row and column communicators for a p/c × c grid.
// c must divide p.
func NewGrid(cl *Cluster, p, c int) *Grid {
	if p != cl.N {
		panic(fmt.Sprintf("cluster: grid over %d ranks on a %d-rank cluster", p, cl.N))
	}
	if c <= 0 || p%c != 0 {
		panic(fmt.Sprintf("cluster: replication factor %d must divide p=%d", c, p))
	}
	g := &Grid{P: p, C: c, Rows: p / c}
	for i := 0; i < g.Rows; i++ {
		members := make([]int, c)
		for j := 0; j < c; j++ {
			members[j] = i*c + j
		}
		g.rowComms = append(g.rowComms, cl.NewComm(members))
	}
	for j := 0; j < c; j++ {
		members := make([]int, g.Rows)
		for i := 0; i < g.Rows; i++ {
			members[i] = i*c + j
		}
		g.colComms = append(g.colComms, cl.NewComm(members))
	}
	g.world = cl.World()
	return g
}

// RowIndex returns the grid row i of a rank.
func (g *Grid) RowIndex(rank int) int { return rank / g.C }

// ColIndex returns the grid column j of a rank.
func (g *Grid) ColIndex(rank int) int { return rank % g.C }

// RankAt returns the global rank at grid position (i, j).
func (g *Grid) RankAt(i, j int) int { return i*g.C + j }

// RowComm returns the communicator over the rank's process row P(i,:).
func (g *Grid) RowComm(rank int) *Comm { return g.rowComms[g.RowIndex(rank)] }

// ColComm returns the communicator over the rank's process column
// P(:,j).
func (g *Grid) ColComm(rank int) *Comm { return g.colComms[g.ColIndex(rank)] }

// World returns the all-ranks communicator.
func (g *Grid) World() *Comm { return g.world }
