package cluster

import "testing"

func BenchmarkAllReduceSum(b *testing.B) {
	cl := New(8, Perlmutter())
	world := cl.World()
	x := make([]float64, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Run(func(r *Rank) error {
			AllReduceSum(world, r, x)
			return nil
		})
	}
}

func BenchmarkAllToAllv(b *testing.B) {
	cl := New(8, Perlmutter())
	world := cl.World()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Run(func(r *Rank) error {
			parts := make([][]float64, 8)
			for j := range parts {
				parts[j] = make([]float64, 1000)
			}
			AllToAllv(world, r, parts, func(p []float64) int { return 8 * len(p) })
			return nil
		})
	}
}
