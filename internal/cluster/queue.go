package cluster

import "repro/internal/cluster/sim"

// Queue is a bounded FIFO handoff between two concurrent timelines of
// one rank (a staged pipeline's item and credit channels). It is the
// backend-neutral replacement for a buffered channel: under the
// goroutine backend it is one, while under the DES backend senders and
// receivers park on the event scheduler instead of blocking
// goroutines. Queues carry no simulated time themselves — like the
// channels they replace, simulated backpressure is expressed by the
// values flowing through them (item completion times, credit clocks)
// and charged explicitly by the stages.
type Queue struct {
	cl  *Cluster
	des bool

	ch chan any // goroutine backend

	// DES state: ring buffer plus parked peers. The scheduler
	// guarantees a single runnable task, so no locking — the
	// happens-before chain runs through its handoff channels.
	capacity int
	buf      []any
	sendW    []queueWaiter // parked senders, each carrying its pending value
	recvW    []*sim.Task   // parked receivers
}

type queueWaiter struct {
	task *sim.Task
	val  any
}

// NewQueue creates a bounded queue with the given capacity (values < 1
// are treated as 1) on this rank's backend.
func (r *Rank) NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{cl: r.cl, capacity: capacity, des: r.task != nil}
	if !q.des {
		q.ch = make(chan any, capacity)
	}
	return q
}

// Prefill enqueues v before the queue is in use (initial credits); it
// must not be called once Send/Recv traffic has started and panics if
// the queue is already full.
func (q *Queue) Prefill(v any) {
	if !q.des {
		select {
		case q.ch <- v:
		default:
			panic("cluster: Prefill on a full queue")
		}
		return
	}
	if len(q.buf) >= q.capacity {
		panic("cluster: Prefill on a full queue")
	}
	q.buf = append(q.buf, v)
}

// Send enqueues v, blocking (parking, under DES) while the queue is
// full.
func (q *Queue) Send(r *Rank, v any) {
	if !q.des {
		q.ch <- v
		return
	}
	if len(q.buf) < q.capacity {
		q.buf = append(q.buf, v)
		if len(q.recvW) > 0 {
			w := q.recvW[0]
			q.recvW = q.recvW[1:]
			q.cl.sched.Ready(w, r.clock)
		}
		return
	}
	// Full: park with the value; the receiver that frees a slot moves
	// it into the buffer and readies us.
	q.sendW = append(q.sendW, queueWaiter{task: r.task, val: v})
	r.task.Park()
}

// Recv dequeues the oldest value, blocking (parking, under DES) while
// the queue is empty.
func (q *Queue) Recv(r *Rank) any {
	if !q.des {
		return <-q.ch
	}
	for len(q.buf) == 0 {
		q.recvW = append(q.recvW, r.task)
		r.task.Park()
	}
	v := q.buf[0]
	q.buf = q.buf[1:]
	if len(q.sendW) > 0 {
		w := q.sendW[0]
		q.sendW = q.sendW[1:]
		q.buf = append(q.buf, w.val)
		q.cl.sched.Ready(w.task, r.clock)
	}
	return v
}

// Forked is the join handle of a stream forked with ForkStream.
type Forked struct {
	stream *Rank

	ch chan struct{} // goroutine backend: closed when fn returns

	// DES state.
	cl          *Cluster
	done        bool
	waiter      *sim.Task
	waiterClock float64
}

// ForkStream runs fn concurrently on a newly forked stream of r (see
// Rank.Stream) and returns a handle to join it. Under the goroutine
// backend fn gets its own goroutine; under DES it becomes a scheduler
// task readied at the fork's simulated time, sharing the rank id for
// event tie-breaking.
func (r *Rank) ForkStream(name string, fn func(s *Rank)) *Forked {
	s := r.Stream(name)
	f := &Forked{stream: s, cl: r.cl}
	if r.task != nil {
		sched := r.cl.sched
		t := sched.Spawn(r.ID, func(t *sim.Task) {
			s.task = t
			fn(s)
			f.done = true
			if f.waiter != nil {
				sched.Ready(f.waiter, f.waiterClock)
			}
		})
		sched.Ready(t, s.clock)
		return f
	}
	f.ch = make(chan struct{})
	go func() {
		defer close(f.ch)
		fn(s)
	}()
	return f
}

// Join blocks r until the forked stream's body has returned. Join
// advances no simulated time — like joining a goroutine, it only
// synchronizes control flow; makespans aggregate through MaxClock.
func (f *Forked) Join(r *Rank) {
	if f.ch != nil {
		<-f.ch
		return
	}
	if f.done {
		return
	}
	f.waiter = r.task
	f.waiterClock = r.clock
	r.task.Park()
}
