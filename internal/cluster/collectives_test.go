package cluster

import (
	"math"
	"testing"
)

// runWorld executes body on a fresh p-rank cluster under the given
// algorithm table and returns the result.
func runWorld(t *testing.T, p int, tbl Collectives, body func(c *Comm, r *Rank)) *Result {
	t.Helper()
	cl := New(p, testModel())
	cl.Model.Collectives = tbl
	world := cl.World()
	res, err := cl.Run(func(r *Rank) error {
		body(world, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func almost(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-12*(math.Abs(a)+math.Abs(b))
}

// Each algorithm's charged cost must match its analytic formula: the
// measured makespan of one collective with synchronized entry equals
// the Predict* closed form (plus the documented memory term for
// all-reduce).
func TestChargedCostsMatchAnalyticFormulas(t *testing.T) {
	const p = 8 // 2 nodes of 4 under testModel
	const bytes = 1 << 16
	model := testModel()
	link := InterNode

	cases := []struct {
		name string
		tbl  Collectives
		body func(c *Comm, r *Rank)
		want float64
	}{
		{"broadcast/flat", Collectives{},
			func(c *Comm, r *Rank) { Broadcast(c, r, 0, 0, bytes) },
			PredictBroadcast(model, FlatTree, link, p, bytes)},
		{"broadcast/ring", Collectives{AllReduce: Ring},
			func(c *Comm, r *Rank) { Broadcast(c, r, 0, 0, bytes) },
			PredictBroadcast(model, Ring, link, p, bytes)},
		{"allgather/flat", Collectives{},
			func(c *Comm, r *Rank) { AllGather(c, r, 0, bytes) },
			PredictAllGather(model, FlatTree, link, p, p*bytes, bytes)},
		{"allgather/ring", Collectives{AllReduce: Ring},
			func(c *Comm, r *Rank) { AllGather(c, r, 0, bytes) },
			PredictAllGather(model, Ring, link, p, p*bytes, bytes)},
		{"allreduce/flat", Collectives{},
			func(c *Comm, r *Rank) { AllReduceSum(c, r, make([]float64, bytes/8)) },
			PredictAllReduce(model, FlatTree, link, p, bytes) +
				float64(AllReduceMemBytes(FlatTree, p, bytes))/model.MemBW[GPU]},
		{"allreduce/ring", Collectives{AllReduce: Ring},
			func(c *Comm, r *Rank) { AllReduceSum(c, r, make([]float64, bytes/8)) },
			PredictAllReduce(model, Ring, link, p, bytes) +
				float64(AllReduceMemBytes(Ring, p, bytes))/model.MemBW[GPU]},
		{"allreduce/hier", Collectives{AllReduce: Hierarchical},
			func(c *Comm, r *Rank) { AllReduceSum(c, r, make([]float64, bytes/8)) },
			PredictHierAllReduce(model, []int{0, 1, 2, 3, 4, 5, 6, 7}, bytes)},
		{"alltoallv/flat", Collectives{},
			func(c *Comm, r *Rank) {
				AllToAllv(c, r, make([]int, p), func(int) int { return bytes / p })
			},
			PredictAllToAllv(model, FlatTree, link, p, (bytes/p)*(p-1))},
		{"alltoallv/pairwise", Collectives{AllToAll: Pairwise},
			func(c *Comm, r *Rank) {
				AllToAllv(c, r, make([]int, p), func(int) int { return bytes / p })
			},
			PredictAllToAllv(model, Pairwise, link, p, (bytes/p)*(p-1))},
	}
	for _, cse := range cases {
		res := runWorld(t, p, cse.tbl, cse.body)
		if !almost(res.SimTime, cse.want) {
			t.Errorf("%s: measured %.17g, analytic %.17g", cse.name, res.SimTime, cse.want)
		}
	}
}

// The schedules must trade exactly as designed: ring broadcast beats
// the binomial tree at large messages (its β term does not grow with
// log p), pairwise all-to-allv beats the linear exchange at small
// messages (log p latency terms instead of p−1), and each loses on the
// other end.
func TestAlgorithmCrossovers(t *testing.T) {
	m := testModel()
	big, small := 4<<20, 1<<10
	if r, f := PredictBroadcast(m, Ring, InterNode, 8, big), PredictBroadcast(m, FlatTree, InterNode, 8, big); r >= f {
		t.Errorf("ring broadcast (%v) not faster than flat (%v) at %d bytes", r, f, big)
	}
	if r, f := PredictBroadcast(m, Ring, InterNode, 8, small), PredictBroadcast(m, FlatTree, InterNode, 8, small); r <= f {
		t.Errorf("ring broadcast (%v) not slower than flat (%v) at %d bytes", r, f, small)
	}
	if pw, f := PredictAllToAllv(m, Pairwise, InterNode, 64, small), PredictAllToAllv(m, FlatTree, InterNode, 64, small); pw >= f {
		t.Errorf("pairwise all-to-allv (%v) not faster than flat (%v) at %d bytes", pw, f, small)
	}
	if pw, f := PredictAllToAllv(m, Pairwise, InterNode, 64, 64<<20), PredictAllToAllv(m, FlatTree, InterNode, 64, 64<<20); pw <= f {
		t.Errorf("pairwise all-to-allv (%v) not slower than flat (%v) at large bytes", pw, f)
	}
}

// Algorithm selection changes the schedule, never the result values.
func TestAllReduceValuesIdenticalAcrossAlgorithms(t *testing.T) {
	for _, tbl := range []Collectives{
		{},
		{AllReduce: Ring},
		{AllReduce: Hierarchical},
	} {
		runWorld(t, 8, tbl, func(c *Comm, r *Rank) {
			x := []float64{float64(r.ID), 2, float64(3 * r.ID)}
			got := AllReduceSum(c, r, x)
			want := []float64{28, 16, 84}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Errorf("table %+v slot %d: got %v want %v", tbl, i, got[i], want[i])
				}
			}
		})
	}
}

// Per-link byte counters: a flat all-reduce spanning nodes books every
// member's payload on the inter-node tier, while the hierarchical
// schedule books inter-node bytes for the node leaders only — traffic
// proportional to node count, the property the paper's hierarchical
// all-reduce exists for.
func TestLinkByteCountersPerAlgorithm(t *testing.T) {
	const bytes = 1 << 13
	body := func(c *Comm, r *Rank) { AllReduceSum(c, r, make([]float64, bytes/8)) }

	flat := runWorld(t, 8, Collectives{}, body).LinkTraffic()
	if flat[InterNode] != 8*bytes || flat[IntraNode] != 0 {
		t.Fatalf("flat traffic: %v", flat)
	}

	hier := runWorld(t, 8, Collectives{AllReduce: Hierarchical}, body).LinkTraffic()
	if hier[InterNode] != 2*bytes { // 2 node leaders
		t.Fatalf("hier inter-node traffic = %d, want %d", hier[InterNode], 2*bytes)
	}
	if hier[IntraNode] == 0 {
		t.Fatal("hier booked no intra-node traffic")
	}

	// ChargeLink feeds the same counters (host tier).
	cl := New(1, testModel())
	res, err := cl.Run(func(r *Rank) error {
		r.SetPhase("uva")
		r.ChargeLink(HostLink, 4096)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PhaseLinkTraffic("uva"); got[HostLink] != 4096 {
		t.Fatalf("host traffic = %v", got)
	}
}

// The satellite fix: AllReduceGeneric charges the local-reduction
// memory traffic the way AllReduceSum does, costing on the maximum
// contribution size across members.
func TestAllReduceGenericChargesMemOnMax(t *testing.T) {
	const p = 4
	const maxBytes = 400 // rank 3's contribution
	res := runWorld(t, p, Collectives{}, func(c *Comm, r *Rank) {
		bytes := 100 * (r.ID + 1)
		AllReduceGeneric(c, r, r.ID, bytes, func(a, b int) int { return a + b })
	})
	m := testModel()
	want := PredictAllReduce(m, FlatTree, IntraNode, p, maxBytes) +
		float64(AllReduceMemBytes(FlatTree, p, maxBytes))/m.MemBW[GPU]
	if !almost(res.SimTime, want) {
		t.Fatalf("generic all-reduce charged %.17g, want %.17g (β and mem on max contribution)", res.SimTime, want)
	}
}

func TestParseCollectives(t *testing.T) {
	tbl, err := ParseCollectives("ring", "pairwise")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.AllReduce != Ring || tbl.AllToAll != Pairwise {
		t.Fatalf("parsed %+v", tbl)
	}
	if tbl, err = ParseCollectives("", ""); err != nil || tbl != (Collectives{}) {
		t.Fatalf("default parse: %+v, %v", tbl, err)
	}
	if _, err = ParseCollectives("warp", ""); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err = ParseCollectives("pairwise", ""); err == nil {
		t.Fatal("pairwise all-reduce accepted")
	}
	if _, err = ParseCollectives("", "hier"); err == nil {
		t.Fatal("hierarchical all-to-allv accepted")
	}
	for _, a := range []CollectiveAlgorithm{DefaultAlgorithm, FlatTree, Ring, Pairwise, Hierarchical} {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Fatalf("%v does not round-trip (%v, %v)", a, back, err)
		}
	}
}

// Merge overlays only explicit entries.
func TestCollectivesMerge(t *testing.T) {
	base := Collectives{AllReduce: Hierarchical, AllToAll: FlatTree}
	got := base.Merge(Collectives{AllToAll: Pairwise})
	if got.AllReduce != Hierarchical || got.AllToAll != Pairwise {
		t.Fatalf("merged %+v", got)
	}
	if got = base.Merge(Collectives{}); got != base {
		t.Fatalf("zero merge changed table: %+v", got)
	}
}
