package sim

import (
	"math/rand"
	"testing"
)

// TestEventQueuePopsKeyOrder is the determinism property test: however
// events are interleaved at push time — including many sharing one
// timestamp — they pop in strict (time, rank, seq) order.
func TestEventQueuePopsKeyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 200; trial++ {
		var q eventQueue
		n := 1 + rng.Intn(64)
		// A tiny time domain forces heavy timestamp collisions, the
		// regime the (rank, seq) tie-break exists for.
		times := []float64{0, 0, 1e-6, 1e-6, 2e-6}
		var seq uint64
		keys := make([]Key, 0, n)
		for i := 0; i < n; i++ {
			k := Key{
				Time: times[rng.Intn(len(times))],
				Rank: rng.Intn(4),
				Seq:  seq,
			}
			seq++
			q.push(event{key: k})
			keys = append(keys, k)
		}
		var prev Key
		for i := 0; i < n; i++ {
			got := q.pop().key
			if i > 0 && got.Less(prev) {
				t.Fatalf("trial %d: pop %d out of order: %+v after %+v", trial, i, got, prev)
			}
			if i > 0 && !prev.Less(got) {
				t.Fatalf("trial %d: pop %d not strictly increasing: %+v then %+v", trial, i, prev, got)
			}
			prev = got
		}
		if q.Len() != 0 {
			t.Fatalf("trial %d: %d events left after draining", trial, q.Len())
		}
		_ = keys
	}
}

// TestKeyOrdering pins the tie-breaking rule: time first, then rank,
// then sequence number.
func TestKeyOrdering(t *testing.T) {
	cases := []struct {
		a, b Key
		less bool
	}{
		{Key{1, 0, 0}, Key{2, 0, 0}, true},
		{Key{2, 0, 9}, Key{1, 5, 0}, false},
		{Key{1, 0, 9}, Key{1, 1, 0}, true},
		{Key{1, 2, 0}, Key{1, 1, 9}, false},
		{Key{1, 1, 3}, Key{1, 1, 4}, true},
		{Key{1, 1, 4}, Key{1, 1, 4}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("Less(%+v, %+v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

// TestSchedulerRunsTasksInReadyOrder: tasks readied at one timestamp
// execute in rank order, and the whole interleaving is reproducible.
func TestSchedulerRunsTasksInReadyOrder(t *testing.T) {
	run := func() []int {
		s := New()
		var order []int
		tasks := make([]*Task, 8)
		for i := range tasks {
			i := i
			tasks[i] = s.Spawn(i, func(tk *Task) {
				order = append(order, i)
			})
		}
		// Ready in scrambled order; the queue must still pop by rank.
		for _, i := range []int{5, 2, 7, 0, 3, 6, 1, 4} {
			s.Ready(tasks[i], 0)
		}
		s.Run()
		return order
	}
	a := run()
	for i, r := range a {
		if r != i {
			t.Fatalf("tasks ran out of rank order: %v", a)
		}
	}
}

// TestSchedulerParkReady: a parked task resumes when a peer readies it,
// and values written before Ready are visible after Park returns.
func TestSchedulerParkReady(t *testing.T) {
	s := New()
	var got int
	var waiter *Task
	parked := false
	waiter = s.Spawn(0, func(tk *Task) {
		parked = true
		tk.Park()
		if got != 42 {
			t.Errorf("parked task woke before peer wrote: got %d", got)
		}
	})
	producer := s.Spawn(1, func(tk *Task) {
		if !parked {
			t.Error("rank order violated: producer ran before waiter parked")
		}
		got = 42
		s.Ready(waiter, 3.5)
	})
	s.Ready(waiter, 0)
	s.Ready(producer, 0)
	s.Run()
}

// TestSchedulerDeadlockPanics: tasks parked forever must crash with a
// diagnostic, not hang the loop.
func TestSchedulerDeadlockPanics(t *testing.T) {
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("no panic for a parked task with an empty queue")
		}
	}()
	s := New()
	tk := s.Spawn(0, func(tk *Task) { tk.Park() })
	s.Ready(tk, 0)
	s.Run()
}

// TestSchedulerRethrowsTaskPanic: a panic escaping a task body must
// surface from Run on the scheduler goroutine.
func TestSchedulerRethrowsTaskPanic(t *testing.T) {
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("task panic swallowed")
		} else if s, ok := p.(string); !ok || s != "boom" {
			t.Fatalf("panic value mangled: %v", p)
		}
	}()
	s := New()
	tk := s.Spawn(0, func(tk *Task) { panic("boom") })
	s.Ready(tk, 0)
	s.Run()
}
