// Package sim is the discrete-event core of the cluster simulator's
// DES backend: a single-threaded cooperative scheduler driving one
// task per simulated rank (or rank stream) off a priority event queue.
//
// Exactly one task runs at any moment. A task runs until it blocks on
// a simulated synchronization point (a collective rendezvous, a
// point-to-point match, a bounded stage queue), parks itself, and
// hands control back to the scheduler, which pops the next event and
// resumes its task. Tasks are implemented as goroutines for their
// stacks only — the resume/yield channel handoff guarantees a single
// runnable goroutine, so scheduler and simulator state need no locks
// and the race detector sees a clean happens-before chain through the
// channels.
//
// Events are ordered by Key = (time, rank, seq): simulated seconds
// first, then rank id, then a global monotonically increasing sequence
// number assigned when the event is pushed. The (rank, seq) tail makes
// ties — ubiquitous in a bulk-synchronous program, where every member
// of a collective wakes at the same simulated instant — deterministic,
// so a DES run is a pure function of the program, never of goroutine
// scheduling.
package sim

import "fmt"

// Key orders events: simulated time, then rank, then push sequence.
type Key struct {
	Time float64
	Rank int
	Seq  uint64
}

// Less is the strict weak ordering the event queue pops in.
func (k Key) Less(o Key) bool {
	if k.Time != o.Time {
		return k.Time < o.Time
	}
	if k.Rank != o.Rank {
		return k.Rank < o.Rank
	}
	return k.Seq < o.Seq
}

// event is one queue entry: resume this task at this key.
type event struct {
	key  Key
	task *Task
}

// eventQueue is a binary min-heap of events ordered by Key.
type eventQueue struct {
	es []event
}

func (q *eventQueue) Len() int { return len(q.es) }

func (q *eventQueue) push(e event) {
	q.es = append(q.es, e)
	i := len(q.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.es[i].key.Less(q.es[p].key) {
			break
		}
		q.es[i], q.es[p] = q.es[p], q.es[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	top := q.es[0]
	last := len(q.es) - 1
	q.es[0] = q.es[last]
	q.es = q.es[:last]
	n := last
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.es[l].key.Less(q.es[min].key) {
			min = l
		}
		if r < n && q.es[r].key.Less(q.es[min].key) {
			min = r
		}
		if min == i {
			break
		}
		q.es[i], q.es[min] = q.es[min], q.es[i]
		i = min
	}
	return top
}

// Task is one cooperative thread of simulated execution (a rank body
// or one of its forked streams).
type Task struct {
	// Rank is the simulated rank id used for event tie-breaking.
	Rank int

	s      *Sched
	resume chan struct{}
	// queued guards against double-Ready: a task already holding an
	// event in the queue must not be pushed again.
	queued bool
}

// Sched is the scheduler: an event queue plus the live-task count.
// Create one per simulated run with New; it is not reusable.
type Sched struct {
	q    eventQueue
	seq  uint64
	live int
	// yield is the single-token handoff back to the Run loop; exactly
	// one task goroutine is ever unparked, so the channel never sees
	// concurrent senders.
	yield chan struct{}
	// trap records the first panic that escaped a task body; Run
	// rethrows it on the scheduler goroutine once the loop drains, so
	// an un-recovered simulated-program panic still crashes the
	// process with its diagnostic (matching the goroutine backend)
	// instead of wedging the event loop.
	trap any
}

// New returns an empty scheduler.
func New() *Sched {
	return &Sched{yield: make(chan struct{})}
}

// Spawn creates a parked task that will execute fn when first readied.
// fn runs on its own goroutine but only ever while the scheduler has
// handed it the run token.
func (s *Sched) Spawn(rank int, fn func(t *Task)) *Task {
	t := &Task{Rank: rank, s: s, resume: make(chan struct{})}
	s.live++
	go func() {
		<-t.resume
		defer func() {
			if p := recover(); p != nil && s.trap == nil {
				s.trap = p
			}
			s.live--
			s.yield <- struct{}{}
		}()
		fn(t)
	}()
	return t
}

// Ready schedules t to resume at simulated time tm. Callable from the
// scheduler's caller (before Run) or from the currently running task;
// both are single-threaded with respect to the queue. Readying an
// already-queued task is a scheduling bug and panics.
func (s *Sched) Ready(t *Task, tm float64) {
	if t.queued {
		panic(fmt.Sprintf("sim: task (rank %d) readied twice", t.Rank))
	}
	t.queued = true
	s.q.push(event{key: Key{Time: tm, Rank: t.Rank, Seq: s.seq}, task: t})
	s.seq++
}

// Park blocks the calling task until a peer (or the deadlock detector)
// readies it again. The caller must not hold any lock a concurrently
// runnable task could need — under this scheduler that means no lock
// at all, since the resumed peer may be any task.
func (t *Task) Park() {
	t.s.yield <- struct{}{}
	<-t.resume
}

// Depth reports the number of queued events — part of the deadlock
// diagnostics surfaced by the cluster's poisoned-rendezvous errors.
func (s *Sched) Depth() int { return s.q.Len() }

// Live reports the number of spawned tasks that have not finished.
func (s *Sched) Live() int { return s.live }

// Run drives the event loop until every spawned task has finished.
// An empty queue with live tasks is a deadlock: every remaining task
// is parked with no event that could ever wake it, so Run panics with
// the queue/live diagnostics (the simulated program's own deadlock
// detectors usually fire first, with a richer message).
func (s *Sched) Run() {
	for s.live > 0 {
		if s.q.Len() == 0 {
			if s.trap != nil {
				panic(s.trap)
			}
			panic(fmt.Sprintf("sim: deadlock: %d tasks parked with no pending events", s.live))
		}
		e := s.q.pop()
		e.task.queued = false
		e.task.resume <- struct{}{}
		<-s.yield
	}
	if s.trap != nil {
		panic(s.trap)
	}
}
