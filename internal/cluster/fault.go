package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Failure is one planned fail-stop event: the rank halts permanently
// the first time its own simulated clock reaches At (checked on the
// per-charge path, so the failure lands at the first charge boundary
// at or after At — deterministically, on both backends). At must be
// strictly positive: a rank that was dead before doing anything is a
// smaller cluster, not a failure.
type Failure struct {
	Rank int
	At   float64 // simulated seconds; must be > 0 and finite
}

// String renders the failure in the canonical rank@seconds flag form.
func (f Failure) String() string { return fmt.Sprintf("%d@%v", f.Rank, f.At) }

// FaultPlan is the deterministic fault-injection seam: the complete,
// pre-declared set of fail-stop events a run injects. It rides the
// CostModel (CostModel.Faults) so a plan travels everywhere a model
// does — pipeline configs, baselines, the bench harness — without
// extra plumbing, and nil keeps every existing run bit-identical.
//
// Failure times are absolute simulated times on the failing rank's own
// clock. When a failed run restarts from a checkpoint, the driver
// removes the failure that fired (FaultPlan.Without) so the restarted
// timeline does not re-fire it forever; remaining failures whose time
// falls at or before the restored clock fire on the rank's first
// subsequent charge.
//
// Plans are constructed only behind the seam — internal/resilience
// (seeded-random sweep plans), cliutil (the -faults flag) and this
// package — an invariant enforced by the faultseam gnnvet analyzer.
type FaultPlan struct {
	Failures []Failure
}

// Validate checks the plan against a cluster of n ranks (n <= 0 skips
// the range check, for callers that validate before sizing).
func (p *FaultPlan) Validate(n int) error {
	if p == nil {
		return nil
	}
	for _, f := range p.Failures {
		if f.Rank < 0 {
			return fmt.Errorf("cluster: fault plan has negative rank %d", f.Rank)
		}
		if n > 0 && f.Rank >= n {
			return fmt.Errorf("cluster: fault plan rank %d outside %d ranks", f.Rank, n)
		}
		if !(f.At > 0) || math.IsInf(f.At, 0) {
			return fmt.Errorf("cluster: fault plan time %v for rank %d: must be positive and finite", f.At, f.Rank)
		}
	}
	return nil
}

// Len reports the number of planned failures (0 for a nil plan).
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Failures)
}

// failAt returns the earliest planned failure time for the rank, or 0
// when the plan holds none (0 is unambiguous: Validate rejects
// non-positive times).
func (p *FaultPlan) failAt(rank int) float64 {
	if p == nil {
		return 0
	}
	at := 0.0
	for _, f := range p.Failures {
		if f.Rank == rank && (at == 0 || f.At < at) {
			at = f.At
		}
	}
	return at
}

// Without returns a copy of the plan with the first entry equal to f
// removed — the restart driver's step after a failure fires, so a
// restored timeline does not re-fire it. Returns nil when the removal
// empties the plan.
func (p *FaultPlan) Without(f Failure) *FaultPlan {
	if p == nil {
		return nil
	}
	out := make([]Failure, 0, len(p.Failures))
	removed := false
	for _, e := range p.Failures {
		if !removed && e == f {
			removed = true
			continue
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil
	}
	return &FaultPlan{Failures: out}
}

// Retire returns the plan with the fired failure removed — the restart
// driver's step after Run surfaces a RankFailure, phrased on the error
// itself so drivers never assemble Failure values by hand (the
// faultseam analyzer confines that to the seam packages).
func (p *FaultPlan) Retire(rf *RankFailure) *FaultPlan {
	return p.Without(Failure{Rank: rf.Rank, At: rf.At})
}

// String renders the plan in the canonical -faults flag form:
// comma-separated rank@seconds entries sorted by (time, rank).
func (p *FaultPlan) String() string {
	if p == nil || len(p.Failures) == 0 {
		return ""
	}
	fs := append([]Failure(nil), p.Failures...)
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].At != fs[j].At {
			return fs[i].At < fs[j].At
		}
		return fs[i].Rank < fs[j].Rank
	})
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// ErrRankFailed is the sentinel every injected fail-stop error wraps:
// the rank's own RankFailure and the collective-abort errors surviving
// ranks observe both satisfy errors.Is(err, ErrRankFailed), which is
// what separates recoverable fault-class failures from bug-class
// poisons (mismatched collectives, transform panics) that still crash.
var ErrRankFailed = errors.New("rank failed (injected fail-stop)")

// RankFailure is the error a planned fail-stop surfaces: the failing
// rank's body panics with it at the charge that crosses the planned
// time, the cluster backend recovers it into the rank's error slot,
// and Run returns the earliest one so a restart driver can identify —
// and retire, via FaultPlan.Without — the failure that fired. At is
// the planned time (the plan entry), not the clock reading at the
// fatal charge's end.
type RankFailure struct {
	Rank int
	At   float64
}

func (f *RankFailure) Error() string {
	return fmt.Sprintf("cluster: rank %d hit its injected fail-stop at sim t=%vs", f.Rank, f.At)
}

// Unwrap makes errors.Is(err, ErrRankFailed) true for every
// RankFailure.
func (f *RankFailure) Unwrap() error { return ErrRankFailed }

// faultClass returns the recovered panic value as an error when it is
// a recoverable injected-fault error (wraps ErrRankFailed), or nil for
// bug-class panics that must keep crashing.
func faultClass(p any) error {
	err, ok := p.(error)
	if !ok || !errors.Is(err, ErrRankFailed) {
		return nil
	}
	return err
}

// noteFailure records the RankFailure at the root of err (if any)
// against the terminating rank, so the deadlock detector can diagnose
// abandoned collectives as fault aborts and Run can return the
// earliest failure. The root is recorded under its own rank too: a
// rank that aborts because a peer died (a cascade — e.g. a group
// leader stuck in the leaders' exchange of a hierarchical allreduce)
// abandons ITS downstream collectives, and survivors there must trace
// the abandonment back to the peer's fail-stop, not see a bug-class
// deadlock.
func (c *Cluster) noteFailure(rank int, err error) {
	var rf *RankFailure
	if !errors.As(err, &rf) {
		return
	}
	c.mu.Lock()
	if c.failures == nil {
		c.failures = map[int]*RankFailure{}
	}
	if _, ok := c.failures[rank]; !ok {
		c.failures[rank] = rf
	}
	if _, ok := c.failures[rf.Rank]; !ok {
		c.failures[rf.Rank] = rf
	}
	c.mu.Unlock()
}

// failureOf returns the root fail-stop behind a rank's termination in
// the current Run — its own, or the peer failure it aborted on — or
// nil when the rank has not terminated on a fault path.
func (c *Cluster) failureOf(rank int) *RankFailure {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures[rank]
}

// earliestFailure returns the recorded failure with the smallest
// (time, rank), or nil when none fired.
func (c *Cluster) earliestFailure() *RankFailure {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *RankFailure
	for _, f := range c.failures {
		if best == nil || f.At < best.At || (f.At == best.At && f.Rank < best.Rank) {
			best = f
		}
	}
	return best
}

// runBody executes one rank's body, converting a recoverable injected
// fail-stop panic (the rank's own RankFailure from the charge path, or
// a poisoned-collective abort observed by a survivor) into the body's
// error. Bug-class panics — genuine deadlock diagnostics, mismatched
// collectives, program bugs — re-panic and crash exactly as before.
//
// A fault-class error the body RETURNS is recorded too: the engine's
// overlapped schedule converts a forked stream's fail-stop panic into a
// stage error that rides the queue tokens back to the body, so the
// failure reaches here as a return value, not a panic. Recording must
// happen before this rank's deferred markDone sweeps the deadlock
// detector (defer order guarantees it), so survivors' abandoned
// collectives are diagnosed as fault aborts rather than deadlocks.
func (c *Cluster) runBody(body func(r *Rank) error, r *Rank) (err error) {
	defer func() {
		p := recover()
		if p == nil {
			if err != nil && errors.Is(err, ErrRankFailed) {
				c.noteFailure(r.ID, err)
			}
			return
		}
		e := faultClass(p)
		if e == nil {
			panic(p)
		}
		c.noteFailure(r.ID, e)
		err = e
	}()
	return body(r)
}
