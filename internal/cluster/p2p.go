package cluster

import (
	"fmt"
	"sync"
)

// mailbox implements matched point-to-point sends and receives between
// ranks, keyed by (src, dst, tag). Send blocks until the matching
// Recv arrives (rendezvous semantics, like MPI_Ssend), which keeps the
// simulated clocks honest: both sides leave at max(entry) + α + β·n.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	slots map[mailKey]*mailSlot
}

type mailKey struct {
	src, dst, tag int
}

type mailSlot struct {
	val       any
	bytes     int
	sendClock float64
	hasData   bool
	recvClock float64
	hasRecv   bool
	done      float64
	completed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{slots: map[mailKey]*mailSlot{}}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (c *Cluster) mailboxInstance() *mailbox {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mail == nil {
		c.mail = newMailbox()
	}
	return c.mail
}

// Send delivers val to rank dst under the given tag, blocking until
// the receiver posts the matching Recv. bytes sizes the payload for
// the cost model; the link tier is derived from the endpoints.
func Send[T any](c *Cluster, r *Rank, dst, tag int, val T, bytes int) {
	if dst < 0 || dst >= c.N {
		panic(fmt.Sprintf("cluster: Send to rank %d of %d", dst, c.N))
	}
	if dst == r.ID {
		panic("cluster: Send to self; use a local variable")
	}
	mb := c.mailboxInstance()
	key := mailKey{src: r.ID, dst: dst, tag: tag}
	link := c.Model.linkBetween(r.ID, dst)
	cost := c.Model.Alpha[link] + float64(bytes)*c.Model.Beta[link]

	mb.mu.Lock()
	slot := mb.slots[key]
	if slot == nil {
		slot = &mailSlot{}
		mb.slots[key] = slot
	}
	if slot.hasData {
		panic(fmt.Sprintf("cluster: duplicate Send for %+v", key))
	}
	slot.val = val
	slot.bytes = bytes
	slot.sendClock = r.clock
	slot.hasData = true
	mb.cond.Broadcast()
	for !slot.hasRecv {
		mb.cond.Wait()
	}
	entry := slot.sendClock
	if slot.recvClock > entry {
		entry = slot.recvClock
	}
	slot.done = entry + cost
	slot.completed = true
	mb.cond.Broadcast()
	done := slot.done
	mb.mu.Unlock()

	r.countOp("send", int64(bytes))
	r.countLink(link, int64(bytes))
	if done > r.clock {
		r.advance(done-r.clock, true)
	}
}

// Recv blocks until the matching Send from src under tag arrives and
// returns its value.
func Recv[T any](c *Cluster, r *Rank, src, tag int) T {
	mb := c.mailboxInstance()
	key := mailKey{src: src, dst: r.ID, tag: tag}

	mb.mu.Lock()
	slot := mb.slots[key]
	if slot == nil {
		slot = &mailSlot{}
		mb.slots[key] = slot
	}
	if slot.hasRecv {
		panic(fmt.Sprintf("cluster: duplicate Recv for %+v", key))
	}
	slot.recvClock = r.clock
	slot.hasRecv = true
	mb.cond.Broadcast()
	for !slot.completed {
		mb.cond.Wait()
	}
	val := slot.val.(T)
	done := slot.done
	delete(mb.slots, key)
	mb.mu.Unlock()

	if done > r.clock {
		r.advance(done-r.clock, true)
	}
	return val
}
