package cluster

import (
	"fmt"
	"sync"

	"repro/internal/cluster/sim"
)

// mailbox implements matched point-to-point sends and receives between
// ranks, keyed by (src, dst, tag). Send blocks until the matching
// Recv arrives (rendezvous semantics, like MPI_Ssend), which keeps the
// simulated clocks honest: both sides leave at max(entry) + α + β·n.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	slots map[mailKey]*mailSlot
}

type mailKey struct {
	src, dst, tag int
}

type mailSlot struct {
	val       any
	bytes     int
	sendClock float64
	hasData   bool
	recvClock float64
	hasRecv   bool
	done      float64
	completed bool
	// waiter is the parked DES task of whichever side arrived first.
	// Under DES the second arriver completes the transfer (either side
	// can: the cost depends only on the two entry clocks, the payload
	// and the sender's links), deletes the map entry — so the key is
	// immediately reusable — and readies the parked peer at the done
	// time; the peer reads the slot through its retained pointer.
	waiter *sim.Task
}

func newMailbox() *mailbox {
	mb := &mailbox{slots: map[mailKey]*mailSlot{}}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (c *Cluster) mailboxInstance() *mailbox {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mail == nil {
		c.mail = newMailbox()
	}
	return c.mail
}

// Send delivers val to rank dst under the given tag, blocking until
// the receiver posts the matching Recv. bytes sizes the payload for
// the cost model; the link tier is derived from the endpoints. Under a
// contention topology the transfer is a flow through the sender's
// physical links and shares them with whatever else is in flight.
func Send[T any](c *Cluster, r *Rank, dst, tag int, val T, bytes int) {
	if dst < 0 || dst >= c.N {
		panic(fmt.Sprintf("cluster: Send to rank %d of %d", dst, c.N))
	}
	if dst == r.ID {
		panic("cluster: Send to self; use a local variable")
	}
	mb := c.mailboxInstance()
	key := mailKey{src: r.ID, dst: dst, tag: tag}
	link := c.Model.linkBetween(r.ID, dst)

	if r.task != nil {
		done := mb.sendDES(c, r, key, link, val, bytes)
		r.countOp("send", int64(bytes))
		r.countLink(link, int64(bytes))
		if done > r.clock {
			r.advance(done-r.clock, true)
		}
		return
	}

	// The locked section runs under a deferred unlock so the
	// duplicate-send diagnostic below releases the mailbox before the
	// panic propagates: a panic that kept mb.mu held would wedge every
	// other rank's Send/Recv behind the mutex instead of letting the
	// failure surface, the same guarantee the collective deadlock
	// detector makes by poisoning its rendezvous.
	done := func() float64 {
		mb.mu.Lock()
		defer mb.mu.Unlock()
		slot := mb.slots[key]
		if slot == nil {
			slot = &mailSlot{}
			mb.slots[key] = slot
		}
		if slot.hasData {
			panic(fmt.Sprintf("cluster: duplicate Send for %+v", key))
		}
		slot.val = val
		slot.bytes = bytes
		slot.sendClock = r.clock
		slot.hasData = true
		mb.cond.Broadcast()
		for !slot.hasRecv {
			mb.cond.Wait()
		}
		entry := slot.sendClock
		if slot.recvClock > entry {
			entry = slot.recvClock
		}
		if ct := c.cont; ct != nil {
			fin := ct.transact([]flowReq{{
				start: c.Model.wireEntry(entry, link),
				bytes: float64(bytes),
				links: ct.linksFor(r.ID, link),
			}})
			slot.done = fin[0]
		} else {
			slot.done = c.Model.wireDone(entry, link, int64(bytes))
		}
		slot.completed = true
		mb.cond.Broadcast()
		return slot.done
	}()

	r.countOp("send", int64(bytes))
	r.countLink(link, int64(bytes))
	if done > r.clock {
		r.advance(done-r.clock, true)
	}
}

// Recv blocks until the matching Send from src under tag arrives and
// returns its value. src is validated up front like Send validates dst:
// an out-of-range src can never be matched, so it panics immediately
// instead of silently blocking forever.
func Recv[T any](c *Cluster, r *Rank, src, tag int) T {
	if src < 0 || src >= c.N {
		panic(fmt.Sprintf("cluster: Recv from rank %d of %d", src, c.N))
	}
	if src == r.ID {
		panic("cluster: Recv from self; use a local variable")
	}
	mb := c.mailboxInstance()
	key := mailKey{src: src, dst: r.ID, tag: tag}

	if r.task != nil {
		val, done := mb.recvDES(c, r, key)
		if done > r.clock {
			r.advance(done-r.clock, true)
		}
		return val.(T)
	}

	// Deferred unlock for the same reason as Send: the duplicate-recv
	// panic must not leave the mailbox locked.
	val, done := func() (T, float64) {
		mb.mu.Lock()
		defer mb.mu.Unlock()
		slot := mb.slots[key]
		if slot == nil {
			slot = &mailSlot{}
			mb.slots[key] = slot
		}
		if slot.hasRecv {
			panic(fmt.Sprintf("cluster: duplicate Recv for %+v", key))
		}
		slot.recvClock = r.clock
		slot.hasRecv = true
		mb.cond.Broadcast()
		for !slot.completed {
			mb.cond.Wait()
		}
		v := slot.val.(T)
		d := slot.done
		delete(mb.slots, key)
		return v, d
	}()

	if done > r.clock {
		r.advance(done-r.clock, true)
	}
	return val
}

// --- DES mailbox protocol ------------------------------------------------
//
// Under the discrete-event backend exactly one task runs at a time, so
// the mailbox needs no mutex: the happens-before chain runs through the
// scheduler's handoff channels. The first arriver records its side and
// parks; the second arriver completes the transfer (the done time
// depends only on both entry clocks, the payload and the sender's
// physical links, so either side can compute it), deletes the map entry
// — making the key immediately reusable, matching the state a finished
// goroutine-backend exchange leaves behind — and readies the parked
// peer at the done time.

// sendDES is Send's DES half; it returns the transfer's done time.
func (mb *mailbox) sendDES(c *Cluster, r *Rank, key mailKey, link Link, val any, bytes int) float64 {
	slot := mb.slots[key]
	if slot == nil {
		slot = &mailSlot{}
		mb.slots[key] = slot
	}
	if slot.hasData {
		panic(fmt.Sprintf("cluster: duplicate Send for %+v", key))
	}
	slot.val = val
	slot.bytes = bytes
	slot.sendClock = r.clock
	slot.hasData = true
	if !slot.hasRecv {
		slot.waiter = r.task
		r.task.Park()
		return slot.done // the receiver completed the slot before readying us
	}
	return mb.completeDES(c, key, link, slot)
}

// recvDES is Recv's DES half; it returns the payload and done time.
func (mb *mailbox) recvDES(c *Cluster, r *Rank, key mailKey) (any, float64) {
	slot := mb.slots[key]
	if slot == nil {
		slot = &mailSlot{}
		mb.slots[key] = slot
	}
	if slot.hasRecv {
		panic(fmt.Sprintf("cluster: duplicate Recv for %+v", key))
	}
	slot.recvClock = r.clock
	slot.hasRecv = true
	if !slot.hasData {
		slot.waiter = r.task
		r.task.Park()
		return slot.val, slot.done // the sender completed the slot
	}
	link := c.Model.linkBetween(key.src, key.dst)
	return slot.val, mb.completeDES(c, key, link, slot)
}

// completeDES finishes a fully-matched transfer: computes the done
// time exactly as the goroutine backend's Send does (entry is the
// later of the two arrival clocks; under a contention topology the
// payload flows through the sender's physical links), retires the map
// entry and wakes the parked peer.
func (mb *mailbox) completeDES(c *Cluster, key mailKey, link Link, slot *mailSlot) float64 {
	entry := slot.sendClock
	if slot.recvClock > entry {
		entry = slot.recvClock
	}
	if ct := c.cont; ct != nil {
		fin := ct.transact([]flowReq{{
			start: c.Model.wireEntry(entry, link),
			bytes: float64(slot.bytes),
			links: ct.linksFor(key.src, link),
		}})
		slot.done = fin[0]
	} else {
		slot.done = c.Model.wireDone(entry, link, int64(slot.bytes))
	}
	slot.completed = true
	delete(mb.slots, key)
	if slot.waiter != nil {
		c.sched.Ready(slot.waiter, slot.done)
	}
	return slot.done
}
