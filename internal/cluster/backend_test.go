package cluster

import (
	"fmt"
	"strings"
	"testing"
)

// desModel returns the test cost model pinned to the discrete-event
// backend.
func desModel() CostModel {
	m := testModel()
	m.Backend = DESBackend
	return m
}

// TestBackendResolutionEnv: an unset Backend resolves through
// GNN_BACKEND, and an unparsable environment value falls back to
// goroutines instead of failing.
func TestBackendResolutionEnv(t *testing.T) {
	t.Setenv(BackendEnv, "")
	if got := New(1, testModel()).Backend(); got != GoroutineBackend {
		t.Fatalf("unset env resolved to %v, want goroutine", got)
	}
	t.Setenv(BackendEnv, "des")
	if got := New(1, testModel()).Backend(); got != DESBackend {
		t.Fatalf("GNN_BACKEND=des resolved to %v, want des", got)
	}
	t.Setenv(BackendEnv, "not-a-backend")
	if got := New(1, testModel()).Backend(); got != GoroutineBackend {
		t.Fatalf("bad env resolved to %v, want goroutine fallback", got)
	}
}

// TestBackendExplicitBeatsEnv: a cost model's explicit backend always
// wins over the environment, so in-process both-backend loops (the
// golden and differential tests) stay valid under CI's GNN_BACKEND=des.
func TestBackendExplicitBeatsEnv(t *testing.T) {
	t.Setenv(BackendEnv, "des")
	m := testModel()
	m.Backend = GoroutineBackend
	if got := New(1, m).Backend(); got != GoroutineBackend {
		t.Fatalf("explicit goroutine under env=des resolved to %v", got)
	}
	t.Setenv(BackendEnv, "goroutine")
	if got := New(1, desModel()).Backend(); got != DESBackend {
		t.Fatalf("explicit des under env=goroutine resolved to %v", got)
	}
}

// TestDESCollectivesMatchGoroutines: the same rank body produces
// bit-identical collective results and clocks on both backends.
func TestDESCollectivesMatchGoroutines(t *testing.T) {
	run := func(m CostModel) ([]float64, float64) {
		cl := New(8, m)
		world := cl.World()
		sums := make([]float64, 8)
		res, err := cl.Run(func(r *Rank) error {
			x := []float64{float64(r.ID + 1), float64(r.ID * r.ID)}
			sum := AllReduceSum(world, r, x)
			Barrier(world, r)
			sums[r.ID] = sum[0] + sum[1]
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sums, res.SimTime
	}
	gm := testModel()
	gm.Backend = GoroutineBackend
	gSums, gTime := run(gm)
	dSums, dTime := run(desModel())
	if gTime != dTime {
		t.Fatalf("SimTime differs: goroutine %v vs des %v", gTime, dTime)
	}
	for i := range gSums {
		if gSums[i] != dSums[i] {
			t.Fatalf("rank %d sum differs: %v vs %v", i, gSums[i], dSums[i])
		}
	}
}

// TestDESSendRecvMatchesGoroutines: point-to-point transfers complete
// with the same values and clocks on both backends, including when the
// receiver posts first.
func TestDESSendRecvMatchesGoroutines(t *testing.T) {
	run := func(m CostModel) (int, float64) {
		cl := New(2, m)
		var got int
		res, err := cl.Run(func(r *Rank) error {
			if r.ID == 0 {
				Send(cl, r, 1, 7, 42, 1024)
			} else {
				got = Recv[int](cl, r, 0, 7)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got, res.SimTime
	}
	gm := testModel()
	gm.Backend = GoroutineBackend
	gVal, gTime := run(gm)
	dVal, dTime := run(desModel())
	if gVal != 42 || dVal != 42 {
		t.Fatalf("payloads: goroutine %d, des %d, want 42", gVal, dVal)
	}
	if gTime != dTime {
		t.Fatalf("SimTime differs: goroutine %v vs des %v", gTime, dTime)
	}
}

// TestDESMismatchedCollectivesDiagnostic: the deadlock detector works
// under DES and its diagnostic names the backend and the event-queue
// depth (the DES analogue of a goroutine dump).
func TestDESMismatchedCollectivesDiagnostic(t *testing.T) {
	cl := New(2, desModel())
	world := cl.World()
	var msgs []string // DES runs ranks one at a time: no mutex needed
	_, err := cl.Run(func(r *Rank) (err error) {
		defer func() {
			if p := recover(); p != nil {
				msgs = append(msgs, fmt.Sprint(p))
			}
		}()
		if r.ID == 0 {
			Barrier(world, r)
		} else {
			AllReduceSum(world, r, []float64{1})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("want both ranks to panic, got %d panics: %v", len(msgs), msgs)
	}
	for _, m := range msgs {
		if !strings.Contains(m, "mismatched collectives") {
			t.Fatalf("panic lacks diagnosis: %q", m)
		}
		if !strings.Contains(m, "backend=des") || !strings.Contains(m, "queued events") {
			t.Fatalf("panic lacks DES backend diagnostics: %q", m)
		}
	}
}

// TestDESAbandonedCollectiveDiagnostic: rendezvous poisoning reaches
// parked DES waiters, and the diagnostic carries the backend name.
func TestDESAbandonedCollectiveDiagnostic(t *testing.T) {
	cl := New(2, desModel())
	world := cl.World()
	var msg string
	_, err := cl.Run(func(r *Rank) (err error) {
		if r.ID == 0 {
			return nil // leaves without joining the barrier
		}
		defer func() {
			if p := recover(); p != nil {
				msg = fmt.Sprint(p)
			}
		}()
		Barrier(world, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "rank 0") {
		t.Fatalf("deadlock not diagnosed: %q", msg)
	}
	if !strings.Contains(msg, "backend=des") {
		t.Fatalf("diagnostic lacks backend name: %q", msg)
	}
}

// TestGoroutineDiagnosticNamesBackend: the goroutine backend's
// diagnostics carry its name too, so a report always says which
// machinery was running.
func TestGoroutineDiagnosticNamesBackend(t *testing.T) {
	m := testModel()
	m.Backend = GoroutineBackend
	cl := New(2, m)
	world := cl.World()
	var msg string
	_, err := cl.Run(func(r *Rank) (err error) {
		if r.ID == 0 {
			return nil
		}
		defer func() {
			if p := recover(); p != nil {
				msg = fmt.Sprint(p)
			}
		}()
		Barrier(world, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "backend=goroutine") {
		t.Fatalf("diagnostic lacks backend name: %q", msg)
	}
}

// TestDESQueueBackpressure: the backend-neutral Queue parks DES
// senders on a full queue and receivers on an empty one, preserving
// FIFO order and values across the handoff.
func TestDESQueueBackpressure(t *testing.T) {
	cl := New(1, desModel())
	var got []int
	_, err := cl.Run(func(r *Rank) error {
		q := r.NewQueue(2)
		f := r.ForkStream("producer", func(s *Rank) {
			for i := 0; i < 8; i++ {
				q.Send(s, i) // parks when the 2-slot buffer is full
			}
		})
		for i := 0; i < 8; i++ {
			got = append(got, q.Recv(r).(int))
		}
		f.Join(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("queue order broken: got %v", got)
		}
	}
}
