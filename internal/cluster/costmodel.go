// Package cluster simulates a multi-GPU, multi-node cluster for the
// distributed sampling experiments. Each simulated GPU is a goroutine
// "rank"; collectives really exchange data between ranks (so results
// are bit-for-bit what a real distributed run would compute) while an
// α–β communication model plus device throughput profiles accrue
// *simulated* time on per-rank clocks.
//
// The paper's performance claims are communication-schedule claims
// analyzed in the α–β model (Section 5.2.1), so replaying the same
// schedules under a calibrated cost model reproduces the shape of its
// results: who wins, by what factor, and where crossovers fall.
package cluster

import "fmt"

// Device identifies the processor a charge is billed to.
type Device int

const (
	// GPU bills charges at accelerator rates (default for ranks).
	GPU Device = iota
	// CPU bills charges at host processor rates, used by the
	// CPU-reference baselines and by UVA-style sampling.
	CPU
)

// Link identifies an interconnect tier.
type Link int

const (
	// IntraNode is the NVLink tier between GPUs on one node.
	IntraNode Link = iota
	// InterNode is the NIC tier between nodes.
	InterNode
	// HostLink is the PCIe tier between a GPU and host memory, paid by
	// UVA sampling and CPU-to-GPU sample transfers.
	HostLink
)

// String names the tier for traffic reports.
func (l Link) String() string {
	switch l {
	case IntraNode:
		return "intra-node"
	case InterNode:
		return "inter-node"
	case HostLink:
		return "host"
	}
	return fmt.Sprintf("link(%d)", int(l))
}

// CostModel holds the α–β link parameters and device throughputs that
// convert operation counts and message sizes into simulated seconds.
//
// All rates are "effective" (achieved, not peak) figures.
type CostModel struct {
	GPUsPerNode int

	// Backend selects the execution machinery (goroutine-per-rank or
	// the discrete-event loop). Riding the cost model, like the
	// Collectives table and Topology, means a selection travels
	// everywhere a model does — pipeline configs, baselines, the bench
	// harness — without extra plumbing. Both backends produce
	// bit-identical results; DefaultBackend resolves $GNN_BACKEND and
	// falls back to the goroutine backend.
	Backend Backend

	// Collectives selects, per operation class, the schedule the
	// collectives charge under (FlatTree / Ring / Pairwise /
	// Hierarchical). The zero value keeps every collective on the
	// paper's FlatTree closed forms. Because the table rides the cost
	// model, a selection travels everywhere a model does — pipeline
	// configs, baselines, the bench harness — without extra plumbing.
	Collectives Collectives

	// Latency (seconds per message) and inverse bandwidth (seconds per
	// byte) per link tier.
	Alpha [3]float64
	Beta  [3]float64

	// Effective throughput for irregular sparse/sampling work
	// (operations per second) and dense floating point (flops per
	// second), and memory bandwidth (bytes per second), per device.
	SparseOps  [2]float64
	DenseFlops [2]float64
	MemBW      [2]float64

	// KernelLaunch is the fixed overhead of one GPU kernel launch in
	// seconds. It is what bulk sampling amortizes: sampling k batches
	// in one call pays it once instead of k times.
	KernelLaunch float64

	// Stragglers maps rank ids to compute multipliers (e.g. {3: 2.0}
	// makes rank 3 twice as slow; {3: 0.5} models a rank twice as
	// fast). Bulk-synchronous schedules are bound by their slowest
	// member; this knob quantifies that sensitivity. Factors must be
	// positive. Nil means no stragglers.
	Stragglers map[int]float64

	// Topology switches the model onto the contention-aware charging
	// path: physical links (per-GPU NVLink ports, per-node NIC
	// injection pipes, an optional oversubscribed fabric trunk) become
	// finite resources that concurrent transfers share by progressive
	// filling. nil keeps the pure α–β model — every transfer charged as
	// if it had its tier's wire to itself, bit-identical to the
	// pre-topology code (pinned by the golden tests).
	Topology *Topology

	// Faults is the deterministic fail-stop injection plan (see
	// FaultPlan): rank r halts when its simulated clock reaches t,
	// poisoning its pending collectives so survivors abort with a
	// recoverable error wrapping ErrRankFailed. Riding the cost model,
	// like Collectives and Topology, a plan travels everywhere a model
	// does. nil — the default — injects nothing and leaves every run
	// bit-identical to a model without the field.
	Faults *FaultPlan
}

// slowdown returns the compute multiplier for a rank. Any positive
// factor is honored — entries in (0, 1) model faster-than-baseline
// ranks — and a non-positive factor is a configuration error that
// would silently vanish if ignored, so it panics instead.
func (m CostModel) slowdown(rank int) float64 {
	if f, ok := m.Stragglers[rank]; ok {
		if f <= 0 {
			panic(fmt.Sprintf("cluster: non-positive straggler factor %v for rank %d", f, rank))
		}
		return f
	}
	return 1
}

// Perlmutter returns a cost model calibrated to the evaluation platform
// of Section 7.2: 4x NVIDIA A100 per node (NVLink 3.0 at 100 GB/s
// unidirectional, 80 GB HBM at 1.55 TB/s), AMD EPYC 7763 host, and
// 4x HPE Slingshot-11 NICs at 25 GB/s injection bandwidth.
func Perlmutter() CostModel {
	return CostModel{
		GPUsPerNode: 4,
		Alpha: [3]float64{
			IntraNode: 4e-6,  // NVLink message latency
			InterNode: 10e-6, // network latency incl. NCCL stack
			HostLink:  8e-6,  // PCIe transaction latency
		},
		Beta: [3]float64{
			IntraNode: 1.0 / 100e9, // 100 GB/s NVLink 3.0
			InterNode: 1.0 / 25e9,  // 25 GB/s Slingshot-11
			HostLink:  1.0 / 20e9,  // ~20 GB/s effective PCIe 4.0
		},
		SparseOps: [2]float64{
			GPU: 2.0e10, // irregular SpGEMM/sampling throughput on A100
			CPU: 6.0e8,  // single-socket host, latency-bound gathers
		},
		DenseFlops: [2]float64{
			GPU: 1.0e13, // achieved fp32 GEMM fraction of 19.5 TF peak
			CPU: 1.5e11,
		},
		MemBW: [2]float64{
			GPU: 1.2e12, // achieved fraction of 1.55 TB/s HBM
			CPU: 1.5e11,
		},
		KernelLaunch: 10e-6,
	}
}

// Workstation returns a cost model for a single PCIe-attached
// multi-GPU workstation: no NVLink (GPUs talk through host PCIe), no
// network tier in practice (all ranks on one node), consumer-grade
// device rates. Used for cost-model sensitivity analysis: conclusions
// that hold under both Perlmutter and Workstation are robust to the
// machine, those that do not are artifacts of the interconnect.
func Workstation() CostModel {
	return CostModel{
		GPUsPerNode: 8, // all ranks share the host
		Alpha: [3]float64{
			IntraNode: 10e-6, // PCIe peer latency
			InterNode: 50e-6, // (unused in-node, but defined)
			HostLink:  10e-6,
		},
		Beta: [3]float64{
			IntraNode: 1.0 / 12e9, // PCIe 3.0 x16 effective
			InterNode: 1.0 / 1e9,  // commodity 10 GbE
			HostLink:  1.0 / 10e9,
		},
		SparseOps: [2]float64{
			GPU: 6.0e9,
			CPU: 3.0e8,
		},
		DenseFlops: [2]float64{
			GPU: 2.0e12,
			CPU: 8.0e10,
		},
		MemBW: [2]float64{
			GPU: 4.0e11,
			CPU: 8.0e10,
		},
		KernelLaunch: 12e-6,
	}
}

// wireEntry returns the simulated time a transfer's payload hits the
// wire: the α handshake latency after the entry clock. One of the
// three helpers point-to-point code prices transfers through — the
// gnnvet charging check forbids inlined α–β arithmetic outside
// collectives.go / contention.go / costmodel.go, so the single
// charging path from PRs 3–4 cannot silently regrow cost sites.
func (m CostModel) wireEntry(entry float64, l Link) float64 {
	return entry + m.Alpha[l]
}

// wireDone returns a point transfer's completion time under the pure
// α–β model: entry + α + bytes·β, kept in exactly this floating-point
// association — the goldens pin charging-path results bit-for-bit.
func (m CostModel) wireDone(entry float64, l Link, bytes int64) float64 {
	return entry + m.Alpha[l] + float64(bytes)*m.Beta[l]
}

// wireTime returns the standalone α + bytes·β duration of a point
// transfer (what ChargeLink advances by on the contention-free path).
func (m CostModel) wireTime(l Link, bytes int64) float64 {
	return m.Alpha[l] + float64(bytes)*m.Beta[l]
}

// node returns the node index hosting the given global rank.
func (m CostModel) node(rank int) int {
	if m.GPUsPerNode <= 0 {
		return 0
	}
	return rank / m.GPUsPerNode
}

// linkBetween returns the interconnect tier connecting two ranks.
func (m CostModel) linkBetween(a, b int) Link {
	if m.node(a) == m.node(b) {
		return IntraNode
	}
	return InterNode
}

// worstLink returns the slowest tier among all pairs of the given
// ranks: collectives spanning nodes run at network speed.
func (m CostModel) worstLink(ranks []int) Link {
	if len(ranks) < 2 {
		return IntraNode
	}
	first := m.node(ranks[0])
	for _, r := range ranks[1:] {
		if m.node(r) != first {
			return InterNode
		}
	}
	return IntraNode
}
