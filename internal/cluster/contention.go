package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file is the contention-aware charging path selected by
// CostModel.Topology. Physical links are finite, shared resources:
// every transfer becomes a *flow* — (start time, byte demand, the
// physical links it occupies) — and concurrent flows on one link split
// its capacity by progressive filling: at any simulated instant a flow
// runs at min over its links of capacity/(flows active on the link),
// re-evaluated at every flow start and completion. A flow alone on its
// links runs at full tier bandwidth, so uncontended schedules cost
// exactly the α–β charge; two equal concurrent flows on one link each
// take twice the solo time.
//
// Atomicity and ordering. All member flows of one collective call are
// solved and committed in a single ledger transaction (inside the
// collective's rendezvous), so sharing *within* a collective is exact
// max-min fair and independent of goroutine scheduling. *Across*
// transactions the ledger is first-committed-first-served: a flow
// shares with the flows already committed when it arrives, and an
// already-committed flow is never retroactively slowed (its owner's
// clock has advanced). When transfers from concurrently-running
// schedules (different streams, different communicators) overlap in
// simulated time, which one sees the other therefore follows the real
// arrival order — like queueing on real hardware, contended timings
// carry a small run-to-run variance; contention-off runs (Topology ==
// nil) never enter this file and stay bit-deterministic.

// flowReq is one transfer's demand handed to the ledger: it starts at
// start simulated seconds, must move bytes, and occupies every link in
// links while it runs.
type flowReq struct {
	start float64
	bytes float64
	links []int
}

// span is one committed flow's occupancy interval on a physical link.
type span struct {
	lo, hi float64
}

// PhysLinkStat is one physical link's traffic summary for a run under
// a contention topology (Result.PhysLinks).
type PhysLinkStat struct {
	// Name identifies the link ("nvlink:rank3", "nic:node1.0",
	// "pcie:rank0", "fabric-trunk").
	Name string
	// Capacity is the link's bandwidth in bytes/second.
	Capacity float64
	// Bytes is the total demand routed through the link (a flow
	// crossing both a NIC and the fabric trunk counts on both).
	Bytes float64
	// MaxConcurrency is the peak number of flows observed sharing the
	// link at one simulated instant; 1 means the link never contended.
	MaxConcurrency int
}

// contention is the per-cluster ledger of physical-link occupancy. It
// is created once per Cluster when the model carries a Topology and
// reset at the start of every Run (runs start fresh at clock zero).
type contention struct {
	nvBase, pcieBase, nicBase int // first link id of each family
	trunk                     int // trunk link id, -1 when unmodeled
	nicsPer, gpn              int

	mu       sync.Mutex
	names    []string
	caps     []float64 // bytes/second per link id
	busy     [][]span  // per link: committed occupancy, sorted by hi
	bytes    []float64 // per link: total committed demand
	maxFlows []int     // per link: peak concurrent flows observed

	// Sweep scratch, reused across transactions (caller holds mu):
	// counts is indexed by link id and reset via the touched list, and
	// events grows to the transaction's event horizon once instead of
	// reallocating per solve.
	counts  []int
	touched []int
	events  []float64

	// curSpans/peakSpans track the ledger's committed-span population
	// (inserts minus prunes) and its high-water mark — the "peak
	// ledger size" the perf-regression suite records, since ledger
	// growth is what turns the sweep superlinear at large p.
	curSpans, peakSpans int
}

// newContention enumerates the topology's physical links for an n-rank
// cluster under the given model.
func newContention(model CostModel, n int) *contention {
	topo := model.Topology
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	gpn := model.GPUsPerNode
	if gpn <= 0 {
		gpn = n
	}
	nodes := (n + gpn - 1) / gpn
	nicsPer := topo.NICsPerNode
	if nicsPer <= 0 || nicsPer > gpn {
		nicsPer = gpn // one injection pipe per GPU
	}
	cap := func(override, beta float64) float64 {
		if override > 0 {
			return override
		}
		if beta <= 0 {
			return math.Inf(1)
		}
		return 1 / beta
	}
	nvCap := cap(topo.NVLinkBps, model.Beta[IntraNode])
	nicCap := cap(topo.NICBps, model.Beta[InterNode])
	pcieCap := cap(topo.PCIeBps, model.Beta[HostLink])

	ct := &contention{nvBase: 0, pcieBase: n, nicBase: 2 * n, trunk: -1,
		nicsPer: nicsPer, gpn: gpn}
	for r := 0; r < n; r++ {
		ct.names = append(ct.names, fmt.Sprintf("nvlink:rank%d", r))
		ct.caps = append(ct.caps, nvCap)
	}
	for r := 0; r < n; r++ {
		ct.names = append(ct.names, fmt.Sprintf("pcie:rank%d", r))
		ct.caps = append(ct.caps, pcieCap)
	}
	for node := 0; node < nodes; node++ {
		for q := 0; q < nicsPer; q++ {
			ct.names = append(ct.names, fmt.Sprintf("nic:node%d.%d", node, q))
			ct.caps = append(ct.caps, nicCap)
		}
	}
	if topo.Oversub > 1 && nodes > 1 {
		ct.trunk = len(ct.caps)
		ct.names = append(ct.names, "fabric-trunk")
		ct.caps = append(ct.caps, float64(nodes)*nicCap/topo.Oversub)
	}
	ct.busy = make([][]span, len(ct.caps))
	ct.bytes = make([]float64, len(ct.caps))
	ct.maxFlows = make([]int, len(ct.caps))
	ct.counts = make([]int, len(ct.caps))
	return ct
}

// linksFor returns the physical links a flow injected by the given
// rank occupies on the given tier.
func (ct *contention) linksFor(rank int, l Link) []int {
	switch l {
	case IntraNode:
		return []int{ct.nvBase + rank}
	case HostLink:
		return []int{ct.pcieBase + rank}
	}
	nic := ct.nicBase + (rank/ct.gpn)*ct.nicsPer + (rank%ct.gpn)%ct.nicsPer
	if ct.trunk >= 0 {
		return []int{nic, ct.trunk}
	}
	return []int{nic}
}

// reset clears the ledger for a fresh Run (simulated clocks restart at
// zero, so committed occupancy from a previous run must not bleed in).
func (ct *contention) reset() {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	for i := range ct.busy {
		ct.busy[i] = nil
		ct.bytes[i] = 0
		ct.maxFlows[i] = 0
	}
	ct.curSpans = 0
	ct.peakSpans = 0
}

// peak returns the ledger's high-water committed span count.
func (ct *contention) peak() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.peakSpans
}

// stats snapshots the per-link traffic summary.
func (ct *contention) stats() []PhysLinkStat {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	out := make([]PhysLinkStat, len(ct.caps))
	for i := range ct.caps {
		out[i] = PhysLinkStat{Name: ct.names[i], Capacity: ct.caps[i],
			Bytes: ct.bytes[i], MaxConcurrency: ct.maxFlows[i]}
	}
	return out
}

// transact solves one batch of flows against the committed ledger and
// commits their occupancy, returning each flow's finish time. The
// batch shares fairly among itself (exact progressive filling) and
// with previously-committed overlapping flows (fixed occupancy).
func (ct *contention) transact(flows []flowReq) []float64 {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	fin := ct.solveLocked(flows)
	for i, f := range flows {
		if f.bytes <= 0 {
			continue
		}
		for _, l := range f.links {
			ct.bytes[l] += f.bytes
			ct.insertSpan(l, span{f.start, fin[i]})
		}
	}
	return fin
}

// soloLocked is the uncontended fast path: a single flow whose links
// carry no committed occupancy past its start runs at the minimum of
// its link capacities for its whole lifetime. The arithmetic matches
// the sweep exactly — one segment, dt = bytes / min(cap/1) — so the
// fast path is bit-identical to solveLocked on the same input. It
// returns false when any link still has overlapping committed spans
// (or the sweep's bookkeeping is otherwise needed). Caller holds
// ct.mu; on success the per-link peak-concurrency floor of 1 is
// recorded here.
func (ct *contention) soloLocked(f flowReq, fin []float64) bool {
	for _, l := range f.links {
		if len(ct.overlapping(l, f.start)) > 0 {
			return false
		}
	}
	r := math.Inf(1)
	for _, l := range f.links {
		if ct.caps[l] < r {
			r = ct.caps[l]
		}
		if ct.maxFlows[l] < 1 {
			ct.maxFlows[l] = 1
		}
	}
	if math.IsInf(r, 1) { // infinite-capacity link: free transfer
		fin[0] = f.start
		return true
	}
	fin[0] = f.start + f.bytes/r
	return true
}

// overlapping returns the committed spans on link l that end after t0,
// pruning the ones that ended earlier: they can never slow a future
// flow unless that flow starts before t0, i.e. unless concurrent
// streams invert simulated time across transactions — a bounded,
// accepted undercount (streams drift at most a bounded queue depth).
func (ct *contention) overlapping(l int, t0 float64) []span {
	b := ct.busy[l]
	i := sort.Search(len(b), func(k int) bool { return b[k].hi > t0 })
	if i > 0 {
		b = b[i:]
		ct.busy[l] = b
		ct.curSpans -= i
	}
	return b
}

// insertSpan keeps a link's committed spans sorted by end time.
func (ct *contention) insertSpan(l int, s span) {
	b := ct.busy[l]
	i := sort.Search(len(b), func(k int) bool { return b[k].hi > s.hi })
	b = append(b, span{})
	copy(b[i+1:], b[i:])
	b[i] = s
	ct.busy[l] = b
	ct.curSpans++
	if ct.curSpans > ct.peakSpans {
		ct.peakSpans = ct.curSpans
	}
}

// solveLocked runs the progressive-filling sweep: walk simulated time
// from the earliest flow start; between events (a flow starting, a
// flow completing, a committed span's boundary) every active flow
// progresses at min over its links of capacity/(active flows on the
// link); repeat until every batch flow has drained its bytes. Caller
// holds ct.mu.
func (ct *contention) solveLocked(flows []flowReq) []float64 {
	fin := make([]float64, len(flows))
	rem := make([]float64, len(flows))
	active := 0
	t := math.Inf(1)
	for i, f := range flows {
		fin[i] = f.start
		rem[i] = f.bytes
		if f.bytes > 0 {
			active++
			if f.start < t {
				t = f.start
			}
		}
	}
	if active == 0 {
		return fin
	}
	if len(flows) == 1 && ct.soloLocked(flows[0], fin) {
		return fin
	}

	// Committed occupancy overlapping [t, ∞) on the links this batch
	// touches, plus the static event times of the sweep. The touched
	// list drives both the scratch reset and the per-segment counting
	// (link ids repeat across member flows, so it is deduplicated via
	// the counts scratch marking).
	ct.touched = ct.touched[:0]
	events := ct.events[:0]
	for _, f := range flows {
		if f.bytes <= 0 {
			continue
		}
		events = append(events, f.start)
		for _, l := range f.links {
			if ct.counts[l] == -1 {
				continue
			}
			ct.counts[l] = -1 // mark seen
			ct.touched = append(ct.touched, l)
			for _, s := range ct.overlapping(l, t) {
				events = append(events, s.lo, s.hi)
			}
		}
	}
	for _, l := range ct.touched {
		ct.counts[l] = 0
	}
	sort.Float64s(events)
	ct.events = events

	rate := make([]float64, len(flows))
	counts := ct.counts
	for active > 0 {
		// Flow count per link at time t (batch flows + committed spans).
		for _, l := range ct.touched {
			counts[l] = 0
		}
		for i, f := range flows {
			if rem[i] <= 0 || f.start > t {
				continue
			}
			for _, l := range f.links {
				counts[l]++
			}
		}
		for _, l := range ct.touched {
			for _, s := range ct.busy[l] {
				if s.lo <= t && t < s.hi {
					counts[l]++
				}
			}
		}
		for _, l := range ct.touched {
			if counts[l] > ct.maxFlows[l] {
				ct.maxFlows[l] = counts[l]
			}
		}

		// Next static event strictly after t.
		next := math.Inf(1)
		if k := sort.SearchFloat64s(events, t); k < len(events) {
			for ; k < len(events); k++ {
				if events[k] > t {
					next = events[k]
					break
				}
			}
		}

		// Per-flow rates and the earliest completion. rate[i] == 0 marks
		// a flow not running this segment (not started or already done),
		// so the advance below touches exactly the flows priced here —
		// recomputing the segment start from t after advancing would be
		// off by floating-point round-off and could skip a flow.
		dt := next - t
		running := false
		for i, f := range flows {
			rate[i] = 0
			if rem[i] <= 0 || f.start > t {
				continue
			}
			r := math.Inf(1)
			for _, l := range f.links {
				if rr := ct.caps[l] / float64(counts[l]); rr < r {
					r = rr
				}
			}
			if math.IsInf(r, 1) { // infinite-capacity link: free transfer
				rem[i] = 0
				fin[i] = t
				active--
				continue
			}
			rate[i] = r
			running = true
			if d := rem[i] / r; d < dt {
				dt = d
			}
		}
		if !running {
			if active > 0 {
				if math.IsInf(next, 1) {
					panic("cluster: contention solver stuck (no running flow and no pending event)")
				}
				t = next // idle gap before the next flow starts
			}
			continue
		}
		if math.IsInf(dt, 1) || dt < 0 {
			panic(fmt.Sprintf("cluster: contention solver bad step %v", dt))
		}

		t += dt
		for i, f := range flows {
			if rate[i] == 0 {
				continue
			}
			rem[i] -= rate[i] * dt
			if rem[i] <= f.bytes*1e-12 {
				rem[i] = 0
				fin[i] = t
				active--
			}
		}
	}
	return fin
}

// contendedFinish is chargeCollective's completion time under a
// contention topology: each member's flow is its schedule's β-portion
// (wireBytes through the member's own injection links, starting after
// the schedule's latency portion), and one ledger transaction inside a
// second rendezvous round solves all members together — sharing within
// the collective is exact and independent of goroutine scheduling.
func (c *Comm) contendedFinish(r *Rank, op string, entry float64, cost collCost) float64 {
	ct := c.cl.cont
	beta := c.cl.Model.Beta[c.link]
	wireSec := cost.wireBytes * beta
	alphaSec := cost.seconds + cost.seconds2 - wireSec
	if alphaSec < 0 {
		alphaSec = 0
	}
	req := flowReq{start: entry + alphaSec, bytes: cost.wireBytes, links: ct.linksFor(r.ID, c.link)}
	slots := c.exchangeTransform(r, op+"#contend", slot{clock: req.start, val: req},
		func(slots []slot) []slot {
			flows := make([]flowReq, len(slots))
			for i, s := range slots {
				flows[i] = s.val.(flowReq)
			}
			fin := ct.transact(flows)
			out := make([]slot, len(slots))
			for i := range out {
				out[i] = slot{clock: fin[i]}
			}
			return out
		})
	return slots[c.LocalIndex(r)].clock
}
