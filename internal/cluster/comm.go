package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cluster/sim"
)

// Comm is a communicator over a subset of the cluster's ranks, like an
// MPI communicator. All members must call each collective the same
// number of times in the same order, and a communicator may be driven
// by at most one stream of each member rank (enforced; see ForStream
// for the NCCL-style duplication that lets concurrent streams issue
// collectives safely).
//
// Every collective routes its time and traffic through the single
// charging path (chargeCollective), parameterized by the cost model's
// per-op algorithm table (CostModel.Collectives): FlatTree reproduces
// the paper's closed forms, Ring and Pairwise trade latency against
// bandwidth, and Hierarchical runs the two-level sum all-reduce.
type Comm struct {
	cl      *Cluster
	members []int       // global rank ids, ascending
	index   map[int]int // global rank id -> local index
	rv      *rendezvous
	link    Link

	// Per-stream clones (NCCL-style communicator duplication). The
	// clone map lives on the base communicator; clones point back at it
	// so Dup composes regardless of receiver.
	base  *Comm  // nil for a base communicator
	key   string // dup key ("" for the base)
	dupMu sync.Mutex
	dups  map[string]*Comm

	// drivers records, per member rank, the stream that drives this
	// communicator (first use wins); a second stream of the same rank
	// is a programming error that would interleave the rendezvous.
	driverMu sync.Mutex
	drivers  map[int]string

	// lazily built sub-communicators for the hierarchical all-reduce.
	hierOnce    sync.Once
	hierIntra   map[int]*Comm
	hierLeaders *Comm
}

// NewComm creates a communicator over the given global rank ids.
// Call it once (typically before Cluster.Run) and share the value.
func (c *Cluster) NewComm(members []int) *Comm {
	if len(members) == 0 {
		panic("cluster: empty communicator")
	}
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	idx := make(map[int]int, len(sorted))
	for i, m := range sorted {
		if m < 0 || m >= c.N {
			panic(fmt.Sprintf("cluster: member %d outside %d ranks", m, c.N))
		}
		if _, dup := idx[m]; dup {
			panic(fmt.Sprintf("cluster: duplicate member %d", m))
		}
		idx[m] = i
	}
	comm := &Comm{
		cl:      c,
		members: sorted,
		index:   idx,
		rv:      newRendezvous(len(sorted)),
		link:    c.Model.worstLink(sorted),
	}
	c.mu.Lock()
	c.comms = append(c.comms, comm)
	c.mu.Unlock()
	return comm
}

// World returns a communicator over all ranks.
func (c *Cluster) World() *Comm {
	all := make([]int, c.N)
	for i := range all {
		all[i] = i
	}
	return c.NewComm(all)
}

// Dup returns the clone of this communicator dedicated to the given
// key, creating it on first use (NCCL-style communicator duplication).
// A clone shares the base communicator's members, link tier and
// cluster but owns its own rendezvous, so collectives issued on
// different clones never interleave. All member ranks asking for the
// same key receive the same clone; the empty key returns the base
// communicator. Dup on a clone delegates to its base, so the result
// depends only on the key, never on the receiver.
func (c *Comm) Dup(key string) *Comm {
	base := c
	if c.base != nil {
		base = c.base
	}
	if key == "" {
		return base
	}
	base.dupMu.Lock()
	defer base.dupMu.Unlock()
	if d, ok := base.dups[key]; ok {
		return d
	}
	d := &Comm{
		cl:      base.cl,
		members: base.members,
		index:   base.index,
		rv:      newRendezvous(len(base.members)),
		link:    base.link,
		base:    base,
		key:     key,
	}
	base.cl.mu.Lock()
	base.cl.comms = append(base.cl.comms, d)
	base.cl.mu.Unlock()
	if base.dups == nil {
		base.dups = map[string]*Comm{}
	}
	base.dups[key] = d
	return d
}

// ForStream returns the clone of this communicator dedicated to the
// rank handle's stream (Dup keyed by the stream name). Collective-
// bearing code that may run on a forked stream — a prefetching
// pipeline stage, say — calls this so each stream of a rank drives its
// own clone: the main timeline gets the base communicator, and every
// same-named stream across the member ranks meets on the same clone.
func (c *Comm) ForStream(r *Rank) *Comm { return c.Dup(r.stream) }

// checkDriver enforces the one-driving-stream-per-member-rank
// invariant: the first collective a rank issues on this communicator
// binds it to that rank's stream for the cluster's lifetime.
func (c *Comm) checkDriver(r *Rank) {
	c.driverMu.Lock()
	defer c.driverMu.Unlock()
	if c.drivers == nil {
		c.drivers = map[int]string{}
	}
	prev, ok := c.drivers[r.ID]
	if !ok {
		c.drivers[r.ID] = r.stream
		return
	}
	if prev != r.stream {
		panic(fmt.Sprintf("cluster: comm %v (dup %q) driven by two streams of rank %d (%q then %q); duplicate it per stream with ForStream/Dup",
			c.members, c.key, r.ID, prev, r.stream))
	}
}

// resetDrivers clears the stream bindings; Cluster.Run calls it so a
// later run may drive this communicator from a differently-named
// stream than the last.
func (c *Comm) resetDrivers() {
	c.driverMu.Lock()
	c.drivers = nil
	c.driverMu.Unlock()
}

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.members) }

// LocalIndex returns the rank's index within the communicator.
func (c *Comm) LocalIndex(r *Rank) int {
	i, ok := c.index[r.ID]
	if !ok {
		panic(fmt.Sprintf("cluster: rank %d not a member of communicator %v", r.ID, c.members))
	}
	return i
}

// Members returns the member rank ids (ascending). Do not modify.
func (c *Comm) Members() []int { return c.members }

// Tier returns the interconnect tier this communicator's collectives
// charge at (the worst link among its member pairs).
func (c *Comm) Tier() Link { return c.link }

// slot is the per-member contribution to a collective exchange.
type slot struct {
	clock float64
	val   any
	bytes int
}

// rendezvous synchronizes one collective call across n participants
// with a generation counter so back-to-back collectives don't race.
// It detects two classes of would-be deadlocks and poisons itself so
// every participant panics with a diagnostic instead of hanging:
// mismatched collective sequences (members calling different
// collectives on the same communicator) and abandoned collectives (a
// member's rank body returned while peers wait for it).
type rendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	op      string // collective name of the in-flight generation
	waiting []bool // member indices arrived in the current generation
	slots   []slot
	out     []slot
	// bufs is a three-generation ring reusing the slot storage instead
	// of allocating n slots per collective. Three is the safe depth: a
	// participant consumes generation g's slots before it arrives at
	// generation g+2 (collectives finish reading before returning, and
	// the contention charging path interposes at most one nested
	// generation), and generation g+3's first arrival — the earliest
	// reuse — requires g+2 to have completed, i.e. every participant
	// to have arrived at g+2.
	bufs   [3][]slot
	failed error // poisoned: every current and future participant panics
	// parked are the DES tasks waiting on the in-flight generation
	// (the discrete-event analogue of the cond.Wait set); the last
	// arriver — or the poison path — readies them at their recorded
	// entry clocks and clears the list.
	parked []desWaiter
}

// desWaiter is one parked DES task plus the simulated time to ready it
// at (its entry clock; collectives complete at max entry + cost, so
// the wake time only orders events, never changes results).
type desWaiter struct {
	task  *sim.Task
	clock float64
}

func newRendezvous(n int) *rendezvous {
	rv := &rendezvous{n: n, waiting: make([]bool, n)}
	rv.cond = sync.NewCond(&rv.mu)
	return rv
}

// genBuf returns the reusable slot buffer for the current generation.
// Caller holds rv.mu (first arrival of the generation).
func (rv *rendezvous) genBuf() []slot {
	i := rv.gen % 3
	if rv.bufs[i] == nil {
		rv.bufs[i] = make([]slot, rv.n)
	}
	return rv.bufs[i]
}

// poison marks the rendezvous failed and wakes every waiter — blocked
// goroutines via the condition variable and parked DES tasks via the
// scheduler — so callers panic with the recorded error instead of
// hanging. Caller holds rv.mu.
func (c *Comm) poison(err error) {
	rv := c.rv
	rv.failed = err
	rv.cond.Broadcast()
	if len(rv.parked) > 0 {
		s := c.cl.sched
		for _, w := range rv.parked {
			s.Ready(w.task, w.clock)
		}
		rv.parked = rv.parked[:0]
	}
}

// diag appends execution-backend context to a deadlock diagnostic:
// which backend was running and, under DES, how deep the event queue
// was when the rendezvous was poisoned (a drained queue with parked
// ranks is the classic symptom; a deep one points at livelock in the
// simulated program instead).
func (c *Comm) diag() string {
	if s := c.cl.sched; s != nil {
		return fmt.Sprintf(" [backend=des, %d queued events]", s.Depth())
	}
	return fmt.Sprintf(" [backend=%s]", c.cl.backend)
}

// exchange contributes one slot under the named collective and returns
// all n slots once every participant has arrived. The returned slice
// is shared and must be treated as read-only. Deadlock detection: a
// participant whose collective name disagrees with the in-flight one,
// or whose peers can never arrive because their rank bodies already
// returned, poisons the rendezvous and panics all participants.
func (c *Comm) exchange(r *Rank, op string, s slot) []slot {
	return c.exchangeTransform(r, op, s, nil)
}

// exchangeTransform is exchange with a completion hook: the last
// arriver applies transform to the full slot set (under the rendezvous
// lock, so the call is atomic with respect to this communicator) and
// every participant receives the transformed slots. The contention
// charging path uses it to solve one collective's member flows in a
// single ledger transaction. A nil transform returns the slots as-is.
func (c *Comm) exchangeTransform(r *Rank, op string, s slot, transform func([]slot) []slot) []slot {
	c.checkDriver(r)
	idx := c.LocalIndex(r)
	rv := c.rv
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.failed != nil {
		panic(rv.failed)
	}
	if rv.arrived == 0 {
		rv.op = op
	} else if rv.op != op {
		err := fmt.Errorf("cluster: mismatched collectives on comm %v (dup %q): rank %d called %s while %s is in flight%s",
			c.members, c.key, r.ID, op, rv.op, c.diag())
		c.poison(err)
		panic(err)
	}
	if rv.arrived == 0 {
		rv.slots = rv.genBuf()
	}
	rv.slots[idx] = s
	rv.waiting[idx] = true
	rv.arrived++
	if rv.arrived == rv.n {
		if transform != nil {
			// A transform panic fires with the generation complete, which
			// disables both of the deadlock detector's poison paths (the
			// entry scan and checkAbandoned bail when arrived == n), so
			// poison the rendezvous here before propagating: the n-1
			// waiters panic with the diagnostic instead of blocking in
			// cond.Wait forever.
			func() {
				defer func() {
					if p := recover(); p != nil {
						err := fmt.Errorf("cluster: %s transform panicked on comm %v (dup %q): %v%s",
							op, c.members, c.key, p, c.diag())
						c.poison(err)
						panic(err)
					}
				}()
				rv.out = transform(rv.slots)
			}()
		} else {
			rv.out = rv.slots
		}
		rv.slots = nil
		rv.arrived = 0
		rv.op = ""
		for i := range rv.waiting {
			rv.waiting[i] = false
		}
		rv.gen++
		rv.cond.Broadcast()
		if len(rv.parked) > 0 {
			// DES: the generation is complete; ready every parked peer
			// at its entry clock (completion time is charged by each
			// member itself, so the wake time only orders events).
			s := c.cl.sched
			for _, w := range rv.parked {
				s.Ready(w.task, w.clock)
			}
			rv.parked = rv.parked[:0]
		}
		return rv.out
	}
	// A peer that already finished its rank body can never arrive. The
	// scan is gated on the lock-free anyDone flag, so the common case
	// (all bodies still running) pays nothing here.
	if c.cl.anyDone.Load() {
		if m := c.abandonedLocked(); m >= 0 {
			err := c.abandonErr(m, op)
			c.poison(err)
			panic(err)
		}
	}
	gen := rv.gen
	if t := r.task; t != nil {
		// DES: park on the scheduler instead of the condition
		// variable. One wake suffices — only generation completion or
		// poison readies a parked waiter, and the next generation
		// cannot finish (it needs this very rank) before the task
		// resumes, so rv.out is still ours on wake.
		rv.parked = append(rv.parked, desWaiter{task: t, clock: s.clock})
		rv.mu.Unlock()
		t.Park()
		rv.mu.Lock()
		if rv.failed != nil {
			panic(rv.failed)
		}
		if rv.gen == gen {
			panic(fmt.Sprintf("cluster: spurious DES wake on comm %v (dup %q) during %s", c.members, c.key, op))
		}
		return rv.out
	}
	for rv.gen == gen {
		if rv.failed != nil {
			panic(rv.failed)
		}
		rv.cond.Wait()
	}
	return rv.out
}

// abandonedLocked returns a member rank that can never join the
// in-flight collective because its body already returned, or -1.
// Caller holds rv.mu.
func (c *Comm) abandonedLocked() int {
	rv := c.rv
	if rv.failed != nil || rv.arrived == 0 || rv.arrived == rv.n {
		return -1
	}
	c.cl.mu.Lock()
	defer c.cl.mu.Unlock()
	if c.cl.done == nil {
		return -1
	}
	for i, m := range c.members {
		if !rv.waiting[i] && c.cl.done[m] {
			return m
		}
	}
	return -1
}

// abandonErr is the shared diagnostic for a collective a peer can
// never join. When the peer died to an injected fail-stop the error is
// a recoverable fault abort (wraps ErrRankFailed — the collective
// timeout/abort semantics surviving ranks observe); otherwise it is
// the bug-class deadlock diagnostic that crashes as before.
func (c *Comm) abandonErr(m int, op string) error {
	if f := c.cl.failureOf(m); f != nil {
		// Wrapping f itself (not just the sentinel) keeps the root
		// *RankFailure reachable via errors.As, so a survivor's abort
		// error records the same root when IT abandons collectives in
		// turn — cascades stay fault-class all the way down.
		if f.Rank != m {
			// Cascade: m never failed itself — it aborted on a peer's
			// fail-stop elsewhere and so will never join here.
			return fmt.Errorf("cluster: collective aborted on comm %v (dup %q): rank %d aborted before joining %s%s: %w",
				c.members, c.key, m, op, c.diag(), f)
		}
		return fmt.Errorf("cluster: collective aborted on comm %v (dup %q): rank %d died before joining %s%s: %w",
			c.members, c.key, m, op, c.diag(), f)
	}
	return fmt.Errorf("cluster: deadlock on comm %v (dup %q): rank %d finished without joining %s%s",
		c.members, c.key, m, op, c.diag())
}

// checkAbandoned poisons the rendezvous if members are waiting for a
// peer whose rank body has already returned. Called by the cluster
// each time a rank body finishes.
func (c *Comm) checkAbandoned() {
	rv := c.rv
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if m := c.abandonedLocked(); m >= 0 {
		c.poison(c.abandonErr(m, rv.op))
	}
}

// maxClock returns the maximum entry clock across slots: collectives
// are bulk synchronous, so everyone leaves no earlier than the slowest
// arriver plus the modeled cost.
func maxClock(slots []slot) float64 {
	m := 0.0
	for _, s := range slots {
		if s.clock > m {
			m = s.clock
		}
	}
	return m
}

func log2Ceil(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// finish sets the rank's clock to the synchronized completion time and
// books the delta as communication in the current phase.
func (c *Comm) finish(r *Rank, doneAt float64) {
	if doneAt < r.clock {
		doneAt = r.clock
	}
	r.advance(doneAt-r.clock, true)
}

// Barrier synchronizes all members; cost α·⌈log2 n⌉ at the worst tier.
func Barrier(c *Comm, r *Rank) {
	slots := c.exchange(r, "barrier", slot{clock: r.clock})
	c.chargeCollective(r, "barrier", maxClock(slots), barrierCost(c))
}

// Broadcast sends root's value to every member. bytes is the payload
// size for cost accounting; FlatTree charges the binomial tree
// (α + β·bytes)·⌈log2 n⌉, Ring the pipelined (n−1)·α + β·bytes. The
// value is shared, not copied: receivers must treat it as read-only.
func Broadcast[T any](c *Comm, r *Rank, root int, val T, bytes int) T {
	return broadcastAlg(c, r, root, val, bytes, c.allReduceAlg())
}

// broadcastAlg is Broadcast pinned to an algorithm; the hierarchical
// all-reduce uses it to keep its intra-node stages on the flat tree
// regardless of the table (Hierarchical itself maps to FlatTree here).
func broadcastAlg[T any](c *Comm, r *Rank, root int, val T, bytes int, alg CollectiveAlgorithm) T {
	if alg != Ring {
		alg = FlatTree
	}
	me := c.LocalIndex(r)
	s := slot{clock: r.clock}
	if me == root {
		s.val = val
		s.bytes = bytes
	}
	slots := c.exchange(r, "broadcast", s)
	rs := slots[root]
	c.chargeCollective(r, "broadcast", maxClock(slots), broadcastCost(c, alg, rs.bytes, me == root))
	return rs.val.(T)
}

// AllGather collects every member's value; the result is indexed by
// local member index. FlatTree charges recursive doubling
// α·⌈log2 n⌉ + β·(total bytes); Ring charges (n−1)·α with the same β
// term.
func AllGather[T any](c *Comm, r *Rank, val T, bytes int) []T {
	slots := c.exchange(r, "allgather", slot{clock: r.clock, val: val, bytes: bytes})
	total := 0
	for _, s := range slots {
		total += s.bytes
	}
	c.chargeCollective(r, "allgather", maxClock(slots), allGatherCost(c, c.allReduceAlg(), total, bytes))
	out := make([]T, len(slots))
	for i, s := range slots {
		out[i] = s.val.(T)
	}
	return out
}

// Gather collects every member's value at root; non-root members
// receive nil. Cost at root α·⌈log2 n⌉ + β·(received bytes); leaves pay
// α + β·(own bytes).
func Gather[T any](c *Comm, r *Rank, root int, val T, bytes int) []T {
	me := c.LocalIndex(r)
	slots := c.exchange(r, "gather", slot{clock: r.clock, val: val, bytes: bytes})
	entry := maxClock(slots)
	if me == root {
		total := 0
		for i, s := range slots {
			if i != root {
				total += s.bytes
			}
		}
		c.chargeCollective(r, "gather", entry, gatherCost(c, total, bytes, true))
		out := make([]T, len(slots))
		for i, s := range slots {
			out[i] = s.val.(T)
		}
		return out
	}
	c.chargeCollective(r, "gather", entry, gatherCost(c, 0, bytes, false))
	return nil
}

// Scatter distributes parts[i] from root to member i. Root must pass a
// slice with one entry per member; others pass nil. bytes sizes each
// part for cost accounting. Root's completion charges the total volume
// sent (a sequential ISend loop as in Algorithm 2); each receiver
// charges α + β·(its part).
func Scatter[T any](c *Comm, r *Rank, root int, parts []T, bytes func(T) int) T {
	me := c.LocalIndex(r)
	s := slot{clock: r.clock}
	if me == root {
		if len(parts) != c.Size() {
			panic(fmt.Sprintf("cluster: Scatter root passed %d parts for %d members", len(parts), c.Size()))
		}
		s.val = parts
	}
	slots := c.exchange(r, "scatter", s)
	entry := maxClock(slots)
	rootParts := slots[root].val.([]T)
	mine := rootParts[me]
	if me == root {
		total := 0
		for i, p := range rootParts {
			if i != root {
				total += bytes(p)
			}
		}
		c.chargeCollective(r, "scatter", entry, scatterCost(c, total, 0, true))
	} else {
		c.chargeCollective(r, "scatter", entry, scatterCost(c, 0, bytes(mine), false))
	}
	return mine
}

// AllToAllv exchanges parts[i] from each member to member i; the result
// holds the parts addressed to the caller, indexed by sender. FlatTree
// charges the linear exchange (n−1)·α + β·max(bytes sent, bytes
// received); Pairwise charges the Bruck log-round schedule. Excludes
// the self part. This is the feature-fetching primitive of Section 6.2.
func AllToAllv[T any](c *Comm, r *Rank, parts []T, bytes func(T) int) []T {
	me := c.LocalIndex(r)
	if len(parts) != c.Size() {
		panic(fmt.Sprintf("cluster: AllToAllv passed %d parts for %d members", len(parts), c.Size()))
	}
	slots := c.exchange(r, "alltoallv", slot{clock: r.clock, val: parts})
	entry := maxClock(slots)
	sent := 0
	for i, p := range parts {
		if i != me {
			sent += bytes(p)
		}
	}
	out := make([]T, c.Size())
	recvd := 0
	for i, s := range slots {
		p := s.val.([]T)[me]
		out[i] = p
		if i != me {
			recvd += bytes(p)
		}
	}
	c.chargeCollective(r, "alltoallv", entry, allToAllvCost(c, c.allToAllAlg(), sent, recvd))
	return out
}

// AllReduceSum sums float64 slices elementwise across members; every
// member receives the total. FlatTree charges the paper's T_allreduce
// model α·⌈log2 n⌉ + β·bytes, Ring the reduce-scatter + all-gather
// schedule, and Hierarchical the two-level intra-node / leaders
// composition; every schedule also charges the local-reduction memory
// traffic per the shared charging-path convention.
func AllReduceSum(c *Comm, r *Rank, x []float64) []float64 {
	alg := c.allReduceAlg()
	if alg == Hierarchical {
		return allReduceSumHier(c, r, x)
	}
	return allReduceSumAlg(c, r, x, alg)
}

// allReduceSumAlg runs the rendezvous and fold shared by the flat and
// ring schedules; only the charged cost differs. Members copy the
// shared total into caller-owned storage so the result may be scaled
// in place.
func allReduceSumAlg(c *Comm, r *Rank, x []float64, alg CollectiveAlgorithm) []float64 {
	out := allReduceSumAlgShared(c, r, x, alg, nil)
	return append([]float64(nil), out...)
}

// allReduceSumAlgShared is the fold core of the sum all-reduce. The
// elementwise fold is identical on every member (zeros, then += each
// slot in member order), so the last arriver computes it once inside
// the rendezvous transform — O(n·len) total instead of the O(n²·len)
// of every member re-folding all n slots, the dominant simulator cost
// at large p — and every member receives the one shared total, which
// must be treated as read-only. A non-nil apply runs on the shared
// total inside the transform: exactly once per collective, while every
// other member is blocked in the rendezvous, which is what makes the
// shared-model optimizer step of AllReduceSumApply race-free on both
// backends.
func allReduceSumAlgShared(c *Comm, r *Rank, x []float64, alg CollectiveAlgorithm, apply func(total []float64)) []float64 {
	slots := c.exchangeTransform(r, "allreduce", slot{clock: r.clock, val: x, bytes: 8 * len(x)},
		func(slots []slot) []slot {
			sum := make([]float64, len(slots[0].val.([]float64)))
			maxBytes := 0
			for _, s := range slots {
				v := s.val.([]float64)
				if len(v) != len(sum) {
					panic(fmt.Sprintf("cluster: AllReduceSum length mismatch %d vs %d", len(v), len(sum)))
				}
				for i, f := range v {
					sum[i] += f
				}
				if s.bytes > maxBytes {
					maxBytes = s.bytes
				}
			}
			if apply != nil {
				apply(sum)
			}
			for i := range slots {
				slots[i].val = sum
				slots[i].bytes = maxBytes
			}
			return slots
		})
	entry := maxClock(slots)
	me := c.LocalIndex(r)
	out := slots[me].val.([]float64)
	c.chargeCollective(r, "allreduce", entry, allReduceCost(c, alg, slots[me].bytes, 8*len(x)))
	return out
}

// AllReduceSumApply is AllReduceSum fused with a post-reduction step
// that must run exactly once per collective across all members — the
// shape of data-parallel training with a shared model: all ranks hold
// identical parameters, so instead of every rank copying the reduced
// gradient and applying an identical optimizer step to its own replica,
// apply(total) runs once, inside the collective, on the one shared sum
// (scale it, step the one shared optimizer/model). The charged time and
// traffic are identical to AllReduceSum on every member; what changes
// is only the host-side work the simulator itself performs, which is
// what the replicated-state dedup removes at large p. apply runs while
// every member is synchronized inside the rendezvous (for the
// hierarchical schedule: inside the node-leader stage, before any
// member leaves the broadcast), so mutations of shared training state
// are race-free under both backends.
func AllReduceSumApply(c *Comm, r *Rank, x []float64, apply func(total []float64)) {
	alg := c.allReduceAlg()
	if alg == Hierarchical {
		allReduceSumHierApply(c, r, x, apply)
		return
	}
	allReduceSumAlgShared(c, r, x, alg, apply)
}

// AllReduceGeneric folds arbitrary values with a user combiner; every
// member receives combine applied over all members' values in member
// order. bytes sizes the caller's contribution; per the shared
// charging-path convention the β term and the local-reduction memory
// traffic both cost on the maximum contribution across members. The
// fold always runs flat (member order — the combiner need not be
// commutative), so a Hierarchical selection charges the flat schedule;
// Ring charges the ring schedule. Used for sparse-matrix all-reduce in
// the 1.5D SpGEMM.
func AllReduceGeneric[T any](c *Comm, r *Rank, val T, bytes int, combine func(a, b T) T) T {
	alg := c.allReduceAlg()
	if alg != Ring {
		alg = FlatTree
	}
	slots := c.exchange(r, "allreduce-generic", slot{clock: r.clock, val: val, bytes: bytes})
	entry := maxClock(slots)
	acc := slots[0].val.(T)
	for _, s := range slots[1:] {
		acc = combine(acc, s.val.(T))
	}
	maxBytes := 0
	for _, s := range slots {
		if s.bytes > maxBytes {
			maxBytes = s.bytes
		}
	}
	c.chargeCollective(r, "allreduce-generic", entry, allReduceCost(c, alg, maxBytes, bytes))
	return acc
}

// AllReduceGenericInto is AllReduceGeneric with the fold run once,
// inside the rendezvous, by a caller-supplied reducer that writes each
// member's private result into that member's destination (the same
// move allReduceSumAlgShared made for the elementwise sum — O(n)
// combines total instead of every member redoing all n). reduce
// receives the contributions and the destinations in member order and
// must leave every destination holding the full fold; each member
// returns its own destination, free to mutate. Because the fold
// completes before any member leaves the collective — while every
// member is parked, its buffers quiescent — a caller may contribute
// and receive epoch-persistent arena storage: the property the 1.5D
// SpGEMM's accumulator and result arenas rely on. The charged time and
// traffic are identical to AllReduceGeneric.
func AllReduceGenericInto[T, D any](c *Comm, r *Rank, val T, bytes int, dest D, reduce func(vals []T, dests []D)) D {
	alg := c.allReduceAlg()
	if alg != Ring {
		alg = FlatTree
	}
	type contrib struct {
		val  T
		dest D
	}
	slots := c.exchangeTransform(r, "allreduce-generic", slot{clock: r.clock, val: contrib{val, dest}, bytes: bytes},
		func(slots []slot) []slot {
			vals := make([]T, len(slots))
			dests := make([]D, len(slots))
			for i, s := range slots {
				cb := s.val.(contrib)
				vals[i], dests[i] = cb.val, cb.dest
			}
			reduce(vals, dests)
			maxBytes := 0
			for _, s := range slots {
				if s.bytes > maxBytes {
					maxBytes = s.bytes
				}
			}
			for i := range slots {
				slots[i].val = dests[i]
				slots[i].bytes = maxBytes
			}
			return slots
		})
	entry := maxClock(slots)
	me := c.LocalIndex(r)
	c.chargeCollective(r, "allreduce-generic", entry, allReduceCost(c, alg, slots[me].bytes, bytes))
	return slots[me].val.(D)
}

// allReduceSumHier is the hierarchical (two-level) sum all-reduce,
// selected by CostModel.Collectives.AllReduce = Hierarchical: members
// reduce within their node at the NVLink tier, node leaders all-reduce
// across the network, then leaders broadcast back within the node —
// the NCCL-style algorithm that keeps the slow tier's traffic
// proportional to the node count rather than the rank count (visible
// in the per-link byte counters). Falls back to the flat schedule when
// the communicator sits on one node. The inner stages are pinned to
// FlatTree so the composition is exactly the paper's.
func allReduceSumHier(c *Comm, r *Rank, x []float64) []float64 {
	// The broadcast value is shared storage owned by the leader's
	// stage, and members copy it after the rendezvous releases them;
	// every member must leave it untouched and return a private copy
	// so callers may scale the result in place (the flat algorithm
	// also returns caller-owned storage).
	return append([]float64(nil), allReduceSumHierApply(c, r, x, nil)...)
}

// allReduceSumHierApply is the hierarchical schedule over shared
// storage: the intra-node stage's partial and the final total are the
// transform-allocated shared sums (no per-member copies), and a
// non-nil apply runs once globally, inside the node-leader all-reduce
// — before any member can leave the closing intra-node broadcast. The
// returned slice is shared and must be treated as read-only.
func allReduceSumHierApply(c *Comm, r *Rank, x []float64, apply func(total []float64)) []float64 {
	model := c.cl.Model
	// Group members by node.
	nodeOf := map[int]int{}
	nodes := map[int][]int{}
	for _, m := range c.members {
		n := model.node(m)
		nodeOf[m] = n
		nodes[n] = append(nodes[n], m)
	}
	if len(nodes) <= 1 {
		return allReduceSumAlgShared(c, r, x, FlatTree, apply)
	}

	// The collective structure must be identical on every member, so
	// build the intra-node and leader communicators deterministically.
	// Communicators are cached on the cluster by construction order;
	// here we derive them per call through the comm's sub-communicator
	// cache.
	intra, leaders := c.hierComms()

	myNodeComm := intra[nodeOf[r.ID]]
	partial := allReduceSumAlgShared(myNodeComm, r, x, FlatTree, nil)

	// Node leaders (smallest rank per node) reduce across nodes.
	leader := myNodeComm.members[0]
	var total []float64
	if r.ID == leader {
		total = allReduceSumAlgShared(leaders, r, partial, FlatTree, apply)
	}
	// Broadcast the result back within each node (the payload size, not
	// the value, is what the charge depends on, so non-leaders' nil
	// contribution costs the same as ever).
	return broadcastAlg(myNodeComm, r, 0, total, 8*len(x), FlatTree)
}

// hierComms lazily builds (exactly once) the per-node and leader
// sub-communicators of this communicator. All members must share the
// same instances or their rendezvous would never meet.
func (c *Comm) hierComms() (map[int]*Comm, *Comm) {
	c.hierOnce.Do(func() {
		model := c.cl.Model
		nodes := map[int][]int{}
		var nodeOrder []int
		for _, m := range c.members {
			n := model.node(m)
			if _, ok := nodes[n]; !ok {
				nodeOrder = append(nodeOrder, n)
			}
			nodes[n] = append(nodes[n], m)
		}
		intra := map[int]*Comm{}
		var leaderRanks []int
		for _, n := range nodeOrder {
			intra[n] = c.cl.NewComm(nodes[n])
			leaderRanks = append(leaderRanks, nodes[n][0])
		}
		c.hierIntra = intra
		c.hierLeaders = c.cl.NewComm(leaderRanks)
	})
	return c.hierIntra, c.hierLeaders
}
