package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Comm is a communicator over a subset of the cluster's ranks, like an
// MPI communicator. All members must call each collective the same
// number of times in the same order, and a communicator may be driven
// by at most one stream of each member rank (enforced; see ForStream
// for the NCCL-style duplication that lets concurrent streams issue
// collectives safely).
type Comm struct {
	cl      *Cluster
	members []int       // global rank ids, ascending
	index   map[int]int // global rank id -> local index
	rv      *rendezvous
	link    Link

	// Per-stream clones (NCCL-style communicator duplication). The
	// clone map lives on the base communicator; clones point back at it
	// so Dup composes regardless of receiver.
	base  *Comm  // nil for a base communicator
	key   string // dup key ("" for the base)
	dupMu sync.Mutex
	dups  map[string]*Comm

	// drivers records, per member rank, the stream that drives this
	// communicator (first use wins); a second stream of the same rank
	// is a programming error that would interleave the rendezvous.
	driverMu sync.Mutex
	drivers  map[int]string

	// lazily built sub-communicators for AllReduceSumHier.
	hierOnce    sync.Once
	hierIntra   map[int]*Comm
	hierLeaders *Comm
}

// NewComm creates a communicator over the given global rank ids.
// Call it once (typically before Cluster.Run) and share the value.
func (c *Cluster) NewComm(members []int) *Comm {
	if len(members) == 0 {
		panic("cluster: empty communicator")
	}
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	idx := make(map[int]int, len(sorted))
	for i, m := range sorted {
		if m < 0 || m >= c.N {
			panic(fmt.Sprintf("cluster: member %d outside %d ranks", m, c.N))
		}
		if _, dup := idx[m]; dup {
			panic(fmt.Sprintf("cluster: duplicate member %d", m))
		}
		idx[m] = i
	}
	comm := &Comm{
		cl:      c,
		members: sorted,
		index:   idx,
		rv:      newRendezvous(len(sorted)),
		link:    c.Model.worstLink(sorted),
	}
	c.mu.Lock()
	c.comms = append(c.comms, comm)
	c.mu.Unlock()
	return comm
}

// World returns a communicator over all ranks.
func (c *Cluster) World() *Comm {
	all := make([]int, c.N)
	for i := range all {
		all[i] = i
	}
	return c.NewComm(all)
}

// Dup returns the clone of this communicator dedicated to the given
// key, creating it on first use (NCCL-style communicator duplication).
// A clone shares the base communicator's members, link tier and
// cluster but owns its own rendezvous, so collectives issued on
// different clones never interleave. All member ranks asking for the
// same key receive the same clone; the empty key returns the base
// communicator. Dup on a clone delegates to its base, so the result
// depends only on the key, never on the receiver.
func (c *Comm) Dup(key string) *Comm {
	base := c
	if c.base != nil {
		base = c.base
	}
	if key == "" {
		return base
	}
	base.dupMu.Lock()
	defer base.dupMu.Unlock()
	if d, ok := base.dups[key]; ok {
		return d
	}
	d := &Comm{
		cl:      base.cl,
		members: base.members,
		index:   base.index,
		rv:      newRendezvous(len(base.members)),
		link:    base.link,
		base:    base,
		key:     key,
	}
	base.cl.mu.Lock()
	base.cl.comms = append(base.cl.comms, d)
	base.cl.mu.Unlock()
	if base.dups == nil {
		base.dups = map[string]*Comm{}
	}
	base.dups[key] = d
	return d
}

// ForStream returns the clone of this communicator dedicated to the
// rank handle's stream (Dup keyed by the stream name). Collective-
// bearing code that may run on a forked stream — a prefetching
// pipeline stage, say — calls this so each stream of a rank drives its
// own clone: the main timeline gets the base communicator, and every
// same-named stream across the member ranks meets on the same clone.
func (c *Comm) ForStream(r *Rank) *Comm { return c.Dup(r.stream) }

// checkDriver enforces the one-driving-stream-per-member-rank
// invariant: the first collective a rank issues on this communicator
// binds it to that rank's stream for the cluster's lifetime.
func (c *Comm) checkDriver(r *Rank) {
	c.driverMu.Lock()
	defer c.driverMu.Unlock()
	if c.drivers == nil {
		c.drivers = map[int]string{}
	}
	prev, ok := c.drivers[r.ID]
	if !ok {
		c.drivers[r.ID] = r.stream
		return
	}
	if prev != r.stream {
		panic(fmt.Sprintf("cluster: comm %v (dup %q) driven by two streams of rank %d (%q then %q); duplicate it per stream with ForStream/Dup",
			c.members, c.key, r.ID, prev, r.stream))
	}
}

// resetDrivers clears the stream bindings; Cluster.Run calls it so a
// later run may drive this communicator from a differently-named
// stream than the last.
func (c *Comm) resetDrivers() {
	c.driverMu.Lock()
	c.drivers = nil
	c.driverMu.Unlock()
}

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.members) }

// LocalIndex returns the rank's index within the communicator.
func (c *Comm) LocalIndex(r *Rank) int {
	i, ok := c.index[r.ID]
	if !ok {
		panic(fmt.Sprintf("cluster: rank %d not a member of communicator %v", r.ID, c.members))
	}
	return i
}

// Members returns the member rank ids (ascending). Do not modify.
func (c *Comm) Members() []int { return c.members }

// slot is the per-member contribution to a collective exchange.
type slot struct {
	clock float64
	val   any
	bytes int
}

// rendezvous synchronizes one collective call across n participants
// with a generation counter so back-to-back collectives don't race.
// It detects two classes of would-be deadlocks and poisons itself so
// every participant panics with a diagnostic instead of hanging:
// mismatched collective sequences (members calling different
// collectives on the same communicator) and abandoned collectives (a
// member's rank body returned while peers wait for it).
type rendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	op      string // collective name of the in-flight generation
	waiting []bool // member indices arrived in the current generation
	slots   []slot
	out     []slot
	failed  error // poisoned: every current and future participant panics
}

func newRendezvous(n int) *rendezvous {
	rv := &rendezvous{n: n, waiting: make([]bool, n)}
	rv.cond = sync.NewCond(&rv.mu)
	return rv
}

// poison marks the rendezvous failed and wakes every waiter; callers
// panic with the recorded error.
func (rv *rendezvous) poison(err error) {
	rv.failed = err
	rv.cond.Broadcast()
}

// exchange contributes one slot under the named collective and returns
// all n slots once every participant has arrived. The returned slice
// is shared and must be treated as read-only. Deadlock detection: a
// participant whose collective name disagrees with the in-flight one,
// or whose peers can never arrive because their rank bodies already
// returned, poisons the rendezvous and panics all participants.
func (c *Comm) exchange(r *Rank, op string, s slot) []slot {
	c.checkDriver(r)
	idx := c.LocalIndex(r)
	rv := c.rv
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.failed != nil {
		panic(rv.failed)
	}
	if rv.arrived == 0 {
		rv.op = op
	} else if rv.op != op {
		err := fmt.Errorf("cluster: mismatched collectives on comm %v (dup %q): rank %d called %s while %s is in flight",
			c.members, c.key, r.ID, op, rv.op)
		rv.poison(err)
		panic(err)
	}
	if rv.slots == nil {
		rv.slots = make([]slot, rv.n)
	}
	rv.slots[idx] = s
	rv.waiting[idx] = true
	rv.arrived++
	if rv.arrived == rv.n {
		rv.out = rv.slots
		rv.slots = nil
		rv.arrived = 0
		rv.op = ""
		for i := range rv.waiting {
			rv.waiting[i] = false
		}
		rv.gen++
		rv.cond.Broadcast()
		return rv.out
	}
	// A peer that already finished its rank body can never arrive. The
	// scan is gated on the lock-free anyDone flag, so the common case
	// (all bodies still running) pays nothing here.
	if c.cl.anyDone.Load() {
		if m := c.abandonedLocked(); m >= 0 {
			err := c.abandonErr(m, op)
			rv.poison(err)
			panic(err)
		}
	}
	gen := rv.gen
	for rv.gen == gen {
		if rv.failed != nil {
			panic(rv.failed)
		}
		rv.cond.Wait()
	}
	return rv.out
}

// abandonedLocked returns a member rank that can never join the
// in-flight collective because its body already returned, or -1.
// Caller holds rv.mu.
func (c *Comm) abandonedLocked() int {
	rv := c.rv
	if rv.failed != nil || rv.arrived == 0 || rv.arrived == rv.n {
		return -1
	}
	c.cl.mu.Lock()
	defer c.cl.mu.Unlock()
	if c.cl.done == nil {
		return -1
	}
	for i, m := range c.members {
		if !rv.waiting[i] && c.cl.done[m] {
			return m
		}
	}
	return -1
}

// abandonErr is the shared deadlock diagnostic.
func (c *Comm) abandonErr(m int, op string) error {
	return fmt.Errorf("cluster: deadlock on comm %v (dup %q): rank %d finished without joining %s",
		c.members, c.key, m, op)
}

// checkAbandoned poisons the rendezvous if members are waiting for a
// peer whose rank body has already returned. Called by the cluster
// each time a rank body finishes.
func (c *Comm) checkAbandoned() {
	rv := c.rv
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if m := c.abandonedLocked(); m >= 0 {
		rv.poison(c.abandonErr(m, rv.op))
	}
}

// maxClock returns the maximum entry clock across slots: collectives
// are bulk synchronous, so everyone leaves no earlier than the slowest
// arriver plus the modeled cost.
func maxClock(slots []slot) float64 {
	m := 0.0
	for _, s := range slots {
		if s.clock > m {
			m = s.clock
		}
	}
	return m
}

func log2Ceil(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// finish sets the rank's clock to the synchronized completion time and
// books the delta as communication in the current phase.
func (c *Comm) finish(r *Rank, doneAt float64) {
	if doneAt < r.clock {
		doneAt = r.clock
	}
	r.advance(doneAt-r.clock, true)
}

// Barrier synchronizes all members; cost α·⌈log2 n⌉ at the worst tier.
func Barrier(c *Comm, r *Rank) {
	slots := c.exchange(r, "barrier", slot{clock: r.clock})
	cost := c.cl.Model.Alpha[c.link] * log2Ceil(c.Size())
	c.finish(r, maxClock(slots)+cost)
}

// Broadcast sends root's value to every member. bytes is the payload
// size for cost accounting; cost (α + β·bytes)·⌈log2 n⌉ models a
// binomial tree. The value is shared, not copied: receivers must treat
// it as read-only.
func Broadcast[T any](c *Comm, r *Rank, root int, val T, bytes int) T {
	me := c.LocalIndex(r)
	s := slot{clock: r.clock}
	if me == root {
		s.val = val
		s.bytes = bytes
	}
	slots := c.exchange(r, "broadcast", s)
	rs := slots[root]
	cost := (c.cl.Model.Alpha[c.link] + float64(rs.bytes)*c.cl.Model.Beta[c.link]) * log2Ceil(c.Size())
	if me == root {
		// A tree broadcast moves (n-1) copies across links in total;
		// book the full volume at the root for traffic accounting.
		r.countOp("broadcast", int64(rs.bytes)*int64(c.Size()-1))
	}
	c.finish(r, maxClock(slots)+cost)
	return rs.val.(T)
}

// AllGather collects every member's value; the result is indexed by
// local member index. Cost α·⌈log2 n⌉ + β·(total bytes).
func AllGather[T any](c *Comm, r *Rank, val T, bytes int) []T {
	slots := c.exchange(r, "allgather", slot{clock: r.clock, val: val, bytes: bytes})
	total := 0
	for _, s := range slots {
		total += s.bytes
	}
	cost := c.cl.Model.Alpha[c.link]*log2Ceil(c.Size()) + float64(total-bytes)*c.cl.Model.Beta[c.link]
	r.countOp("allgather", int64(bytes)*int64(c.Size()-1))
	c.finish(r, maxClock(slots)+cost)
	out := make([]T, len(slots))
	for i, s := range slots {
		out[i] = s.val.(T)
	}
	return out
}

// Gather collects every member's value at root; non-root members
// receive nil. Cost at root α·⌈log2 n⌉ + β·(received bytes); leaves pay
// α + β·(own bytes).
func Gather[T any](c *Comm, r *Rank, root int, val T, bytes int) []T {
	me := c.LocalIndex(r)
	slots := c.exchange(r, "gather", slot{clock: r.clock, val: val, bytes: bytes})
	entry := maxClock(slots)
	if me == root {
		total := 0
		for i, s := range slots {
			if i != root {
				total += s.bytes
			}
		}
		cost := c.cl.Model.Alpha[c.link]*log2Ceil(c.Size()) + float64(total)*c.cl.Model.Beta[c.link]
		c.finish(r, entry+cost)
		out := make([]T, len(slots))
		for i, s := range slots {
			out[i] = s.val.(T)
		}
		return out
	}
	r.countOp("gather", int64(bytes))
	cost := c.cl.Model.Alpha[c.link] + float64(bytes)*c.cl.Model.Beta[c.link]
	c.finish(r, entry+cost)
	return nil
}

// Scatter distributes parts[i] from root to member i. Root must pass a
// slice with one entry per member; others pass nil. bytes sizes each
// part for cost accounting. Root's completion charges the total volume
// sent (a sequential ISend loop as in Algorithm 2); each receiver
// charges α + β·(its part).
func Scatter[T any](c *Comm, r *Rank, root int, parts []T, bytes func(T) int) T {
	me := c.LocalIndex(r)
	s := slot{clock: r.clock}
	if me == root {
		if len(parts) != c.Size() {
			panic(fmt.Sprintf("cluster: Scatter root passed %d parts for %d members", len(parts), c.Size()))
		}
		s.val = parts
	}
	slots := c.exchange(r, "scatter", s)
	entry := maxClock(slots)
	rootParts := slots[root].val.([]T)
	mine := rootParts[me]
	alpha, beta := c.cl.Model.Alpha[c.link], c.cl.Model.Beta[c.link]
	if me == root {
		total := 0
		for i, p := range rootParts {
			if i != root {
				total += bytes(p)
			}
		}
		r.countOp("scatter", int64(total))
		c.finish(r, entry+float64(c.Size()-1)*alpha+float64(total)*beta)
	} else {
		c.finish(r, entry+alpha+float64(bytes(mine))*beta)
	}
	return mine
}

// AllToAllv exchanges parts[i] from each member to member i; the result
// holds the parts addressed to the caller, indexed by sender. Each
// member's cost is (n-1)·α + β·max(bytes sent, bytes received),
// excluding the self part. This is the feature-fetching primitive of
// Section 6.2.
func AllToAllv[T any](c *Comm, r *Rank, parts []T, bytes func(T) int) []T {
	me := c.LocalIndex(r)
	if len(parts) != c.Size() {
		panic(fmt.Sprintf("cluster: AllToAllv passed %d parts for %d members", len(parts), c.Size()))
	}
	slots := c.exchange(r, "alltoallv", slot{clock: r.clock, val: parts})
	entry := maxClock(slots)
	sent := 0
	for i, p := range parts {
		if i != me {
			sent += bytes(p)
		}
	}
	out := make([]T, c.Size())
	recvd := 0
	for i, s := range slots {
		p := s.val.([]T)[me]
		out[i] = p
		if i != me {
			recvd += bytes(p)
		}
	}
	vol := sent
	if recvd > vol {
		vol = recvd
	}
	alpha, beta := c.cl.Model.Alpha[c.link], c.cl.Model.Beta[c.link]
	r.countOp("alltoallv", int64(sent))
	c.finish(r, entry+float64(c.Size()-1)*alpha+float64(vol)*beta)
	return out
}

// AllReduceSum sums float64 slices elementwise across members; every
// member receives the total. Cost α·⌈log2 n⌉ + β·bytes, matching the
// paper's T_allreduce model, plus a memory-rate charge for the local
// reduction.
func AllReduceSum(c *Comm, r *Rank, x []float64) []float64 {
	slots := c.exchange(r, "allreduce", slot{clock: r.clock, val: x, bytes: 8 * len(x)})
	entry := maxClock(slots)
	out := make([]float64, len(x))
	for _, s := range slots {
		v := s.val.([]float64)
		if len(v) != len(x) {
			panic(fmt.Sprintf("cluster: AllReduceSum length mismatch %d vs %d", len(v), len(x)))
		}
		for i, f := range v {
			out[i] += f
		}
	}
	bytes := 8 * len(x)
	cost := c.cl.Model.Alpha[c.link]*log2Ceil(c.Size()) + float64(bytes)*c.cl.Model.Beta[c.link]
	r.countOp("allreduce", int64(bytes))
	c.finish(r, entry+cost)
	r.ChargeMem(int64(bytes) * int64(c.Size()))
	return out
}

// AllReduceGeneric folds arbitrary values with a user combiner; every
// member receives combine applied over all members' values in member
// order. bytes sizes the caller's contribution. Used for sparse-matrix
// all-reduce in the 1.5D SpGEMM.
func AllReduceGeneric[T any](c *Comm, r *Rank, val T, bytes int, combine func(a, b T) T) T {
	slots := c.exchange(r, "allreduce-generic", slot{clock: r.clock, val: val, bytes: bytes})
	entry := maxClock(slots)
	acc := slots[0].val.(T)
	for _, s := range slots[1:] {
		acc = combine(acc, s.val.(T))
	}
	maxBytes := 0
	for _, s := range slots {
		if s.bytes > maxBytes {
			maxBytes = s.bytes
		}
	}
	cost := c.cl.Model.Alpha[c.link]*log2Ceil(c.Size()) + float64(maxBytes)*c.cl.Model.Beta[c.link]
	r.countOp("allreduce-generic", int64(bytes))
	c.finish(r, entry+cost)
	return acc
}

// AllReduceSumHier is a hierarchical (two-level) sum all-reduce over a
// communicator that spans nodes: members reduce within their node at
// the NVLink tier, node leaders all-reduce across the network, then
// leaders broadcast back within the node — the NCCL-style algorithm
// that keeps the slow tier's traffic proportional to the node count
// rather than the rank count. Falls back to the flat algorithm when
// the communicator sits on one node.
func AllReduceSumHier(c *Comm, r *Rank, x []float64) []float64 {
	model := c.cl.Model
	// Group members by node.
	nodeOf := map[int]int{}
	nodes := map[int][]int{}
	for _, m := range c.members {
		n := model.node(m)
		nodeOf[m] = n
		nodes[n] = append(nodes[n], m)
	}
	if len(nodes) <= 1 {
		return AllReduceSum(c, r, x)
	}

	// The collective structure must be identical on every member, so
	// build the intra-node and leader communicators deterministically.
	// Communicators are cached on the cluster by construction order;
	// here we derive them per call through the comm's sub-communicator
	// cache.
	intra, leaders := c.hierComms()

	myNodeComm := intra[nodeOf[r.ID]]
	partial := AllReduceSum(myNodeComm, r, x)

	// Node leaders (smallest rank per node) reduce across nodes.
	leader := myNodeComm.members[0]
	var total []float64
	if r.ID == leader {
		total = AllReduceSum(leaders, r, partial)
	}
	// Broadcast the result back within each node. The broadcast value
	// is shared storage owned by the leader, and members copy it after
	// the rendezvous releases them; every member (the leader included)
	// must therefore leave it untouched and return a private copy so
	// callers may scale the result in place (the flat algorithm also
	// returns caller-owned storage).
	total = Broadcast(myNodeComm, r, 0, total, 8*len(x))
	return append([]float64(nil), total...)
}

// hierComms lazily builds (exactly once) the per-node and leader
// sub-communicators of this communicator. All members must share the
// same instances or their rendezvous would never meet.
func (c *Comm) hierComms() (map[int]*Comm, *Comm) {
	c.hierOnce.Do(func() {
		model := c.cl.Model
		nodes := map[int][]int{}
		var nodeOrder []int
		for _, m := range c.members {
			n := model.node(m)
			if _, ok := nodes[n]; !ok {
				nodeOrder = append(nodeOrder, n)
			}
			nodes[n] = append(nodes[n], m)
		}
		intra := map[int]*Comm{}
		var leaderRanks []int
		for _, n := range nodeOrder {
			intra[n] = c.cl.NewComm(nodes[n])
			leaderRanks = append(leaderRanks, nodes[n][0])
		}
		c.hierIntra = intra
		c.hierLeaders = c.cl.NewComm(leaderRanks)
	})
	return c.hierIntra, c.hierLeaders
}
