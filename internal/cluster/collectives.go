package cluster

import (
	"fmt"
	"strings"
)

// CollectiveAlgorithm selects the schedule a collective charges under.
// The simulation separates *what* a collective computes (always the
// same, bit-for-bit, regardless of algorithm) from *how* the schedule
// is costed: the algorithm decides the α–β time, the injected wire
// traffic per interconnect tier, and the local-reduction memory
// traffic. FlatTree reproduces the paper's closed-form models (Section
// 5.2.1) and is the default.
type CollectiveAlgorithm int

const (
	// DefaultAlgorithm is the zero value: "unset". It behaves exactly
	// like FlatTree, but the autotuner treats it as "choose for me"
	// (mirroring the Config.K convention where 0 means unset and KAll
	// means an explicit request), while an explicit FlatTree is pinned.
	DefaultAlgorithm CollectiveAlgorithm = iota
	// FlatTree is the paper's α–β model: binomial trees for broadcast /
	// gather / barrier, recursive doubling for all-gather, the
	// idealized α·log₂p + β·n all-reduce, and a linear (p−1)-round
	// exchange for all-to-allv. Bit-identical to the pre-refactor
	// inline formulas.
	FlatTree
	// Ring is the bandwidth-optimal ring family: reduce-scatter +
	// all-gather all-reduce at 2·(p−1)/p·β·n, ring all-gather, and a
	// pipelined ring broadcast whose β term does not grow with log p —
	// the schedule that wins at large message sizes.
	Ring
	// Pairwise is the Bruck-style log-round all-to-allv exchange:
	// ⌈log₂p⌉ latency terms instead of p−1, at the price of moving each
	// byte ~⌈log₂p⌉/2 times. Wins for small (latency-bound) messages.
	Pairwise
	// Hierarchical is the two-level NCCL-style sum all-reduce: reduce
	// within each node at the NVLink tier, all-reduce across node
	// leaders at the network tier, broadcast back — keeping the slow
	// tier's traffic proportional to the node count rather than the
	// rank count. Applies to the sum all-reduce; other collectives
	// charge FlatTree under this selection.
	Hierarchical
)

// String returns the flag spelling of the algorithm.
func (a CollectiveAlgorithm) String() string {
	switch a {
	case DefaultAlgorithm:
		return "default"
	case FlatTree:
		return "flat"
	case Ring:
		return "ring"
	case Pairwise:
		return "pairwise"
	case Hierarchical:
		return "hier"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ParseAlgorithm parses a flag spelling ("default", "flat", "ring",
// "pairwise"/"bruck", "hier"/"hierarchical"). The empty string is
// DefaultAlgorithm.
func ParseAlgorithm(s string) (CollectiveAlgorithm, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "default":
		return DefaultAlgorithm, nil
	case "flat", "flattree", "tree":
		return FlatTree, nil
	case "ring":
		return Ring, nil
	case "pairwise", "bruck":
		return Pairwise, nil
	case "hier", "hierarchical":
		return Hierarchical, nil
	}
	return 0, fmt.Errorf("cluster: unknown collective algorithm %q (want default, flat, ring, pairwise or hier)", s)
}

// Collectives is the per-operation algorithm table carried by the cost
// model. AllReduce governs the reduction family (sum and generic
// all-reduce, all-gather, broadcast); AllToAll governs the all-to-allv
// exchange. Gather, scatter and barrier always charge FlatTree. The
// zero value selects FlatTree behavior everywhere.
type Collectives struct {
	// AllReduce is DefaultAlgorithm, FlatTree, Ring or Hierarchical.
	AllReduce CollectiveAlgorithm
	// AllToAll is DefaultAlgorithm, FlatTree or Pairwise.
	AllToAll CollectiveAlgorithm
}

// Flag help shared by the CLIs (cmd/trainer, cmd/gnnbench, cmd/compare,
// cmd/datagen) so the four binaries' flag sets stay in lockstep.
const (
	AllReduceFlagUsage = "all-reduce schedule: default, flat, ring or hier (governs all-reduce, all-gather and broadcast)"
	AllToAllFlagUsage  = "all-to-allv schedule: default, flat or pairwise"
)

// ParseCollectives builds a validated table from the -allreduce and
// -alltoall flag values shared by the CLIs.
func ParseCollectives(allreduce, alltoall string) (Collectives, error) {
	ar, err := ParseAlgorithm(allreduce)
	if err != nil {
		return Collectives{}, err
	}
	aa, err := ParseAlgorithm(alltoall)
	if err != nil {
		return Collectives{}, err
	}
	t := Collectives{AllReduce: ar, AllToAll: aa}
	return t, t.Validate()
}

// Validate rejects selections outside an operation's domain.
func (t Collectives) Validate() error {
	switch t.AllReduce {
	case DefaultAlgorithm, FlatTree, Ring, Hierarchical:
	default:
		return fmt.Errorf("cluster: all-reduce cannot use the %s algorithm (want default, flat, ring or hier)", t.AllReduce)
	}
	switch t.AllToAll {
	case DefaultAlgorithm, FlatTree, Pairwise:
	default:
		return fmt.Errorf("cluster: all-to-allv cannot use the %s algorithm (want default, flat or pairwise)", t.AllToAll)
	}
	return nil
}

// Merge overlays o's explicit (non-default) entries on t.
func (t Collectives) Merge(o Collectives) Collectives {
	if o.AllReduce != DefaultAlgorithm {
		t.AllReduce = o.AllReduce
	}
	if o.AllToAll != DefaultAlgorithm {
		t.AllToAll = o.AllToAll
	}
	return t
}

// allReduceAlg resolves the algorithm the reduction family charges on
// this communicator; allToAllAlg does the same for all-to-allv. Every
// algorithm degenerates to FlatTree on fewer than two members.
func (c *Comm) allReduceAlg() CollectiveAlgorithm {
	if c.Size() < 2 {
		return FlatTree
	}
	switch a := c.cl.Model.Collectives.AllReduce; a {
	case Ring, Hierarchical:
		return a
	}
	return FlatTree
}

func (c *Comm) allToAllAlg() CollectiveAlgorithm {
	if c.Size() < 2 {
		return FlatTree
	}
	if c.cl.Model.Collectives.AllToAll == Pairwise {
		return Pairwise
	}
	return FlatTree
}

// collCost describes one collective call's modeled cost at one member,
// as produced by the selected algorithm's schedule: the simulated
// seconds, the bytes this member injects (booked under the op name and
// the communicator's link tier when count is set — roles that inject
// nothing, like a broadcast receiver, record no invocation), and the
// local-reduction memory traffic. chargeCollective is the single path
// that applies it.
type collCost struct {
	// seconds and seconds2 are the schedule's time addends, applied to
	// the entry clock in order ((entry + seconds) + seconds2): the
	// split keeps FlatTree bit-identical to the pre-refactor inline
	// expressions, which added the α and β terms to the entry time
	// left to right. Single-term schedules leave seconds2 zero.
	seconds  float64
	seconds2 float64
	count    bool
	opBytes  int64
	mem      int64
	// wireBytes is the bandwidth-bound portion of the schedule expressed
	// as effective wire bytes: seconds+seconds2 == (latency terms) +
	// wireBytes·β at the communicator's tier. The contention charging
	// path (CostModel.Topology != nil) turns it into a flow through the
	// member's physical links; the ideal path ignores it.
	wireBytes float64
}

// chargeCollective is the single charging path every collective, under
// every algorithm, routes through: it advances the member to the
// synchronized completion time (entry is the latest arrival), books
// the injected bytes under the op name and the communicator's link
// tier, and finally charges the local-reduction memory traffic on the
// member's own timeline.
//
// Conventions: all-reduce variants cost their β term on the maximum
// contribution size across members (every member forwards the largest
// message) and charge local-reduction memory traffic after the
// synchronized completion — AllReduceSum and AllReduceGeneric share
// both rules.
func (c *Comm) chargeCollective(r *Rank, op string, entry float64, cost collCost) {
	if cost.count {
		r.countOp(op, cost.opBytes)
		r.countLink(c.link, cost.opBytes)
	}
	if c.cl.cont != nil {
		// Contention topology: the schedule's bandwidth-bound portion
		// becomes a flow through the member's physical links, solved
		// fairly against the other members and the in-flight ledger
		// (contendedFinish). The guard is cluster-global, so every
		// member takes the same branch and the extra rendezvous round
		// stays symmetric.
		c.finish(r, c.contendedFinish(r, op, entry, cost))
	} else {
		c.finish(r, entry+cost.seconds+cost.seconds2)
	}
	if cost.mem > 0 {
		r.ChargeMem(cost.mem)
	}
}

// alphaBeta returns the communicator's link parameters.
func (c *Comm) alphaBeta() (alpha, beta float64) {
	return c.cl.Model.Alpha[c.link], c.cl.Model.Beta[c.link]
}

// --- Analytic predictors -------------------------------------------------
//
// The Predict* functions are the closed forms the charging path applies
// and the bounds the collectives experiment prints next to measured
// times. They exclude entry synchronization and (except
// PredictHierAllReduce) local memory traffic; AllReduceMemBytes gives
// the memory-traffic convention per algorithm.

// PredictBroadcast returns the analytic seconds of one broadcast of the
// given payload over p members at link l.
func PredictBroadcast(m CostModel, alg CollectiveAlgorithm, l Link, p, bytes int) float64 {
	if alg == Ring && p >= 2 {
		// Pipelined ring: every byte crosses p−1 links, but segments
		// overlap, so the β term stays a single payload transfer.
		return float64(p-1)*m.Alpha[l] + float64(bytes)*m.Beta[l]
	}
	return (m.Alpha[l] + float64(bytes)*m.Beta[l]) * log2Ceil(p)
}

// PredictAllGather returns the analytic seconds of one all-gather over
// p members at link l: totalBytes is the sum of all contributions,
// ownBytes the caller's share.
func PredictAllGather(m CostModel, alg CollectiveAlgorithm, l Link, p, totalBytes, ownBytes int) float64 {
	if alg == Ring && p >= 2 {
		return float64(p-1)*m.Alpha[l] + float64(totalBytes-ownBytes)*m.Beta[l]
	}
	return m.Alpha[l]*log2Ceil(p) + float64(totalBytes-ownBytes)*m.Beta[l]
}

// PredictAllReduce returns the analytic seconds of one all-reduce of
// the given payload over p members at link l for the FlatTree and Ring
// schedules (Hierarchical depends on the node layout; see
// PredictHierAllReduce).
func PredictAllReduce(m CostModel, alg CollectiveAlgorithm, l Link, p, bytes int) float64 {
	if alg == Ring && p >= 2 {
		return 2*float64(p-1)*m.Alpha[l] + 2*float64(p-1)/float64(p)*float64(bytes)*m.Beta[l]
	}
	return m.Alpha[l]*log2Ceil(p) + float64(bytes)*m.Beta[l]
}

// PredictAllToAllv returns the analytic seconds of one all-to-allv over
// p members at link l, where volBytes is max(bytes sent, bytes
// received) excluding the self part.
func PredictAllToAllv(m CostModel, alg CollectiveAlgorithm, l Link, p, volBytes int) float64 {
	if alg == Pairwise && p >= 2 {
		rounds := log2Ceil(p)
		return rounds*m.Alpha[l] + 0.5*rounds*float64(volBytes)*m.Beta[l]
	}
	return float64(p-1)*m.Alpha[l] + float64(volBytes)*m.Beta[l]
}

// AllReduceMemBytes is the local-reduction memory traffic convention of
// the shared charging path: the flat schedule folds all p contributions
// on every member (p·n bytes through HBM), while ring reduce-scatter
// touches each element a constant number of times (2·n).
func AllReduceMemBytes(alg CollectiveAlgorithm, p, bytes int) int64 {
	if alg == Ring && p >= 2 {
		return 2 * int64(bytes)
	}
	return int64(bytes) * int64(p)
}

// PredictHierAllReduce returns the analytic seconds of one hierarchical
// sum all-reduce over the given member ranks with uniform entry times,
// composing the flat stages the implementation runs: intra-node
// all-reduce (including its local-reduction memory time), leader
// all-reduce across nodes, and the intra-node broadcast back. Falls
// back to the flat single-node prediction when the members share one
// node.
func PredictHierAllReduce(m CostModel, members []int, bytes int) float64 {
	nodes := map[int]int{}
	for _, r := range members {
		nodes[m.node(r)]++
	}
	memSec := func(p int) float64 {
		return float64(AllReduceMemBytes(FlatTree, p, bytes)) / m.MemBW[GPU]
	}
	if len(nodes) <= 1 {
		return PredictAllReduce(m, FlatTree, m.worstLink(members), len(members), bytes) + memSec(len(members))
	}
	maxNode := 0
	for _, sz := range nodes {
		if sz > maxNode {
			maxNode = sz
		}
	}
	leaders := len(nodes)
	return PredictAllReduce(m, FlatTree, IntraNode, maxNode, bytes) + memSec(maxNode) +
		PredictAllReduce(m, FlatTree, InterNode, leaders, bytes) + memSec(leaders) +
		PredictBroadcast(m, FlatTree, IntraNode, maxNode, bytes)
}

// --- Per-op cost constructors --------------------------------------------
//
// Each constructor derives the collCost one member hands the charging
// path. The FlatTree expressions are kept in exactly the pre-refactor
// shape so default runs stay bit-identical.

func barrierCost(c *Comm) collCost {
	alpha, _ := c.alphaBeta()
	return collCost{seconds: alpha * log2Ceil(c.Size())}
}

func broadcastCost(c *Comm, alg CollectiveAlgorithm, bytes int, root bool) collCost {
	cost := collCost{seconds: PredictBroadcast(c.cl.Model, alg, c.link, c.Size(), bytes)}
	if alg == Ring && c.Size() >= 2 {
		cost.wireBytes = float64(bytes)
	} else {
		cost.wireBytes = float64(bytes) * log2Ceil(c.Size())
	}
	if root {
		// A tree (or ring) broadcast moves (p−1) copies across links in
		// total; book the full volume at the root.
		cost.count = true
		cost.opBytes = int64(bytes) * int64(c.Size()-1)
	}
	return cost
}

func allGatherCost(c *Comm, alg CollectiveAlgorithm, total, own int) collCost {
	return collCost{
		seconds:   PredictAllGather(c.cl.Model, alg, c.link, c.Size(), total, own),
		count:     true,
		opBytes:   int64(own) * int64(c.Size()-1),
		wireBytes: float64(total - own),
	}
}

func gatherCost(c *Comm, total, own int, root bool) collCost {
	alpha, beta := c.alphaBeta()
	if root {
		return collCost{
			seconds:   alpha*log2Ceil(c.Size()) + float64(total)*beta,
			wireBytes: float64(total),
		}
	}
	return collCost{
		seconds:   alpha + float64(own)*beta,
		count:     true,
		opBytes:   int64(own),
		wireBytes: float64(own),
	}
}

func scatterCost(c *Comm, total, own int, root bool) collCost {
	alpha, beta := c.alphaBeta()
	if root {
		return collCost{
			seconds:   float64(c.Size()-1) * alpha,
			seconds2:  float64(total) * beta,
			count:     true,
			opBytes:   int64(total),
			wireBytes: float64(total),
		}
	}
	return collCost{seconds: alpha, seconds2: float64(own) * beta, wireBytes: float64(own)}
}

func allToAllvCost(c *Comm, alg CollectiveAlgorithm, sent, recvd int) collCost {
	vol := sent
	if recvd > vol {
		vol = recvd
	}
	cost := collCost{count: true, opBytes: int64(sent)}
	if alg == Pairwise {
		cost.seconds = PredictAllToAllv(c.cl.Model, alg, c.link, c.Size(), vol)
		// Bruck forwards each byte through ~⌈log₂p⌉/2 intermediate
		// hops, so the injected traffic grows by the same factor.
		cost.opBytes = int64(sent) * int64(log2Ceil(c.Size())) / 2
		cost.wireBytes = 0.5 * log2Ceil(c.Size()) * float64(vol)
		return cost
	}
	alpha, beta := c.alphaBeta()
	cost.seconds = float64(c.Size()-1) * alpha
	cost.seconds2 = float64(vol) * beta
	cost.wireBytes = float64(vol)
	return cost
}

// allReduceCost derives the all-reduce charge: the β term and the
// local-reduction memory traffic cost on the maximum contribution
// across members (every member forwards and folds the largest
// message), while the traffic counters book ownBytes — the volume this
// member actually injects, which differs under uneven generic
// contributions.
func allReduceCost(c *Comm, alg CollectiveAlgorithm, maxBytes, ownBytes int) collCost {
	p := c.Size()
	cost := collCost{
		seconds:   PredictAllReduce(c.cl.Model, alg, c.link, p, maxBytes),
		count:     true,
		opBytes:   int64(ownBytes),
		mem:       AllReduceMemBytes(alg, p, maxBytes),
		wireBytes: float64(maxBytes),
	}
	if alg == Ring {
		cost.opBytes = 2 * int64(ownBytes) * int64(p-1) / int64(p)
		cost.wireBytes = 2 * float64(p-1) / float64(p) * float64(maxBytes)
	}
	return cost
}
