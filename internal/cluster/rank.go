package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cluster/sim"
)

// Rank is one simulated device (a "GPU") executing the per-process body
// of a distributed program. It owns a simulated clock that advances
// when compute is charged or when a collective completes, and a set of
// named phase buckets so experiments can report the same time
// breakdowns as the paper's figures (sampling / feature fetching /
// propagation, probability / sampling / extraction, comm / comp).
//
// A Rank value is also the handle for one execution *stream*: Stream
// forks a concurrent timeline (like a CUDA stream) that shares the
// rank's identity, cost model and phase accounting but advances an
// independent clock. Streams let an overlapped scheduler charge
// prefetched work concurrently with the main timeline; the rank's
// reported time is the maximum over its streams, not their sum.
type Rank struct {
	ID, N int

	model *CostModel

	clock float64
	// phases is a stack: charges accrue to every level, so an outer
	// phase ("sampling") can subsume the detailed phases a nested
	// driver sets ("probability"/"sampling"/"extraction"). SetPhase
	// replaces the top level; Push/PopPhase manage nesting.
	phases []string
	// phaseSlots caches the accumulator indices of the distinct phases
	// on the stack, in stack order — recomputed on every stack change
	// so the per-charge hot path (advance) adds into flat slices
	// instead of hashing names and re-scanning the stack for
	// duplicates on every charge.
	phaseSlots []int

	// stream is the timeline's name; "" is the rank's main stream.
	stream string
	// acct is the accounting shared by every stream of this rank.
	acct *acct
	// phaseTotal/phaseComm/phaseTouched are this stream's private phase
	// accumulators, indexed by the acct's interned slot ids and grown on
	// demand (a slot may be interned by a sibling stream first). They
	// are stream-local so concurrent streams never interleave
	// floating-point additions into one bucket — summation order, and
	// with it the last-ulp of every phase total, must be a function of
	// the program, not of the scheduler. stats() folds the streams in
	// creation order.
	phaseTotal   []float64
	phaseComm    []float64
	phaseTouched []bool
	// cont is the cluster's physical-link contention ledger (nil when
	// the model carries no Topology); ChargeLink routes through it.
	cont *contention

	// failAt is the armed fail-stop time from the cluster's FaultPlan
	// (0 = none): the first charge whose accrual reaches it panics with
	// a RankFailure. Every stream of a failing rank inherits the time —
	// each timeline halts when its own clock crosses it.
	failAt float64

	// cl is the owning cluster; the synchronization primitives consult
	// it for the backend and, under DES, the scheduler.
	cl *Cluster
	// task is this timeline's DES task (nil under the goroutine
	// backend): the handle the rendezvous, mailbox and stage queues
	// park and ready instead of blocking a goroutine.
	task *sim.Task
}

// acct is the phase/traffic accounting shared across a rank's streams.
// Streams run on separate goroutines, so shared updates take the
// mutex; each stream's clock is goroutine-local and needs no lock.
// Phase names are interned to index-addressed slots (phaseIdx) so the
// per-charge path performs no map operations; the float64 second
// accumulators themselves live on each stream (see Rank.phaseTotal) —
// only the exact integer counters are accumulated shared, because
// integer addition commutes and float addition's rounding does not.
type acct struct {
	mu         sync.Mutex
	phaseIdx   map[string]int // phase name -> slot
	phaseNames []string       // slot -> phase name
	bytesSent  int64
	opCount    map[string]int64    // collective name -> invocations
	opBytes    map[string]int64    // collective name -> bytes sent
	linkBytes  map[string][3]int64 // phase -> wire bytes injected per Link tier
	streams    []*Rank             // forked streams (main rank excluded)
}

func newAcct() *acct {
	return &acct{
		phaseIdx:  map[string]int{},
		opCount:   map[string]int64{},
		opBytes:   map[string]int64{},
		linkBytes: map[string][3]int64{},
	}
}

// slotFor interns a phase name, returning its accumulator index.
func (a *acct) slotFor(name string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if i, ok := a.phaseIdx[name]; ok {
		return i
	}
	i := len(a.phaseNames)
	a.phaseIdx[name] = i
	a.phaseNames = append(a.phaseNames, name)
	return i
}

// Stream forks a concurrent execution timeline: the returned handle
// shares this rank's identity, cost model and accounting buckets but
// owns an independent clock starting at the caller's current time.
// Charges and collectives issued on the handle advance only its own
// clock; phase totals accrue to the shared buckets. A communicator
// must not be used by two streams of the same rank concurrently, and
// each stream must stay on a single goroutine.
func (r *Rank) Stream(name string) *Rank {
	s := &Rank{
		ID:     r.ID,
		N:      r.N,
		model:  r.model,
		clock:  r.clock,
		phases: []string{"default"},
		stream: name,
		acct:   r.acct,
		cont:   r.cont,
		failAt: r.failAt,
		cl:     r.cl,
	}
	s.rebuildPhaseSlots()
	r.acct.mu.Lock()
	r.acct.streams = append(r.acct.streams, s)
	r.acct.mu.Unlock()
	return s
}

// StreamName returns the stream's name ("" for the main timeline).
func (r *Rank) StreamName() string { return r.stream }

// WaitUntil advances the clock to t if it is behind (a synchronization
// stall, e.g. waiting for a prefetch stream to finish an item). The
// stall is charged to the current phase, not as communication.
func (r *Rank) WaitUntil(t float64) {
	if t > r.clock {
		r.advance(t-r.clock, false)
	}
}

// countOp records one collective invocation and its sent bytes under
// the operation name (for traffic breakdowns).
func (r *Rank) countOp(name string, bytes int64) {
	a := r.acct
	a.mu.Lock()
	a.opCount[name]++
	a.opBytes[name] += bytes
	a.bytesSent += bytes
	a.mu.Unlock()
}

// countLink records wire bytes this rank injected on an interconnect
// tier, booked under the current (innermost) phase — the per-link,
// per-phase traffic accounting the charging path, point-to-point sends
// and ChargeLink all feed.
func (r *Rank) countLink(l Link, bytes int64) {
	if bytes <= 0 {
		return
	}
	phase := r.Phase()
	a := r.acct
	a.mu.Lock()
	lb := a.linkBytes[phase]
	lb[l] += bytes
	a.linkBytes[phase] = lb
	a.mu.Unlock()
}

// SetPhase switches the bucket subsequent charges accrue to (replaces
// the top of the phase stack).
func (r *Rank) SetPhase(name string) {
	r.phases[len(r.phases)-1] = name
	r.rebuildPhaseSlots()
}

// PushPhase opens a nested phase level. Charges accrue to all levels.
func (r *Rank) PushPhase(name string) {
	r.phases = append(r.phases, name)
	r.rebuildPhaseSlots()
}

// PopPhase closes the innermost phase level.
func (r *Rank) PopPhase() {
	if len(r.phases) == 1 {
		panic("cluster: PopPhase on base level")
	}
	r.phases = r.phases[:len(r.phases)-1]
	r.rebuildPhaseSlots()
}

// rebuildPhaseSlots recomputes the distinct-phase accumulator indices
// for the current stack (stack order, first occurrence wins — the same
// set and order the per-charge loop historically derived on the fly).
func (r *Rank) rebuildPhaseSlots() {
	r.phaseSlots = r.phaseSlots[:0]
	for i, name := range r.phases {
		dup := false
		for _, prev := range r.phases[:i] {
			if prev == name {
				dup = true
				break
			}
		}
		if !dup {
			r.phaseSlots = append(r.phaseSlots, r.acct.slotFor(name))
		}
	}
}

// Phase returns the current (innermost) phase name.
func (r *Rank) Phase() string { return r.phases[len(r.phases)-1] }

// Clock returns the stream's simulated time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// MaxClock returns the rank's overall simulated time: the maximum
// final clock over the main timeline and every forked stream — the
// overlap-aware aggregation (concurrent streams max, not sum).
func (r *Rank) MaxClock() float64 {
	m := r.clock
	r.acct.mu.Lock()
	for _, s := range r.acct.streams {
		if s.clock > m {
			m = s.clock
		}
	}
	r.acct.mu.Unlock()
	return m
}

// advance adds dt simulated seconds to the clock and every phase on
// the stack; comm marks the time as communication. Phase seconds
// accrue into the stream's private accumulators — no lock, and no
// scheduler-dependent interleaving of float additions.
func (r *Rank) advance(dt float64, comm bool) {
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("cluster: negative or NaN time advance %v", dt))
	}
	r.clock += dt
	for _, s := range r.phaseSlots {
		if s >= len(r.phaseTotal) {
			r.growPhases(s + 1)
		}
		r.phaseTotal[s] += dt
		r.phaseTouched[s] = true
		if comm {
			r.phaseComm[s] += dt
		}
	}
	if r.failAt > 0 && r.clock >= r.failAt {
		// Fail-stop: this timeline halts at the first charge that
		// reaches its planned failure time. Disarm before panicking so
		// a charge during unwinding cannot re-fire, and panic with the
		// planned time (not the overshot clock) so the restart driver
		// can retire exactly the plan entry that fired. The cluster
		// backend recovers the panic into the rank's error slot; peers
		// blocked on this rank's collectives observe a poisoned
		// rendezvous wrapping ErrRankFailed.
		at := r.failAt
		r.failAt = 0
		panic(&RankFailure{Rank: r.ID, At: at})
	}
}

// growPhases extends the stream-local accumulators to hold n slots.
func (r *Rank) growPhases(n int) {
	for len(r.phaseTotal) < n {
		r.phaseTotal = append(r.phaseTotal, 0)
		r.phaseComm = append(r.phaseComm, 0)
		r.phaseTouched = append(r.phaseTouched, false)
	}
}

// ChargeSparse bills ops irregular operations (SpGEMM multiply-adds,
// sampling draws, gathers) at the GPU sparse throughput.
func (r *Rank) ChargeSparse(ops int64) { r.ChargeSparseOn(GPU, ops) }

// ChargeSparseOn bills irregular operations on the given device.
func (r *Rank) ChargeSparseOn(d Device, ops int64) {
	r.advance(float64(ops)/r.model.SparseOps[d]*r.model.slowdown(r.ID), false)
}

// ChargeDense bills flops dense multiply-add pairs at GPU dense
// throughput.
func (r *Rank) ChargeDense(flops int64) { r.ChargeDenseOn(GPU, flops) }

// ChargeDenseOn bills dense flops on the given device.
func (r *Rank) ChargeDenseOn(d Device, flops int64) {
	r.advance(float64(flops)/r.model.DenseFlops[d]*r.model.slowdown(r.ID), false)
}

// ChargeMem bills a streaming memory traffic of the given bytes at GPU
// memory bandwidth.
func (r *Rank) ChargeMem(bytes int64) { r.ChargeMemOn(GPU, bytes) }

// ChargeMemOn bills memory traffic on the given device.
func (r *Rank) ChargeMemOn(d Device, bytes int64) {
	r.advance(float64(bytes)/r.model.MemBW[d]*r.model.slowdown(r.ID), false)
}

// ChargeKernels bills n fixed kernel-launch overheads. Per-minibatch
// sampling pays O(layers) of these per batch; bulk sampling pays
// O(layers) per k batches — the amortization at the heart of the
// paper's Section 4.
func (r *Rank) ChargeKernels(n int) {
	r.advance(float64(n)*r.model.KernelLaunch, false)
}

// ChargeLink bills a point transfer of the given bytes over the given
// tier, e.g. PCIe traffic for UVA sampling. Counted as communication
// and recorded in the per-link byte counters. Under a contention
// topology the transfer is a flow through the rank's physical links
// and shares them with whatever else is in flight.
func (r *Rank) ChargeLink(l Link, bytes int64) {
	r.countLink(l, bytes)
	if ct := r.cont; ct != nil {
		fin := ct.transact([]flowReq{{
			start: r.model.wireEntry(r.clock, l),
			bytes: float64(bytes),
			links: ct.linksFor(r.ID, l),
		}})
		r.advance(fin[0]-r.clock, true)
		return
	}
	r.advance(r.model.wireTime(l, bytes), true)
}

// Stats is an immutable snapshot of a rank's accounting.
type Stats struct {
	// Clock is the rank's overall simulated time: the maximum over
	// its concurrent streams (not their sum).
	Clock      float64
	PhaseTotal map[string]float64
	PhaseComm  map[string]float64
	BytesSent  int64
	// OpCount and OpBytes break communication down by collective.
	OpCount map[string]int64
	OpBytes map[string]int64
	// LinkBytes breaks the wire traffic this rank injected down by
	// phase and interconnect tier (indexed by Link).
	LinkBytes map[string][3]int64
}

func (r *Rank) stats() Stats {
	clock := r.MaxClock()
	a := r.acct
	a.mu.Lock()
	defer a.mu.Unlock()
	// Fold the per-stream phase accumulators: main timeline first, then
	// forked streams in creation order — a fixed summation order, so
	// the folded totals are bit-deterministic. Only charged phases
	// surface (a phase merely set, never charged, historically created
	// no bucket).
	nSlots := len(a.phaseNames)
	total := make([]float64, nSlots)
	comm := make([]float64, nSlots)
	touched := make([]bool, nSlots)
	for _, s := range append([]*Rank{r}, a.streams...) {
		for i := range s.phaseTotal {
			total[i] += s.phaseTotal[i]
			comm[i] += s.phaseComm[i]
			touched[i] = touched[i] || s.phaseTouched[i]
		}
	}
	pt := make(map[string]float64, nSlots)
	pc := make(map[string]float64, nSlots)
	for i, name := range a.phaseNames {
		if !touched[i] {
			continue
		}
		pt[name] = total[i]
		pc[name] = comm[i]
	}
	oc := make(map[string]int64, len(a.opCount))
	for k, v := range a.opCount {
		oc[k] = v
	}
	ob := make(map[string]int64, len(a.opBytes))
	for k, v := range a.opBytes {
		ob[k] = v
	}
	lb := make(map[string][3]int64, len(a.linkBytes))
	for k, v := range a.linkBytes {
		lb[k] = v
	}
	return Stats{Clock: clock, PhaseTotal: pt, PhaseComm: pc, BytesSent: a.bytesSent,
		OpCount: oc, OpBytes: ob, LinkBytes: lb}
}

// Result summarizes a simulated run.
type Result struct {
	// SimTime is the bulk-synchronous makespan: the maximum final
	// simulated clock across ranks (per rank, the max over streams).
	SimTime float64
	// Ranks holds per-rank accounting indexed by rank id.
	Ranks []Stats
	// PhysLinks holds per-physical-link traffic summaries when the run
	// charged under a contention topology (nil for the pure α–β model).
	PhysLinks []PhysLinkStat
	// LedgerPeakSpans is the contention ledger's high-water committed
	// span count over the run (0 for the pure α–β model) — the memory
	// the progressive-filling solver had to carry, recorded by the
	// perf-regression suite.
	LedgerPeakSpans int
}

// Phase returns the maximum time any rank spent in the named phase.
func (res *Result) Phase(name string) float64 {
	max := 0.0
	for _, s := range res.Ranks {
		if v := s.PhaseTotal[name]; v > max {
			max = v
		}
	}
	return max
}

// PhaseComm returns the maximum communication time any rank spent in
// the named phase.
func (res *Result) PhaseComm(name string) float64 {
	max := 0.0
	for _, s := range res.Ranks {
		if v := s.PhaseComm[name]; v > max {
			max = v
		}
	}
	return max
}

// LinkTraffic sums the wire bytes injected per interconnect tier
// across all ranks and phases: total traffic, not a per-rank maximum,
// because link bytes add up on the fabric.
func (res *Result) LinkTraffic() [3]int64 {
	var out [3]int64
	for _, s := range res.Ranks {
		for _, lb := range s.LinkBytes {
			for l, v := range lb {
				out[l] += v
			}
		}
	}
	return out
}

// PhaseLinkTraffic sums the per-tier wire bytes booked under the named
// phase across all ranks.
func (res *Result) PhaseLinkTraffic(phase string) [3]int64 {
	var out [3]int64
	for _, s := range res.Ranks {
		lb := s.LinkBytes[phase]
		for l, v := range lb {
			out[l] += v
		}
	}
	return out
}

// Phases returns the sorted names of all phases observed.
func (res *Result) Phases() []string {
	set := map[string]struct{}{}
	for _, s := range res.Ranks {
		for k := range s.PhaseTotal {
			set[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Cluster is a set of ranks sharing a cost model. Communicators are
// created from the cluster before Run and shared by all ranks.
type Cluster struct {
	N     int
	Model CostModel

	// backend is the resolved execution backend (never
	// DefaultBackend): Model.Backend, then $GNN_BACKEND, then the
	// goroutine backend — fixed at construction so every Run and every
	// synchronization primitive agrees.
	backend Backend
	// sched is the discrete-event scheduler of the Run in progress
	// (DES backend only; nil between runs and always nil under the
	// goroutine backend).
	sched *sim.Sched

	mu    sync.Mutex
	comms []*Comm
	mail  *mailbox
	// cont is the physical-link contention ledger, created once when
	// the model carries a Topology and reset per Run; nil keeps the
	// pure α–β charging path.
	cont *contention
	// done marks ranks whose Run bodies have returned; the deadlock
	// detector uses it to poison rendezvous that can never complete.
	// anyDone is the lock-free fast path: collectives skip the
	// abandoned-peer scan entirely until some body has returned.
	done    []bool
	anyDone atomic.Bool
	// failures records, per terminated rank, the root injected
	// fail-stop behind its termination in the current Run (nil when
	// none fired) — the rank's own fail-stop, or, for a rank that
	// aborted because a peer's failure poisoned its collective, that
	// peer's failure. The deadlock detector consults it to diagnose an
	// abandoned collective as a recoverable fault abort rather than a
	// bug — including cascades, where the abandoning rank never failed
	// itself — and Run returns the earliest root failure.
	failures map[int]*RankFailure
}

// markDone records that a rank's body returned and sweeps every
// communicator for collectives now unable to complete, poisoning their
// rendezvous so waiters panic with a diagnostic instead of hanging.
func (c *Cluster) markDone(rank int) {
	c.mu.Lock()
	if c.done == nil {
		c.done = make([]bool, c.N)
	}
	c.done[rank] = true
	comms := append([]*Comm(nil), c.comms...)
	c.mu.Unlock()
	c.anyDone.Store(true)
	for _, comm := range comms {
		comm.checkAbandoned()
	}
}

// New returns a cluster of n ranks under the given cost model. A model
// carrying a Topology panics here if the topology is invalid (callers
// with error returns validate via Topology.Validate first).
func New(n int, model CostModel) *Cluster {
	if n <= 0 {
		panic("cluster: need at least one rank")
	}
	c := &Cluster{N: n, Model: model, backend: resolveBackend(model.Backend)}
	if model.Topology != nil {
		c.cont = newContention(model, n)
	}
	return c
}

// Backend reports the resolved execution backend this cluster runs on.
func (c *Cluster) Backend() Backend { return c.backend }

// Run executes body once per rank concurrently and returns per-rank
// accounting. Ranks must all reach every collective they participate
// in; a body that returns (error or not) while peers wait inside a
// collective can never satisfy that collective, so the deadlock
// detector poisons the rendezvous and the waiting ranks panic with a
// diagnostic (real MPI would hang). Bodies should still return errors
// only at synchronized points. Any streams a body forks must be joined
// (their goroutines finished) before the body returns.
func (c *Cluster) Run(body func(r *Rank) error) (*Result, error) {
	// Reset the per-run deadlock-detector and stream-binding state so
	// a cluster can host consecutive Run calls (a later run may drive
	// a communicator from a differently-named stream than the last).
	c.mu.Lock()
	c.done = make([]bool, c.N)
	c.failures = nil
	comms := append([]*Comm(nil), c.comms...)
	c.mu.Unlock()
	c.anyDone.Store(false)
	for _, comm := range comms {
		comm.resetDrivers()
	}
	if c.cont != nil {
		c.cont.reset() // fresh simulated timeline: no stale occupancy
	}
	ranks := make([]*Rank, c.N)
	for i := range ranks {
		ranks[i] = &Rank{
			ID:     i,
			N:      c.N,
			model:  &c.Model,
			phases: []string{"default"},
			acct:   newAcct(),
			cont:   c.cont,
			cl:     c,
		}
		ranks[i].rebuildPhaseSlots()
		ranks[i].failAt = c.Model.Faults.failAt(i)
	}
	errs := make([]error, c.N)
	if c.backend == DESBackend {
		// Discrete-event backend: one cooperative task per rank,
		// all readied at t=0 in rank order, driven to completion by a
		// single event loop. The synchronization primitives (the
		// collective rendezvous, the point-to-point mailbox, stage
		// queues and stream joins) park tasks on the scheduler instead
		// of blocking goroutines.
		s := sim.New()
		c.sched = s
		for i := 0; i < c.N; i++ {
			i := i
			ranks[i].task = s.Spawn(i, func(*sim.Task) {
				defer c.markDone(i)
				errs[i] = c.runBody(body, ranks[i])
			})
			s.Ready(ranks[i].task, 0)
		}
		func() {
			defer func() { c.sched = nil }()
			s.Run()
		}()
	} else {
		var wg sync.WaitGroup
		for i := 0; i < c.N; i++ {
			wg.Add(1)
			// This IS the goroutine backend: the one sanctioned spawn/join
			// of real OS goroutines, below the park/wake seam the rest of
			// the cluster-driven code must stay above.
			//gnnvet:allow parkwake — the goroutine backend's driver itself: spawns rank bodies outside simulated time
			go func(i int) {
				defer wg.Done()
				defer c.markDone(i)
				errs[i] = c.runBody(body, ranks[i])
			}(i)
		}
		//gnnvet:allow parkwake — joins the goroutine backend's rank bodies; runs outside simulated time
		wg.Wait()
	}
	// Error selection: a bug-class error wins (first by rank order, the
	// historical behavior); otherwise, when every error is fault-class,
	// return the earliest RankFailure — the root cause a restart driver
	// retires from the plan — rather than whichever survivor's abort
	// error happens to sit at the lowest rank id.
	var fault error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrRankFailed) {
			return nil, err
		}
		if fault == nil {
			fault = err
		}
	}
	if fault != nil {
		if rf := c.earliestFailure(); rf != nil {
			return nil, rf
		}
		return nil, fault
	}
	res := &Result{Ranks: make([]Stats, c.N)}
	for i, r := range ranks {
		res.Ranks[i] = r.stats()
		if res.Ranks[i].Clock > res.SimTime {
			res.SimTime = res.Ranks[i].Clock
		}
	}
	if c.cont != nil {
		res.PhysLinks = c.cont.stats()
		res.LedgerPeakSpans = c.cont.peak()
	}
	return res, nil
}

// SparseSeconds converts an irregular-op count into simulated seconds
// at this rank's GPU rate without advancing the clock. Used by
// schedulers that overlap work streams and need to reason about a
// charge before (or instead of) applying it.
func (r *Rank) SparseSeconds(ops int64) float64 {
	return float64(ops) / r.model.SparseOps[GPU] * r.model.slowdown(r.ID)
}

// KernelSeconds converts kernel-launch counts into simulated seconds
// without advancing the clock.
func (r *Rank) KernelSeconds(n int) float64 {
	return float64(n) * r.model.KernelLaunch
}

// AdvanceBy adds dt simulated seconds to the clock under the current
// phase (compute, not communication). It is the escape hatch for
// schedulers that compute durations out-of-band; dt must be >= 0.
func (r *Rank) AdvanceBy(dt float64) { r.advance(dt, false) }
