package cluster

import (
	"fmt"
	"strings"
)

// Topology names the physical links of the simulated machine and
// switches the cost model onto the contention-aware charging path.
//
// The pure α–β model (Topology == nil, the default) charges every
// transfer the full tier bandwidth no matter how many concurrent
// transfers share the wire — correct on a machine where every endpoint
// owns its injection pipe, optimistic everywhere else. A Topology makes
// links finite, shared resources instead:
//
//   - every GPU owns one NVLink port (intra-node flows),
//   - every GPU owns one PCIe link to the host (HostLink flows),
//   - every node owns NICsPerNode network injection pipes, shared
//     round-robin by its GPUs (inter-node flows), and
//   - optionally one fabric trunk of capacity nodes·NIC/Oversub that
//     every inter-node flow also crosses (a blocking fabric core).
//
// Concurrent flows occupying the same physical link split its capacity
// by progressive filling (see internal/cluster/contention.go); a flow
// alone on its links runs at full tier bandwidth, so uncontended
// schedules cost what the α–β model says.
type Topology struct {
	// Name is the flag spelling, echoed by diagnostics and traces.
	Name string

	// NICsPerNode is the number of network injection pipes per node.
	// GPUs map onto them round-robin, so GPUsPerNode/NICsPerNode GPUs
	// share one pipe. 0 means one NIC per GPU (fully provisioned
	// injection, as on Perlmutter's 4-NIC nodes).
	NICsPerNode int

	// Oversub > 1 models a blocking fabric core: a single shared trunk
	// of capacity nodes·NIC/Oversub that every inter-node flow crosses
	// in addition to its NIC. Values <= 1 (or a single-node cluster)
	// model a non-blocking fabric with no shared core.
	Oversub float64

	// Capacity overrides in bytes/second. Zero derives each capacity
	// from the cost model's Beta for the matching tier, which is what
	// keeps a solo flow's time identical to the α–β charge.
	NVLinkBps, NICBps, PCIeBps float64
}

// String returns the flag spelling; the nil topology is "ideal".
func (t *Topology) String() string {
	if t == nil {
		return "ideal"
	}
	return t.Name
}

// Validate rejects nonsensical topologies. The nil topology (pure α–β)
// is always valid.
func (t *Topology) Validate() error {
	if t == nil {
		return nil
	}
	if t.NICsPerNode < 0 {
		return fmt.Errorf("cluster: topology %q: NICsPerNode must be >= 0, got %d", t.Name, t.NICsPerNode)
	}
	if t.Oversub < 0 {
		return fmt.Errorf("cluster: topology %q: Oversub must be >= 0, got %v", t.Name, t.Oversub)
	}
	if t.NVLinkBps < 0 || t.NICBps < 0 || t.PCIeBps < 0 {
		return fmt.Errorf("cluster: topology %q: capacity overrides must be >= 0", t.Name)
	}
	return nil
}

// PerlmutterTopology returns the evaluation platform's link layout
// (Section 7.2): four Slingshot-11 NICs per node, one per A100, so
// inter-node injection is fully provisioned and contention arises only
// when concurrent streams of one GPU (a prefetch stream and the main
// timeline, say) share its pipes. Bulk-synchronous schedules therefore
// cost what the α–β model says; overlapped ones pay for what they
// share.
func PerlmutterTopology() *Topology {
	return &Topology{Name: "perlmutter", NICsPerNode: 4}
}

// OversubscribedTopology returns a commodity-cluster layout: one NIC
// per node shared by all its GPUs, behind a fabric core oversubscribed
// by the given factor (capacity nodes·NIC/factor). factor <= 1 keeps
// the core non-blocking.
func OversubscribedTopology(factor float64) *Topology {
	return &Topology{
		Name:        fmt.Sprintf("oversub%gx", factor),
		NICsPerNode: 1,
		Oversub:     factor,
	}
}

// TopologyFlagUsage is the -topology help text shared by the CLIs
// (cmd/trainer, cmd/gnnbench, cmd/compare, cmd/datagen).
const TopologyFlagUsage = "physical-link topology: ideal (pure α–β, no contention), perlmutter (per-GPU NIC injection) or oversub (one NIC per node, 4x-oversubscribed fabric core)"

// ParseTopology parses a flag spelling. "ideal" (or the empty string)
// is the nil topology — the pure α–β model with no contention.
func ParseTopology(s string) (*Topology, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "ideal", "none":
		return nil, nil
	case "perlmutter":
		return PerlmutterTopology(), nil
	case "oversub", "oversubscribed":
		return OversubscribedTopology(4), nil
	}
	return nil, fmt.Errorf("cluster: unknown topology %q (want ideal, perlmutter or oversub)", s)
}
