package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based tests for the progressive-filling (max-min fair)
// contention solver. Each property is checked over randomized flow
// sets: randomized starts, byte demands and link assignments over a
// multi-node oversubscribed topology (NICs shared 2:1, a 4x
// oversubscribed fabric trunk — the topology with the most link
// sharing, so the properties exercise real contention, not solo fast
// paths).

// propTopology builds the shared-link topology the properties run on.
func propTopology(t *testing.T, n int) *contention {
	t.Helper()
	topo := OversubscribedTopology(4)
	topo.NICsPerNode = 2
	return testContention(t, topo, n)
}

// randomFlows draws a batch of flows for rank count n: clustered
// starts (so flows genuinely overlap), byte demands across four orders
// of magnitude, and a random interconnect tier per flow.
func randomFlows(rng *rand.Rand, ct *contention, n int) []flowReq {
	count := 1 + rng.Intn(8)
	flows := make([]flowReq, count)
	tiers := []Link{IntraNode, HostLink, InterNode}
	for i := range flows {
		flows[i] = flowReq{
			start: float64(rng.Intn(3)) * 1e-5 * rng.Float64(),
			bytes: math.Pow(10, 3+rng.Float64()*4),
			links: ct.linksFor(rng.Intn(n), tiers[rng.Intn(len(tiers))]),
		}
	}
	return flows
}

// Work conservation: flows sharing one link with equal start times
// drain it at exactly capacity — the last completion is total bytes
// over capacity, no idle gaps and no overdraw.
func TestContentionPropertyWorkConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		ct := propTopology(t, 8)
		link := ct.linksFor(rng.Intn(8), InterNode) // NIC (+ trunk)
		count := 1 + rng.Intn(6)
		flows := make([]flowReq, count)
		total := 0.0
		for i := range flows {
			flows[i] = flowReq{start: 0, bytes: math.Pow(10, 3+rng.Float64()*4), links: link}
			total += flows[i].bytes
		}
		fin := ct.transact(flows)
		last := 0.0
		for _, f := range fin {
			if f > last {
				last = f
			}
		}
		// The shared bottleneck is the slowest of the flow's links.
		capacity := math.Inf(1)
		for _, l := range link {
			if ct.caps[l] < capacity {
				capacity = ct.caps[l]
			}
		}
		want := total / capacity
		if math.Abs(last-want) > 1e-9*want {
			t.Fatalf("trial %d: %d equal-start flows on one link drained in %.17g, want %.17g",
				trial, count, last, want)
		}
	}
}

// Monotonicity: committing an extra flow first can only delay (never
// speed up) the flows that arrive after it; and within one batch,
// adding a member never lets an existing member finish earlier than it
// would have in the smaller batch.
func TestContentionPropertyAddingFlowNeverSpeedsUp(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		ctA := propTopology(t, 8)
		ctB := propTopology(t, 8)
		flows := randomFlows(rng, ctA, 8)
		extra := randomFlows(rng, ctA, 8)[:1]
		finA := ctA.transact(flows)
		finB := ctB.transact(append(append([]flowReq(nil), flows...), extra...))
		for i := range flows {
			if finB[i] < finA[i]-1e-9*math.Max(1e-12, finA[i]) {
				t.Fatalf("trial %d: flow %d finished at %.17g with an extra flow vs %.17g without",
					trial, i, finB[i], finA[i])
			}
		}
	}
}

// Capacity-scaling invariance: multiplying every link capacity by k
// divides every flow's transfer duration by k (starts held fixed at
// zero so durations are directly comparable).
func TestContentionPropertyCapacityScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const k = 4.0
	for trial := 0; trial < 200; trial++ {
		ctA := propTopology(t, 8)
		ctB := propTopology(t, 8)
		for l := range ctB.caps {
			ctB.caps[l] *= k
		}
		flows := randomFlows(rng, ctA, 8)
		for i := range flows {
			flows[i].start = 0
		}
		finA := ctA.transact(flows)
		finB := ctB.transact(append([]flowReq(nil), flows...))
		for i := range flows {
			if finA[i] == 0 && finB[i] == 0 {
				continue // zero-byte or free transfer
			}
			if math.Abs(finA[i]-k*finB[i]) > 1e-9*math.Max(1e-12, finA[i]) {
				t.Fatalf("trial %d: flow %d duration %.17g at 1x vs %.17g at %gx capacity",
					trial, i, finA[i], finB[i], k)
			}
		}
	}
}

// Determinism: one collective's member flows are solved in a single
// ledger transaction, so the same flow set on a fresh ledger must
// yield bit-identical finish times — across 1000 randomized flow sets.
func TestContentionPropertyDeterministicShares(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 1000; trial++ {
		ctA := propTopology(t, 16)
		ctB := propTopology(t, 16)
		flows := randomFlows(rng, ctA, 16)
		finA := ctA.transact(append([]flowReq(nil), flows...))
		finB := ctB.transact(append([]flowReq(nil), flows...))
		for i := range finA {
			if finA[i] != finB[i] {
				t.Fatalf("trial %d: flow %d finish not deterministic: %.17g vs %.17g",
					trial, i, finA[i], finB[i])
			}
		}
		// A second identical transaction against the now-occupied ledger
		// must also be deterministic given the same committed state.
		finA2 := ctA.transact(append([]flowReq(nil), flows...))
		finB2 := ctB.transact(append([]flowReq(nil), flows...))
		for i := range finA2 {
			if finA2[i] != finB2[i] {
				t.Fatalf("trial %d: second-round finish not deterministic: %.17g vs %.17g",
					trial, finA2[i], finB2[i])
			}
		}
	}
}

// The solo fast path (a single flow on an empty ledger skips the
// sweep) must equal the sweep's closed form on the same input:
// start + bytes/min(cap), bit for bit.
func TestContentionSoloFastPathMatchesSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 300; trial++ {
		ct := propTopology(t, 8)
		f := randomFlows(rng, ct, 8)[:1]
		capacity := math.Inf(1)
		for _, l := range f[0].links {
			if ct.caps[l] < capacity {
				capacity = ct.caps[l]
			}
		}
		want := f[0].start + f[0].bytes/capacity
		fin := ct.transact(f)
		if fin[0] != want {
			t.Fatalf("trial %d: solo fast path %.17g != analytic %.17g", trial, fin[0], want)
		}
	}
}
