package cluster

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func testModel() CostModel {
	m := Perlmutter()
	return m
}

func TestRunAllRanksExecute(t *testing.T) {
	cl := New(8, testModel())
	var count int64
	_, err := cl.Run(func(r *Rank) error {
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("executed %d ranks, want 8", count)
	}
}

func TestRunPropagatesError(t *testing.T) {
	cl := New(4, testModel())
	_, err := cl.Run(func(r *Rank) error {
		if r.ID == 2 {
			return fmt.Errorf("rank 2 failed")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestChargeAdvancesClockAndPhases(t *testing.T) {
	cl := New(1, testModel())
	res, err := cl.Run(func(r *Rank) error {
		r.SetPhase("a")
		r.ChargeSparse(2e10) // 1 second at 2e10 ops/s
		r.SetPhase("b")
		r.ChargeDense(1e13) // 1 second
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Phase("a")-1) > 1e-9 || math.Abs(res.Phase("b")-1) > 1e-9 {
		t.Fatalf("phases a=%v b=%v, want 1s each", res.Phase("a"), res.Phase("b"))
	}
	if math.Abs(res.SimTime-2) > 1e-9 {
		t.Fatalf("sim time %v, want 2", res.SimTime)
	}
}

func TestDeviceRatesDiffer(t *testing.T) {
	cl := New(1, testModel())
	res, _ := cl.Run(func(r *Rank) error {
		r.SetPhase("gpu")
		r.ChargeSparseOn(GPU, 1e9)
		r.SetPhase("cpu")
		r.ChargeSparseOn(CPU, 1e9)
		return nil
	})
	if res.Phase("cpu") <= res.Phase("gpu") {
		t.Fatalf("CPU (%v) should be slower than GPU (%v)", res.Phase("cpu"), res.Phase("gpu"))
	}
}

func TestBroadcastDeliversRootValue(t *testing.T) {
	cl := New(6, testModel())
	world := cl.World()
	_, err := cl.Run(func(r *Rank) error {
		got := Broadcast(world, r, 2, r.ID*100, 8)
		if got != 200 {
			return fmt.Errorf("rank %d got %d", r.ID, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherOrdering(t *testing.T) {
	cl := New(5, testModel())
	world := cl.World()
	_, err := cl.Run(func(r *Rank) error {
		got := AllGather(world, r, r.ID, 8)
		for i, v := range got {
			if v != i {
				return fmt.Errorf("rank %d slot %d = %d", r.ID, i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherOnlyRootReceives(t *testing.T) {
	cl := New(4, testModel())
	world := cl.World()
	_, err := cl.Run(func(r *Rank) error {
		got := Gather(world, r, 1, r.ID+10, 8)
		if r.ID == 1 {
			if len(got) != 4 || got[3] != 13 {
				return fmt.Errorf("root got %v", got)
			}
		} else if got != nil {
			return fmt.Errorf("non-root rank %d got %v", r.ID, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterDistributesParts(t *testing.T) {
	cl := New(4, testModel())
	world := cl.World()
	_, err := cl.Run(func(r *Rank) error {
		var parts []string
		if world.LocalIndex(r) == 0 {
			parts = []string{"a", "b", "c", "d"}
		}
		got := Scatter(world, r, 0, parts, func(s string) int { return len(s) })
		want := string(rune('a' + r.ID))
		if got != want {
			return fmt.Errorf("rank %d got %q want %q", r.ID, got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllvRouting(t *testing.T) {
	cl := New(4, testModel())
	world := cl.World()
	_, err := cl.Run(func(r *Rank) error {
		parts := make([]int, 4)
		for i := range parts {
			parts[i] = r.ID*10 + i // message from r to i
		}
		got := AllToAllv(world, r, parts, func(int) int { return 8 })
		for sender, v := range got {
			if v != sender*10+r.ID {
				return fmt.Errorf("rank %d from %d got %d", r.ID, sender, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	cl := New(6, testModel())
	world := cl.World()
	_, err := cl.Run(func(r *Rank) error {
		x := []float64{float64(r.ID), 1}
		got := AllReduceSum(world, r, x)
		if got[0] != 15 || got[1] != 6 {
			return fmt.Errorf("rank %d got %v", r.ID, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceGenericOrdered(t *testing.T) {
	cl := New(4, testModel())
	world := cl.World()
	_, err := cl.Run(func(r *Rank) error {
		got := AllReduceGeneric(world, r, fmt.Sprintf("%d", r.ID), 1,
			func(a, b string) string { return a + b })
		if got != "0123" {
			return fmt.Errorf("rank %d got %q", r.ID, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveSynchronizesClocks(t *testing.T) {
	// A straggler's clock must drag everyone to at least its entry time.
	cl := New(3, testModel())
	world := cl.World()
	res, err := cl.Run(func(r *Rank) error {
		if r.ID == 0 {
			r.ChargeDense(5e13) // 5 seconds
		}
		Barrier(world, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Ranks {
		if s.Clock < 5 {
			t.Fatalf("rank %d clock %v < straggler 5s", i, s.Clock)
		}
	}
}

func TestRepeatedCollectivesDoNotRace(t *testing.T) {
	cl := New(8, testModel())
	world := cl.World()
	_, err := cl.Run(func(r *Rank) error {
		for iter := 0; iter < 200; iter++ {
			got := AllGather(world, r, r.ID*1000+iter, 8)
			for i, v := range got {
				if v != i*1000+iter {
					return fmt.Errorf("iter %d: slot %d = %d", iter, i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommCostScalesWithBytes(t *testing.T) {
	cl := New(2, testModel())
	world := cl.World()
	small, _ := cl.Run(func(r *Rank) error {
		Broadcast(world, r, 0, 0, 1000)
		return nil
	})
	cl2 := New(2, testModel())
	world2 := cl2.World()
	large, _ := cl2.Run(func(r *Rank) error {
		Broadcast(world2, r, 0, 0, 1000000)
		return nil
	})
	if large.SimTime <= small.SimTime {
		t.Fatalf("1MB broadcast (%v) not slower than 1KB (%v)", large.SimTime, small.SimTime)
	}
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	model := testModel() // 4 GPUs per node
	run := func(members []int) float64 {
		cl := New(8, model)
		comm := cl.NewComm(members)
		res, err := cl.Run(func(r *Rank) error {
			if _, ok := comm.index[r.ID]; ok {
				Broadcast(comm, r, 0, 0, 1<<20)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	intra := run([]int{0, 1, 2, 3}) // one node
	inter := run([]int{0, 4})       // spans nodes, fewer members
	if intra >= inter*4 {           // inter-node β is 4x intra
		t.Fatalf("intra %v vs inter %v: tiers not applied", intra, inter)
	}
	if inter <= intra/4 {
		t.Fatalf("inter-node broadcast unexpectedly cheap: %v vs %v", inter, intra)
	}
}

func TestGridShape(t *testing.T) {
	cl := New(8, testModel())
	g := NewGrid(cl, 8, 2)
	if g.Rows != 4 {
		t.Fatalf("rows = %d, want 4", g.Rows)
	}
	if g.RowIndex(5) != 2 || g.ColIndex(5) != 1 {
		t.Fatalf("rank 5 at (%d,%d), want (2,1)", g.RowIndex(5), g.ColIndex(5))
	}
	if g.RankAt(2, 1) != 5 {
		t.Fatalf("RankAt(2,1) = %d", g.RankAt(2, 1))
	}
	if g.RowComm(5).Size() != 2 || g.ColComm(5).Size() != 4 {
		t.Fatal("sub-communicator sizes wrong")
	}
	// Row comm of rank 5 covers ranks {4, 5}.
	m := g.RowComm(5).Members()
	if m[0] != 4 || m[1] != 5 {
		t.Fatalf("row comm members %v", m)
	}
}

func TestGridBadReplicationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: c does not divide p")
		}
	}()
	cl := New(8, testModel())
	NewGrid(cl, 8, 3)
}

func TestGridCollectivesWithinRowsAndCols(t *testing.T) {
	cl := New(8, testModel())
	g := NewGrid(cl, 8, 2)
	_, err := cl.Run(func(r *Rank) error {
		// Sum of grid-row indices within a column: rows are 0..3.
		colSum := AllReduceSum(g.ColComm(r.ID), r, []float64{float64(g.RowIndex(r.ID))})
		if colSum[0] != 6 {
			return fmt.Errorf("rank %d col sum %v", r.ID, colSum[0])
		}
		rowSum := AllReduceSum(g.RowComm(r.ID), r, []float64{float64(g.ColIndex(r.ID))})
		if rowSum[0] != 1 {
			return fmt.Errorf("rank %d row sum %v", r.ID, rowSum[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhaseCommAccounting(t *testing.T) {
	cl := New(2, testModel())
	world := cl.World()
	res, err := cl.Run(func(r *Rank) error {
		r.SetPhase("fetch")
		Broadcast(world, r, 0, 0, 1<<20)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseComm("fetch") <= 0 {
		t.Fatal("broadcast not booked as communication")
	}
	if res.PhaseComm("fetch") > res.Phase("fetch")+1e-12 {
		t.Fatal("comm time exceeds phase time")
	}
}

func TestChargeLinkPCIe(t *testing.T) {
	cl := New(1, testModel())
	res, _ := cl.Run(func(r *Rank) error {
		r.SetPhase("uva")
		r.ChargeLink(HostLink, 20e9) // 1 second at 20 GB/s
		return nil
	})
	if math.Abs(res.Phase("uva")-1) > 0.01 {
		t.Fatalf("PCIe charge = %v, want ~1s", res.Phase("uva"))
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]float64{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for n, want := range cases {
		if got := log2Ceil(n); got != want {
			t.Fatalf("log2Ceil(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestSendRecvDeliversValue(t *testing.T) {
	cl := New(2, testModel())
	_, err := cl.Run(func(r *Rank) error {
		if r.ID == 0 {
			Send(cl, r, 1, 7, "hello", 5)
			return nil
		}
		got := Recv[string](cl, r, 0, 7)
		if got != "hello" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvSynchronizesClocks(t *testing.T) {
	cl := New(2, testModel())
	res, err := cl.Run(func(r *Rank) error {
		if r.ID == 0 {
			r.ChargeDense(1e13) // 1 simulated second head start
			Send(cl, r, 1, 0, 42, 8)
		} else {
			v := Recv[int](cl, r, 0, 0)
			if v != 42 {
				return fmt.Errorf("got %d", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver cannot finish before the sender's entry time.
	if res.Ranks[1].Clock < 1 {
		t.Fatalf("receiver clock %v < sender start 1s", res.Ranks[1].Clock)
	}
}

func TestSendRecvManyTags(t *testing.T) {
	cl := New(2, testModel())
	_, err := cl.Run(func(r *Rank) error {
		if r.ID == 0 {
			for tag := 0; tag < 50; tag++ {
				Send(cl, r, 1, tag, tag*tag, 8)
			}
			return nil
		}
		for tag := 0; tag < 50; tag++ {
			if got := Recv[int](cl, r, 0, tag); got != tag*tag {
				return fmt.Errorf("tag %d: got %d", tag, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvBidirectionalNoDeadlock(t *testing.T) {
	// Cross-sends with reversed tags must complete (rendezvous pairs
	// do not block each other across goroutines).
	cl := New(2, testModel())
	done := make(chan struct{})
	go func() {
		cl.Run(func(r *Rank) error {
			other := 1 - r.ID
			if r.ID == 0 {
				Send(cl, r, other, 1, r.ID, 8)
				Recv[int](cl, r, other, 2)
			} else {
				Recv[int](cl, r, other, 1)
				Send(cl, r, other, 2, r.ID, 8)
			}
			return nil
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("send/recv deadlocked")
	}
}

func TestSendToSelfPanics(t *testing.T) {
	cl := New(2, testModel())
	_, err := cl.Run(func(r *Rank) error {
		if r.ID == 0 {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on self-send")
				}
			}()
			Send(cl, r, 0, 0, 1, 8)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhaseStack(t *testing.T) {
	cl := New(1, testModel())
	res, err := cl.Run(func(r *Rank) error {
		r.SetPhase("outer")
		r.PushPhase("inner")
		r.ChargeDense(1e13) // 1 second: should hit both levels
		r.PopPhase()
		r.ChargeDense(1e13) // 1 second: outer only
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Phase("outer")-2) > 1e-9 {
		t.Fatalf("outer = %v, want 2", res.Phase("outer"))
	}
	if math.Abs(res.Phase("inner")-1) > 1e-9 {
		t.Fatalf("inner = %v, want 1", res.Phase("inner"))
	}
}

func TestPhaseStackDuplicateNameNoDoubleCount(t *testing.T) {
	cl := New(1, testModel())
	res, err := cl.Run(func(r *Rank) error {
		r.SetPhase("x")
		r.PushPhase("x") // same name nested
		r.ChargeDense(1e13)
		r.PopPhase()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Phase("x")-1) > 1e-9 {
		t.Fatalf("duplicate-name stack double counted: %v", res.Phase("x"))
	}
}

func TestPopBaseLevelPanics(t *testing.T) {
	cl := New(1, testModel())
	_, err := cl.Run(func(r *Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on base-level pop")
			}
		}()
		r.PopPhase()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpCounters(t *testing.T) {
	cl := New(4, testModel())
	world := cl.World()
	res, err := cl.Run(func(r *Rank) error {
		AllReduceSum(world, r, []float64{1, 2})
		Broadcast(world, r, 0, 7, 16)
		AllToAllv(world, r, []int{0, 1, 2, 3}, func(int) int { return 8 })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Ranks[0]
	if s.OpCount["allreduce"] != 1 {
		t.Fatalf("allreduce count = %d", s.OpCount["allreduce"])
	}
	if s.OpCount["broadcast"] != 1 || s.OpBytes["broadcast"] != 16*3 {
		t.Fatalf("broadcast accounting: %+v", s.OpBytes)
	}
	if s.OpCount["alltoallv"] != 1 || s.OpBytes["alltoallv"] != 24 {
		t.Fatalf("alltoallv accounting: %+v", s.OpBytes)
	}
	// Non-root ranks do not book broadcast bytes.
	if res.Ranks[1].OpBytes["broadcast"] != 0 {
		t.Fatal("non-root booked broadcast bytes")
	}
}

func TestStragglerSlowsBSPMakespan(t *testing.T) {
	run := func(stragglers map[int]float64) float64 {
		model := testModel()
		model.Stragglers = stragglers
		cl := New(4, model)
		world := cl.World()
		res, err := cl.Run(func(r *Rank) error {
			for step := 0; step < 5; step++ {
				r.ChargeDense(1e12) // 0.1s nominal
				Barrier(world, r)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	base := run(nil)
	slow := run(map[int]float64{2: 2.0})
	// One 2x straggler must roughly double a compute-bound BSP loop.
	if slow < base*1.8 || slow > base*2.2 {
		t.Fatalf("straggler makespan %v vs base %v (want ~2x)", slow, base)
	}
}

func TestAllReduceSumHierMatchesFlat(t *testing.T) {
	cl := New(8, testModel()) // 2 nodes of 4
	cl.Model.Collectives.AllReduce = Hierarchical
	world := cl.World()
	_, err := cl.Run(func(r *Rank) error {
		x := []float64{float64(r.ID), 1, float64(r.ID * r.ID)}
		got := AllReduceSum(world, r, x)
		want := []float64{28, 8, 140}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				return fmt.Errorf("rank %d slot %d: %v want %v", r.ID, i, got[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSumHierSingleNodeFallback(t *testing.T) {
	cl := New(4, testModel()) // one node
	cl.Model.Collectives.AllReduce = Hierarchical
	world := cl.World()
	_, err := cl.Run(func(r *Rank) error {
		got := AllReduceSum(world, r, []float64{1})
		if got[0] != 4 {
			return fmt.Errorf("got %v", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSumHierCheaperAcrossNodes(t *testing.T) {
	// With a large payload spanning 4 nodes, the hierarchical
	// algorithm must book less simulated time than the flat one (the
	// slow tier carries node-count messages, not rank-count).
	measure := func(hier bool) float64 {
		cl := New(16, testModel()) // 4 nodes
		if hier {
			cl.Model.Collectives.AllReduce = Hierarchical
		}
		world := cl.World()
		res, err := cl.Run(func(r *Rank) error {
			x := make([]float64, 1<<16)
			for i := 0; i < 3; i++ {
				AllReduceSum(world, r, x)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	flat := measure(false)
	hier := measure(true)
	t.Logf("flat %v hier %v", flat, hier)
	if hier >= flat*1.5 {
		t.Fatalf("hierarchical much slower: %v vs %v", hier, flat)
	}
}

func TestAllReduceSumHierRepeated(t *testing.T) {
	cl := New(8, testModel())
	cl.Model.Collectives.AllReduce = Hierarchical
	world := cl.World()
	_, err := cl.Run(func(r *Rank) error {
		for i := 0; i < 50; i++ {
			got := AllReduceSum(world, r, []float64{float64(i)})
			if got[0] != float64(8*i) {
				return fmt.Errorf("iter %d: %v", i, got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
