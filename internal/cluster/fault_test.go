package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan *FaultPlan
		n    int
		ok   bool
	}{
		{"nil plan", nil, 8, true},
		{"empty plan", &FaultPlan{}, 8, true},
		{"single", &FaultPlan{Failures: []Failure{{Rank: 3, At: 0.5}}}, 8, true},
		{"range unchecked when n<=0", &FaultPlan{Failures: []Failure{{Rank: 99, At: 1}}}, 0, true},
		{"negative rank", &FaultPlan{Failures: []Failure{{Rank: -1, At: 1}}}, 8, false},
		{"rank out of range", &FaultPlan{Failures: []Failure{{Rank: 8, At: 1}}}, 8, false},
		{"zero time", &FaultPlan{Failures: []Failure{{Rank: 0, At: 0}}}, 8, false},
		{"negative time", &FaultPlan{Failures: []Failure{{Rank: 0, At: -1}}}, 8, false},
		{"NaN time", &FaultPlan{Failures: []Failure{{Rank: 0, At: nan()}}}, 8, false},
		{"Inf time", &FaultPlan{Failures: []Failure{{Rank: 0, At: inf()}}}, 8, false},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(tc.n)
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

func TestFaultPlanWithout(t *testing.T) {
	p := &FaultPlan{Failures: []Failure{{Rank: 1, At: 2}, {Rank: 0, At: 1}, {Rank: 1, At: 2}}}
	p2 := p.Without(Failure{Rank: 1, At: 2})
	if p2.Len() != 2 {
		t.Fatalf("Without removed %d entries, want exactly 1 (len %d)", p.Len()-p2.Len(), p2.Len())
	}
	if got := p2.String(); got != "0@1,1@2" {
		t.Fatalf("plan after Without = %q, want %q", got, "0@1,1@2")
	}
	p3 := p2.Without(Failure{Rank: 1, At: 2}).Without(Failure{Rank: 0, At: 1})
	if p3 != nil {
		t.Fatalf("emptied plan = %v, want nil", p3)
	}
	if (*FaultPlan)(nil).Without(Failure{Rank: 0, At: 1}) != nil {
		t.Fatal("nil plan Without != nil")
	}
	// Without never mutates the receiver (restart drivers share plans).
	if p.Len() != 3 {
		t.Fatalf("Without mutated receiver: len %d", p.Len())
	}
}

func TestFaultPlanString(t *testing.T) {
	if got := (*FaultPlan)(nil).String(); got != "" {
		t.Fatalf("nil plan String = %q", got)
	}
	p := &FaultPlan{Failures: []Failure{{Rank: 2, At: 0.5}, {Rank: 0, At: 0.25}, {Rank: 1, At: 0.25}}}
	if got, want := p.String(), "0@0.25,1@0.25,2@0.5"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// TestRankFailureStopsAtPlannedTime pins the fail-stop trigger: the
// rank halts at the first charge boundary at or after the planned
// time, Run surfaces the planned failure, and survivors complete their
// accounting normally up to the abort.
func TestRankFailureStopsAtPlannedTime(t *testing.T) {
	for _, backend := range []Backend{GoroutineBackend, DESBackend} {
		m := testModel()
		m.Backend = backend
		m.Faults = &FaultPlan{Failures: []Failure{{Rank: 1, At: 1e-9}}}
		cl := New(4, m)
		_, err := cl.Run(func(r *Rank) error {
			r.SetPhase("work")
			r.ChargeDense(1 << 20) // every rank's clock crosses 1e-9s here
			return nil
		})
		if err == nil {
			t.Fatalf("backend %v: Run succeeded despite planned failure", backend)
		}
		if !errors.Is(err, ErrRankFailed) {
			t.Fatalf("backend %v: error %v does not wrap ErrRankFailed", backend, err)
		}
		var rf *RankFailure
		if !errors.As(err, &rf) {
			t.Fatalf("backend %v: error %v is not a RankFailure", backend, err)
		}
		if rf.Rank != 1 || rf.At != 1e-9 {
			t.Fatalf("backend %v: failure = rank %d at %v, want rank 1 at 1e-9", backend, rf.Rank, rf.At)
		}
	}
}

// TestNilFaultPlanInert pins that a nil plan injects nothing.
func TestNilFaultPlanInert(t *testing.T) {
	cl := New(2, testModel())
	if _, err := cl.Run(func(r *Rank) error {
		r.SetPhase("work")
		r.ChargeDense(1 << 30)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// abortProbe runs body-level collectives on a 4-rank cluster where
// rank 1 dies before joining, and returns Run's error plus each
// surviving rank's observed abort error.
func abortProbe(t *testing.T, backend Backend, collectives Collectives,
	op func(c *Comm, r *Rank)) (runErr error, rankErrs []error) {
	t.Helper()
	const p = 4
	m := testModel()
	m.Backend = backend
	m.Collectives = collectives
	m.Faults = &FaultPlan{Failures: []Failure{{Rank: 1, At: 1e-9}}}
	cl := New(p, m)
	world := cl.World()
	rankErrs = make([]error, p)
	runErr = func() error {
		_, err := cl.Run(func(r *Rank) error {
			r.SetPhase("work")
			r.ChargeDense(1 << 20) // rank 1 halts here
			err := func() (err error) {
				defer func() {
					if pv := recover(); pv != nil {
						if e, ok := pv.(error); ok && errors.Is(e, ErrRankFailed) {
							err = e
							return
						}
						panic(pv)
					}
				}()
				op(world, r)
				return nil
			}()
			rankErrs[r.ID] = err
			return err
		})
		return err
	}()
	return runErr, rankErrs
}

// TestCollectiveAbortOnRankFailure is the abort-path golden suite:
// every collective, on both backends, must observe a clean recoverable
// abort naming the failed rank — never a hang and never a bug-class
// panic — when a member dies before joining.
func TestCollectiveAbortOnRankFailure(t *testing.T) {
	ops := []struct {
		name string
		coll Collectives
		op   func(c *Comm, r *Rank)
	}{
		{"barrier", Collectives{}, func(c *Comm, r *Rank) { Barrier(c, r) }},
		{"broadcast", Collectives{}, func(c *Comm, r *Rank) { Broadcast(c, r, 0, r.ID, 8) }},
		{"allgather", Collectives{}, func(c *Comm, r *Rank) { AllGather(c, r, r.ID, 8) }},
		{"gather", Collectives{}, func(c *Comm, r *Rank) { Gather(c, r, 0, r.ID, 8) }},
		{"scatter", Collectives{}, func(c *Comm, r *Rank) {
			parts := []int{0, 1, 2, 3}
			Scatter(c, r, 0, parts, func(int) int { return 8 })
		}},
		{"alltoallv-flat", Collectives{}, func(c *Comm, r *Rank) {
			AllToAllv(c, r, []int{0, 1, 2, 3}, func(int) int { return 8 })
		}},
		{"alltoallv-pairwise", Collectives{AllToAll: Pairwise}, func(c *Comm, r *Rank) {
			AllToAllv(c, r, []int{0, 1, 2, 3}, func(int) int { return 8 })
		}},
		{"allreduce-flat", Collectives{}, func(c *Comm, r *Rank) {
			AllReduceSum(c, r, []float64{1, 2})
		}},
		{"allreduce-ring", Collectives{AllReduce: Ring}, func(c *Comm, r *Rank) {
			AllReduceSum(c, r, []float64{1, 2})
		}},
		{"allreduce-hier", Collectives{AllReduce: Hierarchical}, func(c *Comm, r *Rank) {
			AllReduceSum(c, r, []float64{1, 2})
		}},
		{"allreduce-apply", Collectives{}, func(c *Comm, r *Rank) {
			AllReduceSumApply(c, r, []float64{1, 2}, func([]float64) {})
		}},
		{"allreduce-generic", Collectives{}, func(c *Comm, r *Rank) {
			AllReduceGeneric(c, r, r.ID, 8, func(a, b int) int { return a + b })
		}},
		{"allreduce-generic-into", Collectives{}, func(c *Comm, r *Rank) {
			dest := make([]int, 1)
			AllReduceGenericInto(c, r, r.ID, 8, dest, func(vals []int, dests [][]int) {})
		}},
	}
	for _, backend := range []Backend{GoroutineBackend, DESBackend} {
		for _, tc := range ops {
			t.Run(fmt.Sprintf("%s/backend-%d", tc.name, backend), func(t *testing.T) {
				runErr, rankErrs := abortProbe(t, backend, tc.coll, tc.op)
				if runErr == nil {
					t.Fatal("Run succeeded despite failed member")
				}
				if !errors.Is(runErr, ErrRankFailed) {
					t.Fatalf("Run error %v does not wrap ErrRankFailed", runErr)
				}
				var rf *RankFailure
				if !errors.As(runErr, &rf) || rf.Rank != 1 {
					t.Fatalf("Run error %v does not surface the rank-1 failure", runErr)
				}
				for id, err := range rankErrs {
					if id == 1 {
						// The failed rank died in the charge, before op.
						continue
					}
					if err == nil {
						t.Fatalf("surviving rank %d completed the collective", id)
					}
					if !errors.Is(err, ErrRankFailed) {
						t.Fatalf("rank %d abort %v does not wrap ErrRankFailed", id, err)
					}
					if !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "fail-stop") {
						t.Fatalf("rank %d abort %q lacks the failed-rank diagnostic", id, err)
					}
				}
			})
		}
	}
}

// TestBugClassPanicStillCrashes pins the fault/bug separation: a
// non-fault panic in a rank body is not converted into an error. The
// DES backend re-raises a trapped task panic on the caller's
// goroutine, which is where this test can observe it (the goroutine
// backend would crash the whole process, by design).
func TestBugClassPanicStillCrashes(t *testing.T) {
	m := testModel()
	m.Backend = DESBackend
	cl := New(1, m)
	defer func() {
		if recover() == nil {
			t.Fatal("bug-class panic was swallowed")
		}
	}()
	_, _ = cl.Run(func(r *Rank) error {
		panic("genuine bug")
	})
}

// TestSnapshotRestoreRoundTrip pins accounting restore: run a cluster,
// snapshot each rank, restore into a fresh run that does nothing, and
// check folded stats carry over exactly.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := testModel()
	cl := New(2, m)
	world := cl.World()
	snaps := make([]RankSnapshot, 2)
	res1, err := cl.Run(func(r *Rank) error {
		r.SetPhase("alpha")
		r.ChargeDense(1 << 20)
		r.SetPhase("beta")
		r.ChargeLink(HostLink, 1<<16)
		AllReduceSum(world, r, []float64{float64(r.ID)})
		snaps[r.ID] = r.Snapshot()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cl2 := New(2, m)
	res2, err := cl2.Run(func(r *Rank) error {
		r.Restore(snaps[r.ID])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res1.SimTime != res2.SimTime {
		t.Fatalf("restored SimTime %v != original %v", res2.SimTime, res1.SimTime)
	}
	for _, phase := range []string{"alpha", "beta"} {
		if res1.Phase(phase) != res2.Phase(phase) {
			t.Fatalf("restored phase %q = %v, want %v", phase, res2.Phase(phase), res1.Phase(phase))
		}
		if res1.PhaseComm(phase) != res2.PhaseComm(phase) {
			t.Fatalf("restored comm %q = %v, want %v", phase, res2.PhaseComm(phase), res1.PhaseComm(phase))
		}
	}
}
