package cluster

import (
	"math"
	"strings"
	"testing"
	"time"
)

// testContention builds a standalone ledger over the given topology
// for direct fair-share-math tests.
func testContention(t *testing.T, topo *Topology, n int) *contention {
	t.Helper()
	model := Perlmutter()
	model.Topology = topo
	return newContention(model, n)
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s = %.17g, want %.17g", name, got, want)
	}
}

// A flow alone on its links runs at full tier bandwidth: the fair-share
// charge must equal the α–β model's β·bytes.
func TestFairShareSoloFlowMatchesBeta(t *testing.T) {
	ct := testContention(t, OversubscribedTopology(0), 8)
	beta := Perlmutter().Beta[InterNode]
	fin := ct.transact([]flowReq{{start: 1.0, bytes: 1e6, links: ct.linksFor(0, InterNode)}})
	approx(t, "solo finish", fin[0], 1.0+1e6*beta)
}

// Two equal concurrent transfers on one physical link each take twice
// the solo β time: the link's capacity is split fairly, not duplicated.
func TestFairShareTwoEqualFlowsTakeDouble(t *testing.T) {
	// One NIC per node: ranks 0 and 1 share nic:node0.0.
	ct := testContention(t, OversubscribedTopology(0), 8)
	beta := Perlmutter().Beta[InterNode]
	fin := ct.transact([]flowReq{
		{start: 0, bytes: 1e6, links: ct.linksFor(0, InterNode)},
		{start: 0, bytes: 1e6, links: ct.linksFor(1, InterNode)},
	})
	approx(t, "flow 0", fin[0], 2*1e6*beta)
	approx(t, "flow 1", fin[1], 2*1e6*beta)
}

// Transfers on disjoint physical links do not interact: each finishes
// at its solo time.
func TestFairShareDisjointLinksIndependent(t *testing.T) {
	ct := testContention(t, OversubscribedTopology(0), 8)
	beta := Perlmutter().Beta[InterNode]
	// Ranks 0 (node 0) and 4 (node 1) inject through different NICs.
	fin := ct.transact([]flowReq{
		{start: 0, bytes: 1e6, links: ct.linksFor(0, InterNode)},
		{start: 0, bytes: 1e6, links: ct.linksFor(4, InterNode)},
	})
	approx(t, "flow 0", fin[0], 1e6*beta)
	approx(t, "flow 1", fin[1], 1e6*beta)
	// NVLink ports and PCIe links are per-GPU: also disjoint.
	fin = ct.transact([]flowReq{
		{start: 0, bytes: 1e6, links: ct.linksFor(0, IntraNode)},
		{start: 0, bytes: 1e6, links: ct.linksFor(1, IntraNode)},
	})
	nvBeta := Perlmutter().Beta[IntraNode]
	approx(t, "nvlink flow 0", fin[0], 1e6*nvBeta)
	approx(t, "nvlink flow 1", fin[1], 1e6*nvBeta)
}

// A staggered second flow shares only while both are active: the first
// flow (already committed) keeps its time, the second pays half rate
// while the first is still draining.
func TestFairShareStaggeredFlowSeesCommittedOccupancy(t *testing.T) {
	ct := testContention(t, OversubscribedTopology(0), 8)
	cap := 1 / Perlmutter().Beta[InterNode]
	b := cap // one second of solo demand
	fin := ct.transact([]flowReq{{start: 0, bytes: b, links: ct.linksFor(0, InterNode)}})
	approx(t, "first flow", fin[0], 1.0)
	// Second flow starts at 0.5: shares [0.5, 1.0) at cap/2 (moves
	// 0.25·cap), then runs alone and needs 0.75 more seconds.
	fin = ct.transact([]flowReq{{start: 0.5, bytes: b, links: ct.linksFor(1, InterNode)}})
	approx(t, "staggered flow", fin[0], 1.75)
}

// An inter-node flow under an oversubscribed fabric crosses both its
// node NIC and the shared trunk; the trunk's lower capacity bounds it.
func TestFairShareTrunkBoundsOversubscribedFlows(t *testing.T) {
	ct := testContention(t, OversubscribedTopology(4), 8)
	model := Perlmutter()
	nicCap := 1 / model.Beta[InterNode]
	// 2 nodes: trunk capacity = 2·nic/4 = nic/2. A solo flow is
	// trunk-bound at half the NIC rate.
	fin := ct.transact([]flowReq{{start: 0, bytes: nicCap, links: ct.linksFor(0, InterNode)}})
	approx(t, "trunk-bound solo", fin[0], 2.0)
}

// Zero-byte flows (a barrier's members) finish at their start time and
// leave no occupancy behind.
func TestFairShareZeroByteFlowIsFree(t *testing.T) {
	ct := testContention(t, OversubscribedTopology(0), 8)
	fin := ct.transact([]flowReq{{start: 3, bytes: 0, links: ct.linksFor(0, InterNode)}})
	if fin[0] != 3 {
		t.Fatalf("zero-byte flow finish = %v, want 3", fin[0])
	}
	for _, spans := range ct.busy {
		if len(spans) != 0 {
			t.Fatal("zero-byte flow committed occupancy")
		}
	}
}

// Within one collective, same-node members sharing a NIC split its
// bandwidth: a world all-to-allv under a one-NIC-per-node topology
// takes GPUsPerNode times the β term of the ideal model.
func TestCollectiveSharesNodeNIC(t *testing.T) {
	run := func(topo *Topology) float64 {
		model := Perlmutter()
		model.Topology = topo
		cl := New(8, model)
		world := cl.World()
		res, err := cl.Run(func(r *Rank) error {
			parts := make([]int, 8)
			AllToAllv(world, r, parts, func(int) int { return 1 << 20 })
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	model := Perlmutter()
	vol := float64(7 << 20)
	alpha := 7 * model.Alpha[InterNode]
	ideal := run(nil)
	approx(t, "ideal alltoallv", ideal, alpha+vol*model.Beta[InterNode])
	// One NIC per node, non-blocking core: 4 flows share each NIC.
	shared := run(OversubscribedTopology(0))
	approx(t, "shared-NIC alltoallv", shared, alpha+4*vol*model.Beta[InterNode])
	// Per-GPU NICs (Perlmutter): no intra-collective sharing at all.
	perl := run(PerlmutterTopology())
	approx(t, "per-GPU-NIC alltoallv", perl, ideal)
}

// Per-physical-link stats surface in the run result: bytes routed and
// the peak concurrency actually observed.
func TestRunReportsPhysLinkStats(t *testing.T) {
	model := Perlmutter()
	model.Topology = OversubscribedTopology(4)
	cl := New(8, model)
	world := cl.World()
	res, err := cl.Run(func(r *Rank) error {
		AllReduceSum(world, r, make([]float64, 1024))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhysLinks) == 0 {
		t.Fatal("no physical-link stats recorded")
	}
	var nicBytes float64
	trunkSeen := false
	for _, pl := range res.PhysLinks {
		if strings.HasPrefix(pl.Name, "nic:") {
			nicBytes += pl.Bytes
			if pl.Bytes > 0 && pl.MaxConcurrency < 4 {
				t.Fatalf("NIC %s peak concurrency %d, want >= 4 (4 GPUs share it)",
					pl.Name, pl.MaxConcurrency)
			}
		}
		if pl.Name == "fabric-trunk" {
			trunkSeen = true
			if pl.Bytes <= 0 || pl.MaxConcurrency < 8 {
				t.Fatalf("trunk stats %+v, want all 8 flows crossing it", pl)
			}
		}
	}
	if nicBytes <= 0 {
		t.Fatal("no NIC traffic recorded for an inter-node all-reduce")
	}
	if !trunkSeen {
		t.Fatal("oversubscribed fabric trunk missing from stats")
	}
}

// The nil topology must never allocate a ledger: the charging path has
// to stay byte-for-byte the pre-topology α–β code.
func TestNilTopologyHasNoLedger(t *testing.T) {
	cl := New(4, Perlmutter())
	if cl.cont != nil {
		t.Fatal("nil topology built a contention ledger")
	}
	res, err := cl.Run(func(r *Rank) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.PhysLinks != nil {
		t.Fatal("nil topology reported physical links")
	}
}

func TestParseTopology(t *testing.T) {
	for _, s := range []string{"", "ideal", "none", "IDEAL"} {
		topo, err := ParseTopology(s)
		if err != nil || topo != nil {
			t.Fatalf("ParseTopology(%q) = %v, %v; want nil topology", s, topo, err)
		}
	}
	topo, err := ParseTopology("perlmutter")
	if err != nil || topo == nil || topo.NICsPerNode != 4 {
		t.Fatalf("ParseTopology(perlmutter) = %+v, %v", topo, err)
	}
	topo, err = ParseTopology("oversub")
	if err != nil || topo == nil || topo.NICsPerNode != 1 || topo.Oversub != 4 {
		t.Fatalf("ParseTopology(oversub) = %+v, %v", topo, err)
	}
	if _, err := ParseTopology("torus"); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if got := topo.String(); got != "oversub4x" {
		t.Fatalf("String() = %q", got)
	}
	var nilTopo *Topology
	if got := nilTopo.String(); got != "ideal" {
		t.Fatalf("nil String() = %q", got)
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (*Topology)(nil).Validate(); err != nil {
		t.Fatalf("nil topology invalid: %v", err)
	}
	bad := []*Topology{
		{Name: "neg-nics", NICsPerNode: -1},
		{Name: "neg-oversub", Oversub: -2},
		{Name: "neg-cap", NICBps: -1},
	}
	for _, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Fatalf("topology %q accepted", topo.Name)
		}
	}
}

// Straggler factors in (0, 1) model faster-than-baseline ranks and
// must be honored, not silently dropped.
func TestStragglerFractionalFactorSpeedsRank(t *testing.T) {
	model := Perlmutter()
	model.Stragglers = map[int]float64{0: 0.5}
	base := Perlmutter()
	r := &Rank{ID: 0, N: 1, model: &model, phases: []string{"default"}, acct: newAcct()}
	r.ChargeSparse(1_000_000)
	want := 1_000_000 / base.SparseOps[GPU] * 0.5
	approx(t, "fractional straggler clock", r.Clock(), want)
}

// Non-positive straggler factors are configuration errors: silently
// ignoring them (the old behavior for anything <= 1) hid the mistake.
func TestStragglerNonPositiveFactorPanics(t *testing.T) {
	for _, f := range []float64{0, -1} {
		model := Perlmutter()
		model.Stragglers = map[int]float64{0: f}
		r := &Rank{ID: 0, N: 1, model: &model, phases: []string{"default"}, acct: newAcct()}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("straggler factor %v did not panic", f)
				}
			}()
			r.ChargeSparse(1)
		}()
	}
}

// Recv must validate src up front like Send validates dst: an
// out-of-range src can never match and used to block forever.
func TestRecvInvalidSrcPanics(t *testing.T) {
	cl := New(2, Perlmutter())
	for _, src := range []int{-1, 2} {
		src := src
		_, err := cl.Run(func(r *Rank) error {
			if r.ID != 0 {
				return nil
			}
			defer func() {
				if recover() == nil {
					t.Errorf("Recv from rank %d did not panic", src)
				}
			}()
			Recv[int](cl, r, src, 0)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// A duplicate Send panics without wedging the mailbox: the diagnostic
// releases the lock (deferred unlock), so the original matched pair
// still completes instead of every rank deadlocking behind the mutex.
func TestDuplicateSendPanicsAndReleasesMailbox(t *testing.T) {
	cl := New(2, Perlmutter())
	mk := func(id int) *Rank {
		return &Rank{ID: id, N: 2, model: &cl.Model, phases: []string{"default"}, acct: newAcct()}
	}
	s0, s0dup, r1 := mk(0), mk(0), mk(1)

	firstDone := make(chan struct{})
	go func() {
		Send(cl, s0, 1, 0, 41, 8)
		close(firstDone)
	}()
	// Wait until the first send has posted its slot.
	mb := cl.mailboxInstance()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mb.mu.Lock()
		slot := mb.slots[mailKey{src: 0, dst: 1, tag: 0}]
		posted := slot != nil && slot.hasData
		mb.mu.Unlock()
		if posted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first Send never posted")
		}
		time.Sleep(time.Millisecond)
	}

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		Send(cl, s0dup, 1, 0, 42, 8)
	}()
	select {
	case p := <-panicked:
		if p == nil {
			t.Fatal("duplicate Send did not panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate Send hung (mailbox wedged?)")
	}

	// The mailbox must still serve the original pair.
	recvDone := make(chan int, 1)
	go func() { recvDone <- Recv[int](cl, r1, 0, 0) }()
	select {
	case got := <-recvDone:
		if got != 41 {
			t.Fatalf("Recv after duplicate-send panic = %d, want 41", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv deadlocked after duplicate-send panic: mailbox left locked")
	}
	<-firstDone
}

// Point-to-point sends route through the contention ledger too. Sends
// are separate ledger transactions (unlike one collective's members,
// which share symmetrically), so the pair resolves first-committed-
// first-served: the first send keeps its solo time and the second
// shares the NIC while the first drains (half rate for one solo-time,
// then full rate for the remaining half) — the slower of the two
// finishes at 1.5x the solo β time, whichever order they commit in.
func TestSendContendsOnSharedNIC(t *testing.T) {
	run := func(topo *Topology) float64 {
		model := Perlmutter()
		model.Topology = topo
		cl := New(8, model)
		res, err := cl.Run(func(r *Rank) error {
			// Ranks 0 and 1 (node 0) send to ranks 4 and 5 (node 1).
			switch r.ID {
			case 0, 1:
				Send(cl, r, r.ID+4, 0, 1, 1<<20)
			case 4, 5:
				Recv[int](cl, r, r.ID-4, 0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	model := Perlmutter()
	solo := model.Alpha[InterNode] + float64(1<<20)*model.Beta[InterNode]
	approx(t, "ideal sends", run(nil), solo)
	shared := run(OversubscribedTopology(0))
	want := model.Alpha[InterNode] + 1.5*float64(1<<20)*model.Beta[InterNode]
	approx(t, "shared-NIC sends", shared, want)
}

// A panic inside the rendezvous transform hook (the contention
// solver's diagnostics would be one source) fires with the generation
// complete, where the deadlock detector's usual poison paths are
// disabled: the rendezvous must be poisoned explicitly so every other
// member panics with the diagnostic instead of waiting forever.
func TestExchangeTransformPanicPoisonsRendezvous(t *testing.T) {
	cl := New(2, Perlmutter())
	comm := cl.World()
	panics := make(chan any, 2)
	done := make(chan struct{})
	go func() {
		_, _ = cl.Run(func(r *Rank) error {
			defer func() { panics <- recover() }()
			comm.exchangeTransform(r, "boom", slot{clock: r.clock},
				func([]slot) []slot { panic("transform exploded") })
			return nil
		})
		close(done)
	}()
	for i := 0; i < 2; i++ {
		select {
		case p := <-panics:
			if p == nil {
				t.Fatal("a member left the poisoned rendezvous without a diagnostic")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("a member hung after the transform panic")
		}
	}
	<-done
}
