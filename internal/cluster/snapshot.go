package cluster

// StreamSnapshot captures one execution timeline's clock and phase
// accumulators. PhaseTotal/PhaseComm/PhaseTouched are indexed by the
// acct's interned slot ids, in interning order (RankSnapshot.Phases
// records the names so a restore re-interns the same order).
type StreamSnapshot struct {
	Clock        float64
	PhaseTotal   []float64
	PhaseComm    []float64
	PhaseTouched []bool
}

// RankSnapshot captures a rank's complete accounting state at a
// quiescent point — no forked stream running, which epoch boundaries
// guarantee (the engine joins every stream before Execute returns).
// Restoring it into a fresh Run resumes the rank's timeline exactly:
// the main stream continues the same partial float sums in the same
// order, the already-finished forked streams are re-materialized as
// inert ghosts for the stats fold, and the integer traffic counters
// carry over — so a run restored at epoch e finishes with accounting
// bit-identical to one that was never interrupted.
type RankSnapshot struct {
	// Phases holds the interned phase names in slot order.
	Phases    []string
	BytesSent int64
	OpCount   map[string]int64
	OpBytes   map[string]int64
	LinkBytes map[string][3]int64
	// Main is the rank's own timeline; Streams are the forked streams
	// in creation order (the stats fold order).
	Main    StreamSnapshot
	Streams []StreamSnapshot
}

func snapStream(r *Rank) StreamSnapshot {
	return StreamSnapshot{
		Clock:        r.clock,
		PhaseTotal:   append([]float64(nil), r.phaseTotal...),
		PhaseComm:    append([]float64(nil), r.phaseComm...),
		PhaseTouched: append([]bool(nil), r.phaseTouched...),
	}
}

// Snapshot captures the rank's accounting. Call it only on the main
// timeline, at a point where no forked stream is running (an epoch
// boundary).
func (r *Rank) Snapshot() RankSnapshot {
	if r.stream != "" {
		panic("cluster: Snapshot must run on the rank's main timeline")
	}
	a := r.acct
	a.mu.Lock()
	defer a.mu.Unlock()
	snap := RankSnapshot{
		Phases:    append([]string(nil), a.phaseNames...),
		BytesSent: a.bytesSent,
		OpCount:   make(map[string]int64, len(a.opCount)),
		OpBytes:   make(map[string]int64, len(a.opBytes)),
		LinkBytes: make(map[string][3]int64, len(a.linkBytes)),
		Main:      snapStream(r),
	}
	for k, v := range a.opCount {
		snap.OpCount[k] = v
	}
	for k, v := range a.opBytes {
		snap.OpBytes[k] = v
	}
	for k, v := range a.linkBytes {
		snap.LinkBytes[k] = v
	}
	for _, s := range a.streams {
		snap.Streams = append(snap.Streams, snapStream(s))
	}
	return snap
}

// Restore seeds a freshly-created rank (a new Run, before any work)
// with a snapshot taken in an earlier run: phase names are re-interned
// in recorded order so slot ids match, the main timeline resumes at
// the snapshot clock with the same partial phase sums, and each
// pre-snapshot forked stream becomes an inert "ghost" entry in the
// stream list — it never runs again, but the stats fold sums its
// recorded accumulators at the same position in creation order, which
// keeps the folded totals bit-identical to an uninterrupted run's
// (float addition is order-sensitive). Streams forked after Restore
// append after the ghosts, exactly where the uninterrupted run's later
// streams would sit.
func (r *Rank) Restore(snap RankSnapshot) {
	if r.stream != "" {
		panic("cluster: Restore must run on the rank's main timeline")
	}
	for _, name := range snap.Phases {
		r.acct.slotFor(name)
	}
	a := r.acct
	a.mu.Lock()
	a.bytesSent = snap.BytesSent
	for k, v := range snap.OpCount {
		a.opCount[k] = v
	}
	for k, v := range snap.OpBytes {
		a.opBytes[k] = v
	}
	for k, v := range snap.LinkBytes {
		a.linkBytes[k] = v
	}
	for _, ss := range snap.Streams {
		a.streams = append(a.streams, &Rank{
			ID:           r.ID,
			N:            r.N,
			model:        r.model,
			clock:        ss.Clock,
			stream:       "(ghost)",
			acct:         a,
			phaseTotal:   append([]float64(nil), ss.PhaseTotal...),
			phaseComm:    append([]float64(nil), ss.PhaseComm...),
			phaseTouched: append([]bool(nil), ss.PhaseTouched...),
			cont:         r.cont,
			cl:           r.cl,
		})
	}
	a.mu.Unlock()
	r.clock = snap.Main.Clock
	r.phaseTotal = append(r.phaseTotal[:0], snap.Main.PhaseTotal...)
	r.phaseComm = append(r.phaseComm[:0], snap.Main.PhaseComm...)
	r.phaseTouched = append(r.phaseTouched[:0], snap.Main.PhaseTouched...)
	// The phase stack is untouched (still the fresh run's base level);
	// its slots were interned by the loop above if the names recur.
	r.rebuildPhaseSlots()
}
