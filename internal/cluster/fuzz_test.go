package cluster

import (
	"testing"
)

// Native Go fuzz targets for the CLI-facing parsers shared by the four
// binaries: arbitrary flag strings must parse or error, never panic,
// and anything accepted must validate.

func FuzzParseTopology(f *testing.F) {
	for _, s := range []string{"ideal", "none", "", "perlmutter", "oversub",
		"oversubscribed", " Perlmutter ", "fat-tree", "oversub:8", "4", "\x00"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		topo, err := ParseTopology(s)
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("ParseTopology(%q) accepted an invalid topology: %v", s, err)
		}
	})
}

func FuzzParseCollectives(f *testing.F) {
	seeds := []struct{ ar, aa string }{
		{"default", "default"}, {"flat", "pairwise"}, {"ring", "flat"},
		{"hier", "bruck"}, {"", ""}, {"RING", "Default"}, {"tree", "tree"},
		{"pairwise", "ring"}, {"x", "y"}, {"\xff", "flat"},
	}
	for _, s := range seeds {
		f.Add(s.ar, s.aa)
	}
	f.Fuzz(func(t *testing.T, allreduce, alltoall string) {
		tbl, err := ParseCollectives(allreduce, alltoall)
		if err != nil {
			return
		}
		if err := tbl.Validate(); err != nil {
			t.Fatalf("ParseCollectives(%q, %q) accepted an invalid table: %v", allreduce, alltoall, err)
		}
	})
}

func FuzzParseBackend(f *testing.F) {
	for _, s := range []string{"default", "", "goroutine", "goroutines", "go",
		"des", "DES", "event", "discrete-event", " Des ", "thread", "des2", "\x00"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		b, err := ParseBackend(s)
		if err != nil {
			return
		}
		// Accepted spellings round-trip through String (the CLIs stamp
		// b.String() into trace metadata and re-parse it).
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Fatalf("ParseBackend(%q).String() = %q does not round-trip: %v, %v", s, b.String(), got, err)
		}
	})
}
