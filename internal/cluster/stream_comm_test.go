package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestDupIdentity pins the clone-sharing contract: one clone per key,
// shared by all callers; the empty key is the base; Dup on a clone
// delegates to its base.
func TestDupIdentity(t *testing.T) {
	cl := New(2, testModel())
	world := cl.World()
	if world.Dup("") != world {
		t.Fatal("empty key must return the base communicator")
	}
	a, b := world.Dup("sampling"), world.Dup("sampling")
	if a == world {
		t.Fatal("clone must be distinct from the base")
	}
	if a != b {
		t.Fatal("same key must return the same clone")
	}
	if a.Dup("sampling") != a {
		t.Fatal("Dup on a clone must delegate to the base (same key, same clone)")
	}
	if a.Dup("") != world {
		t.Fatal("Dup(\"\") on a clone must return the base")
	}
	if c := world.Dup("fetch"); c == a {
		t.Fatal("different keys must get different clones")
	}
	if got, want := a.Size(), world.Size(); got != want {
		t.Fatalf("clone size %d, want %d", got, want)
	}
}

// TestStreamClonesIsolateCollectives drives one communicator's base
// from every rank's main timeline and a clone from a forked stream of
// every rank, concurrently, with different collective sequences. The
// clones' private rendezvous keep the sequences from interleaving, and
// both deliver correct values.
func TestStreamClonesIsolateCollectives(t *testing.T) {
	run := func() ([]float64, []float64, float64) {
		cl := New(4, testModel())
		world := cl.World()
		var mainOut, streamOut []float64
		var mu sync.Mutex
		res, err := cl.Run(func(r *Rank) error {
			var wg sync.WaitGroup
			wg.Add(1)
			s := r.Stream("prefetch")
			go func() {
				defer wg.Done()
				// The stream's sequence: barrier, then all-reduce.
				sc := world.ForStream(s)
				Barrier(sc, s)
				got := AllReduceSum(sc, s, []float64{float64(10 * s.ID)})
				if s.ID == 0 {
					mu.Lock()
					streamOut = got
					mu.Unlock()
				}
			}()
			// The main sequence: two all-reduces, no barrier.
			got := AllReduceSum(world.ForStream(r), r, []float64{float64(r.ID)})
			got2 := AllReduceSum(world, r, got)
			if r.ID == 0 {
				mu.Lock()
				mainOut = got2
				mu.Unlock()
			}
			wg.Wait()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return mainOut, streamOut, res.SimTime
	}
	mainOut, streamOut, simA := run()
	if len(mainOut) != 1 || mainOut[0] != 24 { // sum(0..3) reduced twice: 6*4
		t.Fatalf("main collective corrupted: %v", mainOut)
	}
	if len(streamOut) != 1 || streamOut[0] != 60 { // 10*(0+1+2+3)
		t.Fatalf("stream collective corrupted: %v", streamOut)
	}
	_, _, simB := run()
	if simA != simB {
		t.Fatalf("stream collectives nondeterministic: %v vs %v", simA, simB)
	}
}

// TestMismatchedCollectivesPanic: two members calling different
// collectives on the same communicator is a deadlock in real MPI; the
// rendezvous must detect it and panic every participant with a
// diagnostic rather than hang.
func TestMismatchedCollectivesPanic(t *testing.T) {
	cl := New(2, testModel())
	world := cl.World()
	var mu sync.Mutex
	var msgs []string
	_, err := cl.Run(func(r *Rank) (err error) {
		defer func() {
			if p := recover(); p != nil {
				mu.Lock()
				msgs = append(msgs, fmt.Sprint(p))
				mu.Unlock()
			}
		}()
		if r.ID == 0 {
			Barrier(world, r)
		} else {
			AllReduceSum(world, r, []float64{1})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("want both ranks to panic, got %d panics: %v", len(msgs), msgs)
	}
	for _, m := range msgs {
		if !strings.Contains(m, "mismatched collectives") {
			t.Fatalf("panic lacks diagnosis: %q", m)
		}
	}
}

// TestAbandonedCollectivePanics: a rank body returning while a peer
// waits in a collective can never satisfy it; the detector must poison
// the rendezvous instead of hanging the run.
func TestAbandonedCollectivePanics(t *testing.T) {
	cl := New(2, testModel())
	world := cl.World()
	var msg string
	_, err := cl.Run(func(r *Rank) (err error) {
		if r.ID == 0 {
			return nil // leaves without joining the barrier
		}
		defer func() {
			if p := recover(); p != nil {
				msg = fmt.Sprint(p)
			}
		}()
		Barrier(world, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "rank 0") {
		t.Fatalf("deadlock not diagnosed: %q", msg)
	}
}

// TestDriverBindingsResetAcrossRuns: stream bindings are per-Run
// state — a second Run on the same cluster may legitimately drive a
// communicator from a differently-named stream than the first without
// tripping the two-streams check.
func TestDriverBindingsResetAcrossRuns(t *testing.T) {
	// Pinned to the goroutine backend: the rank body drives a collective
	// from a raw goroutine and blocks on a raw channel, which a
	// cooperative DES task must never do (it would hold the run token and
	// starve the scheduler). ForkStream is the backend-neutral way to get
	// concurrency inside a rank body; this test deliberately bypasses it
	// to probe the per-Run driver-binding reset.
	model := testModel()
	model.Backend = GoroutineBackend
	cl := New(2, model)
	world := cl.World()
	// First run: base comm driven from the main timeline.
	if _, err := cl.Run(func(r *Rank) error {
		Barrier(world, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Second run: the same comm driven only from a forked stream.
	if _, err := cl.Run(func(r *Rank) error {
		s := r.Stream("prefetch")
		done := make(chan any, 1)
		go func() {
			defer func() { done <- recover() }()
			Barrier(world, s)
		}()
		if p := <-done; p != nil {
			t.Errorf("cross-run driver binding leaked: %v", p)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTwoStreamsOneCommPanics: the invariant that a communicator is
// driven by at most one stream of each member rank is enforced, with a
// panic pointing at ForStream/Dup.
func TestTwoStreamsOneCommPanics(t *testing.T) {
	cl := New(1, testModel())
	world := cl.World()
	msg := make(chan string, 1)
	_, err := cl.Run(func(r *Rank) error {
		Barrier(world, r) // binds the base comm to the main timeline
		s := r.Stream("prefetch")
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer func() {
				if p := recover(); p != nil {
					msg <- fmt.Sprint(p)
				}
			}()
			Barrier(world, s) // same comm from a second stream
		}()
		<-done
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-msg:
		if !strings.Contains(m, "two streams") || !strings.Contains(m, "ForStream") {
			t.Fatalf("driver violation not diagnosed: %q", m)
		}
	default:
		t.Fatal("driving one comm from two streams did not panic")
	}
}
