package cluster

import (
	"fmt"
	"os"
	"strings"
)

// Backend selects the execution machinery a simulated run blocks and
// synchronizes on. Both backends execute the same rank bodies and
// charge the same cost model, so results — trained parameters, losses,
// simulated seconds, link traffic — are bit-identical between them
// (pinned by the golden tests and the goroutine-vs-DES differential
// suite); only the wall-clock cost of running the simulator differs.
type Backend int

const (
	// DefaultBackend is the zero value: "unset". Cluster construction
	// resolves it through the GNN_BACKEND environment variable and
	// falls back to GoroutineBackend, mirroring the DefaultAlgorithm
	// convention (an explicit selection always wins over the
	// environment).
	DefaultBackend Backend = iota
	// GoroutineBackend runs one goroutine per rank; synchronization
	// points block on mutex/cond rendezvous. The original execution
	// model, kept as the differential-testing oracle.
	GoroutineBackend
	// DESBackend runs the whole cluster as one discrete-event loop
	// (internal/cluster/sim): a single-threaded cooperative scheduler
	// with a priority event queue keyed by (time, rank, seq). Ranks
	// become tasks that park at synchronization points instead of
	// blocking OS threads, which removes the scheduler-churn wall at
	// large p and makes event order — and therefore contention-model
	// timings — deterministic.
	DESBackend
)

// BackendEnv is the environment variable consulted when a cost model
// leaves Backend unset.
const BackendEnv = "GNN_BACKEND"

// BackendFlagUsage is the flag help shared by the CLIs (cmd/trainer,
// cmd/gnnbench, cmd/compare) so the binaries' flag sets stay in
// lockstep.
const BackendFlagUsage = "simulator backend: default, goroutine or des (default resolves $GNN_BACKEND, then goroutine)"

// String returns the flag spelling of the backend.
func (b Backend) String() string {
	switch b {
	case DefaultBackend:
		return "default"
	case GoroutineBackend:
		return "goroutine"
	case DESBackend:
		return "des"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseBackend parses a flag spelling ("default", "goroutine",
// "des"/"event"/"discrete-event"). The empty string is DefaultBackend.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "default":
		return DefaultBackend, nil
	case "goroutine", "goroutines", "go":
		return GoroutineBackend, nil
	case "des", "event", "discrete-event":
		return DESBackend, nil
	}
	return 0, fmt.Errorf("cluster: unknown backend %q (want default, goroutine or des)", s)
}

// Resolve returns the concrete backend this selection executes as:
// explicit > $GNN_BACKEND > goroutine. Exported for harness layers
// that need the execution mode before any cluster exists — the sweep
// worker pool keeps goroutine-backend cells with a contended topology
// off the pool, because the contention ledger commits in real lock
// order and concurrent sibling cells would perturb it (the DES
// backend's single event loop per cluster is immune).
func (b Backend) Resolve() Backend { return resolveBackend(b) }

// resolveBackend turns an unset selection into a concrete backend:
// explicit > $GNN_BACKEND > goroutine. An unparsable environment value
// is ignored rather than fatal — the environment is a convenience
// default, not a validated input path (the CLIs validate -backend).
func resolveBackend(b Backend) Backend {
	if b != DefaultBackend {
		return b
	}
	if env, err := ParseBackend(os.Getenv(BackendEnv)); err == nil && env != DefaultBackend {
		return env
	}
	return GoroutineBackend
}
