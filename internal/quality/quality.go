// Package quality measures the statistical quality of sampling
// algorithms: how well sampled neighborhood aggregation approximates
// exact aggregation. This quantifies the accuracy trade-offs behind
// the paper's sampler taxonomy discussion (Section 2.2: FastGCN's
// off-neighborhood samples "affect accuracy when training"; LADIES
// restricts support to fix that).
package quality

import (
	"math"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// AggregationError reports how far sampled mean-aggregation deviates
// from exact mean-aggregation for a set of seed vertices.
type AggregationError struct {
	Sampler string
	// MSE is the mean squared error between sampled and exact
	// aggregated features, averaged over seeds, features and
	// repetitions.
	MSE float64
	// Bias is the squared norm of the mean deviation (estimator bias
	// component of the MSE).
	Bias float64
	// Reps is the number of sampling repetitions measured.
	Reps int
}

// exactAggregation computes the exact mean-aggregated neighbor
// features of each seed.
func exactAggregation(adj *sparse.CSR, feats *dense.Matrix, seeds []int) *dense.Matrix {
	out := dense.New(len(seeds), feats.Cols)
	for i, v := range seeds {
		cols, _ := adj.Row(v)
		if len(cols) == 0 {
			continue
		}
		dst := out.RowView(i)
		for _, u := range cols {
			src := feats.RowView(u)
			for j := range dst {
				dst[j] += src[j]
			}
		}
		inv := 1 / float64(len(cols))
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

// sampledAggregation computes one repetition of sampled mean
// aggregation: each seed averages the features of its sampled
// neighbors from a one-layer bulk sample.
func sampledAggregation(s core.Sampler, adj *sparse.CSR, feats *dense.Matrix, seeds []int, fanout int, seed int64) *dense.Matrix {
	bulk := core.SampleBulk(s, adj, [][]int{seeds}, []int{fanout}, seed)
	bg := bulk.ExtractBatch(0)
	layer := bg.Adjs[0]
	out := dense.New(len(seeds), feats.Cols)
	for i := 0; i < layer.Rows; i++ {
		cols, _ := layer.Row(i)
		if len(cols) == 0 {
			continue
		}
		dst := out.RowView(i)
		for _, c := range cols {
			src := feats.RowView(bg.Frontiers[1][c])
			for j := range dst {
				dst[j] += src[j]
			}
		}
		inv := 1 / float64(len(cols))
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

// MeasureAggregationError estimates the MSE and bias of a sampler's
// one-layer aggregation against the exact aggregation, over reps
// repetitions with distinct seeds.
func MeasureAggregationError(s core.Sampler, adj *sparse.CSR, feats *dense.Matrix, seeds []int, fanout, reps int, baseSeed int64) AggregationError {
	exact := exactAggregation(adj, feats, seeds)
	n := len(seeds) * feats.Cols

	sumSq := 0.0
	meanDev := make([]float64, n)
	for rep := 0; rep < reps; rep++ {
		approx := sampledAggregation(s, adj, feats, seeds, fanout, baseSeed+int64(rep)*104729)
		for i := range approx.Data {
			d := approx.Data[i] - exact.Data[i]
			sumSq += d * d
			meanDev[i] += d
		}
	}
	biasSq := 0.0
	for _, d := range meanDev {
		avg := d / float64(reps)
		biasSq += avg * avg
	}
	return AggregationError{
		Sampler: s.Name(),
		MSE:     sumSq / float64(n*reps),
		Bias:    biasSq / float64(n),
		Reps:    reps,
	}
}

// FrontierBudget reports the average number of distinct vertices a
// sampler touches per batch at the given fanout — the memory/work
// budget its estimator quality is bought with.
func FrontierBudget(s core.Sampler, adj *sparse.CSR, seeds []int, fanout int, seed int64) float64 {
	bulk := core.SampleBulk(s, adj, [][]int{seeds}, []int{fanout}, seed)
	distinct := map[int]struct{}{}
	for _, v := range bulk.Layers[0].Cols.Vertices {
		distinct[v] = struct{}{}
	}
	return float64(len(distinct))
}

// RelativeStd returns sqrt(MSE) normalized by the exact aggregation's
// RMS magnitude — a scale-free error measure for comparisons across
// feature distributions.
func RelativeStd(e AggregationError, adj *sparse.CSR, feats *dense.Matrix, seeds []int) float64 {
	exact := exactAggregation(adj, feats, seeds)
	rms := 0.0
	for _, v := range exact.Data {
		rms += v * v
	}
	rms = math.Sqrt(rms / float64(len(exact.Data)))
	if rms == 0 {
		return 0
	}
	return math.Sqrt(e.MSE) / rms
}
