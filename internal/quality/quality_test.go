package quality

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/graph"
)

func scenario(seed int64) (adj *graph.Graph, feats *dense.Matrix, seeds []int) {
	g := graph.EnsureMinOutDegree(graph.ErdosRenyi(300, 12, seed), 4, seed+1)
	rng := rand.New(rand.NewSource(seed + 2))
	f := dense.New(300, 8)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	seeds = make([]int, 32)
	for i := range seeds {
		seeds[i] = rng.Intn(300)
	}
	return g, f, seeds
}

func TestExactAggregationKnownValue(t *testing.T) {
	g, f, _ := scenario(1)
	out := exactAggregation(g.Adj, f, []int{5})
	cols, _ := g.Adj.Row(5)
	want := make([]float64, f.Cols)
	for _, u := range cols {
		for j, v := range f.RowView(u) {
			want[j] += v
		}
	}
	for j := range want {
		want[j] /= float64(len(cols))
		if diff := out.At(0, j) - want[j]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("exact aggregation wrong at %d", j)
		}
	}
}

func TestSamplingErrorDecreasesWithFanout(t *testing.T) {
	g, f, seeds := scenario(2)
	small := MeasureAggregationError(core.SAGE{}, g.Adj, f, seeds, 2, 20, 7)
	large := MeasureAggregationError(core.SAGE{}, g.Adj, f, seeds, 10, 20, 7)
	if large.MSE >= small.MSE {
		t.Fatalf("fanout 10 MSE %.5f not below fanout 2 MSE %.5f", large.MSE, small.MSE)
	}
}

func TestFullFanoutIsExact(t *testing.T) {
	g, f, seeds := scenario(3)
	// Fanout >= max degree takes every neighbor: zero error.
	e := MeasureAggregationError(core.SAGE{}, g.Adj, f, seeds, 1000, 3, 9)
	if e.MSE > 1e-20 {
		t.Fatalf("full fanout MSE %.3g, want 0", e.MSE)
	}
}

func TestSAGEUnbiasedUniformSampling(t *testing.T) {
	// Uniform without-replacement neighbor sampling is an unbiased
	// estimator of the neighborhood mean: bias must shrink well below
	// the MSE with enough repetitions.
	g, f, seeds := scenario(4)
	e := MeasureAggregationError(core.SAGE{}, g.Adj, f, seeds, 3, 200, 11)
	if e.Bias > e.MSE/5 {
		t.Fatalf("bias %.5g too large relative to MSE %.5g", e.Bias, e.MSE)
	}
}

func TestFrontierBudget(t *testing.T) {
	g, _, seeds := scenario(5)
	b1 := FrontierBudget(core.SAGE{}, g.Adj, seeds, 2, 13)
	b2 := FrontierBudget(core.SAGE{}, g.Adj, seeds, 8, 13)
	if b2 <= b1 {
		t.Fatalf("larger fanout should touch more vertices: %v vs %v", b2, b1)
	}
	lad := FrontierBudget(core.LADIES{}, g.Adj, seeds, 8, 13)
	if lad > b2 {
		t.Fatalf("LADIES budget %v should not exceed SAGE %v at equal s", lad, b2)
	}
}

func TestRelativeStdScaleFree(t *testing.T) {
	g, f, seeds := scenario(6)
	e := MeasureAggregationError(core.SAGE{}, g.Adj, f, seeds, 3, 20, 17)
	r1 := RelativeStd(e, g.Adj, f, seeds)

	// Scaling features by 10 scales MSE by 100 but leaves the relative
	// error unchanged.
	f10 := f.Clone()
	f10.Scale(10)
	e10 := MeasureAggregationError(core.SAGE{}, g.Adj, f10, seeds, 3, 20, 17)
	r10 := RelativeStd(e10, g.Adj, f10, seeds)
	if diff := r1 - r10; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("relative std not scale-free: %v vs %v", r1, r10)
	}
}
