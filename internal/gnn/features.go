package gnn

import "repro/internal/dense"

// GatherFeatures copies the feature rows of the given global vertices
// into a new matrix, in order. This is the local equivalent of the
// pipeline's feature-fetching step; the distributed version assembles
// the same matrix from all-to-allv responses.
func GatherFeatures(feats *dense.Matrix, vertices []int) *dense.Matrix {
	out := dense.New(len(vertices), feats.Cols)
	for i, v := range vertices {
		copy(out.RowView(i), feats.RowView(v))
	}
	return out
}
