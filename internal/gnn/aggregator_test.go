package gnn

import (
	"math"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

func TestAggregatorStrings(t *testing.T) {
	if MeanAgg.String() != "mean" || GCNAgg.String() != "gcn" || SumAgg.String() != "sum" {
		t.Fatal("aggregator strings wrong")
	}
}

func TestNormalizeAdjMean(t *testing.T) {
	adj := sparse.FromEntries(2, 3, [][3]float64{{0, 0, 1}, {0, 2, 1}, {1, 1, 1}})
	norm := normalizeAdj(adj, MeanAgg)
	if norm.At(0, 0) != 0.5 || norm.At(0, 2) != 0.5 || norm.At(1, 1) != 1 {
		t.Fatalf("mean normalization wrong: %v", norm.ToDense())
	}
	// Original must be untouched.
	if adj.At(0, 0) != 1 {
		t.Fatal("normalizeAdj mutated input")
	}
}

func TestNormalizeAdjSum(t *testing.T) {
	adj := sparse.FromEntries(1, 2, [][3]float64{{0, 0, 1}, {0, 1, 1}})
	norm := normalizeAdj(adj, SumAgg)
	if norm.At(0, 0) != 1 || norm.At(0, 1) != 1 {
		t.Fatal("sum aggregation must not scale")
	}
}

func TestNormalizeAdjGCNSymmetric(t *testing.T) {
	// Entry (i,j) must equal 1/sqrt((1+rowdeg_i)(1+coldeg_j)).
	adj := sparse.FromEntries(2, 2, [][3]float64{{0, 0, 1}, {0, 1, 1}, {1, 1, 1}})
	norm := normalizeAdj(adj, GCNAgg)
	want00 := 1 / math.Sqrt(3*2) // rowdeg 2, coldeg 1
	want01 := 1 / math.Sqrt(3*3) // rowdeg 2, coldeg 2
	want11 := 1 / math.Sqrt(2*3)
	if math.Abs(norm.At(0, 0)-want00) > 1e-12 ||
		math.Abs(norm.At(0, 1)-want01) > 1e-12 ||
		math.Abs(norm.At(1, 1)-want11) > 1e-12 {
		t.Fatalf("GCN normalization wrong: %v", norm.ToDense())
	}
}

func TestBackwardWithGCNAggregator(t *testing.T) {
	// The gradient check must hold for the GCN aggregation too.
	bg, _ := sampleBatch(t, 50, []int{1, 2}, []int{3, 2}, 21)
	m := NewModel(Config{In: 4, Hidden: 5, Classes: 3, Layers: 2, Agg: GCNAgg, Seed: 8})
	feats := make([]float64, len(bg.InputVertices())*4)
	for i := range feats {
		feats[i] = math.Cos(float64(i))
	}
	fm := dense.FromSlice(len(bg.InputVertices()), 4, feats)
	labels := []int{1, 2}

	act, _ := m.Forward(bg, fm)
	_, dLogits := Loss(act, labels)
	grads, _ := m.Backward(act, dLogits)

	params := m.Params()
	const eps = 1e-6
	for idx := 0; idx < len(params); idx += 11 {
		orig := params[idx]
		params[idx] = orig + eps
		a1, _ := m.Forward(bg, fm)
		lp, _ := Loss(a1, labels)
		params[idx] = orig - eps
		a2, _ := m.Forward(bg, fm)
		lm, _ := Loss(a2, labels)
		params[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grads[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("GCN agg param %d: analytic %v vs numeric %v", idx, grads[idx], num)
		}
	}
}

func TestSumAggregatorTrains(t *testing.T) {
	bg, _ := sampleBatch(t, 40, []int{1, 2, 3}, []int{3}, 22)
	m := NewModel(Config{In: 4, Hidden: 6, Classes: 2, Layers: 1, Agg: SumAgg, Seed: 9})
	feats := dense.FromSlice(len(bg.InputVertices()), 4, make([]float64, len(bg.InputVertices())*4))
	for i := range feats.Data {
		feats.Data[i] = float64(i%5) * 0.1
	}
	act, flops := m.Forward(bg, feats)
	if flops <= 0 || act.Logits.Rows != 3 {
		t.Fatal("sum aggregator forward broken")
	}
}

func TestDropoutGradientCheck(t *testing.T) {
	// With a fixed dropout seed, masks are deterministic, so the
	// analytic gradient must still match the numeric one.
	bg, _ := sampleBatch(t, 50, []int{1, 2}, []int{3, 2}, 31)
	m := NewModel(Config{In: 4, Hidden: 5, Classes: 3, Layers: 2, Seed: 10})
	m.SetDropout(0.3, 77)
	feats := dense.New(len(bg.InputVertices()), 4)
	for i := range feats.Data {
		feats.Data[i] = math.Sin(float64(i) * 0.7)
	}
	labels := []int{0, 1}

	act, _ := m.Forward(bg, feats)
	_, dLogits := Loss(act, labels)
	grads, _ := m.Backward(act, dLogits)

	params := m.Params()
	const eps = 1e-6
	for idx := 0; idx < len(params); idx += 13 {
		orig := params[idx]
		params[idx] = orig + eps
		a1, _ := m.Forward(bg, feats)
		lp, _ := Loss(a1, labels)
		params[idx] = orig - eps
		a2, _ := m.Forward(bg, feats)
		lm, _ := Loss(a2, labels)
		params[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grads[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("dropout param %d: analytic %v vs numeric %v", idx, grads[idx], num)
		}
	}
}

func TestDropoutZerosFraction(t *testing.T) {
	mask := dropoutMask(100, 100, 0.4, 5, 0)
	zeros := 0
	for _, v := range mask.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-1/0.6) > 1e-12 {
			t.Fatalf("non-inverted mask value %v", v)
		}
	}
	frac := float64(zeros) / 10000
	if frac < 0.35 || frac > 0.45 {
		t.Fatalf("dropout fraction %.3f, want ~0.4", frac)
	}
}

func TestDropoutSeedAdvances(t *testing.T) {
	a := dropoutMask(10, 10, 0.5, 1, 0)
	b := dropoutMask(10, 10, 0.5, 2, 0)
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical masks")
	}
	m := NewModel(Config{In: 2, Hidden: 2, Classes: 2, Layers: 1, Seed: 1})
	m.SetDropout(0.5, 1)
	m.NextDropoutSeed()
	if m.dropSeed != 2 {
		t.Fatal("NextDropoutSeed did not advance")
	}
}

func TestDropoutBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate 1")
		}
	}()
	NewModel(Config{In: 2, Hidden: 2, Classes: 2, Layers: 1, Seed: 1}).SetDropout(1.0, 0)
}
