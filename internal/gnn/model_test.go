package gnn

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/graph"
)

func sampleBatch(t *testing.T, n int, seeds []int, fanouts []int, seed int64) (*core.BatchGraph, *graph.Graph) {
	t.Helper()
	g := graph.EnsureMinOutDegree(graph.ErdosRenyi(n, 8, seed), 4, seed+1)
	bulk := core.SampleBulk(core.SAGE{}, g.Adj, [][]int{seeds}, fanouts, seed+2)
	if err := bulk.Validate(n); err != nil {
		t.Fatal(err)
	}
	return bulk.ExtractBatch(0), g
}

func TestExtractBatchLocalColumns(t *testing.T) {
	g := graph.EnsureMinOutDegree(graph.ErdosRenyi(60, 8, 1), 4, 2)
	bulk := core.SampleBulk(core.SAGE{}, g.Adj, [][]int{{0, 1}, {2, 3}}, []int{3, 2}, 5)
	for b := 0; b < 2; b++ {
		bg := bulk.ExtractBatch(b)
		if len(bg.Seeds) != 2 || bg.Depth() != 2 {
			t.Fatalf("batch %d shape wrong", b)
		}
		for l, adj := range bg.Adjs {
			if err := adj.Validate(); err != nil {
				t.Fatalf("batch %d layer %d: %v", b, l, err)
			}
			if adj.Rows != len(bg.Frontiers[l]) || adj.Cols != len(bg.Frontiers[l+1]) {
				t.Fatalf("batch %d layer %d: adj %dx%d vs frontiers %d/%d",
					b, l, adj.Rows, adj.Cols, len(bg.Frontiers[l]), len(bg.Frontiers[l+1]))
			}
			// Sampled edges must exist in the graph under the local
			// to global mapping.
			for i := 0; i < adj.Rows; i++ {
				cols, _ := adj.Row(i)
				u := bg.Frontiers[l][i]
				for _, c := range cols {
					v := bg.Frontiers[l+1][c]
					if g.Adj.At(u, v) == 0 {
						t.Fatalf("batch %d layer %d: edge (%d,%d) not in graph", b, l, u, v)
					}
				}
			}
		}
	}
}

func TestForwardShapes(t *testing.T) {
	bg, _ := sampleBatch(t, 80, []int{1, 2, 3}, []int{4, 3}, 7)
	m := NewModel(Config{In: 6, Hidden: 8, Classes: 5, Layers: 2, Seed: 1})
	feats := dense.New(len(bg.InputVertices()), 6)
	for i := range feats.Data {
		feats.Data[i] = float64(i%7) * 0.1
	}
	act, flops := m.Forward(bg, feats)
	if act.Logits.Rows != 3 || act.Logits.Cols != 5 {
		t.Fatalf("logits %dx%d, want 3x5", act.Logits.Rows, act.Logits.Cols)
	}
	if flops <= 0 {
		t.Fatal("forward flops not counted")
	}
}

func TestBackwardMatchesNumericalGradient(t *testing.T) {
	bg, _ := sampleBatch(t, 50, []int{1, 2}, []int{3, 2}, 11)
	m := NewModel(Config{In: 4, Hidden: 5, Classes: 3, Layers: 2, Seed: 2})
	feats := dense.New(len(bg.InputVertices()), 4)
	for i := range feats.Data {
		feats.Data[i] = math.Sin(float64(i))
	}
	labels := []int{0, 2}

	lossAt := func() float64 {
		act, _ := m.Forward(bg, feats)
		l, _ := Loss(act, labels)
		return l
	}
	act, _ := m.Forward(bg, feats)
	_, dLogits := Loss(act, labels)
	grads, _ := m.Backward(act, dLogits)

	params := m.Params()
	const eps = 1e-6
	// Check a spread of parameters incl. first, last, and every 7th.
	for idx := 0; idx < len(params); idx += 7 {
		orig := params[idx]
		params[idx] = orig + eps
		lp := lossAt()
		params[idx] = orig - eps
		lm := lossAt()
		params[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grads[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("param %d: analytic %v vs numeric %v", idx, grads[idx], num)
		}
	}
}

func TestParamsRoundTrip(t *testing.T) {
	m := NewModel(Config{In: 3, Hidden: 4, Classes: 2, Layers: 1, Seed: 3})
	p := append([]float64(nil), m.Params()...)
	for i := range p {
		p[i] = float64(i)
	}
	m.SetParams(p)
	if m.Params()[5] != 5 {
		t.Fatal("SetParams did not apply")
	}
	if m.layers[0].WSelf.Data[0] != 0 || m.wOut.Data[0] == 0 {
		// views must alias the flat buffer
		t.Log("views:", m.layers[0].WSelf.Data[0], m.wOut.Data[0])
	}
}

func TestNumParamsMatchesLayout(t *testing.T) {
	cfg := Config{In: 10, Hidden: 16, Classes: 7, Layers: 3, Seed: 4}
	m := NewModel(cfg)
	want := (10*16+16*16+16*16)*2 + 16*7 + 7
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
}

func TestTrainingReducesLossOnSBM(t *testing.T) {
	d := datasets.SBM(datasets.SBMConfig{
		N: 600, Classes: 4, Features: 8,
		IntraDeg: 10, InterDeg: 2, Noise: 0.4,
		BatchSize: 32, Fanouts: []int{5, 3}, LayerWidth: 32, Seed: 5,
	})
	m := NewModel(Config{In: 8, Hidden: 16, Classes: 4, Layers: 2, Seed: 6})
	opt := dense.NewAdam(0.01)
	batches := d.Batches()

	var first, last float64
	for epoch := 0; epoch < 5; epoch++ {
		bulk := core.SampleBulk(core.SAGE{}, d.Graph.Adj, batches, d.Fanouts, int64(100+epoch))
		total := 0.0
		for i := range batches {
			bg := bulk.ExtractBatch(i)
			feats := GatherFeatures(d.Features, bg.InputVertices())
			act, _ := m.Forward(bg, feats)
			labels := make([]int, len(bg.Seeds))
			for j, v := range bg.Seeds {
				labels[j] = d.Labels[v]
			}
			loss, dLogits := Loss(act, labels)
			grads, _ := m.Backward(act, dLogits)
			opt.Step(m.Params(), grads)
			total += loss
		}
		avg := total / float64(len(batches))
		if epoch == 0 {
			first = avg
		}
		last = avg
	}
	if last >= first*0.8 {
		t.Fatalf("loss did not drop: first %.4f last %.4f", first, last)
	}
}

func TestGatherFeatures(t *testing.T) {
	f := dense.FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	g := GatherFeatures(f, []int{2, 0, 2})
	want := []float64{5, 6, 1, 2, 5, 6}
	for i := range want {
		if g.Data[i] != want[i] {
			t.Fatalf("gather = %v, want %v", g.Data, want)
		}
	}
}
