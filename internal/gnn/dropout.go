package gnn

import (
	"repro/internal/dense"
)

// dropoutMask builds an inverted-dropout mask (entries are 0 with
// probability rate, else 1/(1-rate)) deterministically from a seed and
// layer index, so forward and backward — and repeated forwards in
// numerical gradient checks — see identical masks.
func dropoutMask(rows, cols int, rate float64, seed int64, layer int) *dense.Matrix {
	m := dense.New(rows, cols)
	keep := 1 - rate
	inv := 1 / keep
	// splitmix64 stream per (seed, layer).
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(layer+1)*0xBF58476D1CE4E5B9
	next := func() uint64 {
		z += 0x9E3779B97F4A7C15
		x := z
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		return x ^ (x >> 31)
	}
	for i := range m.Data {
		u := float64(next()>>11) / float64(1<<53)
		if u < keep {
			m.Data[i] = inv
		}
	}
	return m
}

// applyMask multiplies x by mask elementwise, returning a new matrix.
func applyMask(x, mask *dense.Matrix) *dense.Matrix {
	out := x.Clone()
	for i := range out.Data {
		out.Data[i] *= mask.Data[i]
	}
	return out
}

// SetDropout enables inverted dropout on hidden activations at the
// given rate; seed fixes the mask stream (advance it per training step
// with NextDropoutSeed). A rate of 0 disables dropout (evaluation
// mode).
func (m *Model) SetDropout(rate float64, seed int64) {
	if rate < 0 || rate >= 1 {
		panic("gnn: dropout rate must be in [0, 1)")
	}
	m.dropRate = rate
	m.dropSeed = seed
}

// NextDropoutSeed advances the mask stream — call once per training
// step so successive minibatches see fresh masks.
func (m *Model) NextDropoutSeed() { m.dropSeed++ }

// DropoutSeed returns the current mask-stream position. Together with
// SetDropoutSeed it lets a checkpoint capture and restore the RNG
// stream state, so a restored run draws exactly the masks an
// uninterrupted run would have drawn.
func (m *Model) DropoutSeed() int64 { return m.dropSeed }

// SetDropoutSeed rewinds or fast-forwards the mask stream to an
// absolute position (a value previously read via DropoutSeed).
func (m *Model) SetDropoutSeed(seed int64) { m.dropSeed = seed }
