// Package gnn implements the GraphSAGE model trained in the paper's
// end-to-end pipeline: L mean-aggregator SAGE convolutions over the
// sampled computation graph followed by a linear classifier, with
// explicit (dependency-free) backpropagation. Parameters live in one
// flat vector so data-parallel gradient all-reduce and optimizer steps
// operate on contiguous memory.
package gnn

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// Config describes a SAGE network.
type Config struct {
	In      int // input feature width
	Hidden  int // hidden width (Table 4 uses 256; scaled presets use less)
	Classes int
	Layers  int // number of SAGE convolutions (Table 4: 3 for SAGE, 1 for LADIES)
	// Agg selects the neighbor aggregation (default MeanAgg, the
	// GraphSAGE mean aggregator the paper trains with).
	Agg  Aggregator
	Seed int64
}

// layerView holds parameter matrix views into the flat buffer for one
// SAGE convolution: out = ReLU(H_self·WSelf + mean(H_neigh)·WNeigh).
type layerView struct {
	WSelf, WNeigh *dense.Matrix
}

// Model is a GraphSAGE network with a linear classification head.
type Model struct {
	Cfg    Config
	flat   []float64
	layers []layerView
	wOut   *dense.Matrix
	bOut   []float64

	// dropout state (see SetDropout); zero rate = disabled.
	dropRate float64
	dropSeed int64
}

// NewModel allocates and Xavier-initializes a model.
func NewModel(cfg Config) *Model {
	if cfg.Layers < 1 {
		panic("gnn: need at least one layer")
	}
	total := 0
	dims := layerDims(cfg)
	for _, d := range dims {
		total += 2 * d[0] * d[1]
	}
	total += cfg.Hidden*cfg.Classes + cfg.Classes
	m := &Model{Cfg: cfg, flat: make([]float64, total)}
	off := 0
	view := func(r, c int) *dense.Matrix {
		v := dense.FromSlice(r, c, m.flat[off:off+r*c])
		off += r * c
		return v
	}
	for _, d := range dims {
		m.layers = append(m.layers, layerView{WSelf: view(d[0], d[1]), WNeigh: view(d[0], d[1])})
	}
	m.wOut = view(cfg.Hidden, cfg.Classes)
	m.bOut = m.flat[off : off+cfg.Classes]

	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, l := range m.layers {
		dense.XavierInit(l.WSelf, rng)
		dense.XavierInit(l.WNeigh, rng)
	}
	dense.XavierInit(m.wOut, rng)
	return m
}

// layerDims returns (in, out) for each convolution in application
// order: the first conv consumes raw features.
func layerDims(cfg Config) [][2]int {
	dims := make([][2]int, cfg.Layers)
	for i := range dims {
		in := cfg.Hidden
		if i == 0 {
			in = cfg.In
		}
		dims[i] = [2]int{in, cfg.Hidden}
	}
	return dims
}

// Params returns the flat parameter vector (shared storage — the
// optimizer mutates the model through it).
func (m *Model) Params() []float64 { return m.flat }

// NumParams returns the parameter count.
func (m *Model) NumParams() int { return len(m.flat) }

// SetParams copies the given flat vector into the model.
func (m *Model) SetParams(p []float64) {
	if len(p) != len(m.flat) {
		panic(fmt.Sprintf("gnn: SetParams got %d values, want %d", len(p), len(m.flat)))
	}
	copy(m.flat, p)
}

// Activations caches everything forward computes that backward needs.
type Activations struct {
	bg     *core.BatchGraph
	h      []*dense.Matrix // h[t]: input to conv t (t=0 raw features)
	z      []*dense.Matrix // pre-activation of conv t
	norm   []*sparse.CSR   // row-normalized adjacency used by conv t
	masks  []*dense.Matrix // dropout masks per conv (nil when disabled)
	Logits *dense.Matrix
}

// Forward runs the network over one minibatch. feats holds the feature
// rows of bg's input frontier (one row per InputVertices() entry).
// The returned flop count covers every dense and sparse kernel.
func (m *Model) Forward(bg *core.BatchGraph, feats *dense.Matrix) (*Activations, int64) {
	if bg.Depth() != m.Cfg.Layers {
		panic(fmt.Sprintf("gnn: batch has %d layers, model %d", bg.Depth(), m.Cfg.Layers))
	}
	if feats.Rows != len(bg.InputVertices()) {
		panic(fmt.Sprintf("gnn: got %d feature rows for %d input vertices",
			feats.Rows, len(bg.InputVertices())))
	}
	var flops int64
	act := &Activations{bg: bg}
	h := feats
	for t := 0; t < m.Cfg.Layers; t++ {
		adj := bg.Adjs[m.Cfg.Layers-1-t] // deepest first
		lay := m.layers[t]
		rows := adj.Rows

		norm := normalizeAdj(adj, m.Cfg.Agg)

		// Self term: embeddings of this depth's frontier are the first
		// rows of h (the column frontier embeds the row frontier).
		hSelf := dense.FromSlice(rows, h.Cols, h.Data[:rows*h.Cols])
		zSelf, f1 := dense.MatMul(hSelf, lay.WSelf)
		agg, f2 := sparse.SpMM(norm, h.Data, h.Cols)
		aggM := dense.FromSlice(rows, h.Cols, agg)
		zNeigh, f3 := dense.MatMul(aggM, lay.WNeigh)
		zSelf.AddInPlace(zNeigh)
		flops += f1 + f2 + f3

		act.h = append(act.h, h)
		act.z = append(act.z, zSelf)
		act.norm = append(act.norm, norm)
		h = dense.ReLU(zSelf)
		if m.dropRate > 0 {
			mask := dropoutMask(h.Rows, h.Cols, m.dropRate, m.dropSeed, t)
			h = applyMask(h, mask)
			act.masks = append(act.masks, mask)
		} else {
			act.masks = append(act.masks, nil)
		}
	}
	logits, f := dense.MatMul(h, m.wOut)
	flops += f
	for i := 0; i < logits.Rows; i++ {
		row := logits.RowView(i)
		for j := range row {
			row[j] += m.bOut[j]
		}
	}
	// h after the last conv is needed for the classifier gradient.
	act.h = append(act.h, h)
	act.Logits = logits
	return act, flops
}

// Backward computes the gradient of the loss with respect to every
// parameter given dLogits (from dense.CrossEntropy). The result is a
// flat vector aligned with Params().
func (m *Model) Backward(act *Activations, dLogits *dense.Matrix) ([]float64, int64) {
	grads := make([]float64, len(m.flat))
	off := 0
	gview := func(r, c int) *dense.Matrix {
		v := dense.FromSlice(r, c, grads[off:off+r*c])
		off += r * c
		return v
	}
	var gLayers []layerView
	for _, d := range layerDims(m.Cfg) {
		gLayers = append(gLayers, layerView{WSelf: gview(d[0], d[1]), WNeigh: gview(d[0], d[1])})
	}
	gWOut := gview(m.Cfg.Hidden, m.Cfg.Classes)
	gBOut := grads[off : off+m.Cfg.Classes]

	var flops int64

	// Classifier.
	hTop := act.h[len(act.h)-1]
	gw, f1 := dense.TMatMul(hTop, dLogits)
	copy(gWOut.Data, gw.Data)
	for i := 0; i < dLogits.Rows; i++ {
		row := dLogits.RowView(i)
		for j := range row {
			gBOut[j] += row[j]
		}
	}
	dh, f2 := dense.MatMulT(dLogits, m.wOut)
	flops += f1 + f2

	// Convolutions, last applied first.
	for t := m.Cfg.Layers - 1; t >= 0; t-- {
		lay := m.layers[t]
		z := act.z[t]
		hIn := act.h[t]
		norm := act.norm[t]
		rows := z.Rows

		if act.masks[t] != nil {
			dh = applyMask(dh, act.masks[t])
		}
		dz := dense.ReLUGrad(z, dh)

		hSelf := dense.FromSlice(rows, hIn.Cols, hIn.Data[:rows*hIn.Cols])
		gSelf, f3 := dense.TMatMul(hSelf, dz)
		copy(gLayers[t].WSelf.Data, gSelf.Data)

		agg, f4 := sparse.SpMM(norm, hIn.Data, hIn.Cols)
		aggM := dense.FromSlice(rows, hIn.Cols, agg)
		gNeigh, f5 := dense.TMatMul(aggM, dz)
		copy(gLayers[t].WNeigh.Data, gNeigh.Data)

		// Gradient to the layer input: self path into the prefix rows,
		// neighbor path through the transposed normalized adjacency.
		dSelf, f6 := dense.MatMulT(dz, lay.WSelf)
		dAgg, f7 := dense.MatMulT(dz, lay.WNeigh)
		dIn, f8 := sparse.SpMMT(norm, dAgg.Data, dAgg.Cols)
		dhNext := dense.FromSlice(hIn.Rows, hIn.Cols, dIn)
		for i := 0; i < rows; i++ {
			dst := dhNext.RowView(i)
			src := dSelf.RowView(i)
			for j := range dst {
				dst[j] += src[j]
			}
		}
		dh = dhNext
		flops += f3 + f4 + f5 + f6 + f7 + f8
	}
	return grads, flops
}

// Loss computes cross-entropy over the seed vertices and the logits
// gradient.
func Loss(act *Activations, labels []int) (float64, *dense.Matrix) {
	return dense.CrossEntropy(act.Logits, labels)
}
