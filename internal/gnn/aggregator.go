package gnn

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Aggregator selects how a convolution combines neighbor messages.
// The paper's pipeline trains PyG's SAGE (mean aggregation); the GCN
// variant is provided because the matrix sampling framework is
// model-agnostic ("our methods support any model", Section 8.1.3).
type Aggregator int

const (
	// MeanAgg divides each row of the sampled adjacency by its degree
	// (GraphSAGE mean aggregation).
	MeanAgg Aggregator = iota
	// GCNAgg applies the symmetric normalization D^-1/2 (A+I) D^-1/2
	// restricted to the sampled bipartite block (Kipf & Welling).
	GCNAgg
	// SumAgg leaves edge weights untouched (sum aggregation).
	SumAgg
)

func (a Aggregator) String() string {
	switch a {
	case MeanAgg:
		return "mean"
	case GCNAgg:
		return "gcn"
	case SumAgg:
		return "sum"
	}
	return fmt.Sprintf("aggregator(%d)", int(a))
}

// normalizeAdj returns the aggregation operator for a sampled
// bipartite adjacency block (rows: layer-l frontier, cols: layer-(l-1)
// frontier).
func normalizeAdj(adj *sparse.CSR, agg Aggregator) *sparse.CSR {
	out := adj.Clone()
	switch agg {
	case SumAgg:
		return out
	case MeanAgg:
		out.NormalizeRows()
		return out
	case GCNAgg:
		// Bipartite symmetric scaling: entry (i, j) becomes
		// 1 / sqrt((1+deg_out(i)) * (1+deg_in(j))). The +1 terms play
		// the role of the self loop in D^-1/2 (A+I) D^-1/2.
		rowDeg := make([]float64, out.Rows)
		colDeg := make([]float64, out.Cols)
		for i := 0; i < out.Rows; i++ {
			cols, _ := out.Row(i)
			rowDeg[i] = float64(len(cols))
			for _, c := range cols {
				colDeg[c]++
			}
		}
		for i := 0; i < out.Rows; i++ {
			lo, hi := out.RowPtr[i], out.RowPtr[i+1]
			for k := lo; k < hi; k++ {
				j := out.ColIdx[k]
				out.Val[k] /= math.Sqrt((1 + rowDeg[i]) * (1 + colDeg[j]))
			}
		}
		return out
	default:
		panic(fmt.Sprintf("gnn: unknown aggregator %d", agg))
	}
}
