package distsample

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sparse"
)

// The stage arenas persist across sampling calls on a PartitionedSet
// (pipeline.Run builds the set once and samples from it all epoch,
// every epoch). These tests pin the reuse contract: a pass over warm
// arenas — buffers grown and dirtied by a previous pass — must be
// bit-identical, in both samples and simulated charges, to the same
// pass over a fresh set, on both execution backends.

// runTwoPasses samples twice from the same cluster run and returns the
// second pass's samples plus the final simulated clock. When warm is
// true the second pass reuses the first pass's set (arenas dirty);
// otherwise it gets a freshly built set, the cold control.
func runTwoPasses(t *testing.T, be cluster.Backend, algo string, a *sparse.CSR,
	batches [][]int, warm bool) ([]*core.BulkSample, float64) {
	t.Helper()
	const p, c = 8, 2
	m := cluster.Perlmutter()
	m.Backend = be
	cl := cluster.New(p, m)
	g := cluster.NewGrid(cl, p, c)
	setA := NewPartitionedSet(g, a, true)
	setB := setA
	if !warm {
		setB = NewPartitionedSet(g, a, true)
	}
	results := make([]*core.BulkSample, p)
	sample := func(r *cluster.Rank, set []*Partitioned) *core.BulkSample {
		local := LocalBatches(g, r.ID, batches)
		switch algo {
		case "sage":
			return SampleSAGEPartitioned(r, set[r.ID], local, []int{3, 2}, 99)
		case "ladies":
			return SampleLADIESPartitioned(r, set[r.ID], local, 5, 2, 99)
		default:
			return SampleFastGCNPartitioned(r, set[r.ID], local, 5, 2, 99)
		}
	}
	res, err := cl.Run(func(r *cluster.Rank) error {
		sample(r, setA)
		results[r.ID] = sample(r, setB)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, res.SimTime
}

func TestArenaReuseBitIdentical(t *testing.T) {
	a := testGraph(150, 10, 7)
	batches := makeBatches(8, 4, 150)
	for _, be := range []cluster.Backend{cluster.GoroutineBackend, cluster.DESBackend} {
		for _, algo := range []string{"sage", "ladies", "fastgcn"} {
			warm, warmSim := runTwoPasses(t, be, algo, a, batches, true)
			cold, coldSim := runTwoPasses(t, be, algo, a, batches, false)
			if warmSim != coldSim {
				t.Errorf("%v/%s: warm-arena sim clock %.17g, fresh-arena %.17g", be, algo, warmSim, coldSim)
			}
			for rank := range warm {
				if err := sameBulk(warm[rank], cold[rank]); err != nil {
					t.Errorf("%v/%s rank %d: warm arenas changed the sample: %v", be, algo, rank, err)
				}
			}
		}
	}
}

// A warm second pass must also still match the local-sampling oracle —
// reuse may not trade correctness for allocation.
func TestArenaReuseMatchesLocalOracle(t *testing.T) {
	a := testGraph(150, 10, 8)
	batches := makeBatches(8, 4, 150)
	results, _ := runTwoPasses(t, cluster.GoroutineBackend, "sage", a, batches, true)
	const p, c = 8, 2
	cl := cluster.New(p, cluster.Perlmutter())
	g := cluster.NewGrid(cl, p, c)
	for rank := 0; rank < p; rank++ {
		local := LocalBatches(g, rank, batches)
		want := core.SampleBulk(core.SAGE{}, a, local, []int{3, 2}, 99)
		if err := sameBulk(results[rank], want); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}
