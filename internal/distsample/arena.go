package distsample

import (
	"repro/internal/sparse"
)

// stageArena is one rank's epoch-persistent workspace for the 1.5D
// SpGEMM stage loop. Before it, every stage of every layer rebuilt the
// same intermediates from fresh heap: the Q_ik column blocks, the
// NnzCols request list, the owner's extracted row payloads, the
// assembled right operand, the local product and the accumulator merge
// — ~0.9 GB per partitioned small p=16 epoch, 4x the replicated path.
// The arena owns growable buffers that successive stages and calls
// adopt; buffers scale with the active frontier's nonzeros, not with
// p.
//
// Reuse safety for the buffers that cross the wire rests on the
// rendezvous happens-before edges of the collectives:
//
//   - need (the Gather payload): the owner reads each member's request
//     list between leaving the Gather and entering the Scatter. A
//     requester rewrites its list only after leaving that Scatter —
//     which completes only after the owner arrived, i.e. after the
//     owner finished reading.
//   - parts (the Scatter payload): each member copies its part into
//     its assembled block before entering the next collective on the
//     column communicator. The owner rewrites its response arena no
//     earlier than its next extraction — behind a later Gather on the
//     same communicator, which cannot complete until every member
//     passed this stage.
//   - prods and res (the row all-reduce contribution and result):
//     AllReduceGenericInto folds all members' stage products inside
//     the rendezvous, before any member leaves, writing every member's
//     private copy of the total into that member's res buffer. While
//     the fold runs, every member is parked in the collective, so its
//     arena is quiescent — and a member's previous result is dead by
//     the time it re-enters (it consumed it to get here), so res is
//     safely rewritten. Contributed product storage is reusable as
//     soon as the call returns.
//
// Everything else (Q_ik blocks, SPA, product, ping-pong accumulators)
// never leaves the rank. A stageArena serves one execution stream —
// the rank's sampling stream.
//
//gnnvet:arena
type stageArena struct {
	sparse.Scratch // SPA, NnzCols mark array, column-block slicing

	prods    []sparse.CSR  // per-stage local products, merged in the final fold
	prodPtrs []*sparse.CSR // prods as a fold source list, rebuilt per call
	asm      sparse.CSR    // assembled right operand A_k
	res      sparse.CSR    // this rank's private copy of the row all-reduce total

	// stamp counts the running accumulator's nonzeros without building
	// it: stamp[col] holds the tag of the last (call, row) that touched
	// the column, so a stage's new distinct (row, column) pairs are
	// countable in one pass over its product. nextTag makes tags unique
	// across calls.
	stamp   []int
	nextTag int

	// foldSrcs is the reusable (member x stage) source list of the
	// all-reduce fold, owned by the first destination's arena.
	foldSrcs []*sparse.CSR

	// Owner-side response arenas: one flat allocation carved into
	// per-member row payloads (the shared flat layout FetchCached
	// introduced for the feature all-to-allv).
	partsBacking []rowPayload
	parts        []*rowPayload
	respHdrs     []sparse.CSR
	respRowPtr   []int
	respCols     []int
	respVals     []float64
}

// growInts returns buf with length n (contents unspecified),
// reallocating only on growth — at least doubling, so sizes that
// creep up across stages do not reallocate every call.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		c := 2 * cap(buf)
		if c < n {
			c = n
		}
		return make([]int, n, c)
	}
	return buf[:n]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		c := 2 * cap(buf)
		if c < n {
			c = n
		}
		return make([]float64, n, c)
	}
	return buf[:n]
}

// arena returns the calling rank's workspace slot, building it on
// first use. The c replicas sharing this block row index disjoint
// slots (by grid column), so the lazy writes never race.
func (ps *Partitioned) arena(rank int) *stageArena {
	j := ps.Grid.ColIndex(rank)
	a := ps.arenas[j]
	if a == nil {
		a = &stageArena{}
		ps.arenas[j] = a
	}
	return a
}

// stageProds returns the per-stage product headers (persistent,
// grow-only) and the flat source list the fold consumes, in stage
// order.
func (ar *stageArena) stageProds(stages int) ([]sparse.CSR, []*sparse.CSR) {
	if cap(ar.prods) < stages {
		ar.prods = make([]sparse.CSR, stages)
		ar.prodPtrs = make([]*sparse.CSR, stages)
	}
	ar.prods = ar.prods[:stages]
	ar.prodPtrs = ar.prodPtrs[:stages]
	for t := range ar.prods {
		ar.prodPtrs[t] = &ar.prods[t]
	}
	return ar.prods, ar.prodPtrs
}

// beginCount readies the stamp array for one call's accumulator-size
// tracking over an n-column product and returns the call's tag base.
func (ar *stageArena) beginCount(n, rows int) int {
	if cap(ar.stamp) < n {
		ar.stamp = make([]int, n)
	}
	ar.stamp = ar.stamp[:n]
	base := ar.nextTag
	ar.nextTag += rows
	return base
}

// countStage returns how many of the stage product's (row, column)
// pairs are new to this call's running accumulator — together with the
// running total this reproduces, without building the accumulator, the
// exact NNZ sequence the old pairwise-merge chain charged.
func (ar *stageArena) countStage(prod *sparse.CSR, base int) int {
	n := 0
	for i := 0; i < prod.Rows; i++ {
		cs, _ := prod.Row(i)
		tag := base + i + 1 // +1: zero is the unstamped state
		for _, c := range cs {
			if ar.stamp[c] != tag {
				ar.stamp[c] = tag
				n++
			}
		}
	}
	return n
}

// foldStages combines the members' stage products inside the all-reduce
// rendezvous: per (row, column), values add in (member, stage) order —
// exactly the float sequence of the old per-member merge chains folded
// across members with AddCSR — and every destination arena's res buffer
// receives a private copy of the total. See stageArena for why writing
// other members' res buffers is safe here.
func foldStages(vals, dests []*stageArena) {
	d0 := dests[0]
	srcs := d0.foldSrcs[:0]
	for _, v := range vals {
		srcs = append(srcs, v.prodPtrs...)
	}
	d0.foldSrcs = srcs
	d0.MergeCSRInto(&d0.res, srcs)
	for _, d := range dests[1:] {
		sparse.CopyCSRInto(&d.res, &d0.res)
	}
}

// extractParts serves one stage's row requests from the owner's block:
// lists[m] holds the (local) row ids member m asked for, and the
// result is the per-member payload slice Scatter expects. All payloads
// share one flat backing — the in-place form of the per-member
// ExtractRows calls, bit-identical per payload.
func (ar *stageArena) extractParts(a *sparse.CSR, lists [][]int) []*rowPayload {
	n := len(lists)
	if cap(ar.partsBacking) < n {
		ar.partsBacking = make([]rowPayload, n)
		ar.parts = make([]*rowPayload, n)
		ar.respHdrs = make([]sparse.CSR, n)
	}
	ar.partsBacking = ar.partsBacking[:n]
	ar.parts = ar.parts[:n]
	ar.respHdrs = ar.respHdrs[:n]
	totalRows, totalNNZ := 0, 0
	for _, lst := range lists {
		totalRows += len(lst)
		for _, row := range lst {
			totalNNZ += a.RowNNZ(row)
		}
	}
	ar.respRowPtr = growInts(ar.respRowPtr, totalRows+n)
	ar.respCols = growInts(ar.respCols, totalNNZ)
	ar.respVals = growFloats(ar.respVals, totalNNZ)
	rpOff, nzOff := 0, 0
	for m, lst := range lists {
		h := &ar.respHdrs[m]
		h.Rows, h.Cols = len(lst), a.Cols
		h.RowPtr = ar.respRowPtr[rpOff : rpOff+len(lst)+1]
		rpOff += len(lst) + 1
		nnz := 0
		for _, row := range lst {
			nnz += a.RowNNZ(row)
		}
		cols := ar.respCols[nzOff : nzOff : nzOff+nnz]
		vals := ar.respVals[nzOff : nzOff : nzOff+nnz]
		nzOff += nnz
		h.RowPtr[0] = 0
		for i, row := range lst {
			cs, vs := a.Row(row)
			cols = append(cols, cs...)
			vals = append(vals, vs...)
			h.RowPtr[i+1] = len(cols)
		}
		h.ColIdx, h.Val = cols, vals
		ar.partsBacking[m] = rowPayload{rows: h}
		ar.parts[m] = &ar.partsBacking[m]
	}
	return ar.parts
}

// assembleBlockInto is assembleBlock into a reusable matrix: row
// ids[i] of the (height x rows.Cols) block is payload row i.
func assembleBlockInto(out *sparse.CSR, height int, ids []int, rows *sparse.CSR) *sparse.CSR {
	out.Rows, out.Cols = height, rows.Cols
	out.RowPtr = growInts(out.RowPtr, height+1)
	out.RowPtr[0] = 0
	nnz := rows.NNZ()
	cols := growInts(out.ColIdx, nnz)[:0]
	vals := growFloats(out.Val, nnz)[:0]
	cursor := 0
	for i := 0; i < height; i++ {
		if cursor < len(ids) && ids[cursor] == i {
			cs, vs := rows.Row(cursor)
			cols = append(cols, cs...)
			vals = append(vals, vs...)
			cursor++
		}
		out.RowPtr[i+1] = len(cols)
	}
	if cursor != len(ids) {
		panic("distsample: row payload misaligned with request")
	}
	out.ColIdx, out.Val = cols, vals
	return out
}
