// Package distsample implements the paper's two distributed sampling
// algorithms (Section 5):
//
//   - Graph Replicated (Section 5.1): the adjacency matrix is
//     replicated on every device and the stacked sampler matrix Q is
//     1-D block-row partitioned, so the entire sampling step runs
//     without communication.
//   - Graph Partitioned (Section 5.2): Q and A are partitioned in
//     block rows over a p/c × c process grid; P = Q·A runs as the
//     staged, sparsity-aware 1.5D SpGEMM of Algorithm 2 (gather the
//     needed column ids, send only the referenced rows of A, then
//     all-reduce partial products across process rows).
//
// Both drivers run on the simulated cluster of internal/cluster and
// charge each phase (probability / sampling / extraction) on the
// per-rank clocks, including the communication split that Figure 7
// reports.
package distsample

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// Phase names used for the Figure 7 breakdowns.
const (
	PhaseProbability = "probability"
	PhaseSampling    = "sampling"
	PhaseExtraction  = "extraction"
)

// Partitioned is the per-grid-row state of the Graph Partitioned
// algorithm: one block row of A (compact, rows [Lo, Hi) of the global
// matrix), shared by the c replicas of a process row.
type Partitioned struct {
	Grid *cluster.Grid
	N    int
	// ALocal holds rows [Lo, Hi) of A with row indices shifted to
	// local (row g of A is ALocal row g-Lo).
	ALocal *sparse.CSR
	Lo, Hi int
	// SparsityAware selects Algorithm 2's row-fetching scheme; when
	// false the owner broadcasts its whole block row each stage (the
	// sparsity-oblivious baseline the paper contrasts against).
	SparsityAware bool
	// Degrees holds every vertex's out-degree. FastGCN's probability
	// model needs global degrees; a real deployment all-gathers the
	// per-block degree vectors once at startup (n integers — tiny next
	// to the graph).
	Degrees []int

	// arenas holds the epoch-persistent per-rank workspaces of the c
	// replicas sharing this block row, indexed by grid column (each
	// replica of a process row has a distinct column). See stageArena
	// for the reuse-safety argument.
	arenas []*stageArena
}

// NewPartitionedSet slices A into the grid's block rows, returning the
// per-rank state (index by rank id). Replicas within a process row
// share the same block storage, like real replicas would hold copies.
func NewPartitionedSet(g *cluster.Grid, a *sparse.CSR, sparsityAware bool) []*Partitioned {
	if g.Rows%g.C != 0 {
		panic(fmt.Sprintf("distsample: 1.5D algorithm needs c^2 | p (p=%d c=%d)", g.P, g.C))
	}
	degrees := make([]int, a.Rows)
	for i := range degrees {
		degrees[i] = a.RowNNZ(i)
	}
	blocks := make([]*Partitioned, g.Rows)
	for i := 0; i < g.Rows; i++ {
		lo, hi := graph.BlockRowRange(a.Rows, g.Rows, i)
		blocks[i] = &Partitioned{
			Grid:          g,
			N:             a.Rows,
			ALocal:        sparse.SliceRows(a, lo, hi),
			Lo:            lo,
			Hi:            hi,
			SparsityAware: sparsityAware,
			Degrees:       degrees,
			arenas:        make([]*stageArena, g.C),
		}
	}
	out := make([]*Partitioned, g.P)
	for rank := 0; rank < g.P; rank++ {
		out[rank] = blocks[g.RowIndex(rank)]
	}
	return out
}

// rowPayload carries requested rows of an A block from the owner to a
// requester: rows appear in the requester's request order.
type rowPayload struct {
	rows *sparse.CSR
}

func payloadBytes(p *rowPayload) int {
	if p == nil || p.rows == nil {
		return 0
	}
	return p.rows.Bytes()
}

// SpGEMM15D computes P = Q·A for this rank's block row of Q, running
// the staged block algorithm of Algorithm 2 on the process grid. Q's
// columns span the full vertex range [0, N). The result is the full
// product for this rank's rows, identical on all c replicas of the
// process row after the final all-reduce. It is private to the calling
// rank (safe to mutate) but aliases the rank's epoch-persistent arena:
// it is valid only until the rank's next SpGEMM15D call on this set,
// and must not be passed back in as Q. The collective schedules —
// the per-stage gathers/scatters and the row all-reduce — charge under
// the cost model's Collectives table (cluster.CollectiveAlgorithm), so
// algorithm comparisons reach the 1.5D sampling path without any
// plumbing here.
func (ps *Partitioned) SpGEMM15D(r *cluster.Rank, q *sparse.CSR) *sparse.CSR {
	g := ps.Grid
	j := g.ColIndex(r.ID)
	stages := g.Rows / g.C // the q = p/c^2 stages of Algorithm 2
	// Collectives go through the clone dedicated to the driving stream,
	// so a sampling stage prefetching on its own stream never shares a
	// rendezvous with the feature-fetch all-to-allv on the same grid
	// communicators (stream-safe collectives; see cluster.Comm.ForStream).
	colComm := g.ColComm(r.ID).ForStream(r)
	rowComm := g.RowComm(r.ID).ForStream(r)

	// All buffers below come from the rank's epoch-persistent arena;
	// every charge and collective is unchanged from the allocating
	// version, so simulated time is bit-identical (see stageArena).
	ar := ps.arena(r.ID)
	lo, hi := ar.BlockBounds(stages)
	for t := 0; t < stages; t++ {
		lo[t], hi[t] = graph.BlockRowRange(ps.N, g.Rows, j*stages+t)
	}
	// One bucketing pass slices every stage's Q_ik block (this rank
	// only ever multiplies the p/c^2 block rows its column handles).
	qiks := ar.SliceColBlocks(q, lo, hi)

	// Stage products stay in per-stage arenas and merge once, inside
	// the final all-reduce; the running accumulator the old pairwise
	// merge chain built is replaced by an exact nonzero count (see
	// stageArena.countStage), so every ChargeMem below is unchanged.
	prods, _ := ar.stageProds(stages)
	base := ar.beginCount(ps.N, q.Rows)
	cum := 0
	for t := 0; t < stages; t++ {
		k := j*stages + t // block row of A handled this stage
		qik := qiks[t]
		r.ChargeMem(int64(q.NNZ()) * 8) // block slicing pass
		ownerLocal := k                 // colComm members sorted by grid row

		var blockK *sparse.CSR
		if ps.SparsityAware {
			// Each member tells the owner which rows of A_k its local
			// multiply will read (NnzCols of Q_ik), and receives only
			// those rows.
			need := ar.NonzeroCols(qik)
			lists := cluster.Gather(colComm, r, ownerLocal, need, 8*len(need))
			var parts []*rowPayload
			if lists != nil { // this rank owns A_k
				parts = ar.extractParts(ps.ALocal, lists)
				var extracted int64
				for _, p := range parts {
					extracted += int64(p.rows.NNZ())
				}
				r.ChargeSparse(extracted)
			}
			part := cluster.Scatter(colComm, r, ownerLocal, parts, payloadBytes)
			blockK = assembleBlockInto(&ar.asm, hi[t]-lo[t], need, part.rows)
		} else {
			// Sparsity-oblivious: broadcast the whole block row.
			var block *sparse.CSR
			if g.RowIndex(r.ID) == k {
				block = ps.ALocal
			}
			blockK = cluster.Broadcast(colComm, r, ownerLocal, block, blockBytes(block))
		}

		prod, flops := ar.SpGEMM(&prods[t], qik, blockK)
		r.ChargeSparse(flops)
		cum += ar.countStage(prod, base)
		r.ChargeMem(int64(cum) * 16)
		r.ChargeKernels(2)
	}

	// Partial sums combine across the process row (Algorithm 2 line
	// 14), folded once inside the rendezvous into every member's res
	// arena; the fold completing inside the collective is what lets
	// the next call reuse the stage products, and the per-member
	// destinations are what make the result private without a Clone.
	// The contribution bytes are this rank's partial sum in CSR form:
	// cum nonzeros over q.Rows rows, sized like the old accumulator.
	partialBytes := 8*(q.Rows+1) + 16*cum
	sum := cluster.AllReduceGenericInto(rowComm, r, ar, partialBytes, ar, foldStages)
	r.ChargeMem(int64(sum.res.NNZ()) * 16 * int64(rowComm.Size()))
	return &sum.res
}

// blockBytes sizes an optional block for broadcast accounting.
func blockBytes(b *sparse.CSR) int {
	if b == nil {
		return 0
	}
	return b.Bytes()
}

// LocalBatches splits the global batch list across process rows: each
// process row owns a contiguous share, replicated on its c members
// (the 1-D block row distribution of Q).
func LocalBatches(g *cluster.Grid, rank int, batches [][]int) [][]int {
	lo, hi := graph.BlockRowRange(len(batches), g.Rows, g.RowIndex(rank))
	return batches[lo:hi]
}

// SampleSAGEPartitioned runs bulk GraphSAGE sampling over this rank's
// local batches with the Graph Partitioned algorithm, charging the
// probability/sampling/extraction phases on the rank's clock.
func SampleSAGEPartitioned(r *cluster.Rank, ps *Partitioned, batches [][]int, fanouts []int, seed int64) *core.BulkSample {
	out := &core.BulkSample{Batches: batches}
	cur := core.NewFrontier(batches)
	sg := core.SAGE{}
	for l, fan := range fanouts {
		layerSeed := seed + int64(l)*1e9

		r.SetPhase(PhaseProbability)
		q := sg.BuildQ(cur, ps.N)
		r.ChargeKernels(1)
		p := ps.SpGEMM15D(r, q)

		r.SetPhase(PhaseSampling)
		ls, cost := sg.FinishStep(p, cur, fan, layerSeed)
		r.ChargeSparse(cost.SampleOps)
		r.ChargeKernels(2)
		r.SetPhase(PhaseExtraction)
		r.ChargeSparse(cost.ExtractOps)
		r.ChargeKernels(1)

		out.Layers = append(out.Layers, ls)
		out.Cost.Add(cost)
		cur = ls.Cols
	}
	return out
}

// SampleLADIESPartitioned runs bulk LADIES sampling over this rank's
// local batches with the Graph Partitioned algorithm. Row extraction
// (Q_R·A) reuses the 1.5D SpGEMM; column extraction is split across
// the process row and reassembled with an all-gather, as described in
// Section 5.2.3.
func SampleLADIESPartitioned(r *cluster.Rank, ps *Partitioned, batches [][]int, layerWidth int, layers int, seed int64) *core.BulkSample {
	return layerwisePartitioned(r, ps, batches, layerWidth, layers, seed, func(p *sparse.CSR) {
		core.LADIES{}.Norm(p)
	})
}

// SampleFastGCNPartitioned runs bulk FastGCN sampling with the Graph
// Partitioned algorithm: identical schedule to LADIES but with
// degree-squared importance weights.
func SampleFastGCNPartitioned(r *cluster.Rank, ps *Partitioned, batches [][]int, layerWidth int, layers int, seed int64) *core.BulkSample {
	return layerwisePartitioned(r, ps, batches, layerWidth, layers, seed, func(p *sparse.CSR) {
		for i := 0; i < p.Rows; i++ {
			cols, vals := p.Row(i)
			for k, c := range cols {
				d := float64(ps.Degrees[c])
				vals[k] = d * d
			}
		}
		p.NormalizeRows()
	})
}

// layerwisePartitioned is the shared Graph Partitioned driver for
// layer-wise samplers; norm converts the raw count matrix P into the
// sampler's probability model in place.
func layerwisePartitioned(r *cluster.Rank, ps *Partitioned, batches [][]int, layerWidth int, layers int, seed int64, norm func(*sparse.CSR)) *core.BulkSample {
	out := &core.BulkSample{Batches: batches}
	cur := core.NewFrontier(batches)
	ld := core.LADIES{}
	g := ps.Grid
	myCol := g.ColIndex(r.ID)
	rowComm := g.RowComm(r.ID).ForStream(r)

	for l := 0; l < layers; l++ {
		layerSeed := seed + int64(l)*1e9

		// Probabilities: P = Q·A with the sampler's normalization.
		r.SetPhase(PhaseProbability)
		q := ld.BuildQ(cur, ps.N)
		r.ChargeKernels(1)
		p := ps.SpGEMM15D(r, q)
		norm(p)
		r.ChargeMem(int64(p.NNZ()) * 16)

		// Sampling: row-wise, local on every replica.
		r.SetPhase(PhaseSampling)
		sampled, cost := core.SampleLayerwise(p, layerWidth, layerSeed)
		r.ChargeSparse(cost.SampleOps)
		r.ChargeKernels(1)

		// Extraction: row extraction is a second 1.5D SpGEMM with the
		// one-nonzero-per-row Q_R; column extraction is split across
		// the process row by batch and reassembled.
		r.SetPhase(PhaseExtraction)
		qr := (core.SAGE{}).BuildQ(cur, ps.N) // Q_R: one nonzero per frontier vertex
		ar := ps.SpGEMM15D(r, qr)

		k := cur.K()
		perBatch := make([]*core.LayerSample, k)
		var myParts []*core.LayerSample
		var extractOps int64
		for b := 0; b < k; b++ {
			if b%g.C != myCol {
				myParts = append(myParts, nil)
				continue
			}
			bf := core.NewFrontier([][]int{append([]int(nil), cur.Batch(b)...)})
			arSlice := sparse.SliceRows(ar, cur.BatchPtr[b], cur.BatchPtr[b+1])
			lsb, c := core.ExtractLayerwise(arSlice, bf, [][]int{sampled[b]})
			extractOps += c.ExtractOps
			myParts = append(myParts, lsb)
		}
		r.ChargeSparse(extractOps)
		r.ChargeKernels(1)

		partBytes := 0
		for _, pb := range myParts {
			if pb != nil {
				partBytes += pb.Adj.Bytes() + 8*pb.Cols.Len()
			}
		}
		gathered := cluster.AllGather(rowComm, r, myParts, partBytes)
		for col, parts := range gathered {
			for b := 0; b < k; b++ {
				if b%g.C == col {
					perBatch[b] = parts[b]
				}
			}
		}

		ls := assembleLayer(perBatch, cur)
		out.Layers = append(out.Layers, ls)
		out.Cost.Add(cost)
		cur = ls.Cols
	}
	return out
}

// assembleLayer merges per-batch layer samples (each a 1-batch
// LayerSample) into one bulk LayerSample: adjacencies block-diagonal,
// frontiers concatenated.
func assembleLayer(perBatch []*core.LayerSample, cur *core.Frontier) *core.LayerSample {
	adjs := make([]*sparse.CSR, len(perBatch))
	next := &core.Frontier{BatchPtr: make([]int, len(perBatch)+1)}
	for b, pb := range perBatch {
		if pb == nil {
			panic(fmt.Sprintf("distsample: batch %d missing after all-gather", b))
		}
		adjs[b] = pb.Adj
		next.Vertices = append(next.Vertices, pb.Cols.Vertices...)
		next.BatchPtr[b+1] = len(next.Vertices)
	}
	return &core.LayerSample{Adj: sparse.BlockDiag(adjs...), Rows: cur, Cols: next}
}
