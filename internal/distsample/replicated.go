package distsample

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// ReplicatedBatches splits the global batch list 1-D across all p
// ranks: rank i owns a contiguous k/p share of the minibatches
// (Section 5.1's block row distribution of the stacked Q).
func ReplicatedBatches(p, rank int, batches [][]int) [][]int {
	lo, hi := graph.BlockRowRange(len(batches), p, rank)
	return batches[lo:hi]
}

// SampleReplicated runs bulk sampling over this rank's local batches
// with the Graph Replicated algorithm: A is replicated, Q is
// partitioned, and the whole step — probability generation, sampling,
// extraction — is local (Section 5.1 eliminates all communication).
// The sampler's operation counts are charged to the rank's clock under
// the probability/sampling/extraction phases.
func SampleReplicated(r *cluster.Rank, sampler core.Sampler, a *sparse.CSR, batches [][]int, fanouts []int, seed int64) *core.BulkSample {
	out := &core.BulkSample{Batches: batches}
	if len(batches) == 0 {
		return out
	}
	cur := core.NewFrontier(batches)
	for l, fan := range fanouts {
		ls, cost := sampler.Step(a, cur, fan, seed+int64(l)*1e9)
		r.SetPhase(PhaseProbability)
		r.ChargeSparse(cost.ProbFlops)
		r.SetPhase(PhaseSampling)
		r.ChargeSparse(cost.SampleOps)
		r.SetPhase(PhaseExtraction)
		r.ChargeSparse(cost.ExtractOps)
		r.ChargeKernels(cost.Kernels)
		out.Layers = append(out.Layers, ls)
		out.Cost.Add(cost)
		cur = ls.Cols
	}
	return out
}
