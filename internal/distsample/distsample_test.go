package distsample

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sparse"
)

func testGraph(n int, deg float64, seed int64) *sparse.CSR {
	g := graph.ErdosRenyi(n, deg, seed)
	return graph.EnsureMinOutDegree(g, 4, seed+1).Adj
}

func makeBatches(k, b, n int) [][]int {
	out := make([][]int, k)
	v := 0
	for i := range out {
		batch := make([]int, b)
		for j := range batch {
			batch[j] = v % n
			v++
		}
		out[i] = batch
	}
	return out
}

func sameBulk(a, b *core.BulkSample) error {
	if len(a.Layers) != len(b.Layers) {
		return fmt.Errorf("layer count %d vs %d", len(a.Layers), len(b.Layers))
	}
	for l := range a.Layers {
		la, lb := a.Layers[l], b.Layers[l]
		if !sparse.Equal(la.Adj, lb.Adj, 1e-12) {
			return fmt.Errorf("layer %d adjacency differs", l)
		}
		if len(la.Cols.Vertices) != len(lb.Cols.Vertices) {
			return fmt.Errorf("layer %d frontier size %d vs %d", l, len(la.Cols.Vertices), len(lb.Cols.Vertices))
		}
		for i := range la.Cols.Vertices {
			if la.Cols.Vertices[i] != lb.Cols.Vertices[i] {
				return fmt.Errorf("layer %d frontier vertex %d differs", l, i)
			}
		}
	}
	return nil
}

func TestReplicatedBatchesPartition(t *testing.T) {
	batches := makeBatches(10, 4, 100)
	seen := 0
	for rank := 0; rank < 4; rank++ {
		seen += len(ReplicatedBatches(4, rank, batches))
	}
	if seen != 10 {
		t.Fatalf("ranks cover %d of 10 batches", seen)
	}
}

func TestReplicatedMatchesLocalSampling(t *testing.T) {
	a := testGraph(120, 8, 1)
	batches := makeBatches(8, 4, 120)
	fanouts := []int{3, 2}

	cl := cluster.New(4, cluster.Perlmutter())
	results := make([]*core.BulkSample, 4)
	_, err := cl.Run(func(r *cluster.Rank) error {
		local := ReplicatedBatches(4, r.ID, batches)
		results[r.ID] = SampleReplicated(r, core.SAGE{}, a, local, fanouts, 77)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 4; rank++ {
		local := ReplicatedBatches(4, rank, batches)
		want := core.SampleBulk(core.SAGE{}, a, local, fanouts, 77)
		if err := sameBulk(results[rank], want); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestReplicatedSamplingHasNoCommunication(t *testing.T) {
	a := testGraph(120, 8, 2)
	batches := makeBatches(8, 4, 120)
	cl := cluster.New(4, cluster.Perlmutter())
	res, err := cl.Run(func(r *cluster.Rank) error {
		local := ReplicatedBatches(4, r.ID, batches)
		SampleReplicated(r, core.SAGE{}, a, local, []int{3, 2}, 5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{PhaseProbability, PhaseSampling, PhaseExtraction} {
		if res.PhaseComm(phase) != 0 {
			t.Fatalf("replicated algorithm communicated in phase %q", phase)
		}
	}
}

// runPartitioned executes the partitioned sampler on a p-rank, c-way
// grid and returns per-rank results plus the cluster accounting.
func runPartitioned(t *testing.T, a *sparse.CSR, batches [][]int, p, c int,
	sage bool, fanouts []int, width, layers int, aware bool) ([]*core.BulkSample, *cluster.Result) {
	t.Helper()
	cl := cluster.New(p, cluster.Perlmutter())
	g := cluster.NewGrid(cl, p, c)
	set := NewPartitionedSet(g, a, aware)
	results := make([]*core.BulkSample, p)
	res, err := cl.Run(func(r *cluster.Rank) error {
		local := LocalBatches(g, r.ID, batches)
		if sage {
			results[r.ID] = SampleSAGEPartitioned(r, set[r.ID], local, fanouts, 99)
		} else {
			results[r.ID] = SampleLADIESPartitioned(r, set[r.ID], local, width, layers, 99)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, res
}

func TestPartitionedSAGEMatchesLocal(t *testing.T) {
	a := testGraph(150, 10, 3)
	batches := makeBatches(8, 4, 150)
	for _, pc := range [][2]int{{4, 1}, {4, 2}, {8, 2}} {
		p, c := pc[0], pc[1]
		results, _ := runPartitioned(t, a, batches, p, c, true, []int{3, 2}, 0, 0, true)
		cl := cluster.New(p, cluster.Perlmutter())
		g := cluster.NewGrid(cl, p, c)
		for rank := 0; rank < p; rank++ {
			local := LocalBatches(g, rank, batches)
			want := core.SampleBulk(core.SAGE{}, a, local, []int{3, 2}, 99)
			if err := sameBulk(results[rank], want); err != nil {
				t.Fatalf("p=%d c=%d rank %d: %v", p, c, rank, err)
			}
		}
	}
}

func TestPartitionedSAGEObliviousMatchesAware(t *testing.T) {
	a := testGraph(150, 10, 4)
	batches := makeBatches(4, 4, 150)
	aware, _ := runPartitioned(t, a, batches, 4, 2, true, []int{3, 2}, 0, 0, true)
	obliv, _ := runPartitioned(t, a, batches, 4, 2, true, []int{3, 2}, 0, 0, false)
	for rank := range aware {
		if err := sameBulk(aware[rank], obliv[rank]); err != nil {
			t.Fatalf("rank %d: sparsity-aware and oblivious disagree: %v", rank, err)
		}
	}
}

func TestSparsityAwareCommunicatesLess(t *testing.T) {
	a := testGraph(400, 12, 5)
	batches := makeBatches(4, 8, 400)
	_, awareRes := runPartitioned(t, a, batches, 4, 2, true, []int{3, 2}, 0, 0, true)
	_, oblivRes := runPartitioned(t, a, batches, 4, 2, true, []int{3, 2}, 0, 0, false)
	var awareBytes, oblivBytes int64
	for _, s := range awareRes.Ranks {
		awareBytes += s.BytesSent
	}
	for _, s := range oblivRes.Ranks {
		oblivBytes += s.BytesSent
	}
	if awareBytes >= oblivBytes {
		t.Fatalf("sparsity-aware sent %d bytes, oblivious %d", awareBytes, oblivBytes)
	}
}

func TestPartitionedLADIESMatchesLocal(t *testing.T) {
	a := testGraph(150, 10, 6)
	batches := makeBatches(8, 4, 150)
	const width, layers = 5, 2
	for _, pc := range [][2]int{{4, 1}, {4, 2}, {8, 2}} {
		p, c := pc[0], pc[1]
		results, _ := runPartitioned(t, a, batches, p, c, false, nil, width, layers, true)
		cl := cluster.New(p, cluster.Perlmutter())
		g := cluster.NewGrid(cl, p, c)
		fan := make([]int, layers)
		for i := range fan {
			fan[i] = width
		}
		for rank := 0; rank < p; rank++ {
			local := LocalBatches(g, rank, batches)
			want := core.SampleBulk(core.LADIES{}, a, local, fan, 99)
			if err := sameBulk(results[rank], want); err != nil {
				t.Fatalf("p=%d c=%d rank %d: %v", p, c, rank, err)
			}
		}
	}
}

func TestPartitionedPhasesAccounted(t *testing.T) {
	a := testGraph(200, 10, 7)
	batches := makeBatches(8, 4, 200)
	_, res := runPartitioned(t, a, batches, 4, 2, true, []int{3, 2}, 0, 0, true)
	for _, phase := range []string{PhaseProbability, PhaseSampling, PhaseExtraction} {
		if res.Phase(phase) <= 0 {
			t.Fatalf("phase %q has no time", phase)
		}
	}
	// The probability phase must include communication (the 1.5D
	// SpGEMM), while sampling is communication-free.
	if res.PhaseComm(PhaseProbability) <= 0 {
		t.Fatal("1.5D SpGEMM booked no communication")
	}
	if res.PhaseComm(PhaseSampling) != 0 {
		t.Fatal("sampling phase should be communication-free")
	}
}

func TestPartitionedRequiresDivisibility(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: c^2 does not divide p")
		}
	}()
	cl := cluster.New(8, cluster.Perlmutter())
	g := cluster.NewGrid(cl, 8, 4) // rows=2, c=4: 2 % 4 != 0
	NewPartitionedSet(g, testGraph(50, 6, 8), true)
}

func TestNewPartitionedSetCoversMatrix(t *testing.T) {
	a := testGraph(103, 8, 9) // odd size exercises uneven blocks
	cl := cluster.New(4, cluster.Perlmutter())
	g := cluster.NewGrid(cl, 4, 2)
	set := NewPartitionedSet(g, a, true)
	covered := 0
	seen := map[int]bool{}
	for rank := 0; rank < 4; rank++ {
		ps := set[rank]
		if seen[ps.Lo] {
			continue
		}
		seen[ps.Lo] = true
		covered += ps.Hi - ps.Lo
		if ps.ALocal.Rows != ps.Hi-ps.Lo {
			t.Fatalf("rank %d block shape mismatch", rank)
		}
	}
	if covered != 103 {
		t.Fatalf("blocks cover %d of 103 rows", covered)
	}
	// Replicas in the same process row share the block.
	if set[0] != set[1] {
		t.Fatal("row replicas should share block state")
	}
}

func TestPartitionedFastGCNMatchesLocal(t *testing.T) {
	a := testGraph(150, 10, 10)
	batches := makeBatches(8, 4, 150)
	const width, layers = 5, 2
	cl := cluster.New(4, cluster.Perlmutter())
	g := cluster.NewGrid(cl, 4, 2)
	set := NewPartitionedSet(g, a, true)
	results := make([]*core.BulkSample, 4)
	_, err := cl.Run(func(r *cluster.Rank) error {
		local := LocalBatches(g, r.ID, batches)
		results[r.ID] = SampleFastGCNPartitioned(r, set[r.ID], local, width, layers, 99)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fan := []int{width, width}
	for rank := 0; rank < 4; rank++ {
		local := LocalBatches(g, rank, batches)
		want := core.SampleBulk(core.FastGCN{}, a, local, fan, 99)
		if err := sameBulk(results[rank], want); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestPartitionedSetComputesDegrees(t *testing.T) {
	a := testGraph(80, 6, 11)
	cl := cluster.New(4, cluster.Perlmutter())
	g := cluster.NewGrid(cl, 4, 2)
	set := NewPartitionedSet(g, a, true)
	for v := 0; v < a.Rows; v++ {
		if set[0].Degrees[v] != a.RowNNZ(v) {
			t.Fatalf("degree of %d wrong", v)
		}
	}
}

func TestOneDMatchesLocal(t *testing.T) {
	a := testGraph(150, 10, 12)
	batches := makeBatches(8, 4, 150)
	fanouts := []int{3, 2}
	cl := cluster.New(4, cluster.Perlmutter())
	world := cl.World()
	set := NewOneDSet(4, a)
	results := make([]*core.BulkSample, 4)
	_, err := cl.Run(func(r *cluster.Rank) error {
		local := ReplicatedBatches(4, r.ID, batches)
		results[r.ID] = SampleSAGE1D(r, set[r.ID], world, local, fanouts, 99)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 4; rank++ {
		local := ReplicatedBatches(4, rank, batches)
		want := core.SampleBulk(core.SAGE{}, a, local, fanouts, 99)
		if err := sameBulk(results[rank], want); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestOneDSetCoversMatrix(t *testing.T) {
	a := testGraph(101, 6, 13)
	set := NewOneDSet(4, a)
	covered := 0
	for _, od := range set {
		covered += od.Hi - od.Lo
	}
	if covered != 101 {
		t.Fatalf("blocks cover %d of 101", covered)
	}
}

func TestOneDCommunicatesMoreThan15DAtScale(t *testing.T) {
	// The design-choice claim (Buluç & Gilbert): 1D SpGEMM traffic
	// grows with p while the 1.5D scheme's scales with c. At p=8 the
	// 1D scheme must already move more bytes than the sparsity-aware
	// 1.5D with c=2.
	a := testGraph(600, 12, 14)
	batches := makeBatches(8, 8, 600)
	fanouts := []int{3, 2}
	p := 8

	cl1 := cluster.New(p, cluster.Perlmutter())
	world := cl1.World()
	oneD := NewOneDSet(p, a)
	res1, err := cl1.Run(func(r *cluster.Rank) error {
		local := ReplicatedBatches(p, r.ID, batches)
		SampleSAGE1D(r, oneD[r.ID], world, local, fanouts, 5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	cl2 := cluster.New(p, cluster.Perlmutter())
	g := cluster.NewGrid(cl2, p, 2)
	set := NewPartitionedSet(g, a, true)
	res2, err := cl2.Run(func(r *cluster.Rank) error {
		local := LocalBatches(g, r.ID, batches)
		SampleSAGEPartitioned(r, set[r.ID], local, fanouts, 5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	bytes1, bytes2 := int64(0), int64(0)
	for _, s := range res1.Ranks {
		bytes1 += s.BytesSent
	}
	for _, s := range res2.Ranks {
		bytes2 += s.BytesSent
	}
	if bytes1 <= bytes2 {
		t.Fatalf("1D (%d bytes) should exceed 1.5D (%d bytes)", bytes1, bytes2)
	}
}
