package distsample

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// OneD is the 1D block-row distributed SpGEMM baseline the paper's
// 1.5D choice is justified against (Section 5.2 cites Buluç & Gilbert:
// "1D SpGEMM algorithms are unscalable, where time increases with p").
// Both Q and A are split into p block rows with no replication; every
// stage broadcasts one whole block row of A to all ranks.
type OneD struct {
	N      int
	ALocal *sparse.CSR // this rank's block row of A (compact)
	Lo, Hi int
	P      int
}

// NewOneDSet slices A into p block rows, one per rank.
func NewOneDSet(p int, a *sparse.CSR) []*OneD {
	out := make([]*OneD, p)
	for rank := 0; rank < p; rank++ {
		lo, hi := graph.BlockRowRange(a.Rows, p, rank)
		out[rank] = &OneD{
			N:      a.Rows,
			ALocal: sparse.SliceRows(a, lo, hi),
			Lo:     lo,
			Hi:     hi,
			P:      p,
		}
	}
	return out
}

// SpGEMM1D computes P = Q·A for this rank's block row of Q: p stages,
// each broadcasting block row A_k from its owner to everyone
// (sparsity-oblivious — the scheme's defining weakness: communication
// volume grows with p because every rank receives every block).
func (od *OneD) SpGEMM1D(r *cluster.Rank, world *cluster.Comm, q *sparse.CSR) *sparse.CSR {
	acc := sparse.Zero(q.Rows, od.N)
	for k := 0; k < od.P; k++ {
		lo, hi := graph.BlockRowRange(od.N, od.P, k)
		var block *sparse.CSR
		if world.LocalIndex(r) == k {
			block = od.ALocal
		}
		blockK := cluster.Broadcast(world, r, k, block, blockBytes(block))
		qik := sparse.ColRange(q, lo, hi)
		r.ChargeMem(int64(q.NNZ()) * 8)
		prod, flops := sparse.SpGEMM(qik, blockK)
		r.ChargeSparse(flops)
		acc = sparse.AddCSR(acc, prod)
		r.ChargeMem(int64(acc.NNZ()) * 16)
		r.ChargeKernels(2)
	}
	return acc
}

// SampleSAGE1D runs bulk GraphSAGE sampling with the 1D SpGEMM — the
// scalability baseline for the 1.5D ablation.
func SampleSAGE1D(r *cluster.Rank, od *OneD, world *cluster.Comm, batches [][]int, fanouts []int, seed int64) *core.BulkSample {
	out := &core.BulkSample{Batches: batches}
	cur := core.NewFrontier(batches)
	sg := core.SAGE{}
	for l, fan := range fanouts {
		layerSeed := seed + int64(l)*1e9

		r.SetPhase(PhaseProbability)
		q := sg.BuildQ(cur, od.N)
		r.ChargeKernels(1)
		p := od.SpGEMM1D(r, world, q)

		r.SetPhase(PhaseSampling)
		ls, cost := sg.FinishStep(p, cur, fan, layerSeed)
		r.ChargeSparse(cost.SampleOps)
		r.SetPhase(PhaseExtraction)
		r.ChargeSparse(cost.ExtractOps)
		r.ChargeKernels(3)

		out.Layers = append(out.Layers, ls)
		out.Cost.Add(cost)
		cur = ls.Cols
	}
	return out
}
