package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	rep := NewReport(map[string]string{"profile": "tiny"})
	rep.Add("fig4", []map[string]any{{"p": 4, "total": 1.5}})
	rep.Add("acc", map[string]float64{"test": 0.97})

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta["profile"] != "tiny" {
		t.Fatal("meta lost")
	}
	ids := back.IDs()
	if len(ids) != 2 || ids[0] != "acc" || ids[1] != "fig4" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestReportOverwrite(t *testing.T) {
	rep := NewReport(nil)
	rep.Add("x", 1)
	rep.Add("x", 2)
	if len(rep.IDs()) != 1 {
		t.Fatal("duplicate id not replaced")
	}
}

func TestReportJSONShape(t *testing.T) {
	rep := NewReport(map[string]string{"seed": "7"})
	rep.Add("table3", []int{1, 2, 3})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"meta"`, `"results"`, `"table3"`, `"seed"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %s:\n%s", want, s)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestConcurrentAdd(t *testing.T) {
	rep := NewReport(nil)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep.Add(strings.Repeat("x", i+1), i)
		}(i)
	}
	wg.Wait()
	if len(rep.IDs()) != 20 {
		t.Fatalf("lost adds: %d", len(rep.IDs()))
	}
}
