// Package trace records experiment results in a machine-readable form
// so harness runs can be archived, diffed across code versions, and
// post-processed into plots. Each experiment contributes its typed row
// slice; the report serializes to JSON.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// LinkBytes is the stable serialization of the cluster's per-
// interconnect-tier traffic counters; experiment rows embed it so
// archived reports can be diffed on wire traffic, not just time.
type LinkBytes struct {
	IntraNode int64 `json:"intra_node"`
	InterNode int64 `json:"inter_node"`
	Host      int64 `json:"host"`
}

// Total sums the tiers.
func (lb LinkBytes) Total() int64 { return lb.IntraNode + lb.InterNode + lb.Host }

// PhysLinkUtil is the stable serialization of one physical link's
// traffic under a contention topology: the named link (an NVLink port,
// a NIC injection pipe, the fabric trunk), its capacity, the demand
// routed through it, its utilization over the run's makespan
// (bytes / (capacity · makespan)), and the peak number of concurrent
// flows that shared it (1 = never contended).
type PhysLinkUtil struct {
	Name           string  `json:"name"`
	CapacityGBps   float64 `json:"capacity_gbps"`
	Bytes          float64 `json:"bytes"`
	Utilization    float64 `json:"utilization"`
	MaxConcurrency int     `json:"max_concurrency"`
}

// Report accumulates experiment results. Safe for concurrent Add.
type Report struct {
	mu      sync.Mutex
	Meta    map[string]string `json:"meta"`
	Results map[string]any    `json:"results"`
}

// NewReport returns an empty report with the given metadata (profile,
// seed, git revision — whatever the caller wants recorded).
func NewReport(meta map[string]string) *Report {
	if meta == nil {
		meta = map[string]string{}
	}
	return &Report{Meta: meta, Results: map[string]any{}}
}

// Add records rows under the experiment id, replacing any previous
// entry for the same id.
func (r *Report) Add(id string, rows any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Results[id] = rows
}

// IDs returns the recorded experiment ids, sorted.
func (r *Report) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.Results))
	for id := range r.Results {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// WriteJSON serializes the report with stable formatting.
func (r *Report) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Meta    map[string]string `json:"meta"`
		Results map[string]any    `json:"results"`
	}{r.Meta, r.Results})
}

// ReadJSON parses a report written by WriteJSON. Row payloads come
// back as generic JSON values; use the typed accessors of the caller
// if needed.
func ReadJSON(rd io.Reader) (*Report, error) {
	var raw struct {
		Meta    map[string]string `json:"meta"`
		Results map[string]any    `json:"results"`
	}
	if err := json.NewDecoder(rd).Decode(&raw); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	rep := NewReport(raw.Meta)
	for id, rows := range raw.Results {
		rep.Add(id, rows)
	}
	return rep, nil
}
