// Package datasets builds the synthetic stand-ins for the paper's
// evaluation datasets (Table 3): OGB Products, HipMCL Protein and OGB
// Papers100M. The real datasets need hundreds of gigabytes and the
// paper's Protein features are random anyway (Section 7.1), so each
// stand-in is an R-MAT graph preserving the original's distinguishing
// shape: Protein-like is by far the densest, Products-like is mid
// density, Papers-like has the most vertices and lowest density (and
// is directed). Those density ratios drive the paper's scaling
// behaviour (Section 8.1.1 attributes Quiver's non-scaling on Protein
// and Products to their average degrees of 241 and 53 vs. Papers' 29).
package datasets

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/dense"
	"repro/internal/graph"
)

// Profile selects a dataset size tier.
type Profile int

const (
	// Tiny is for unit tests: hundreds of vertices.
	Tiny Profile = iota
	// Small is for examples: a few thousand vertices.
	Small
	// Bench is for the experiment harness: tens to hundreds of
	// thousands of vertices, preserving the paper's density ratios.
	Bench
	// Scale is for the scaling experiment: a modest graph with many
	// small batches (512 per epoch), so weak scaling has at least one
	// batch per rank all the way to p=512 while a single simulated
	// epoch stays cheap enough to sweep GPU counts, algorithms,
	// collective schedules and topologies in one run.
	Scale
)

func (p Profile) String() string {
	switch p {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Bench:
		return "bench"
	case Scale:
		return "scale"
	}
	return fmt.Sprintf("profile(%d)", int(p))
}

// Dataset bundles a graph with features, labels, and the training
// configuration of Table 4.
type Dataset struct {
	Name       string
	Graph      *graph.Graph
	Features   *dense.Matrix
	Labels     []int
	NumClasses int

	Train, Val, Test []int

	// BatchSize and Fanouts follow Table 4 (scaled): SAGE trains with
	// a fanout per layer; LayerWidth is the LADIES layer size s.
	BatchSize  int
	Fanouts    []int
	LayerWidth int
}

// NumBatches returns the number of minibatches per epoch.
func (d *Dataset) NumBatches() int {
	return (len(d.Train) + d.BatchSize - 1) / d.BatchSize
}

// Batches splits the training set into minibatches.
func (d *Dataset) Batches() [][]int { return graph.Batches(d.Train, d.BatchSize) }

type preset struct {
	scale      int
	edgeFactor int
	features   int
	batchSize  int
	numBatches int
	fanouts    []int
	layerWidth int
}

// The Bench tier preserves Table 3's ordering of vertex counts
// (Papers ≫ Protein > Products becomes Papers > Protein = Products),
// density (Protein ≫ Products ≫ Papers) and batch counts
// (Papers > Protein > Products), scaled to single-machine simulation.
var presets = map[string]map[Profile]preset{
	"products": {
		Tiny:  {scale: 8, edgeFactor: 8, features: 8, batchSize: 16, numBatches: 4, fanouts: []int{5, 3}, layerWidth: 16},
		Small: {scale: 12, edgeFactor: 27, features: 16, batchSize: 64, numBatches: 8, fanouts: []int{10, 5, 3}, layerWidth: 64},
		Bench: {scale: 15, edgeFactor: 53, features: 32, batchSize: 64, numBatches: 96, fanouts: []int{10, 5, 3}, layerWidth: 64},
		Scale: {scale: 14, edgeFactor: 8, features: 8, batchSize: 16, numBatches: 512, fanouts: []int{5, 3}, layerWidth: 16},
	},
	"protein": {
		Tiny:  {scale: 8, edgeFactor: 16, features: 8, batchSize: 16, numBatches: 4, fanouts: []int{5, 3}, layerWidth: 16},
		Small: {scale: 12, edgeFactor: 60, features: 16, batchSize: 64, numBatches: 8, fanouts: []int{10, 5, 3}, layerWidth: 64},
		Bench: {scale: 15, edgeFactor: 120, features: 32, batchSize: 64, numBatches: 192, fanouts: []int{10, 5, 3}, layerWidth: 64},
		Scale: {scale: 14, edgeFactor: 16, features: 8, batchSize: 16, numBatches: 512, fanouts: []int{5, 3}, layerWidth: 16},
	},
	"papers": {
		Tiny:  {scale: 8, edgeFactor: 4, features: 8, batchSize: 16, numBatches: 4, fanouts: []int{5, 3}, layerWidth: 16},
		Small: {scale: 12, edgeFactor: 15, features: 16, batchSize: 64, numBatches: 8, fanouts: []int{10, 5, 3}, layerWidth: 64},
		Bench: {scale: 17, edgeFactor: 29, features: 32, batchSize: 64, numBatches: 256, fanouts: []int{10, 5, 3}, layerWidth: 64},
		Scale: {scale: 14, edgeFactor: 4, features: 8, batchSize: 16, numBatches: 512, fanouts: []int{5, 3}, layerWidth: 16},
	},
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Dataset{}
)

// ProductsLike returns the OGB-Products analog at the given profile.
func ProductsLike(p Profile) *Dataset { return load("products", p) }

// ProteinLike returns the HipMCL-Protein analog at the given profile.
// Like the original, its features are random: it exists to measure
// performance on a very dense graph.
func ProteinLike(p Profile) *Dataset { return load("protein", p) }

// PapersLike returns the OGB-Papers100M analog at the given profile
// (directed, highest vertex count, lowest density).
func PapersLike(p Profile) *Dataset { return load("papers", p) }

// ByName returns the named dataset ("products", "protein", "papers").
func ByName(name string, p Profile) (*Dataset, error) {
	if _, ok := presets[name]; !ok {
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	return load(name, p), nil
}

// Names lists the available perf datasets in presentation order.
func Names() []string { return []string{"products", "protein", "papers"} }

func load(name string, p Profile) *Dataset {
	key := fmt.Sprintf("%s/%s", name, p)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if d, ok := cache[key]; ok {
		return d
	}
	d := build(name, p)
	cache[key] = d
	return d
}

func build(name string, p Profile) *Dataset {
	ps := presets[name][p]
	seed := int64(len(name))*1000 + int64(p)
	g := graph.RMAT(graph.RMATConfig{
		Scale:      ps.scale,
		EdgeFactor: ps.edgeFactor,
		A:          0.57, B: 0.19, C: 0.19,
		Seed: seed,
	})
	// Every vertex must have neighbors to sample.
	g = graph.EnsureMinOutDegree(g, 3, seed+1)
	n := g.NumVertices()

	rng := rand.New(rand.NewSource(seed + 2))
	feats := dense.New(n, ps.features)
	for i := range feats.Data {
		feats.Data[i] = rng.NormFloat64()
	}
	const classes = 47 // OGB-Products class count
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}

	perm := rng.Perm(n)
	trainWant := ps.numBatches * ps.batchSize
	if trainWant > n*6/10 {
		trainWant = n * 6 / 10
	}
	valWant := n / 10
	d := &Dataset{
		Name:       name,
		Graph:      g,
		Features:   feats,
		Labels:     labels,
		NumClasses: classes,
		Train:      perm[:trainWant],
		Val:        perm[trainWant : trainWant+valWant],
		Test:       perm[trainWant+valWant:],
		BatchSize:  ps.batchSize,
		Fanouts:    ps.fanouts,
		LayerWidth: ps.layerWidth,
	}
	return d
}
