package datasets

import (
	"math/rand"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// SBMConfig parameterizes a stochastic-block-model dataset whose
// labels are learnable from features plus graph structure. It backs
// the accuracy experiment (Section 8.1.3): the paper verifies that the
// bulk-sampling optimizations do not change model accuracy, which
// requires a dataset a GNN can actually learn.
type SBMConfig struct {
	N          int
	Classes    int
	Features   int
	IntraDeg   float64 // expected within-community out-degree
	InterDeg   float64 // expected cross-community out-degree
	Noise      float64 // feature noise stddev around the class centroid
	BatchSize  int
	Fanouts    []int
	LayerWidth int
	Seed       int64
}

// SBM generates a stochastic block model graph with class-centroid
// features: vertex v of class c has features centroid_c + Noise·N(0,1)
// and preferentially connects within its class, so both the feature
// and structure channels carry label signal.
func SBM(cfg SBMConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n, c := cfg.N, cfg.Classes
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i * c / n // contiguous communities
	}

	coo := sparse.NewCOO(n, n, int(float64(n)*(cfg.IntraDeg+cfg.InterDeg))+n)
	seen := map[int64]struct{}{}
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		key := int64(u)<<32 | int64(v)
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		coo.Add(u, v, 1)
	}
	commSize := (n + c - 1) / c
	for u := 0; u < n; u++ {
		base := labels[u] * n / c
		intra := int(cfg.IntraDeg)
		for t := 0; t < intra; t++ {
			addEdge(u, base+rng.Intn(min(commSize, n-base)))
		}
		inter := int(cfg.InterDeg)
		for t := 0; t < inter; t++ {
			addEdge(u, rng.Intn(n))
		}
	}
	g := graph.EnsureMinOutDegree(graph.New(coo.ToCSR()), 3, cfg.Seed+1)

	centroids := dense.New(c, cfg.Features)
	for i := range centroids.Data {
		centroids.Data[i] = rng.NormFloat64()
	}
	feats := dense.New(n, cfg.Features)
	for v := 0; v < n; v++ {
		cen := centroids.RowView(labels[v])
		dst := feats.RowView(v)
		for j := range dst {
			dst[j] = cen[j] + cfg.Noise*rng.NormFloat64()
		}
	}

	perm := rng.Perm(n)
	nTrain, nVal := n*6/10, n*2/10
	return &Dataset{
		Name:       "sbm",
		Graph:      g,
		Features:   feats,
		Labels:     labels,
		NumClasses: c,
		Train:      perm[:nTrain],
		Val:        perm[nTrain : nTrain+nVal],
		Test:       perm[nTrain+nVal:],
		BatchSize:  cfg.BatchSize,
		Fanouts:    cfg.Fanouts,
		LayerWidth: cfg.LayerWidth,
	}
}

// DefaultSBM returns the accuracy-experiment dataset: 16 communities,
// moderately noisy features, 3-layer fanouts.
func DefaultSBM() *Dataset {
	return SBM(SBMConfig{
		N:          4096,
		Classes:    16,
		Features:   16,
		IntraDeg:   12,
		InterDeg:   3,
		Noise:      0.6,
		BatchSize:  64,
		Fanouts:    []int{10, 5, 3},
		LayerWidth: 64,
		Seed:       99,
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
