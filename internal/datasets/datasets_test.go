package datasets

import (
	"testing"
)

func TestTinyPresetsLoad(t *testing.T) {
	for _, name := range Names() {
		d, err := ByName(name, Tiny)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Graph.Adj.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Features.Rows != d.Graph.NumVertices() {
			t.Fatalf("%s: %d feature rows for %d vertices", name, d.Features.Rows, d.Graph.NumVertices())
		}
		if len(d.Labels) != d.Graph.NumVertices() {
			t.Fatalf("%s: label count mismatch", name)
		}
		if len(d.Train) == 0 || len(d.Test) == 0 {
			t.Fatalf("%s: empty split", name)
		}
		for _, v := range d.Train {
			if v < 0 || v >= d.Graph.NumVertices() {
				t.Fatalf("%s: train vertex %d out of range", name, v)
			}
		}
	}
}

func TestDensityOrderingPreserved(t *testing.T) {
	// Table 3 shape: Protein is densest, Papers is sparsest.
	products := ProductsLike(Tiny)
	protein := ProteinLike(Tiny)
	papers := PapersLike(Tiny)
	if !(protein.Graph.AvgDegree() > products.Graph.AvgDegree()) {
		t.Fatalf("protein (%.1f) not denser than products (%.1f)",
			protein.Graph.AvgDegree(), products.Graph.AvgDegree())
	}
	if !(products.Graph.AvgDegree() > papers.Graph.AvgDegree()) {
		t.Fatalf("products (%.1f) not denser than papers (%.1f)",
			products.Graph.AvgDegree(), papers.Graph.AvgDegree())
	}
}

func TestDatasetCached(t *testing.T) {
	a := ProductsLike(Tiny)
	b := ProductsLike(Tiny)
	if a != b {
		t.Fatal("dataset not cached")
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := ByName("nope", Tiny); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestBatchesCoverTrainSet(t *testing.T) {
	d := ProductsLike(Tiny)
	bs := d.Batches()
	if len(bs) != d.NumBatches() {
		t.Fatalf("Batches()=%d, NumBatches()=%d", len(bs), d.NumBatches())
	}
	total := 0
	for _, b := range bs {
		total += len(b)
	}
	if total != len(d.Train) {
		t.Fatalf("batches cover %d of %d train vertices", total, len(d.Train))
	}
}

func TestSBMStructure(t *testing.T) {
	d := SBM(SBMConfig{
		N: 400, Classes: 4, Features: 8,
		IntraDeg: 8, InterDeg: 2, Noise: 0.5,
		BatchSize: 32, Fanouts: []int{5, 3}, LayerWidth: 32, Seed: 1,
	})
	if err := d.Graph.Adj.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumClasses != 4 {
		t.Fatalf("classes = %d", d.NumClasses)
	}
	// Labels must be contiguous communities covering all classes.
	counts := make([]int, 4)
	for _, l := range d.Labels {
		counts[l]++
	}
	for c, cnt := range counts {
		if cnt == 0 {
			t.Fatalf("class %d empty", c)
		}
	}
	// Homophily: most edges must stay within a community.
	intra, total := 0, 0
	for u := 0; u < d.Graph.NumVertices(); u++ {
		for _, v := range d.Graph.Neighbors(u) {
			total++
			if d.Labels[u] == d.Labels[v] {
				intra++
			}
		}
	}
	if float64(intra)/float64(total) < 0.55 {
		t.Fatalf("homophily %.2f too low", float64(intra)/float64(total))
	}
}

func TestSBMFeaturesCarrySignal(t *testing.T) {
	d := DefaultSBM()
	// Mean within-class feature distance must be smaller than
	// cross-class distance.
	distance := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			dd := a[i] - b[i]
			s += dd * dd
		}
		return s
	}
	var intra, inter float64
	var nIntra, nInter int
	for v := 0; v < 512; v++ {
		for u := v + 1; u < 512; u++ {
			dd := distance(d.Features.RowView(v), d.Features.RowView(u))
			if d.Labels[v] == d.Labels[u] {
				intra += dd
				nIntra++
			} else {
				inter += dd
				nInter++
			}
		}
	}
	if intra/float64(nIntra) >= inter/float64(nInter) {
		t.Fatal("within-class feature distance not smaller than cross-class")
	}
}

func TestSplitsDisjoint(t *testing.T) {
	d := DefaultSBM()
	seen := map[int]string{}
	for _, v := range d.Train {
		seen[v] = "train"
	}
	for _, v := range d.Val {
		if seen[v] != "" {
			t.Fatalf("vertex %d in train and val", v)
		}
		seen[v] = "val"
	}
	for _, v := range d.Test {
		if seen[v] != "" {
			t.Fatalf("vertex %d in %s and test", v, seen[v])
		}
	}
}
