// Package dense provides the row-major dense matrix kernels used for
// GNN forward and backward propagation: blocked parallel matrix
// multiplication, elementwise activations, softmax cross-entropy, and
// parameter initialization.
package dense

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a row-major dense float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps an existing row-major slice. The slice is not copied.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("dense: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// RowView returns a view of row i; mutations are visible in m.
func (m *Matrix) RowView(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// Bytes returns the payload size used by communication cost modeling.
func (m *Matrix) Bytes() int { return 8 * len(m.Data) }

// Zero sets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// AddInPlace adds b elementwise into m.
func (m *Matrix) AddInPlace(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("dense: AddInPlace shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, b.Rows, b.Cols))
	}
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
}

// Scale multiplies every element by f.
func (m *Matrix) Scale(f float64) {
	for i := range m.Data {
		m.Data[i] *= f
	}
}

// MatMul computes C = A * B with a cache-blocked loop, parallelized
// over row stripes of A. The returned flop count is multiply-add
// pairs (A.Rows * A.Cols * B.Cols).
func MatMul(a, b *Matrix) (*Matrix, int64) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: MatMul dims %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*c.Cols : (i+1)*c.Cols]
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			// Pairs of k share one pass over ci. Each ci[j] still
			// accumulates its terms in ascending-k order — (c+x)+y is
			// the same schedule whether the adds sit in one loop body
			// or two — so results are bit-identical to the scalar
			// loop; the zero-skip short-circuits are kept exact too.
			k := 0
			for ; k+1 < len(ai); k += 2 {
				a0, a1 := ai[k], ai[k+1]
				if a0 == 0 && a1 == 0 {
					continue
				}
				b0 := b.Data[k*b.Cols : (k+1)*b.Cols]
				b1 := b.Data[(k+1)*b.Cols : (k+2)*b.Cols]
				switch {
				case a1 == 0:
					for j := range ci {
						ci[j] += a0 * b0[j]
					}
				case a0 == 0:
					for j := range ci {
						ci[j] += a1 * b1[j]
					}
				default:
					b1 := b1[:len(b0)]
					for j := range ci {
						// Left-associated: (c + a0·b0) + a1·b1, the
						// scalar loop's exact schedule.
						ci[j] = ci[j] + a0*b0[j] + a1*b1[j]
					}
				}
			}
			if k < len(ai) {
				if av := ai[k]; av != 0 {
					bk := b.Data[k*b.Cols : (k+1)*b.Cols]
					for j := range ci {
						ci[j] += av * bk[j]
					}
				}
			}
		}
	})
	return c, int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
}

// MatMulT computes C = A * B^T.
func MatMulT(a, b *Matrix) (*Matrix, int64) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MatMulT dims %dx%d * (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Rows)
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			ci := c.Data[i*c.Cols : (i+1)*c.Cols]
			// Two output columns per pass: the dot-product chains of
			// ci[j] and ci[j+1] are independent accumulators, so
			// interleaving them doubles ILP on the serial FP-add
			// chain while each chain keeps its exact k-order.
			j := 0
			for ; j+1 < b.Rows; j += 2 {
				b0 := b.Data[j*b.Cols : (j+1)*b.Cols]
				b1 := b.Data[(j+1)*b.Cols : (j+2)*b.Cols]
				b1 = b1[:len(b0)]
				s0, s1 := 0.0, 0.0
				for k := range ai {
					av := ai[k]
					s0 += av * b0[k]
					s1 += av * b1[k]
				}
				ci[j] = s0
				ci[j+1] = s1
			}
			if j < b.Rows {
				bj := b.Data[j*b.Cols : (j+1)*b.Cols]
				s := 0.0
				for k := range ai {
					s += ai[k] * bj[k]
				}
				ci[j] = s
			}
		}
	})
	return c, int64(a.Rows) * int64(a.Cols) * int64(b.Rows)
}

// TMatMul computes C = A^T * B.
func TMatMul(a, b *Matrix) (*Matrix, int64) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("dense: TMatMul dims (%dx%d)^T * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Cols, b.Cols)
	// Serial accumulation: output is small (feature x feature) in GNN
	// training, while a.Rows (the batch dimension) is large. Row pairs
	// share one pass over each ck stripe; for a fixed (k, j) the adds
	// still land in ascending-i order — (c + xᵢ) + xᵢ₊₁ left-associated
	// — so the result is bit-identical to the row-at-a-time loop.
	i := 0
	for ; i+1 < a.Rows; i += 2 {
		a0 := a.Data[i*a.Cols : (i+1)*a.Cols]
		a1 := a.Data[(i+1)*a.Cols : (i+2)*a.Cols]
		b0 := b.Data[i*b.Cols : (i+1)*b.Cols]
		b1 := b.Data[(i+1)*b.Cols : (i+2)*b.Cols]
		b1 = b1[:len(b0)]
		for k := range a0 {
			v0, v1 := a0[k], a1[k]
			if v0 == 0 && v1 == 0 {
				continue
			}
			ck := c.Data[k*c.Cols : (k+1)*c.Cols]
			switch {
			case v1 == 0:
				for j := range b0 {
					ck[j] += v0 * b0[j]
				}
			case v0 == 0:
				for j := range b1 {
					ck[j] += v1 * b1[j]
				}
			default:
				for j := range b0 {
					ck[j] = ck[j] + v0*b0[j] + v1*b1[j]
				}
			}
		}
	}
	if i < a.Rows {
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		bi := b.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range ai {
			if av == 0 {
				continue
			}
			ck := c.Data[k*c.Cols : (k+1)*c.Cols]
			for j := range bi {
				ck[j] += av * bi[j]
			}
		}
	}
	return c, int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
}

// parallelRows splits [0, rows) across GOMAXPROCS workers.
func parallelRows(rows int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		f(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ReLU applies max(0, x) elementwise, returning a new matrix.
func ReLU(m *Matrix) *Matrix {
	out := m.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// ReLUGrad masks grad by the positivity of pre-activation z:
// out[i] = grad[i] if z[i] > 0 else 0.
func ReLUGrad(z, grad *Matrix) *Matrix {
	if z.Rows != grad.Rows || z.Cols != grad.Cols {
		panic("dense: ReLUGrad shape mismatch")
	}
	out := grad.Clone()
	for i := range out.Data {
		if z.Data[i] <= 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// LogSoftmaxRows computes the log-softmax of each row, returning a new
// matrix. Numerically stabilized by subtracting the row max.
func LogSoftmaxRows(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - max)
		}
		lse := max + math.Log(sum)
		dst := out.RowView(i)
		for j, v := range row {
			dst[j] = v - lse
		}
	}
	return out
}

// CrossEntropy computes the mean negative log-likelihood of labels
// under row-wise softmax of logits, together with the gradient with
// respect to the logits (softmax - onehot, scaled by 1/rows).
func CrossEntropy(logits *Matrix, labels []int) (loss float64, grad *Matrix) {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("dense: CrossEntropy got %d labels for %d rows", len(labels), logits.Rows))
	}
	logp := LogSoftmaxRows(logits)
	grad = New(logits.Rows, logits.Cols)
	inv := 1.0 / float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		y := labels[i]
		if y < 0 || y >= logits.Cols {
			panic(fmt.Sprintf("dense: label %d outside %d classes", y, logits.Cols))
		}
		loss -= logp.At(i, y)
		lp := logp.RowView(i)
		g := grad.RowView(i)
		for j := range g {
			g[j] = math.Exp(lp[j]) * inv
		}
		g[y] -= inv
	}
	return loss * inv, grad
}

// Argmax returns the index of the maximum element of each row.
func Argmax(m *Matrix) []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		best, bv := 0, row[0]
		for j, v := range row {
			if v > bv {
				best, bv = j, v
			}
		}
		out[i] = best
	}
	return out
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *Matrix, labels []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	pred := Argmax(logits)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// XavierInit fills m with Glorot-uniform values using rng.
func XavierInit(m *Matrix, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}
