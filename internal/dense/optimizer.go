package dense

import "math"

// Optimizer updates a flat parameter vector given its gradient.
type Optimizer interface {
	// Step applies one update; params and grads must have equal length
	// across all calls.
	Step(params, grads []float64)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []float64
}

// NewSGD returns an SGD optimizer with the given learning rate and
// momentum coefficient (0 disables momentum).
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

// Step applies one SGD update.
func (o *SGD) Step(params, grads []float64) {
	if o.Momentum == 0 {
		for i := range params {
			params[i] -= o.LR * grads[i]
		}
		return
	}
	if o.velocity == nil {
		o.velocity = make([]float64, len(params))
	}
	for i := range params {
		o.velocity[i] = o.Momentum*o.velocity[i] + grads[i]
		params[i] -= o.LR * o.velocity[i]
	}
}

// Adam implements the Adam optimizer (Kingma & Ba, 2015), the optimizer
// used by the OGB GraphSAGE reference training recipes. A nonzero
// WeightDecay applies decoupled (AdamW-style) decay.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64
	t                     int
	m, v                  []float64
}

// NewAdam returns an Adam optimizer with standard defaults for the
// unspecified coefficients.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// NewAdamW returns an Adam optimizer with decoupled weight decay.
func NewAdamW(lr, decay float64) *Adam {
	o := NewAdam(lr)
	o.WeightDecay = decay
	return o
}

// State returns the optimizer's step count and copies of the first-
// and second-moment vectors (nil before the first Step). Together with
// SetState it lets a checkpoint capture and restore mid-training
// optimizer state bit-for-bit.
func (o *Adam) State() (t int, m, v []float64) {
	return o.t, append([]float64(nil), o.m...), append([]float64(nil), o.v...)
}

// SetState restores a state previously read via State. The moment
// vectors are copied in; passing nil slices resets the optimizer to
// its pre-first-Step lazy-init state.
func (o *Adam) SetState(t int, m, v []float64) {
	o.t = t
	if m == nil {
		o.m, o.v = nil, nil
		return
	}
	o.m = append([]float64(nil), m...)
	o.v = append([]float64(nil), v...)
}

// Step applies one Adam update.
func (o *Adam) Step(params, grads []float64) {
	if o.m == nil {
		o.m = make([]float64, len(params))
		o.v = make([]float64, len(params))
	}
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i := range params {
		g := grads[i]
		o.m[i] = o.Beta1*o.m[i] + (1-o.Beta1)*g
		o.v[i] = o.Beta2*o.v[i] + (1-o.Beta2)*g*g
		mh := o.m[i] / c1
		vh := o.v[i] / c2
		params[i] -= o.LR * (mh/(math.Sqrt(vh)+o.Eps) + o.WeightDecay*params[i])
	}
}
