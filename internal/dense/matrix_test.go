package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func naiveMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			for j := 0; j < b.Cols; j++ {
				c.Data[i*c.Cols+j] += a.At(i, k) * b.At(k, j)
			}
		}
	}
	return c
}

func matNear(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		a := randMat(rng, 1+rng.Intn(20), 1+rng.Intn(20))
		b := randMat(rng, a.Cols, 1+rng.Intn(20))
		got, flops := MatMul(a, b)
		if !matNear(got, naiveMul(a, b), 1e-9) {
			t.Fatalf("trial %d: MatMul mismatch", trial)
		}
		if flops != int64(a.Rows)*int64(a.Cols)*int64(b.Cols) {
			t.Fatalf("flops wrong: %d", flops)
		}
	}
}

func TestMatMulTAndTMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		a := randMat(rng, 1+rng.Intn(15), 1+rng.Intn(15))
		b := randMat(rng, 1+rng.Intn(15), a.Cols)
		abT, _ := MatMulT(a, b)
		bT := New(b.Cols, b.Rows)
		for i := 0; i < b.Rows; i++ {
			for j := 0; j < b.Cols; j++ {
				bT.Set(j, i, b.At(i, j))
			}
		}
		if !matNear(abT, naiveMul(a, bT), 1e-9) {
			t.Fatalf("trial %d: MatMulT mismatch", trial)
		}

		c := randMat(rng, a.Rows, 1+rng.Intn(15))
		aTc, _ := TMatMul(a, c)
		aT := New(a.Cols, a.Rows)
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < a.Cols; j++ {
				aT.Set(j, i, a.At(i, j))
			}
		}
		if !matNear(aTc, naiveMul(aT, c), 1e-9) {
			t.Fatalf("trial %d: TMatMul mismatch", trial)
		}
	}
}

func TestMatMulDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

func TestReLUAndGrad(t *testing.T) {
	z := FromSlice(2, 2, []float64{-1, 2, 0, 3})
	r := ReLU(z)
	want := []float64{0, 2, 0, 3}
	for i := range want {
		if r.Data[i] != want[i] {
			t.Fatalf("ReLU = %v, want %v", r.Data, want)
		}
	}
	g := ReLUGrad(z, FromSlice(2, 2, []float64{10, 10, 10, 10}))
	wantG := []float64{0, 10, 0, 10}
	for i := range wantG {
		if g.Data[i] != wantG[i] {
			t.Fatalf("ReLUGrad = %v, want %v", g.Data, wantG)
		}
	}
}

func TestLogSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMat(rng, 6, 9)
	m.Scale(30) // stress numerical stability
	lp := LogSoftmaxRows(m)
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		for _, v := range lp.RowView(i) {
			sum += math.Exp(v)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d softmax sums to %v", i, sum)
		}
	}
}

func TestCrossEntropyGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := randMat(rng, 4, 5)
	labels := []int{1, 0, 4, 2}
	_, grad := CrossEntropy(logits, labels)
	const eps = 1e-6
	for i := 0; i < logits.Rows; i++ {
		for j := 0; j < logits.Cols; j++ {
			orig := logits.At(i, j)
			logits.Set(i, j, orig+eps)
			lp, _ := CrossEntropy(logits, labels)
			logits.Set(i, j, orig-eps)
			lm, _ := CrossEntropy(logits, labels)
			logits.Set(i, j, orig)
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-grad.At(i, j)) > 1e-5 {
				t.Fatalf("grad(%d,%d) = %v, numeric %v", i, j, grad.At(i, j), num)
			}
		}
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	logits := FromSlice(2, 3, []float64{100, 0, 0, 0, 100, 0})
	loss, _ := CrossEntropy(logits, []int{0, 1})
	if loss > 1e-6 {
		t.Fatalf("perfect prediction loss = %v", loss)
	}
}

func TestAccuracy(t *testing.T) {
	logits := FromSlice(3, 2, []float64{1, 0, 0, 1, 1, 0})
	acc := Accuracy(logits, []int{0, 1, 1})
	if math.Abs(acc-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(30, 40)
	XavierInit(m, rng)
	limit := math.Sqrt(6.0 / 70.0)
	nonzero := 0
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("init value %v exceeds limit %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(m.Data)/2 {
		t.Fatal("init left most entries zero")
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// minimize (x-3)^2 + (y+2)^2
	params := []float64{0, 0}
	opt := NewSGD(0.1, 0.9)
	for iter := 0; iter < 200; iter++ {
		g := []float64{2 * (params[0] - 3), 2 * (params[1] + 2)}
		opt.Step(params, g)
	}
	if math.Abs(params[0]-3) > 1e-3 || math.Abs(params[1]+2) > 1e-3 {
		t.Fatalf("SGD converged to %v", params)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	params := []float64{5, -5}
	opt := NewAdam(0.05)
	for iter := 0; iter < 2000; iter++ {
		g := []float64{2 * (params[0] - 3), 2 * (params[1] + 2)}
		opt.Step(params, g)
	}
	if math.Abs(params[0]-3) > 1e-2 || math.Abs(params[1]+2) > 1e-2 {
		t.Fatalf("Adam converged to %v", params)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 4, 5)
		b := randMat(rng, 5, 6)
		c := randMat(rng, 6, 3)
		ab, _ := MatMul(a, b)
		abc1, _ := MatMul(ab, c)
		bc, _ := MatMul(b, c)
		abc2, _ := MatMul(a, bc)
		return matNear(abc1, abc2, 1e-8)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddInPlaceAndScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})
	a.AddInPlace(b)
	a.Scale(0.5)
	want := []float64{5.5, 11, 16.5, 22}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("got %v, want %v", a.Data, want)
		}
	}
}

func TestAdamWDecaysUnusedParams(t *testing.T) {
	// With zero gradient, decoupled weight decay must still shrink the
	// parameter toward zero.
	params := []float64{1.0}
	opt := NewAdamW(0.1, 0.1)
	for i := 0; i < 50; i++ {
		opt.Step(params, []float64{0})
	}
	if params[0] >= 1.0 || params[0] < 0 {
		t.Fatalf("weight decay failed: %v", params[0])
	}
}

func TestFromSliceWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestAddInPlaceShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).AddInPlace(New(2, 3))
}

func TestReLUGradShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ReLUGrad(New(2, 2), New(3, 2))
}

func TestCrossEntropyBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossEntropy(New(1, 3), []int{5})
}

func TestCrossEntropyLabelCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossEntropy(New(2, 3), []int{0})
}

func TestAccuracyEmptyMatrix(t *testing.T) {
	if Accuracy(New(0, 3), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At broken")
	}
	rv := m.RowView(1)
	rv[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("RowView must alias")
	}
	if m.Bytes() != 48 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero failed")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases")
	}
}

func TestTMatMulDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TMatMul(New(2, 3), New(3, 3))
}

func TestMatMulTDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMulT(New(2, 3), New(2, 4))
}
