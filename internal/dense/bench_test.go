package dense

import (
	"math/rand"
	"testing"
)

func benchMat(r, c int) *Matrix {
	rng := rand.New(rand.NewSource(1))
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMatMul(b *testing.B) {
	x := benchMat(512, 64)
	y := benchMat(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulT(b *testing.B) {
	x := benchMat(512, 64)
	y := benchMat(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT(x, y)
	}
}

func BenchmarkCrossEntropy(b *testing.B) {
	logits := benchMat(1024, 47)
	labels := make([]int, 1024)
	for i := range labels {
		labels[i] = i % 47
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrossEntropy(logits, labels)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	params := make([]float64, 100000)
	grads := make([]float64, 100000)
	for i := range grads {
		grads[i] = 0.01
	}
	opt := NewAdam(0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(params, grads)
	}
}
