package cliutil

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datasets"
)

// The four CLIs (trainer, gnnbench, compare, datagen) share this flag
// vocabulary; these tables are the single conformance suite for it.

func TestParseProfileAccepts(t *testing.T) {
	want := map[string]datasets.Profile{
		"tiny":  datasets.Tiny,
		"small": datasets.Small,
		"scale": datasets.Scale,
		"bench": datasets.Bench,
	}
	for in, p := range want {
		got, err := ParseProfile(in)
		if err != nil || got != p {
			t.Errorf("ParseProfile(%q) = %v, %v; want %v", in, got, err, p)
		}
	}
}

func TestParseProfileRejects(t *testing.T) {
	for _, in := range []string{"", "Tiny", "TINY", "medium", "bench ", "tiny,small", "0"} {
		if _, err := ParseProfile(in); err == nil {
			t.Errorf("ParseProfile(%q) accepted", in)
		}
	}
}

func TestParseIntsAccepts(t *testing.T) {
	cases := map[string][]int{
		"4":           {4},
		"4,8,16":      {4, 8, 16},
		" 4 , 8 ":     {4, 8},
		"0":           {0},
		"-3":          {-3},
		"512,512,512": {512, 512, 512},
	}
	for in, want := range cases {
		got, err := ParseInts(in)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("ParseInts(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestParseIntsRejects(t *testing.T) {
	for _, in := range []string{"", "a", "4,", ",4", "4;8", "1.5", "4,,8", "4 8"} {
		if _, err := ParseInts(in); err == nil {
			t.Errorf("ParseInts(%q) accepted", in)
		}
	}
}

func TestParseGPUCountsAccepts(t *testing.T) {
	got, err := ParseGPUCounts("4,8,512")
	if err != nil || !reflect.DeepEqual(got, []int{4, 8, 512}) {
		t.Fatalf("ParseGPUCounts = %v, %v", got, err)
	}
}

func TestParseGPUCountsRejects(t *testing.T) {
	for _, in := range []string{"", "0", "-4", "4,0,8", "4,-1", "p16", "16x"} {
		if _, err := ParseGPUCounts(in); err == nil {
			t.Errorf("ParseGPUCounts(%q) accepted", in)
		}
	}
}

func TestParseSweepWorkersAccepts(t *testing.T) {
	cases := map[string]int{
		"":          0, // unset -> GOMAXPROCS at run time
		"default":   0,
		" default ": 0,
		"1":         1, // serial
		"2":         2,
		" 8 ":       8,
		"128":       128,
	}
	for in, want := range cases {
		got, err := ParseSweepWorkers(in)
		if err != nil || got != want {
			t.Errorf("ParseSweepWorkers(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
}

func TestParseSweepWorkersRejects(t *testing.T) {
	for _, in := range []string{"0", "-1", "-8", "two", "1.5", "4,8", "8x", "GOMAXPROCS"} {
		if _, err := ParseSweepWorkers(in); err == nil {
			t.Errorf("ParseSweepWorkers(%q) accepted", in)
		}
	}
}

func TestParsePerfRepsAccepts(t *testing.T) {
	cases := map[string]int{"": 0, "default": 0, "1": 1, "5": 5, " 9 ": 9}
	for in, want := range cases {
		got, err := ParsePerfReps(in)
		if err != nil || got != want {
			t.Errorf("ParsePerfReps(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
}

func TestParsePerfRepsRejects(t *testing.T) {
	for _, in := range []string{"0", "-5", "five", "2.5", "3,5"} {
		if _, err := ParsePerfReps(in); err == nil {
			t.Errorf("ParsePerfReps(%q) accepted", in)
		}
	}
}

// Contradictory flag combinations: experiment-scoped flags must error,
// not no-op, when another experiment is selected.
func TestRequireExperimentTable(t *testing.T) {
	accept := []struct{ flag, value, experiment, want string }{
		{"perfout", "", "scaling", "perf"},         // unset anywhere
		{"perfreps", "default", "scaling", "perf"}, // default anywhere
		{"perfout", "BENCH_0009.json", "perf", "perf"},
		{"perfbaseline", "BENCH_0008.json", "perf", "perf"},
		{"perfreps", "9", "perf", "perf"},
	}
	for _, c := range accept {
		if err := RequireExperiment(c.flag, c.value, c.experiment, c.want); err != nil {
			t.Errorf("RequireExperiment(%q, %q, %q, %q) rejected: %v", c.flag, c.value, c.experiment, c.want, err)
		}
	}
	reject := []struct{ flag, value, experiment, want string }{
		{"perfout", "BENCH_0009.json", "scaling", "perf"},
		{"perfbaseline", "BENCH_0008.json", "all", "perf"},
		{"perfreps", "9", "fig4", "perf"},
	}
	for _, c := range reject {
		if err := RequireExperiment(c.flag, c.value, c.experiment, c.want); err == nil {
			t.Errorf("RequireExperiment(%q, %q, %q, %q) accepted", c.flag, c.value, c.experiment, c.want)
		}
	}
}

// -allreduce / -alltoall accept/reject tables: the CLIs hand these
// straight to cluster.ParseCollectives, pinned here so a vocabulary
// change cannot slip past the shared flag surface unnoticed.
func TestCollectivesFlagTable(t *testing.T) {
	accept := []struct{ allreduce, alltoall string }{
		{"default", "default"},
		{"", ""}, // empty = default
		{"flat", "flat"},
		{"tree", "bruck"}, // synonyms
		{"Ring", "Pairwise"},
		{"ring", "pairwise"},
		{"hier", "default"},
		{"hierarchical", "flat"},
		{"flattree", "flattree"},
	}
	for _, c := range accept {
		if _, err := cluster.ParseCollectives(c.allreduce, c.alltoall); err != nil {
			t.Errorf("ParseCollectives(%q, %q) rejected: %v", c.allreduce, c.alltoall, err)
		}
	}
	reject := []struct{ allreduce, alltoall string }{
		{"rng", "default"},
		{"flat,ring", "default"},
		{"allreduce=ring", "default"},
		{"pairwise", "default"}, // pairwise is not an all-reduce schedule
		{"bruck", "default"},
		{"default", "ring"}, // ring is not an all-to-allv schedule
		{"default", "hier"}, // hierarchical is not an all-to-allv schedule
	}
	for _, c := range reject {
		if _, err := cluster.ParseCollectives(c.allreduce, c.alltoall); err == nil {
			t.Errorf("ParseCollectives(%q, %q) accepted", c.allreduce, c.alltoall)
		}
	}
}

// -topology accept/reject table (cluster.ParseTopology).
func TestTopologyFlagTable(t *testing.T) {
	// Case and surrounding space are normalized; "" and "none" mean ideal.
	for _, in := range []string{"ideal", "none", "", "Ideal", "perlmutter", " perlmutter ", "oversub", "oversubscribed"} {
		if _, err := cluster.ParseTopology(in); err != nil {
			t.Errorf("ParseTopology(%q) rejected: %v", in, err)
		}
	}
	if topo, err := cluster.ParseTopology("ideal"); err != nil || topo != nil {
		t.Errorf("ParseTopology(ideal) = %v, %v; want nil topology", topo, err)
	}
	for _, in := range []string{"fat-tree", "oversub2", "ideal,oversub", "4"} {
		if _, err := cluster.ParseTopology(in); err == nil {
			t.Errorf("ParseTopology(%q) accepted", in)
		}
	}
}

// -backend accept/reject table (cluster.ParseBackend).
func TestBackendFlagTable(t *testing.T) {
	// Case and surrounding space are normalized; "" means default.
	accept := []struct {
		in   string
		want cluster.Backend
	}{
		{"", cluster.DefaultBackend},
		{"default", cluster.DefaultBackend},
		{"Default", cluster.DefaultBackend},
		{"goroutine", cluster.GoroutineBackend},
		{"goroutines", cluster.GoroutineBackend},
		{"go", cluster.GoroutineBackend},
		{" Goroutine ", cluster.GoroutineBackend},
		{"des", cluster.DESBackend},
		{"DES", cluster.DESBackend},
		{"event", cluster.DESBackend},
		{"discrete-event", cluster.DESBackend},
	}
	for _, c := range accept {
		got, err := cluster.ParseBackend(c.in)
		if err != nil {
			t.Errorf("ParseBackend(%q) rejected: %v", c.in, err)
		} else if got != c.want {
			t.Errorf("ParseBackend(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, in := range []string{"thread", "goroutine,des", "des2", "events", "1"} {
		if _, err := cluster.ParseBackend(in); err == nil {
			t.Errorf("ParseBackend(%q) accepted", in)
		}
	}
	// The round trip the CLIs rely on for trace metadata.
	for _, b := range []cluster.Backend{cluster.DefaultBackend, cluster.GoroutineBackend, cluster.DESBackend} {
		got, err := cluster.ParseBackend(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBackend(%v.String()) = %v, %v; want identity", b, got, err)
		}
	}
}

func TestParseFaultsAccepts(t *testing.T) {
	cases := map[string]string{
		"":              "",
		"default":       "",
		" default ":     "",
		"1@0.5":         "1@0.5",
		" 1@0.5 ":       "1@0.5",
		"1@0.5,3@1.25":  "1@0.5,3@1.25",
		"3@1.25, 1@0.5": "1@0.5,3@1.25", // String renders sorted by (time, rank)
		"0@1e-9":        "0@1e-09",
		"2 @ 0.25":      "2@0.25",
		"1@0.5,1@0.75":  "1@0.5,1@0.75", // same rank twice is a valid plan
	}
	for in, want := range cases {
		plan, err := ParseFaults(in)
		if err != nil {
			t.Errorf("ParseFaults(%q): %v", in, err)
			continue
		}
		if got := plan.String(); got != want {
			t.Errorf("ParseFaults(%q) = %q, want %q", in, got, want)
		}
		if want == "" && plan != nil {
			t.Errorf("ParseFaults(%q) = %v, want nil plan", in, plan)
		}
	}
}

func TestParseFaultsRejects(t *testing.T) {
	for _, in := range []string{
		"1", "@", "1@", "@0.5", "1@0.5,", ",", "1@0.5,,2@1",
		"-1@0.5", "x@0.5", "1@x", "1@0", "1@-1", "1@NaN", "1@Inf", "1@-Inf",
		"1@0.5;2@1", "1.5@0.5", "1@@0.5",
	} {
		if plan, err := ParseFaults(in); err == nil {
			t.Errorf("ParseFaults(%q) accepted: %v", in, plan)
		}
	}
}

func TestParseCkptIntervalAccepts(t *testing.T) {
	cases := map[string]int{
		"":          0,
		"default":   0,
		" default ": 0,
		"0":         0, // explicit off
		"1":         1,
		" 4 ":       4,
		"100":       100,
	}
	for in, want := range cases {
		got, err := ParseCkptInterval(in)
		if err != nil || got != want {
			t.Errorf("ParseCkptInterval(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
}

func TestParseCkptIntervalRejects(t *testing.T) {
	for _, in := range []string{"-1", "-100", "two", "1.5", "4,8", "1e3", "+-2", "interval"} {
		if _, err := ParseCkptInterval(in); err == nil {
			t.Errorf("ParseCkptInterval(%q) accepted", in)
		}
	}
}
