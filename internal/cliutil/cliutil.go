// Package cliutil holds the flag-parsing helpers shared by the four
// CLI binaries (trainer, gnnbench, compare, datagen), so -profile and
// -gpus accept one vocabulary everywhere and the validation is tested
// in one place instead of re-implemented per main package. The
// collective-algorithm and topology flags parse through
// cluster.ParseCollectives / cluster.ParseTopology directly; this
// package's tests pin their accept/reject tables alongside the local
// helpers so the whole shared flag surface has one conformance suite.
package cliutil

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/datasets"
)

// ParseProfile maps a -profile flag value to a dataset size tier.
func ParseProfile(s string) (datasets.Profile, error) {
	switch s {
	case "tiny":
		return datasets.Tiny, nil
	case "small":
		return datasets.Small, nil
	case "scale":
		return datasets.Scale, nil
	case "bench":
		return datasets.Bench, nil
	}
	return 0, fmt.Errorf("unknown profile %q (want tiny, small, scale or bench)", s)
}

// ProfileUsage is the shared help text for -profile flags.
const ProfileUsage = "dataset size: tiny, small, scale, bench"

// ParseInts parses a comma-separated integer list (surrounding spaces
// tolerated). An empty string is an error; callers treat "flag unset"
// before calling.
func ParseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in list %q", part, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseGPUCounts parses a -gpus flag: a comma-separated list of
// strictly positive simulated GPU counts.
func ParseGPUCounts(s string) ([]int, error) {
	counts, err := ParseInts(s)
	if err != nil {
		return nil, fmt.Errorf("bad GPU count list: %w", err)
	}
	for _, c := range counts {
		if c <= 0 {
			return nil, fmt.Errorf("bad GPU count %d: must be positive", c)
		}
	}
	return counts, nil
}

// ParseSweepWorkers parses a -sweepworkers flag: the worker-pool size
// the sweep experiments run their cells on. Empty and "default" mean
// one worker per CPU (GOMAXPROCS, resolved at run time, so 0 is
// returned here); 1 pins the sweep serial. Zero and negative counts
// are rejected rather than silently serialized — a miscomputed
// $(nproc) in a CI script should fail loudly.
func ParseSweepWorkers(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "default" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad sweep worker count %q (want a positive integer or \"default\")", s)
	}
	if v < 1 {
		return 0, fmt.Errorf("bad sweep worker count %d: must be at least 1 (1 = serial)", v)
	}
	return v, nil
}

// ParsePerfReps parses a -perfreps flag: how many times the perf suite
// repeats each pinned workload before taking the min and median. Empty
// and "default" mean the harness default (returned as 0).
func ParsePerfReps(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "default" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad perf rep count %q (want a positive integer or \"default\")", s)
	}
	if v < 1 {
		return 0, fmt.Errorf("bad perf rep count %d: must be at least 1", v)
	}
	return v, nil
}

// ParseFaults parses a -faults flag: a comma-separated list of
// rank@seconds fail-stop events (the canonical FaultPlan.String form,
// surrounding spaces tolerated), e.g. "1@0.5,3@1.25". Empty and
// "default" mean no injection (nil plan). Times must be positive and
// finite; rank range is validated later against the run's cluster size
// (FaultPlan.Validate), since the flag parser does not know p.
func ParseFaults(s string) (*cluster.FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "default" {
		return nil, nil
	}
	var failures []cluster.Failure
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		rankStr, atStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("bad fault %q (want rank@seconds, e.g. 1@0.5)", part)
		}
		rank, err := strconv.Atoi(strings.TrimSpace(rankStr))
		if err != nil || rank < 0 {
			return nil, fmt.Errorf("bad fault rank %q in %q (want a non-negative integer)", rankStr, part)
		}
		at, err := strconv.ParseFloat(strings.TrimSpace(atStr), 64)
		if err != nil {
			return nil, fmt.Errorf("bad fault time %q in %q (want simulated seconds)", atStr, part)
		}
		if !(at > 0) || math.IsInf(at, 0) {
			return nil, fmt.Errorf("bad fault time %v in %q: must be positive and finite", at, part)
		}
		failures = append(failures, cluster.Failure{Rank: rank, At: at})
	}
	return &cluster.FaultPlan{Failures: failures}, nil
}

// FaultsUsage is the shared help text for -faults flags.
const FaultsUsage = "fail-stop injection plan: comma-separated rank@seconds events (e.g. 1@0.5,3@1.25)"

// ParseCkptInterval parses a -ckpt-interval flag: checkpoint the
// resumable training state every N completed epochs. Empty, "default"
// and "0" mean no checkpointing (returned as 0); negative and
// non-integer values are rejected.
func ParseCkptInterval(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "default" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad checkpoint interval %q (want a non-negative epoch count or \"default\")", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("bad checkpoint interval %d: must be >= 0 (0 = no checkpoints)", v)
	}
	return v, nil
}

// CkptIntervalUsage is the shared help text for -ckpt-interval flags.
const CkptIntervalUsage = "checkpoint the resumable training state every N completed epochs (0 = off)"

// RequireExperiment rejects a flag scoped to one experiment when a
// different experiment is selected. Silently ignoring -perfout on a
// scaling run (say) would drop the baseline file the caller asked
// for — contradictory flag combinations are errors, not no-ops. A
// value of "" or "default" counts as unset.
func RequireExperiment(flagName, value, experiment, want string) error {
	if value == "" || value == "default" || experiment == want {
		return nil
	}
	return fmt.Errorf("-%s applies only to -experiment %s (selected: %s)", flagName, want, experiment)
}
