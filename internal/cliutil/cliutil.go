// Package cliutil holds the flag-parsing helpers shared by the four
// CLI binaries (trainer, gnnbench, compare, datagen), so -profile and
// -gpus accept one vocabulary everywhere and the validation is tested
// in one place instead of re-implemented per main package. The
// collective-algorithm and topology flags parse through
// cluster.ParseCollectives / cluster.ParseTopology directly; this
// package's tests pin their accept/reject tables alongside the local
// helpers so the whole shared flag surface has one conformance suite.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/datasets"
)

// ParseProfile maps a -profile flag value to a dataset size tier.
func ParseProfile(s string) (datasets.Profile, error) {
	switch s {
	case "tiny":
		return datasets.Tiny, nil
	case "small":
		return datasets.Small, nil
	case "scale":
		return datasets.Scale, nil
	case "bench":
		return datasets.Bench, nil
	}
	return 0, fmt.Errorf("unknown profile %q (want tiny, small, scale or bench)", s)
}

// ProfileUsage is the shared help text for -profile flags.
const ProfileUsage = "dataset size: tiny, small, scale, bench"

// ParseInts parses a comma-separated integer list (surrounding spaces
// tolerated). An empty string is an error; callers treat "flag unset"
// before calling.
func ParseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in list %q", part, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseGPUCounts parses a -gpus flag: a comma-separated list of
// strictly positive simulated GPU counts.
func ParseGPUCounts(s string) ([]int, error) {
	counts, err := ParseInts(s)
	if err != nil {
		return nil, fmt.Errorf("bad GPU count list: %w", err)
	}
	for _, c := range counts {
		if c <= 0 {
			return nil, fmt.Errorf("bad GPU count %d: must be positive", c)
		}
	}
	return counts, nil
}
