package cliutil

import (
	"strings"
	"testing"
)

// Native Go fuzz target for the -sweepworkers parser: arbitrary flag
// strings must parse or error, never panic, and anything accepted must
// be a valid pool size (0 = GOMAXPROCS sentinel, otherwise >= 1).
func FuzzParseSweepWorkers(f *testing.F) {
	for _, s := range []string{"", "default", " default ", "1", "2", "8",
		"128", "0", "-1", "two", "1.5", "4,8", "8x", " 16 ", "\x00", "+3"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseSweepWorkers(s)
		if err != nil {
			return
		}
		if v < 0 {
			t.Fatalf("ParseSweepWorkers(%q) accepted negative pool size %d", s, v)
		}
		if v == 0 {
			// Only the explicit default spellings may map to the
			// GOMAXPROCS sentinel; a literal "0" must be rejected.
			if trimmed := strings.TrimSpace(s); trimmed != "" && trimmed != "default" {
				t.Fatalf("ParseSweepWorkers(%q) returned the default sentinel for a non-default spelling", s)
			}
		}
	})
}

// FuzzParseFaults pins the -faults parser: arbitrary flag strings must
// parse or error, never panic, and any accepted plan must be valid
// (positive finite times, non-negative ranks) and round-trip through
// the canonical String form.
func FuzzParseFaults(f *testing.F) {
	for _, s := range []string{"", "default", "1@0.5", "1@0.5,3@1.25",
		"0@1e-9", " 2 @ 0.25 ", "1", "@", "1@", "1@0", "1@-1", "1@NaN",
		"1@Inf", "-1@0.5", "1@0.5,", "1@@2", "\x00", "1@0.5;2@1"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		plan, err := ParseFaults(s)
		if err != nil {
			return
		}
		if plan == nil {
			if trimmed := strings.TrimSpace(s); trimmed != "" && trimmed != "default" {
				t.Fatalf("ParseFaults(%q) returned a nil plan for a non-default spelling", s)
			}
			return
		}
		if verr := plan.Validate(0); verr != nil {
			t.Fatalf("ParseFaults(%q) accepted an invalid plan: %v", s, verr)
		}
		// The canonical form must re-parse to the same plan.
		again, err := ParseFaults(plan.String())
		if err != nil {
			t.Fatalf("ParseFaults(%q): canonical form %q does not re-parse: %v", s, plan.String(), err)
		}
		if again.String() != plan.String() {
			t.Fatalf("ParseFaults(%q): canonical form is not a fixed point: %q -> %q", s, plan.String(), again.String())
		}
	})
}
