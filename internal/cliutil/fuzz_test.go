package cliutil

import (
	"strings"
	"testing"
)

// Native Go fuzz target for the -sweepworkers parser: arbitrary flag
// strings must parse or error, never panic, and anything accepted must
// be a valid pool size (0 = GOMAXPROCS sentinel, otherwise >= 1).
func FuzzParseSweepWorkers(f *testing.F) {
	for _, s := range []string{"", "default", " default ", "1", "2", "8",
		"128", "0", "-1", "two", "1.5", "4,8", "8x", " 16 ", "\x00", "+3"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseSweepWorkers(s)
		if err != nil {
			return
		}
		if v < 0 {
			t.Fatalf("ParseSweepWorkers(%q) accepted negative pool size %d", s, v)
		}
		if v == 0 {
			// Only the explicit default spellings may map to the
			// GOMAXPROCS sentinel; a literal "0" must be rejected.
			if trimmed := strings.TrimSpace(s); trimmed != "" && trimmed != "default" {
				t.Fatalf("ParseSweepWorkers(%q) returned the default sentinel for a non-default spelling", s)
			}
		}
	})
}
