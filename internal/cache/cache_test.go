package cache

import (
	"math/rand"
	"testing"
)

func TestStaticDegreeCachesHottest(t *testing.T) {
	degrees := []int{5, 100, 3, 80, 1}
	c := NewStaticDegree(degrees, 2)
	if !c.Lookup(1) || !c.Lookup(3) {
		t.Fatal("highest-degree vertices not cached")
	}
	for _, v := range []int{0, 2, 4} {
		if c.Lookup(v) {
			t.Fatalf("low-degree vertex %d cached", v)
		}
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.4 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestStaticDegreeTieBreakDeterministic(t *testing.T) {
	degrees := []int{7, 7, 7, 7}
	a := NewStaticDegree(degrees, 2)
	b := NewStaticDegree(degrees, 2)
	for v := 0; v < 4; v++ {
		if a.Lookup(v) != b.Lookup(v) {
			t.Fatal("tie-breaking not deterministic")
		}
	}
}

func TestStaticDegreeCapacityClamps(t *testing.T) {
	c := NewStaticDegree([]int{1, 2}, 100)
	if !c.Lookup(0) || !c.Lookup(1) {
		t.Fatal("over-capacity static cache should hold everything")
	}
	c2 := NewStaticDegree([]int{1, 2}, -5)
	if c2.Lookup(0) || c2.Lookup(1) {
		t.Fatal("negative capacity should cache nothing")
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewLRU(2)
	c.Admit(1)
	c.Admit(2)
	if !c.Lookup(1) || !c.Lookup(2) {
		t.Fatal("admitted vertices missing")
	}
	c.Admit(3) // evicts 1 (2 was more recently touched... order: lookup(2) after lookup(1))
	if c.Lookup(1) {
		t.Fatal("LRU should have evicted vertex 1")
	}
	if !c.Lookup(3) || !c.Lookup(2) {
		t.Fatal("recent vertices evicted")
	}
}

func TestLRURecencyUpdatedByLookup(t *testing.T) {
	c := NewLRU(2)
	c.Admit(1)
	c.Admit(2)
	c.Lookup(1) // 1 becomes most recent
	c.Admit(3)  // evicts 2
	if c.Lookup(2) {
		t.Fatal("vertex 2 should have been evicted")
	}
	if !c.Lookup(1) {
		t.Fatal("recently used vertex 1 evicted")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU(0)
	c.Admit(1)
	if c.Lookup(1) {
		t.Fatal("zero-capacity cache should never hit")
	}
}

func TestLRUAdmitExistingMovesToFront(t *testing.T) {
	c := NewLRU(2)
	c.Admit(1)
	c.Admit(2)
	c.Admit(1) // refresh, not duplicate
	c.Admit(3) // evicts 2
	if c.Lookup(2) {
		t.Fatal("vertex 2 should be evicted after refresh of 1")
	}
	if !c.Lookup(1) || !c.Lookup(3) {
		t.Fatal("refreshed or new vertex missing")
	}
}

func TestNullCacheNeverHits(t *testing.T) {
	c := NewNull()
	c.Admit(7)
	if c.Lookup(7) {
		t.Fatal("null cache hit")
	}
	if c.Stats().Misses != 1 {
		t.Fatal("miss not counted")
	}
}

func TestNewDispatch(t *testing.T) {
	if New(StaticDegree, 1, []int{1, 2}).Policy() != StaticDegree {
		t.Fatal("static dispatch")
	}
	if New(LRU, 1, nil).Policy() != LRU {
		t.Fatal("lru dispatch")
	}
	if New(None, 1, nil).Policy() != None {
		t.Fatal("none dispatch")
	}
}

func TestPolicyStrings(t *testing.T) {
	if None.String() != "none" || StaticDegree.String() != "static-degree" || LRU.String() != "lru" {
		t.Fatal("policy strings wrong")
	}
	if Policy(99).String() != "unknown" {
		t.Fatal("unknown policy string")
	}
}

func TestStaticDegreeBeatsLRUOnPowerLaw(t *testing.T) {
	// Under Zipf-like access, a degree-ordered static cache should
	// match or beat a same-size LRU because the hot set is stable.
	rng := rand.New(rand.NewSource(1))
	n := 1000
	degrees := make([]int, n)
	for i := range degrees {
		degrees[i] = n / (i + 1) // vertex 0 hottest
	}
	static := NewStaticDegree(degrees, 50)
	lru := NewLRU(50)
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(n-1))
	for i := 0; i < 20000; i++ {
		v := int(zipf.Uint64())
		static.Lookup(v)
		if !lru.Lookup(v) {
			lru.Admit(v)
		}
	}
	if static.Stats().HitRate() < lru.Stats().HitRate()*0.9 {
		t.Fatalf("static %.3f much worse than LRU %.3f",
			static.Stats().HitRate(), lru.Stats().HitRate())
	}
}

func TestHitRateEmpty(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
}
