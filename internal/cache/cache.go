// Package cache implements vertex feature caching for the feature-
// fetching step. Section 8.1.2 of the paper notes its pipeline "could
// be improved by using sophisticated vertex caching schemes, such as
// those presented in SALIENT++"; this package provides that extension:
// a static degree-ordered cache (hot vertices are overwhelmingly the
// high-degree ones under power-law sampling) and an LRU cache for
// comparison, plus hit-rate accounting so the ablation benches can
// report cache effectiveness.
package cache

import (
	"container/list"
	"sort"
)

// Policy decides which vertices a rank keeps locally.
type Policy int

const (
	// None disables caching.
	None Policy = iota
	// StaticDegree caches the globally highest-degree vertices — the
	// SALIENT++-style static working set.
	StaticDegree
	// LRU keeps the most recently fetched vertices.
	LRU
)

func (p Policy) String() string {
	switch p {
	case None:
		return "none"
	case StaticDegree:
		return "static-degree"
	case LRU:
		return "lru"
	}
	return "unknown"
}

// Stats counts cache outcomes.
type Stats struct {
	Hits, Misses int64
}

// HitRate returns hits / (hits + misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache answers "is vertex v locally cached?" and records traffic.
// Implementations are not safe for concurrent use: each simulated rank
// owns its cache.
type Cache interface {
	// Lookup reports whether v's features are cached, updating
	// recency state and statistics.
	Lookup(v int) bool
	// Admit inserts v after a miss (no-op for static policies).
	Admit(v int)
	// Stats returns the traffic counters.
	Stats() Stats
	// Policy identifies the eviction policy.
	Policy() Policy
}

// NewStaticDegree builds a static cache of the capacity highest-degree
// vertices. degrees[v] is vertex v's degree.
func NewStaticDegree(degrees []int, capacity int) Cache {
	if capacity < 0 {
		capacity = 0
	}
	if capacity > len(degrees) {
		capacity = len(degrees)
	}
	order := make([]int, len(degrees))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if degrees[order[a]] != degrees[order[b]] {
			return degrees[order[a]] > degrees[order[b]]
		}
		return order[a] < order[b]
	})
	held := make(map[int]struct{}, capacity)
	for _, v := range order[:capacity] {
		held[v] = struct{}{}
	}
	return &staticCache{held: held}
}

type staticCache struct {
	held  map[int]struct{}
	stats Stats
}

func (c *staticCache) Lookup(v int) bool {
	if _, ok := c.held[v]; ok {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

func (c *staticCache) Admit(int)      {}
func (c *staticCache) Stats() Stats   { return c.stats }
func (c *staticCache) Policy() Policy { return StaticDegree }

// NewLRU builds an LRU cache with the given capacity.
func NewLRU(capacity int) Cache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		elems:    make(map[int]*list.Element, capacity),
	}
}

type lruCache struct {
	capacity int
	order    *list.List // front = most recent; values are vertex ids
	elems    map[int]*list.Element
	stats    Stats
}

func (c *lruCache) Lookup(v int) bool {
	if e, ok := c.elems[v]; ok {
		c.order.MoveToFront(e)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

func (c *lruCache) Admit(v int) {
	if c.capacity == 0 {
		return
	}
	if e, ok := c.elems[v]; ok {
		c.order.MoveToFront(e)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.elems, oldest.Value.(int))
	}
	c.elems[v] = c.order.PushFront(v)
}

func (c *lruCache) Stats() Stats   { return c.stats }
func (c *lruCache) Policy() Policy { return LRU }

// nullCache is the Policy == None implementation: every lookup misses.
type nullCache struct{ stats Stats }

// NewNull returns a cache that never hits.
func NewNull() Cache { return &nullCache{} }

func (c *nullCache) Lookup(int) bool {
	c.stats.Misses++
	return false
}
func (c *nullCache) Admit(int)      {}
func (c *nullCache) Stats() Stats   { return c.stats }
func (c *nullCache) Policy() Policy { return None }

// New builds a cache for the given policy. degrees is required for
// StaticDegree and ignored otherwise.
func New(p Policy, capacity int, degrees []int) Cache {
	switch p {
	case StaticDegree:
		return NewStaticDegree(degrees, capacity)
	case LRU:
		return NewLRU(capacity)
	default:
		return NewNull()
	}
}
