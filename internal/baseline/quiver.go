// Package baseline implements the systems the paper compares against:
//
//   - A Quiver-strategy baseline (Section 7.3): per-minibatch (non-bulk)
//     GPU sampling with the graph topology fully replicated on every
//     device, and cache-less feature fetching across all p ranks. A UVA
//     mode keeps the graph in host DRAM and samples across the PCIe
//     link with most features host-resident (Figure 5).
//   - The serial CPU LADIES reference implementation (Section 8.2.2),
//     used as the bar the distributed LADIES runs must clear.
//
// Both run under the same cost model as the paper's pipeline so the
// comparisons isolate strategy, not implementation accidents.
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/distsample"
	"repro/internal/engine"
	"repro/internal/gnn"
	"repro/internal/graphio"
	"repro/internal/pipeline"
	"repro/internal/resilience"
)

// QuiverConfig drives the Quiver-strategy baseline.
type QuiverConfig struct {
	P int

	// UVA stores the graph in host DRAM and samples through the PCIe
	// link with a unified address space; 80% of the features live in
	// DRAM and 20% in a device cache (the split quoted in Section
	// 8.1.1).
	UVA bool

	Hidden     int
	Epochs     int
	LR         float64
	MaxBatches int
	Seed       int64
	Model      cluster.CostModel

	// Collectives selects the collective schedules the baseline's
	// cluster charges under (merged into Model.Collectives), so
	// algorithm comparisons hold the baseline to the same rules as the
	// paper's pipeline.
	Collectives cluster.Collectives

	// Topology selects the physical-link topology (set on
	// Model.Topology), holding the baseline to the same shared-link
	// contention rules as the paper's pipeline; nil keeps the pure α–β
	// model.
	Topology *cluster.Topology

	// Backend selects the simulator's execution backend (set on
	// Model.Backend): goroutines or the discrete-event loop. Results
	// are bit-identical either way; zero resolves $GNN_BACKEND, then
	// goroutines.
	Backend cluster.Backend

	// Faults is the fail-stop injection plan (merged into Model.Faults),
	// and CkptInterval the epoch-boundary checkpoint cadence, with the
	// same semantics as the paper pipeline's fields (pipeline.Config):
	// the baseline recovers from injected failures through the same
	// checkpoint/restore machinery, so resilience comparisons hold it to
	// the same rules.
	Faults       *cluster.FaultPlan
	CkptInterval int
}

// hostFeatureFraction is the share of feature rows served from host
// memory in UVA mode.
const hostFeatureFraction = 0.8

// RunQuiver simulates Quiver-style training: every rank samples its
// minibatches one at a time on device (paying per-batch kernel
// overheads the bulk approach amortizes) and fetches features with an
// all-to-allv across all p ranks (no replication-factor locality).
func RunQuiver(d *datasets.Dataset, cfg QuiverConfig) (*pipeline.Result, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("baseline: need p > 0")
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 64
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 1
	}
	if cfg.LR == 0 {
		cfg.LR = 0.01
	}
	if cfg.Model.GPUsPerNode == 0 {
		cfg.Model = cluster.Perlmutter()
	}
	cfg.Model.Collectives = cfg.Model.Collectives.Merge(cfg.Collectives)
	if err := cfg.Model.Collectives.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if cfg.Topology != nil {
		cfg.Model.Topology = cfg.Topology
	}
	if cfg.Backend != cluster.DefaultBackend {
		cfg.Model.Backend = cfg.Backend
	}
	if err := cfg.Model.Topology.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if cfg.Faults != nil {
		cfg.Model.Faults = cfg.Faults
	}
	if err := cfg.Model.Faults.Validate(cfg.P); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if cfg.CkptInterval < 0 {
		return nil, fmt.Errorf("baseline: negative checkpoint interval %d", cfg.CkptInterval)
	}
	layers := len(d.Fanouts)

	batches := d.Batches()
	totalBatches := len(batches)
	if cfg.MaxBatches > 0 && cfg.MaxBatches < totalBatches {
		batches = batches[:cfg.MaxBatches]
	}
	scale := pipeline.BlockScale(totalBatches, len(batches), cfg.P)
	rounds := (len(batches) + cfg.P - 1) / cfg.P // batches per rank, padded

	// Per-rank loss sums and batch counts, folded after the run into
	// the global batch-weighted epoch loss (rank 0's local average
	// misreports whenever batches divide unevenly across ranks).
	lossSums := make([][]float64, cfg.P)
	lossCounts := make([][]int, cfg.P)
	var finalParams []float64

	// quiverItem carries one minibatch between the baseline's stages.
	type quiverItem struct {
		bg    *core.BatchGraph
		verts []int
		feats *dense.Matrix
	}

	// Replicated-state dedup (see pipeline.Run): one shared model and
	// optimizer for all data-parallel ranks; the step runs once per
	// minibatch inside the gradient all-reduce.
	newModel := func() *gnn.Model {
		return gnn.NewModel(gnn.Config{
			In:      d.Features.Cols,
			Hidden:  cfg.Hidden,
			Classes: d.NumClasses,
			Layers:  layers,
			Seed:    cfg.Seed,
		})
	}
	model := newModel()
	opt := dense.NewAdam(cfg.LR)
	zeroGrads := make([]float64, model.NumParams())

	var col *resilience.Collector
	if cfg.CkptInterval > 0 {
		col = resilience.NewCollector(cfg.P)
	}
	ckptBytes := resilience.CheckpointBytes(model.NumParams())

	// attempt runs the cluster once from startEpoch, optionally seeded
	// with a restored checkpoint (see pipeline.Run — same structure,
	// same restart driver below).
	attempt := func(plan *cluster.FaultPlan, startEpoch int, ck *graphio.Checkpoint) (*cluster.Result, error) {
		m := cfg.Model
		m.Faults = plan
		cl := cluster.New(cfg.P, m)
		// Features are block-partitioned over all p ranks (grid with
		// c=1); the fetch all-to-allv spans the world communicator.
		grid := cluster.NewGrid(cl, cfg.P, 1)
		stores := pipeline.NewFeatureStores(grid, d.Features)
		world := grid.World()

		return cl.Run(func(r *cluster.Rank) error {
			if ck != nil {
				r.Restore(ck.Ranks[r.ID])
			}
			store := stores[r.ID]
			local := distsample.ReplicatedBatches(cfg.P, r.ID, batches)
			if lossSums[r.ID] == nil {
				lossSums[r.ID] = make([]float64, cfg.Epochs)
				lossCounts[r.ID] = make([]int, cfg.Epochs)
			}

			for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
				epochSeed := cfg.Seed + int64(epoch)*7919
				lossSum, lossN := 0.0, 0

				// The Quiver strategy is strictly bulk synchronous — no
				// prefetching — so the staged engine runs its sequential
				// schedule; the stage decomposition only shares structure
				// (and phase accounting) with the paper's pipeline.
				pipe := &engine.Pipeline{Stages: []engine.Stage{
					// 1) Per-minibatch sampling: one bulk call of size
					// one, paying full kernel-launch overhead per batch
					// per layer — the cost bulk sampling amortizes.
					{
						Name: pipeline.PhaseSampling,
						Run: func(rs *cluster.Rank, round int, _ any) (any, error) {
							rs.SetPhase(pipeline.PhaseSampling)
							var it quiverItem
							if round < len(local) {
								bulk := core.SampleBulk(core.SAGE{}, d.Graph.Adj,
									[][]int{local[round]}, d.Fanouts, epochSeed+int64(round))
								cost := bulk.Cost
								if cfg.UVA {
									// Graph lives in host DRAM: every
									// adjacency row visited crosses PCIe
									// (16 bytes/entry), and the irregular
									// work runs at an effective rate
									// bounded by the host link.
									rs.ChargeLink(cluster.HostLink, cost.ProbFlops*16)
									rs.ChargeSparse(cost.SampleOps + cost.ExtractOps)
								} else {
									rs.ChargeSparse(cost.Total())
								}
								rs.ChargeKernels(cost.Kernels)
								it.bg = bulk.ExtractBatch(0)
								it.verts = it.bg.InputVertices()
							}
							return it, nil
						},
					},
					// 2) Feature fetch across all p ranks.
					{
						Name: pipeline.PhaseFeatureFetch,
						Run: func(rf *cluster.Rank, round int, in any) (any, error) {
							it := in.(quiverItem)
							rf.SetPhase(pipeline.PhaseFeatureFetch)
							it.feats = store.Fetch(rf, it.verts)
							if cfg.UVA && it.bg != nil {
								hostRows := int(hostFeatureFraction * float64(len(it.verts)))
								rf.ChargeLink(cluster.HostLink, int64(hostRows*d.Features.Cols*8))
							}
							return it, nil
						},
					},
					// 3) Propagation with data-parallel all-reduce.
					{
						Name: pipeline.PhasePropagation,
						Run: func(rm *cluster.Rank, round int, in any) (any, error) {
							it := in.(quiverItem)
							rm.SetPhase(pipeline.PhasePropagation)
							grads := zeroGrads
							if it.bg != nil {
								act, fwdFlops := model.Forward(it.bg, it.feats)
								labels := make([]int, len(it.bg.Seeds))
								for i, v := range it.bg.Seeds {
									labels[i] = d.Labels[v]
								}
								loss, dLogits := gnn.Loss(act, labels)
								g, bwdFlops := model.Backward(act, dLogits)
								grads = g
								rm.ChargeDense(fwdFlops + bwdFlops)
								rm.ChargeKernels(4 * layers)
								lossSum += loss
								lossN++
							}
							cluster.AllReduceSumApply(world, rm, grads, func(total []float64) {
								inv := 1.0 / float64(cfg.P)
								for i := range total {
									total[i] *= inv
								}
								opt.Step(model.Params(), total)
							})
							return nil, nil
						},
					},
				}}
				if err := pipe.Execute(r, rounds); err != nil {
					return err
				}
				lossSums[r.ID][epoch] = lossSum
				lossCounts[r.ID][epoch] = lossN
				// Epoch-boundary checkpoint, identical protocol to
				// pipeline.Run: charge first (the restore point includes
				// the write), then contribute snapshots; rank 0 adds the
				// replicated training state. The baseline has no dropout,
				// so the stream position saved is the seed's zero value.
				if bdry := epoch + 1; col != nil && bdry%cfg.CkptInterval == 0 && bdry < cfg.Epochs {
					r.SetPhase(resilience.PhaseCheckpoint)
					r.ChargeLink(cluster.HostLink, ckptBytes)
					if r.ID == 0 {
						t, am, av := opt.State()
						if err := col.AddState(bdry, model.DropoutSeed(), model.Params(), t, am, av); err != nil {
							return err
						}
					}
					if err := col.AddRank(bdry, r.ID, r.Snapshot()); err != nil {
						return err
					}
				}
			}
			if r.ID == 0 {
				finalParams = append([]float64(nil), model.Params()...)
			}
			return nil
		})
	}

	// Restart driver (see pipeline.Run for the full rationale): retire
	// the fired failure, restore the latest checkpoint or rebuild the
	// deterministic initial state, and re-run until an attempt finishes.
	plan := cfg.Model.Faults
	var rec *resilience.Stats
	if plan != nil || col != nil {
		rec = &resilience.Stats{}
	}
	var res *cluster.Result
	restarted := false
	startEpoch, restoreClock := 0, 0.0
	var ck *graphio.Checkpoint
	for {
		if rec != nil {
			rec.Attempts++
		}
		if ck != nil {
			model.SetParams(ck.Params)
			model.SetDropoutSeed(ck.DropSeed)
			opt.SetState(ck.OptT, ck.OptM, ck.OptV)
		} else if restarted {
			model = newModel()
			opt = dense.NewAdam(cfg.LR)
		}
		r, err := attempt(plan, startEpoch, ck)
		if err == nil {
			res = r
			break
		}
		var rf *cluster.RankFailure
		if !errors.As(err, &rf) {
			return nil, err
		}
		plan = plan.Retire(rf)
		restarted = true
		ck, startEpoch, restoreClock = nil, 0, 0
		if col != nil {
			col.Abort()
			if ck, err = col.Latest(); err != nil {
				return nil, err
			}
			if ck != nil {
				startEpoch = ck.Epoch
				restoreClock = col.LatestClock()
			}
		}
		rec.RecordFailure(rf, startEpoch, restoreClock)
	}

	epochs := make([]pipeline.EpochStats, cfg.Epochs)
	perEpoch := func(phase string) float64 {
		return res.Phase(phase) * scale / float64(cfg.Epochs)
	}
	perEpochComm := func(phase string) float64 {
		return res.PhaseComm(phase) * scale / float64(cfg.Epochs)
	}
	for e := range epochs {
		loss, lossN := pipeline.AggregateLoss(lossSums, lossCounts, e)
		epochs[e] = pipeline.EpochStats{
			Sampling:     perEpoch(pipeline.PhaseSampling),
			FeatureFetch: perEpoch(pipeline.PhaseFeatureFetch),
			Propagation:  perEpoch(pipeline.PhasePropagation),
			SamplingComm: perEpochComm(pipeline.PhaseSampling),
			FetchComm:    perEpochComm(pipeline.PhaseFeatureFetch),
			Loss:         loss,
			LossBatches:  lossN,
		}
		epochs[e].Total = epochs[e].Sampling + epochs[e].FeatureFetch + epochs[e].Propagation
	}
	return &pipeline.Result{Epochs: epochs, Cluster: res, Params: finalParams, Recovery: rec}, nil
}

// CPULadiesReference simulates the serial reference LADIES sampler
// (Section 8.2.2): one CPU process samples every minibatch one at a
// time. It returns the simulated seconds to sample all minibatches —
// the wall the distributed implementation is compared against (43.9 s
// for Papers, 3.12 s for Protein in the paper).
func CPULadiesReference(d *datasets.Dataset, layers int, maxBatches int, seed int64, model cluster.CostModel) (float64, error) {
	if model.GPUsPerNode == 0 {
		model = cluster.Perlmutter()
	}
	batches := d.Batches()
	total := len(batches)
	if maxBatches > 0 && maxBatches < total {
		batches = batches[:maxBatches]
	}
	scale := float64(total) / float64(len(batches))
	fanouts := make([]int, layers)
	for i := range fanouts {
		fanouts[i] = d.LayerWidth
	}

	cl := cluster.New(1, model)
	res, err := cl.Run(func(r *cluster.Rank) error {
		r.SetPhase("cpu-ladies")
		for i, b := range batches {
			bulk := core.SampleBulk(core.LADIES{}, d.Graph.Adj, [][]int{b}, fanouts, seed+int64(i))
			r.ChargeSparseOn(cluster.CPU, bulk.Cost.Total())
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return res.Phase("cpu-ladies") * scale, nil
}

// GraphBytes reports the in-memory size of a dataset's replicated
// state, used by the harness to pick the highest replication factor
// that "fits" (the paper chooses c and k per GPU memory).
func GraphBytes(d *datasets.Dataset) int64 {
	return int64(d.Graph.Adj.Bytes())
}

// FeatureBytes reports the feature matrix payload size.
func FeatureBytes(d *datasets.Dataset) int64 {
	return int64(d.Features.Bytes())
}
