package baseline

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/datasets"
)

func TestRunQuiverBasic(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	res, err := RunQuiver(d, QuiverConfig{P: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := res.LastEpoch()
	if e.Sampling <= 0 || e.FeatureFetch <= 0 || e.Propagation <= 0 {
		t.Fatalf("breakdown missing: %+v", e)
	}
	if res.Params == nil {
		t.Fatal("no trained parameters")
	}
}

func TestQuiverUVASamplingSlower(t *testing.T) {
	// Figure 5: GPU sampling outperforms UVA sampling because UVA pays
	// the PCIe link on every adjacency access.
	d := datasets.ProteinLike(datasets.Tiny)
	gpu, err := RunQuiver(d, QuiverConfig{P: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	uva, err := RunQuiver(d, QuiverConfig{P: 4, UVA: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if uva.LastEpoch().Sampling <= gpu.LastEpoch().Sampling {
		t.Fatalf("UVA sampling (%v) not slower than GPU (%v)",
			uva.LastEpoch().Sampling, gpu.LastEpoch().Sampling)
	}
}

func TestQuiverPaysPerBatchKernelOverheads(t *testing.T) {
	// The Quiver strategy launches sampling kernels per minibatch; the
	// bulk pipeline launches them per bulk. With identical work, the
	// baseline's sampling time must exceed a single-bulk run's at the
	// same p. (Indirect check: sampling time strictly positive and at
	// least the kernel floor of batches x layers x launches.)
	d := datasets.ProductsLike(datasets.Tiny)
	res, err := RunQuiver(d, QuiverConfig{P: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	model := res.Cfg // zero; just ensure struct accessible
	_ = model
	minKernelTime := float64(d.NumBatches()*2*4) * 10e-6 // layers x ~4 kernels
	if res.LastEpoch().Sampling < minKernelTime {
		t.Fatalf("sampling %v below kernel floor %v", res.LastEpoch().Sampling, minKernelTime)
	}
}

func TestQuiverTrainsLoss(t *testing.T) {
	d := datasets.SBM(datasets.SBMConfig{
		N: 512, Classes: 4, Features: 8,
		IntraDeg: 10, InterDeg: 2, Noise: 0.5,
		BatchSize: 32, Fanouts: []int{5, 3}, LayerWidth: 32, Seed: 4,
	})
	res, err := RunQuiver(d, QuiverConfig{P: 2, Epochs: 4, Seed: 4, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[3].Loss >= res.Epochs[0].Loss {
		t.Fatalf("loss did not improve: %v -> %v", res.Epochs[0].Loss, res.Epochs[3].Loss)
	}
}

func TestCPULadiesReferencePositiveAndScalesWithBatches(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	full, err := CPULadiesReference(d, 1, 0, 5, cluster.Perlmutter())
	if err != nil {
		t.Fatal(err)
	}
	if full <= 0 {
		t.Fatal("reference time not positive")
	}
	// Extrapolation from fewer batches should land near the full time.
	part, err := CPULadiesReference(d, 1, 2, 5, cluster.Perlmutter())
	if err != nil {
		t.Fatal(err)
	}
	if part <= 0 {
		t.Fatal("extrapolated time not positive")
	}
	ratio := part / full
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("extrapolation ratio %v out of range", ratio)
	}
}

func TestBytesHelpers(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	if GraphBytes(d) <= 0 || FeatureBytes(d) <= 0 {
		t.Fatal("size helpers must be positive")
	}
}

func TestRunQuiverRejectsZeroP(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	if _, err := RunQuiver(d, QuiverConfig{P: 0}); err == nil {
		t.Fatal("expected error for p=0")
	}
}

func TestQuiverLossAggregatesAcrossRanksUnevenBatches(t *testing.T) {
	// 3 batches over p=2 ranks: rank 0 counts 2, rank 1 counts 1. The
	// epoch loss must aggregate all 3 batch losses (the old rank-0-only
	// report covered 2 and misweighted the epoch).
	d := datasets.ProductsLike(datasets.Tiny)
	res, err := RunQuiver(d, QuiverConfig{P: 2, MaxBatches: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := res.LastEpoch()
	if e.LossBatches != 3 {
		t.Fatalf("aggregated %d batch losses, want 3 (all ranks)", e.LossBatches)
	}
	if e.Loss <= 0 {
		t.Fatalf("loss signal lost: %v", e.Loss)
	}
}

// Golden values captured on the pre-refactor code: the pluggable
// collective-algorithm layer must keep the default (FlatTree) Quiver
// baseline bit-identical in simulated time and loss.
func TestGoldenQuiverBitIdentical(t *testing.T) {
	d := datasets.SBM(datasets.SBMConfig{
		N: 512, Classes: 4, Features: 8,
		IntraDeg: 10, InterDeg: 2, Noise: 0.5,
		BatchSize: 32, Fanouts: []int{5, 3}, LayerWidth: 32, Seed: 7,
	})
	for _, be := range []cluster.Backend{cluster.GoroutineBackend, cluster.DESBackend} {
		res, err := RunQuiver(d, QuiverConfig{P: 4, Epochs: 2, Seed: 5, MaxBatches: 8, Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.Cluster.SimTime, 0.00085561327706666656; got != want {
			t.Errorf("%v: SimTime = %.17g, want %.17g", be, got, want)
		}
		if got, want := res.LastEpoch().Total, 0.00064173826279999985; got != want {
			t.Errorf("%v: Total = %.17g, want %.17g", be, got, want)
		}
		if got, want := res.LastEpoch().Loss, 0.2484752598843977; got != want {
			t.Errorf("%v: Loss = %.17g, want %.17g", be, got, want)
		}
	}
}

// The baseline threads algorithm selection like the pipeline: a ring
// gradient all-reduce changes the schedule, never the training values.
func TestQuiverCollectivesSelection(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	flat, err := RunQuiver(d, QuiverConfig{P: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := RunQuiver(d, QuiverConfig{P: 4, Seed: 3,
		Collectives: cluster.Collectives{AllReduce: cluster.Ring}})
	if err != nil {
		t.Fatal(err)
	}
	if flat.LastEpoch().Loss != ring.LastEpoch().Loss {
		t.Fatal("ring selection changed training values")
	}
	if flat.Cluster.SimTime == ring.Cluster.SimTime {
		t.Fatal("ring selection did not change the schedule")
	}
	if _, err := RunQuiver(d, QuiverConfig{P: 4, Seed: 3,
		Collectives: cluster.Collectives{AllReduce: cluster.Pairwise}}); err == nil {
		t.Fatal("invalid table accepted")
	}
}

// Contention-off golden identity per collective algorithm for the
// Quiver baseline: Topology == nil must keep every algorithm's
// schedule bit-identical to the pre-topology code (the flat entry
// equals the pre-refactor golden above).
func TestGoldenQuiverContentionOffPerAlgorithm(t *testing.T) {
	d := datasets.SBM(datasets.SBMConfig{
		N: 512, Classes: 4, Features: 8,
		IntraDeg: 10, InterDeg: 2, Noise: 0.5,
		BatchSize: 32, Fanouts: []int{5, 3}, LayerWidth: 32, Seed: 7,
	})
	golden := []struct {
		table     string
		tbl       cluster.Collectives
		sim, loss float64
	}{
		{"flat", cluster.Collectives{}, 0.00085561327706666656, 0.2484752598843977},
		{"ring", cluster.Collectives{AllReduce: cluster.Ring, AllToAll: cluster.Pairwise},
			0.0008886240504, 0.2484752598843977},
		{"hier", cluster.Collectives{AllReduce: cluster.Hierarchical},
			0.00085561327706666656, 0.2484752598843977},
	}
	for _, g := range golden {
		for _, be := range []cluster.Backend{cluster.GoroutineBackend, cluster.DESBackend} {
			res, err := RunQuiver(d, QuiverConfig{P: 4, Epochs: 2, Seed: 5, MaxBatches: 8,
				Collectives: g.tbl, Topology: nil, Backend: be})
			if err != nil {
				t.Fatalf("%s/%v: %v", g.table, be, err)
			}
			if got := res.Cluster.SimTime; got != g.sim {
				t.Errorf("%s/%v: SimTime = %.17g, want %.17g", g.table, be, got, g.sim)
			}
			if got := res.LastEpoch().Loss; got != g.loss {
				t.Errorf("%s/%v: Loss = %.17g, want %.17g", g.table, be, got, g.loss)
			}
		}
	}
}

// The Quiver baseline contends like the pipeline: an oversubscribed
// topology stretches the schedule without touching training values.
func TestQuiverOversubscribedTopologySlows(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	ideal, err := RunQuiver(d, QuiverConfig{P: 8, Seed: 3, MaxBatches: 8})
	if err != nil {
		t.Fatal(err)
	}
	over, err := RunQuiver(d, QuiverConfig{P: 8, Seed: 3, MaxBatches: 8,
		Topology: cluster.OversubscribedTopology(4)})
	if err != nil {
		t.Fatal(err)
	}
	if ideal.LastEpoch().Loss != over.LastEpoch().Loss {
		t.Fatal("contention changed Quiver training values")
	}
	if over.Cluster.SimTime <= ideal.Cluster.SimTime {
		t.Fatalf("oversubscription did not slow Quiver: %v vs %v",
			over.Cluster.SimTime, ideal.Cluster.SimTime)
	}
	if _, err := RunQuiver(d, QuiverConfig{P: 4, Seed: 3,
		Topology: &cluster.Topology{Name: "bad", Oversub: -1}}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}
