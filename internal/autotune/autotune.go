// Package autotune picks the replication factor c and bulk size k for
// a training run the way the paper does (Section 7.3: "We report
// timings with the highest possible replication factor (c) and bulk
// minibatch count (k) without going out of memory for each GPU
// count"), replacing hand-tuned per-GPU-count tables with a memory
// model.
package autotune

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/pipeline"
)

// MemoryModel estimates per-GPU bytes for a configuration.
type MemoryModel struct {
	// GPUBytes is the per-device memory budget (the paper's A100s have
	// 80 GB; scaled simulations use proportionally less).
	GPUBytes int64
	// Overhead reserves a fraction of the budget for activations,
	// optimizer state and allocator slack.
	Overhead float64
}

// DefaultMemoryModel sizes the budget for the simulated scale: the
// bench-profile datasets are ~1/100 of the paper's, so the default
// budget is 1/100 of an A100.
func DefaultMemoryModel() MemoryModel {
	return MemoryModel{GPUBytes: 800 << 20, Overhead: 0.3}
}

// Estimate returns the modeled per-GPU memory use for a configuration
// of the Graph Replicated pipeline: replicated graph topology, the
// rank's 1.5D feature block, and the bulk sampling working set.
func (m MemoryModel) Estimate(d *datasets.Dataset, p, c, k int) int64 {
	graphBytes := int64(d.Graph.Adj.Bytes()) // replicated on every GPU

	// Feature block: n/(p/c) rows of f float64s.
	blockRows := d.Features.Rows * c / p
	featBytes := int64(blockRows) * int64(d.Features.Cols) * 8

	// Bulk working set: k/p batches, each growing by the fanout
	// product with the self-prefix convention.
	growth := 1
	frontier := 1
	for _, f := range d.Fanouts {
		frontier *= 1 + f
		growth += frontier
	}
	perBatchRows := int64(d.BatchSize) * int64(growth)
	batchesPerGPU := int64((k + p - 1) / p)
	// Each frontier row holds an adjacency row (~fanout entries at 16
	// bytes) plus a feature row fetched for propagation.
	bulkBytes := batchesPerGPU * perBatchRows * int64(16*maxFanout(d.Fanouts)+8*d.Features.Cols)

	return graphBytes + featBytes + bulkBytes
}

func maxFanout(fanouts []int) int {
	m := 1
	for _, f := range fanouts {
		if f > m {
			m = f
		}
	}
	return m
}

// Choice is a tuned configuration.
type Choice struct {
	C, K     int
	Estimate int64
}

// Tune returns the largest replication factor (a divisor of p) and the
// largest bulk size that fit the memory budget, preferring c over k as
// the paper's annotations do. "All minibatches at once" is reported as
// pipeline.KAll, never 0 — 0 is the "unset" sentinel TuneConfig tunes,
// so a tuned config round-trips through TuneConfig unchanged.
func Tune(m MemoryModel, d *datasets.Dataset, p int) (Choice, error) {
	budget := int64(float64(m.GPUBytes) * (1 - m.Overhead))
	total := d.NumBatches()

	best := Choice{C: 0}
	for c := p; c >= 1; c-- {
		if p%c != 0 {
			continue
		}
		// Largest k under budget for this c: try all, then halve.
		for k := total; k >= 1; k = k / 2 {
			est := m.Estimate(d, p, c, k)
			if est <= budget {
				kOut := k
				if k >= total {
					kOut = pipeline.KAll
				}
				if best.C == 0 {
					best = Choice{C: c, K: kOut, Estimate: est}
				}
				break
			}
		}
		if best.C != 0 {
			break
		}
	}
	if best.C == 0 {
		return Choice{}, fmt.Errorf("autotune: no configuration fits %d bytes at p=%d", m.GPUBytes, p)
	}
	return best, nil
}

// TuneCollectives fills the gradient all-reduce schedule when the
// config leaves it unset, mirroring the K/KAll sentinel convention:
// cluster.DefaultAlgorithm (the zero value) means "choose for me",
// while any explicit selection — an explicit cluster.FlatTree included
// — passes through untouched. The tuner picks Hierarchical when the
// run spans nodes (the slow tier then carries node-count, not
// rank-count, messages) and pins FlatTree otherwise, so a tuned config
// round-trips through TuneCollectives unchanged.
func TuneCollectives(model cluster.CostModel, p int, t cluster.Collectives) cluster.Collectives {
	if t.AllReduce != cluster.DefaultAlgorithm {
		return t
	}
	if model.GPUsPerNode == 0 {
		model = cluster.Perlmutter()
	}
	if p > model.GPUsPerNode {
		t.AllReduce = cluster.Hierarchical
	} else {
		t.AllReduce = cluster.FlatTree
	}
	return t
}

// TuneConfig fills C and K of a pipeline config using the memory
// model, and the collective-algorithm table via TuneCollectives,
// leaving explicit values untouched. K's "unset" sentinel is 0 and
// only 0: an explicit "all minibatches" request is pipeline.KAll (any
// negative K), which passes through untuned — K = 0 cannot mean both
// "all" and "choose for me" at once. The legacy HierAllReduce sugar
// counts as an explicit all-reduce selection.
func TuneConfig(m MemoryModel, d *datasets.Dataset, cfg pipeline.Config) (pipeline.Config, error) {
	// A selection made at either level — Config.Collectives or directly
	// on the model (the two are merged by the pipeline) — is explicit.
	if !cfg.HierAllReduce && cfg.Model.Collectives.AllReduce == cluster.DefaultAlgorithm {
		cfg.Collectives = TuneCollectives(cfg.Model, cfg.P, cfg.Collectives)
	}
	if cfg.C > 0 && cfg.K != 0 {
		return cfg, nil
	}
	choice, err := Tune(m, d, cfg.P)
	if err != nil {
		return cfg, err
	}
	if cfg.C <= 0 {
		cfg.C = choice.C
	}
	if cfg.K == 0 {
		cfg.K = choice.K
	}
	return cfg, nil
}
