package autotune

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/pipeline"
)

func TestEstimateMonotoneInCAndK(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	m := DefaultMemoryModel()
	// More replication -> bigger feature block.
	if m.Estimate(d, 8, 4, 4) <= m.Estimate(d, 8, 1, 4) {
		t.Fatal("estimate not increasing in c")
	}
	// More bulk -> bigger working set (p=2 so per-GPU batches differ).
	if m.Estimate(d, 2, 1, 8) <= m.Estimate(d, 2, 1, 1) {
		t.Fatal("estimate not increasing in k")
	}
	// More GPUs shrink both shares.
	if m.Estimate(d, 16, 2, 8) >= m.Estimate(d, 4, 2, 8) {
		t.Fatal("estimate not decreasing in p")
	}
}

func TestTunePrefersMaxC(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	m := MemoryModel{GPUBytes: 1 << 30, Overhead: 0.1} // plenty of room
	choice, err := Tune(m, d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if choice.C != 8 {
		t.Fatalf("with ample memory c should be max: got %d", choice.C)
	}
	if choice.K != pipeline.KAll {
		t.Fatalf("with ample memory k should be the explicit all sentinel %d: got %d", pipeline.KAll, choice.K)
	}
}

func TestTuneShrinksUnderPressure(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	ample, err := Tune(MemoryModel{GPUBytes: 1 << 30, Overhead: 0.1}, d, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A budget just below the maximal configuration forces the tuner
	// to give something up (smaller k or smaller c).
	m := MemoryModel{GPUBytes: ample.Estimate - 1024, Overhead: 0}
	tight, err := Tune(m, d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tight.C > ample.C {
		t.Fatalf("tight budget raised c: %+v vs %+v", tight, ample)
	}
	if tight.C == ample.C && tight.K == ample.K {
		t.Fatalf("tight budget changed nothing: %+v", tight)
	}
	if tight.Estimate > m.GPUBytes {
		t.Fatalf("tuned config exceeds budget: %+v", tight)
	}
}

func TestTuneFailsWhenNothingFits(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	if _, err := Tune(MemoryModel{GPUBytes: 1, Overhead: 0}, d, 4); err == nil {
		t.Fatal("expected error for impossible budget")
	}
}

func TestTuneConfigFillsZeros(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	m := MemoryModel{GPUBytes: 1 << 30, Overhead: 0.1}
	cfg, err := TuneConfig(m, d, pipeline.Config{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.C == 0 {
		t.Fatal("C not filled")
	}
	// Explicit values survive.
	cfg2, err := TuneConfig(m, d, pipeline.Config{P: 8, C: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.C != 2 || cfg2.K != 3 {
		t.Fatalf("explicit values overwritten: %+v", cfg2)
	}
}

func TestTuneConfigRespectsExplicitAllMinibatches(t *testing.T) {
	// K = pipeline.KAll is the explicit "all minibatches in one bulk"
	// request — the documented meaning of k=all everywhere else — and
	// must pass through untouched, not be mistaken for "unset" and
	// silently re-tuned (the regression this test pins down).
	d := datasets.ProductsLike(datasets.Tiny)
	// A budget too tight for k=all: tuning would pick a smaller k.
	ample, err := Tune(MemoryModel{GPUBytes: 1 << 30, Overhead: 0.1}, d, 8)
	if err != nil {
		t.Fatal(err)
	}
	tight := MemoryModel{GPUBytes: ample.Estimate - 1024, Overhead: 0}
	cfg, err := TuneConfig(tight, d, pipeline.Config{P: 8, C: 2, K: pipeline.KAll})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.K != pipeline.KAll || cfg.C != 2 {
		t.Fatalf("explicit all-minibatches config was re-tuned: %+v", cfg)
	}
	// With C unset, C is tuned but the explicit K still survives.
	cfg, err = TuneConfig(tight, d, pipeline.Config{P: 8, K: pipeline.KAll})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.K != pipeline.KAll {
		t.Fatalf("explicit all-minibatches K lost while tuning C: %+v", cfg)
	}
	if cfg.C <= 0 {
		t.Fatalf("C not tuned: %+v", cfg)
	}
	// A tuned config is a fixed point of TuneConfig.
	auto, err := TuneConfig(tight, d, pipeline.Config{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	again, err := TuneConfig(tight, d, auto)
	if err != nil {
		t.Fatal(err)
	}
	if again.C != auto.C || again.K != auto.K {
		t.Fatalf("TuneConfig not idempotent: c=%d k=%d vs c=%d k=%d",
			again.C, again.K, auto.C, auto.K)
	}
}

func TestTunedConfigRuns(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	cfg, err := TuneConfig(DefaultMemoryModel(), d, pipeline.Config{P: 4, Epochs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastEpoch().Total <= 0 {
		t.Fatal("tuned run produced no time")
	}
}

// The tuner fills the all-reduce schedule only when it is unset,
// mirroring the K/KAll sentinel convention: DefaultAlgorithm means
// "choose for me", every explicit selection — explicit FlatTree
// included — passes through untouched.
func TestTuneCollectivesSentinel(t *testing.T) {
	model := cluster.Perlmutter() // 4 GPUs per node

	got := TuneCollectives(model, 16, cluster.Collectives{})
	if got.AllReduce != cluster.Hierarchical {
		t.Fatalf("multi-node unset: chose %v, want hier", got.AllReduce)
	}
	got = TuneCollectives(model, 4, cluster.Collectives{})
	if got.AllReduce != cluster.FlatTree {
		t.Fatalf("single-node unset: chose %v, want flat", got.AllReduce)
	}
	// Explicit selections are left alone.
	for _, explicit := range []cluster.CollectiveAlgorithm{cluster.FlatTree, cluster.Ring} {
		got = TuneCollectives(model, 16, cluster.Collectives{AllReduce: explicit})
		if got.AllReduce != explicit {
			t.Fatalf("explicit %v overridden to %v", explicit, got.AllReduce)
		}
	}
	// A tuned table round-trips unchanged.
	once := TuneCollectives(model, 16, cluster.Collectives{})
	if twice := TuneCollectives(model, 16, once); twice != once {
		t.Fatalf("tuned table re-tuned: %+v vs %+v", twice, once)
	}
}

func TestTuneConfigFillsCollectives(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	cfg, err := TuneConfig(DefaultMemoryModel(), d,
		pipeline.Config{P: 16, C: 2, K: pipeline.KAll})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Collectives.AllReduce != cluster.Hierarchical {
		t.Fatalf("multi-node run tuned to %v", cfg.Collectives.AllReduce)
	}
	// Explicit ring survives tuning; the HierAllReduce sugar counts as
	// an explicit selection and is not overridden.
	cfg, err = TuneConfig(DefaultMemoryModel(), d,
		pipeline.Config{P: 16, C: 2, K: pipeline.KAll,
			Collectives: cluster.Collectives{AllReduce: cluster.Ring}})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Collectives.AllReduce != cluster.Ring {
		t.Fatalf("explicit ring overridden to %v", cfg.Collectives.AllReduce)
	}
	cfg, err = TuneConfig(DefaultMemoryModel(), d,
		pipeline.Config{P: 16, C: 2, K: pipeline.KAll, HierAllReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Collectives.AllReduce != cluster.DefaultAlgorithm {
		t.Fatalf("HierAllReduce sugar config retuned to %v", cfg.Collectives.AllReduce)
	}
	// A selection pinned directly on the model (the other place the
	// pipeline reads it from) is explicit too: the tuner must not fill
	// Config.Collectives with a choice that would out-merge it.
	model := cluster.Perlmutter()
	model.Collectives.AllReduce = cluster.Ring
	cfg, err = TuneConfig(DefaultMemoryModel(), d,
		pipeline.Config{P: 16, C: 2, K: pipeline.KAll, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Model.Collectives.Merge(cfg.Collectives); got.AllReduce != cluster.Ring {
		t.Fatalf("model-level explicit ring out-merged to %v", got.AllReduce)
	}
}
