package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/distsample"
)

// TprobRow compares measured 1.5D probability-generation communication
// time against the closed-form model of Section 5.2.1 under one
// collective algorithm. For the paper's FlatTree schedule the model is
//
//	T_prob = α(p/c² + log c) + β(kbd/c + c·kbd/p)
//
// and for Ring the all-reduce term swaps in the ring schedule's
// 2(c−1) latency and 2(c−1)/c bandwidth factors.
type TprobRow struct {
	Dataset   string
	Algorithm string
	P, C      int
	Measured  float64
	Predicted float64
	Ratio     float64
}

// tprobAlgorithms are the all-reduce schedules Tprob sweeps; FlatTree
// first so default consumers read the paper's rows.
var tprobAlgorithms = []cluster.CollectiveAlgorithm{cluster.FlatTree, cluster.Ring}

// Tprob sweeps replication factors at fixed p and reports measured vs
// modeled communication time for the first sampling layer, once per
// collective algorithm (the 1.5D schedule's row all-reduce follows the
// model's Collectives table).
func Tprob(w io.Writer, dataset string, p int, cs []int, o Options) ([]TprobRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName(dataset, o.Profile)
	if err != nil {
		return nil, err
	}
	batches := d.Batches()
	k := len(batches)
	if o.MaxBatches > 0 && o.MaxBatches < k {
		k = o.MaxBatches
	}
	b := float64(d.BatchSize)
	deg := d.Graph.AvgDegree()
	alpha := o.Model.Alpha[1] // inter-node tier dominates at scale
	beta := o.Model.Beta[1]

	fmt.Fprintf(w, "T_prob model check (Section 5.2.1), dataset=%s p=%d, first layer\n", dataset, p)
	fmt.Fprintf(w, "%-9s %3s %12s %12s %8s\n", "algo", "c", "measured(s)", "model(s)", "ratio")
	var rows []TprobRow
	for _, alg := range tprobAlgorithms {
		model := o.Model
		model.Collectives.AllReduce = alg
		for _, c := range cs {
			if c > 0 && (p%c != 0 || (p/c)%c != 0) {
				continue // the 1.5D algorithm needs c^2 | p
			}
			if alg != cluster.FlatTree && c < 2 {
				// A single-member row communicator degenerates every
				// schedule to FlatTree; rerunning would duplicate the
				// flat row under another label.
				continue
			}
			res, err := RunPartitionedSampling(d, "sage", p, c, true, o.MaxBatches, 1, o.Seed, model)
			if err != nil {
				return nil, err
			}
			measured := res.PhaseComm(distsample.PhaseProbability)
			kb := float64(k) * b
			// α and β contributions of the per-stage gathers/scatters
			// (p/c² stages) plus the row all-reduce under the selected
			// schedule.
			arAlpha := math.Log2(float64(c) + 1)
			arBeta := float64(c) * kb * deg / float64(p)
			if alg == cluster.Ring && c >= 2 {
				arAlpha = 2 * float64(c-1)
				arBeta *= 2 * float64(c-1) / float64(c)
			}
			predicted := alpha*(float64(p)/float64(c*c)+arAlpha) +
				beta*(kb*deg/float64(c)+arBeta)*8
			row := TprobRow{Dataset: dataset, Algorithm: alg.String(), P: p, C: c,
				Measured: measured, Predicted: predicted}
			if predicted > 0 {
				row.Ratio = measured / predicted
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-9s %3d %12.5f %12.5f %8.2f\n", row.Algorithm, c, measured, predicted, row.Ratio)
		}
	}
	return rows, nil
}
