package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/datasets"
	"repro/internal/distsample"
)

// TprobRow compares measured 1.5D probability-generation communication
// time against the paper's closed-form model of Section 5.2.1:
//
//	T_prob = α(p/c² + log c) + β(kbd/c + c·kbd/p)
type TprobRow struct {
	Dataset   string
	P, C      int
	Measured  float64
	Predicted float64
	Ratio     float64
}

// Tprob sweeps replication factors at fixed p and reports measured vs
// modeled communication time for the first sampling layer.
func Tprob(w io.Writer, dataset string, p int, cs []int, o Options) ([]TprobRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName(dataset, o.Profile)
	if err != nil {
		return nil, err
	}
	batches := d.Batches()
	k := len(batches)
	if o.MaxBatches > 0 && o.MaxBatches < k {
		k = o.MaxBatches
	}
	b := float64(d.BatchSize)
	deg := d.Graph.AvgDegree()
	alpha := o.Model.Alpha[1] // inter-node tier dominates at scale
	beta := o.Model.Beta[1]

	fmt.Fprintf(w, "T_prob model check (Section 5.2.1), dataset=%s p=%d, first layer\n", dataset, p)
	fmt.Fprintf(w, "%3s %12s %12s %8s\n", "c", "measured(s)", "model(s)", "ratio")
	var rows []TprobRow
	for _, c := range cs {
		res, err := RunPartitionedSampling(d, "sage", p, c, true, o.MaxBatches, 1, o.Seed, o.Model)
		if err != nil {
			return nil, err
		}
		measured := res.PhaseComm(distsample.PhaseProbability)
		kb := float64(k) * b
		predicted := alpha*(float64(p)/float64(c*c)+math.Log2(float64(c)+1)) +
			beta*(kb*deg/float64(c)+float64(c)*kb*deg/float64(p))*8
		row := TprobRow{Dataset: dataset, P: p, C: c, Measured: measured, Predicted: predicted}
		if predicted > 0 {
			row.Ratio = measured / predicted
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%3d %12.5f %12.5f %8.2f\n", c, measured, predicted, row.Ratio)
	}
	return rows, nil
}
