package bench

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/pipeline"
)

// Table2 prints the system capability matrix of Table 2: which
// distributed minibatch GNN systems offer GPU sampling, multi-node
// training without full replication, and multiple sampler families.
func Table2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: distributed minibatch GNN systems")
	fmt.Fprintf(w, "%-12s %-12s %-18s %-16s\n", "system", "GPU sampling", "multi-node train*", "multiple samplers")
	type row struct {
		name             string
		gpu, multi, many bool
	}
	rows := []row{
		{"DistDGL", false, true, true},
		{"Quiver", true, true, false},
		{"GNNLab", true, false, false},
		{"WholeGraph", true, false, false},
		{"DSP", true, true, false},
		{"PGLBox", true, false, false},
		{"SALIENT++", false, true, false},
		{"NextDoor", true, false, true},
		{"P3", false, true, false},
		{"This work", true, true, true},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-12s %-18s %-16s\n", r.name, mark(r.gpu), mark(r.multi), mark(r.many))
	}
	fmt.Fprintln(w, "* excludes systems that replicate both graph and features on every node")
}

// Table3Row describes one dataset analog.
type Table3Row struct {
	Name     string
	Vertices int
	Edges    int
	Batches  int
	Features int
	AvgDeg   float64
}

// Table3 prints the dataset statistics table (Table 3) for the
// generated analogs at the given profile.
func Table3(w io.Writer, profile datasets.Profile) ([]Table3Row, error) {
	fmt.Fprintf(w, "Table 3: dataset analogs (profile %s)\n", profile)
	fmt.Fprintf(w, "%-10s %10s %12s %8s %9s %7s\n", "name", "vertices", "edges", "batches", "features", "avgdeg")
	var rows []Table3Row
	for _, name := range datasets.Names() {
		d, err := datasets.ByName(name, profile)
		if err != nil {
			return nil, err
		}
		r := Table3Row{
			Name:     name,
			Vertices: d.Graph.NumVertices(),
			Edges:    d.Graph.NumEdges(),
			Batches:  d.NumBatches(),
			Features: d.Features.Cols,
			AvgDeg:   d.Graph.AvgDegree(),
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "%-10s %10d %12d %8d %9d %7.1f\n",
			r.Name, r.Vertices, r.Edges, r.Batches, r.Features, r.AvgDeg)
	}
	return rows, nil
}

// AccuracyResult is the Section 8.1.3 analog: accuracy after training
// the full pipeline, compared against untrained parameters.
type AccuracyResult struct {
	TestAccuracy      float64
	UntrainedAccuracy float64
	FinalLoss         float64
	FirstLoss         float64
}

// Accuracy reproduces the model-quality check of Section 8.1.3: train
// the SAGE pipeline on the learnable SBM dataset and report test
// accuracy. The paper's claim under test is that the bulk sampling
// optimizations do not hurt accuracy; here the distributed bulk
// pipeline must reach the accuracy a serial training run reaches.
// Pass d == nil for the default (paper-analog) dataset.
func Accuracy(w io.Writer, d *datasets.Dataset, epochs int, seed int64) (*AccuracyResult, error) {
	if epochs <= 0 {
		epochs = 15
	}
	if d == nil {
		d = datasets.DefaultSBM()
	}
	cfg := pipeline.Config{P: 4, C: 2, Epochs: epochs, Seed: seed, LR: 0.02,
		Model: cluster.Perlmutter()}
	res, err := pipeline.Run(d, cfg)
	if err != nil {
		return nil, err
	}
	acc := pipeline.Evaluate(d, res.Params, cfg, d.Test, nil)
	fresh := pipeline.Evaluate(d, pipeline.Run0Params(d, cfg), cfg, d.Test, nil)
	out := &AccuracyResult{
		TestAccuracy:      acc,
		UntrainedAccuracy: fresh,
		FinalLoss:         res.LastEpoch().Loss,
		FirstLoss:         res.Epochs[0].Loss,
	}
	fmt.Fprintf(w, "Accuracy (Section 8.1.3 analog, SBM dataset, %d epochs, p=4, c=2)\n", epochs)
	fmt.Fprintf(w, "test accuracy:       %.3f\n", out.TestAccuracy)
	fmt.Fprintf(w, "untrained accuracy:  %.3f\n", out.UntrainedAccuracy)
	fmt.Fprintf(w, "loss first->last:    %.4f -> %.4f\n", out.FirstLoss, out.FinalLoss)
	return out, nil
}
