// Worker pool for sweep experiments. This file is the package's one
// concurrency seam: the benchpool analyzer (internal/analysis) rejects
// goroutine spawns and channel plumbing anywhere else in the package,
// so every parallel sweep funnels through runCells and inherits its
// determinism and panic-isolation guarantees.
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// runCells executes fn(0..n-1) on a pool of at most workers OS-level
// goroutines and returns the per-cell errors indexed by cell. Cells
// must be independent — the pool gives no ordering between them — and
// callers recover determinism by folding results in cell order
// afterwards, which is why parallel sweeps print tables byte-identical
// to serial ones. workers <= 1 (or n <= 1) runs inline with no
// goroutines at all. A panicking cell is isolated: its panic is
// recovered into its error slot and the remaining cells keep running.
func runCells(n, workers int, fn func(cell int) error) []error {
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = runCell(i, fn)
		}
		return errs
	}
	// Work-stealing by atomic counter: no channels, no per-cell
	// goroutine churn, and cells are claimed in index order so early
	// (typically cheaper) cells start first.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runCell(i, fn)
			}
		}()
	}
	wg.Wait()
	return errs
}

// runCell runs one cell, converting a panic into its error.
func runCell(i int, fn func(int) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("bench: sweep cell %d panicked: %v", i, p)
		}
	}()
	return fn(i)
}
