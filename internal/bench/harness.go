// Package bench is the experiment harness: one entry point per table
// and figure of the paper's evaluation (Section 8), each printing the
// same rows/series the paper reports. Absolute numbers come from the
// simulated cost model, so the meaningful comparison is the shape —
// who wins, by what factor, and where scaling stops — not the raw
// seconds.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/distsample"
	"repro/internal/pipeline"
)

// Options tunes experiment size so the same harness serves unit tests
// (Tiny), CI (Small) and the recorded results (Bench).
type Options struct {
	Profile    datasets.Profile
	GPUCounts  []int
	MaxBatches int // per-epoch batch cap with extrapolation; 0 = all
	Seed       int64
	Model      cluster.CostModel

	// Overlap runs the paper's pipeline on the staged engine's
	// software-pipelined schedule in the experiments that train with
	// pipeline.Run and consult this knob (Fig4/Fig6, both Graph
	// Replicated); baselines stay bulk synchronous, and
	// OverlapAnalysis ignores the knob — it measures sequential vs
	// overlapped for both algorithms (replicated and 1.5D
	// partitioned) unconditionally. Off reproduces the paper's
	// schedule.
	Overlap bool

	// Collectives selects the collective schedules every experiment's
	// simulated clusters charge under (merged into Model.Collectives;
	// the CollectiveSweep experiment overrides it per row). The zero
	// value keeps the paper's FlatTree forms.
	Collectives cluster.Collectives

	// Topology selects the physical-link topology every experiment's
	// simulated clusters charge under (set on Model.Topology; the
	// Contention experiment sweeps its own topologies per row). nil
	// keeps the pure α–β model — no shared-link contention.
	Topology *cluster.Topology

	// Backend selects the simulator's execution backend for every
	// experiment's clusters (set on Model.Backend): goroutines or the
	// discrete-event loop. The large-p scaling points (p ≥ 4096) are
	// only practical under the DES backend. Zero resolves
	// $GNN_BACKEND, then goroutines.
	Backend cluster.Backend

	// SweepWorkers bounds the worker pool the sweep experiments run
	// their cells on (see runCells): 0 defaults to GOMAXPROCS, 1 runs
	// serially. Tables are byte-identical at any setting — cells are
	// independent simulations and fold in enumeration order.
	SweepWorkers int

	// PerfReps is how many times the perf suite repeats each pinned
	// workload before taking the wall-clock min and median; 0 means
	// the committed default (5, what BENCH_*.json baselines are
	// captured with).
	PerfReps int
}

func (o Options) withDefaults() Options {
	if len(o.GPUCounts) == 0 {
		o.GPUCounts = []int{4, 8, 16, 32, 64, 128}
	}
	if o.Model.GPUsPerNode == 0 {
		o.Model = cluster.Perlmutter()
	}
	o.Model.Collectives = o.Model.Collectives.Merge(o.Collectives)
	if o.Topology != nil {
		o.Model.Topology = o.Topology
	}
	if o.Backend != cluster.DefaultBackend {
		o.Model.Backend = o.Backend
	}
	if o.Seed == 0 {
		o.Seed = 20240101
	}
	if o.SweepWorkers == 0 {
		o.SweepWorkers = runtime.GOMAXPROCS(0)
	}
	if o.PerfReps == 0 {
		o.PerfReps = perfReps
	}
	return o
}

// CFor mirrors the paper's per-GPU-count replication factors in the
// Figure 4 annotations: replication grows with aggregate memory.
func CFor(p int) int {
	switch {
	case p <= 4:
		return 1
	case p <= 8:
		return 2
	case p <= 32:
		return 4
	default:
		return 8
	}
}

// KFor mirrors the paper's bulk sizes: small GPU counts lack the
// memory to sample every minibatch in one bulk (k < all); larger
// counts sample all at once (k=all, reported as 0 here).
func KFor(p, totalBatches int) int {
	if p <= 4 {
		return totalBatches / 2
	}
	return 0 // all
}

// Fig4Row is one bar of Figure 4: our pipeline's per-epoch breakdown
// plus the Quiver baseline total at the same GPU count.
type Fig4Row struct {
	Dataset      string
	P, C, K      int
	Sampling     float64
	FeatureFetch float64
	Propagation  float64
	Total        float64
	QuiverTotal  float64
	Speedup      float64
}

// Fig4 reproduces Figure 4: Graph Replicated pipeline vs the Quiver
// baseline across GPU counts on all three datasets.
func Fig4(w io.Writer, o Options) ([]Fig4Row, error) {
	o = o.withDefaults()
	var rows []Fig4Row
	fmt.Fprintf(w, "Figure 4: Graph Replicated pipeline vs Quiver (per-epoch seconds, simulated)\n")
	fmt.Fprintf(w, "%-10s %5s %3s %6s %10s %10s %10s %10s %10s %8s\n",
		"dataset", "p", "c", "k", "sampling", "fetch", "prop", "total", "quiver", "speedup")
	for _, name := range datasets.Names() {
		d, err := datasets.ByName(name, o.Profile)
		if err != nil {
			return nil, err
		}
		for _, p := range o.GPUCounts {
			c := CFor(p)
			k := KFor(p, d.NumBatches())
			res, err := pipeline.Run(d, pipeline.Config{
				P: p, C: c, K: k,
				MaxBatches: o.MaxBatches,
				Seed:       o.Seed,
				Model:      o.Model,
				Overlap:    o.Overlap,
			})
			if err != nil {
				return nil, err
			}
			q, err := baseline.RunQuiver(d, baseline.QuiverConfig{
				P: p, MaxBatches: o.MaxBatches, Seed: o.Seed, Model: o.Model,
			})
			if err != nil {
				return nil, err
			}
			e := res.LastEpoch()
			row := Fig4Row{
				Dataset: name, P: p, C: c, K: k,
				Sampling: e.Sampling, FeatureFetch: e.FeatureFetch,
				Propagation: e.Propagation, Total: e.Total,
				QuiverTotal: q.LastEpoch().Total,
			}
			if row.Total > 0 {
				row.Speedup = row.QuiverTotal / row.Total
			}
			rows = append(rows, row)
			kLabel := fmt.Sprintf("%d", k)
			if k == 0 {
				kLabel = "all"
			}
			fmt.Fprintf(w, "%-10s %5d %3d %6s %10.4f %10.4f %10.4f %10.4f %10.4f %7.2fx\n",
				name, p, c, kLabel, e.Sampling, e.FeatureFetch, e.Propagation,
				row.Total, row.QuiverTotal, row.Speedup)
		}
	}
	return rows, nil
}

// Fig5Row compares Quiver GPU sampling against UVA sampling.
type Fig5Row struct {
	Dataset  string
	P        int
	GPUTotal float64
	UVATotal float64
}

// Fig5 reproduces Figure 5: Quiver with GPU sampling vs UVA sampling
// on Papers-like and Protein-like.
func Fig5(w io.Writer, o Options) ([]Fig5Row, error) {
	o = o.withDefaults()
	var rows []Fig5Row
	fmt.Fprintf(w, "Figure 5: Quiver GPU vs UVA sampling (per-epoch seconds, simulated)\n")
	fmt.Fprintf(w, "%-10s %5s %12s %12s\n", "dataset", "p", "quiver-gpu", "quiver-uva")
	for _, name := range []string{"papers", "protein"} {
		d, err := datasets.ByName(name, o.Profile)
		if err != nil {
			return nil, err
		}
		for _, p := range o.GPUCounts {
			gpu, err := baseline.RunQuiver(d, baseline.QuiverConfig{
				P: p, MaxBatches: o.MaxBatches, Seed: o.Seed, Model: o.Model,
			})
			if err != nil {
				return nil, err
			}
			uva, err := baseline.RunQuiver(d, baseline.QuiverConfig{
				P: p, UVA: true, MaxBatches: o.MaxBatches, Seed: o.Seed, Model: o.Model,
			})
			if err != nil {
				return nil, err
			}
			row := Fig5Row{Dataset: name, P: p,
				GPUTotal: gpu.LastEpoch().Total, UVATotal: uva.LastEpoch().Total}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-10s %5d %12.4f %12.4f\n", name, p, row.GPUTotal, row.UVATotal)
		}
	}
	return rows, nil
}

// Fig6Row compares the pipeline with and without feature replication.
type Fig6Row struct {
	Dataset             string
	P                   int
	WithRep, NoRep      float64
	FetchRep, FetchNone float64
}

// Fig6 reproduces Figure 6: the Graph Replicated pipeline with the
// Figure 4 replication factors vs the same pipeline forced to c=1.
func Fig6(w io.Writer, o Options) ([]Fig6Row, error) {
	o = o.withDefaults()
	var rows []Fig6Row
	fmt.Fprintf(w, "Figure 6: effect of feature replication (per-epoch seconds, simulated)\n")
	fmt.Fprintf(w, "%-10s %5s %10s %10s %12s %12s\n",
		"dataset", "p", "with-rep", "no-rep", "fetch(rep)", "fetch(none)")
	for _, name := range []string{"papers", "protein"} {
		d, err := datasets.ByName(name, o.Profile)
		if err != nil {
			return nil, err
		}
		for _, p := range o.GPUCounts {
			run := func(c int) (pipeline.EpochStats, error) {
				res, err := pipeline.Run(d, pipeline.Config{
					P: p, C: c, K: KFor(p, d.NumBatches()),
					MaxBatches: o.MaxBatches, Seed: o.Seed, Model: o.Model,
					Overlap: o.Overlap,
				})
				if err != nil {
					return pipeline.EpochStats{}, err
				}
				return res.LastEpoch(), nil
			}
			rep, err := run(CFor(p))
			if err != nil {
				return nil, err
			}
			none, err := run(1)
			if err != nil {
				return nil, err
			}
			row := Fig6Row{Dataset: name, P: p,
				WithRep: rep.Total, NoRep: none.Total,
				FetchRep: rep.FeatureFetch, FetchNone: none.FeatureFetch}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-10s %5d %10.4f %10.4f %12.4f %12.4f\n",
				name, p, row.WithRep, row.NoRep, row.FetchRep, row.FetchNone)
		}
	}
	return rows, nil
}

// Fig7Row is one bar of Figure 7: the Graph Partitioned sampling
// breakdown at one (dataset, p, c).
type Fig7Row struct {
	Dataset     string
	Sampler     string
	P, C        int
	Probability float64
	Sampling    float64
	Extraction  float64
	Total       float64
	Comm        float64
	Comp        float64
	CPURef      float64 // serial CPU LADIES reference (LADIES only)
}

// RunPartitionedSampling measures one Graph Partitioned bulk sampling
// run (sampling only — Figure 7 excludes training). layers caps the
// sampled depth: LADIES uses 1 per Table 4; 0 means the dataset's full
// fanout depth.
func RunPartitionedSampling(d *datasets.Dataset, sampler string, p, c int, aware bool,
	maxBatches, layers int, seed int64, model cluster.CostModel) (*cluster.Result, error) {
	cl := cluster.New(p, model)
	grid := cluster.NewGrid(cl, p, c)
	if grid.Rows%grid.C != 0 {
		return nil, fmt.Errorf("bench: c^2 must divide p (p=%d c=%d)", p, c)
	}
	set := distsample.NewPartitionedSet(grid, d.Graph.Adj, aware)
	batches := d.Batches()
	if maxBatches > 0 && maxBatches < len(batches) {
		batches = batches[:maxBatches]
	}
	if layers <= 0 || layers > len(d.Fanouts) {
		layers = len(d.Fanouts)
	}
	fanouts := d.Fanouts[:layers]
	return cl.Run(func(r *cluster.Rank) error {
		local := distsample.LocalBatches(grid, r.ID, batches)
		if sampler == "ladies" {
			distsample.SampleLADIESPartitioned(r, set[r.ID], local, d.LayerWidth, layers, seed)
		} else {
			distsample.SampleSAGEPartitioned(r, set[r.ID], local, fanouts, seed)
		}
		return nil
	})
}

// Fig7 reproduces Figure 7 for one sampler ("sage" or "ladies"):
// Graph Partitioned sampling time broken into probability / sampling /
// extraction and comm / comp at p in {16,32,64} with the paper's
// per-count replication factors.
func Fig7(w io.Writer, sampler string, o Options) ([]Fig7Row, error) {
	o = o.withDefaults()
	counts := o.GPUCounts
	if len(counts) == 6 { // default: Figure 7 uses {16, 32, 64}
		counts = []int{16, 32, 64}
	}
	cOf := map[int]int{16: 2, 32: 4, 64: 4}
	var rows []Fig7Row
	fmt.Fprintf(w, "Figure 7 (%s): Graph Partitioned sampling breakdown (seconds, simulated)\n", sampler)
	fmt.Fprintf(w, "%-10s %5s %3s %12s %10s %11s %10s %10s %10s %10s\n",
		"dataset", "p", "c", "probability", "sampling", "extraction", "total", "comm", "comp", "cpu-ref")
	for _, name := range []string{"protein", "papers"} {
		d, err := datasets.ByName(name, o.Profile)
		if err != nil {
			return nil, err
		}
		cpuRef := 0.0
		if sampler == "ladies" {
			cpuRef, err = baseline.CPULadiesReference(d, 1, o.MaxBatches, o.Seed, o.Model)
			if err != nil {
				return nil, err
			}
		}
		for _, p := range counts {
			c := cOf[p]
			if c == 0 {
				c = CFor(p) / 2
				if c == 0 {
					c = 1
				}
			}
			layers := 0
			if sampler == "ladies" {
				layers = 1
			}
			res, err := RunPartitionedSampling(d, sampler, p, c, true, o.MaxBatches, layers, o.Seed, o.Model)
			if err != nil {
				return nil, err
			}
			scale := extrapolation(d, o.MaxBatches, p/c)
			row := Fig7Row{
				Dataset: name, Sampler: sampler, P: p, C: c,
				Probability: res.Phase(distsample.PhaseProbability) * scale,
				Sampling:    res.Phase(distsample.PhaseSampling) * scale,
				Extraction:  res.Phase(distsample.PhaseExtraction) * scale,
				CPURef:      cpuRef,
			}
			row.Total = row.Probability + row.Sampling + row.Extraction
			row.Comm = (res.PhaseComm(distsample.PhaseProbability) +
				res.PhaseComm(distsample.PhaseSampling) +
				res.PhaseComm(distsample.PhaseExtraction)) * scale
			row.Comp = row.Total - row.Comm
			rows = append(rows, row)
			fmt.Fprintf(w, "%-10s %5d %3d %12.4f %10.4f %11.4f %10.4f %10.4f %10.4f %10.4f\n",
				name, p, c, row.Probability, row.Sampling, row.Extraction,
				row.Total, row.Comm, row.Comp, row.CPURef)
		}
	}
	return rows, nil
}

func extrapolation(d *datasets.Dataset, maxBatches, blocks int) float64 {
	total := d.NumBatches()
	if maxBatches <= 0 || maxBatches >= total {
		return 1
	}
	return pipeline.BlockScale(total, maxBatches, blocks)
}

// SortRows orders rows for stable output (dataset, then p).
func SortRows(rows []Fig4Row) {
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Dataset != rows[b].Dataset {
			return rows[a].Dataset < rows[b].Dataset
		}
		return rows[a].P < rows[b].P
	})
}
