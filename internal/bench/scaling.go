package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/pipeline"
)

// ScalingRow is one cell of the scaling study: one (mode, algorithm,
// collective schedule, topology, p) training run.
type ScalingRow struct {
	Mode       string // "weak" (batches ∝ p) or "strong" (fixed batches)
	Algorithm  string // "replicated" or "partitioned"
	Collective string // all-reduce schedule the run charged under
	Topology   string
	P, C       int
	Batches    int // global batches simulated per epoch
	// EpochSec is the simulated seconds the run charged. Weak rows
	// report the raw makespan of the truncated run (per-rank work is
	// pinned, so the raw clock is the comparable quantity); strong
	// rows report the full epoch.
	EpochSec   float64
	Efficiency float64 // vs the series' smallest p (weak: T₀·(w/w₀)/T; strong: T₀·p₀/(T·p))
	WallSec    float64 // simulator wall-clock for the run (real seconds)
	LedgerPeak int     // contention ledger high-water spans (0 = ideal topology)
}

// ScalingGPUCounts is the default GPU-count axis of the scaling study.
// It reaches past the p=512 the paper's scaling argument is about —
// far past the p≤128 the figure experiments sweep — into the p=4096
// and p=8192 regime the discrete-event backend makes simulable (one
// event loop instead of 8192 goroutines; see cluster.DESBackend).
var ScalingGPUCounts = []int{8, 32, 128, 512, 4096, 8192}

// scalingPartitionedC returns the replication factor the partitioned
// algorithm uses at p, or 0 when no valid grid exists: the pipeline
// needs c | p and c² | p, and the sweep pins c=2 (so the 1.5D
// algorithm's degradation at fixed replication stays visible), which
// requires 4 | p. Counts that don't qualify are skipped, not errors —
// the Tprob experiment set that precedent for invalid (p, c) combos.
func scalingPartitionedC(p int) int {
	if p%4 != 0 {
		return 0
	}
	return 2
}

// Scaling runs the weak- and strong-scaling study on one dataset
// ("products" at the chosen profile): both distributed algorithms,
// each all-reduce schedule, ideal and oversubscribed topologies,
// across GPU counts up to p=512.
//
//   - Weak scaling caps the epoch at min(p, total) batches, one per
//     rank, so per-rank work is constant and the ideal epoch time is
//     flat; efficiency is T(p₀)/T(p).
//   - Strong scaling runs the full batch list at every p, so the ideal
//     epoch time halves as p doubles; efficiency is T(p₀)·p₀/(T(p)·p).
//
// WallSec reports the real time the simulator needed per run — the
// simulator-performance axis this study exists to keep honest (the
// perf suite gates it; see Perf).
func Scaling(w io.Writer, o Options) ([]ScalingRow, error) {
	// An unset GPU list must be detected before withDefaults fills it,
	// or an explicit six-count -gpus list would be indistinguishable
	// from the harness default.
	counts := o.GPUCounts
	defaulted := len(counts) == 0
	o = o.withDefaults()
	if defaulted {
		counts = ScalingGPUCounts
	}
	d, err := datasets.ByName("products", o.Profile)
	if err != nil {
		return nil, err
	}
	total := d.NumBatches()
	if o.MaxBatches > 0 && o.MaxBatches < total {
		total = o.MaxBatches
	}

	collectives := []struct {
		name string
		tbl  cluster.Collectives
	}{
		{"flat", cluster.Collectives{}},
		{"ring", cluster.Collectives{AllReduce: cluster.Ring, AllToAll: cluster.Pairwise}},
		{"hier", cluster.Collectives{AllReduce: cluster.Hierarchical}},
	}
	topologies := []struct {
		name string
		topo *cluster.Topology
	}{
		{"ideal", nil},
		{"oversub", cluster.OversubscribedTopology(4)},
	}

	fmt.Fprintf(w, "Scaling study: %s/%s, weak + strong, per algorithm x collective x topology (simulated epoch seconds)\n",
		d.Name, o.Profile)
	fmt.Fprintf(w, "%-6s %-12s %-6s %-8s %5s %3s %7s %10s %10s %9s %7s\n",
		"mode", "algorithm", "coll", "topology", "p", "c", "batches", "epoch-sec", "efficiency", "wall-sec", "ledger")

	var rows []ScalingRow
	for _, mode := range []string{"weak", "strong"} {
		for _, alg := range []string{"replicated", "partitioned"} {
			for _, coll := range collectives {
				for _, topo := range topologies {
					var base ScalingRow
					basePerBlock := 1
					haveBase := false
					for _, p := range counts {
						cfg := pipeline.Config{
							P: p, C: CFor(p), K: pipeline.KAll,
							Epochs: 1, Seed: o.Seed,
							Model:       o.Model,
							Collectives: coll.tbl,
							Topology:    topo.topo,
						}
						if alg == "partitioned" {
							c := scalingPartitionedC(p)
							if c == 0 {
								fmt.Fprintf(w, "%-6s %-12s %-6s %-8s %5d   - skipped: partitioned grid needs 4 | p\n",
									mode, alg, coll.name, topo.name, p)
								continue
							}
							// The fixed-c=2 grid degrades superlinearly with p
							// (its sampling collectives grow with the grid
							// dimensions — the failure mode the sweep exists to
							// show): one p=8192 cell simulates a 168-second
							// epoch and costs ~10 wall-minutes. The default
							// axis stops the partitioned series at p=512; an
							// explicit -gpus list still runs any count
							// (measured blow-up rows are recorded in
							// EXPERIMENTS.md).
							if defaulted && p > 512 {
								fmt.Fprintf(w, "%-6s %-12s %-6s %-8s %5d   - skipped: fixed c=2 grid intractable past p=512 (pass -gpus to force; see EXPERIMENTS.md)\n",
									mode, alg, coll.name, topo.name, p)
								continue
							}
							cfg.Algorithm = pipeline.GraphPartitioned
							cfg.SparsityAware = true
							cfg.C = c
						}
						batches := total
						if mode == "weak" && p < total {
							batches = p // one batch per rank
						}
						cfg.MaxBatches = batches
						//gnnvet:allow walltime — scaling rows report real harness wall time next to the simulated makespan
						t0 := time.Now()
						res, err := pipeline.Run(d, cfg)
						if err != nil {
							return nil, fmt.Errorf("bench: scaling %s/%s/%s/%s p=%d: %w",
								mode, alg, coll.name, topo.name, p, err)
						}
						row := ScalingRow{
							Mode: mode, Algorithm: alg, Collective: coll.name,
							Topology: topo.name, P: p, C: cfg.C, Batches: batches,
							//gnnvet:allow walltime — wall-clock column of the scaling study
							WallSec:    time.Since(t0).Seconds(),
							LedgerPeak: res.Cluster.LedgerPeakSpans,
						}
						// Sampling blocks sharing the batch list: ranks
						// (replicated) or grid rows (partitioned).
						blocks := p
						if alg == "partitioned" {
							blocks = p / cfg.C
						}
						perBlock := (batches + blocks - 1) / blocks
						if mode == "weak" {
							// Raw truncated-run makespan: per-block work is
							// pinned, so no extrapolation may enter the
							// comparison (LastEpoch().Total is scaled to a
							// full epoch when MaxBatches truncates).
							row.EpochSec = res.Cluster.SimTime
						} else {
							row.EpochSec = res.LastEpoch().Total
						}
						if !haveBase {
							base = row
							basePerBlock = perBlock
							haveBase = true
							row.Efficiency = 1
						} else if row.EpochSec > 0 {
							if mode == "weak" {
								// Constant per-block work: a flat raw clock is
								// 100% (scaled when ceil-division makes the
								// per-block share differ from the base's).
								row.Efficiency = base.EpochSec * float64(perBlock) / float64(basePerBlock) / row.EpochSec
							} else {
								// Fixed total work: halving epoch time per doubling is 100%.
								row.Efficiency = base.EpochSec * float64(base.P) / (row.EpochSec * float64(row.P))
							}
						}
						rows = append(rows, row)
						fmt.Fprintf(w, "%-6s %-12s %-6s %-8s %5d %3d %7d %10.4f %10.3f %9.3f %7d\n",
							row.Mode, row.Algorithm, row.Collective, row.Topology, row.P, row.C,
							row.Batches, row.EpochSec, row.Efficiency, row.WallSec, row.LedgerPeak)
					}
				}
			}
		}
	}
	return rows, nil
}
