package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/pipeline"
)

// ScalingRow is one cell of the scaling study: one (mode, algorithm,
// collective schedule, topology, p) training run.
type ScalingRow struct {
	Mode       string // "weak" (batches ∝ p) or "strong" (fixed batches)
	Algorithm  string // "replicated", "partitioned" (c=2) or "partitioned-cmax"
	Collective string // all-reduce schedule the run charged under
	Topology   string
	P, C       int
	Batches    int // global batches simulated per epoch
	// EpochSec is the simulated seconds the run charged. Weak rows
	// report the raw makespan of the truncated run (per-rank work is
	// pinned, so the raw clock is the comparable quantity); strong
	// rows report the full epoch.
	EpochSec   float64
	Efficiency float64 // vs the series' smallest p (weak: T₀·(w/w₀)/T; strong: T₀·p₀/(T·p))
	WallSec    float64 // simulator wall-clock for the run (real seconds)
	LedgerPeak int     // contention ledger high-water spans (0 = ideal topology)
}

// ScalingGPUCounts is the default GPU-count axis of the scaling study.
// It reaches past the p=512 the paper's scaling argument is about —
// far past the p≤128 the figure experiments sweep — into the p=4096
// and p=8192 regime the discrete-event backend makes simulable (one
// event loop instead of 8192 goroutines; see cluster.DESBackend).
var ScalingGPUCounts = []int{8, 32, 128, 512, 4096, 8192}

// scalingPartitionedC returns the replication factor the fixed-c
// partitioned series uses at p, or 0 when no valid grid exists: the
// pipeline needs c | p and c² | p, and the series pins c=2 (so the
// 1.5D algorithm's degradation at fixed replication stays visible),
// which requires 4 | p. Counts that don't qualify are skipped, not
// errors — the Tprob experiment set that precedent for invalid (p, c)
// combos.
func scalingPartitionedC(p int) int {
	if p%4 != 0 {
		return 0
	}
	return 2
}

// CMax returns the largest replication factor the 1.5D grid admits at
// p — the biggest c with c | p and c² | p — or 0 when even c=2 does
// not fit. Growing c toward √p shrinks the stage count p/c² and the
// column-communicator size, which is what keeps the partitioned
// algorithm simulable (and, on real hardware, communication-avoiding)
// at large p; the scaling study sweeps c ∈ {2, CMax(p)} and reports
// where the series cross.
func CMax(p int) int {
	for c := isqrt(p); c >= 2; c-- {
		if p%c == 0 && p%(c*c) == 0 {
			return c
		}
	}
	return 0
}

func isqrt(n int) int {
	c := 0
	for (c+1)*(c+1) <= n {
		c++
	}
	return c
}

// scalingCell is one enumerated cell of the study: either a skip (with
// its reason) or a run whose row the pool fills in.
type scalingCell struct {
	mode, alg string
	collName  string
	coll      cluster.Collectives
	topoName  string
	topo      *cluster.Topology
	p, c      int
	batches   int
	series    int // index of the (mode, alg, coll, topo) efficiency series
	perBlock  int // per-sampling-block batch share, for weak efficiency
	skip      string
	row       ScalingRow
}

// Scaling runs the weak- and strong-scaling study on one dataset
// ("products" at the chosen profile): the replicated algorithm and two
// partitioned series (fixed c=2, and c=CMax(p) — the c-sweep whose
// crossover the table footer reports), each all-reduce schedule, ideal
// and oversubscribed topologies, across the GPU axis.
//
//   - Weak scaling caps the epoch at min(p, total) batches, one per
//     rank, so per-rank work is constant and the ideal epoch time is
//     flat; efficiency is T(p₀)/T(p).
//   - Strong scaling runs the full batch list at every p, so the ideal
//     epoch time halves as p doubles; efficiency is T(p₀)·p₀/(T(p)·p).
//
// Cells are independent simulations and run on the sweep worker pool
// (Options.SweepWorkers); results fold in enumeration order, so the
// table is byte-identical at any worker count (goroutine-backend
// cells on contended topologies additionally run isolated from pool
// siblings — see the run-phase comment). WallSec reports the
// real time the simulator needed per run — the simulator-performance
// axis this study exists to keep honest (the perf suite gates it; see
// Perf).
func Scaling(w io.Writer, o Options) ([]ScalingRow, error) {
	// An unset GPU list must be detected before withDefaults fills it,
	// or an explicit six-count -gpus list would be indistinguishable
	// from the harness default.
	counts := o.GPUCounts
	defaulted := len(counts) == 0
	o = o.withDefaults()
	if defaulted {
		counts = ScalingGPUCounts
	}
	d, err := datasets.ByName("products", o.Profile)
	if err != nil {
		return nil, err
	}
	total := d.NumBatches()
	if o.MaxBatches > 0 && o.MaxBatches < total {
		total = o.MaxBatches
	}

	collectives := []struct {
		name string
		tbl  cluster.Collectives
	}{
		{"flat", cluster.Collectives{}},
		{"ring", cluster.Collectives{AllReduce: cluster.Ring, AllToAll: cluster.Pairwise}},
		{"hier", cluster.Collectives{AllReduce: cluster.Hierarchical}},
	}
	topologies := []struct {
		name string
		topo *cluster.Topology
	}{
		{"ideal", nil},
		{"oversub", cluster.OversubscribedTopology(4)},
	}

	// Enumerate every cell up front, in print order; the pool then
	// runs them in any order and the fold below walks them back in
	// enumeration order.
	var cells []*scalingCell
	series := 0
	for _, mode := range []string{"weak", "strong"} {
		for _, alg := range []string{"replicated", "partitioned", "partitioned-cmax"} {
			for _, coll := range collectives {
				for _, topo := range topologies {
					for _, p := range counts {
						cell := &scalingCell{
							mode: mode, alg: alg,
							collName: coll.name, coll: coll.tbl,
							topoName: topo.name, topo: topo.topo,
							p: p, series: series,
						}
						cell.c = CFor(p)
						switch alg {
						case "partitioned":
							cell.c = scalingPartitionedC(p)
							if cell.c == 0 {
								cell.skip = "partitioned grid needs 4 | p"
							} else if defaulted && p > 512 {
								// The fixed-c=2 grid degrades superlinearly with
								// p (its sampling collectives grow with the grid
								// dimensions — the failure mode this series
								// exists to show): one p=8192 cell simulates a
								// 168-second epoch and costs ~10 wall-minutes.
								// The default axis stops the series at p=512; an
								// explicit GPU list still runs any count
								// (measured blow-up rows are in EXPERIMENTS.md).
								cell.skip = fmt.Sprintf("fixed c=2 grid intractable past p=512 (force with -experiment scaling -gpus %d; see EXPERIMENTS.md)", p)
							}
						case "partitioned-cmax":
							cell.c = CMax(p)
							if cell.c == 0 {
								cell.skip = "no replication factor with c^2 | p"
							} else if cell.c == 2 {
								cell.skip = "cmax=2 duplicates the c=2 series"
							}
						}
						batches := total
						if mode == "weak" && p < total {
							batches = p // one batch per rank
						}
						cell.batches = batches
						// Sampling blocks sharing the batch list: ranks
						// (replicated) or grid rows (partitioned).
						blocks := p
						if cell.c > 0 && alg != "replicated" {
							blocks = p / cell.c
						}
						cell.perBlock = (batches + blocks - 1) / blocks
						cells = append(cells, cell)
					}
					series++
				}
			}
		}
	}

	runOne := func(cell *scalingCell) error {
		cfg := pipeline.Config{
			P: cell.p, C: cell.c, K: pipeline.KAll,
			Epochs: 1, Seed: o.Seed,
			Model:       o.Model,
			Collectives: cell.coll,
			Topology:    cell.topo,
			MaxBatches:  cell.batches,
		}
		if cell.alg != "replicated" {
			cfg.Algorithm = pipeline.GraphPartitioned
			cfg.SparsityAware = true
		}
		//gnnvet:allow walltime — scaling rows report real harness wall time next to the simulated makespan
		t0 := time.Now()
		res, err := pipeline.Run(d, cfg)
		if err != nil {
			return fmt.Errorf("bench: scaling %s/%s/%s/%s p=%d: %w",
				cell.mode, cell.alg, cell.collName, cell.topoName, cell.p, err)
		}
		cell.row = ScalingRow{
			Mode: cell.mode, Algorithm: cell.alg, Collective: cell.collName,
			Topology: cell.topoName, P: cell.p, C: cell.c, Batches: cell.batches,
			//gnnvet:allow walltime — wall-clock column of the scaling study
			WallSec:    time.Since(t0).Seconds(),
			LedgerPeak: res.Cluster.LedgerPeakSpans,
		}
		if cell.mode == "weak" {
			// Raw truncated-run makespan: per-block work is pinned, so
			// no extrapolation may enter the comparison
			// (LastEpoch().Total is scaled to a full epoch when
			// MaxBatches truncates).
			cell.row.EpochSec = res.Cluster.SimTime
		} else {
			cell.row.EpochSec = res.LastEpoch().Total
		}
		return nil
	}

	// Two run phases: cells whose simulation is scheduler-order-robust
	// go through the worker pool; goroutine-backend cells on a
	// contended topology run serially AFTER the pool drains. The
	// contention ledger commits flows in real lock-acquisition order
	// (first-committed-first-served, see cluster/contention.go), so a
	// goroutine-backend cluster's ledger order shifts when sibling
	// cells share the scheduler — isolating those cells gives them the
	// same solo-process conditions a -sweepworkers 1 run does. The DES
	// backend is immune (one event loop per cluster fixes the order),
	// and contention-off charging is scheduler-independent by the
	// bit-identicality discipline. (At GOMAXPROCS>1 the goroutine
	// backend's contended timings are scheduler-dependent even run to
	// run with no pool at all — the perf gate pins GOMAXPROCS=1 for
	// exactly this reason.)
	des := o.Model.Backend.Resolve() == cluster.DESBackend
	var robust, sensitive []int
	for i, cell := range cells {
		if cell.skip != "" {
			continue
		}
		if des || cell.topo == nil {
			robust = append(robust, i)
		} else {
			sensitive = append(sensitive, i)
		}
	}
	errs := make([]error, len(cells))
	runPhase := func(idx []int, workers int) {
		sub := runCells(len(idx), workers, func(k int) error { return runOne(cells[idx[k]]) })
		for k, e := range sub {
			errs[idx[k]] = e
		}
	}
	runPhase(robust, o.SweepWorkers)
	runPhase(sensitive, 1)

	fmt.Fprintf(w, "Scaling study: %s/%s, weak + strong, per algorithm x collective x topology (simulated epoch seconds)\n",
		d.Name, o.Profile)
	fmt.Fprintf(w, "%-6s %-16s %-6s %-8s %5s %3s %7s %10s %10s %9s %7s\n",
		"mode", "algorithm", "coll", "topology", "p", "c", "batches", "epoch-sec", "efficiency", "wall-sec", "ledger")

	// Fold in enumeration order: efficiency bases are per series, and
	// the printed table never depends on pool scheduling.
	var rows []ScalingRow
	bases := map[int]*scalingCell{}
	for i, cell := range cells {
		if cell.skip != "" {
			fmt.Fprintf(w, "%-6s %-16s %-6s %-8s %5d   - skipped: %s\n",
				cell.mode, cell.alg, cell.collName, cell.topoName, cell.p, cell.skip)
			continue
		}
		if errs[i] != nil {
			return nil, errs[i]
		}
		row := cell.row
		base := bases[cell.series]
		if base == nil {
			bases[cell.series] = cell
			row.Efficiency = 1
		} else if row.EpochSec > 0 {
			if cell.mode == "weak" {
				// Constant per-block work: a flat raw clock is 100%
				// (scaled when ceil-division makes the per-block share
				// differ from the base's).
				row.Efficiency = base.row.EpochSec * float64(cell.perBlock) / float64(base.perBlock) / row.EpochSec
			} else {
				// Fixed total work: halving epoch time per doubling is 100%.
				row.Efficiency = base.row.EpochSec * float64(base.row.P) / (row.EpochSec * float64(row.P))
			}
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-6s %-16s %-6s %-8s %5d %3d %7d %10.4f %10.3f %9.3f %7d\n",
			row.Mode, row.Algorithm, row.Collective, row.Topology, row.P, row.C,
			row.Batches, row.EpochSec, row.Efficiency, row.WallSec, row.LedgerPeak)
	}

	printCSweepCrossover(w, rows)
	return rows, nil
}

// printCSweepCrossover footers the table with the c-sweep verdict: per
// (mode, collective, topology), the smallest p where the c=CMax(p)
// grid beats fixed c=2 on simulated epoch time. The crossover is the
// study's replication headline — past it, scaling the 1.5D algorithm
// means scaling c with p, not holding it fixed.
func printCSweepCrossover(w io.Writer, rows []ScalingRow) {
	type key struct{ mode, coll, topo string }
	c2 := map[key]map[int]float64{}
	for _, r := range rows {
		if r.Algorithm != "partitioned" {
			continue
		}
		k := key{r.Mode, r.Collective, r.Topology}
		if c2[k] == nil {
			c2[k] = map[int]float64{}
		}
		c2[k][r.P] = r.EpochSec
	}
	for _, r := range rows {
		if r.Algorithm != "partitioned-cmax" {
			continue
		}
		k := key{r.Mode, r.Collective, r.Topology}
		t2, ok := c2[k][r.P]
		if !ok {
			continue
		}
		if r.EpochSec < t2 {
			fmt.Fprintf(w, "c-sweep crossover (%s/%s/%s): c=%d beats c=2 from p=%d (%.4f vs %.4f epoch-sec)\n",
				r.Mode, r.Collective, r.Topology, r.C, r.P, r.EpochSec, t2)
			delete(c2, k)
		}
	}
}
