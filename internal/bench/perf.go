package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/pipeline"
	"repro/internal/resilience"
)

// This file is the simulator's own performance-regression suite: a
// pinned workload matrix measured in wall-clock seconds, allocations
// and contention-ledger growth, written to / compared against a
// committed BENCH_*.json baseline (see ROADMAP.md for the naming
// convention). The simulated seconds double as a determinism gate:
// they depend only on the seed, so any drift from the baseline means
// a behavioral change, not a slow machine.

// PerfRow is one pinned workload's measurement.
type PerfRow struct {
	// Name identifies the workload ("epoch-replicated-small-p16", ...).
	Name string `json:"name"`
	// WallSec is the minimum wall-clock seconds over the repetitions —
	// the standard noise-robust statistic (scheduler interference only
	// ever adds time).
	WallSec float64 `json:"wall_sec"`
	// WallMedianSec is the median wall-clock seconds over the same
	// repetitions, reported beside the min so a noisy capture is
	// visible in the baseline itself (a median far above the min means
	// the host was contended). Optional for schema compatibility:
	// baselines captured before the field existed simply omit it, and
	// the gate never compares it.
	WallMedianSec float64 `json:"wall_median_sec,omitempty"`
	// SimSec is the run's simulated makespan — deterministic given the
	// seed, compared exactly against the baseline.
	SimSec float64 `json:"sim_sec"`
	// AllocBytes is heap bytes allocated per run.
	AllocBytes int64 `json:"alloc_bytes"`
	// Allocs is heap allocation count per run.
	Allocs int64 `json:"allocs"`
	// LedgerPeak is the contention ledger's high-water span count (0
	// for ideal-topology workloads).
	LedgerPeak int `json:"ledger_peak"`
}

// PerfBaseline is the schema of a committed BENCH_*.json file.
type PerfBaseline struct {
	// Schema names the format; bump when fields change meaning.
	Schema string `json:"schema"`
	// Note records capture conditions (host class, GOMAXPROCS).
	Note string    `json:"note"`
	Rows []PerfRow `json:"rows"`
}

// PerfSchema is the current baseline schema identifier.
const PerfSchema = "gnn-repro-perf/v1"

// perfCase is one pinned workload of the matrix.
type perfCase struct {
	name string
	prof datasets.Profile
	cfg  pipeline.Config
}

// perfMatrix pins the workloads the suite always measures, spanning
// the charging paths that matter: the replicated and 1.5D partitioned
// epoch at the acceptance configuration (small, p=16), the large-p
// regime the scaling study sweeps (tiny, p=512), and the contention
// ledger under an oversubscribed fabric.
func perfMatrix() []perfCase {
	oversub := cluster.OversubscribedTopology(4)
	des := cluster.DESBackend
	return []perfCase{
		{"epoch-replicated-small-p16", datasets.Small,
			pipeline.Config{P: 16, C: 4, K: pipeline.KAll, Epochs: 1, Seed: 20240101}},
		{"epoch-partitioned-small-p16", datasets.Small,
			pipeline.Config{P: 16, C: 2, K: pipeline.KAll, Epochs: 1, Seed: 20240101,
				Algorithm: pipeline.GraphPartitioned, SparsityAware: true}},
		{"epoch-replicated-tiny-p512", datasets.Tiny,
			pipeline.Config{P: 512, C: 8, K: pipeline.KAll, Epochs: 1, Seed: 20240101}},
		{"epoch-contention-tiny-p128-oversub", datasets.Tiny,
			pipeline.Config{P: 128, C: 8, K: pipeline.KAll, Epochs: 1, Seed: 20240101,
				Topology: oversub}},
		// Discrete-event backend rows: the same simulated workloads run
		// as one event loop instead of p goroutines. Contention-off rows
		// must match their goroutine twins' simulated seconds exactly;
		// the contention row may differ in the last digits — the ledger
		// is first-committed-first-served in arrival order (see
		// contention.go), and each backend has its own deterministic
		// arrival order. The wall-clock columns are what the DES rebase
		// is accountable to, including the p=2048 point no goroutine row
		// covers.
		{"epoch-replicated-tiny-p512-des", datasets.Tiny,
			pipeline.Config{P: 512, C: 8, K: pipeline.KAll, Epochs: 1, Seed: 20240101,
				Backend: des}},
		{"epoch-replicated-tiny-p2048-des", datasets.Tiny,
			pipeline.Config{P: 2048, C: 8, K: pipeline.KAll, Epochs: 1, Seed: 20240101,
				Backend: des}},
		{"epoch-partitioned-small-p16-des", datasets.Small,
			pipeline.Config{P: 16, C: 2, K: pipeline.KAll, Epochs: 1, Seed: 20240101,
				Algorithm: pipeline.GraphPartitioned, SparsityAware: true, Backend: des}},
		// Large-p partitioned row at c=CMax(512)=16 — the replication
		// factor that keeps the 1.5D grid tractable past p=512 (the
		// scaling study's cmax series; fixed c=2 is the regime whose
		// blow-up the cap message documents). Guards the arena hot path
		// under many small per-rank frontiers, not just the p=16 shape.
		{"epoch-partitioned-tiny-p512-des", datasets.Tiny,
			pipeline.Config{P: 512, C: 16, K: pipeline.KAll, Epochs: 1, Seed: 20240101,
				Algorithm: pipeline.GraphPartitioned, SparsityAware: true, Backend: des}},
		{"epoch-contention-tiny-p128-oversub-des", datasets.Tiny,
			pipeline.Config{P: 128, C: 8, K: pipeline.KAll, Epochs: 1, Seed: 20240101,
				Topology: oversub, Backend: des}},
		// Crash-recovery row: the replicated acceptance shape run for two
		// epochs with an epoch-1 checkpoint and a pinned fail-stop at
		// 0.7ms simulated — ~73% of the clean span, inside epoch 2 — so
		// every rep pays the full recovery path (fail-stop unwind, poison
		// sweep, checkpoint decode, resumed attempt). Guards the seam's
		// wall cost; sim-sec pins the recovered timeline's determinism.
		{"epoch-recovery-small-p16", datasets.Small,
			pipeline.Config{P: 16, C: 4, K: pipeline.KAll, Epochs: 2, Seed: 20240101,
				CkptInterval: 1, Faults: resilience.FailAt(8, 0.0007)}},
	}
}

// perfReps is the default repetition count per workload; the
// wall-clock minimum damps scheduler noise while keeping the suite
// CI-cheap. Options.PerfReps (-perfreps) overrides it.
const perfReps = 5

// Perf measures the pinned workload matrix and prints one row per
// workload. Options contributes only the cost model and the
// repetition count; the matrix's sizes, seeds and topologies are
// pinned so baselines stay comparable.
func Perf(w io.Writer, o Options) ([]PerfRow, error) {
	o = o.withDefaults()
	reps := o.PerfReps
	fmt.Fprintf(w, "Simulator perf suite (GOMAXPROCS=%d, %d reps, wall min/median)\n", runtime.GOMAXPROCS(0), reps)
	fmt.Fprintf(w, "%-40s %10s %10s %12s %14s %10s %8s\n",
		"workload", "wall-sec", "wall-med", "sim-sec", "alloc-bytes", "allocs", "ledger")
	var rows []PerfRow
	for _, pc := range perfMatrix() {
		d, err := datasets.ByName("products", pc.prof)
		if err != nil {
			return nil, err
		}
		cfg := pc.cfg
		cfg.Model = o.Model
		// Warm-up run: faults in the dataset cache and steadies the heap.
		if _, err := pipeline.Run(d, cfg); err != nil {
			return nil, fmt.Errorf("bench: perf %s: %w", pc.name, err)
		}
		row := PerfRow{Name: pc.name}
		walls := make([]float64, 0, reps)
		for rep := 0; rep < reps; rep++ {
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			//gnnvet:allow walltime — the perf harness's job is measuring real wall time (sim_sec carries the simulated clock)
			t0 := time.Now()
			res, err := pipeline.Run(d, cfg)
			//gnnvet:allow walltime — wall_sec perf-baseline measurement, not simulated time
			wall := time.Since(t0).Seconds()
			runtime.ReadMemStats(&m1)
			if err != nil {
				return nil, fmt.Errorf("bench: perf %s: %w", pc.name, err)
			}
			walls = append(walls, wall)
			row.SimSec = res.Cluster.SimTime
			// Allocation counters take the min over reps like the wall
			// clock: runtime background allocations (GC bookkeeping,
			// timers) only ever add, and a single noisy rep must not
			// move the near-deterministic counters the 10% gate bounds.
			bytes := int64(m1.TotalAlloc - m0.TotalAlloc)
			allocs := int64(m1.Mallocs - m0.Mallocs)
			if rep == 0 || bytes < row.AllocBytes {
				row.AllocBytes = bytes
			}
			if rep == 0 || allocs < row.Allocs {
				row.Allocs = allocs
			}
			row.LedgerPeak = res.Cluster.LedgerPeakSpans
		}
		row.WallSec = minOf(walls)
		row.WallMedianSec = medianOf(walls)
		rows = append(rows, row)
		fmt.Fprintf(w, "%-40s %10.3f %10.3f %12.6g %14d %10d %8d\n",
			row.Name, row.WallSec, row.WallMedianSec, row.SimSec, row.AllocBytes, row.Allocs, row.LedgerPeak)
	}
	return rows, nil
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// WritePerfBaseline writes rows as a BENCH_*.json baseline file.
func WritePerfBaseline(path string, rows []PerfRow) error {
	b := PerfBaseline{
		Schema: PerfSchema,
		Note:   fmt.Sprintf("captured with GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
		Rows:   rows,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPerfBaseline loads a committed BENCH_*.json baseline.
func ReadPerfBaseline(path string) (*PerfBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b PerfBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: bad perf baseline %s: %w", path, err)
	}
	if b.Schema != PerfSchema {
		return nil, fmt.Errorf("bench: perf baseline %s has schema %q, want %q (re-capture with -perfout)",
			path, b.Schema, PerfSchema)
	}
	return &b, nil
}

// PerfWallTolerance is the regression gate's wall-time allowance: a
// measured minimum more than 25% over the committed baseline fails.
// Wall time is machine-dependent, so treat gate failures on unusually
// slow hosts as advisory — but in a pinned CI environment a trip means
// the simulator really got slower.
const PerfWallTolerance = 1.25

// perfWallSlack is the absolute allowance added on top of the
// relative tolerance: sub-100ms workloads jitter by tens of
// milliseconds under any scheduler, and a regression that small is
// never the signal this gate exists for.
const perfWallSlack = 0.1

// perfAllocTolerance bounds allocation-count growth; allocations are
// near-deterministic, so the bound is tighter than the wall gate.
const perfAllocTolerance = 1.10

// PerfGate compares measured rows against the committed baseline:
// missing workloads, >25% wall-time regressions, >10% allocation
// growth, and any simulated-seconds drift (a determinism breach, not a
// performance one) all fail. Wall time is machine-class dependent, so
// a gate running on hardware slower than the capture host can widen
// (or with <1 values tighten) the relative allowance via the
// PERF_WALL_TOLERANCE environment variable (a ratio; the committed
// default is PerfWallTolerance) instead of editing the baseline —
// allocation and simulated-seconds checks are unaffected by it.
func PerfGate(w io.Writer, baselinePath string, rows []PerfRow) error {
	base, err := ReadPerfBaseline(baselinePath)
	if err != nil {
		return err
	}
	wallTol := PerfWallTolerance
	if s := os.Getenv("PERF_WALL_TOLERANCE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bench: bad PERF_WALL_TOLERANCE %q", s)
		}
		wallTol = v
		fmt.Fprintf(w, "perf gate: wall tolerance overridden to %.2fx via PERF_WALL_TOLERANCE\n", v)
	}
	byName := map[string]PerfRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	var failures []string
	for _, b := range base.Rows {
		got, ok := byName[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: workload missing from the measured matrix", b.Name))
			continue
		}
		if b.WallSec > 0 && got.WallSec > b.WallSec*wallTol+perfWallSlack {
			failures = append(failures, fmt.Sprintf("%s: wall %.3fs vs baseline %.3fs (>%.0f%% regression)",
				b.Name, got.WallSec, b.WallSec, (wallTol-1)*100))
		}
		if b.Allocs > 0 && float64(got.Allocs) > float64(b.Allocs)*perfAllocTolerance {
			failures = append(failures, fmt.Sprintf("%s: allocs %d vs baseline %d (>%.0f%% growth)",
				b.Name, got.Allocs, b.Allocs, (perfAllocTolerance-1)*100))
		}
		if drift := relDiff(got.SimSec, b.SimSec); drift > 1e-9 {
			failures = append(failures, fmt.Sprintf("%s: simulated seconds drifted %.6g -> %.6g (determinism breach; re-capture the baseline only for a deliberate model change)",
				b.Name, b.SimSec, got.SimSec))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(w, "PERF GATE FAIL: %s\n", f)
		}
		return fmt.Errorf("bench: perf gate failed (%d finding(s)) vs %s", len(failures), baselinePath)
	}
	fmt.Fprintf(w, "perf gate OK vs %s (%d workloads within tolerance)\n", baselinePath, len(base.Rows))
	return nil
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d
	}
	return d / m
}
