package bench

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/pipeline"
	"repro/internal/resilience"
)

// ResilienceRow is one cell of the checkpoint-interval sweep: a
// training strategy run at one checkpoint cadence, once cleanly and
// once with an injected mid-run fail-stop.
type ResilienceRow struct {
	Strategy string
	Interval int // checkpoint every N completed epochs; 0 = none

	// CleanSim is the unfailed run's simulated seconds at this
	// interval, including the per-boundary checkpoint charges;
	// OverheadPct is its overhead relative to the no-checkpoint run.
	CleanSim    float64
	OverheadPct float64

	// FailAt is the injected fail-stop time; Attempts, ResumeEpoch and
	// WastedSim report the recovery (see resilience.Stats). TotalSim is
	// the complete simulated cost of the failed run: the final
	// (bit-identical) timeline plus the discarded work — what the
	// failure actually cost at this checkpoint cadence.
	FailAt      float64
	Attempts    int
	ResumeEpoch int
	WastedSim   float64
	TotalSim    float64
}

// resilienceEpochs is the pinned epoch count of the sweep: boundaries
// at 1..3 give every swept interval a distinct checkpoint schedule.
const resilienceEpochs = 4

// Resilience sweeps the checkpoint interval against an injected
// fail-stop for the paper's two training strategies, measuring the
// trade the subsystem exists to navigate: frequent checkpoints cost
// simulated time on every run (each rank charges the serialized state
// over HostLink at each boundary), while sparse ones make a failure
// expensive (everything past the last boundary is re-executed). The
// injected failure lands at ~60% of the no-checkpoint clean run's
// simulated span (rank p/2), or at the caller's explicit plan when
// faults is non-nil. Cells run serially: each failed run already
// contains restarts, and the table is small.
func Resilience(w io.Writer, dataset string, p int, intervals []int, faults *cluster.FaultPlan, o Options) ([]ResilienceRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName(dataset, o.Profile)
	if err != nil {
		return nil, err
	}
	if len(intervals) == 0 {
		intervals = []int{0, 1, 2, 4}
	}
	strategies := []struct {
		name string
		cfg  pipeline.Config
	}{
		{"replicated", pipeline.Config{P: p, C: 4}},
		{"partitioned", pipeline.Config{P: p, C: 2,
			Algorithm: pipeline.GraphPartitioned, SparsityAware: true}},
	}
	fmt.Fprintf(w, "Checkpoint/restore sweep, dataset=%s p=%d epochs=%d (fault at ~60%% of clean span)\n",
		dataset, p, resilienceEpochs)
	fmt.Fprintf(w, "%-12s %9s %12s %9s %12s %9s %7s %12s %12s\n",
		"strategy", "interval", "clean sim s", "ovhd %", "fail at s", "attempts", "resume", "wasted sim s", "total sim s")
	var rows []ResilienceRow
	for _, st := range strategies {
		base := st.cfg
		base.Epochs = resilienceEpochs
		base.Seed = o.Seed
		base.MaxBatches = o.MaxBatches
		base.Collectives = o.Collectives
		base.Topology = o.Topology
		base.Backend = o.Backend
		base.Model = o.Model

		clean0, err := pipeline.Run(d, base)
		if err != nil {
			return nil, fmt.Errorf("bench: resilience %s clean baseline: %w", st.name, err)
		}
		plan := faults
		if plan == nil {
			plan = resilience.FailAt(p/2, clean0.Cluster.SimTime*0.6)
		}
		for _, interval := range intervals {
			cfg := base
			cfg.CkptInterval = interval
			clean := clean0
			if interval != 0 {
				if clean, err = pipeline.Run(d, cfg); err != nil {
					return nil, fmt.Errorf("bench: resilience %s interval %d clean: %w", st.name, interval, err)
				}
			}
			cfg.Faults = plan
			failed, err := pipeline.Run(d, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: resilience %s interval %d faulted: %w", st.name, interval, err)
			}
			rec := failed.Recovery
			row := ResilienceRow{
				Strategy:    st.name,
				Interval:    interval,
				CleanSim:    clean.Cluster.SimTime,
				OverheadPct: (clean.Cluster.SimTime/clean0.Cluster.SimTime - 1) * 100,
				Attempts:    rec.Attempts,
				WastedSim:   rec.WastedSim,
				TotalSim:    failed.Cluster.SimTime + rec.WastedSim,
			}
			if len(rec.Failures) > 0 {
				row.FailAt = rec.Failures[0].At
				row.ResumeEpoch = rec.RestartEpochs[0]
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-12s %9d %12.5f %9.2f %12.5f %9d %7d %12.5f %12.5f\n",
				row.Strategy, row.Interval, row.CleanSim, row.OverheadPct,
				row.FailAt, row.Attempts, row.ResumeEpoch, row.WastedSim, row.TotalSim)
		}
	}
	return rows, nil
}
