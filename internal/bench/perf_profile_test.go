package bench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/pipeline"
)

// BenchmarkP512DES exists to profile the p=512 DES workload; it is not
// part of the perf gate.
func BenchmarkP512DES(b *testing.B) {
	d, err := datasets.ByName("products", datasets.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.Config{P: 512, C: 8, K: pipeline.KAll, Epochs: 1, Seed: 20240101,
		Backend: cluster.DESBackend}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP8192Weak compares the execution backends head to head on
// the scaling study's largest replicated cell (tiny profile, one epoch
// of 4 batches across 8192 ranks — the weak-scaling p=8192 row). Not
// part of the perf gate; the numbers are recorded in EXPERIMENTS.md.
func BenchmarkP8192Weak(b *testing.B) {
	d, err := datasets.ByName("products", datasets.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	for _, be := range []cluster.Backend{cluster.GoroutineBackend, cluster.DESBackend} {
		b.Run(be.String(), func(b *testing.B) {
			cfg := pipeline.Config{P: 8192, C: 8, K: pipeline.KAll, Epochs: 1, Seed: 20240101,
				Backend: be}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.Run(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
