package bench

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func perfRowsForTest() []PerfRow {
	return []PerfRow{
		{Name: "a", WallSec: 1.0, SimSec: 0.5, Allocs: 1000, AllocBytes: 1 << 20},
		{Name: "b", WallSec: 0.05, SimSec: 0.25, Allocs: 500, AllocBytes: 1 << 18},
	}
}

func writeBaseline(t *testing.T, rows []PerfRow) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WritePerfBaseline(path, rows); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPerfGatePassesWithinTolerance(t *testing.T) {
	base := perfRowsForTest()
	path := writeBaseline(t, base)
	got := append([]PerfRow(nil), base...)
	got[0].WallSec = 1.2  // +20% < 25% tolerance
	got[1].WallSec = 0.12 // tiny workload: covered by the absolute slack
	got[0].Allocs = 1050  // +5% < 10%
	if err := PerfGate(io.Discard, path, got); err != nil {
		t.Fatalf("gate failed within tolerance: %v", err)
	}
}

func TestPerfGateFailsOnWallRegression(t *testing.T) {
	base := perfRowsForTest()
	path := writeBaseline(t, base)
	got := append([]PerfRow(nil), base...)
	got[0].WallSec = 1.4 // +40% and past the absolute slack
	var sb strings.Builder
	if err := PerfGate(&sb, path, got); err == nil {
		t.Fatal("gate passed a 40% wall regression")
	}
	if !strings.Contains(sb.String(), "wall") {
		t.Fatalf("failure output does not name the wall regression: %q", sb.String())
	}
}

func TestPerfGateFailsOnSimDrift(t *testing.T) {
	base := perfRowsForTest()
	path := writeBaseline(t, base)
	got := append([]PerfRow(nil), base...)
	got[1].SimSec = 0.2500001 // simulated time is deterministic; any drift fails
	if err := PerfGate(io.Discard, path, got); err == nil {
		t.Fatal("gate passed a simulated-seconds drift")
	}
}

func TestPerfGateFailsOnMissingWorkload(t *testing.T) {
	base := perfRowsForTest()
	path := writeBaseline(t, base)
	if err := PerfGate(io.Discard, path, base[:1]); err == nil {
		t.Fatal("gate passed with a workload missing")
	}
}

func TestPerfGateFailsOnAllocGrowth(t *testing.T) {
	base := perfRowsForTest()
	path := writeBaseline(t, base)
	got := append([]PerfRow(nil), base...)
	got[0].Allocs = 1200 // +20% > 10%
	if err := PerfGate(io.Discard, path, got); err == nil {
		t.Fatal("gate passed a 20% allocation growth")
	}
}

func TestPerfBaselineRejectsWrongSchema(t *testing.T) {
	path := writeBaseline(t, perfRowsForTest())
	data := `{"schema":"other/v9","rows":[]}`
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPerfBaseline(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestScalingTinySmoke pins that the scaling experiment completes to
// p=512 at the tiny profile (the CI smoke) and yields a full,
// positive-timed row matrix.
func TestScalingTinySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling smoke is a long test")
	}
	rows, err := Scaling(io.Discard, Options{Profile: 0, GPUCounts: []int{8, 512}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 2 modes x 3 collectives x 2 topologies x 5 algorithm-p cells:
	// replicated and partitioned-c=2 run both counts; the cmax series
	// runs only p=512 (c=16), since CMax(8)=2 duplicates the c=2 row.
	if want := 2 * 3 * 2 * 5; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	sawCmax := false
	for _, r := range rows {
		if r.Algorithm == "partitioned-cmax" {
			sawCmax = true
			if r.P != 512 || r.C != 16 {
				t.Fatalf("cmax row at wrong grid: %+v", r)
			}
		}
	}
	if !sawCmax {
		t.Fatal("no partitioned-cmax rows in the sweep")
	}
	for _, r := range rows {
		if r.EpochSec <= 0 {
			t.Fatalf("row %+v has non-positive epoch time", r)
		}
		if r.P == 512 && r.Topology == "oversub" && r.LedgerPeak == 0 {
			t.Fatalf("oversub p=512 row booked no ledger spans: %+v", r)
		}
	}
}

func writeFile(path, data string) error { return os.WriteFile(path, []byte(data), 0o644) }
