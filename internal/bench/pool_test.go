package bench

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
)

func TestRunCellsCoversEveryCellOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var counts [n]atomic.Int32
		errs := runCells(n, workers, func(cell int) error {
			counts[cell].Add(1)
			return nil
		})
		if len(errs) != n {
			t.Fatalf("workers=%d: %d error slots, want %d", workers, len(errs), n)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("workers=%d: cell %d ran %d times", workers, i, got)
			}
			if errs[i] != nil {
				t.Errorf("workers=%d: cell %d errored: %v", workers, i, errs[i])
			}
		}
	}
}

func TestRunCellsKeepsErrorsIndexed(t *testing.T) {
	want := errors.New("boom")
	errs := runCells(10, 4, func(cell int) error {
		if cell%3 == 0 {
			return fmt.Errorf("cell %d: %w", cell, want)
		}
		return nil
	})
	for i, err := range errs {
		if (i%3 == 0) != (err != nil) {
			t.Errorf("cell %d error = %v", i, err)
		}
		if err != nil && !errors.Is(err, want) {
			t.Errorf("cell %d lost the cause: %v", i, err)
		}
	}
}

// A panicking cell must not take down the sweep: its panic lands in
// its own error slot and every other cell still runs.
func TestRunCellsIsolatesPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 20
		var ran atomic.Int32
		errs := runCells(n, workers, func(cell int) error {
			if cell == 5 {
				panic("cell exploded")
			}
			ran.Add(1)
			return nil
		})
		if got := ran.Load(); got != n-1 {
			t.Fatalf("workers=%d: %d cells ran, want %d", workers, got, n-1)
		}
		if errs[5] == nil || !strings.Contains(errs[5].Error(), "cell 5") ||
			!strings.Contains(errs[5].Error(), "cell exploded") {
			t.Fatalf("workers=%d: panic not converted: %v", workers, errs[5])
		}
		for i, err := range errs {
			if i != 5 && err != nil {
				t.Errorf("workers=%d: cell %d errored: %v", workers, i, err)
			}
		}
	}
}

func TestRunCellsZeroCells(t *testing.T) {
	if errs := runCells(0, 8, func(int) error { panic("no cells") }); len(errs) != 0 {
		t.Fatalf("got %d error slots for zero cells", len(errs))
	}
}

// stripWallColumn blanks the wall-sec column (the only
// non-deterministic one) from a scaling table so two runs compare
// byte-for-byte.
func stripWallColumn(table string) string {
	lines := strings.Split(table, "\n")
	for i, line := range lines {
		f := strings.Fields(line)
		if len(f) == 11 && (f[0] == "weak" || f[0] == "strong") {
			f[9] = "WALL"
			lines[i] = strings.Join(f, " ")
		}
	}
	return strings.Join(lines, "\n")
}

// TestScalingPoolDeterminism pins the pool's central promise: a
// parallel sweep prints the same table and returns the same rows as a
// serial one — scheduling may reorder execution, never results. The
// full-table comparison runs on the DES backend, which is
// deterministic at any GOMAXPROCS (one event loop per cluster); the
// goroutine backend's contended cells are only reproducible at
// GOMAXPROCS=1 with or without the pool (see Scaling's run-phase
// comment), so the goroutine comparison below restricts itself to the
// contention-off rows that are scheduler-independent by construction.
func TestScalingPoolDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep determinism is a long test")
	}
	run := func(workers int, be cluster.Backend) (string, []ScalingRow) {
		var buf bytes.Buffer
		rows, err := Scaling(&buf, Options{Profile: 0, GPUCounts: []int{8, 32}, Seed: 1,
			SweepWorkers: workers, Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			rows[i].WallSec = 0
		}
		return stripWallColumn(buf.String()), rows
	}
	serialTable, serialRows := run(1, cluster.DESBackend)
	parTable, parRows := run(8, cluster.DESBackend)
	if serialTable != parTable {
		t.Errorf("parallel sweep table differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serialTable, parTable)
	}
	if !reflect.DeepEqual(serialRows, parRows) {
		t.Error("parallel sweep rows differ from serial")
	}

	ideal := func(rows []ScalingRow) []ScalingRow {
		var out []ScalingRow
		for _, r := range rows {
			if r.Topology == "ideal" {
				out = append(out, r)
			}
		}
		return out
	}
	_, gSerial := run(1, cluster.GoroutineBackend)
	_, gPar := run(8, cluster.GoroutineBackend)
	if !reflect.DeepEqual(ideal(gSerial), ideal(gPar)) {
		t.Error("goroutine-backend contention-off rows differ between serial and parallel sweeps")
	}
}
