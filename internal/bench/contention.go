package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// ContentionRow is one cell of the shared-link contention experiment:
// one (algorithm, topology, schedule) training run with its per-epoch
// total, its slowdown against the ideal (contention-free) topology,
// the overlap gain surviving at that topology, and the hottest
// physical network links' utilization.
type ContentionRow struct {
	Dataset   string
	Algorithm string // replicated / partitioned
	Topology  string // ideal / perlmutter / oversubNx
	P, C      int
	Overlap   bool
	Total     float64 // per-epoch seconds
	Stall     float64 // exposed prefetch latency (overlapped rows)
	// Slowdown is Total over the ideal topology's Total at the same
	// (algorithm, overlap) point: how much the finite links cost.
	Slowdown float64
	// OverlapGain is the sequential Total over the overlapped Total at
	// the same (algorithm, topology) point, recorded on overlapped
	// rows: where prefetch streams and the gradient all-reduce fight
	// for the same NIC, the gain erodes below its ideal-topology value.
	OverlapGain float64
	// Links holds the network-side physical links (NIC pipes and the
	// fabric trunk) with nonzero traffic, ordered as enumerated;
	// utilization is bytes/(capacity·makespan) over the whole run.
	Links []trace.PhysLinkUtil
	// PeakNICUtil and PeakNICShare summarize Links: the highest
	// utilization and the highest concurrent-flow count observed on
	// any NIC pipe or the trunk (1 = that link never contended).
	PeakNICUtil  float64
	PeakNICShare int
}

// contentionTopologies is the sweep: the contention-free baseline, the
// paper's fully-provisioned testbed (contention only between
// concurrent streams of one GPU), and two oversubscription factors of
// a one-NIC-per-node commodity layout.
func contentionTopologies() []*cluster.Topology {
	return []*cluster.Topology{
		nil, // ideal: pure α–β
		cluster.PerlmutterTopology(),
		cluster.OversubscribedTopology(2),
		cluster.OversubscribedTopology(4),
	}
}

// Contention measures where the α–β schedule analyses stop holding
// once links are finite, shared resources: both distributed algorithms
// × sequential vs overlapped schedule × physical topology. The
// headline is the overlap-gain column — the 1.25x-style win of the
// software-pipelined schedule, measured per topology, eroding as
// prefetch streams and the gradient all-reduce share NIC injection
// bandwidth — next to per-physical-link utilization.
func Contention(w io.Writer, o Options) ([]ContentionRow, error) {
	// An unset GPU list must be detected before withDefaults fills it;
	// the default is one multi-node count (contention needs nodes to
	// share NICs and a trunk to oversubscribe; single-node runs keep
	// every flow on per-GPU NVLink ports and never contend). p=16 is
	// where the replicated pipeline's ~1.5x overlap gain meets heavy
	// inter-node fetch traffic, so the erosion is visible.
	counts := o.GPUCounts
	o = o.withDefaults()
	p := 16
	if len(counts) > 0 {
		p = counts[0]
	}
	d, err := datasets.ByName("products", o.Profile)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "Shared-link contention: per-epoch seconds under finite physical links (p=%d)\n", p)
	fmt.Fprintf(w, "%-12s %-12s %-8s %10s %10s %9s %8s %9s %6s\n",
		"algorithm", "topology", "overlap", "total", "stall", "slowdown", "gain", "nic-util", "share")

	algos := []struct {
		name string
		alg  pipeline.Algorithm
	}{
		{"replicated", pipeline.GraphReplicated},
		{"partitioned", pipeline.GraphPartitioned},
	}
	var rows []ContentionRow
	for _, algo := range algos {
		c := CFor(p)
		if algo.alg == pipeline.GraphPartitioned {
			c = partitionedCFor(p)
		}
		// A quarter-epoch bulk gives the schedule rounds to pipeline
		// (same methodology as the overlap experiment).
		processed := d.NumBatches()
		if o.MaxBatches > 0 && o.MaxBatches < processed {
			processed = o.MaxBatches
		}
		k := processed / 4
		if k < p {
			k = p
		}
		ideal := map[bool]float64{} // overlap -> total under nil topology
		for _, topo := range contentionTopologies() {
			seqTotal := 0.0
			for _, overlap := range []bool{false, true} {
				model := o.Model
				model.Topology = topo
				cfg := pipeline.Config{
					P: p, C: c, K: k,
					Algorithm:     algo.alg,
					SparsityAware: algo.alg == pipeline.GraphPartitioned,
					Overlap:       overlap,
					MaxBatches:    o.MaxBatches, Seed: o.Seed, Model: model,
				}
				res, err := pipeline.Run(d, cfg)
				if err != nil {
					return nil, err
				}
				e := res.LastEpoch()
				row := ContentionRow{
					Dataset: "products", Algorithm: algo.name,
					Topology: topo.String(), P: p, C: c, Overlap: overlap,
					Total: e.Total, Stall: e.Stall,
				}
				if topo == nil {
					ideal[overlap] = e.Total
					row.Slowdown = 1
				} else if base := ideal[overlap]; base > 0 {
					row.Slowdown = e.Total / base
				}
				if !overlap {
					seqTotal = e.Total
				} else if e.Total > 0 {
					row.OverlapGain = seqTotal / e.Total
				}
				row.Links, row.PeakNICUtil, row.PeakNICShare =
					networkLinkUtil(res.Cluster)
				rows = append(rows, row)
				fmt.Fprintf(w, "%-12s %-12s %-8v %10.5f %10.5f %8.2fx %7.2fx %8.1f%% %6d\n",
					algo.name, row.Topology, overlap, row.Total, row.Stall,
					row.Slowdown, row.OverlapGain, 100*row.PeakNICUtil, row.PeakNICShare)
			}
		}
	}
	return rows, nil
}

// networkLinkUtil extracts the network-side physical links (NIC pipes
// and the fabric trunk) with nonzero traffic from a run's cluster
// result, normalizing utilization by the run makespan.
func networkLinkUtil(res *cluster.Result) ([]trace.PhysLinkUtil, float64, int) {
	var links []trace.PhysLinkUtil
	peakUtil, peakShare := 0.0, 0
	for _, pl := range res.PhysLinks {
		network := strings.HasPrefix(pl.Name, "nic:") || pl.Name == "fabric-trunk"
		if pl.Bytes <= 0 || !network {
			continue
		}
		util := 0.0
		if res.SimTime > 0 && pl.Capacity > 0 {
			util = pl.Bytes / (pl.Capacity * res.SimTime)
		}
		links = append(links, trace.PhysLinkUtil{
			Name:           pl.Name,
			CapacityGBps:   pl.Capacity / 1e9,
			Bytes:          pl.Bytes,
			Utilization:    util,
			MaxConcurrency: pl.MaxConcurrency,
		})
		if util > peakUtil {
			peakUtil = util
		}
		if pl.MaxConcurrency > peakShare {
			peakShare = pl.MaxConcurrency
		}
	}
	return links, peakUtil, peakShare
}
