package bench

import (
	"fmt"
	"io"
)

// PerfDelta is one workload's before/after comparison between two perf
// baselines.
type PerfDelta struct {
	Name string
	// Status is "ok", "fail" (at least one gate threshold breached),
	// "missing" (in before only) or "new" (in after only).
	Status string
	// WallPct / AllocBytesPct / AllocsPct are after-vs-before relative
	// changes in percent (positive = regression direction).
	WallPct       float64
	AllocBytesPct float64
	AllocsPct     float64
	// SimDrift is the relative simulated-seconds difference; anything
	// above 1e-9 is a determinism breach.
	SimDrift float64
}

// PerfDiff compares two perf baselines workload by workload, prints a
// delta table to w, and returns the deltas plus whether any workload
// breached a gate threshold. The verdict columns reuse the regression
// gate's committed constants (PerfWallTolerance + the absolute slack,
// perfAllocTolerance, the simulated-seconds drift bound), so a FAIL
// here is exactly what PerfGate would fail on the same numbers — the
// point of the tool is seeing the margins even when the gate passes.
func PerfDiff(w io.Writer, before, after *PerfBaseline) ([]PerfDelta, bool) {
	fmt.Fprintf(w, "%-40s %18s %14s %14s %12s %6s\n",
		"workload", "wall-sec", "alloc-bytes", "allocs", "sim-drift", "gate")
	byName := map[string]PerfRow{}
	for _, r := range after.Rows {
		byName[r.Name] = r
	}
	var deltas []PerfDelta
	breached := false
	for _, b := range before.Rows {
		a, ok := byName[b.Name]
		if !ok {
			deltas = append(deltas, PerfDelta{Name: b.Name, Status: "missing"})
			fmt.Fprintf(w, "%-40s missing from the after baseline\n", b.Name)
			breached = true
			continue
		}
		delete(byName, b.Name)
		d := PerfDelta{
			Name:          b.Name,
			Status:        "ok",
			WallPct:       pctChange(a.WallSec, b.WallSec),
			AllocBytesPct: pctChange(float64(a.AllocBytes), float64(b.AllocBytes)),
			AllocsPct:     pctChange(float64(a.Allocs), float64(b.Allocs)),
			SimDrift:      relDiff(a.SimSec, b.SimSec),
		}
		if (b.WallSec > 0 && a.WallSec > b.WallSec*PerfWallTolerance+perfWallSlack) ||
			(b.Allocs > 0 && float64(a.Allocs) > float64(b.Allocs)*perfAllocTolerance) ||
			d.SimDrift > 1e-9 {
			d.Status = "fail"
			breached = true
		}
		deltas = append(deltas, d)
		drift := "exact"
		if d.SimDrift > 1e-9 {
			drift = fmt.Sprintf("%.3g", d.SimDrift)
		}
		fmt.Fprintf(w, "%-40s %8.3f>%8.3f%+6.1f%% %+13.1f%% %+13.1f%% %12s %6s\n",
			d.Name, b.WallSec, a.WallSec, d.WallPct, d.AllocBytesPct, d.AllocsPct, drift, verdict(d.Status))
	}
	// Workloads only the after baseline has (a grown matrix): listed
	// for completeness, never a failure.
	for _, a := range after.Rows {
		if _, ok := byName[a.Name]; !ok {
			continue
		}
		deltas = append(deltas, PerfDelta{Name: a.Name, Status: "new"})
		fmt.Fprintf(w, "%-40s %8s>%8.3f (new workload)\n", a.Name, "-", a.WallSec)
	}
	return deltas, breached
}

func pctChange(after, before float64) float64 {
	if before == 0 {
		return 0
	}
	return (after - before) / before * 100
}

func verdict(status string) string {
	if status == "ok" {
		return "OK"
	}
	return "FAIL"
}
