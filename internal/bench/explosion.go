package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasets"
)

// ExplosionRow quantifies neighborhood explosion (Section 2.1) at one
// depth: the exact L-hop aggregated neighborhood of a minibatch versus
// the frontiers the samplers actually touch.
type ExplosionRow struct {
	Depth          int
	FullHop        int // exact aggregated neighborhood size
	SAGEFrontier   int // node-wise sampled frontier
	LADIESFrontier int // layer-wise sampled frontier
}

// Explosion reproduces the motivation measurement behind minibatch
// sampling: training one batch of an L-layer GNN exactly touches its
// entire L-hop neighborhood — often a large fraction of the graph —
// while node-wise sampling caps growth at a fanout product and
// layer-wise sampling caps every layer at s.
func Explosion(w io.Writer, dataset string, o Options) ([]ExplosionRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName(dataset, o.Profile)
	if err != nil {
		return nil, err
	}
	batch := d.Batches()[0]
	depth := len(d.Fanouts)

	// Exact L-hop neighborhood by breadth-first union.
	full := make([]int, depth+1)
	seen := map[int]struct{}{}
	frontier := append([]int(nil), batch...)
	for _, v := range frontier {
		seen[v] = struct{}{}
	}
	full[0] = len(seen)
	for l := 1; l <= depth; l++ {
		var next []int
		for _, v := range frontier {
			cols, _ := d.Graph.Adj.Row(v)
			for _, u := range cols {
				if _, ok := seen[u]; !ok {
					seen[u] = struct{}{}
					next = append(next, u)
				}
			}
		}
		full[l] = len(seen)
		frontier = next
	}

	sage := core.SampleBulk(core.SAGE{}, d.Graph.Adj, [][]int{batch}, d.Fanouts, o.Seed)
	ladiesFan := make([]int, depth)
	for i := range ladiesFan {
		ladiesFan[i] = d.LayerWidth
	}
	ladies := core.SampleBulk(core.LADIES{}, d.Graph.Adj, [][]int{batch}, ladiesFan, o.Seed)

	fmt.Fprintf(w, "Neighborhood explosion (Section 2.1), dataset=%s batch=%d vertices (graph has %d)\n",
		dataset, len(batch), d.Graph.NumVertices())
	fmt.Fprintf(w, "%5s %12s %14s %16s\n", "depth", "exact L-hop", "SAGE frontier", "LADIES frontier")
	rows := make([]ExplosionRow, depth+1)
	rows[0] = ExplosionRow{Depth: 0, FullHop: full[0], SAGEFrontier: len(batch), LADIESFrontier: len(batch)}
	fmt.Fprintf(w, "%5d %12d %14d %16d\n", 0, full[0], len(batch), len(batch))
	for l := 1; l <= depth; l++ {
		rows[l] = ExplosionRow{
			Depth:          l,
			FullHop:        full[l],
			SAGEFrontier:   sage.Layers[l-1].Cols.Len(),
			LADIESFrontier: ladies.Layers[l-1].Cols.Len(),
		}
		fmt.Fprintf(w, "%5d %12d %14d %16d\n", l, rows[l].FullHop, rows[l].SAGEFrontier, rows[l].LADIESFrontier)
	}
	return rows, nil
}
