package bench

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// CollectiveRow is one cell of the collectives experiment: a single
// (collective, algorithm, GPU count, message size) point with the
// measured simulated seconds per call, the analytic bound of the
// algorithm's schedule, and the per-link wire bytes one call injected
// across the whole communicator.
type CollectiveRow struct {
	Op        string
	Algorithm string
	P         int
	Bytes     int // per-member payload
	Measured  float64
	Predicted float64
	Ratio     float64
	Links     trace.LinkBytes
}

// collectiveCases enumerates the algorithm domain per operation.
var collectiveCases = []struct {
	op   string
	algs []cluster.CollectiveAlgorithm
}{
	{"broadcast", []cluster.CollectiveAlgorithm{cluster.FlatTree, cluster.Ring}},
	{"allgather", []cluster.CollectiveAlgorithm{cluster.FlatTree, cluster.Ring}},
	{"allreduce", []cluster.CollectiveAlgorithm{cluster.FlatTree, cluster.Ring, cluster.Hierarchical}},
	{"alltoallv", []cluster.CollectiveAlgorithm{cluster.FlatTree, cluster.Pairwise}},
}

// CollectiveSweep measures every collective algorithm against its
// analytic bound over GPU count x message size: the microbenchmark
// behind the pluggable-algorithm layer. It reports, per cell, the
// simulated seconds per call and the wire bytes injected per
// interconnect tier — making visible both the latency/bandwidth
// trade (ring beats the flat tree at large messages, pairwise beats
// the linear exchange at small ones) and the hierarchical all-reduce's
// defining property: inter-node traffic proportional to node count
// rather than rank count.
func CollectiveSweep(w io.Writer, o Options) ([]CollectiveRow, error) {
	// An unset GPU list must be detected before withDefaults fills it,
	// or an explicit six-count -gpus list would be indistinguishable
	// from the harness default.
	counts := o.GPUCounts
	o = o.withDefaults()
	if len(counts) == 0 { // default: single-node counts and a multi-node one
		counts = []int{4, 8, 64}
	}
	sizes := []int{4 << 10, 4 << 20} // latency-bound and bandwidth-bound payloads
	const iters = 2

	fmt.Fprintf(w, "Collective algorithms: measured vs analytic (seconds per call, simulated)\n")
	fmt.Fprintf(w, "%-10s %-9s %5s %9s %12s %12s %7s %12s %12s\n",
		"op", "algo", "p", "bytes", "measured", "model", "ratio", "intra-bytes", "inter-bytes")
	var rows []CollectiveRow
	for _, p := range counts {
		for _, size := range sizes {
			for _, cse := range collectiveCases {
				for _, alg := range cse.algs {
					row, err := runCollective(o.Model, cse.op, alg, p, size, iters)
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
					fmt.Fprintf(w, "%-10s %-9s %5d %9d %12.3e %12.3e %7.2f %12d %12d\n",
						row.Op, row.Algorithm, row.P, row.Bytes, row.Measured,
						row.Predicted, row.Ratio, row.Links.IntraNode, row.Links.InterNode)
				}
			}
		}
	}
	return rows, nil
}

// runCollective times iters calls of one collective under one
// algorithm on a fresh cluster and compares them to the analytic bound.
func runCollective(model cluster.CostModel, op string, alg cluster.CollectiveAlgorithm, p, size, iters int) (CollectiveRow, error) {
	switch op {
	case "alltoallv":
		model.Collectives = cluster.Collectives{AllToAll: alg}
	default:
		model.Collectives = cluster.Collectives{AllReduce: alg}
	}
	cl := cluster.New(p, model)
	world := cl.World()
	link := world.Tier()

	var payload []float64
	if op == "allreduce" {
		payload = make([]float64, size/8)
	}
	per := size / p // all-to-allv part addressed to each peer
	res, err := cl.Run(func(r *cluster.Rank) error {
		for i := 0; i < iters; i++ {
			switch op {
			case "broadcast":
				cluster.Broadcast(world, r, 0, 0, size)
			case "allgather":
				cluster.AllGather(world, r, 0, size)
			case "allreduce":
				cluster.AllReduceSum(world, r, payload)
			case "alltoallv":
				parts := make([]int, p)
				cluster.AllToAllv(world, r, parts, func(int) int { return per })
			}
		}
		return nil
	})
	if err != nil {
		return CollectiveRow{}, err
	}

	bytes := size
	var predicted float64
	switch op {
	case "broadcast":
		predicted = cluster.PredictBroadcast(model, alg, link, p, bytes)
	case "allgather":
		predicted = cluster.PredictAllGather(model, alg, link, p, p*bytes, bytes)
	case "allreduce":
		bytes = 8 * len(payload)
		if alg == cluster.Hierarchical {
			predicted = cluster.PredictHierAllReduce(model, world.Members(), bytes)
		} else {
			predicted = cluster.PredictAllReduce(model, alg, link, p, bytes) +
				float64(cluster.AllReduceMemBytes(alg, p, bytes))/model.MemBW[cluster.GPU]
		}
	case "alltoallv":
		vol := per * (p - 1)
		predicted = cluster.PredictAllToAllv(model, alg, link, p, vol)
	default:
		return CollectiveRow{}, fmt.Errorf("bench: unknown collective %q", op)
	}

	links := res.LinkTraffic()
	row := CollectiveRow{
		Op: op, Algorithm: alg.String(), P: p, Bytes: bytes,
		Measured:  res.SimTime / float64(iters),
		Predicted: predicted,
		Links: trace.LinkBytes{
			IntraNode: links[cluster.IntraNode] / int64(iters),
			InterNode: links[cluster.InterNode] / int64(iters),
			Host:      links[cluster.HostLink] / int64(iters),
		},
	}
	if predicted > 0 {
		row.Ratio = row.Measured / predicted
	}
	return row, nil
}
