package bench

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/distsample"
	"repro/internal/sparse"
)

// VerifyRow is one equivalence check outcome.
type VerifyRow struct {
	Check string
	Pass  bool
	Note  string
}

// Verify runs the headline correctness properties as an executable
// checklist: every distributed sampling algorithm must produce results
// identical to the serial bulk sampler. This is what justifies reading
// the simulated timings as measurements of the same computation the
// paper runs.
func Verify(w io.Writer, o Options) ([]VerifyRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName("products", o.Profile)
	if err != nil {
		return nil, err
	}
	a := d.Graph.Adj
	batches := d.Batches()
	if len(batches) > 8 {
		batches = batches[:8]
	}
	fanouts := d.Fanouts
	var rows []VerifyRow
	add := func(check string, pass bool, note string) {
		rows = append(rows, VerifyRow{Check: check, Pass: pass, Note: note})
		status := "PASS"
		if !pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "%-48s %s %s\n", check, status, note)
	}

	sameBulk := func(x, y *core.BulkSample) bool {
		if len(x.Layers) != len(y.Layers) {
			return false
		}
		for l := range x.Layers {
			if !sparse.Equal(x.Layers[l].Adj, y.Layers[l].Adj, 1e-12) {
				return false
			}
			xv, yv := x.Layers[l].Cols.Vertices, y.Layers[l].Cols.Vertices
			if len(xv) != len(yv) {
				return false
			}
			for i := range xv {
				if xv[i] != yv[i] {
					return false
				}
			}
		}
		return true
	}

	type distRun func(r *cluster.Rank, set any, local [][]int) *core.BulkSample

	checkGrid := func(name string, p, c int, sampler core.Sampler, run distRun, makeSet func(g *cluster.Grid) any) error {
		cl := cluster.New(p, o.Model)
		g := cluster.NewGrid(cl, p, c)
		set := makeSet(g)
		results := make([]*core.BulkSample, p)
		_, err := cl.Run(func(r *cluster.Rank) error {
			local := distsample.LocalBatches(g, r.ID, batches)
			results[r.ID] = run(r, set, local)
			return nil
		})
		if err != nil {
			return err
		}
		pass := true
		for rank := 0; rank < p; rank++ {
			local := distsample.LocalBatches(g, rank, batches)
			want := core.SampleBulk(sampler, a, local, samplerFanouts(sampler, d, fanouts), o.Seed)
			if !sameBulk(results[rank], want) {
				pass = false
				break
			}
		}
		add(name, pass, fmt.Sprintf("(p=%d c=%d)", p, c))
		return nil
	}

	// Replicated SAGE vs serial.
	{
		p := 4
		cl := cluster.New(p, o.Model)
		results := make([]*core.BulkSample, p)
		_, err := cl.Run(func(r *cluster.Rank) error {
			local := distsample.ReplicatedBatches(p, r.ID, batches)
			results[r.ID] = distsample.SampleReplicated(r, core.SAGE{}, a, local, fanouts, o.Seed)
			return nil
		})
		if err != nil {
			return nil, err
		}
		pass := true
		for rank := 0; rank < p; rank++ {
			local := distsample.ReplicatedBatches(p, rank, batches)
			if !sameBulk(results[rank], core.SampleBulk(core.SAGE{}, a, local, fanouts, o.Seed)) {
				pass = false
			}
		}
		add("replicated SAGE == serial bulk", pass, "(p=4)")
	}

	// Partitioned SAGE, LADIES, FastGCN vs serial across a grid.
	if err := checkGrid("partitioned SAGE == serial bulk", 4, 2, core.SAGE{},
		func(r *cluster.Rank, set any, local [][]int) *core.BulkSample {
			return distsample.SampleSAGEPartitioned(r, set.([]*distsample.Partitioned)[r.ID], local, fanouts, o.Seed)
		},
		func(g *cluster.Grid) any { return distsample.NewPartitionedSet(g, a, true) }); err != nil {
		return nil, err
	}
	if err := checkGrid("partitioned LADIES == serial bulk", 4, 2, core.LADIES{},
		func(r *cluster.Rank, set any, local [][]int) *core.BulkSample {
			return distsample.SampleLADIESPartitioned(r, set.([]*distsample.Partitioned)[r.ID], local, d.LayerWidth, 1, o.Seed)
		},
		func(g *cluster.Grid) any { return distsample.NewPartitionedSet(g, a, true) }); err != nil {
		return nil, err
	}
	if err := checkGrid("partitioned FastGCN == serial bulk", 4, 2, core.FastGCN{},
		func(r *cluster.Rank, set any, local [][]int) *core.BulkSample {
			return distsample.SampleFastGCNPartitioned(r, set.([]*distsample.Partitioned)[r.ID], local, d.LayerWidth, 1, o.Seed)
		},
		func(g *cluster.Grid) any { return distsample.NewPartitionedSet(g, a, true) }); err != nil {
		return nil, err
	}

	// Sparsity-aware == oblivious.
	{
		aware, err := RunVerifyPartitioned(d, batches, true, o)
		if err != nil {
			return nil, err
		}
		obliv, err := RunVerifyPartitioned(d, batches, false, o)
		if err != nil {
			return nil, err
		}
		pass := true
		for i := range aware {
			if !sameBulk(aware[i], obliv[i]) {
				pass = false
			}
		}
		add("sparsity-aware == oblivious 1.5D", pass, "(p=4 c=2)")
	}

	return rows, nil
}

// samplerFanouts picks the per-layer sizes a sampler uses.
func samplerFanouts(s core.Sampler, d *datasets.Dataset, fanouts []int) []int {
	switch s.(type) {
	case core.LADIES, core.FastGCN:
		return []int{d.LayerWidth}
	default:
		return fanouts
	}
}

// RunVerifyPartitioned runs partitioned SAGE over fixed batches for
// the aware/oblivious equivalence check.
func RunVerifyPartitioned(d *datasets.Dataset, batches [][]int, aware bool, o Options) ([]*core.BulkSample, error) {
	const p, c = 4, 2
	cl := cluster.New(p, o.Model)
	g := cluster.NewGrid(cl, p, c)
	set := distsample.NewPartitionedSet(g, d.Graph.Adj, aware)
	results := make([]*core.BulkSample, p)
	_, err := cl.Run(func(r *cluster.Rank) error {
		local := distsample.LocalBatches(g, r.ID, batches)
		results[r.ID] = distsample.SampleSAGEPartitioned(r, set[r.ID], local, d.Fanouts, o.Seed)
		return nil
	})
	return results, err
}
