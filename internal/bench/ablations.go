package bench

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/distsample"
	"repro/internal/pipeline"
	"repro/internal/quality"
)

// AmortizationRow is one point of the bulk-size sweep: simulated
// sampling time for an epoch when minibatches are sampled in bulks of
// size k.
type AmortizationRow struct {
	K       int
	SimTime float64
}

// Amortization sweeps the bulk size k on one device, quantifying the
// per-batch overhead amortization that motivates Section 4: sampling
// k batches in one matrix call pays kernel-launch overheads once per
// bulk instead of once per batch.
func Amortization(w io.Writer, dataset string, ks []int, o Options) ([]AmortizationRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName(dataset, o.Profile)
	if err != nil {
		return nil, err
	}
	batches := d.Batches()
	if o.MaxBatches > 0 && o.MaxBatches < len(batches) {
		batches = batches[:o.MaxBatches]
	}
	fmt.Fprintf(w, "Bulk-size amortization sweep, dataset=%s (%d batches)\n", dataset, len(batches))
	fmt.Fprintf(w, "%6s %14s\n", "k", "sim sampling s")
	var rows []AmortizationRow
	for _, k := range ks {
		if k <= 0 {
			k = len(batches)
		}
		cl := cluster.New(1, o.Model)
		res, err := cl.Run(func(r *cluster.Rank) error {
			r.SetPhase("sampling")
			for lo := 0; lo < len(batches); lo += k {
				hi := lo + k
				if hi > len(batches) {
					hi = len(batches)
				}
				bs := core.SampleBulk(core.SAGE{}, d.Graph.Adj, batches[lo:hi], d.Fanouts, o.Seed)
				r.ChargeSparse(bs.Cost.Total())
				r.ChargeKernels(bs.Cost.Kernels)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		row := AmortizationRow{K: k, SimTime: res.Phase("sampling")}
		rows = append(rows, row)
		fmt.Fprintf(w, "%6d %14.5f\n", row.K, row.SimTime)
	}
	return rows, nil
}

// CacheRow is one point of the feature-cache sweep.
type CacheRow struct {
	Policy    string
	Frac      float64
	FetchTime float64
}

// CacheSweep measures feature-fetch time under the caching extension
// (Section 8.1.2's SALIENT++ suggestion) across policies and cache
// sizes.
func CacheSweep(w io.Writer, dataset string, p int, fracs []float64, o Options) ([]CacheRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName(dataset, o.Profile)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Feature-cache sweep, dataset=%s p=%d\n", dataset, p)
	fmt.Fprintf(w, "%-14s %6s %12s\n", "policy", "frac", "fetch (s)")
	var rows []CacheRow
	run := func(policy cache.Policy, frac float64) error {
		res, err := pipeline.Run(d, pipeline.Config{
			P: p, C: 1, MaxBatches: o.MaxBatches, Seed: o.Seed, Model: o.Model,
			CachePolicy: policy, CacheFrac: frac,
		})
		if err != nil {
			return err
		}
		row := CacheRow{Policy: policy.String(), Frac: frac, FetchTime: res.LastEpoch().FeatureFetch}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-14s %6.2f %12.5f\n", row.Policy, row.Frac, row.FetchTime)
		return nil
	}
	if err := run(cache.None, 0); err != nil {
		return nil, err
	}
	for _, frac := range fracs {
		if err := run(cache.StaticDegree, frac); err != nil {
			return nil, err
		}
	}
	for _, frac := range fracs {
		if err := run(cache.LRU, frac); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// SparsityRow compares the sparsity-aware and oblivious 1.5D SpGEMM.
type SparsityRow struct {
	Dataset        string
	P, C           int
	AwareTime      float64
	ObliviousTime  float64
	AwareBytes     int64
	ObliviousBytes int64
}

// SparsityAblation compares Algorithm 2's sparsity-aware row fetching
// against the sparsity-oblivious full-block broadcast (the design
// choice Section 5.2.1 motivates with Ballard et al.'s analysis).
func SparsityAblation(w io.Writer, dataset string, p, c int, o Options) (*SparsityRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName(dataset, o.Profile)
	if err != nil {
		return nil, err
	}
	measure := func(aware bool) (float64, int64, error) {
		res, err := RunPartitionedSampling(d, "sage", p, c, aware, o.MaxBatches, 0, o.Seed, o.Model)
		if err != nil {
			return 0, 0, err
		}
		var bytes int64
		for _, s := range res.Ranks {
			bytes += s.BytesSent
		}
		return res.SimTime, bytes, nil
	}
	at, ab, err := measure(true)
	if err != nil {
		return nil, err
	}
	ot, ob, err := measure(false)
	if err != nil {
		return nil, err
	}
	row := &SparsityRow{Dataset: dataset, P: p, C: c,
		AwareTime: at, ObliviousTime: ot, AwareBytes: ab, ObliviousBytes: ob}
	fmt.Fprintf(w, "Sparsity-aware vs oblivious 1.5D SpGEMM, dataset=%s p=%d c=%d\n", dataset, p, c)
	fmt.Fprintf(w, "  aware:     %.5fs, %d bytes sent\n", at, ab)
	fmt.Fprintf(w, "  oblivious: %.5fs, %d bytes sent\n", ot, ob)
	fmt.Fprintf(w, "  byte reduction: %.2fx\n", float64(ob)/float64(ab))
	return row, nil
}

// PartitionRow compares the 1D block-row distributed SpGEMM baseline
// against the paper's 1.5D algorithm at one GPU count.
type PartitionRow struct {
	P, C          int
	OneDTime      float64
	OneDBytes     int64
	FifteenDTime  float64
	FifteenDBytes int64
}

// PartitionAblation supports the Section 5.2 design choice ("prior
// work has shown 1.5D algorithms generally outperform other schemes"):
// it runs bulk SAGE sampling under both partitionings and reports time
// and traffic.
func PartitionAblation(w io.Writer, dataset string, ps []int, o Options) ([]PartitionRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName(dataset, o.Profile)
	if err != nil {
		return nil, err
	}
	batches := d.Batches()
	if o.MaxBatches > 0 && o.MaxBatches < len(batches) {
		batches = batches[:o.MaxBatches]
	}
	fmt.Fprintf(w, "1D vs 1.5D distributed SpGEMM, dataset=%s\n", dataset)
	fmt.Fprintf(w, "%5s %3s %12s %14s %12s %14s\n", "p", "c", "1D time", "1D bytes", "1.5D time", "1.5D bytes")
	var rows []PartitionRow
	for _, p := range ps {
		c := CFor(p) / 2
		if c < 2 {
			c = 2
		}
		for (p/c)%c != 0 && c > 1 {
			c /= 2
		}

		cl1 := cluster.New(p, o.Model)
		world := cl1.World()
		oneD := distsample.NewOneDSet(p, d.Graph.Adj)
		res1, err := cl1.Run(func(r *cluster.Rank) error {
			local := distsample.ReplicatedBatches(p, r.ID, batches)
			distsample.SampleSAGE1D(r, oneD[r.ID], world, local, d.Fanouts, o.Seed)
			return nil
		})
		if err != nil {
			return nil, err
		}

		res2, err := RunPartitionedSampling(d, "sage", p, c, true, o.MaxBatches, 0, o.Seed, o.Model)
		if err != nil {
			return nil, err
		}

		row := PartitionRow{P: p, C: c, OneDTime: res1.SimTime, FifteenDTime: res2.SimTime}
		for _, s := range res1.Ranks {
			row.OneDBytes += s.BytesSent
		}
		for _, s := range res2.Ranks {
			row.FifteenDBytes += s.BytesSent
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%5d %3d %12.5f %14d %12.5f %14d\n",
			p, c, row.OneDTime, row.OneDBytes, row.FifteenDTime, row.FifteenDBytes)
	}
	return rows, nil
}

// VarianceRow compares samplers' estimator error at equal budget.
type VarianceRow struct {
	Sampler     string
	Fanout      int
	MSE         float64
	RelativeStd float64
	Budget      float64
}

// SamplerVariance measures one-layer aggregation error (MSE against
// exact mean aggregation) for each sampler across fanouts — the
// statistical quality dimension of the sampler-taxonomy discussion
// (Section 2.2).
func SamplerVariance(w io.Writer, dataset string, fanouts []int, o Options) ([]VarianceRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName(dataset, o.Profile)
	if err != nil {
		return nil, err
	}
	seeds := d.Batches()[0]
	const reps = 25
	fmt.Fprintf(w, "Sampler aggregation error, dataset=%s (%d seeds, %d reps)\n", dataset, len(seeds), reps)
	fmt.Fprintf(w, "%-10s %7s %12s %12s %10s\n", "sampler", "fanout", "mse", "rel-std", "budget")
	var rows []VarianceRow
	for _, s := range []core.Sampler{core.SAGE{}, core.LADIES{}, core.FastGCN{}} {
		for _, fan := range fanouts {
			e := quality.MeasureAggregationError(s, d.Graph.Adj, d.Features, seeds, fan, reps, o.Seed)
			row := VarianceRow{
				Sampler:     s.Name(),
				Fanout:      fan,
				MSE:         e.MSE,
				RelativeStd: quality.RelativeStd(e, d.Graph.Adj, d.Features, seeds),
				Budget:      quality.FrontierBudget(s, d.Graph.Adj, seeds, fan, o.Seed),
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-10s %7d %12.6f %12.4f %10.1f\n",
				row.Sampler, row.Fanout, row.MSE, row.RelativeStd, row.Budget)
		}
	}
	return rows, nil
}

// OverlapRow reports the benefit the overlapped (software-pipelined)
// schedule extracts: with sampling, feature fetch and propagation on
// concurrent streams the epoch is bounded below by the busiest stream,
// max(sampling, fetch, prop), instead of the bulk-synchronous sum.
type OverlapRow struct {
	Dataset string
	// Algorithm is "replicated" or "partitioned": with stream-safe
	// collectives the 1.5D partitioned schedule overlaps too, its
	// collective-bearing sampling stage prefetching on its own stream
	// and communicator clones.
	Algorithm  string
	P          int
	Sequential float64
	// Overlapped is the analytic bound max(sampling, fetch, prop):
	// the busiest stream of the three-stage engine.
	Overlapped float64
	// Measured is the staged engine's overlapped schedule
	// (pipeline.Config.Overlap): the epoch makespan across the
	// sampling, fetch and propagation streams.
	Measured float64
	// Stall is the exposed (un-hidden) prefetch latency of the
	// measured schedule — what the consumer streams waited out.
	Stall   float64
	Speedup float64
}

// partitionedCFor shrinks the Figure 4 replication factor until it
// satisfies the 1.5D grid constraint c^2 | p.
func partitionedCFor(p int) int {
	c := CFor(p)
	for c > 1 && (p%(c*c) != 0 || p%c != 0) {
		c /= 2
	}
	if c < 1 {
		c = 1
	}
	return c
}

// OverlapAnalysis measures the staged engine's overlapped schedule
// against the bulk-synchronous one for both distributed algorithms —
// the Graph Replicated pipeline (communication-free sampling) and,
// with stream-safe collectives, the 1.5D Graph Partitioned pipeline
// (collective-bearing sampling on its own stream and communicator
// clones) — alongside the analytic busiest-stream bound.
func OverlapAnalysis(w io.Writer, o Options) ([]OverlapRow, error) {
	o = o.withDefaults()
	fmt.Fprintf(w, "Overlap: sampling and fetch pipelined against propagation (staged engine)\n")
	fmt.Fprintf(w, "%-10s %-12s %5s %12s %12s %12s %12s %8s\n",
		"dataset", "algorithm", "p", "sequential", "bound", "measured", "stall", "speedup")
	var rows []OverlapRow
	algos := []struct {
		name string
		alg  pipeline.Algorithm
	}{
		{"replicated", pipeline.GraphReplicated},
		{"partitioned", pipeline.GraphPartitioned},
	}
	for _, name := range datasets.Names() {
		d, err := datasets.ByName(name, o.Profile)
		if err != nil {
			return nil, err
		}
		for _, algo := range algos {
			for _, p := range o.GPUCounts {
				c := CFor(p)
				if algo.alg == pipeline.GraphPartitioned {
					c = partitionedCFor(p)
				}
				// Overlap pays off exactly when memory forces k below the
				// full batch count (multiple bulk rounds per epoch); use a
				// quarter-epoch bulk so the schedule has rounds to pipeline.
				processed := d.NumBatches()
				if o.MaxBatches > 0 && o.MaxBatches < processed {
					processed = o.MaxBatches
				}
				k := processed / 4
				if k < p {
					k = p
				}
				cfg := pipeline.Config{
					P: p, C: c, K: k,
					Algorithm:     algo.alg,
					SparsityAware: algo.alg == pipeline.GraphPartitioned,
					MaxBatches:    o.MaxBatches, Seed: o.Seed, Model: o.Model,
				}
				res, err := pipeline.Run(d, cfg)
				if err != nil {
					return nil, err
				}
				e := res.LastEpoch()
				seq := e.Total
				over := e.Sampling
				if e.FeatureFetch > over {
					over = e.FeatureFetch
				}
				if e.Propagation > over {
					over = e.Propagation
				}
				ovCfg := cfg
				ovCfg.Overlap = true
				ovRes, err := pipeline.Run(d, ovCfg)
				if err != nil {
					return nil, err
				}
				row := OverlapRow{Dataset: name, Algorithm: algo.name, P: p,
					Sequential: seq,
					Overlapped: over, Measured: ovRes.LastEpoch().Total,
					Stall: ovRes.LastEpoch().Stall}
				if row.Measured > 0 {
					row.Speedup = seq / row.Measured
				}
				rows = append(rows, row)
				fmt.Fprintf(w, "%-10s %-12s %5d %12.5f %12.5f %12.5f %12.5f %7.2fx\n",
					name, algo.name, p, seq, over, row.Measured, row.Stall, row.Speedup)
			}
		}
	}
	return rows, nil
}

// SensitivityRow compares a headline result under two cost models.
type SensitivityRow struct {
	ModelName string
	P         int
	OursTotal float64
	Quiver    float64
	Speedup   float64
}

// Sensitivity reruns the Figure 4 comparison under a different machine
// model (PCIe workstation instead of the paper's NVLink/Slingshot
// supercomputer). Conclusions that survive the swap are robust to the
// interconnect; those that do not are artifacts of it.
func Sensitivity(w io.Writer, dataset string, ps []int, o Options) ([]SensitivityRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName(dataset, o.Profile)
	if err != nil {
		return nil, err
	}
	models := []struct {
		name  string
		model cluster.CostModel
	}{
		{"perlmutter", cluster.Perlmutter()},
		{"workstation", cluster.Workstation()},
	}
	fmt.Fprintf(w, "Cost-model sensitivity, dataset=%s\n", dataset)
	fmt.Fprintf(w, "%-12s %5s %12s %12s %8s\n", "machine", "p", "ours", "quiver", "speedup")
	var rows []SensitivityRow
	for _, m := range models {
		for _, p := range ps {
			ours, err := pipeline.Run(d, pipeline.Config{
				P: p, C: CFor(p), K: KFor(p, d.NumBatches()),
				MaxBatches: o.MaxBatches, Seed: o.Seed, Model: m.model,
			})
			if err != nil {
				return nil, err
			}
			q, err := baseline.RunQuiver(d, baseline.QuiverConfig{
				P: p, MaxBatches: o.MaxBatches, Seed: o.Seed, Model: m.model,
			})
			if err != nil {
				return nil, err
			}
			row := SensitivityRow{ModelName: m.name, P: p,
				OursTotal: ours.LastEpoch().Total, Quiver: q.LastEpoch().Total}
			if row.OursTotal > 0 {
				row.Speedup = row.Quiver / row.OursTotal
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-12s %5d %12.5f %12.5f %7.2fx\n",
				m.name, p, row.OursTotal, row.Quiver, row.Speedup)
		}
	}
	return rows, nil
}

// StragglerRow quantifies bulk-synchronous sensitivity to one slow
// device.
type StragglerRow struct {
	Slowdown float64
	Epoch    float64
}

// StragglerSensitivity reruns a pipeline epoch with rank 0 slowed by
// increasing factors: the BSP schedule of Section 6 ("all GPUs
// participate in a single step simultaneously before advancing") is
// bound by its slowest member, so epoch time should track the
// straggler nearly linearly for compute-bound phases.
func StragglerSensitivity(w io.Writer, dataset string, p int, factors []float64, o Options) ([]StragglerRow, error) {
	o = o.withDefaults()
	d, err := datasets.ByName(dataset, o.Profile)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Straggler sensitivity, dataset=%s p=%d (rank 0 slowed)\n", dataset, p)
	fmt.Fprintf(w, "%9s %12s\n", "slowdown", "epoch (s)")
	var rows []StragglerRow
	for _, f := range factors {
		model := o.Model
		if f > 1 {
			model.Stragglers = map[int]float64{0: f}
		}
		res, err := pipeline.Run(d, pipeline.Config{
			P: p, C: CFor(p), MaxBatches: o.MaxBatches, Seed: o.Seed, Model: model,
		})
		if err != nil {
			return nil, err
		}
		row := StragglerRow{Slowdown: f, Epoch: res.LastEpoch().Total}
		rows = append(rows, row)
		fmt.Fprintf(w, "%9.1f %12.5f\n", f, row.Epoch)
	}
	return rows, nil
}
