package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/datasets"
)

func tinyOpts() Options {
	return Options{
		Profile:   datasets.Tiny,
		GPUCounts: []int{4, 8},
		Seed:      1,
	}
}

func TestTable2Prints(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	out := buf.String()
	for _, sys := range []string{"DistDGL", "Quiver", "This work"} {
		if !strings.Contains(out, sys) {
			t.Fatalf("table 2 missing %q", sys)
		}
	}
}

func TestTable3Stats(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table3(&buf, datasets.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if !(byName["protein"].AvgDeg > byName["products"].AvgDeg &&
		byName["products"].AvgDeg > byName["papers"].AvgDeg) {
		t.Fatalf("density ordering broken: %+v", rows)
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig4(&buf, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 datasets x 2 GPU counts
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 || r.QuiverTotal <= 0 {
			t.Fatalf("non-positive totals: %+v", r)
		}
		if r.Sampling <= 0 || r.FeatureFetch <= 0 || r.Propagation <= 0 {
			t.Fatalf("missing phase: %+v", r)
		}
	}
}

func TestFig4SpeedupAtScale(t *testing.T) {
	// The headline claim: at the larger GPU count the bulk pipeline
	// beats the per-batch Quiver strategy on every dataset.
	var buf bytes.Buffer
	rows, err := Fig4(&buf, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.P >= 8 && r.Speedup <= 1 {
			t.Fatalf("no speedup at scale: %+v", r)
		}
	}
}

func TestFig5UVASlower(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig5(&buf, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.UVATotal <= r.GPUTotal*0.9 {
			t.Fatalf("UVA unexpectedly fast: %+v", r)
		}
	}
}

func TestFig6ReplicationHelpsFetch(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig6(&buf, Options{Profile: datasets.Tiny, GPUCounts: []int{8}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FetchRep >= r.FetchNone {
			t.Fatalf("replication did not reduce fetch: %+v", r)
		}
	}
}

func TestFig7BreakdownsPositive(t *testing.T) {
	var buf bytes.Buffer
	opts := Options{Profile: datasets.Tiny, GPUCounts: []int{4}, Seed: 3}
	for _, sampler := range []string{"sage", "ladies"} {
		rows, err := Fig7(&buf, sampler, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Probability <= 0 || r.Sampling <= 0 || r.Extraction <= 0 {
				t.Fatalf("%s: missing sub-phase: %+v", sampler, r)
			}
			if r.Comm <= 0 {
				t.Fatalf("%s: partitioned sampling must communicate: %+v", sampler, r)
			}
			if r.Comp <= 0 {
				t.Fatalf("%s: computation missing: %+v", sampler, r)
			}
		}
		if sampler == "ladies" {
			for _, r := range rows {
				if r.CPURef <= 0 {
					t.Fatalf("CPU reference missing: %+v", r)
				}
			}
		}
	}
}

func TestAccuracyExperiment(t *testing.T) {
	var buf bytes.Buffer
	d := datasets.SBM(datasets.SBMConfig{
		N: 512, Classes: 4, Features: 8,
		IntraDeg: 10, InterDeg: 2, Noise: 0.5,
		BatchSize: 32, Fanouts: []int{5, 3}, LayerWidth: 32, Seed: 11,
	})
	res, err := Accuracy(&buf, d, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAccuracy <= res.UntrainedAccuracy {
		t.Fatalf("training did not beat untrained: %+v", res)
	}
	if res.FinalLoss >= res.FirstLoss {
		t.Fatalf("loss did not decrease: %+v", res)
	}
}

func TestTprobModelWithinOrderOfMagnitude(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Tprob(&buf, "products", 4, []int{1, 2}, Options{Profile: datasets.Tiny, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Measured <= 0 || r.Predicted <= 0 {
			t.Fatalf("non-positive entries: %+v", r)
		}
		if r.Ratio < 0.02 || r.Ratio > 50 {
			t.Fatalf("model and measurement diverge beyond order of magnitude: %+v", r)
		}
	}
}

func TestCKHelpers(t *testing.T) {
	if CFor(4) != 1 || CFor(8) != 2 || CFor(128) != 8 {
		t.Fatal("CFor mapping wrong")
	}
	if KFor(4, 100) != 50 || KFor(64, 100) != 0 {
		t.Fatal("KFor mapping wrong")
	}
}

func TestSortRows(t *testing.T) {
	rows := []Fig4Row{{Dataset: "b", P: 8}, {Dataset: "a", P: 16}, {Dataset: "a", P: 4}}
	SortRows(rows)
	if rows[0].Dataset != "a" || rows[0].P != 4 || rows[2].Dataset != "b" {
		t.Fatalf("sort wrong: %+v", rows)
	}
}

func TestAmortizationMonotone(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Amortization(&buf, "products", []int{1, 2, 4}, Options{Profile: datasets.Tiny, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Bigger bulks amortize kernel launches: time must not increase.
	for i := 1; i < len(rows); i++ {
		if rows[i].SimTime > rows[i-1].SimTime {
			t.Fatalf("amortization not monotone: %+v", rows)
		}
	}
	if rows[0].SimTime <= rows[len(rows)-1].SimTime*1.01 {
		t.Fatalf("no amortization benefit observed: %+v", rows)
	}
}

func TestCacheSweepReducesFetch(t *testing.T) {
	var buf bytes.Buffer
	rows, err := CacheSweep(&buf, "products", 4, []float64{0.25}, Options{Profile: datasets.Tiny, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // none + static + lru
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].FetchTime >= rows[0].FetchTime {
		t.Fatalf("static cache did not help: %+v", rows)
	}
}

func TestSparsityAblationBytes(t *testing.T) {
	var buf bytes.Buffer
	row, err := SparsityAblation(&buf, "products", 4, 2, Options{Profile: datasets.Tiny, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if row.AwareBytes >= row.ObliviousBytes {
		t.Fatalf("sparsity-aware sent more bytes: %+v", row)
	}
}

func TestExplosionShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Explosion(&buf, "protein", Options{Profile: datasets.Tiny, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for l := 1; l < len(rows); l++ {
		// Exact neighborhoods grow monotonically and dominate the
		// LADIES frontier (which adds at most s per layer).
		if rows[l].FullHop < rows[l-1].FullHop {
			t.Fatalf("exact hop shrank: %+v", rows)
		}
		if rows[l].LADIESFrontier > rows[l-1].LADIESFrontier+32 {
			t.Fatalf("LADIES frontier grew beyond s: %+v", rows)
		}
	}
	last := rows[len(rows)-1]
	if last.FullHop <= last.LADIESFrontier {
		t.Fatalf("no explosion visible on dense graph: %+v", last)
	}
}

func TestPartitionAblation(t *testing.T) {
	var buf bytes.Buffer
	rows, err := PartitionAblation(&buf, "products", []int{8}, Options{Profile: datasets.Tiny, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].OneDBytes <= rows[0].FifteenDBytes {
		t.Fatalf("1D should move more bytes: %+v", rows[0])
	}
}

func TestVerifyAllPass(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Verify(&buf, Options{Profile: datasets.Tiny, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("only %d checks ran", len(rows))
	}
	for _, r := range rows {
		if !r.Pass {
			t.Fatalf("verification failed: %+v\n%s", r, buf.String())
		}
	}
}

func TestSamplerVariance(t *testing.T) {
	var buf bytes.Buffer
	rows, err := SamplerVariance(&buf, "products", []int{2, 8}, Options{Profile: datasets.Tiny, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// SAGE error must fall as fanout grows; its budget must exceed the
	// layer-wise samplers' at equal s.
	var sage2, sage8 VarianceRow
	for _, r := range rows {
		if r.Sampler == "GraphSAGE" && r.Fanout == 2 {
			sage2 = r
		}
		if r.Sampler == "GraphSAGE" && r.Fanout == 8 {
			sage8 = r
		}
	}
	if sage8.MSE >= sage2.MSE {
		t.Fatalf("SAGE error did not fall with fanout: %+v vs %+v", sage8, sage2)
	}
	for _, r := range rows {
		if r.Sampler == "LADIES" && r.Fanout == 8 && r.Budget > sage8.Budget {
			t.Fatalf("LADIES budget exceeds SAGE: %+v", r)
		}
	}
}

func TestOverlapAnalysisBounds(t *testing.T) {
	var buf bytes.Buffer
	rows, err := OverlapAnalysis(&buf, Options{Profile: datasets.Tiny, GPUCounts: []int{4}, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	algos := map[string]int{}
	for _, r := range rows {
		algos[r.Algorithm]++
	}
	if algos["replicated"] == 0 || algos["partitioned"] == 0 {
		t.Fatalf("overlap analysis must cover both algorithms: %v", algos)
	}
	for _, r := range rows {
		if r.Overlapped > r.Sequential {
			t.Fatalf("overlap bound above sequential: %+v", r)
		}
		if r.Measured > r.Sequential*1.01 {
			t.Fatalf("measured overlap slower than sequential: %+v", r)
		}
		if r.Measured < r.Overlapped*0.95 {
			t.Fatalf("measured overlap beats the physical bound: %+v", r)
		}
		if r.Speedup < 0.99 || r.Speedup > 2.1 {
			t.Fatalf("overlap speedup out of range: %+v", r)
		}
	}
}

func TestSensitivitySpeedupSurvivesModelSwap(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Sensitivity(&buf, "products", []int{8}, Options{Profile: datasets.Tiny, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Fatalf("bulk pipeline loses under %s: %+v", r.ModelName, r)
		}
	}
}

func TestStragglerSensitivityMonotone(t *testing.T) {
	var buf bytes.Buffer
	rows, err := StragglerSensitivity(&buf, "products", 4, []float64{1, 2, 4},
		Options{Profile: datasets.Tiny, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Epoch <= rows[i-1].Epoch {
			t.Fatalf("straggler epoch not increasing: %+v", rows)
		}
	}
}

func TestCollectiveSweepMatchesAnalyticBounds(t *testing.T) {
	var buf bytes.Buffer
	rows, err := CollectiveSweep(&buf, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// 2 GPU counts x 2 sizes x 9 (op, algorithm) cells.
	if len(rows) != 36 {
		t.Fatalf("got %d rows", len(rows))
	}
	find := func(op, alg string, p, bytes int) CollectiveRow {
		for _, r := range rows {
			if r.Op == op && r.Algorithm == alg && r.P == p && r.Bytes == bytes {
				return r
			}
		}
		t.Fatalf("row %s/%s p=%d bytes=%d missing", op, alg, p, bytes)
		return CollectiveRow{}
	}
	for _, r := range rows {
		if r.Measured <= 0 || r.Predicted <= 0 {
			t.Fatalf("non-positive cell: %+v", r)
		}
		if r.Ratio < 0.99 || r.Ratio > 1.01 {
			t.Fatalf("measured diverges from analytic bound: %+v", r)
		}
	}
	const big, small = 4 << 20, 4 << 10
	// Ring beats the flat tree at large messages (pipelined broadcast).
	if ring, flat := find("broadcast", "ring", 8, big), find("broadcast", "flat", 8, big); ring.Measured >= flat.Measured {
		t.Fatalf("ring broadcast (%v) not faster than flat (%v) at %d bytes", ring.Measured, flat.Measured, big)
	}
	// ...and loses at small ones (p-1 pipeline-fill latencies).
	if ring, flat := find("broadcast", "ring", 8, small), find("broadcast", "flat", 8, small); ring.Measured <= flat.Measured {
		t.Fatalf("ring broadcast (%v) not slower than flat (%v) at %d bytes", ring.Measured, flat.Measured, small)
	}
	// Pairwise wins the latency-bound all-to-allv.
	if pw, flat := find("alltoallv", "pairwise", 8, small), find("alltoallv", "flat", 8, small); pw.Measured >= flat.Measured {
		t.Fatalf("pairwise all-to-allv (%v) not faster than flat (%v)", pw.Measured, flat.Measured)
	}
	// The hierarchical all-reduce keeps inter-node traffic proportional
	// to node count: 2 leaders instead of 8 ranks at p=8.
	hier, flat := find("allreduce", "hier", 8, big), find("allreduce", "flat", 8, big)
	if hier.Links.InterNode >= flat.Links.InterNode {
		t.Fatalf("hier inter-node bytes (%d) not below flat (%d)", hier.Links.InterNode, flat.Links.InterNode)
	}
	if hier.Links.IntraNode == 0 || flat.Links.IntraNode != 0 {
		t.Fatalf("per-link attribution wrong: hier %+v flat %+v", hier.Links, flat.Links)
	}
}

func TestTprobPerAlgorithmRows(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Tprob(&buf, "products", 4, []int{1, 2}, Options{Profile: datasets.Tiny, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	algs := map[string]int{}
	for _, r := range rows {
		algs[r.Algorithm]++
		if r.Measured <= 0 || r.Predicted <= 0 {
			t.Fatalf("non-positive entries: %+v", r)
		}
	}
	// c=1 degenerates every schedule to flat, so the ring sweep skips it.
	if algs["flat"] != 2 || algs["ring"] != 1 {
		t.Fatalf("algorithm coverage: %v", algs)
	}
}

func TestContentionExperiment(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Contention(&buf, Options{Profile: datasets.Tiny, MaxBatches: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// 2 algorithms x 4 topologies x {sequential, overlapped}.
	if len(rows) != 16 {
		t.Fatalf("got %d rows, want 16", len(rows))
	}
	totals := map[string]float64{} // algorithm/topology/overlap -> total
	for _, r := range rows {
		key := fmt.Sprintf("%s/%s/%v", r.Algorithm, r.Topology, r.Overlap)
		totals[key] = r.Total
		if r.Total <= 0 {
			t.Fatalf("%s: non-positive total", key)
		}
		if r.Topology == "ideal" {
			if len(r.Links) != 0 {
				t.Fatalf("%s: ideal topology reported physical links", key)
			}
			continue
		}
		if len(r.Links) == 0 {
			t.Fatalf("%s: contended run reported no physical links", key)
		}
		if r.Slowdown < 1-1e-9 {
			t.Fatalf("%s: contention sped the run up (%.3fx)", key, r.Slowdown)
		}
		if r.Topology == "oversub4x" && r.PeakNICShare < 2 {
			t.Fatalf("%s: oversubscribed NIC never shared (peak %d)", key, r.PeakNICShare)
		}
	}
	for _, algo := range []string{"replicated", "partitioned"} {
		for _, ov := range []string{"false", "true"} {
			ideal := totals[algo+"/ideal/"+ov]
			over := totals[algo+"/oversub4x/"+ov]
			if over <= ideal {
				t.Fatalf("%s overlap=%s: oversubscribed makespan %.6g not longer than ideal %.6g",
					algo, ov, over, ideal)
			}
		}
	}
}
