package core

import (
	"repro/internal/sparse"
)

// SAGE is the node-wise GraphSAGE sampler (Section 4.1): each frontier
// vertex samples s of its neighbors uniformly at random.
type SAGE struct{}

// Name implements Sampler.
func (SAGE) Name() string { return "GraphSAGE" }

// BuildQ constructs the stacked sampler matrix Q^l for node-wise
// sampling: one row per frontier vertex with a single unit entry in
// that vertex's column (Section 4.1.1).
func (SAGE) BuildQ(cur *Frontier, n int) *sparse.CSR {
	m := cur.Len()
	q := &sparse.CSR{
		Rows:   m,
		Cols:   n,
		RowPtr: make([]int, m+1),
		ColIdx: make([]int, m),
		Val:    make([]float64, m),
	}
	for i, v := range cur.Vertices {
		q.RowPtr[i+1] = i + 1
		q.ColIdx[i] = v
		q.Val[i] = 1
	}
	return q
}

// Norm row-normalizes P so each row is the uniform distribution over
// the vertex's neighbors (each nonzero becomes 1/|N(v)|).
func (SAGE) Norm(p *sparse.CSR) { p.NormalizeRows() }

// Step performs one bulk GraphSAGE layer: P ← Q·A, NORM, ITS sampling
// of s neighbors per row, and extraction by column compaction
// (Sections 4.1.1–4.1.4).
func (sg SAGE) Step(a *sparse.CSR, cur *Frontier, s int, seed int64) (*LayerSample, Cost) {
	var cost Cost
	q := sg.BuildQ(cur, a.Cols)
	p, flops := sparse.SpGEMM(q, a)
	cost.ProbFlops += flops
	cost.Kernels += 2 // Q construction, SpGEMM
	ls, c2 := sg.FinishStep(p, cur, s, seed)
	cost.Add(c2)
	return ls, cost
}

// FinishStep completes a GraphSAGE layer given the raw probability
// matrix P = Q·A: normalization, ITS sampling and extraction. The
// distributed drivers call this after computing P with a distributed
// SpGEMM (rows of P must align with cur's stacked frontier).
func (sg SAGE) FinishStep(p *sparse.CSR, cur *Frontier, s int, seed int64) (*LayerSample, Cost) {
	var cost Cost
	sg.Norm(p)
	cost.Kernels++

	// SAMPLE: ITS per row. picks[i] holds the sampled global vertex
	// ids of frontier row i, in row-sorted order. One RowSampler reuses
	// the RNG register and ITS scratch across all rows.
	picks := make([][]int, p.Rows)
	var rs RowSampler
	for i := 0; i < p.Rows; i++ {
		cols, vals := p.Row(i)
		sel, ops := rs.Sample(vals, s, seed, i)
		cost.SampleOps += ops
		pk := make([]int, len(sel))
		for j, t := range sel {
			pk[j] = cols[t]
		}
		picks[i] = pk
	}
	cost.Kernels++

	// EXTRACT: the sampled adjacency has one row per frontier vertex
	// and columns "self frontier ++ sampled vertices" (empty columns
	// already removed by construction — the compaction of Section
	// 4.1.3 is implicit because only sampled vertices get columns).
	k := cur.K()
	next := &Frontier{BatchPtr: make([]int, k+1)}
	adj := &sparse.CSR{Rows: cur.Len(), RowPtr: make([]int, cur.Len()+1)}

	// First pass: build the next frontier (self prefix then sampled).
	sampledStart := make([]int, cur.Len()) // column offset of row i's picks
	colCursor := 0
	for b := 0; b < k; b++ {
		rb := cur.Batch(b)
		next.Vertices = append(next.Vertices, rb...)
		colCursor += len(rb)
		for i := cur.BatchPtr[b]; i < cur.BatchPtr[b+1]; i++ {
			sampledStart[i] = colCursor
			colCursor += len(picks[i])
			next.Vertices = append(next.Vertices, picks[i]...)
		}
		next.BatchPtr[b+1] = len(next.Vertices)
	}
	adj.Cols = colCursor
	if colCursor != next.Len() {
		panic("core: SAGE frontier bookkeeping out of sync")
	}

	// Second pass: fill rows. Row i's sampled columns are the
	// consecutive range starting at sampledStart[i].
	nnz := 0
	for i := range picks {
		nnz += len(picks[i])
	}
	adj.ColIdx = make([]int, 0, nnz)
	adj.Val = make([]float64, 0, nnz)
	for i := range picks {
		for j := range picks[i] {
			adj.ColIdx = append(adj.ColIdx, sampledStart[i]+j)
			adj.Val = append(adj.Val, 1)
		}
		adj.RowPtr[i+1] = len(adj.ColIdx)
	}
	cost.ExtractOps += int64(nnz)
	cost.Kernels++

	return &LayerSample{Adj: adj, Rows: cur, Cols: next}, cost
}
