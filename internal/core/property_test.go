package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// randomScenario builds a random graph and random batches from a quick
// seed.
func randomScenario(seed int64) (adj *randGraphAdj, batches [][]int, fanouts []int) {
	rng := rand.New(rand.NewSource(seed))
	n := 30 + rng.Intn(120)
	deg := 4 + rng.Float64()*8
	g := graph.EnsureMinOutDegree(graph.ErdosRenyi(n, deg, seed), 3, seed+1)
	k := 1 + rng.Intn(4)
	b := 1 + rng.Intn(6)
	batches = make([][]int, k)
	for i := range batches {
		batch := make([]int, b)
		for j := range batch {
			batch[j] = rng.Intn(n)
		}
		batches[i] = batch
	}
	layers := 1 + rng.Intn(2)
	fanouts = make([]int, layers)
	for i := range fanouts {
		fanouts[i] = 2 + rng.Intn(4)
	}
	return &randGraphAdj{g: g}, batches, fanouts
}

type randGraphAdj struct{ g *graph.Graph }

func TestPropertySAGEStructuralInvariants(t *testing.T) {
	check := func(seed int64) bool {
		adj, batches, fanouts := randomScenario(seed)
		bs := SampleBulk(SAGE{}, adj.g.Adj, batches, fanouts, seed)
		if bs.Validate(adj.g.NumVertices()) != nil {
			return false
		}
		// Every sampled edge exists; no row oversamples its fanout.
		for li, ls := range bs.Layers {
			for i := 0; i < ls.Adj.Rows; i++ {
				if ls.Adj.RowNNZ(i) > fanouts[li] {
					return false
				}
				u := ls.Rows.Vertices[i]
				cols, _ := ls.Adj.Row(i)
				for _, c := range cols {
					if adj.g.Adj.At(u, ls.Cols.Vertices[c]) == 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLADIESStructuralInvariants(t *testing.T) {
	check := func(seed int64) bool {
		adj, batches, fanouts := randomScenario(seed)
		bs := SampleBulk(LADIES{}, adj.g.Adj, batches, fanouts, seed)
		if bs.Validate(adj.g.NumVertices()) != nil {
			return false
		}
		for li, ls := range bs.Layers {
			// Per batch: sampled set size bounded by s and distinct.
			for b := 0; b < ls.Rows.K(); b++ {
				rb, cb := ls.Rows.Batch(b), ls.Cols.Batch(b)
				sampled := cb[len(rb):]
				if len(sampled) > fanouts[li] {
					return false
				}
				seen := map[int]struct{}{}
				for _, v := range sampled {
					if _, dup := seen[v]; dup {
						return false
					}
					seen[v] = struct{}{}
				}
			}
			// Sampled edges all exist in the graph.
			for i := 0; i < ls.Adj.Rows; i++ {
				u := ls.Rows.Vertices[i]
				cols, _ := ls.Adj.Row(i)
				for _, c := range cols {
					if adj.g.Adj.At(u, ls.Cols.Vertices[c]) == 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFastGCNStructuralInvariants(t *testing.T) {
	check := func(seed int64) bool {
		adj, batches, fanouts := randomScenario(seed)
		bs := SampleBulk(FastGCN{}, adj.g.Adj, batches, fanouts, seed)
		return bs.Validate(adj.g.NumVertices()) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyExtractBatchPartitionsBulk(t *testing.T) {
	// The per-batch extraction must partition the bulk: total edges
	// across extracted batches equals the bulk adjacency edge count,
	// layer by layer.
	check := func(seed int64) bool {
		adj, batches, fanouts := randomScenario(seed)
		bs := SampleBulk(SAGE{}, adj.g.Adj, batches, fanouts, seed)
		for li := range bs.Layers {
			total := 0
			for b := range batches {
				bg := bs.ExtractBatch(b)
				total += bg.Adjs[li].NNZ()
			}
			if total != bs.Layers[li].Adj.NNZ() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBulkFrontierSizesAdditive(t *testing.T) {
	// The stacked frontier is exactly the concatenation of per-batch
	// frontiers: lengths add up and batch pointers are consistent.
	check := func(seed int64) bool {
		adj, batches, fanouts := randomScenario(seed)
		bs := SampleBulk(SAGE{}, adj.g.Adj, batches, fanouts, seed)
		for _, ls := range bs.Layers {
			sum := 0
			for b := 0; b < ls.Cols.K(); b++ {
				sum += len(ls.Cols.Batch(b))
			}
			if sum != ls.Cols.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
