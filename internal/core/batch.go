package core

import "repro/internal/sparse"

// BatchGraph is one minibatch's sampled computation graph, extracted
// from a bulk sample: per-layer adjacencies with batch-local column
// indices, plus the frontier vertex lists. It is the unit handed to
// forward/backward propagation (Section 6.2: "Each process extracts a
// minibatch's sampled adjacency matrix A_i from A_S in a training
// step").
type BatchGraph struct {
	// Seeds are the minibatch vertices (depth-0 frontier).
	Seeds []int
	// Adjs[l] connects the depth-l frontier (rows) to the depth-(l+1)
	// frontier (cols); columns are local to this batch and the
	// depth-(l+1) frontier embeds the depth-l frontier as a prefix.
	Adjs []*sparse.CSR
	// Frontiers[d] lists global vertex ids at depth d; Frontiers[0] ==
	// Seeds and Frontiers[len(Adjs)] is the input frontier whose
	// features feed propagation.
	Frontiers [][]int
}

// Depth returns the number of sampled layers.
func (b *BatchGraph) Depth() int { return len(b.Adjs) }

// InputVertices returns the deepest frontier's global vertex ids.
func (b *BatchGraph) InputVertices() []int { return b.Frontiers[len(b.Frontiers)-1] }

// FullGraphBatch returns the BatchGraph covering the entire graph with
// no sampling: every layer aggregates over the full adjacency matrix.
// This is full-batch computation — exact inference for evaluation, and
// the degenerate case the paper's minibatch methods improve on.
func FullGraphBatch(adj *sparse.CSR, layers int) *BatchGraph {
	n := adj.Rows
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	bg := &BatchGraph{Seeds: all}
	for l := 0; l < layers; l++ {
		bg.Adjs = append(bg.Adjs, adj)
		bg.Frontiers = append(bg.Frontiers, all)
	}
	bg.Frontiers = append(bg.Frontiers, all)
	return bg
}

// ExtractBatch slices minibatch i out of the bulk sample, relabeling
// adjacency columns to be batch-local.
func (b *BulkSample) ExtractBatch(i int) *BatchGraph {
	bg := &BatchGraph{Seeds: b.Batches[i]}
	for _, ls := range b.Layers {
		rLo, rHi := ls.Rows.BatchPtr[i], ls.Rows.BatchPtr[i+1]
		cLo := ls.Cols.BatchPtr[i]
		adj := sparse.SliceRows(ls.Adj, rLo, rHi)
		// Shift columns into the batch-local frame.
		for k := range adj.ColIdx {
			adj.ColIdx[k] -= cLo
		}
		adj.Cols = ls.Cols.BatchPtr[i+1] - cLo
		bg.Adjs = append(bg.Adjs, adj)
		bg.Frontiers = append(bg.Frontiers, ls.Rows.Batch(i))
	}
	bg.Frontiers = append(bg.Frontiers, b.Layers[len(b.Layers)-1].Cols.Batch(i))
	return bg
}
