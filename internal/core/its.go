package core

import (
	"math"
	"math/rand"
	"sort"
)

// ITS implements inverse transform sampling of s distinct entries per
// probability row (Section 2.3 and 4.1.2 of the paper): run a prefix
// sum over the row's weights, draw uniform variates, and binary-search
// each draw into the prefix sum; repeat until s distinct columns are
// selected.
//
// A bounded number of redraws guards against pathological rows (a few
// entries holding nearly all mass); past the bound, sampling falls
// back to exponential-key weighted reservoir selection (Efraimidis &
// Sanders-style), which is draw-exact without replacement.

// FloatRNG is the uniform-variate source the samplers draw from:
// *rand.Rand and *RowRNG (the allocation-free exact replica of
// math/rand's stream) both satisfy it.
type FloatRNG interface {
	Float64() float64
}

// SampleRowITS selects min(s, len(cols)) distinct indices into cols
// with probability proportional to weights, without replacement.
// It returns the selected positions (sorted) and the number of
// elementary operations performed (for cost accounting).
func SampleRowITS(weights []float64, s int, rng FloatRNG) (picks []int, ops int64) {
	var sc itsScratch
	return sampleRowITS(weights, s, rng, &sc)
}

// itsScratch holds the per-row working storage SampleRowITS needs, so
// a driver sampling many rows (RowSampler) reuses it instead of
// reallocating the prefix-sum and selection buffers per row.
type itsScratch struct {
	prefix []float64
	chosen []int // selected indices, kept sorted
	keyed  []itsKeyed
}

type itsKeyed struct {
	key float64
	idx int
}

// insertChosen adds idx to the sorted selection if absent.
func (sc *itsScratch) insertChosen(idx int) {
	at := sort.SearchInts(sc.chosen, idx)
	if at < len(sc.chosen) && sc.chosen[at] == idx {
		return
	}
	sc.chosen = append(sc.chosen, 0)
	copy(sc.chosen[at+1:], sc.chosen[at:])
	sc.chosen[at] = idx
}

// sampleRowITS is SampleRowITS over caller-owned scratch. The drawn
// variate sequence, the op accounting and the returned picks are
// identical to the historical map-based implementation (the selection
// set is sorted on return either way).
func sampleRowITS(weights []float64, s int, rng FloatRNG, sc *itsScratch) (picks []int, ops int64) {
	nnz := len(weights)
	if nnz == 0 || s <= 0 {
		return nil, 0
	}
	if nnz <= s {
		picks = make([]int, nnz)
		for i := range picks {
			picks[i] = i
		}
		return picks, int64(nnz)
	}

	// Prefix sum.
	if cap(sc.prefix) < nnz+1 {
		sc.prefix = make([]float64, nnz+1)
	}
	prefix := sc.prefix[:nnz+1]
	prefix[0] = 0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("core: negative or NaN sampling weight")
		}
		prefix[i+1] = prefix[i] + w
	}
	ops += int64(nnz)
	total := prefix[nnz]
	if total == 0 {
		return nil, ops
	}

	sc.chosen = sc.chosen[:0]
	maxTries := 8*s + 32
	tries := 0
	for len(sc.chosen) < s && tries < maxTries {
		tries++
		u := rng.Float64() * total
		// Find the first prefix boundary exceeding u.
		idx := sort.SearchFloat64s(prefix[1:], u)
		if idx >= nnz {
			idx = nnz - 1
		}
		// Skip zero-weight entries that a boundary draw can land on.
		if weights[idx] == 0 {
			continue
		}
		ops += int64(math.Ilogb(float64(nnz))) + 1
		sc.insertChosen(idx)
	}

	if len(sc.chosen) < s {
		// Fallback: exponential-key weighted order statistics. Exact
		// without-replacement semantics at O(nnz log nnz).
		ks := sc.keyed[:0]
		for i, w := range weights {
			if w <= 0 {
				continue
			}
			ks = append(ks, itsKeyed{key: -math.Log(rng.Float64()) / w, idx: i})
		}
		sort.Slice(ks, func(a, b int) bool { return ks[a].key < ks[b].key })
		ops += int64(len(ks)) * 2
		for _, kv := range ks {
			if len(sc.chosen) == s {
				break
			}
			sc.insertChosen(kv.idx)
		}
		sc.keyed = ks[:0]
	}

	picks = make([]int, len(sc.chosen))
	copy(picks, sc.chosen)
	return picks, ops
}

// RowSampler batches per-row ITS sampling over one reused RNG and
// scratch set: Sample(weights, s, seed, row) is exactly
// SampleRowITS(weights, s, NewRowRNG(seed, row)) — same draws, same
// ops, same picks — without the per-row source seeding and buffer
// allocations that dominated bulk-sampling CPU time.
type RowSampler struct {
	rng RowRNG
	sc  itsScratch
}

// Sample draws min(s, nnz) distinct indices for one row. See
// SampleRowITS for semantics.
func (rs *RowSampler) Sample(weights []float64, s int, seed int64, row int) (picks []int, ops int64) {
	rs.rng.Reseed(rowSeed(seed, row))
	return sampleRowITS(weights, s, &rs.rng, &rs.sc)
}

// rowSeed derives a per-row RNG seed so sampling is deterministic
// regardless of the order or parallelism in which rows are processed.
func rowSeed(seed int64, row int) int64 {
	z := uint64(seed) + uint64(row)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// NewRowRNG returns the deterministic RNG for the given (seed, row).
func NewRowRNG(seed int64, row int) *rand.Rand {
	return rand.New(rand.NewSource(rowSeed(seed, row)))
}

// SampleRowITSReplacement draws s indices with replacement — the
// variant some frameworks use when a vertex's degree is below the
// fanout. Returned indices may repeat and preserve draw order.
func SampleRowITSReplacement(weights []float64, s int, rng FloatRNG) (picks []int, ops int64) {
	nnz := len(weights)
	if nnz == 0 || s <= 0 {
		return nil, 0
	}
	prefix := make([]float64, nnz+1)
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("core: negative or NaN sampling weight")
		}
		prefix[i+1] = prefix[i] + w
	}
	ops += int64(nnz)
	total := prefix[nnz]
	if total == 0 {
		return nil, ops
	}
	picks = make([]int, 0, s)
	for len(picks) < s {
		u := rng.Float64() * total
		idx := sort.SearchFloat64s(prefix[1:], u)
		if idx >= nnz {
			idx = nnz - 1
		}
		if weights[idx] == 0 {
			continue
		}
		picks = append(picks, idx)
		ops += int64(math.Ilogb(float64(nnz))) + 1
	}
	return picks, ops
}
