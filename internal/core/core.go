// Package core implements the paper's primary contribution: matrix-based
// bulk sampling of GNN minibatches (Tripathy, Yelick, Buluç — MLSys 2024).
//
// Sampling a minibatch is expressed as sparse matrix algebra following
// Algorithm 1 of the paper:
//
//	for l = L down to 1:
//	    P        ← Q^l · A          (generate probability distributions)
//	    P        ← NORM(P)          (sampler-dependent normalization)
//	    Q^{l-1}  ← SAMPLE(P, b, s)  (inverse transform sampling per row)
//	    A^l      ← EXTRACT(A, Q^l, Q^{l-1})
//
// Multiple minibatches are sampled in bulk by vertically stacking the
// per-batch Q, P and A^l matrices (Equation 1), which amortizes
// per-batch sampling overheads and turns the whole epoch's sampling
// into a handful of large SpGEMM calls.
//
// The package provides the GraphSAGE (node-wise), LADIES and FastGCN
// (layer-wise) samplers on top of shared building blocks: sampler
// matrix construction, normalization, inverse transform sampling, and
// row/column extraction. internal/distsample reuses the same blocks
// with distributed SpGEMM drivers.
package core

import (
	"fmt"

	"repro/internal/sparse"
)

// Frontier is a set of vertices per batch at one sampling depth,
// stacked across the k batches of a bulk call. Vertices[BatchPtr[i]:
// BatchPtr[i+1]] are batch i's frontier vertices (global vertex ids,
// possibly with duplicates — node-wise sampling trees do not
// deduplicate).
type Frontier struct {
	Vertices []int
	BatchPtr []int
}

// NewFrontier builds a frontier from per-batch vertex lists.
func NewFrontier(batches [][]int) *Frontier {
	f := &Frontier{BatchPtr: make([]int, len(batches)+1)}
	for i, b := range batches {
		f.Vertices = append(f.Vertices, b...)
		f.BatchPtr[i+1] = len(f.Vertices)
	}
	return f
}

// K returns the number of batches.
func (f *Frontier) K() int { return len(f.BatchPtr) - 1 }

// Len returns the total number of stacked vertices.
func (f *Frontier) Len() int { return len(f.Vertices) }

// Batch returns batch i's vertices (aliased; read-only).
func (f *Frontier) Batch(i int) []int {
	return f.Vertices[f.BatchPtr[i]:f.BatchPtr[i+1]]
}

// Cost tallies the operation counts of one sampling step so callers
// can charge simulated device time. All counts are device-agnostic.
type Cost struct {
	ProbFlops  int64 // SpGEMM work for P = Q·A (and LADIES extraction products)
	SampleOps  int64 // prefix sums and binary searches in ITS
	ExtractOps int64 // extraction/compaction work
	Kernels    int   // number of device kernel launches
}

// Add accumulates another cost into c.
func (c *Cost) Add(o Cost) {
	c.ProbFlops += o.ProbFlops
	c.SampleOps += o.SampleOps
	c.ExtractOps += o.ExtractOps
	c.Kernels += o.Kernels
}

// Total returns the total operation count (for coarse charging).
func (c Cost) Total() int64 { return c.ProbFlops + c.SampleOps + c.ExtractOps }

// LayerSample is the output of one layer of Algorithm 1 for a bulk of
// k batches.
//
// Adj is the stacked sampled adjacency: its rows correspond to the
// current frontier Rows (the layer-l vertices of every batch,
// concatenated) and its columns to the next frontier Cols. To support
// GNN propagation, Cols always embeds Rows as a prefix (self vertices
// first, then the newly sampled vertices), so Adj's column space is
// "self ++ sampled". Adj itself contains only the sampled edges of the
// paper's A^l; the self prefix merely fixes the column indexing.
type LayerSample struct {
	Adj  *sparse.CSR
	Rows *Frontier // layer-l frontier (rows of Adj)
	Cols *Frontier // layer-(l-1) frontier: Rows ++ newly sampled
}

// BulkSample is the output of a full bulk sampling call: one
// LayerSample per GNN layer, ordered from the batch layer (paper layer
// L) to the deepest layer (paper layer 1). Layers[len-1].Cols is the
// input frontier whose feature vectors must be fetched.
type BulkSample struct {
	Batches [][]int
	Layers  []*LayerSample
	Cost    Cost
}

// InputFrontier returns the deepest frontier — the vertices whose
// features feed forward propagation.
func (b *BulkSample) InputFrontier() *Frontier {
	return b.Layers[len(b.Layers)-1].Cols
}

// Sampler runs one layer of Algorithm 1 in bulk. Implementations are
// GraphSAGE (node-wise) and LADIES/FastGCN (layer-wise).
type Sampler interface {
	Name() string
	// Step samples one layer: given the adjacency matrix and the
	// current frontier, it returns the layer adjacency and next
	// frontier, using fanout s and the given seed for ITS.
	Step(a *sparse.CSR, cur *Frontier, s int, seed int64) (*LayerSample, Cost)
}

// SampleBulk runs Algorithm 1 for all layers over k batches in bulk.
// fanouts[0] is the fanout at the batch layer (paper layer L);
// fanouts[len-1] is the deepest. For layer-wise samplers the fanout is
// the per-batch layer size s.
func SampleBulk(s Sampler, a *sparse.CSR, batches [][]int, fanouts []int, seed int64) *BulkSample {
	if len(fanouts) == 0 {
		panic("core: need at least one fanout")
	}
	out := &BulkSample{Batches: batches}
	cur := NewFrontier(batches)
	for l, fan := range fanouts {
		ls, cost := s.Step(a, cur, fan, seed+int64(l)*1e9)
		out.Layers = append(out.Layers, ls)
		out.Cost.Add(cost)
		cur = ls.Cols
	}
	return out
}

// Validate checks structural invariants of a bulk sample; used by
// tests and the distributed drivers.
func (b *BulkSample) Validate(n int) error {
	for li, ls := range b.Layers {
		if err := ls.Adj.Validate(); err != nil {
			return fmt.Errorf("layer %d: %w", li, err)
		}
		if ls.Adj.Rows != ls.Rows.Len() {
			return fmt.Errorf("layer %d: adj has %d rows, frontier %d", li, ls.Adj.Rows, ls.Rows.Len())
		}
		if ls.Adj.Cols != ls.Cols.Len() {
			return fmt.Errorf("layer %d: adj has %d cols, frontier %d", li, ls.Adj.Cols, ls.Cols.Len())
		}
		for _, v := range ls.Cols.Vertices {
			if v < 0 || v >= n {
				return fmt.Errorf("layer %d: frontier vertex %d outside graph of %d", li, v, n)
			}
		}
		// Cols must embed Rows as a prefix batch by batch.
		for i := 0; i < ls.Rows.K(); i++ {
			rb, cb := ls.Rows.Batch(i), ls.Cols.Batch(i)
			if len(cb) < len(rb) {
				return fmt.Errorf("layer %d batch %d: col frontier smaller than row frontier", li, i)
			}
			for j := range rb {
				if cb[j] != rb[j] {
					return fmt.Errorf("layer %d batch %d: self prefix broken at %d", li, i, j)
				}
			}
		}
	}
	return nil
}
