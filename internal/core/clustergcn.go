package core

import (
	"math/rand"
	"sort"

	"repro/internal/sparse"
)

// ClusterGCN is a graph-wise sampler in the matrix framework — the
// third sampler taxonomy of Section 2.2, which the paper leaves to
// future work ("we hope to express additional sampling algorithms in
// this framework"). Vertices are pre-partitioned into clusters; a
// minibatch is the union of a few clusters and its sample is the
// induced subgraph, expressed as the row-and-column extraction
// A_S = Q_R · A · Q_C with Q_R = Q_C^T selecting the batch vertices.
//
// Unlike node- and layer-wise samplers the frontier never grows: every
// GNN layer reuses the same induced adjacency, so Step returns a
// LayerSample whose column frontier equals its row frontier.
type ClusterGCN struct {
	// Assign maps vertex -> cluster id.
	Assign []int
	// Clusters lists each cluster's vertices (sorted).
	Clusters [][]int
}

// NewClusterGCN partitions the graph into numClusters clusters with a
// BFS-flavoured sweep: vertices reached from a frontier join the
// current cluster until it is full, which keeps clusters locally dense
// (the property ClusterGCN's sampling quality depends on).
func NewClusterGCN(adj *sparse.CSR, numClusters int, seed int64) *ClusterGCN {
	n := adj.Rows
	if numClusters <= 0 || numClusters > n {
		panic("core: cluster count must be in [1, n]")
	}
	target := (n + numClusters - 1) / numClusters
	rng := rand.New(rand.NewSource(seed))

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	order := rng.Perm(n)
	cur := 0
	size := 0
	var queue []int
	pop := func() (int, bool) {
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if assign[v] == -1 {
				return v, true
			}
		}
		return 0, false
	}
	next := 0 // cursor into order for restarts
	for placed := 0; placed < n; placed++ {
		v, ok := pop()
		if !ok {
			for next < n && assign[order[next]] != -1 {
				next++
			}
			v = order[next]
		}
		assign[v] = cur
		size++
		cols, _ := adj.Row(v)
		queue = append(queue, cols...)
		if size >= target && cur < numClusters-1 {
			cur++
			size = 0
			queue = queue[:0]
		}
	}

	clusters := make([][]int, numClusters)
	for v, c := range assign {
		clusters[c] = append(clusters[c], v)
	}
	for _, c := range clusters {
		sort.Ints(c)
	}
	return &ClusterGCN{Assign: assign, Clusters: clusters}
}

// Name implements Sampler.
func (*ClusterGCN) Name() string { return "ClusterGCN" }

// Batches groups clusters into k minibatches (clusters per batch =
// ceil(numClusters / k)), shuffled by seed — the per-epoch batch
// construction of graph-wise training.
func (cg *ClusterGCN) Batches(k int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(cg.Clusters))
	if k <= 0 {
		k = 1
	}
	if k > len(idx) {
		k = len(idx)
	}
	per := (len(idx) + k - 1) / k
	var out [][]int
	for lo := 0; lo < len(idx); lo += per {
		hi := lo + per
		if hi > len(idx) {
			hi = len(idx)
		}
		var batch []int
		for _, ci := range idx[lo:hi] {
			batch = append(batch, cg.Clusters[ci]...)
		}
		sort.Ints(batch)
		out = append(out, batch)
	}
	return out
}

// Step extracts each batch's induced subgraph. The fanout s and seed
// are unused: graph-wise sampling is deterministic given the batch.
func (cg *ClusterGCN) Step(a *sparse.CSR, cur *Frontier, s int, seed int64) (*LayerSample, Cost) {
	var cost Cost
	k := cur.K()
	adj := &sparse.CSR{Rows: cur.Len(), Cols: cur.Len(), RowPtr: make([]int, cur.Len()+1)}
	for b := 0; b < k; b++ {
		verts := cur.Batch(b)
		base := cur.BatchPtr[b]
		pos := make(map[int]int, len(verts))
		for j, v := range verts {
			pos[v] = j
		}
		// Row extraction (Q_R·A) then column selection (·Q_C): keep
		// only edges internal to the batch.
		for i, v := range verts {
			cols, vals := a.Row(v)
			for t, c := range cols {
				if j, ok := pos[c]; ok {
					adj.ColIdx = append(adj.ColIdx, base+j)
					adj.Val = append(adj.Val, vals[t])
				}
			}
			cost.ExtractOps += int64(len(cols))
			adj.RowPtr[base+i+1] = len(adj.ColIdx)
		}
	}
	cost.Kernels += 2
	// The column frontier IS the row frontier: self prefix with no
	// sampled extension.
	return &LayerSample{Adj: adj, Rows: cur, Cols: cur}, cost
}
