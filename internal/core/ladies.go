package core

import (
	"sort"

	"repro/internal/sparse"
)

// LADIES is the layer-wise dependency sampler of Zou et al. (Section
// 4.2): each batch samples s vertices from the aggregated neighborhood
// of its current layer, with vertex v selected with probability
// p_v = e_v^2 / Σ_u e_u^2 where e_v is v's edge count into the layer.
// The sampled adjacency contains every edge between the current layer
// and the sampled vertex set.
type LADIES struct {
	// Reweight divides every sampled edge value by s·p_v — the
	// importance weighting of Zou et al. §3.2 that makes sampled
	// aggregation an (approximately, for sampling without
	// replacement) unbiased estimator of exact aggregation. The
	// paper's performance study uses unweighted binary adjacencies;
	// enable this for accuracy-sensitive training.
	Reweight bool
}

// Name implements Sampler.
func (LADIES) Name() string { return "LADIES" }

// BuildQ constructs the stacked sampler matrix Q^l for layer-wise
// sampling: one row per batch holding a unit entry per frontier vertex
// (Section 4.2.1).
func (LADIES) BuildQ(cur *Frontier, n int) *sparse.CSR {
	k := cur.K()
	q := &sparse.CSR{Rows: k, Cols: n, RowPtr: make([]int, k+1)}
	for b := 0; b < k; b++ {
		verts := append([]int(nil), cur.Batch(b)...)
		sort.Ints(verts)
		// Deduplicate: Q is binary and frontier repeats collapse.
		w := 0
		for i, v := range verts {
			if i == 0 || v != verts[i-1] {
				verts[w] = v
				w++
			}
		}
		verts = verts[:w]
		q.ColIdx = append(q.ColIdx, verts...)
		for range verts {
			q.Val = append(q.Val, 1)
		}
		q.RowPtr[b+1] = len(q.ColIdx)
	}
	return q
}

// Norm converts the neighbor-count row e into LADIES probabilities by
// squaring each entry and normalizing the row (p_v ∝ e_v^2).
func (LADIES) Norm(p *sparse.CSR) {
	p.Apply(func(v float64) float64 { return v * v })
	p.NormalizeRows()
}

// Step performs one bulk LADIES layer: P ← Q·A with LADIES
// normalization, ITS sampling of s vertices per batch, then row
// extraction (Q_R·A) and per-batch column extraction — the
// block-diagonal bulk extraction of Section 4.2.4.
func (ld LADIES) Step(a *sparse.CSR, cur *Frontier, s int, seed int64) (*LayerSample, Cost) {
	return layerwiseStep(ld, a, cur, s, seed)
}

// norm is the internal hook layer-wise samplers override.
func (ld LADIES) norm(p *sparse.CSR, _ *sparse.CSR) { ld.Norm(p) }

// FastGCN is the layer-wise importance sampler of Chen et al. (Section
// 2.2.2), expressed in the same matrix framework as LADIES but with
// degree-proportional probabilities that ignore layer dependency.
// Following the paper's observation that FastGCN may sample vertices
// outside the aggregated neighborhood — which wastes samples — this
// implementation restricts support to the aggregated neighborhood and
// weighs each candidate by its global degree (an importance-weighted
// variant; the difference from LADIES is the probability model).
type FastGCN struct{}

// Name implements Sampler.
func (FastGCN) Name() string { return "FastGCN" }

// BuildQ is identical to LADIES: one row per batch.
func (FastGCN) BuildQ(cur *Frontier, n int) *sparse.CSR {
	return LADIES{}.BuildQ(cur, n)
}

// norm replaces each candidate's weight with the square of its global
// degree, normalized per row.
func (FastGCN) norm(p *sparse.CSR, a *sparse.CSR) {
	for i := 0; i < p.Rows; i++ {
		cols, vals := p.Row(i)
		for k, c := range cols {
			d := float64(a.RowNNZ(c))
			vals[k] = d * d
		}
	}
	p.NormalizeRows()
}

// Step performs one bulk FastGCN layer.
func (fg FastGCN) Step(a *sparse.CSR, cur *Frontier, s int, seed int64) (*LayerSample, Cost) {
	return layerwiseStep(fg, a, cur, s, seed)
}

// layerwiseSampler is the shared shape of LADIES and FastGCN.
type layerwiseSampler interface {
	BuildQ(cur *Frontier, n int) *sparse.CSR
	norm(p, a *sparse.CSR)
}

// layerwiseStep is the shared layer-wise bulk step: probability
// generation, per-batch ITS, and row+column extraction.
func layerwiseStep(ls layerwiseSampler, a *sparse.CSR, cur *Frontier, s int, seed int64) (*LayerSample, Cost) {
	var cost Cost
	q := ls.BuildQ(cur, a.Cols)
	p, flops := sparse.SpGEMM(q, a)
	cost.ProbFlops += flops
	ls.norm(p, a)
	cost.Kernels += 3

	sampled, probs, c2 := SampleLayerwiseProbs(p, s, seed)
	cost.Add(c2)

	// EXTRACT: row extraction A_R = Q_R · A for the stacked frontier,
	// then per-batch column extraction onto each batch's sampled set —
	// the batched small SpGEMMs standing in for the block-diagonal
	// product of Section 4.2.4.
	ar := sparse.ExtractRows(a, cur.Vertices)
	cost.ExtractOps += int64(ar.NNZ())
	cost.Kernels++

	var weights [][]float64
	if ld, ok := ls.(LADIES); ok && ld.Reweight {
		weights = make([][]float64, len(sampled))
		for b := range sampled {
			w := make([]float64, len(sampled[b]))
			for j, pv := range probs[b] {
				if pv > 0 {
					w[j] = 1 / (float64(s) * pv)
				}
			}
			weights[b] = w
		}
	}
	lsam, c3 := ExtractLayerwiseWeighted(ar, cur, sampled, weights)
	cost.Add(c3)
	return lsam, cost
}

// SampleLayerwise draws s vertices per batch row of the normalized
// probability matrix P with ITS. It returns the sampled global vertex
// ids per batch (sorted). Exposed for the distributed drivers, which
// compute P with a distributed SpGEMM.
func SampleLayerwise(p *sparse.CSR, s int, seed int64) ([][]int, Cost) {
	sampled, _, cost := SampleLayerwiseProbs(p, s, seed)
	return sampled, cost
}

// SampleLayerwiseProbs is SampleLayerwise returning also the selection
// probability of each sampled vertex, used for importance reweighting.
func SampleLayerwiseProbs(p *sparse.CSR, s int, seed int64) ([][]int, [][]float64, Cost) {
	var cost Cost
	sampled := make([][]int, p.Rows)
	probs := make([][]float64, p.Rows)
	var rs RowSampler
	for b := 0; b < p.Rows; b++ {
		cols, vals := p.Row(b)
		sel, ops := rs.Sample(vals, s, seed, b)
		cost.SampleOps += ops
		sv := make([]int, len(sel))
		pv := make([]float64, len(sel))
		for j, t := range sel {
			sv[j] = cols[t]
			pv[j] = vals[t]
		}
		sampled[b] = sv // already sorted: sel ascending over sorted cols
		probs[b] = pv
	}
	cost.Kernels++
	return sampled, probs, cost
}

// ExtractLayerwise builds the layer-wise sampled adjacency given A_R
// (the frontier rows of A, stacked in cur order — the row-extraction
// product Q_R·A) and the per-batch sampled vertex sets. Exposed for
// the distributed drivers.
func ExtractLayerwise(ar *sparse.CSR, cur *Frontier, sampled [][]int) (*LayerSample, Cost) {
	return ExtractLayerwiseWeighted(ar, cur, sampled, nil)
}

// ExtractLayerwiseWeighted is ExtractLayerwise with optional per-batch
// importance weights multiplied onto the sampled columns' edge values
// (nil weights leave values untouched).
func ExtractLayerwiseWeighted(ar *sparse.CSR, cur *Frontier, sampled [][]int, weights [][]float64) (*LayerSample, Cost) {
	var cost Cost
	k := cur.K()
	next := &Frontier{BatchPtr: make([]int, k+1)}
	adj := &sparse.CSR{Rows: cur.Len(), RowPtr: make([]int, cur.Len()+1)}
	colCursor := 0
	for b := 0; b < k; b++ {
		rb := cur.Batch(b)
		next.Vertices = append(next.Vertices, rb...)
		colCursor += len(rb)
		sampBase := colCursor
		colCursor += len(sampled[b])
		next.Vertices = append(next.Vertices, sampled[b]...)
		next.BatchPtr[b+1] = len(next.Vertices)

		// Column-extract this batch's rows of A_R onto sampled[b].
		pos := make(map[int]int, len(sampled[b]))
		for j, v := range sampled[b] {
			pos[v] = j
		}
		for i := cur.BatchPtr[b]; i < cur.BatchPtr[b+1]; i++ {
			cols, vals := ar.Row(i)
			for t, c := range cols {
				if j, ok := pos[c]; ok {
					v := vals[t]
					if weights != nil {
						v *= weights[b][j]
					}
					adj.ColIdx = append(adj.ColIdx, sampBase+j)
					adj.Val = append(adj.Val, v)
				}
			}
			adj.RowPtr[i+1] = len(adj.ColIdx)
			cost.ExtractOps += int64(len(cols))
		}
	}
	adj.Cols = colCursor
	cost.Kernels++

	return &LayerSample{Adj: adj, Rows: cur, Cols: next}, cost
}
