package core

import (
	"math/rand"
	"testing"
)

// TestRowRNGMatchesMathRand pins RowRNG's value stream to
// math/rand.New(rand.NewSource(seed)) bit for bit: across seeds
// (positive, negative, zero, the per-row hash outputs), across draw
// counts that stay inside the first tap window, cross the feedback
// wrap-around, and cycle the whole register multiple times, and across
// reseeds of one reused instance.
func TestRowRNGMatchesMathRand(t *testing.T) {
	seeds := []int64{0, 1, -1, 89482311, int32max, int32max + 5, -int32max - 7,
		rowSeed(20240101, 0), rowSeed(20240101, 12345), rowSeed(5, 999)}
	draws := []int{1, 15, 272, 273, 274, 334, 335, 607, 608, 1300, 2000}
	var rr RowRNG
	for _, seed := range seeds {
		for _, n := range draws {
			ref := rand.New(rand.NewSource(seed))
			rr.Reseed(seed)
			for i := 0; i < n; i++ {
				want := ref.Float64()
				got := rr.Float64()
				if got != want {
					t.Fatalf("seed %d draw %d: RowRNG %v != math/rand %v", seed, i, got, want)
				}
			}
		}
	}
}

// TestRowRNGInt63Matches checks the raw integer stream too (Float64
// divides out low bits, so this is the stricter comparison).
func TestRowRNGInt63Matches(t *testing.T) {
	var rr RowRNG
	for _, seed := range []int64{7, rowSeed(1, 2), -99} {
		ref := rand.New(rand.NewSource(seed))
		rr.Reseed(seed)
		for i := 0; i < 1500; i++ {
			if got, want := rr.Int63(), ref.Int63(); got != want {
				t.Fatalf("seed %d draw %d: %d != %d", seed, i, got, want)
			}
		}
	}
}

// TestRowRNGReseedIsolated verifies a reused instance's generations do
// not bleed into each other: interleaving reseeds reproduces exactly
// what fresh math/rand instances produce.
func TestRowRNGReseedIsolated(t *testing.T) {
	var rr RowRNG
	for round := 0; round < 50; round++ {
		seed := rowSeed(42, round)
		ref := rand.New(rand.NewSource(seed))
		rr.Reseed(seed)
		n := 1 + (round*37)%700
		for i := 0; i < n; i++ {
			if got, want := rr.Float64(), ref.Float64(); got != want {
				t.Fatalf("round %d draw %d diverged", round, i)
			}
		}
	}
}

func BenchmarkNewRowRNGPlusDraws(b *testing.B) {
	sum := 0.0
	for i := 0; i < b.N; i++ {
		rng := NewRowRNG(1, i)
		for d := 0; d < 15; d++ {
			sum += rng.Float64()
		}
	}
	_ = sum
}

func BenchmarkRowRNGReseedPlusDraws(b *testing.B) {
	var rr RowRNG
	sum := 0.0
	for i := 0; i < b.N; i++ {
		rr.Reseed(rowSeed(1, i))
		for d := 0; d < 15; d++ {
			sum += rr.Float64()
		}
	}
	_ = sum
}
