package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleRowITSCountAndDistinctness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		nnz := 1 + rng.Intn(40)
		s := 1 + rng.Intn(20)
		w := make([]float64, nnz)
		for i := range w {
			w[i] = rng.Float64() + 0.01
		}
		picks, _ := SampleRowITS(w, s, rng)
		want := s
		if nnz < s {
			want = nnz
		}
		if len(picks) != want {
			t.Fatalf("trial %d: got %d picks, want %d (nnz=%d s=%d)", trial, len(picks), want, nnz, s)
		}
		seen := map[int]struct{}{}
		prev := -1
		for _, p := range picks {
			if p < 0 || p >= nnz {
				t.Fatalf("pick %d out of range", p)
			}
			if _, dup := seen[p]; dup {
				t.Fatalf("duplicate pick %d", p)
			}
			if p <= prev {
				t.Fatalf("picks not sorted: %v", picks)
			}
			seen[p] = struct{}{}
			prev = p
		}
	}
}

func TestSampleRowITSTakesAllWhenFewer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	picks, _ := SampleRowITS([]float64{1, 2, 3}, 10, rng)
	if len(picks) != 3 || picks[0] != 0 || picks[2] != 2 {
		t.Fatalf("picks = %v, want all three", picks)
	}
}

func TestSampleRowITSSkipsZeroWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := []float64{0, 5, 0, 5, 0, 5, 0, 5}
	for trial := 0; trial < 100; trial++ {
		picks, _ := SampleRowITS(w, 3, rng)
		for _, p := range picks {
			if w[p] == 0 {
				t.Fatalf("sampled zero-weight index %d", p)
			}
		}
	}
}

func TestSampleRowITSEmptyAndZeroCases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if picks, _ := SampleRowITS(nil, 3, rng); picks != nil {
		t.Fatal("empty row should sample nothing")
	}
	if picks, _ := SampleRowITS([]float64{1, 2}, 0, rng); picks != nil {
		t.Fatal("s=0 should sample nothing")
	}
	if picks, _ := SampleRowITS([]float64{0, 0, 0, 0, 0}, 2, rng); len(picks) != 0 {
		t.Fatalf("all-zero weights sampled %v", picks)
	}
}

func TestSampleRowITSDistributionMatchesWeights(t *testing.T) {
	// With weights (1, 2, 7) and s=1, the empirical frequencies must
	// approach 0.1, 0.2, 0.7.
	rng := rand.New(rand.NewSource(5))
	w := []float64{1, 2, 7}
	counts := make([]int, 3)
	const trials = 20000
	for i := 0; i < trials; i++ {
		picks, _ := SampleRowITS(w, 1, rng)
		counts[picks[0]]++
	}
	wantFreq := []float64{0.1, 0.2, 0.7}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-wantFreq[i]) > 0.02 {
			t.Fatalf("index %d frequency %v, want ~%v", i, got, wantFreq[i])
		}
	}
}

func TestSampleRowITSSkewedWeightFallback(t *testing.T) {
	// One entry holds ~all mass: ITS redraws would collide endlessly,
	// so the exponential-key fallback must complete the sample.
	rng := rand.New(rand.NewSource(6))
	w := make([]float64, 50)
	for i := range w {
		w[i] = 1e-12
	}
	w[7] = 1e6
	picks, _ := SampleRowITS(w, 10, rng)
	if len(picks) != 10 {
		t.Fatalf("got %d picks, want 10", len(picks))
	}
	found := false
	for _, p := range picks {
		if p == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("dominant-mass index not sampled")
	}
}

func TestSampleRowITSWithoutReplacementFrequencies(t *testing.T) {
	// Sampling 2 of 3 without replacement with weights (1,1,2): the
	// heavy index must appear most often but not always.
	rng := rand.New(rand.NewSource(7))
	w := []float64{1, 1, 2}
	counts := make([]int, 3)
	const trials = 10000
	for i := 0; i < trials; i++ {
		picks, _ := SampleRowITS(w, 2, rng)
		for _, p := range picks {
			counts[p]++
		}
	}
	if counts[2] <= counts[0] || counts[2] <= counts[1] {
		t.Fatalf("heavy index underrepresented: %v", counts)
	}
	if counts[2] >= trials {
		t.Fatalf("heavy index always sampled: %v", counts)
	}
}

func TestRowSeedDeterministicAndSpread(t *testing.T) {
	if rowSeed(42, 7) != rowSeed(42, 7) {
		t.Fatal("rowSeed not deterministic")
	}
	seen := map[int64]struct{}{}
	for i := 0; i < 1000; i++ {
		seen[rowSeed(42, i)] = struct{}{}
	}
	if len(seen) != 1000 {
		t.Fatalf("rowSeed collisions: %d distinct of 1000", len(seen))
	}
}

func TestNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative weight")
		}
	}()
	SampleRowITS([]float64{1, -1}, 1, rand.New(rand.NewSource(8)))
}

func TestSampleRowITSOpsPositive(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, 10)
		for i := range w {
			w[i] = rng.Float64() + 0.1
		}
		_, ops := SampleRowITS(w, 3, rng)
		return ops > 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleRowITSReplacementCount(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	w := []float64{1, 1}
	picks, _ := SampleRowITSReplacement(w, 10, rng)
	if len(picks) != 10 {
		t.Fatalf("got %d picks, want 10 (with replacement exceeds nnz)", len(picks))
	}
	for _, p := range picks {
		if p < 0 || p > 1 {
			t.Fatalf("pick %d out of range", p)
		}
	}
}

func TestSampleRowITSReplacementDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	w := []float64{3, 1}
	counts := [2]int{}
	for i := 0; i < 4000; i++ {
		picks, _ := SampleRowITSReplacement(w, 1, rng)
		counts[picks[0]]++
	}
	frac := float64(counts[0]) / 4000
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("heavy index frequency %.3f, want ~0.75", frac)
	}
}

func TestSampleRowITSReplacementEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	if picks, _ := SampleRowITSReplacement(nil, 5, rng); picks != nil {
		t.Fatal("empty weights should return nil")
	}
	if picks, _ := SampleRowITSReplacement([]float64{0, 0}, 5, rng); len(picks) != 0 {
		t.Fatal("zero weights should return nothing")
	}
}
