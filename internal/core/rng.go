package core

// RowRNG is a reusable, allocation-free generator producing exactly
// the value stream of math/rand.New(rand.NewSource(seed)) — the
// Mitchell–Reeds additive lagged-Fibonacci source behind the paper's
// deterministic per-row sampling — but with O(draws) reseeding instead
// of O(rngLen) per seed.
//
// math/rand's Seed walks a 607-entry feedback register through ~1800
// sequential LCG steps even when the caller consumes a dozen variates,
// and rand.New allocates the 5KB register on every call; with one
// fresh RNG per sampled frontier row (NewRowRNG), source seeding was
// ~40% of end-to-end simulation CPU and the largest allocation site.
// RowRNG instead records the seed and materializes register entries
// lazily on first read: the LCG is x[n+1] = 48271·x[n] mod (2³¹−1),
// so entry i — a function of LCG steps 21+3i..23+3i — is reachable
// directly by jump-ahead through a precomputed power table
// (x[n] = 48271ⁿ·x[0] mod M, with Mersenne-prime reduction for the
// modular products). A generation stamp per entry makes Reseed O(1);
// a typical fanout-sized row touches ~2 entries per draw instead of
// seeding all 607.
//
// Stream equality with math/rand is pinned by TestRowRNGMatchesMathRand
// across seeds, reseeds and draw counts that cross the register's
// wrap-around boundaries.
type RowRNG struct {
	x0    int32  // normalized LCG seed state
	gen   uint32 // current reseed generation
	tap   int
	feed  int
	vec   [rngLen]int64  // feedback register (entries valid iff stamped)
	stamp [rngLen]uint32 // generation that materialized each entry
}

const (
	rngLen   = 607
	rngTap   = 273
	rngMask  = 1<<63 - 1
	int32max = 1<<31 - 1

	lcgA = 48271
)

// lcgPow[n] is 48271ⁿ mod (2³¹−1) for every LCG step index the seeding
// schedule can need (20 warm-up steps plus 3 per register entry, and
// one extra so index 23+3·606 stays in range).
var lcgPow = func() [3*rngLen + 21]uint64 {
	var p [3*rngLen + 21]uint64
	p[0] = 1
	for i := 1; i < len(p); i++ {
		p[i] = mulmod31(p[i-1], lcgA)
	}
	return p
}()

// mulmod31 returns a·b mod (2³¹−1) for a, b < 2³¹ using the
// Mersenne-prime folding reduction (no division).
func mulmod31(a, b uint64) uint64 {
	v := a * b
	v = (v & int32max) + (v >> 31)
	if v >= int32max {
		v -= int32max
	}
	return v
}

// Reseed re-initializes the generator to the exact state of
// math/rand.NewSource(seed) in O(1): no register entry is computed
// until a draw reads it.
func (r *RowRNG) Reseed(seed int64) {
	seed = seed % int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	r.x0 = int32(seed)
	r.tap = 0
	r.feed = rngLen - rngTap
	r.gen++
	if r.gen == 0 { // generation counter wrapped: invalidate explicitly
		r.stamp = [rngLen]uint32{}
		r.gen = 1
	}
}

// entry returns register entry i, materializing the pristine seeded
// value by LCG jump-ahead on first access in this generation.
func (r *RowRNG) entry(i int) int64 {
	if r.stamp[i] == r.gen {
		return r.vec[i]
	}
	// Seeding computes entry i from LCG steps 21+3i, 22+3i, 23+3i
	// (20 warm-up steps precede entry 0, and each iteration advances
	// once before producing).
	x := mulmod31(lcgPow[21+3*i], uint64(r.x0))
	u := int64(x) << 40
	x = mulmod31(x, lcgA)
	u ^= int64(x) << 20
	x = mulmod31(x, lcgA)
	u ^= int64(x)
	u ^= rngCooked[i]
	r.vec[i] = u
	r.stamp[i] = r.gen
	return u
}

// Uint64 returns the next raw feedback-register output, identical to
// math/rand's rngSource.Uint64.
func (r *RowRNG) Uint64() uint64 {
	r.tap--
	if r.tap < 0 {
		r.tap += rngLen
	}
	r.feed--
	if r.feed < 0 {
		r.feed += rngLen
	}
	x := r.entry(r.feed) + r.entry(r.tap)
	r.vec[r.feed] = x
	r.stamp[r.feed] = r.gen
	return uint64(x)
}

// Int63 returns a non-negative 63-bit integer, identical to
// math/rand.Rand.Int63 over the same source.
func (r *RowRNG) Int63() int64 { return int64(r.Uint64() & rngMask) }

// Float64 returns a uniform variate in [0, 1), reproducing
// math/rand.Rand.Float64's stream including its redraw-on-1.0 quirk.
func (r *RowRNG) Float64() float64 {
	for {
		f := float64(r.Int63()) / (1 << 63)
		if f != 1 {
			return f
		}
	}
}
