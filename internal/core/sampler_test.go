package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/sparse"
)

// paperGraph returns the Figure 1 example graph (undirected, 6
// vertices).
func paperGraph() *sparse.CSR {
	return sparse.FromDense(6, 6, []float64{
		0, 1, 0, 0, 0, 0,
		1, 0, 1, 0, 1, 0,
		0, 1, 0, 1, 1, 0,
		0, 0, 1, 0, 1, 1,
		0, 1, 1, 1, 0, 1,
		0, 0, 0, 1, 1, 0,
	})
}

func testGraph(n int, deg float64, seed int64) *sparse.CSR {
	g := graph.ErdosRenyi(n, deg, seed)
	return graph.EnsureMinOutDegree(g, 3, seed+1).Adj
}

func TestSAGEBuildQMatchesPaperExample(t *testing.T) {
	// Batch {1, 5}: Q_L is 2x6 with ones at (0,1) and (1,5) — the
	// matrix shown in Figure 2a.
	q := SAGE{}.BuildQ(NewFrontier([][]int{{1, 5}}), 6)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Rows != 2 || q.Cols != 6 || q.NNZ() != 2 {
		t.Fatalf("Q shape wrong: %v", q)
	}
	if q.At(0, 1) != 1 || q.At(1, 5) != 1 {
		t.Fatal("Q entries wrong")
	}
}

func TestSAGEProbabilitiesMatchPaperExample(t *testing.T) {
	// P = Q·A row-normalized: row for vertex 1 has 1/3 at {0,2,4};
	// row for vertex 5 has 1/2 at {3,4} (Figure 2a NORM output).
	a := paperGraph()
	q := SAGE{}.BuildQ(NewFrontier([][]int{{1, 5}}), 6)
	p, _ := sparse.SpGEMM(q, a)
	SAGE{}.Norm(p)
	want := map[[2]int]float64{
		{0, 0}: 1.0 / 3, {0, 2}: 1.0 / 3, {0, 4}: 1.0 / 3,
		{1, 3}: 0.5, {1, 4}: 0.5,
	}
	for ij, v := range want {
		if math.Abs(p.At(ij[0], ij[1])-v) > 1e-12 {
			t.Fatalf("P(%d,%d) = %v, want %v", ij[0], ij[1], p.At(ij[0], ij[1]), v)
		}
	}
	if p.NNZ() != 5 {
		t.Fatalf("P has %d nonzeros, want 5", p.NNZ())
	}
}

func TestLADIESBuildQAndProbabilities(t *testing.T) {
	// Batch {1, 5}: one row with ones in columns 1 and 5. P = QA gives
	// counts e = (1, 0, 1, 1, 2, 0); LADIES squares and normalizes to
	// (1/7, 0, 1/7, 1/7, 4/7, 0) — the probability array of Section
	// 2.2.2.
	a := paperGraph()
	q := LADIES{}.BuildQ(NewFrontier([][]int{{1, 5}}), 6)
	if q.Rows != 1 || q.NNZ() != 2 {
		t.Fatalf("Q shape wrong: %v", q)
	}
	p, _ := sparse.SpGEMM(q, a)
	LADIES{}.Norm(p)
	want := []float64{1.0 / 7, 0, 1.0 / 7, 1.0 / 7, 4.0 / 7, 0}
	for j, v := range want {
		if math.Abs(p.At(0, j)-v) > 1e-12 {
			t.Fatalf("p_%d = %v, want %v", j, p.At(0, j), v)
		}
	}
}

func TestSAGEStepStructure(t *testing.T) {
	a := testGraph(60, 8, 1)
	batches := [][]int{{0, 1, 2, 3}, {10, 11, 12, 13}}
	bs := SampleBulk(SAGE{}, a, batches, []int{3, 2}, 42)
	if err := bs.Validate(a.Rows); err != nil {
		t.Fatal(err)
	}
	if len(bs.Layers) != 2 {
		t.Fatalf("layers = %d", len(bs.Layers))
	}
	l0 := bs.Layers[0]
	if l0.Rows.Len() != 8 {
		t.Fatalf("first layer rows = %d, want 8", l0.Rows.Len())
	}
	// Every frontier vertex with >= 3 neighbors samples exactly 3.
	for i, v := range l0.Rows.Vertices {
		deg := a.RowNNZ(v)
		want := 3
		if deg < 3 {
			want = deg
		}
		if l0.Adj.RowNNZ(i) != want {
			t.Fatalf("row %d (vertex %d, deg %d) sampled %d, want %d",
				i, v, deg, l0.Adj.RowNNZ(i), want)
		}
	}
	// Second layer samples for the grown frontier (self ++ sampled).
	l1 := bs.Layers[1]
	if l1.Rows.Len() != l0.Cols.Len() {
		t.Fatal("second layer rows must be first layer cols")
	}
}

func TestSAGESampledEdgesExistInGraph(t *testing.T) {
	a := testGraph(80, 6, 2)
	bs := SampleBulk(SAGE{}, a, [][]int{{5, 6, 7}}, []int{4, 3}, 7)
	for _, ls := range bs.Layers {
		for i := 0; i < ls.Adj.Rows; i++ {
			u := ls.Rows.Vertices[i]
			cols, _ := ls.Adj.Row(i)
			for _, c := range cols {
				v := ls.Cols.Vertices[c]
				if a.At(u, v) == 0 {
					t.Fatalf("sampled edge (%d,%d) not in graph", u, v)
				}
			}
		}
	}
}

func TestSAGESamplesAreNeighborsWithoutReplacement(t *testing.T) {
	a := testGraph(50, 10, 3)
	bs := SampleBulk(SAGE{}, a, [][]int{{1, 2}}, []int{5}, 9)
	ls := bs.Layers[0]
	for i := 0; i < ls.Adj.Rows; i++ {
		cols, _ := ls.Adj.Row(i)
		seen := map[int]struct{}{}
		for _, c := range cols {
			v := ls.Cols.Vertices[c]
			if _, dup := seen[v]; dup {
				t.Fatalf("row %d sampled vertex %d twice", i, v)
			}
			seen[v] = struct{}{}
		}
	}
}

func TestSAGEDeterministicForSeed(t *testing.T) {
	a := testGraph(60, 12, 4)
	batches := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	b1 := SampleBulk(SAGE{}, a, batches, []int{2, 2}, 11)
	b2 := SampleBulk(SAGE{}, a, batches, []int{2, 2}, 11)
	sameFrontiers := func(x, y *BulkSample) bool {
		for l := range x.Layers {
			if !sparse.Equal(x.Layers[l].Adj, y.Layers[l].Adj, 0) {
				return false
			}
			xv, yv := x.Layers[l].Cols.Vertices, y.Layers[l].Cols.Vertices
			if len(xv) != len(yv) {
				return false
			}
			for i := range xv {
				if xv[i] != yv[i] {
					return false
				}
			}
		}
		return true
	}
	if !sameFrontiers(b1, b2) {
		t.Fatal("identical seeds produced different samples")
	}
	b3 := SampleBulk(SAGE{}, a, batches, []int{2, 2}, 12)
	if sameFrontiers(b1, b3) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestBulkEqualsPerBatchSAGE(t *testing.T) {
	// Equation 1: sampling k batches in bulk must produce exactly the
	// per-batch samples stacked, because ITS seeds derive from global
	// row ids... per-batch row ids differ, so instead verify the
	// *structural* equivalence: each bulk batch's sampled tree is a
	// valid sample of that batch alone (edges exist, counts match) and
	// batches do not leak vertices into each other.
	a := testGraph(70, 8, 5)
	batches := [][]int{{0, 1, 2}, {30, 31, 32}}
	bs := SampleBulk(SAGE{}, a, batches, []int{3, 2}, 21)
	for _, ls := range bs.Layers {
		for b := 0; b < 2; b++ {
			// Frontier rows of batch b only reference columns of batch b.
			for i := ls.Rows.BatchPtr[b]; i < ls.Rows.BatchPtr[b+1]; i++ {
				cols, _ := ls.Adj.Row(i)
				for _, c := range cols {
					if c < ls.Cols.BatchPtr[b] || c >= ls.Cols.BatchPtr[b+1] {
						t.Fatalf("batch %d row %d references column %d outside its block", b, i, c)
					}
				}
			}
		}
	}
}

func TestLADIESStepStructure(t *testing.T) {
	a := testGraph(100, 10, 6)
	batches := [][]int{{0, 1, 2, 3}, {50, 51, 52, 53}}
	bs := SampleBulk(LADIES{}, a, batches, []int{5, 5}, 31)
	if err := bs.Validate(a.Rows); err != nil {
		t.Fatal(err)
	}
	l0 := bs.Layers[0]
	// Each batch's col frontier is its 4 batch vertices plus at most 5
	// sampled vertices.
	for b := 0; b < 2; b++ {
		cb := l0.Cols.Batch(b)
		if len(cb) > 4+5 {
			t.Fatalf("batch %d frontier %d > 9", b, len(cb))
		}
		// Sampled part must be distinct.
		seen := map[int]struct{}{}
		for _, v := range cb[4:] {
			if _, dup := seen[v]; dup {
				t.Fatalf("batch %d sampled %d twice", b, v)
			}
			seen[v] = struct{}{}
		}
	}
}

func TestLADIESIncludesEveryEdgeBetweenLayerAndSample(t *testing.T) {
	// The defining property of LADIES (Section 2.2.2): the sample
	// includes EVERY edge between the current layer and the sampled
	// vertex set.
	a := testGraph(80, 12, 7)
	batches := [][]int{{0, 1, 2, 3, 4}}
	bs := SampleBulk(LADIES{}, a, batches, []int{6}, 13)
	ls := bs.Layers[0]
	cb := ls.Cols.Batch(0)
	sampled := cb[5:] // after the self prefix
	for i, u := range ls.Rows.Vertices {
		for j, v := range sampled {
			want := a.At(u, v)
			got := ls.Adj.At(i, 5+j)
			if want != got {
				t.Fatalf("edge (%d,%d): graph %v sample %v", u, v, want, got)
			}
		}
	}
}

func TestLADIESSampledFromAggregatedNeighborhood(t *testing.T) {
	a := testGraph(90, 8, 8)
	batches := [][]int{{10, 11, 12}}
	bs := SampleBulk(LADIES{}, a, batches, []int{5}, 17)
	ls := bs.Layers[0]
	nbrs := map[int]struct{}{}
	for _, u := range batches[0] {
		cols, _ := a.Row(u)
		for _, c := range cols {
			nbrs[c] = struct{}{}
		}
	}
	cb := ls.Cols.Batch(0)
	for _, v := range cb[3:] {
		if _, ok := nbrs[v]; !ok {
			t.Fatalf("sampled vertex %d outside aggregated neighborhood", v)
		}
	}
}

func TestFastGCNStepRunsAndWeightsByDegree(t *testing.T) {
	a := testGraph(100, 10, 9)
	bs := SampleBulk(FastGCN{}, a, [][]int{{0, 1, 2, 3}}, []int{5}, 19)
	if err := bs.Validate(a.Rows); err != nil {
		t.Fatal(err)
	}
	if len(bs.Layers[0].Cols.Batch(0)) < 4 {
		t.Fatal("FastGCN produced no frontier")
	}
}

func TestCostAccumulates(t *testing.T) {
	a := testGraph(60, 8, 10)
	bs := SampleBulk(SAGE{}, a, [][]int{{0, 1, 2}}, []int{3, 2}, 23)
	c := bs.Cost
	if c.ProbFlops <= 0 || c.SampleOps <= 0 || c.ExtractOps <= 0 || c.Kernels <= 0 {
		t.Fatalf("cost fields not populated: %+v", c)
	}
	var sum Cost
	sum.Add(c)
	sum.Add(c)
	if sum.Total() != 2*c.Total() {
		t.Fatal("Cost.Add arithmetic wrong")
	}
}

func TestInputFrontierIsDeepest(t *testing.T) {
	a := testGraph(60, 8, 11)
	bs := SampleBulk(SAGE{}, a, [][]int{{0, 1}}, []int{3, 2}, 29)
	if bs.InputFrontier() != bs.Layers[1].Cols {
		t.Fatal("InputFrontier should be the last layer's Cols")
	}
}

func TestFrontierAccessors(t *testing.T) {
	f := NewFrontier([][]int{{1, 2}, {3}})
	if f.K() != 2 || f.Len() != 3 {
		t.Fatalf("K=%d Len=%d", f.K(), f.Len())
	}
	if b := f.Batch(1); len(b) != 1 || b[0] != 3 {
		t.Fatalf("Batch(1) = %v", b)
	}
}

func TestSamplerNames(t *testing.T) {
	if (SAGE{}).Name() != "GraphSAGE" || (LADIES{}).Name() != "LADIES" || (FastGCN{}).Name() != "FastGCN" {
		t.Fatal("sampler names wrong")
	}
}

func TestLADIESReweightApproximatelyUnbiased(t *testing.T) {
	// With importance weights 1/(s·p_v), the reweighted row sum is an
	// (approximately, without replacement) unbiased estimator of the
	// exact row sum: averaging over many seeds must land near the true
	// neighbor count of each batch vertex.
	a := testGraph(120, 15, 71)
	batch := []int{3, 4, 5, 6}
	const s, reps = 6, 300

	exact := make([]float64, len(batch))
	for i, v := range batch {
		exact[i] = float64(a.RowNNZ(v))
	}

	est := make([]float64, len(batch))
	for rep := 0; rep < reps; rep++ {
		bs := SampleBulk(LADIES{Reweight: true}, a, [][]int{batch}, []int{s}, int64(rep)*7919)
		ls := bs.Layers[0]
		for i := range batch {
			cols, vals := ls.Adj.Row(i)
			_ = cols
			for _, v := range vals {
				est[i] += v
			}
		}
	}
	for i := range batch {
		avg := est[i] / reps
		if avg < exact[i]*0.7 || avg > exact[i]*1.3 {
			t.Fatalf("vertex %d: reweighted estimate %.2f vs exact %.0f", batch[i], avg, exact[i])
		}
	}
}

func TestLADIESUnweightedKeepsBinaryValues(t *testing.T) {
	a := testGraph(80, 10, 72)
	bs := SampleBulk(LADIES{}, a, [][]int{{1, 2, 3}}, []int{5}, 17)
	for _, v := range bs.Layers[0].Adj.Val {
		if v != 1 {
			t.Fatalf("unweighted LADIES produced value %v", v)
		}
	}
}
