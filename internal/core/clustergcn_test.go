package core

import (
	"testing"
)

func TestClusterGCNPartitionCoversAllVertices(t *testing.T) {
	a := testGraph(200, 8, 41)
	cg := NewClusterGCN(a, 8, 1)
	if len(cg.Clusters) != 8 {
		t.Fatalf("clusters = %d", len(cg.Clusters))
	}
	seen := make([]bool, 200)
	for ci, cluster := range cg.Clusters {
		for _, v := range cluster {
			if seen[v] {
				t.Fatalf("vertex %d in two clusters", v)
			}
			seen[v] = true
			if cg.Assign[v] != ci {
				t.Fatalf("assignment inconsistent for %d", v)
			}
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d unassigned", v)
		}
	}
}

func TestClusterGCNClustersBalanced(t *testing.T) {
	a := testGraph(256, 8, 42)
	cg := NewClusterGCN(a, 8, 2)
	for ci, cluster := range cg.Clusters {
		if len(cluster) == 0 {
			t.Fatalf("cluster %d empty", ci)
		}
		if len(cluster) > 2*256/8 {
			t.Fatalf("cluster %d oversized: %d", ci, len(cluster))
		}
	}
}

func TestClusterGCNBatches(t *testing.T) {
	a := testGraph(120, 8, 43)
	cg := NewClusterGCN(a, 6, 3)
	batches := cg.Batches(3, 7)
	if len(batches) != 3 {
		t.Fatalf("batches = %d", len(batches))
	}
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	if total != 120 {
		t.Fatalf("batches cover %d of 120", total)
	}
}

func TestClusterGCNStepInducedSubgraph(t *testing.T) {
	a := testGraph(100, 10, 44)
	cg := NewClusterGCN(a, 4, 4)
	batches := cg.Batches(2, 9)
	bs := SampleBulk(cg, a, batches, []int{0, 0}, 11)
	if err := bs.Validate(a.Rows); err != nil {
		t.Fatal(err)
	}
	for _, ls := range bs.Layers {
		// Frontier never grows.
		if ls.Cols.Len() != ls.Rows.Len() {
			t.Fatal("graph-wise frontier grew")
		}
		// Every retained edge exists; every internal edge is retained.
		for b := 0; b < ls.Rows.K(); b++ {
			verts := ls.Rows.Batch(b)
			inBatch := map[int]int{}
			for j, v := range verts {
				inBatch[v] = j
			}
			for i, u := range verts {
				row := ls.Rows.BatchPtr[b] + i
				cols, _ := ls.Adj.Row(row)
				got := map[int]bool{}
				for _, c := range cols {
					got[ls.Cols.Vertices[c]] = true
				}
				acols, _ := a.Row(u)
				for _, v := range acols {
					if _, ok := inBatch[v]; ok && !got[v] {
						t.Fatalf("internal edge (%d,%d) dropped", u, v)
					}
					if _, ok := inBatch[v]; !ok && got[v] {
						t.Fatalf("external edge (%d,%d) kept", u, v)
					}
				}
			}
		}
	}
}

func TestClusterGCNLocality(t *testing.T) {
	// BFS-grown clusters on a community graph should keep more edges
	// internal than random assignment would (1/numClusters).
	a := testGraph(400, 10, 45)
	cg := NewClusterGCN(a, 8, 5)
	internal, total := 0, 0
	for u := 0; u < a.Rows; u++ {
		cols, _ := a.Row(u)
		for _, v := range cols {
			total++
			if cg.Assign[u] == cg.Assign[v] {
				internal++
			}
		}
	}
	frac := float64(internal) / float64(total)
	if frac <= 1.0/8 {
		t.Fatalf("BFS clustering no better than random: internal fraction %.3f", frac)
	}
}

func TestClusterGCNName(t *testing.T) {
	if (&ClusterGCN{}).Name() != "ClusterGCN" {
		t.Fatal("name wrong")
	}
}

func TestClusterGCNBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero clusters")
		}
	}()
	NewClusterGCN(testGraph(10, 3, 46), 0, 1)
}
