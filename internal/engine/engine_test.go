package engine

import (
	"errors"
	"testing"

	"repro/internal/cluster"
)

// chargeStage returns a stage that advances the rank by dur simulated
// seconds per item and appends the item index to got.
func chargeStage(name string, dur float64, queue int, got *[]int) Stage {
	return Stage{
		Name:  name,
		Queue: queue,
		Run: func(r *cluster.Rank, idx int, in any) (any, error) {
			r.AdvanceBy(dur)
			if got != nil {
				*got = append(*got, idx)
			}
			return idx, nil
		},
	}
}

// runOn executes p over n items on a single-rank cluster and returns
// the rank's final (max-stream) clock and phase stats.
func runOn(t *testing.T, p *Pipeline, n int) cluster.Stats {
	t.Helper()
	cl := cluster.New(1, cluster.Perlmutter())
	res, err := cl.Run(func(r *cluster.Rank) error {
		return p.Execute(r, n)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Ranks[0]
}

func TestSequentialMakespanIsSum(t *testing.T) {
	var order []int
	p := &Pipeline{Stages: []Stage{
		chargeStage("a", 2, 1, &order),
		chargeStage("b", 1, 1, nil),
	}}
	st := runOn(t, p, 4)
	if got, want := st.Clock, 12.0; got != want {
		t.Fatalf("sequential makespan = %v, want %v", got, want)
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("items out of order: %v", order)
		}
	}
}

func TestOverlapHidesProducerBehindConsumer(t *testing.T) {
	// Producer 2 s/item feeding consumer 1 s/item with a 1-slot queue:
	// the consumer finishes item i at 2(i+1)+1, so 4 items take 9 s
	// instead of the sequential 12 s.
	p := &Pipeline{
		Overlap: true,
		Stages: []Stage{
			chargeStage("a", 2, 1, nil),
			chargeStage("b", 1, 1, nil),
		},
	}
	st := runOn(t, p, 4)
	if got, want := st.Clock, 9.0; got != want {
		t.Fatalf("overlapped makespan = %v, want %v", got, want)
	}
	// The consumer's exposed waiting shows up in the stall bucket.
	if st.PhaseTotal[PhaseStall] <= 0 {
		t.Fatal("no stall time recorded despite slower producer")
	}
}

func TestOverlapBackpressuresFastProducer(t *testing.T) {
	// Producer 1 s/item feeding consumer 2 s/item with a 1-slot queue:
	// the producer may not start item i before the consumer dequeues
	// item i-1, so the consumer finishes item i at 3+2i — makespan 9 s
	// for 4 items, not 1+2·4 = 9... the bound holds exactly because
	// double buffering keeps the consumer saturated after its first
	// item.
	p := &Pipeline{
		Overlap: true,
		Stages: []Stage{
			chargeStage("a", 1, 1, nil),
			chargeStage("b", 2, 1, nil),
		},
	}
	st := runOn(t, p, 4)
	if got, want := st.Clock, 9.0; got != want {
		t.Fatalf("overlapped makespan = %v, want %v", got, want)
	}
}

func TestLargerQueueCannotSlowPipeline(t *testing.T) {
	mk := func(q int) float64 {
		p := &Pipeline{
			Overlap: true,
			Stages: []Stage{
				chargeStage("a", 1, q, nil),
				chargeStage("b", 2, q, nil),
			},
		}
		return runOn(t, p, 6).Clock
	}
	if q1, q3 := mk(1), mk(3); q3 > q1 {
		t.Fatalf("deeper queue slowed the pipeline: q=1 %v vs q=3 %v", q1, q3)
	}
}

func TestOverlapDeterministic(t *testing.T) {
	run := func() float64 {
		p := &Pipeline{
			Overlap: true,
			Stages: []Stage{
				chargeStage("a", 0.5, 2, nil),
				chargeStage("b", 0.25, 1, nil),
				chargeStage("c", 1, 1, nil),
			},
		}
		return runOn(t, p, 16).Clock
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("overlapped schedule not deterministic: %v vs %v", a, b)
	}
}

func TestThreeStageOverlapMakespan(t *testing.T) {
	// All stages equal at 1 s/item: a 3-deep pipeline over n items
	// fills in 2 s and then retires one item per second — n+2 total.
	p := &Pipeline{
		Overlap: true,
		Stages: []Stage{
			chargeStage("a", 1, 1, nil),
			chargeStage("b", 1, 1, nil),
			chargeStage("c", 1, 1, nil),
		},
	}
	st := runOn(t, p, 8)
	if got, want := st.Clock, 10.0; got != want {
		t.Fatalf("3-stage makespan = %v, want %v", got, want)
	}
}

func TestErrorPropagatesAndJoins(t *testing.T) {
	boom := errors.New("boom")
	for _, overlap := range []bool{false, true} {
		p := &Pipeline{
			Overlap: overlap,
			Stages: []Stage{
				chargeStage("a", 1, 1, nil),
				{Name: "b", Queue: 1, Run: func(r *cluster.Rank, idx int, in any) (any, error) {
					if idx == 2 {
						return nil, boom
					}
					return in, nil
				}},
				chargeStage("c", 1, 1, nil),
			},
		}
		cl := cluster.New(1, cluster.Perlmutter())
		_, err := cl.Run(func(r *cluster.Rank) error {
			return p.Execute(r, 5)
		})
		if !errors.Is(err, boom) {
			t.Fatalf("overlap=%v: error not propagated: %v", overlap, err)
		}
	}
}

func TestValuesFlowThroughStages(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		var sum int
		p := &Pipeline{
			Overlap: overlap,
			Stages: []Stage{
				{Name: "src", Queue: 2, Run: func(r *cluster.Rank, idx int, in any) (any, error) {
					return idx * 10, nil
				}},
				{Name: "inc", Queue: 2, Run: func(r *cluster.Rank, idx int, in any) (any, error) {
					return in.(int) + 1, nil
				}},
				{Name: "sink", Run: func(r *cluster.Rank, idx int, in any) (any, error) {
					sum += in.(int)
					return nil, nil
				}},
			},
		}
		cl := cluster.New(1, cluster.Perlmutter())
		if _, err := cl.Run(func(r *cluster.Rank) error { return p.Execute(r, 4) }); err != nil {
			t.Fatal(err)
		}
		if want := 0 + 1 + 10 + 1 + 20 + 1 + 30 + 1; sum != want {
			t.Fatalf("overlap=%v: sum = %d, want %d", overlap, sum, want)
		}
	}
}

func TestOverlapAcrossRanksWithCollectives(t *testing.T) {
	// Two ranks with unequal prefetch cost; the final stage all-reduces
	// on the main timeline while the producer stream prefetches. The
	// collective synchronizes the main clocks, so both ranks finish
	// together and the run is deterministic.
	run := func() (float64, float64) {
		cl := cluster.New(2, cluster.Perlmutter())
		world := cl.World()
		res, err := cl.Run(func(r *cluster.Rank) error {
			p := &Pipeline{
				Overlap: true,
				Stages: []Stage{
					{Name: "prefetch", Queue: 1, Run: func(rs *cluster.Rank, idx int, in any) (any, error) {
						rs.AdvanceBy(float64(rs.ID + 1)) // rank 1 samples slower
						return idx, nil
					}},
					{Name: "train", Run: func(rm *cluster.Rank, idx int, in any) (any, error) {
						rm.AdvanceBy(0.5)
						cluster.AllReduceSum(world, rm, []float64{1})
						return nil, nil
					}},
				},
			}
			return p.Execute(r, 3)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Ranks[0].Clock, res.Ranks[1].Clock
	}
	a0, a1 := run()
	b0, b1 := run()
	if a0 != b0 || a1 != b1 {
		t.Fatalf("cross-rank overlap not deterministic: (%v,%v) vs (%v,%v)", a0, a1, b0, b1)
	}
	if a0 != a1 {
		t.Fatalf("final collective should synchronize ranks: %v vs %v", a0, a1)
	}
}

func TestCollectiveBearingPrefetchStage(t *testing.T) {
	// A producer stage that itself drives collectives (like the 1.5D
	// partitioned sampler) runs on its own stream with its own
	// communicator clone, concurrently with the final stage's
	// collectives on the base communicator. Values stay correct, the
	// simulated makespan is deterministic, and overlap beats the
	// sequential schedule.
	run := func(overlap bool) (float64, float64) {
		cl := cluster.New(2, cluster.Perlmutter())
		world := cl.World()
		var sum float64
		res, err := cl.Run(func(r *cluster.Rank) error {
			p := &Pipeline{
				Overlap: overlap,
				Stages: []Stage{
					{
						Name:  "sample",
						Queue: 1,
						Comms: []*cluster.Comm{world},
						Run: func(rs *cluster.Rank, idx int, in any) (any, error) {
							rs.AdvanceBy(1)
							got := cluster.AllReduceSum(world.ForStream(rs), rs, []float64{float64(idx)})
							return got[0], nil
						},
					},
					{
						Name:  "train",
						Comms: []*cluster.Comm{world},
						Run: func(rm *cluster.Rank, idx int, in any) (any, error) {
							rm.AdvanceBy(0.5)
							got := cluster.AllReduceSum(world.ForStream(rm), rm, []float64{in.(float64)})
							if rm.ID == 0 {
								sum += got[0]
							}
							return nil, nil
						},
					},
				},
			}
			return p.Execute(r, 4)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime, sum
	}
	seqT, seqSum := run(false)
	ovT, ovSum := run(true)
	// Each item idx contributes 2*(2*idx): reduced across 2 ranks in
	// the sample stage, then again in the train stage.
	if want := 4.0 * (0 + 1 + 2 + 3); seqSum != want || ovSum != want {
		t.Fatalf("collective values corrupted: seq %v, overlap %v, want %v", seqSum, ovSum, want)
	}
	if ovT >= seqT {
		t.Fatalf("overlapped makespan %v not below sequential %v", ovT, seqT)
	}
	ovT2, _ := run(true)
	if ovT != ovT2 {
		t.Fatalf("overlapped collective schedule nondeterministic: %v vs %v", ovT, ovT2)
	}
}

func TestDuplicateStageNamesRejected(t *testing.T) {
	p := &Pipeline{
		Overlap: true,
		Stages: []Stage{
			chargeStage("same", 1, 1, nil),
			chargeStage("same", 1, 1, nil),
			chargeStage("sink", 1, 1, nil),
		},
	}
	cl := cluster.New(1, cluster.Perlmutter())
	_, err := cl.Run(func(r *cluster.Rank) error { return p.Execute(r, 2) })
	if err == nil {
		t.Fatal("duplicate stage names must be rejected in overlapped mode")
	}
}

func TestEmptyAndSingleStage(t *testing.T) {
	p := &Pipeline{}
	cl := cluster.New(1, cluster.Perlmutter())
	if _, err := cl.Run(func(r *cluster.Rank) error { return p.Execute(r, 1) }); err == nil {
		t.Fatal("expected error for pipeline with no stages")
	}
	p2 := &Pipeline{Overlap: true, Stages: []Stage{chargeStage("only", 1, 1, nil)}}
	st := runOn(t, p2, 3)
	if st.Clock != 3 {
		t.Fatalf("single-stage pipeline clock = %v, want 3", st.Clock)
	}
	p3 := &Pipeline{Overlap: true, Stages: []Stage{chargeStage("a", 1, 1, nil), chargeStage("b", 1, 1, nil)}}
	if err := func() error {
		cl := cluster.New(1, cluster.Perlmutter())
		_, err := cl.Run(func(r *cluster.Rank) error { return p3.Execute(r, 0) })
		return err
	}(); err != nil {
		t.Fatalf("zero items should be a no-op: %v", err)
	}
}
