// Package engine is a staged-execution engine for the simulated
// training pipelines: a chain of named stages connected by bounded
// queues, through which a fixed number of items flow in order.
//
// The engine has two execution modes sharing one stage decomposition:
//
//   - Sequential (Overlap off): every item runs through all stages
//     inline on the caller's rank, in item order — byte-for-byte the
//     classic bulk-synchronous loop (sample; fetch; train; sample; ...).
//   - Overlapped (Overlap on): every stage but the last runs on its
//     own forked rank stream (cluster.Rank.Stream) in its own
//     goroutine, connected by bounded channels, so stage s prefetches
//     item i+1 while stage s+1 works on item i. The last stage runs on
//     the caller's main timeline, so the rank's final clock is the
//     pipeline makespan.
//
// Simulated time stays honest under concurrency: each stage's charges
// accrue to its own stream clock; an item's completion time rides
// along with the item, and a consumer that outruns its producer stalls
// (WaitUntil, charged to the PhaseStall bucket) until the item is
// ready in simulated time. Bounded queues exert the same backpressure
// on the clocks that they exert on the goroutines: a producer may not
// start item i before the consumer has dequeued item i-q (q = queue
// capacity), which is what makes a capacity-1 queue model classic
// double buffering. Epoch time is therefore the max over concurrent
// streams, never the sum of phases.
//
// Stage Run functions must be safe to run concurrently with the other
// stages' Run functions: a stage owns its mutable state exclusively.
// Stages may drive collectives: a stage declares the communicators it
// drives (Stage.Comms), and its body issues them through the per-stream
// clone (cluster.Comm.ForStream) so that in overlapped mode each
// collective-bearing stage drives its own communicator clone — the
// same-named stage streams across ranks meet on one clone, and no two
// streams of a rank ever share a rendezvous. Execute pre-creates the
// clone set and rejects duplicate stage names (two stages with one
// name would share a stream name and therefore a clone).
//
// Collectives compose with the credit protocol: a stage body blocked
// inside a collective holds no queue slots beyond the ones its items
// occupy — the input credit is released at dequeue time, before the
// body runs — and all ranks run the same stage decomposition with the
// same queue capacities, so a collective's peers can always drain
// their own queues far enough to arrive. Progress follows by induction
// on (stage, item) order; the simulated completion time of a
// collective is the max over the member streams' entry clocks plus the
// modeled cost, which is exactly the backpressure-adjusted time.
package engine

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
)

// PhaseStall is the phase bucket synchronization stalls accrue to:
// time a stage spent waiting for an upstream item that was not yet
// ready in simulated time, or for a downstream queue slot to free.
// Exposed (un-hidden) prefetch latency shows up here.
const PhaseStall = "stall"

// Stage is one step of a staged-execution Pipeline.
type Stage struct {
	// Name identifies the stage in diagnostics.
	Name string
	// Queue is the stage's output queue capacity in items (overlapped
	// mode only; values < 1 are treated as 1). A capacity of one full
	// handoff unit gives double buffering: the stage computes item
	// i+q while the consumer drains item i.
	Queue int
	// Run processes item idx, charging its simulated time to r (the
	// stage's stream in overlapped mode, the caller's rank in
	// sequential mode). in is the previous stage's output (nil for
	// the first stage).
	Run func(r *cluster.Rank, idx int, in any) (any, error)
	// Comms declares the communicators whose collectives Run drives.
	// The body must issue them through comm.ForStream(r) so each
	// stage's stream gets its own clone; Execute pre-creates the
	// clones (keyed by the stage name, which is the stream name) and
	// validates that stage names are unique, since a shared name would
	// alias two stages onto one clone and deadlock.
	Comms []*cluster.Comm
}

// Pipeline executes items through a chain of stages.
type Pipeline struct {
	Stages []Stage
	// Overlap selects the overlapped (software-pipelined) mode.
	Overlap bool
}

// token carries one item between stages along with the simulated time
// its producer finished it.
type token struct {
	val  any
	done float64
	err  error
}

// Execute runs items 0..n-1 through the stages on rank r and returns
// the first stage error. In overlapped mode all forked streams are
// joined before Execute returns.
func (p *Pipeline) Execute(r *cluster.Rank, n int) error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("engine: pipeline has no stages")
	}
	if n <= 0 {
		return nil
	}
	if !p.Overlap || len(p.Stages) == 1 {
		return p.executeSequential(r, n)
	}
	return p.executeOverlapped(r, n)
}

// executeSequential runs every stage of every item inline on r, in
// item order — the bulk-synchronous schedule.
func (p *Pipeline) executeSequential(r *cluster.Rank, n int) error {
	for i := 0; i < n; i++ {
		var v any
		var err error
		for _, st := range p.Stages {
			v, err = runItem(st, r, i, v)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// runItem runs one stage body on one item, converting a recoverable
// fault-class panic — the rank's own injected fail-stop from the
// charge path, or a poisoned-collective abort after a peer died — into
// the stage's error. This is what keeps the overlapped schedule's
// queue protocol in lockstep through a failure: the error rides the
// tokens downstream, every queue drains, and the forked streams join,
// so Execute returns the failure cleanly on both backends instead of
// leaking parked stream tasks (which the DES scheduler would diagnose
// as a deadlock). Bug-class panics still crash.
func runItem(st Stage, r *cluster.Rank, i int, in any) (v any, err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if e, ok := p.(error); ok && errors.Is(e, cluster.ErrRankFailed) {
			err = e
			return
		}
		panic(p)
	}()
	return st.Run(r, i, in)
}

// waitUntil advances r's clock to t, converting a fault-class panic —
// the stream crossing its rank's injected fail-stop time during the
// stall — into an error, for the same lockstep reason as runItem: a
// stall is the other place runStage advances a clock.
func waitUntil(r *cluster.Rank, t float64) (err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if e, ok := p.(error); ok && errors.Is(e, cluster.ErrRankFailed) {
			err = e
			return
		}
		panic(p)
	}()
	r.WaitUntil(t)
	return nil
}

// executeOverlapped forks one stream per producer stage and runs the
// final stage on the caller's timeline. Items and completion times
// flow downstream through bounded queues; queue-slot credits (each
// carrying the consumer's simulated dequeue time) flow back upstream,
// so both the concurrent streams and the simulated clocks feel the
// bounded queues. The queues and forks are the cluster's
// backend-neutral primitives, so the same code runs on goroutines or
// as discrete-event tasks.
func (p *Pipeline) executeOverlapped(r *cluster.Rank, n int) error {
	s := len(p.Stages)
	names := make(map[string]int, s)
	for i, st := range p.Stages {
		if j, dup := names[st.Name]; dup {
			return fmt.Errorf("engine: stages %d and %d share the name %q; overlapped stages need unique names (one stream and communicator clone set each)", j, i, st.Name)
		}
		names[st.Name] = i
		// Pre-create the stage's communicator clones so every rank
		// resolves the same clone set before any collective is issued.
		// The final stage runs on the main timeline and keeps the base
		// communicators (Dup of the empty stream name is the base).
		if i < s-1 {
			for _, comm := range st.Comms {
				comm.Dup(st.Name)
			}
		}
	}
	items := make([]*cluster.Queue, s-1)
	credits := make([]*cluster.Queue, s-1)
	for i, st := range p.Stages[:s-1] {
		q := st.Queue
		if q < 1 {
			q = 1
		}
		items[i] = r.NewQueue(q)
		credits[i] = r.NewQueue(q)
		for j := 0; j < q; j++ {
			credits[i].Prefill(0.0) // queue starts empty: q free slots at t=0
		}
	}
	forks := make([]*cluster.Forked, s-1)
	for i := 0; i < s-1; i++ {
		var in, inCred *cluster.Queue
		if i > 0 {
			in, inCred = items[i-1], credits[i-1]
		}
		i, in, inCred := i, in, inCred
		forks[i] = r.ForkStream(p.Stages[i].Name, func(stream *cluster.Rank) {
			p.runStage(stream, i, n, in, inCred, items[i], credits[i])
		})
	}
	err := p.runStage(r, s-1, n, items[s-2], credits[s-2], nil, nil)
	for _, f := range forks {
		f.Join(r)
	}
	return err
}

// runStage drives one stage over all n items. To stay deadlock-free
// it keeps the queue protocol in lockstep even after an error: every
// item is still received, credited and forwarded, with Run skipped and
// the error riding the tokens to the final stage.
func (p *Pipeline) runStage(r *cluster.Rank, s, n int,
	in, inCred, out, outCred *cluster.Queue) error {
	var failed error
	for i := 0; i < n; i++ {
		var val any
		if in != nil {
			tok := in.Recv(r).(token)
			if tok.err != nil && failed == nil {
				failed = tok.err
			}
			val = tok.val
			// The item lands in the queue at tok.done; a consumer
			// that arrives earlier stalls until it is ready.
			if failed == nil && tok.done > r.Clock() {
				r.SetPhase(PhaseStall)
				if err := waitUntil(r, tok.done); err != nil {
					failed = err
				}
			}
			// Dequeuing frees the slot at our (post-stall) now.
			inCred.Send(r, r.Clock())
		}
		if outCred != nil {
			// A free output slot is a precondition for starting the
			// item (double buffering: nowhere to put it otherwise).
			t := outCred.Recv(r).(float64)
			if failed == nil && t > r.Clock() {
				r.SetPhase(PhaseStall)
				if err := waitUntil(r, t); err != nil {
					failed = err
				}
			}
		}
		if failed == nil {
			v, err := runItem(p.Stages[s], r, i, val)
			if err != nil {
				failed = err
			} else {
				val = v
			}
		}
		if out != nil {
			if failed != nil {
				out.Send(r, token{err: failed})
			} else {
				out.Send(r, token{val: val, done: r.Clock()})
			}
		}
	}
	return failed
}
