package sparse

import (
	"fmt"
	"runtime"
	"sync"
)

// SpMM computes C = A * B where A is sparse (m x k) and B is a dense
// row-major matrix (k x n given as a flat slice). The result is a dense
// row-major m x n slice. The returned flop count is the number of
// multiply-add pairs.
//
// This is the neighborhood-aggregation kernel of forward propagation
// (Section 6.2): sampled adjacency times sampled feature matrix.
func SpMM(a *CSR, b []float64, bCols int) (c []float64, flops int64) {
	if len(b) != a.Cols*bCols {
		panic(fmt.Sprintf("sparse: SpMM dense operand has %d values, want %d (%dx%d)",
			len(b), a.Cols*bCols, a.Cols, bCols))
	}
	out := make([]float64, a.Rows*bCols)
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	flopsPer := make([]int64, workers)
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var fl int64
			for i := lo; i < hi; i++ {
				dst := out[i*bCols : (i+1)*bCols]
				cols, vals := a.Row(i)
				for k := range cols {
					src := b[cols[k]*bCols : (cols[k]+1)*bCols]
					v := vals[k]
					for j := range dst {
						dst[j] += v * src[j]
					}
				}
				fl += int64(len(cols)) * int64(bCols)
			}
			flopsPer[w] = fl
		}(w, lo, hi)
	}
	wg.Wait()
	for _, f := range flopsPer {
		flops += f
	}
	return out, flops
}

// SpMMT computes C = A^T * B where A is sparse (m x k) and B is dense
// (m x n), producing a dense k x n result. Used in backpropagation to
// push gradients from a layer's output rows back to its input rows.
func SpMMT(a *CSR, b []float64, bCols int) (c []float64, flops int64) {
	if len(b) != a.Rows*bCols {
		panic(fmt.Sprintf("sparse: SpMMT dense operand has %d values, want %d (%dx%d)",
			len(b), a.Rows*bCols, a.Rows, bCols))
	}
	out := make([]float64, a.Cols*bCols)
	// Serial over rows of A (scatter into out); contention makes a naive
	// parallel version racy, and backward passes run on small sampled
	// matrices where this is not a bottleneck.
	for i := 0; i < a.Rows; i++ {
		src := b[i*bCols : (i+1)*bCols]
		cols, vals := a.Row(i)
		for k := range cols {
			dst := out[cols[k]*bCols : (cols[k]+1)*bCols]
			v := vals[k]
			for j := range dst {
				dst[j] += v * src[j]
			}
		}
		flops += int64(len(cols)) * int64(bCols)
	}
	return out, flops
}
