package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format sparse matrix used as a construction
// staging format; convert to CSR with ToCSR before computation.
type COO struct {
	Rows, Cols int
	R, C       []int
	V          []float64
}

// NewCOO returns an empty COO matrix with capacity hint nnz.
func NewCOO(rows, cols, nnz int) *COO {
	return &COO{
		Rows: rows,
		Cols: cols,
		R:    make([]int, 0, nnz),
		C:    make([]int, 0, nnz),
		V:    make([]float64, 0, nnz),
	}
}

// Add appends entry (i, j) = v. Duplicate coordinates are summed during
// ToCSR.
func (m *COO) Add(i, j int, v float64) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: COO entry (%d,%d) outside %dx%d", i, j, m.Rows, m.Cols))
	}
	m.R = append(m.R, i)
	m.C = append(m.C, j)
	m.V = append(m.V, v)
}

// NNZ returns the number of (possibly duplicate) stored entries.
func (m *COO) NNZ() int { return len(m.R) }

// ToCSR converts to CSR, sorting entries and summing duplicates.
func (m *COO) ToCSR() *CSR {
	n := len(m.R)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if m.R[ia] != m.R[ib] {
			return m.R[ia] < m.R[ib]
		}
		return m.C[ia] < m.C[ib]
	})

	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	out.ColIdx = make([]int, 0, n)
	out.Val = make([]float64, 0, n)
	prevR, prevC := -1, -1
	for _, idx := range order {
		r, c, v := m.R[idx], m.C[idx], m.V[idx]
		if r == prevR && c == prevC {
			out.Val[len(out.Val)-1] += v
			continue
		}
		out.ColIdx = append(out.ColIdx, c)
		out.Val = append(out.Val, v)
		out.RowPtr[r+1]++
		prevR, prevC = r, c
	}
	for i := 0; i < m.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	return out
}

// FromEntries builds a CSR matrix from explicit (row, col, val) triples,
// summing duplicates. It is a convenience for tests and examples.
func FromEntries(rows, cols int, entries [][3]float64) *CSR {
	coo := NewCOO(rows, cols, len(entries))
	for _, e := range entries {
		coo.Add(int(e[0]), int(e[1]), e[2])
	}
	return coo.ToCSR()
}

// FromDense builds a CSR matrix from a row-major dense slice, storing
// every nonzero entry. For tests and small examples.
func FromDense(rows, cols int, data []float64) *CSR {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("sparse: FromDense got %d values for %dx%d", len(data), rows, cols))
	}
	coo := NewCOO(rows, cols, len(data)/4)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := data[i*cols+j]; v != 0 {
				coo.Add(i, j, v)
			}
		}
	}
	return coo.ToCSR()
}
