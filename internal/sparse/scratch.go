package sparse

import "fmt"

// Scratch is a reusable workspace for the sparse kernels on a hot
// loop — the 1.5D SpGEMM stage loop rebuilds the same intermediate
// shapes every stage of every layer of every epoch, and the per-call
// allocations were the simulator's dominant heap cost at partitioned
// scale. A Scratch owns growable buffers that successive calls adopt
// instead of allocating; results returned by its methods alias the
// workspace and are valid only until the next call on the same
// Scratch (callers that need longer lifetimes copy, exactly where
// they always had to Clone).
//
// A Scratch serves one logical execution stream: it is not
// goroutine-safe, and in the simulator each rank's sampling stream
// owns its own instance.
//
//gnnvet:arena
type Scratch struct {
	// sparse accumulator for SpGEMM, sized to the widest right
	// operand seen.
	acc *spa

	// mark/out buffers for NonzeroCols.
	mark []bool
	need []int

	// column-block slicing arenas: one flat buffer carved into
	// per-block regions plus reusable headers.
	blockRowPtr []int
	blockCols   []int
	blockVals   []float64
	blockHdrs   []CSR
	blockPtrs   []*CSR
	blockLo     []int
	blockHi     []int
	blockFill   []int
}

// ensureInts returns buf resized to length n (contents unspecified),
// reallocating only on growth. Growth at least doubles the capacity:
// the stage-loop accumulators creep up a few entries per call, and an
// exact-fit policy would reallocate the whole buffer every time.
func ensureInts(buf []int, n int) []int {
	if cap(buf) < n {
		c := 2 * cap(buf)
		if c < n {
			c = n
		}
		return make([]int, n, c)
	}
	return buf[:n]
}

func ensureFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		c := 2 * cap(buf)
		if c < n {
			c = n
		}
		return make([]float64, n, c)
	}
	return buf[:n]
}

// ZeroInto reshapes out as an empty rows x cols matrix reusing its
// storage, the in-place form of Zero.
func ZeroInto(out *CSR, rows, cols int) *CSR {
	out.Rows, out.Cols = rows, cols
	out.RowPtr = ensureInts(out.RowPtr, rows+1)
	for i := range out.RowPtr {
		out.RowPtr[i] = 0
	}
	out.ColIdx = out.ColIdx[:0]
	out.Val = out.Val[:0]
	return out
}

// CopyCSRInto copies A into out, reusing out's storage — the arena
// form of Clone.
func CopyCSRInto(out, a *CSR) *CSR {
	out.Rows, out.Cols = a.Rows, a.Cols
	out.RowPtr = ensureInts(out.RowPtr, len(a.RowPtr))
	copy(out.RowPtr, a.RowPtr)
	nnz := a.NNZ()
	out.ColIdx = ensureInts(out.ColIdx, nnz)
	copy(out.ColIdx, a.ColIdx)
	out.Val = ensureFloats(out.Val, nnz)
	copy(out.Val, a.Val)
	return out
}

// AddCSRInto computes A + B into out, reusing out's storage — the
// in-place form of AddCSR (bit-identical merge: same entry order,
// same float additions). out must not alias a or b.
func AddCSRInto(out, a, b *CSR) *CSR {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: AddCSRInto shape mismatch %v vs %v", a, b))
	}
	if out == a || out == b {
		panic("sparse: AddCSRInto output aliases an input")
	}
	out.Rows, out.Cols = a.Rows, a.Cols
	out.RowPtr = ensureInts(out.RowPtr, a.Rows+1)
	out.RowPtr[0] = 0
	bound := a.NNZ() + b.NNZ()
	cols := ensureInts(out.ColIdx, bound)[:0]
	vals := ensureFloats(out.Val, bound)[:0]
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		x, y := 0, 0
		for x < len(ac) && y < len(bc) {
			switch {
			case ac[x] < bc[y]:
				cols = append(cols, ac[x])
				vals = append(vals, av[x])
				x++
			case ac[x] > bc[y]:
				cols = append(cols, bc[y])
				vals = append(vals, bv[y])
				y++
			default:
				cols = append(cols, ac[x])
				vals = append(vals, av[x]+bv[y])
				x++
				y++
			}
		}
		for ; x < len(ac); x++ {
			cols = append(cols, ac[x])
			vals = append(vals, av[x])
		}
		for ; y < len(bc); y++ {
			cols = append(cols, bc[y])
			vals = append(vals, bv[y])
		}
		out.RowPtr[i+1] = len(cols)
	}
	out.ColIdx, out.Val = cols, vals
	return out
}

// MergeCSRInto sums row-aligned matrices into out, reusing out's
// storage: per (row, column) the values add in source order — exactly
// the float sequence of left-folding the sources with AddCSR — and
// each row's columns come out sorted. One SPA pass per row replaces
// the chain of pairwise merges (and the chain's intermediate
// allocations) with a single output write.
func (s *Scratch) MergeCSRInto(out *CSR, srcs []*CSR) *CSR {
	if len(srcs) == 0 {
		panic("sparse: MergeCSRInto needs at least one source")
	}
	rows, colsN := srcs[0].Rows, srcs[0].Cols
	total := 0
	for _, src := range srcs {
		if src.Rows != rows || src.Cols != colsN {
			panic(fmt.Sprintf("sparse: MergeCSRInto shape mismatch %v vs %dx%d", src, rows, colsN))
		}
		total += src.NNZ()
	}
	if s.acc == nil || len(s.acc.val) < colsN {
		s.acc = newSPA(colsN)
	}
	out.Rows, out.Cols = rows, colsN
	out.RowPtr = ensureInts(out.RowPtr, rows+1)
	out.RowPtr[0] = 0
	cols := ensureInts(out.ColIdx, total)[:0]
	vals := ensureFloats(out.Val, total)[:0]
	acc := s.acc
	for i := 0; i < rows; i++ {
		for _, src := range srcs {
			cs, vs := src.Row(i)
			for k := range cs {
				acc.add(cs[k], vs[k])
			}
		}
		cols, vals = acc.drainInto(cols, vals)
		out.RowPtr[i+1] = len(cols)
	}
	out.ColIdx, out.Val = cols, vals
	return out
}

// SpGEMM computes C = A * B into the workspace, single-threaded with
// the workspace's sparse accumulator — the arena form of the package
// SpGEMM. Row results are bit-identical to the parallel version (rows
// are independent there; per row the accumulation order is the same),
// and the returned flop count follows the same bound. The result
// aliases the workspace.
func (s *Scratch) SpGEMM(out *CSR, a, b *CSR) (*CSR, int64) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: SpGEMM dimension mismatch %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	bound := 0
	for i := 0; i < a.Rows; i++ {
		acols, _ := a.Row(i)
		for _, arow := range acols {
			bound += b.RowNNZ(arow)
		}
	}
	if s.acc == nil || len(s.acc.val) < b.Cols {
		s.acc = newSPA(b.Cols)
	}
	out.Rows, out.Cols = a.Rows, b.Cols
	out.RowPtr = ensureInts(out.RowPtr, a.Rows+1)
	out.RowPtr[0] = 0
	cols := ensureInts(out.ColIdx, bound)[:0]
	vals := ensureFloats(out.Val, bound)[:0]
	acc := s.acc
	for i := 0; i < a.Rows; i++ {
		acols, avals := a.Row(i)
		for k := range acols {
			av := avals[k]
			bcols, bvals := b.Row(acols[k])
			for t := range bcols {
				acc.add(bcols[t], av*bvals[t])
			}
		}
		cols, vals = acc.drainInto(cols, vals)
		out.RowPtr[i+1] = len(cols)
	}
	out.ColIdx, out.Val = cols, vals
	return out, int64(bound)
}

// NonzeroCols returns the sorted distinct column indices of A via the
// workspace's mark array — the arena form of the package NonzeroCols.
// The result aliases the workspace.
func (s *Scratch) NonzeroCols(a *CSR) []int {
	if len(s.mark) < a.Cols {
		s.mark = make([]bool, a.Cols)
	}
	out := s.need[:0]
	for _, c := range a.ColIdx {
		if !s.mark[c] {
			s.mark[c] = true
			out = append(out, c)
		}
	}
	insertionSort(out)
	for _, c := range out {
		s.mark[c] = false
	}
	s.need = out
	return out
}

// SliceColBlocks slices A's columns into the contiguous blocks
// [lo[0],hi[0]) .. [lo[k-1],hi[k-1]) in one pass, with each block's
// column indices shifted down by its lo — block t is bit-identical to
// ColRange(a, lo[t], hi[t]). The blocks must be ascending and
// contiguous (hi[t] == lo[t+1]); columns outside [lo[0], hi[k-1]) are
// dropped. This replaces the per-stage ColRange scan of the 1.5D
// stage loop (O(stages·nnz)) with one O(nnz + stages) pass. The
// returned matrices alias the workspace.
func (s *Scratch) SliceColBlocks(a *CSR, lo, hi []int) []*CSR {
	k := len(lo)
	if k == 0 || len(hi) != k {
		panic("sparse: SliceColBlocks needs matching nonempty block bounds")
	}
	for t := 0; t < k; t++ {
		if lo[t] > hi[t] || (t > 0 && lo[t] != hi[t-1]) {
			panic("sparse: SliceColBlocks blocks must be ascending and contiguous")
		}
	}
	first := lo[0]

	// Counting pass: per-block entry totals.
	s.blockFill = ensureInts(s.blockFill, k)
	counts := s.blockFill
	for t := range counts {
		counts[t] = 0
	}
	for i := 0; i < a.Rows; i++ {
		cs, _ := a.Row(i)
		t := 0
		for _, c := range cs {
			if c < first {
				continue
			}
			for t < k && c >= hi[t] {
				t++
			}
			if t == k {
				break
			}
			counts[t]++
		}
	}

	// Carve one flat arena into per-block regions.
	s.blockRowPtr = ensureInts(s.blockRowPtr, k*(a.Rows+1))
	total := 0
	for _, n := range counts {
		total += n
	}
	s.blockCols = ensureInts(s.blockCols, total)
	s.blockVals = ensureFloats(s.blockVals, total)
	if cap(s.blockHdrs) < k {
		s.blockHdrs = make([]CSR, k)
		s.blockPtrs = make([]*CSR, k)
	}
	s.blockHdrs = s.blockHdrs[:k]
	s.blockPtrs = s.blockPtrs[:k]
	off := 0
	for t := 0; t < k; t++ {
		h := &s.blockHdrs[t]
		h.Rows, h.Cols = a.Rows, hi[t]-lo[t]
		h.RowPtr = s.blockRowPtr[t*(a.Rows+1) : (t+1)*(a.Rows+1)]
		h.RowPtr[0] = 0
		h.ColIdx = s.blockCols[off : off : off+counts[t]]
		h.Val = s.blockVals[off : off : off+counts[t]]
		off += counts[t]
		s.blockPtrs[t] = h
	}

	// Fill pass: column indices ascend within a row, so a single block
	// cursor walks each row once.
	for i := 0; i < a.Rows; i++ {
		cs, vs := a.Row(i)
		t := 0
		for e, c := range cs {
			if c < first {
				continue
			}
			for t < k && c >= hi[t] {
				t++
			}
			if t == k {
				break
			}
			h := &s.blockHdrs[t]
			h.ColIdx = append(h.ColIdx, c-lo[t])
			h.Val = append(h.Val, vs[e])
		}
		for t := 0; t < k; t++ {
			h := &s.blockHdrs[t]
			h.RowPtr[i+1] = len(h.ColIdx)
		}
	}
	return s.blockPtrs
}

// BlockBounds returns reusable lo/hi buffers of length k from the
// workspace for SliceColBlocks callers to fill.
func (s *Scratch) BlockBounds(k int) (lo, hi []int) {
	s.blockLo = ensureInts(s.blockLo, k)
	s.blockHi = ensureInts(s.blockHi, k)
	return s.blockLo, s.blockHi
}
