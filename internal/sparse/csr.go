// Package sparse implements the sparse matrix kernels that the
// matrix-based sampling formulation of Tripathy et al. (MLSys 2024) is
// built on: CSR/COO storage, Gustavson-style SpGEMM, sparse-times-dense
// SpMM, transposition, row/column extraction, vertical stacking and
// block-diagonal composition.
//
// All matrices are immutable once constructed unless a method is
// explicitly documented as mutating. Every operation that models work
// performed on an accelerator reports an operation count (see Flops
// fields and return values) so that the cluster cost model in
// internal/cluster can charge simulated device time.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a compressed sparse row matrix with float64 values.
//
// Invariants (checked by Validate):
//   - len(RowPtr) == Rows+1, RowPtr[0] == 0, RowPtr is non-decreasing,
//   - len(ColIdx) == len(Val) == RowPtr[Rows],
//   - column indices within each row are strictly increasing and in
//     [0, Cols).
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return m.RowPtr[m.Rows] }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Row returns views of the column indices and values of row i.
// The returned slices alias the matrix and must not be modified.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns the value at (i, j), or 0 if no entry is stored.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// Bytes returns the approximate in-memory size of the matrix payload,
// used by the communication cost model when a matrix is transferred.
func (m *CSR) Bytes() int {
	// 8 bytes per index (int64 on the wire) plus 8 per value plus the
	// row pointer array.
	return 8*len(m.RowPtr) + 16*m.NNZ()
}

// Validate checks the CSR invariants, returning a descriptive error on
// the first violation. It is O(nnz) and intended for tests and
// construction-time checks, not inner loops.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("sparse: negative dimension %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i+1] < m.RowPtr[i] {
			return fmt.Errorf("sparse: RowPtr decreases at row %d", i)
		}
	}
	nnz := m.RowPtr[m.Rows]
	if len(m.ColIdx) != nnz || len(m.Val) != nnz {
		return fmt.Errorf("sparse: index/value lengths (%d, %d) disagree with RowPtr nnz %d",
			len(m.ColIdx), len(m.Val), nnz)
	}
	for i := 0; i < m.Rows; i++ {
		prev := -1
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.ColIdx[k]
			if c < 0 || c >= m.Cols {
				return fmt.Errorf("sparse: row %d has column %d outside [0,%d)", i, c, m.Cols)
			}
			if c <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at %d", i, c)
			}
			prev = c
		}
	}
	for k, v := range m.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("sparse: non-finite value at entry %d", k)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// Zero returns an empty rows x cols matrix.
func Zero(rows, cols int) *CSR {
	return &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *CSR {
	m := &CSR{
		Rows:   n,
		Cols:   n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, n),
		Val:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
		m.Val[i] = 1
	}
	return m
}

// RowSums returns the sum of values in each row.
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k]
		}
		out[i] = s
	}
	return out
}

// ScaleRows multiplies every entry of row i by f[i], in place.
func (m *CSR) ScaleRows(f []float64) {
	if len(f) != m.Rows {
		panic(fmt.Sprintf("sparse: ScaleRows factor length %d, want %d", len(f), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			m.Val[k] *= f[i]
		}
	}
}

// NormalizeRows scales each nonempty row so its values sum to 1, in
// place. Rows whose sum is zero are left untouched.
func (m *CSR) NormalizeRows() {
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k]
		}
		if s == 0 {
			continue
		}
		inv := 1 / s
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			m.Val[k] *= inv
		}
	}
}

// Apply replaces every stored value v with f(v), in place.
func (m *CSR) Apply(f func(float64) float64) {
	for k := range m.Val {
		m.Val[k] = f(m.Val[k])
	}
}

// Transpose returns the transposed matrix using a counting pass.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int(nil), t.RowPtr[:m.Cols]...)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.ColIdx[k]
			pos := next[c]
			next[c]++
			t.ColIdx[pos] = i
			t.Val[pos] = m.Val[k]
		}
	}
	return t
}

// ToDense materializes the matrix as a row-major dense slice, for tests
// and small examples only.
func (m *CSR) ToDense() []float64 {
	out := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			out[i*m.Cols+m.ColIdx[k]] = m.Val[k]
		}
	}
	return out
}

// Equal reports whether two matrices have identical shape and entries
// within tol.
func Equal(a, b *CSR, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		if len(ac) != len(bc) {
			return false
		}
		for k := range ac {
			if ac[k] != bc[k] || math.Abs(av[k]-bv[k]) > tol {
				return false
			}
		}
	}
	return true
}

func (m *CSR) String() string {
	return fmt.Sprintf("CSR{%dx%d, nnz=%d}", m.Rows, m.Cols, m.NNZ())
}
