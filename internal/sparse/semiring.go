package sparse

import (
	"fmt"
	"math"
)

// Semiring generalizes SpGEMM to arbitrary (⊕, ⊗) algebras, the
// GraphBLAS abstraction the paper's linear-algebraic approach builds
// on (Buluç & Gilbert's Combinatorial BLAS, GraphBLAST). Entries equal
// to Zero (the ⊕ identity) are dropped from results.
type Semiring struct {
	Name string
	Add  func(a, b float64) float64
	Mul  func(a, b float64) float64
	Zero float64
}

// PlusTimes is the arithmetic semiring (standard SpGEMM): counting
// walks, neighborhood sizes, the P = Q·A of Algorithm 1.
var PlusTimes = Semiring{
	Name: "plus-times",
	Add:  func(a, b float64) float64 { return a + b },
	Mul:  func(a, b float64) float64 { return a * b },
	Zero: 0,
}

// OrAnd is the boolean semiring: reachability and neighborhood
// membership without multiplicities.
var OrAnd = Semiring{
	Name: "or-and",
	Add: func(a, b float64) float64 {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	},
	Mul: func(a, b float64) float64 {
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	},
	Zero: 0,
}

// MinPlus is the tropical semiring: single-step relaxation of shortest
// paths (A^k under min-plus gives exact k-hop distances).
var MinPlus = Semiring{
	Name: "min-plus",
	Add:  math.Min,
	Mul:  func(a, b float64) float64 { return a + b },
	Zero: math.Inf(1),
}

// MaxMin is the bottleneck (max-min) semiring: widest-path capacities.
var MaxMin = Semiring{
	Name: "max-min",
	Add:  math.Max,
	Mul:  math.Min,
	Zero: math.Inf(-1),
}

// SpGEMMSemiring computes C = A ⊗.⊕ B over the given semiring using
// the same Gustavson row-wise schedule as SpGEMM. The returned op
// count is the number of ⊗ applications. Slower than the specialized
// PlusTimes kernel (function-pointer dispatch); use SpGEMM for the
// arithmetic case on hot paths.
func SpGEMMSemiring(a, b *CSR, s Semiring) (c *CSR, ops int64) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: SpGEMMSemiring dims %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1)}
	val := make([]float64, b.Cols)
	present := make([]bool, b.Cols)
	var idx []int
	for i := 0; i < a.Rows; i++ {
		idx = idx[:0]
		acols, avals := a.Row(i)
		for k := range acols {
			av := avals[k]
			bcols, bvals := b.Row(acols[k])
			for t := range bcols {
				j := bcols[t]
				prod := s.Mul(av, bvals[t])
				if !present[j] {
					present[j] = true
					val[j] = s.Zero
					idx = append(idx, j)
				}
				val[j] = s.Add(val[j], prod)
			}
			ops += int64(len(bcols))
		}
		insertionSort(idx)
		for _, j := range idx {
			if val[j] != s.Zero {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, val[j])
			}
			present[j] = false
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out, ops
}

// SpGEMMMasked computes C = M ⊙ (A ⊗.⊕ B): only entries present in
// the mask M's pattern are computed and stored (GraphBLAS masked
// multiplication). The classic use is triangle counting,
// nnz(A ⊙ (A·A))/6 on undirected graphs; masking also bounds the
// accumulator to the mask row, which is how hypersparse outputs stay
// cheap.
func SpGEMMMasked(a, b, mask *CSR, s Semiring) (c *CSR, ops int64) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: SpGEMMMasked dims %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if mask.Rows != a.Rows || mask.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: mask %dx%d for %dx%d product",
			mask.Rows, mask.Cols, a.Rows, b.Cols))
	}
	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1)}
	val := make([]float64, b.Cols)
	inMask := make([]bool, b.Cols)
	touched := make([]bool, b.Cols)
	for i := 0; i < a.Rows; i++ {
		mcols, _ := mask.Row(i)
		for _, j := range mcols {
			inMask[j] = true
			val[j] = s.Zero
		}
		acols, avals := a.Row(i)
		for k := range acols {
			av := avals[k]
			bcols, bvals := b.Row(acols[k])
			for t := range bcols {
				j := bcols[t]
				if !inMask[j] {
					continue
				}
				val[j] = s.Add(val[j], s.Mul(av, bvals[t]))
				touched[j] = true
				ops++
			}
		}
		for _, j := range mcols {
			if touched[j] && val[j] != s.Zero {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, val[j])
			}
			inMask[j] = false
			touched[j] = false
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out, ops
}

// SpMVSemiring computes y = A ⊗.⊕ x over the semiring for a dense
// vector x (entries equal to Zero are treated as absent). Useful for
// frontier-style traversals (BFS under OrAnd, SSSP relaxation under
// MinPlus).
func SpMVSemiring(a *CSR, x []float64, s Semiring) []float64 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("sparse: SpMVSemiring vector length %d, want %d", len(x), a.Cols))
	}
	y := make([]float64, a.Rows)
	for i := range y {
		y[i] = s.Zero
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if x[c] == s.Zero {
				continue
			}
			y[i] = s.Add(y[i], s.Mul(vals[k], x[c]))
		}
	}
	return y
}
