package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestSemiringPlusTimesMatchesSpGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		a := randomCSR(rng, 1+rng.Intn(12), 1+rng.Intn(12), 0.3)
		b := randomCSR(rng, a.Cols, 1+rng.Intn(12), 0.3)
		want, _ := SpGEMM(a, b)
		got, _ := SpGEMMSemiring(a, b, PlusTimes)
		// The semiring version drops explicit zeros that the arithmetic
		// kernel may keep (cancellation); compare dense forms.
		wd, gd := want.ToDense(), got.ToDense()
		for i := range wd {
			if math.Abs(wd[i]-gd[i]) > 1e-9 {
				t.Fatalf("trial %d: plus-times disagrees at %d", trial, i)
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSemiringOrAndReachability(t *testing.T) {
	// A path graph 0->1->2->3: A^2 under or-and marks 2-hop pairs.
	a := FromEntries(4, 4, [][3]float64{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}})
	a2, _ := SpGEMMSemiring(a, a, OrAnd)
	if a2.At(0, 2) != 1 || a2.At(1, 3) != 1 {
		t.Fatalf("2-hop reachability missing: %v", a2.ToDense())
	}
	if a2.NNZ() != 2 {
		t.Fatalf("spurious reachability: %v", a2.ToDense())
	}
}

func TestSemiringMinPlusShortestPaths(t *testing.T) {
	// Weighted triangle: 0->1 (5), 1->2 (3), 0->2 (10).
	// Min-plus A^2 must find the 2-hop path 0->2 of length 8.
	a := FromEntries(3, 3, [][3]float64{{0, 1, 5}, {1, 2, 3}, {0, 2, 10}})
	a2, _ := SpGEMMSemiring(a, a, MinPlus)
	if a2.At(0, 2) != 8 {
		t.Fatalf("min-plus 0->2 = %v, want 8", a2.At(0, 2))
	}
}

func TestSemiringMaxMinBottleneck(t *testing.T) {
	// Capacities: 0->1 (4), 1->2 (7). Widest 2-hop path 0->2 = min(4,7) = 4.
	a := FromEntries(3, 3, [][3]float64{{0, 1, 4}, {1, 2, 7}})
	a2, _ := SpGEMMSemiring(a, a, MaxMin)
	if a2.At(0, 2) != 4 {
		t.Fatalf("max-min 0->2 = %v, want 4", a2.At(0, 2))
	}
}

func TestSpMVSemiringBFSFrontier(t *testing.T) {
	// One or-and SpMV from a source vector gives the in-neighbors of
	// the frontier (A rows list aggregation sources).
	a := exampleGraph()
	x := make([]float64, 6)
	x[1] = 1 // frontier = {1}
	y := SpMVSemiring(a, x, OrAnd)
	// Rows with an edge into column 1: vertices 0, 2, 4.
	for i, v := range y {
		wantSet := i == 0 || i == 2 || i == 4
		if (v == 1) != wantSet {
			t.Fatalf("BFS frontier wrong at %d: %v", i, y)
		}
	}
}

func TestSpMVSemiringMinPlusRelaxation(t *testing.T) {
	// dist' = A min-plus dist performs one relaxation step.
	a := FromEntries(3, 3, [][3]float64{{1, 0, 5}, {2, 1, 3}})
	dist := []float64{0, math.Inf(1), math.Inf(1)}
	d1 := SpMVSemiring(a, dist, MinPlus)
	if d1[1] != 5 {
		t.Fatalf("one-step distance to 1 = %v, want 5", d1[1])
	}
	if !math.IsInf(d1[2], 1) {
		t.Fatalf("vertex 2 reachable too early: %v", d1[2])
	}
}

func TestSemiringDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpGEMMSemiring(Zero(2, 3), Zero(4, 2), OrAnd)
}

func TestSemiringZeroDropping(t *testing.T) {
	// Min-plus: unreachable entries (Zero = +Inf) must not be stored.
	a := FromEntries(2, 2, [][3]float64{{0, 1, 2}})
	prod, _ := SpGEMMSemiring(a, a, MinPlus)
	if prod.NNZ() != 0 {
		t.Fatalf("stored unreachable entries: %v", prod.ToDense())
	}
}
