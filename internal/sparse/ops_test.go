package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtractRowsMatchesSpGEMM(t *testing.T) {
	// Row extraction must equal multiplying by a one-nonzero-per-row
	// selector matrix Q_R (Section 4.2.3).
	a := exampleGraph()
	rows := []int{1, 5, 1}
	got := ExtractRows(a, rows)
	// Build Q_R directly from COO to keep rows in requested order.
	coo := NewCOO(len(rows), a.Rows, len(rows))
	for i, r := range rows {
		coo.Add(i, r, 1)
	}
	want, _ := SpGEMM(coo.ToCSR(), a)
	if !Equal(got, want, 0) {
		t.Fatalf("ExtractRows != Q_R*A:\n%v\n%v", got.ToDense(), want.ToDense())
	}
}

func TestExtractColsMatchesSpGEMM(t *testing.T) {
	// Column extraction must equal multiplying by a one-nonzero-per-
	// column selector matrix Q_C (Section 4.2.3).
	a := exampleGraph()
	cols := []int{0, 4}
	got := ExtractCols(a, cols)
	coo := NewCOO(a.Cols, len(cols), len(cols))
	for j, c := range cols {
		coo.Add(c, j, 1)
	}
	want, _ := SpGEMM(a, coo.ToCSR())
	if !Equal(got, want, 0) {
		t.Fatalf("ExtractCols != A*Q_C:\n%v\n%v", got.ToDense(), want.ToDense())
	}
}

func TestExtractColsDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate column")
		}
	}()
	ExtractCols(exampleGraph(), []int{1, 1})
}

func TestCompactCols(t *testing.T) {
	m := FromEntries(3, 8, [][3]float64{
		{0, 2, 1}, {0, 6, 2}, {1, 2, 3}, {2, 7, 4},
	})
	c, colMap := CompactCols(m)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Cols != 3 {
		t.Fatalf("compacted to %d cols, want 3", c.Cols)
	}
	wantMap := []int{2, 6, 7}
	for i := range wantMap {
		if colMap[i] != wantMap[i] {
			t.Fatalf("colMap = %v, want %v", colMap, wantMap)
		}
	}
	// Entries must be preserved under the mapping.
	for i := 0; i < c.Rows; i++ {
		cs, vs := c.Row(i)
		for k := range cs {
			if m.At(i, colMap[cs[k]]) != vs[k] {
				t.Fatalf("entry (%d,%d) lost in compaction", i, cs[k])
			}
		}
	}
	if c.NNZ() != m.NNZ() {
		t.Fatalf("compaction changed nnz %d -> %d", m.NNZ(), c.NNZ())
	}
}

func TestCompactColsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 1+rng.Intn(10), 1+rng.Intn(20), 0.15)
		c, colMap := CompactCols(m)
		if c.Validate() != nil || c.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < c.Rows; i++ {
			cs, vs := c.Row(i)
			for k := range cs {
				if m.At(i, colMap[cs[k]]) != vs[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVStack(t *testing.T) {
	a := FromEntries(2, 3, [][3]float64{{0, 0, 1}, {1, 2, 2}})
	b := FromEntries(1, 3, [][3]float64{{0, 1, 3}})
	s := VStack(a, b)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != 3 || s.Cols != 3 || s.NNZ() != 3 {
		t.Fatalf("stack shape wrong: %v", s)
	}
	if s.At(0, 0) != 1 || s.At(1, 2) != 2 || s.At(2, 1) != 3 {
		t.Fatal("stack entries wrong")
	}
}

func TestVStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched columns")
		}
	}()
	VStack(Zero(1, 2), Zero(1, 3))
}

func TestBlockDiagMatchesBulkLadiesIdentity(t *testing.T) {
	// blockdiag(A1, A2) * vstack-of-column-extractors must equal the
	// per-block products stacked (Section 4.2.4 structure).
	rng := rand.New(rand.NewSource(23))
	a1 := randomCSR(rng, 3, 5, 0.5)
	a2 := randomCSR(rng, 4, 6, 0.5)
	bd := BlockDiag(a1, a2)
	if err := bd.Validate(); err != nil {
		t.Fatal(err)
	}
	if bd.Rows != 7 || bd.Cols != 11 || bd.NNZ() != a1.NNZ()+a2.NNZ() {
		t.Fatalf("block diag shape wrong: %v", bd)
	}
	// Column extractors picking columns {1,3} of each block.
	qc1 := NewCOO(5, 2, 2)
	qc1.Add(1, 0, 1)
	qc1.Add(3, 1, 1)
	qc2 := NewCOO(6, 2, 2)
	qc2.Add(1, 0, 1)
	qc2.Add(3, 1, 1)
	stacked := VStack(qc1.ToCSR(), qc2.ToCSR())
	got, _ := SpGEMM(bd, stacked)
	w1, _ := SpGEMM(a1, qc1.ToCSR())
	w2, _ := SpGEMM(a2, qc2.ToCSR())
	want := VStack(w1, w2)
	if !Equal(got, want, 1e-12) {
		t.Fatal("block-diagonal bulk extraction disagrees with per-block products")
	}
}

func TestSliceRows(t *testing.T) {
	a := exampleGraph()
	s := SliceRows(a, 2, 5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != 3 {
		t.Fatalf("slice rows = %d, want 3", s.Rows)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < a.Cols; j++ {
			if s.At(i, j) != a.At(i+2, j) {
				t.Fatalf("slice mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSliceRowsWholeMatrix(t *testing.T) {
	a := exampleGraph()
	if !Equal(SliceRows(a, 0, a.Rows), a, 0) {
		t.Fatal("full slice differs from original")
	}
}

func TestNonzeroCols(t *testing.T) {
	m := FromEntries(2, 10, [][3]float64{{0, 7, 1}, {1, 2, 1}, {1, 7, 1}})
	got := NonzeroCols(m)
	if len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Fatalf("NonzeroCols = %v, want [2 7]", got)
	}
}

func TestSelectRowsWithin(t *testing.T) {
	a := exampleGraph()
	sub := SelectRowsWithin(a, []int{1, 4})
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.Rows != a.Rows || sub.Cols != a.Cols {
		t.Fatal("SelectRowsWithin must preserve shape")
	}
	if sub.RowNNZ(0) != 0 || sub.RowNNZ(1) != a.RowNNZ(1) || sub.RowNNZ(4) != a.RowNNZ(4) {
		t.Fatal("row selection wrong")
	}
	// Local SpGEMM on the selected rows must agree with full SpGEMM
	// when the left matrix only references selected rows — the key
	// correctness property of the sparsity-aware 1.5D algorithm.
	q := FromEntries(2, 6, [][3]float64{{0, 1, 1}, {1, 4, 1}})
	full, _ := SpGEMM(q, a)
	part, _ := SpGEMM(q, sub)
	if !Equal(full, part, 0) {
		t.Fatal("SpGEMM over selected rows differs from full matrix")
	}
}

func TestRelabelCols(t *testing.T) {
	m := FromEntries(2, 4, [][3]float64{{0, 1, 5}, {1, 3, 6}})
	remap := []int{-1, 0, -1, 1}
	r := RelabelCols(m, remap, 2)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.At(0, 0) != 5 || r.At(1, 1) != 6 {
		t.Fatal("relabel lost entries")
	}
}

func TestExtractRowsStacksAsQ(t *testing.T) {
	// Property: extracting rows r1..rn then summing row sums equals
	// summing the original degrees — the extraction is lossless.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCSR(rng, 10, 10, 0.3)
		rows := make([]int, 1+rng.Intn(10))
		for i := range rows {
			rows[i] = rng.Intn(10)
		}
		ex := ExtractRows(a, rows)
		sums := a.RowSums()
		exSums := ex.RowSums()
		for i, r := range rows {
			if math.Abs(exSums[i]-sums[r]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestColRange(t *testing.T) {
	a := exampleGraph()
	sub := ColRange(a, 2, 5)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.Cols != 3 {
		t.Fatalf("cols = %d, want 3", sub.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 2; j < 5; j++ {
			if sub.At(i, j-2) != a.At(i, j) {
				t.Fatalf("ColRange mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestColRangePartitionReassembles(t *testing.T) {
	// Summing Q_ik · A_k over column-range blocks must equal Q·A — the
	// algebraic identity behind the staged 1.5D SpGEMM.
	rng := rand.New(rand.NewSource(31))
	q := randomCSR(rng, 6, 12, 0.3)
	a := randomCSR(rng, 12, 9, 0.3)
	full, _ := SpGEMM(q, a)
	acc := Zero(6, 9)
	for _, blk := range [][2]int{{0, 5}, {5, 9}, {9, 12}} {
		qik := ColRange(q, blk[0], blk[1])
		ak := SliceRows(a, blk[0], blk[1])
		part, _ := SpGEMM(qik, ak)
		acc = AddCSR(acc, part)
	}
	if !Equal(full, acc, 1e-12) {
		t.Fatal("staged block product != full product")
	}
}
