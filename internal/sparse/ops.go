package sparse

import (
	"fmt"
	"sort"
)

// ExtractRows returns the submatrix formed by the given rows of A, in
// order. Row indices may repeat. This is the row-extraction SpGEMM
// Q_R * A of Section 4.2.3 realized directly: Q_R has one nonzero per
// row, so the product is a gather.
func ExtractRows(a *CSR, rows []int) *CSR {
	out := &CSR{Rows: len(rows), Cols: a.Cols, RowPtr: make([]int, len(rows)+1)}
	nnz := 0
	for _, r := range rows {
		nnz += a.RowNNZ(r)
	}
	out.ColIdx = make([]int, 0, nnz)
	out.Val = make([]float64, 0, nnz)
	for i, r := range rows {
		if r < 0 || r >= a.Rows {
			panic(fmt.Sprintf("sparse: ExtractRows row %d outside %d rows", r, a.Rows))
		}
		cols, vals := a.Row(r)
		out.ColIdx = append(out.ColIdx, cols...)
		out.Val = append(out.Val, vals...)
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// ExtractCols returns the submatrix formed by the given columns of A,
// in order. This is the column-extraction SpGEMM A * Q_C of Section
// 4.2.3 realized directly: Q_C has one nonzero per column, so the
// product is a per-row select-and-relabel. Column indices must be
// distinct.
func ExtractCols(a *CSR, cols []int) *CSR {
	sel := make(map[int]int, len(cols))
	for newIdx, c := range cols {
		if c < 0 || c >= a.Cols {
			panic(fmt.Sprintf("sparse: ExtractCols column %d outside %d cols", c, a.Cols))
		}
		if _, dup := sel[c]; dup {
			panic(fmt.Sprintf("sparse: ExtractCols duplicate column %d", c))
		}
		sel[c] = newIdx
	}
	out := &CSR{Rows: a.Rows, Cols: len(cols), RowPtr: make([]int, a.Rows+1)}
	type ent struct {
		c int
		v float64
	}
	buf := make([]ent, 0, len(cols))
	for i := 0; i < a.Rows; i++ {
		buf = buf[:0]
		rc, rv := a.Row(i)
		for k, c := range rc {
			if nc, ok := sel[c]; ok {
				buf = append(buf, ent{nc, rv[k]})
			}
		}
		sort.Slice(buf, func(x, y int) bool { return buf[x].c < buf[y].c })
		for _, e := range buf {
			out.ColIdx = append(out.ColIdx, e.c)
			out.Val = append(out.Val, e.v)
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// CompactCols removes empty columns of A, returning the compacted
// matrix and the mapping from new column index to original column
// index. This implements the GraphSAGE extraction step of Section
// 4.1.3 ("remove empty columns in Q^{l-1}").
func CompactCols(a *CSR) (*CSR, []int) {
	used := make([]bool, a.Cols)
	for _, c := range a.ColIdx {
		used[c] = true
	}
	remap := make([]int, a.Cols)
	var colMap []int
	for c := 0; c < a.Cols; c++ {
		if used[c] {
			remap[c] = len(colMap)
			colMap = append(colMap, c)
		} else {
			remap[c] = -1
		}
	}
	out := &CSR{
		Rows:   a.Rows,
		Cols:   len(colMap),
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: make([]int, a.NNZ()),
		Val:    append([]float64(nil), a.Val...),
	}
	for k, c := range a.ColIdx {
		out.ColIdx[k] = remap[c]
	}
	return out, colMap
}

// RelabelCols rewrites column indices of A through remap (new index =
// remap[old index]; all referenced entries must map to >= 0) and sets
// the new column count. Column order must be preserved by remap
// (monotone on the referenced columns); violated order panics via
// Validate in tests.
func RelabelCols(a *CSR, remap []int, newCols int) *CSR {
	out := &CSR{
		Rows:   a.Rows,
		Cols:   newCols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: make([]int, a.NNZ()),
		Val:    append([]float64(nil), a.Val...),
	}
	for k, c := range a.ColIdx {
		nc := remap[c]
		if nc < 0 || nc >= newCols {
			panic(fmt.Sprintf("sparse: RelabelCols maps %d to %d outside [0,%d)", c, nc, newCols))
		}
		out.ColIdx[k] = nc
	}
	return out
}

// VStack vertically concatenates the given matrices, which must all
// have the same column count. This realizes the bulk-sampling stacking
// of Equation 1 in the paper.
func VStack(mats ...*CSR) *CSR {
	if len(mats) == 0 {
		panic("sparse: VStack of zero matrices")
	}
	cols := mats[0].Cols
	rows, nnz := 0, 0
	for _, m := range mats {
		if m.Cols != cols {
			panic(fmt.Sprintf("sparse: VStack column mismatch %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
		nnz += m.NNZ()
	}
	out := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	out.ColIdx = make([]int, 0, nnz)
	out.Val = make([]float64, 0, nnz)
	r := 0
	for _, m := range mats {
		for i := 0; i < m.Rows; i++ {
			cs, vs := m.Row(i)
			out.ColIdx = append(out.ColIdx, cs...)
			out.Val = append(out.Val, vs...)
			r++
			out.RowPtr[r] = len(out.ColIdx)
		}
	}
	return out
}

// BlockDiag builds the block-diagonal matrix with the given blocks on
// the diagonal. Used by the bulk LADIES column-extraction step
// (Section 4.2.4), where each A_Ri block multiplies only its own
// Q_Ci^{l-1}.
func BlockDiag(blocks ...*CSR) *CSR {
	rows, cols, nnz := 0, 0, 0
	for _, b := range blocks {
		rows += b.Rows
		cols += b.Cols
		nnz += b.NNZ()
	}
	out := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	out.ColIdx = make([]int, 0, nnz)
	out.Val = make([]float64, 0, nnz)
	r, cOff := 0, 0
	for _, b := range blocks {
		for i := 0; i < b.Rows; i++ {
			cs, vs := b.Row(i)
			for k := range cs {
				out.ColIdx = append(out.ColIdx, cs[k]+cOff)
				out.Val = append(out.Val, vs[k])
			}
			r++
			out.RowPtr[r] = len(out.ColIdx)
		}
		cOff += b.Cols
	}
	return out
}

// SliceRows returns the submatrix of rows [lo, hi) of A, sharing no
// storage with A.
func SliceRows(a *CSR, lo, hi int) *CSR {
	if lo < 0 || hi > a.Rows || lo > hi {
		panic(fmt.Sprintf("sparse: SliceRows [%d,%d) outside %d rows", lo, hi, a.Rows))
	}
	out := &CSR{Rows: hi - lo, Cols: a.Cols, RowPtr: make([]int, hi-lo+1)}
	base := a.RowPtr[lo]
	for i := lo; i <= hi; i++ {
		out.RowPtr[i-lo] = a.RowPtr[i] - base
	}
	out.ColIdx = append([]int(nil), a.ColIdx[base:a.RowPtr[hi]]...)
	out.Val = append([]float64(nil), a.Val[base:a.RowPtr[hi]]...)
	return out
}

// NonzeroCols returns the sorted distinct column indices that appear in
// A. This is the NnzCols primitive of Algorithm 2 (the sparsity-aware
// 1.5D SpGEMM): only these columns of the left matrix require rows of
// the right matrix.
func NonzeroCols(a *CSR) []int {
	used := make(map[int]struct{}, len(a.ColIdx))
	for _, c := range a.ColIdx {
		used[c] = struct{}{}
	}
	out := make([]int, 0, len(used))
	for c := range used {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// ColRange returns the submatrix of columns [lo, hi) of A with column
// indices shifted down by lo. Used by the 1.5D SpGEMM to slice the
// left operand Q into the Q_ik blocks of Algorithm 2.
func ColRange(a *CSR, lo, hi int) *CSR {
	if lo < 0 || hi > a.Cols || lo > hi {
		panic(fmt.Sprintf("sparse: ColRange [%d,%d) outside %d cols", lo, hi, a.Cols))
	}
	out := &CSR{Rows: a.Rows, Cols: hi - lo, RowPtr: make([]int, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		cs, vs := a.Row(i)
		for k, c := range cs {
			if c >= lo && c < hi {
				out.ColIdx = append(out.ColIdx, c-lo)
				out.Val = append(out.Val, vs[k])
			}
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// SelectRowsWithin returns a matrix with the same shape as A containing
// only the rows listed in rows (others empty). It models the partial
// block of A that a process receives in the sparsity-aware 1.5D
// algorithm: the row space is preserved so local SpGEMM indices stay
// global.
func SelectRowsWithin(a *CSR, rows []int) *CSR {
	out := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int, a.Rows+1)}
	nnz := 0
	for _, r := range rows {
		nnz += a.RowNNZ(r)
	}
	out.ColIdx = make([]int, 0, nnz)
	out.Val = make([]float64, 0, nnz)
	mark := make([]bool, a.Rows)
	for _, r := range rows {
		mark[r] = true
	}
	for i := 0; i < a.Rows; i++ {
		if mark[i] {
			cs, vs := a.Row(i)
			out.ColIdx = append(out.ColIdx, cs...)
			out.Val = append(out.Val, vs...)
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}
