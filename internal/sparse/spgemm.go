package sparse

import (
	"fmt"
	"runtime"
	"sync"
)

// SpGEMM computes C = A * B for sparse A and B using Gustavson's
// row-wise algorithm with a sparse accumulator, parallelized over row
// blocks of A. The returned flop count is the number of scalar
// multiply-add pairs performed, which the cluster cost model uses to
// charge simulated device time.
func SpGEMM(a, b *CSR) (c *CSR, flops int64) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: SpGEMM dimension mismatch %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	// Each worker drains its rows into one growing arena instead of a
	// pair of fresh slices per row: the two allocations per output row
	// were among the simulator's top allocation sites.
	type arena struct {
		lo, hi int
		cols   []int
		vals   []float64
		ends   []int // arena offset of each row's end, relative to lo
		flops  int64
	}
	chunk := (a.Rows + workers - 1) / workers
	arenas := make([]arena, 0, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		// The flop count bounds the arena's output size (collisions
		// only shrink it), so one up-front sizing pass over the row
		// pointers avoids every growth reallocation.
		bound := 0
		for i := lo; i < hi; i++ {
			acols, _ := a.Row(i)
			for _, arow := range acols {
				bound += b.RowNNZ(arow)
			}
		}
		// bound is also the arena's exact flop count: one multiply-add
		// per (a-nonzero, b-row-nonzero) pair.
		arenas = append(arenas, arena{lo: lo, hi: hi, flops: int64(bound),
			cols: make([]int, 0, bound), vals: make([]float64, 0, bound),
			ends: make([]int, 0, hi-lo)})
	}
	var wg sync.WaitGroup
	for w := range arenas {
		wg.Add(1)
		go func(ar *arena) {
			defer wg.Done()
			acc := newSPA(b.Cols)
			for i := ar.lo; i < ar.hi; i++ {
				acols, avals := a.Row(i)
				for k := range acols {
					av := avals[k]
					bcols, bvals := b.Row(acols[k])
					for t := range bcols {
						acc.add(bcols[t], av*bvals[t])
					}
				}
				ar.cols, ar.vals = acc.drainInto(ar.cols, ar.vals)
				ar.ends = append(ar.ends, len(ar.cols))
			}
		}(&arenas[w])
	}
	wg.Wait()

	total := 0
	for w := range arenas {
		total += len(arenas[w].cols)
		flops += arenas[w].flops
	}
	if len(arenas) == 1 {
		// Single worker (small input or GOMAXPROCS=1): adopt the arena
		// wholesale instead of copying it into a fresh matrix.
		ar := &arenas[0]
		out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1),
			ColIdx: ar.cols, Val: ar.vals}
		for r, end := range ar.ends {
			out.RowPtr[r+1] = end
		}
		return out, flops
	}
	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1),
		ColIdx: make([]int, 0, total), Val: make([]float64, 0, total)}
	for w := range arenas {
		ar := &arenas[w]
		base := len(out.ColIdx)
		out.ColIdx = append(out.ColIdx, ar.cols...)
		out.Val = append(out.Val, ar.vals...)
		for r, end := range ar.ends {
			out.RowPtr[ar.lo+r+1] = base + end
		}
	}
	return out, flops
}

// SpGEMMFlops returns the flop count of A*B without forming the
// product. Used for symbolic cost estimation.
func SpGEMMFlops(a, b *CSR) int64 {
	var flops int64
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			flops += int64(b.RowNNZ(c))
		}
	}
	return flops
}

// spa is a sparse accumulator: a dense value array plus an occupancy
// list, reused across rows to avoid reallocation.
type spa struct {
	val     []float64
	present []bool
	idx     []int
}

func newSPA(n int) *spa {
	return &spa{val: make([]float64, n), present: make([]bool, n)}
}

func (s *spa) add(j int, v float64) {
	if !s.present[j] {
		s.present[j] = true
		s.idx = append(s.idx, j)
	}
	s.val[j] += v
}

// drainInto appends the accumulated (sorted) columns and values to the
// given buffers and resets the accumulator — the allocation-free form
// SpGEMM's per-worker arenas use.
func (s *spa) drainInto(cols []int, vals []float64) ([]int, []float64) {
	base := len(cols)
	cols = append(cols, s.idx...)
	insertionSort(cols[base:])
	for _, j := range cols[base:] {
		vals = append(vals, s.val[j])
		s.val[j] = 0
		s.present[j] = false
	}
	s.idx = s.idx[:0]
	return cols, vals
}

// insertionSort sorts small integer slices in place; output rows of
// SpGEMM are typically short, where insertion sort beats sort.Ints.
func insertionSort(a []int) {
	if len(a) > 64 {
		quickSortInts(a)
		return
	}
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func quickSortInts(a []int) {
	for len(a) > 64 {
		p := partition(a)
		if p < len(a)-p {
			quickSortInts(a[:p])
			a = a[p+1:]
		} else {
			quickSortInts(a[p+1:])
			a = a[:p]
		}
	}
	insertionSort(a)
}

func partition(a []int) int {
	mid := len(a) / 2
	if a[0] > a[mid] {
		a[0], a[mid] = a[mid], a[0]
	}
	if a[0] > a[len(a)-1] {
		a[0], a[len(a)-1] = a[len(a)-1], a[0]
	}
	if a[mid] > a[len(a)-1] {
		a[mid], a[len(a)-1] = a[len(a)-1], a[mid]
	}
	pivot := a[mid]
	a[mid], a[len(a)-1] = a[len(a)-1], a[mid]
	i := 0
	for j := 0; j < len(a)-1; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[len(a)-1] = a[len(a)-1], a[i]
	return i
}

// AddCSR returns A + B for same-shaped sparse matrices, merging rows.
func AddCSR(a, b *CSR) *CSR {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: AddCSR shape mismatch %v vs %v", a, b))
	}
	out := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int, a.Rows+1)}
	out.ColIdx = make([]int, 0, a.NNZ()+b.NNZ())
	out.Val = make([]float64, 0, a.NNZ()+b.NNZ())
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		x, y := 0, 0
		for x < len(ac) && y < len(bc) {
			switch {
			case ac[x] < bc[y]:
				out.ColIdx = append(out.ColIdx, ac[x])
				out.Val = append(out.Val, av[x])
				x++
			case ac[x] > bc[y]:
				out.ColIdx = append(out.ColIdx, bc[y])
				out.Val = append(out.Val, bv[y])
				y++
			default:
				out.ColIdx = append(out.ColIdx, ac[x])
				out.Val = append(out.Val, av[x]+bv[y])
				x++
				y++
			}
		}
		for ; x < len(ac); x++ {
			out.ColIdx = append(out.ColIdx, ac[x])
			out.Val = append(out.Val, av[x])
		}
		for ; y < len(bc); y++ {
			out.ColIdx = append(out.ColIdx, bc[y])
			out.Val = append(out.Val, bv[y])
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}
