package sparse

import (
	"fmt"
	"runtime"
	"sync"
)

// SpGEMM computes C = A * B for sparse A and B using Gustavson's
// row-wise algorithm with a sparse accumulator, parallelized over row
// blocks of A. The returned flop count is the number of scalar
// multiply-add pairs performed, which the cluster cost model uses to
// charge simulated device time.
func SpGEMM(a, b *CSR) (c *CSR, flops int64) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: SpGEMM dimension mismatch %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	rowResults := make([][]int, a.Rows) // column indices per output row
	valResults := make([][]float64, a.Rows)
	flopsPer := make([]int64, a.Rows)

	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			acc := newSPA(b.Cols)
			for i := lo; i < hi; i++ {
				var fl int64
				acols, avals := a.Row(i)
				for k := range acols {
					arow := acols[k]
					av := avals[k]
					bcols, bvals := b.Row(arow)
					for t := range bcols {
						acc.add(bcols[t], av*bvals[t])
					}
					fl += int64(len(bcols))
				}
				rowResults[i], valResults[i] = acc.drain()
				flopsPer[i] = fl
			}
		}(lo, hi)
	}
	wg.Wait()

	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1)}
	total := 0
	for i := 0; i < a.Rows; i++ {
		total += len(rowResults[i])
		flops += flopsPer[i]
	}
	out.ColIdx = make([]int, 0, total)
	out.Val = make([]float64, 0, total)
	for i := 0; i < a.Rows; i++ {
		out.ColIdx = append(out.ColIdx, rowResults[i]...)
		out.Val = append(out.Val, valResults[i]...)
		out.RowPtr[i+1] = out.RowPtr[i] + len(rowResults[i])
	}
	return out, flops
}

// SpGEMMFlops returns the flop count of A*B without forming the
// product. Used for symbolic cost estimation.
func SpGEMMFlops(a, b *CSR) int64 {
	var flops int64
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			flops += int64(b.RowNNZ(c))
		}
	}
	return flops
}

// spa is a sparse accumulator: a dense value array plus an occupancy
// list, reused across rows to avoid reallocation.
type spa struct {
	val     []float64
	present []bool
	idx     []int
}

func newSPA(n int) *spa {
	return &spa{val: make([]float64, n), present: make([]bool, n)}
}

func (s *spa) add(j int, v float64) {
	if !s.present[j] {
		s.present[j] = true
		s.idx = append(s.idx, j)
	}
	s.val[j] += v
}

// drain returns the accumulated (sorted) columns and values and resets
// the accumulator.
func (s *spa) drain() ([]int, []float64) {
	if len(s.idx) == 0 {
		return nil, nil
	}
	cols := append([]int(nil), s.idx...)
	insertionSort(cols)
	vals := make([]float64, len(cols))
	for k, j := range cols {
		vals[k] = s.val[j]
		s.val[j] = 0
		s.present[j] = false
	}
	s.idx = s.idx[:0]
	return cols, vals
}

// insertionSort sorts small integer slices in place; output rows of
// SpGEMM are typically short, where insertion sort beats sort.Ints.
func insertionSort(a []int) {
	if len(a) > 64 {
		quickSortInts(a)
		return
	}
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func quickSortInts(a []int) {
	for len(a) > 64 {
		p := partition(a)
		if p < len(a)-p {
			quickSortInts(a[:p])
			a = a[p+1:]
		} else {
			quickSortInts(a[p+1:])
			a = a[:p]
		}
	}
	insertionSort(a)
}

func partition(a []int) int {
	mid := len(a) / 2
	if a[0] > a[mid] {
		a[0], a[mid] = a[mid], a[0]
	}
	if a[0] > a[len(a)-1] {
		a[0], a[len(a)-1] = a[len(a)-1], a[0]
	}
	if a[mid] > a[len(a)-1] {
		a[mid], a[len(a)-1] = a[len(a)-1], a[mid]
	}
	pivot := a[mid]
	a[mid], a[len(a)-1] = a[len(a)-1], a[mid]
	i := 0
	for j := 0; j < len(a)-1; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[len(a)-1] = a[len(a)-1], a[i]
	return i
}

// AddCSR returns A + B for same-shaped sparse matrices, merging rows.
func AddCSR(a, b *CSR) *CSR {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: AddCSR shape mismatch %v vs %v", a, b))
	}
	out := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int, a.Rows+1)}
	out.ColIdx = make([]int, 0, a.NNZ()+b.NNZ())
	out.Val = make([]float64, 0, a.NNZ()+b.NNZ())
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		x, y := 0, 0
		for x < len(ac) && y < len(bc) {
			switch {
			case ac[x] < bc[y]:
				out.ColIdx = append(out.ColIdx, ac[x])
				out.Val = append(out.Val, av[x])
				x++
			case ac[x] > bc[y]:
				out.ColIdx = append(out.ColIdx, bc[y])
				out.Val = append(out.Val, bv[y])
				y++
			default:
				out.ColIdx = append(out.ColIdx, ac[x])
				out.Val = append(out.Val, av[x]+bv[y])
				x++
				y++
			}
		}
		for ; x < len(ac); x++ {
			out.ColIdx = append(out.ColIdx, ac[x])
			out.Val = append(out.Val, av[x])
		}
		for ; y < len(bc); y++ {
			out.ColIdx = append(out.ColIdx, bc[y])
			out.Val = append(out.Val, bv[y])
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}
