package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// exampleGraph returns the 6-vertex adjacency matrix used in Figure 1
// of the paper.
func exampleGraph() *CSR {
	return FromDense(6, 6, []float64{
		0, 1, 0, 0, 0, 0,
		1, 0, 1, 0, 1, 0,
		0, 1, 0, 1, 1, 0,
		0, 0, 1, 0, 1, 1,
		0, 1, 1, 1, 0, 1,
		0, 0, 0, 1, 1, 0,
	})
}

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	coo := NewCOO(rows, cols, int(float64(rows*cols)*density)+1)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func TestValidateExampleGraph(t *testing.T) {
	a := exampleGraph()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 16 {
		t.Fatalf("NNZ = %d, want 16", a.NNZ())
	}
	if a.At(1, 4) != 1 || a.At(0, 3) != 0 {
		t.Fatalf("At lookups wrong: (1,4)=%v (0,3)=%v", a.At(1, 4), a.At(0, 3))
	}
}

func TestCOODuplicateSum(t *testing.T) {
	coo := NewCOO(2, 2, 4)
	coo.Add(0, 1, 2)
	coo.Add(0, 1, 3)
	coo.Add(1, 0, 1)
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("duplicate sum = %v, want 5", got)
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestCOOAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range COO entry")
		}
	}()
	NewCOO(2, 2, 1).Add(2, 0, 1)
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a := randomCSR(rng, 1+rng.Intn(20), 1+rng.Intn(20), 0.3)
		tt := a.Transpose().Transpose()
		if !Equal(a, tt, 0) {
			t.Fatalf("transpose not an involution on trial %d", trial)
		}
		if err := a.Transpose().Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	a := exampleGraph()
	at := a.Transpose()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestRowSumsAndNormalize(t *testing.T) {
	a := exampleGraph()
	sums := a.RowSums()
	want := []float64{1, 3, 3, 3, 4, 2} // degrees of the example graph
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("row %d sum = %v, want %v", i, sums[i], want[i])
		}
	}
	b := a.Clone()
	b.NormalizeRows()
	for i, s := range b.RowSums() {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("normalized row %d sums to %v", i, s)
		}
	}
}

func TestNormalizeRowsZeroRow(t *testing.T) {
	m := Zero(3, 3)
	m.NormalizeRows() // must not panic or produce NaN
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaleRows(t *testing.T) {
	a := exampleGraph()
	a.ScaleRows([]float64{1, 2, 3, 4, 5, 6})
	if a.At(1, 0) != 2 || a.At(5, 3) != 6 {
		t.Fatalf("ScaleRows wrong: %v %v", a.At(1, 0), a.At(5, 3))
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(5)
	if err := id.Validate(); err != nil {
		t.Fatal(err)
	}
	a := randomCSR(rand.New(rand.NewSource(2)), 5, 7, 0.4)
	prod, _ := SpGEMM(id, a)
	if !Equal(a, prod, 0) {
		t.Fatal("I*A != A")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := exampleGraph()
	b := a.Clone()
	b.Val[0] = 99
	if a.Val[0] == 99 {
		t.Fatal("Clone shares value storage")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := map[string]func(*CSR){
		"rowptr decreasing": func(m *CSR) { m.RowPtr[1] = m.RowPtr[2] + 1 },
		"column too large":  func(m *CSR) { m.ColIdx[0] = m.Cols },
		"negative column":   func(m *CSR) { m.ColIdx[0] = -1 },
		"nan value":         func(m *CSR) { m.Val[0] = math.NaN() },
		"unsorted columns": func(m *CSR) {
			m.ColIdx[1], m.ColIdx[2] = m.ColIdx[2], m.ColIdx[1]
		},
	}
	for name, corrupt := range cases {
		m := exampleGraph()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupted matrix", name)
		}
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		data := make([]float64, rows*cols)
		for i := range data {
			if rng.Float64() < 0.4 {
				data[i] = float64(1 + rng.Intn(9))
			}
		}
		m := FromDense(rows, cols, data)
		if m.Validate() != nil {
			return false
		}
		back := m.ToDense()
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesPositive(t *testing.T) {
	if exampleGraph().Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
}
