package sparse

import "testing"

// Edge cases for the stacking and extraction kernels: empty matrices
// (zero rows), zero-column matrices and empty selections all occur in
// practice when a rank's bulk round has no real batches, so the
// kernels must produce structurally valid results rather than panic.

func TestVStackEmptyAndZeroColumnMatrices(t *testing.T) {
	// Stacking empty (0-row) matrices between non-empty ones.
	a := FromDense(2, 3, []float64{1, 0, 2, 0, 3, 0})
	empty := Zero(0, 3)
	s := VStack(empty, a, empty, a, empty)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != 4 || s.Cols != 3 || s.NNZ() != 2*a.NNZ() {
		t.Fatalf("stacked shape %dx%d nnz %d", s.Rows, s.Cols, s.NNZ())
	}
	if s.At(2, 0) != 1 || s.At(3, 1) != 3 {
		t.Fatalf("second copy misplaced: %v %v", s.At(2, 0), s.At(3, 1))
	}

	// All-empty stack keeps the column count.
	s = VStack(Zero(0, 7), Zero(0, 7))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != 0 || s.Cols != 7 || s.NNZ() != 0 {
		t.Fatalf("empty stack shape %dx%d nnz %d", s.Rows, s.Cols, s.NNZ())
	}

	// Zero-column matrices stack to a zero-column matrix.
	s = VStack(Zero(2, 0), Zero(3, 0))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != 5 || s.Cols != 0 {
		t.Fatalf("zero-column stack shape %dx%d", s.Rows, s.Cols)
	}
}

func TestBlockDiagEmptyAndZeroColumnBlocks(t *testing.T) {
	// No blocks at all: the empty 0x0 matrix.
	s := BlockDiag()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != 0 || s.Cols != 0 {
		t.Fatalf("empty block diag shape %dx%d", s.Rows, s.Cols)
	}

	// Zero-row and zero-column blocks still shift the offsets of the
	// blocks after them.
	a := FromDense(1, 2, []float64{5, 6})
	s = BlockDiag(Zero(0, 3), a, Zero(2, 0), a)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != 0+1+2+1 || s.Cols != 3+2+0+2 {
		t.Fatalf("block diag shape %dx%d", s.Rows, s.Cols)
	}
	// First copy of a sits at rows 0, cols [3,5); second at row 3,
	// cols [5,7).
	if s.At(0, 3) != 5 || s.At(0, 4) != 6 {
		t.Fatalf("first block misplaced")
	}
	if s.At(3, 5) != 5 || s.At(3, 6) != 6 {
		t.Fatalf("second block not shifted past zero-column block")
	}
}

func TestExtractColsEmptySelectionAndEmptyMatrix(t *testing.T) {
	a := FromDense(2, 3, []float64{1, 2, 0, 0, 3, 4})

	// Empty selection: all rows, no columns.
	s := ExtractCols(a, nil)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != 2 || s.Cols != 0 || s.NNZ() != 0 {
		t.Fatalf("empty selection shape %dx%d nnz %d", s.Rows, s.Cols, s.NNZ())
	}

	// Extraction from an empty (0-row) matrix.
	s = ExtractCols(Zero(0, 3), []int{2, 0})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != 0 || s.Cols != 2 {
		t.Fatalf("empty matrix extraction shape %dx%d", s.Rows, s.Cols)
	}

	// Extraction from a zero-column matrix with an empty selection.
	s = ExtractCols(Zero(4, 0), nil)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != 4 || s.Cols != 0 {
		t.Fatalf("zero-column extraction shape %dx%d", s.Rows, s.Cols)
	}

	// Out-of-order selection relabels and reorders per row.
	s = ExtractCols(a, []int{2, 1})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.At(0, 1) != 2 || s.At(1, 0) != 4 || s.At(1, 1) != 3 {
		t.Fatalf("reordered extraction wrong: %v", s.ToDense())
	}
}
