package sparse

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n int, deg float64) *CSR {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	coo := NewCOO(n, n, int(float64(n)*deg))
	for i := 0; i < int(float64(n)*deg); i++ {
		coo.Add(rng.Intn(n), rng.Intn(n), 1)
	}
	return coo.ToCSR()
}

func benchSelector(n, rows int) *CSR {
	coo := NewCOO(rows, n, rows)
	for i := 0; i < rows; i++ {
		coo.Add(i, (i*7919)%n, 1)
	}
	return coo.ToCSR()
}

func BenchmarkSpGEMMSelector(b *testing.B) {
	a := benchGraph(b, 10000, 16)
	q := benchSelector(10000, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpGEMM(q, a)
	}
}

func BenchmarkSpGEMMSquare(b *testing.B) {
	a := benchGraph(b, 2000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpGEMM(a, a)
	}
}

func BenchmarkSpMM(b *testing.B) {
	a := benchGraph(b, 5000, 16)
	feats := make([]float64, 5000*32)
	for i := range feats {
		feats[i] = float64(i % 13)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpMM(a, feats, 32)
	}
}

func BenchmarkTranspose(b *testing.B) {
	a := benchGraph(b, 10000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Transpose()
	}
}

func BenchmarkAddCSR(b *testing.B) {
	x := benchGraph(b, 5000, 8)
	y := benchGraph(b, 5000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddCSR(x, y)
	}
}

func BenchmarkExtractRows(b *testing.B) {
	a := benchGraph(b, 10000, 16)
	rows := make([]int, 2048)
	for i := range rows {
		rows[i] = (i * 4241) % 10000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractRows(a, rows)
	}
}

func BenchmarkVStack(b *testing.B) {
	parts := make([]*CSR, 16)
	for i := range parts {
		parts[i] = benchGraph(b, 500, 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VStack(parts...)
	}
}
