package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseMul multiplies two row-major dense matrices; the reference
// implementation SpGEMM and SpMM are checked against.
func denseMul(a []float64, ar, ac int, b []float64, bc int) []float64 {
	out := make([]float64, ar*bc)
	for i := 0; i < ar; i++ {
		for k := 0; k < ac; k++ {
			v := a[i*ac+k]
			if v == 0 {
				continue
			}
			for j := 0; j < bc; j++ {
				out[i*bc+j] += v * b[k*bc+j]
			}
		}
	}
	return out
}

func TestSpGEMMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		m, k, n := 1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(15)
		a := randomCSR(rng, m, k, 0.3)
		b := randomCSR(rng, k, n, 0.3)
		c, flops := SpGEMM(a, b)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		want := denseMul(a.ToDense(), m, k, b.ToDense(), n)
		got := c.ToDense()
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9 {
				t.Fatalf("trial %d: SpGEMM mismatch at %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
		if flops != SpGEMMFlops(a, b) {
			t.Fatalf("flops %d != symbolic %d", flops, SpGEMMFlops(a, b))
		}
	}
}

func TestSpGEMMDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched dims")
		}
	}()
	SpGEMM(Zero(2, 3), Zero(4, 2))
}

func TestSpGEMMEmptyOperands(t *testing.T) {
	c, flops := SpGEMM(Zero(3, 4), Zero(4, 5))
	if c.NNZ() != 0 || flops != 0 {
		t.Fatalf("empty product has nnz=%d flops=%d", c.NNZ(), flops)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpGEMMAssociativityProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCSR(rng, 6, 5, 0.4)
		b := randomCSR(rng, 5, 7, 0.4)
		c := randomCSR(rng, 7, 4, 0.4)
		ab, _ := SpGEMM(a, b)
		abc1, _ := SpGEMM(ab, c)
		bc, _ := SpGEMM(b, c)
		abc2, _ := SpGEMM(a, bc)
		d1, d2 := abc1.ToDense(), abc2.ToDense()
		for i := range d1 {
			if math.Abs(d1[i]-d2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		a := randomCSR(rng, 8, 9, 0.3)
		b := randomCSR(rng, 8, 9, 0.3)
		s := AddCSR(a, b)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		da, db, ds := a.ToDense(), b.ToDense(), s.ToDense()
		for i := range da {
			if math.Abs(da[i]+db[i]-ds[i]) > 1e-12 {
				t.Fatalf("AddCSR mismatch at %d", i)
			}
		}
	}
}

func TestAddCSRCommutative(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCSR(rng, 6, 6, 0.35)
		b := randomCSR(rng, 6, 6, 0.35)
		return Equal(AddCSR(a, b), AddCSR(b, a), 1e-12)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(8)
		a := randomCSR(rng, m, k, 0.4)
		b := make([]float64, k*n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got, _ := SpMM(a, b, n)
		want := denseMul(a.ToDense(), m, k, b, n)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9 {
				t.Fatalf("SpMM mismatch at %d", i)
			}
		}
	}
}

func TestSpMMTMatchesTransposeSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(6)
		a := randomCSR(rng, m, k, 0.4)
		b := make([]float64, m*n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got, _ := SpMMT(a, b, n)
		want, _ := SpMM(a.Transpose(), b, n)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9 {
				t.Fatalf("SpMMT mismatch at %d", i)
			}
		}
	}
}

func TestInsertionAndQuickSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300)
		a := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(1000)
		}
		insertionSort(a)
		for i := 1; i < n; i++ {
			if a[i-1] > a[i] {
				t.Fatalf("sort failed at trial %d index %d", trial, i)
			}
		}
	}
}
