package resilience

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

func snapWithClock(t float64) cluster.RankSnapshot {
	return cluster.RankSnapshot{
		Phases:  []string{"work"},
		OpCount: map[string]int64{},
		Main:    cluster.StreamSnapshot{Clock: t, PhaseTotal: []float64{t}, PhaseComm: []float64{0}, PhaseTouched: []bool{true}},
	}
}

func TestCollectorPublishesCompleteBoundary(t *testing.T) {
	c := NewCollector(2)
	if ck, err := c.Latest(); err != nil || ck != nil {
		t.Fatalf("fresh collector Latest = %v, %v, want nil, nil", ck, err)
	}
	if err := c.AddRank(1, 0, snapWithClock(1.5)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddState(1, 7, []float64{1, 2}, 3, []float64{0.1}, []float64{0.2}); err != nil {
		t.Fatal(err)
	}
	// Boundary incomplete: rank 1 has not contributed.
	if ck, err := c.Latest(); err != nil || ck != nil {
		t.Fatalf("incomplete boundary published: %v, %v", ck, err)
	}
	if err := c.AddRank(1, 1, snapWithClock(2.5)); err != nil {
		t.Fatal(err)
	}
	ck, err := c.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Epoch != 1 || ck.DropSeed != 7 || ck.OptT != 3 || len(ck.Ranks) != 2 {
		t.Fatalf("published checkpoint %+v is wrong", ck)
	}
	if got := c.LatestClock(); got != 2.5 {
		t.Fatalf("LatestClock = %v, want the max rank clock 2.5", got)
	}
	// Each Latest call decodes afresh: mutating one returned value must
	// not leak into the next.
	ck.Params[0] = 99
	ck2, err := c.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Params[0] != 1 {
		t.Fatal("Latest returned a shared decoded value, not a fresh decode")
	}
}

func TestCollectorRejectsDuplicatesAndOverlap(t *testing.T) {
	c := NewCollector(2)
	if err := c.AddRank(1, 0, snapWithClock(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRank(1, 0, snapWithClock(1)); err == nil || !strings.Contains(err.Error(), "duplicate snapshot") {
		t.Fatalf("duplicate rank snapshot: err = %v", err)
	}
	if err := c.AddState(1, 0, nil, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.AddState(1, 0, nil, 0, nil, nil); err == nil || !strings.Contains(err.Error(), "duplicate training state") {
		t.Fatalf("duplicate state: err = %v", err)
	}
	// Opening boundary 2 while boundary 1 is incomplete breaks the
	// world-collective ordering invariant.
	if err := c.AddRank(2, 1, snapWithClock(2)); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("boundary overlap: err = %v", err)
	}
}

func TestCollectorAbortKeepsLatest(t *testing.T) {
	c := NewCollector(1)
	if err := c.AddState(1, 0, []float64{4}, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRank(1, 0, snapWithClock(1)); err != nil {
		t.Fatal(err)
	}
	// Start boundary 2, then abort mid-build (a failure landed).
	if err := c.AddRank(2, 0, snapWithClock(2)); err != nil {
		// p=1: a single AddRank completes the boundary only with state;
		// this build is open and incomplete.
		t.Fatal(err)
	}
	c.Abort()
	ck, err := c.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Epoch != 1 {
		t.Fatalf("Abort lost the published checkpoint: %+v", ck)
	}
	// The aborted boundary can be rebuilt from scratch.
	if err := c.AddState(2, 0, []float64{5}, 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRank(2, 0, snapWithClock(2)); err != nil {
		t.Fatal(err)
	}
	ck, err = c.Latest()
	if err != nil || ck.Epoch != 2 {
		t.Fatalf("rebuilt boundary 2 not published: %+v, %v", ck, err)
	}
}

func TestCollectorPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCollector(0) did not panic")
		}
	}()
	NewCollector(0)
}

func TestRandomPlanDeterministicAndBounded(t *testing.T) {
	a := RandomPlan(42, 8, 5, 0.1, 2.0)
	b := RandomPlan(42, 8, 5, 0.1, 2.0)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different plans: %q vs %q", a, b)
	}
	if a.Len() != 5 {
		t.Fatalf("plan has %d failures, want 5", a.Len())
	}
	if err := a.Validate(8); err != nil {
		t.Fatal(err)
	}
	for _, f := range a.Failures {
		if f.At < 0.1 || f.At >= 2.0 {
			t.Fatalf("failure time %v outside [0.1, 2.0)", f.At)
		}
	}
	if c := RandomPlan(43, 8, 5, 0.1, 2.0); c.String() == a.String() {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestStatsRecordFailure(t *testing.T) {
	var s Stats
	s.RecordFailure(&cluster.RankFailure{Rank: 2, At: 5}, 1, 3)
	s.RecordFailure(&cluster.RankFailure{Rank: 0, At: 2}, 0, 4) // restore after failure: no negative waste
	if len(s.Failures) != 2 || s.Failures[0] != (cluster.Failure{Rank: 2, At: 5}) {
		t.Fatalf("Failures = %+v", s.Failures)
	}
	if got, want := s.RestartEpochs, []int{1, 0}; got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("RestartEpochs = %v, want %v", got, want)
	}
	if s.WastedSim != 2 {
		t.Fatalf("WastedSim = %v, want 2 (second failure clamps at zero)", s.WastedSim)
	}
}
