package resilience_test

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/pipeline"
	"repro/internal/resilience"
)

// recoveryDataset is the same tiny SBM instance the backend
// differential sweep uses: large enough to exercise every phase,
// small enough that a trial (clean run + failed run + restarts, on
// both backends) stays in the low milliseconds.
func recoveryDataset() *datasets.Dataset {
	return datasets.SBM(datasets.SBMConfig{
		N: 128, Classes: 4, Features: 4,
		IntraDeg: 6, InterDeg: 2, Noise: 0.5,
		BatchSize: 16, Fanouts: []int{3, 2}, LayerWidth: 8, Seed: 11,
	})
}

// TestDifferentialCrashRecovery is the headline suite for the
// resilience subsystem: across randomized (seed, fail-rank, fail-time,
// checkpoint-interval) trials, a run that loses a rank mid-training
// and restarts — from its latest checkpoint when one exists, from
// scratch otherwise — must finish with a Result bit-identical to the
// same configuration run without any failure. "Bit-identical" is the
// full Result surface the backend differential pins: per-epoch stats,
// trained parameters (float-for-float), effective bulk, and the
// complete simulated-time cluster accounting. Both backends, all three
// training strategies.
//
// Topology stays nil and the feature cache stays off: the contention
// ledger and cache-residency state are deliberately not part of a
// checkpoint (a real restart re-warms its caches), so exact recovery
// is only promised for the pure α–β model — the same scope as
// cross-backend bit-identity.
func TestDifferentialCrashRecovery(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 12
	}
	// GNN_RECOVERY_TRIALS overrides the sweep size, mirroring
	// GNN_DIFFERENTIAL_TRIALS: CI's race job runs a reduced sweep.
	if s := os.Getenv("GNN_RECOVERY_TRIALS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad GNN_RECOVERY_TRIALS %q: want a positive integer", s)
		}
		trials = n
	}
	d := recoveryDataset()
	tables := []cluster.Collectives{
		{},
		{AllReduce: cluster.Ring, AllToAll: cluster.Pairwise},
		{AllReduce: cluster.Hierarchical},
	}
	rng := rand.New(rand.NewSource(20250613))
	run := func(cfg pipeline.Config, be cluster.Backend) *pipeline.Result {
		t.Helper()
		cfg.Backend = be
		res, err := pipeline.Run(d, cfg)
		if err != nil {
			t.Fatalf("%+v backend=%v: %v", cfg, be, err)
		}
		return res
	}
	fired := 0
	for trial := 0; trial < trials; trial++ {
		ps := []int{2, 4, 8}
		cfg := pipeline.Config{
			P:           ps[rng.Intn(len(ps))],
			Epochs:      2 + rng.Intn(2),
			Seed:        rng.Int63n(1 << 20),
			MaxBatches:  1 + rng.Intn(2),
			K:           rng.Intn(5), // 0 = KAll
			Collectives: tables[rng.Intn(len(tables))],
			// 0 = no checkpoints (restart from scratch); otherwise a
			// boundary every 1 or 2 epochs.
			CkptInterval: rng.Intn(3),
		}
		divs := []int{1}
		for c := 2; c <= cfg.P; c++ {
			if cfg.P%c == 0 {
				divs = append(divs, c)
			}
		}
		cfg.C = divs[rng.Intn(len(divs))]
		if rng.Intn(2) == 1 && cfg.C > 1 && cfg.P%(cfg.C*cfg.C) == 0 {
			cfg.Algorithm = pipeline.GraphPartitioned
			cfg.SparsityAware = rng.Intn(2) == 1
		} else {
			cfg.Overlap = rng.Intn(2) == 1
		}

		for _, be := range []cluster.Backend{cluster.GoroutineBackend, cluster.DESBackend} {
			clean := run(cfg, be)
			if clean.Recovery != nil && clean.Recovery.Attempts != 1 {
				t.Fatalf("trial %d backend=%v: unfailed run took %d attempts",
					trial, be, clean.Recovery.Attempts)
			}

			// Draw the failure inside the clean run's simulated span so
			// it almost always fires; mostly single failures (the spec's
			// trial shape), with an occasional two-failure plan to force
			// chained restarts.
			failCfg := cfg
			nFail := 1
			if trial%7 == 0 {
				nFail = 2
			}
			failCfg.Faults = resilience.RandomPlan(
				rng.Int63(), cfg.P, nFail,
				clean.Cluster.SimTime*0.05, clean.Cluster.SimTime*0.75)
			failed := run(failCfg, be)

			if failed.Recovery == nil {
				t.Fatalf("trial %d backend=%v: failed run reported no recovery stats", trial, be)
			}
			rec := failed.Recovery
			if rec.Attempts >= 2 {
				fired++
				if len(rec.Failures) != rec.Attempts-1 || len(rec.RestartEpochs) != rec.Attempts-1 {
					t.Fatalf("trial %d backend=%v: recovery stats inconsistent: %+v", trial, be, rec)
				}
				if cfg.CkptInterval == 0 {
					for _, e := range rec.RestartEpochs {
						if e != 0 {
							t.Fatalf("trial %d backend=%v: restarted from epoch %d with no checkpoints", trial, be, e)
						}
					}
				}
			}

			if !reflect.DeepEqual(clean.Epochs, failed.Epochs) {
				t.Fatalf("trial %d backend=%v %+v: epoch stats diverge after recovery\nclean:  %+v\nfailed: %+v",
					trial, be, failCfg, clean.Epochs, failed.Epochs)
			}
			if !reflect.DeepEqual(clean.Params, failed.Params) {
				t.Fatalf("trial %d backend=%v %+v: trained parameters diverge after recovery", trial, be, failCfg)
			}
			if clean.EffectiveK != failed.EffectiveK {
				t.Fatalf("trial %d backend=%v: EffectiveK %d vs %d", trial, be, clean.EffectiveK, failed.EffectiveK)
			}
			if !reflect.DeepEqual(clean.Cluster, failed.Cluster) {
				t.Fatalf("trial %d backend=%v %+v: cluster accounting diverges after recovery\nclean:  %+v\nfailed: %+v",
					trial, be, failCfg, clean.Cluster, failed.Cluster)
			}
		}
	}
	// The window [5%, 75%] of the clean simulated span should make the
	// vast majority of injected failures fire; if almost none did, the
	// suite is silently testing nothing.
	if fired < trials {
		t.Fatalf("only %d/%d trial-backend runs actually fired a failure; the injection window is wrong", fired, 2*trials)
	}
	t.Logf("%d/%d trial-backend runs fired at least one failure", fired, 2*trials)
}

// TestRecoveryFromScratchDeterministic pins the no-checkpoint restart
// path explicitly on a fixed config: with CkptInterval 0 a mid-run
// failure throws away everything, and the rebuilt-from-scratch second
// attempt must still reproduce the unfailed run exactly (fresh model,
// fresh optimizer, fresh cluster — no state leaks across attempts).
func TestRecoveryFromScratchDeterministic(t *testing.T) {
	d := recoveryDataset()
	cfg := pipeline.Config{P: 4, Epochs: 2, Seed: 7, MaxBatches: 2}
	clean, err := pipeline.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = resilience.FailAt(2, clean.Cluster.SimTime/2)
	failed, err := pipeline.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if failed.Recovery == nil || failed.Recovery.Attempts != 2 {
		t.Fatalf("recovery = %+v, want exactly 2 attempts", failed.Recovery)
	}
	if failed.Recovery.WastedSim <= 0 {
		t.Fatalf("WastedSim = %v, want > 0 for a from-scratch restart", failed.Recovery.WastedSim)
	}
	if !reflect.DeepEqual(clean.Params, failed.Params) || !reflect.DeepEqual(clean.Cluster, failed.Cluster) {
		t.Fatal("from-scratch recovery is not bit-identical to the unfailed run")
	}
}

// TestCheckpointShortensRecovery pins the point of checkpointing: with
// an every-epoch checkpoint interval, a late failure resumes from a
// late epoch and wastes less simulated work than the same failure with
// no checkpoints.
func TestCheckpointShortensRecovery(t *testing.T) {
	d := recoveryDataset()
	base := pipeline.Config{P: 4, Epochs: 4, Seed: 3, MaxBatches: 2}
	clean, err := pipeline.Run(d, base)
	if err != nil {
		t.Fatal(err)
	}
	failAt := clean.Cluster.SimTime * 0.9

	scratch := base
	scratch.Faults = resilience.FailAt(1, failAt)
	sres, err := pipeline.Run(d, scratch)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := base
	ckpt.CkptInterval = 1
	ckptClean, err := pipeline.Run(d, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	ckpt.Faults = resilience.FailAt(1, ckptClean.Cluster.SimTime*0.9)
	cres, err := pipeline.Run(d, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Recovery.Attempts != 2 || cres.Recovery.Attempts != 2 {
		t.Fatalf("attempts scratch=%+v ckpt=%+v, want 2 and 2", sres.Recovery, cres.Recovery)
	}
	if got := cres.Recovery.RestartEpochs[0]; got < 1 {
		t.Fatalf("checkpointed run restarted from epoch %d, want a later boundary", got)
	}
	if cres.Recovery.WastedSim >= sres.Recovery.WastedSim {
		t.Fatalf("checkpointing did not reduce wasted work: %v (ckpt) vs %v (scratch)",
			cres.Recovery.WastedSim, sres.Recovery.WastedSim)
	}
	if !reflect.DeepEqual(ckptClean.Params, cres.Params) || !reflect.DeepEqual(ckptClean.Cluster, cres.Cluster) {
		t.Fatal("checkpointed recovery is not bit-identical to its unfailed twin")
	}
}
