// Package resilience is the fault-tolerance layer over the simulated
// cluster: deterministic fail-stop injection plans, epoch-boundary
// checkpointing of the complete resumable training state, and the
// restart bookkeeping the training drivers (pipeline, baseline) use to
// survive injected failures.
//
// The contract the differential crash-recovery suite pins: a run that
// fails at simulated time t and restarts from its latest epoch-boundary
// checkpoint finishes with a Result bit-identical to a run with the
// same checkpoint schedule and no failure. Three mechanisms combine to
// make that hold exactly, not just approximately:
//
//   - The replicated training state (model parameters, Adam moments,
//     dropout mask-stream position) is captured once per boundary —
//     rank 0's copy, which equals every rank's copy because the
//     optimizer steps inside an AllReduce transform.
//   - Each rank's simulated-time accounting (clock, per-phase float
//     accumulators, traffic counters, finished forked streams) is
//     snapshotted via cluster.RankSnapshot, whose Restore re-interns
//     phases and re-materializes ghost streams so every float addition
//     after the restore point happens in the uninterrupted run's order.
//   - Checkpoint state always round-trips through the graphio binary
//     codec (encode + decode in memory) before a restore consumes it,
//     so every recovery exercises — and the differential suite
//     therefore verifies — the serialized form, not a shortcut through
//     live pointers.
//
// Failure plans enter only through cluster.CostModel.Faults (the
// FaultPlan seam); the faultseam analyzer enforces that no other
// package constructs plan values directly — use FailAt / Plan /
// RandomPlan.
package resilience

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/cluster"
	"repro/internal/graphio"
)

// FailAt returns a single-failure plan: rank halts when its simulated
// clock reaches at (seconds).
func FailAt(rank int, at float64) *cluster.FaultPlan {
	return &cluster.FaultPlan{Failures: []cluster.Failure{{Rank: rank, At: at}}}
}

// Plan builds a plan from explicit (rank, at) pairs.
func Plan(failures ...cluster.Failure) *cluster.FaultPlan {
	if len(failures) == 0 {
		return nil
	}
	return &cluster.FaultPlan{Failures: append([]cluster.Failure(nil), failures...)}
}

// Failure constructs one plan entry; with Plan it is the composable
// form of FailAt.
func Failure(rank int, at float64) cluster.Failure {
	return cluster.Failure{Rank: rank, At: at}
}

// RandomPlan draws k failures deterministically from seed: ranks
// uniform over [0, p), fail times uniform over [minAt, maxAt). Multiple
// failures may land on one rank (the earliest fires; after a restart
// retires it, a later one can fire on the next attempt). Used by the
// sweep harness and the randomized differential trials.
func RandomPlan(seed int64, p, k int, minAt, maxAt float64) *cluster.FaultPlan {
	if k <= 0 || p <= 0 || !(maxAt > minAt) || !(minAt >= 0) {
		panic(fmt.Sprintf("resilience: bad RandomPlan args p=%d k=%d window=[%v,%v)", p, k, minAt, maxAt))
	}
	rng := rand.New(rand.NewSource(seed))
	fs := make([]cluster.Failure, k)
	for i := range fs {
		at := minAt + rng.Float64()*(maxAt-minAt)
		if !(at > 0) {
			at = minAt + (maxAt-minAt)/2
		}
		fs[i] = cluster.Failure{Rank: rng.Intn(p), At: at}
	}
	return &cluster.FaultPlan{Failures: fs}
}

// Stats reports what recovery cost: how many attempts a run took, which
// injected failures fired, and how much simulated work was discarded
// (time from each attempt's restore point to its failure). A clean run
// has Attempts == 1 and zeroes elsewhere. Stats is diagnostic output —
// the differential suite excludes it from bit-identity comparison,
// since an unfailed run has nothing to record here.
type Stats struct {
	// Attempts counts cluster runs, including the successful final one.
	Attempts int
	// Failures lists the injected failures that fired, in firing order.
	Failures []cluster.Failure
	// RestartEpochs records, per restart, the epoch index the attempt
	// resumed from (0 = from scratch).
	RestartEpochs []int
	// WastedSim sums, over failures, the simulated seconds between the
	// restore point the restart resumes from and the failure — the
	// work past the latest surviving checkpoint, thrown away.
	WastedSim float64
}

// RecordFailure logs one fired failure: the restart will resume from
// resumeEpoch with ranks restored to restoreClock (0 when restarting
// from scratch).
func (s *Stats) RecordFailure(rf *cluster.RankFailure, resumeEpoch int, restoreClock float64) {
	s.Failures = append(s.Failures, cluster.Failure{Rank: rf.Rank, At: rf.At})
	s.RestartEpochs = append(s.RestartEpochs, resumeEpoch)
	if rf.At > restoreClock {
		s.WastedSim += rf.At - restoreClock
	}
}

// CheckpointBytes models the serialized size of one rank's share of a
// checkpoint write: parameters plus both Adam moment vectors at 8
// bytes each, plus a small fixed header. Each rank charges this over
// HostLink at every boundary — checkpointing is not free, and the
// interval sweep in the bench harness measures exactly this overhead
// against the recovery time it buys.
func CheckpointBytes(numParams int) int64 {
	return int64(numParams)*8*3 + 64
}

// PhaseCheckpoint is the phase bucket checkpoint writes accrue to.
const PhaseCheckpoint = "checkpoint"

// Collector assembles epoch-boundary checkpoints from per-rank
// contributions during a cluster run and publishes each one once it is
// complete (all p rank snapshots plus rank 0's training state).
//
// Ranks reach boundary e at different wall-clock moments, but the
// world collective inside every training step orders boundaries: a
// rank can only be at boundary e+1 after every rank has passed
// boundary e. The collector therefore keeps at most one boundary under
// construction and treats overlap as an invariant breach.
//
// The published form is the serialized checkpoint (graphio bytes), so
// a restore must go through the codec.
type Collector struct {
	mu    sync.Mutex
	p     int
	epoch int // boundary under construction; -1 = none
	build *graphio.Checkpoint
	got   int
	state bool

	latest      []byte
	latestEpoch int     // completed epochs in latest; 0 = none yet
	latestClock float64 // max rank Main clock in latest (restore point)
}

// NewCollector returns a collector for p ranks.
func NewCollector(p int) *Collector {
	if p <= 0 {
		panic("resilience: collector needs p > 0")
	}
	return &Collector{p: p, epoch: -1}
}

// AddRank contributes rank's accounting snapshot at boundary epoch
// (the number of completed epochs). When the boundary is complete the
// checkpoint is serialized and published.
func (c *Collector) AddRank(epoch, rank int, snap cluster.RankSnapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.open(epoch); err != nil {
		return err
	}
	if c.build.Ranks[rank].Phases != nil || c.build.Ranks[rank].OpCount != nil {
		return fmt.Errorf("resilience: duplicate snapshot from rank %d at boundary %d", rank, epoch)
	}
	c.build.Ranks[rank] = snap
	c.got++
	return c.finishLocked()
}

// AddState contributes the replicated training state at boundary epoch
// (call from rank 0, once per boundary).
func (c *Collector) AddState(epoch int, dropSeed int64, params []float64, optT int, optM, optV []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.open(epoch); err != nil {
		return err
	}
	if c.state {
		return fmt.Errorf("resilience: duplicate training state at boundary %d", epoch)
	}
	c.build.DropSeed = dropSeed
	c.build.Params = append([]float64(nil), params...)
	c.build.OptT = optT
	c.build.OptM = append([]float64(nil), optM...)
	c.build.OptV = append([]float64(nil), optV...)
	c.state = true
	return c.finishLocked()
}

func (c *Collector) open(epoch int) error {
	if c.epoch == epoch {
		return nil
	}
	if c.epoch != -1 {
		return fmt.Errorf("resilience: boundary %d opened while boundary %d incomplete (%d/%d ranks, state=%v)",
			epoch, c.epoch, c.got, c.p, c.state)
	}
	c.epoch = epoch
	c.build = &graphio.Checkpoint{Epoch: epoch, Ranks: make([]cluster.RankSnapshot, c.p)}
	c.got = 0
	c.state = false
	return nil
}

func (c *Collector) finishLocked() error {
	if c.got < c.p || !c.state {
		return nil
	}
	var buf bytes.Buffer
	if err := graphio.WriteCheckpoint(&buf, c.build); err != nil {
		return err
	}
	clock := 0.0
	for i := range c.build.Ranks {
		if t := c.build.Ranks[i].Main.Clock; t > clock {
			clock = t
		}
	}
	c.latest = buf.Bytes()
	c.latestEpoch = c.build.Epoch
	c.latestClock = clock
	c.epoch = -1
	c.build = nil
	return nil
}

// Abort discards a partially-built boundary (the published latest
// checkpoint is kept). The restart driver calls it after a failure:
// some ranks may have contributed snapshots at a boundary the failed
// attempt never completed, and the restarted run will reach that
// boundary again from scratch.
func (c *Collector) Abort() {
	c.mu.Lock()
	c.epoch = -1
	c.build = nil
	c.got = 0
	c.state = false
	c.mu.Unlock()
}

// Latest decodes and returns the most recent complete checkpoint, or
// nil if none has been published. Every call decodes the serialized
// bytes afresh, so restores always consume codec output.
func (c *Collector) Latest() (*graphio.Checkpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.latest == nil {
		return nil, nil
	}
	return graphio.ReadCheckpoint(bytes.NewReader(c.latest))
}

// LatestClock returns the restore point's simulated time (max rank
// clock in the latest checkpoint), 0 when none exists. Drivers use it
// to price wasted work.
func (c *Collector) LatestClock() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latestClock
}
