package graphio

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// randCheckpoint builds a structurally rich checkpoint from a seeded
// stream: multiple ranks, ghost streams, phase maps with several keys,
// negative and special-valued floats.
func randCheckpoint(seed int64) *Checkpoint {
	rng := rand.New(rand.NewSource(seed))
	floats := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
		}
		return out
	}
	phases := []string{"sampling", "feature-fetch", "propagation", "stall", "checkpoint"}
	stream := func() cluster.StreamSnapshot {
		n := 1 + rng.Intn(len(phases))
		touched := make([]bool, n)
		for i := range touched {
			touched[i] = rng.Intn(2) == 0
		}
		return cluster.StreamSnapshot{
			Clock:        rng.Float64() * 100,
			PhaseTotal:   floats(n),
			PhaseComm:    floats(n),
			PhaseTouched: touched,
		}
	}
	p := 1 + rng.Intn(4)
	ck := &Checkpoint{
		Epoch:    rng.Intn(10),
		DropSeed: rng.Int63(),
		Params:   floats(16 + rng.Intn(64)),
		OptT:     rng.Intn(100),
	}
	ck.OptM = floats(len(ck.Params))
	ck.OptV = floats(len(ck.Params))
	for i := 0; i < p; i++ {
		snap := cluster.RankSnapshot{
			Phases:    phases[:1+rng.Intn(len(phases))],
			BytesSent: rng.Int63n(1 << 40),
			OpCount:   map[string]int64{"allreduce": rng.Int63n(1000), "alltoallv": rng.Int63n(1000)},
			OpBytes:   map[string]int64{"allreduce": rng.Int63n(1 << 30)},
			LinkBytes: map[string][3]int64{
				"sampling": {rng.Int63n(1 << 20), rng.Int63n(1 << 20), rng.Int63n(1 << 20)},
				"stall":    {0, 1, 2},
			},
			Main: stream(),
		}
		for s := rng.Intn(3); s > 0; s-- {
			snap.Streams = append(snap.Streams, stream())
		}
		ck.Ranks = append(ck.Ranks, snap)
	}
	return ck
}

// encode serializes a checkpoint or fails the test.
func encodeCkpt(t *testing.T, ck *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointRoundTrip is the property test: across seeded random
// checkpoints, write→read must reproduce every field (bitwise on
// floats) and re-encoding must be byte-identical (the encoding is
// deterministic: sorted map keys).
func TestCheckpointRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		ck := randCheckpoint(seed)
		data := encodeCkpt(t, ck)
		got, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Epoch != ck.Epoch || got.DropSeed != ck.DropSeed || got.OptT != ck.OptT {
			t.Fatalf("seed %d: header fields changed: %+v vs %+v", seed, got, ck)
		}
		for name, pair := range map[string][2][]float64{
			"Params": {got.Params, ck.Params},
			"OptM":   {got.OptM, ck.OptM},
			"OptV":   {got.OptV, ck.OptV},
		} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("seed %d: %s length %d != %d", seed, name, len(pair[0]), len(pair[1]))
			}
			for i := range pair[0] {
				if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
					t.Fatalf("seed %d: %s[%d] changed", seed, name, i)
				}
			}
		}
		if len(got.Ranks) != len(ck.Ranks) {
			t.Fatalf("seed %d: rank count %d != %d", seed, len(got.Ranks), len(ck.Ranks))
		}
		for i := range got.Ranks {
			if !reflect.DeepEqual(got.Ranks[i].Phases, ck.Ranks[i].Phases) ||
				got.Ranks[i].BytesSent != ck.Ranks[i].BytesSent ||
				!reflect.DeepEqual(got.Ranks[i].OpCount, ck.Ranks[i].OpCount) ||
				!reflect.DeepEqual(got.Ranks[i].OpBytes, ck.Ranks[i].OpBytes) ||
				!reflect.DeepEqual(got.Ranks[i].LinkBytes, ck.Ranks[i].LinkBytes) {
				t.Fatalf("seed %d: rank %d metadata changed", seed, i)
			}
		}
		if again := encodeCkpt(t, got); !bytes.Equal(again, data) {
			t.Fatalf("seed %d: re-encoding is not byte-identical", seed)
		}
	}
}

// TestCheckpointSpecialFloats pins bitwise float transport: NaN
// payloads, infinities and negative zero survive exactly.
func TestCheckpointSpecialFloats(t *testing.T) {
	specials := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1), math.SmallestNonzeroFloat64, -math.MaxFloat64,
	}
	ck := &Checkpoint{Params: specials, OptM: specials, OptV: specials}
	got, err := ReadCheckpoint(bytes.NewReader(encodeCkpt(t, ck)))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range specials {
		if math.Float64bits(got.Params[i]) != math.Float64bits(v) {
			t.Fatalf("special float %v changed to %v", v, got.Params[i])
		}
	}
}

// TestCheckpointTruncation: every strict prefix of a valid checkpoint
// must produce an error — cleanly, never a panic.
func TestCheckpointTruncation(t *testing.T) {
	data := encodeCkpt(t, randCheckpoint(7))
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadCheckpoint(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes was accepted", cut, len(data))
		}
	}
}

// TestCheckpointCorruption: magic and version skew error cleanly with
// identifiable messages.
func TestCheckpointCorruption(t *testing.T) {
	data := encodeCkpt(t, randCheckpoint(11))

	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt magic accepted")
	}

	// Version field is the first int64 after the 7-byte magic.
	skewed := append([]byte(nil), data...)
	skewed[7] = 0x7f
	if _, err := ReadCheckpoint(bytes.NewReader(skewed)); err == nil {
		t.Fatal("version skew accepted")
	}

	// A params-only checkpoint ("GNNCK1\n") is a different format and
	// must be rejected by magic, not misparsed.
	var pbuf bytes.Buffer
	if err := WriteParams(&pbuf, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(bytes.NewReader(pbuf.Bytes())); err == nil {
		t.Fatal("params-only file accepted as resumable checkpoint")
	}
}

// TestCheckpointHostileLengths: lying length headers must error before
// allocating anything input-length-independent.
func TestCheckpointHostileLengths(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(ckptMagic)
	_ = writeInts(&buf, ckptVersion, 0, 0, 0)
	_ = writeInts(&buf, int64(1)<<40) // params length far beyond the payload
	if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("absurd params length accepted")
	}

	buf.Reset()
	buf.Write(ckptMagic)
	_ = writeInts(&buf, ckptVersion, 0, 0, 0)
	for i := 0; i < 3; i++ {
		_ = writeInts(&buf, 0) // empty params/optM/optV
	}
	_ = writeInts(&buf, int64(1)<<30) // absurd rank count
	if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("absurd rank count accepted")
	}

	// A plausible-looking small claim followed by EOF must be an error,
	// not a partial value.
	buf.Reset()
	buf.Write(ckptMagic)
	_ = writeInts(&buf, ckptVersion, 0, 0, 0)
	_ = writeInts(&buf, 8) // claims 8 params, provides none
	if _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != io.ErrUnexpectedEOF && err != io.EOF {
		t.Fatalf("short params payload: got %v, want unexpected EOF", err)
	}
}
