package graphio

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/sparse"
)

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		coo := sparse.NewCOO(1+rng.Intn(30), 1+rng.Intn(30), 50)
		for i := 0; i < 40; i++ {
			coo.Add(rng.Intn(coo.Rows), rng.Intn(coo.Cols), rng.NormFloat64())
		}
		m := coo.ToCSR()
		var buf bytes.Buffer
		if err := WriteCSR(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSR(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.Equal(m, back, 0) {
			t.Fatalf("trial %d: round trip changed matrix", trial)
		}
	}
}

func TestCSRRejectsCorruptHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSR(&buf, sparse.Identity(3)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] = 0xFF // corrupt rows to a huge/negative value
	data[7] = 0xFF
	if _, err := ReadCSR(bytes.NewReader(data)); err == nil {
		t.Fatal("expected error for corrupt header")
	}
}

func TestCSRTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSR(&buf, sparse.Identity(5)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-9]
	if _, err := ReadCSR(bytes.NewReader(data)); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	m := dense.New(7, 5)
	for i := range m.Data {
		m.Data[i] = float64(i) * 0.25
	}
	var buf bytes.Buffer
	if err := WriteDense(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != 7 || back.Cols != 5 {
		t.Fatal("shape lost")
	}
	for i := range m.Data {
		if back.Data[i] != m.Data[i] {
			t.Fatal("values lost")
		}
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || back.NumClasses != d.NumClasses ||
		back.BatchSize != d.BatchSize || back.LayerWidth != d.LayerWidth {
		t.Fatal("metadata lost")
	}
	if !sparse.Equal(back.Graph.Adj, d.Graph.Adj, 0) {
		t.Fatal("adjacency lost")
	}
	for i := range d.Features.Data {
		if back.Features.Data[i] != d.Features.Data[i] {
			t.Fatal("features lost")
		}
	}
	for i := range d.Labels {
		if back.Labels[i] != d.Labels[i] {
			t.Fatal("labels lost")
		}
	}
	if len(back.Train) != len(d.Train) || len(back.Test) != len(d.Test) {
		t.Fatal("splits lost")
	}
	for i := range d.Fanouts {
		if back.Fanouts[i] != d.Fanouts[i] {
			t.Fatal("fanouts lost")
		}
	}
}

func TestDatasetBadMagic(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader([]byte("NOTADS1\nxxxx"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestDatasetEmptyStream(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty stream")
	}
}

func TestParamsRoundTrip(t *testing.T) {
	params := make([]float64, 1000)
	for i := range params {
		params[i] = float64(i) * 0.001
	}
	var buf bytes.Buffer
	if err := WriteParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	back, err := ReadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1000 {
		t.Fatalf("length %d", len(back))
	}
	for i := range params {
		if back[i] != params[i] {
			t.Fatal("values lost")
		}
	}
}

func TestParamsBadMagic(t *testing.T) {
	if _, err := ReadParams(bytes.NewReader([]byte("NOPE!!\nxxxxxxxx"))); err == nil {
		t.Fatal("expected magic error")
	}
}

// failAfter returns an io.Writer that errors after n bytes, for
// error-path coverage.
type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errShort
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errShort
	}
	f.n -= len(p)
	return len(p), nil
}

var errShort = bytes.ErrTooLarge

func TestWriteCSRPropagatesErrors(t *testing.T) {
	m := sparse.Identity(64)
	for _, budget := range []int{0, 8, 24, 600, 1100} {
		if err := WriteCSR(&failAfter{n: budget}, m); err == nil {
			t.Fatalf("budget %d: expected write error", budget)
		}
	}
}

func TestWriteDensePropagatesErrors(t *testing.T) {
	m := dense.New(16, 16)
	for _, budget := range []int{0, 8, 100} {
		if err := WriteDense(&failAfter{n: budget}, m); err == nil {
			t.Fatalf("budget %d: expected write error", budget)
		}
	}
}

func TestWriteDatasetPropagatesErrors(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	for _, budget := range []int{0, 4, 40, 4000} {
		if err := WriteDataset(&failAfter{n: budget}, d); err == nil {
			t.Fatalf("budget %d: expected write error", budget)
		}
	}
}

func TestReadDatasetTruncations(t *testing.T) {
	d := datasets.ProductsLike(datasets.Tiny)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0.01, 0.1, 0.5, 0.95} {
		cut := int(float64(len(full)) * frac)
		if _, err := ReadDataset(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestReadParamsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadParams(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Fatal("expected truncation error")
	}
}
