package graphio

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datasets"
)

// Native Go fuzz targets for the binary readers: arbitrary input must
// produce an error or a structurally valid value — never a panic and
// never an input-length-independent allocation. Seed corpora live
// under testdata/fuzz (valid serializations plus truncations and
// header mutations); CI runs each target for a short budget.

// fuzzDataset is a small valid dataset serialization used as the
// well-formed seed.
func fuzzDataset(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := WriteDataset(&buf, datasets.DefaultSBM()); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadDataset(f *testing.F) {
	valid := fuzzDataset(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncation
	f.Add(valid[:7])            // magic only
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xff // corrupt the name length
	f.Add(mutated)
	f.Add([]byte("GNNDS1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must hand back a consistent dataset: the
		// invariants the training pipeline relies on without checking.
		if d.Graph.NumVertices() != d.Features.Rows || len(d.Labels) != d.Graph.NumVertices() {
			t.Fatalf("accepted inconsistent dataset: %d vertices, %d feature rows, %d labels",
				d.Graph.NumVertices(), d.Features.Rows, len(d.Labels))
		}
		if err := d.Graph.Adj.Validate(); err != nil {
			t.Fatalf("accepted invalid adjacency: %v", err)
		}
	})
}

func FuzzReadCSR(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCSR(&buf, datasets.DefaultSBM().Graph.Adj); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-9]) // truncated payload
	f.Add(valid[:24])           // header only
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadCSR(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ReadCSR accepted an invalid matrix: %v", err)
		}
	})
}

func FuzzReadParams(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, []float64{1, 2.5, -3}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("GNNCK1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadParams(bytes.NewReader(data))
	})
}

// FuzzCheckpointRead covers the resumable-checkpoint reader: arbitrary
// bytes must produce an error or a checkpoint that survives a
// write→read round trip byte-identically — never a panic and never an
// allocation beyond the input's real size.
func FuzzCheckpointRead(f *testing.F) {
	var buf bytes.Buffer
	ck := &Checkpoint{
		Epoch:    3,
		DropSeed: 42,
		Params:   []float64{1, -2.5, 3e-9},
		OptT:     7,
		OptM:     []float64{0.1, 0.2, 0.3},
		OptV:     []float64{0.01, 0.02, 0.03},
		Ranks: []cluster.RankSnapshot{{
			Phases:    []string{"sampling", "propagation"},
			BytesSent: 1 << 20,
			OpCount:   map[string]int64{"allreduce": 12},
			OpBytes:   map[string]int64{"allreduce": 4096},
			LinkBytes: map[string][3]int64{"propagation": {1, 2, 3}},
			Main:      cluster.StreamSnapshot{Clock: 1.5, PhaseTotal: []float64{1, 0.5}, PhaseComm: []float64{0, 0.25}, PhaseTouched: []bool{true, true}},
			Streams:   []cluster.StreamSnapshot{{Clock: 1.25, PhaseTotal: []float64{1}, PhaseComm: []float64{0}, PhaseTouched: []bool{true}}},
		}},
	}
	if err := WriteCheckpoint(&buf, ck); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncation
	f.Add(valid[:7])            // magic only
	mutated := append([]byte(nil), valid...)
	mutated[8] ^= 0xff // version skew
	f.Add(mutated)
	f.Add([]byte("GNNRS1\n"))
	f.Add([]byte("GNNCK1\n")) // params-only magic: wrong format
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCheckpoint(&out, ck); err != nil {
			t.Fatalf("re-serializing an accepted checkpoint failed: %v", err)
		}
		ck2, err := ReadCheckpoint(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading a re-serialized checkpoint failed: %v", err)
		}
		var out2 bytes.Buffer
		if err := WriteCheckpoint(&out2, ck2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("checkpoint round trip is not byte-stable")
		}
	})
}

// FuzzRoundTrip pins write→read identity through the fuzzer's mutation
// of the dataset-shaping knobs it can reach from raw bytes: any input
// ReadDataset accepts must survive a re-serialization round trip.
func FuzzRoundTrip(f *testing.F) {
	f.Add(fuzzDataset(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDataset(&buf, d); err != nil {
			t.Fatalf("re-serializing an accepted dataset failed: %v", err)
		}
		d2, err := ReadDataset(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading a re-serialized dataset failed: %v", err)
		}
		if d2.Graph.NumVertices() != d.Graph.NumVertices() || d2.Graph.NumEdges() != d.Graph.NumEdges() {
			t.Fatalf("round trip changed the graph: %d/%d -> %d/%d vertices/edges",
				d.Graph.NumVertices(), d.Graph.NumEdges(), d2.Graph.NumVertices(), d2.Graph.NumEdges())
		}
	})
}
