package graphio

import (
	"bytes"
	"testing"

	"repro/internal/datasets"
)

// Native Go fuzz targets for the binary readers: arbitrary input must
// produce an error or a structurally valid value — never a panic and
// never an input-length-independent allocation. Seed corpora live
// under testdata/fuzz (valid serializations plus truncations and
// header mutations); CI runs each target for a short budget.

// fuzzDataset is a small valid dataset serialization used as the
// well-formed seed.
func fuzzDataset(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := WriteDataset(&buf, datasets.DefaultSBM()); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadDataset(f *testing.F) {
	valid := fuzzDataset(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncation
	f.Add(valid[:7])            // magic only
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xff // corrupt the name length
	f.Add(mutated)
	f.Add([]byte("GNNDS1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must hand back a consistent dataset: the
		// invariants the training pipeline relies on without checking.
		if d.Graph.NumVertices() != d.Features.Rows || len(d.Labels) != d.Graph.NumVertices() {
			t.Fatalf("accepted inconsistent dataset: %d vertices, %d feature rows, %d labels",
				d.Graph.NumVertices(), d.Features.Rows, len(d.Labels))
		}
		if err := d.Graph.Adj.Validate(); err != nil {
			t.Fatalf("accepted invalid adjacency: %v", err)
		}
	})
}

func FuzzReadCSR(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCSR(&buf, datasets.DefaultSBM().Graph.Adj); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-9]) // truncated payload
	f.Add(valid[:24])           // header only
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadCSR(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ReadCSR accepted an invalid matrix: %v", err)
		}
	})
}

func FuzzReadParams(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, []float64{1, 2.5, -3}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("GNNCK1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadParams(bytes.NewReader(data))
	})
}

// FuzzRoundTrip pins write→read identity through the fuzzer's mutation
// of the dataset-shaping knobs it can reach from raw bytes: any input
// ReadDataset accepts must survive a re-serialization round trip.
func FuzzRoundTrip(f *testing.F) {
	f.Add(fuzzDataset(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDataset(&buf, d); err != nil {
			t.Fatalf("re-serializing an accepted dataset failed: %v", err)
		}
		d2, err := ReadDataset(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading a re-serialized dataset failed: %v", err)
		}
		if d2.Graph.NumVertices() != d.Graph.NumVertices() || d2.Graph.NumEdges() != d.Graph.NumEdges() {
			t.Fatalf("round trip changed the graph: %d/%d -> %d/%d vertices/edges",
				d.Graph.NumVertices(), d.Graph.NumEdges(), d2.Graph.NumVertices(), d2.Graph.NumEdges())
		}
	})
}
