package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/cluster"
)

// Checkpoint is the complete resumable training state captured at an
// epoch boundary: everything a restarted run needs to continue
// bit-identically to an uninterrupted one. Params / optimizer moments /
// DropSeed come from rank 0 (the state is replicated, so one copy
// suffices); Ranks holds the per-rank simulated-time accounting
// snapshots (clocks, phase accumulators, traffic counters) that let the
// restored run's simulated timeline continue the exact float-addition
// sequences of the original.
type Checkpoint struct {
	// Epoch is the number of completed epochs (the restart resumes at
	// epoch index Epoch).
	Epoch int
	// DropSeed is the dropout mask-stream position (RNG stream state).
	DropSeed int64
	// Params is the flat model parameter vector.
	Params []float64
	// OptT / OptM / OptV are the Adam step count and moment vectors
	// (nil moments = optimizer not yet stepped).
	OptT int
	OptM []float64
	OptV []float64
	// Ranks holds one accounting snapshot per rank, in rank order.
	Ranks []cluster.RankSnapshot
}

// ckptMagic distinguishes resumable-state checkpoints from the
// params-only "GNNCK1\n" files; ckptVersion gates layout skew.
var ckptMagic = []byte("GNNRS1\n")

const ckptVersion = 1

// WriteCheckpoint serializes a resumable training checkpoint. The
// encoding is deterministic (map keys are sorted), so identical states
// produce identical bytes.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(ckptMagic); err != nil {
		return err
	}
	if err := writeInts(bw, ckptVersion, int64(ck.Epoch), ck.DropSeed, int64(ck.OptT)); err != nil {
		return err
	}
	for _, fs := range [][]float64{ck.Params, ck.OptM, ck.OptV} {
		if err := writeFloatSlice(bw, fs); err != nil {
			return err
		}
	}
	if err := writeInts(bw, int64(len(ck.Ranks))); err != nil {
		return err
	}
	for i := range ck.Ranks {
		if err := writeRankSnapshot(bw, &ck.Ranks[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint. Any
// truncation, corruption or version skew yields an error — never a
// panic, and never an allocation larger than the input's real size
// (fuzz-pinned, like the other graphio readers).
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if string(head) != string(ckptMagic) {
		return nil, fmt.Errorf("graphio: bad resumable-checkpoint magic %q", head)
	}
	hdr, err := readInts(br, 4)
	if err != nil {
		return nil, err
	}
	if hdr[0] != ckptVersion {
		return nil, fmt.Errorf("graphio: unsupported checkpoint version %d (want %d)", hdr[0], ckptVersion)
	}
	if hdr[1] < 0 || hdr[1] > maxWireElems {
		return nil, fmt.Errorf("graphio: implausible checkpoint epoch %d", hdr[1])
	}
	if hdr[3] < 0 || hdr[3] > maxWireElems {
		return nil, fmt.Errorf("graphio: implausible optimizer step count %d", hdr[3])
	}
	ck := &Checkpoint{Epoch: int(hdr[1]), DropSeed: hdr[2], OptT: int(hdr[3])}
	if ck.Params, err = readFloatSlice(br); err != nil {
		return nil, err
	}
	if ck.OptM, err = readFloatSlice(br); err != nil {
		return nil, err
	}
	if ck.OptV, err = readFloatSlice(br); err != nil {
		return nil, err
	}
	n, err := readInts(br, 1)
	if err != nil {
		return nil, err
	}
	// Rank counts are tiny in practice; 1<<20 is far above any p while
	// keeping a lying header's snapshot loop bounded.
	if n[0] < 0 || n[0] > 1<<20 {
		return nil, fmt.Errorf("graphio: implausible rank count %d", n[0])
	}
	ck.Ranks = make([]cluster.RankSnapshot, 0, capHint(int(n[0])))
	for i := int64(0); i < n[0]; i++ {
		snap, err := readRankSnapshot(br)
		if err != nil {
			return nil, err
		}
		ck.Ranks = append(ck.Ranks, snap)
	}
	return ck, nil
}

func writeRankSnapshot(w io.Writer, snap *cluster.RankSnapshot) error {
	if err := writeInts(w, int64(len(snap.Phases))); err != nil {
		return err
	}
	for _, name := range snap.Phases {
		if err := writeString(w, name); err != nil {
			return err
		}
	}
	if err := writeInts(w, snap.BytesSent); err != nil {
		return err
	}
	for _, m := range []map[string]int64{snap.OpCount, snap.OpBytes} {
		if err := writeInts(w, int64(len(m))); err != nil {
			return err
		}
		for _, k := range sortedKeys(m) {
			if err := writeString(w, k); err != nil {
				return err
			}
			if err := writeInts(w, m[k]); err != nil {
				return err
			}
		}
	}
	if err := writeInts(w, int64(len(snap.LinkBytes))); err != nil {
		return err
	}
	lk := make([]string, 0, len(snap.LinkBytes))
	for k := range snap.LinkBytes {
		lk = append(lk, k)
	}
	sort.Strings(lk)
	for _, k := range lk {
		if err := writeString(w, k); err != nil {
			return err
		}
		v := snap.LinkBytes[k]
		if err := writeInts(w, v[0], v[1], v[2]); err != nil {
			return err
		}
	}
	if err := writeStreamSnapshot(w, &snap.Main); err != nil {
		return err
	}
	if err := writeInts(w, int64(len(snap.Streams))); err != nil {
		return err
	}
	for i := range snap.Streams {
		if err := writeStreamSnapshot(w, &snap.Streams[i]); err != nil {
			return err
		}
	}
	return nil
}

func readRankSnapshot(r io.Reader) (cluster.RankSnapshot, error) {
	var snap cluster.RankSnapshot
	n, err := readInts(r, 1)
	if err != nil {
		return snap, err
	}
	if n[0] < 0 || n[0] > maxWireElems {
		return snap, fmt.Errorf("graphio: implausible phase count %d", n[0])
	}
	snap.Phases = make([]string, 0, capHint(int(n[0])))
	for i := int64(0); i < n[0]; i++ {
		name, err := readString(r)
		if err != nil {
			return snap, err
		}
		snap.Phases = append(snap.Phases, name)
	}
	bs, err := readInts(r, 1)
	if err != nil {
		return snap, err
	}
	snap.BytesSent = bs[0]
	for _, dst := range []*map[string]int64{&snap.OpCount, &snap.OpBytes} {
		cnt, err := readInts(r, 1)
		if err != nil {
			return snap, err
		}
		if cnt[0] < 0 || cnt[0] > maxWireElems {
			return snap, fmt.Errorf("graphio: implausible map size %d", cnt[0])
		}
		m := make(map[string]int64, capHint(int(cnt[0])))
		for i := int64(0); i < cnt[0]; i++ {
			k, err := readString(r)
			if err != nil {
				return snap, err
			}
			v, err := readInts(r, 1)
			if err != nil {
				return snap, err
			}
			m[k] = v[0]
		}
		*dst = m
	}
	cnt, err := readInts(r, 1)
	if err != nil {
		return snap, err
	}
	if cnt[0] < 0 || cnt[0] > maxWireElems {
		return snap, fmt.Errorf("graphio: implausible map size %d", cnt[0])
	}
	snap.LinkBytes = make(map[string][3]int64, capHint(int(cnt[0])))
	for i := int64(0); i < cnt[0]; i++ {
		k, err := readString(r)
		if err != nil {
			return snap, err
		}
		v, err := readInts(r, 3)
		if err != nil {
			return snap, err
		}
		snap.LinkBytes[k] = [3]int64{v[0], v[1], v[2]}
	}
	if snap.Main, err = readStreamSnapshot(r); err != nil {
		return snap, err
	}
	cnt, err = readInts(r, 1)
	if err != nil {
		return snap, err
	}
	if cnt[0] < 0 || cnt[0] > maxWireElems {
		return snap, fmt.Errorf("graphio: implausible stream count %d", cnt[0])
	}
	snap.Streams = make([]cluster.StreamSnapshot, 0, capHint(int(cnt[0])))
	for i := int64(0); i < cnt[0]; i++ {
		ss, err := readStreamSnapshot(r)
		if err != nil {
			return snap, err
		}
		snap.Streams = append(snap.Streams, ss)
	}
	return snap, nil
}

func writeStreamSnapshot(w io.Writer, ss *cluster.StreamSnapshot) error {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(ss.Clock))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	if err := writeFloatSlice(w, ss.PhaseTotal); err != nil {
		return err
	}
	if err := writeFloatSlice(w, ss.PhaseComm); err != nil {
		return err
	}
	if err := writeInts(w, int64(len(ss.PhaseTouched))); err != nil {
		return err
	}
	b := make([]byte, 1)
	for _, t := range ss.PhaseTouched {
		b[0] = 0
		if t {
			b[0] = 1
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func readStreamSnapshot(r io.Reader) (cluster.StreamSnapshot, error) {
	var ss cluster.StreamSnapshot
	buf := make([]byte, 8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return ss, err
	}
	ss.Clock = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	var err error
	if ss.PhaseTotal, err = readFloatSlice(r); err != nil {
		return ss, err
	}
	if ss.PhaseComm, err = readFloatSlice(r); err != nil {
		return ss, err
	}
	n, err := readInts(r, 1)
	if err != nil {
		return ss, err
	}
	if n[0] < 0 || n[0] > maxWireElems {
		return ss, fmt.Errorf("graphio: implausible touched-slot count %d", n[0])
	}
	ss.PhaseTouched = make([]bool, 0, capHint(int(n[0])))
	b := make([]byte, 1)
	for i := int64(0); i < n[0]; i++ {
		if _, err := io.ReadFull(r, b); err != nil {
			return ss, err
		}
		ss.PhaseTouched = append(ss.PhaseTouched, b[0] != 0)
	}
	return ss, nil
}

func writeFloatSlice(w io.Writer, s []float64) error {
	if err := writeInts(w, int64(len(s))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range s {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func readFloatSlice(r io.Reader) ([]float64, error) {
	n, err := readInts(r, 1)
	if err != nil {
		return nil, err
	}
	if n[0] < 0 || n[0] > maxWireElems {
		return nil, fmt.Errorf("graphio: implausible float-slice length %d", n[0])
	}
	out := make([]float64, 0, capHint(int(n[0])))
	buf := make([]byte, 8)
	for i := int64(0); i < n[0]; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf)))
	}
	return out, nil
}

func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
