// Package graphio serializes graphs and datasets to a compact binary
// format so generated benchmark inputs can be saved, shared and
// reloaded without regenerating (R-MAT generation at the bench profile
// takes ~10s; loading takes a fraction of that).
//
// Format (little-endian):
//
//	magic "GNNDS1\n" | section tag bytes | payloads
//
// Sections: 'A' adjacency CSR, 'F' dense features, 'L' labels +
// splits, 'M' metadata. All integers are int64 on the wire.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/sparse"
)

var magic = []byte("GNNDS1\n")

// WriteCSR writes a sparse matrix.
func WriteCSR(w io.Writer, m *sparse.CSR) error {
	if err := writeInts(w, int64(m.Rows), int64(m.Cols), int64(m.NNZ())); err != nil {
		return err
	}
	for _, p := range m.RowPtr {
		if err := writeInts(w, int64(p)); err != nil {
			return err
		}
	}
	for _, c := range m.ColIdx {
		if err := writeInts(w, int64(c)); err != nil {
			return err
		}
	}
	for _, v := range m.Val {
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSR reads a sparse matrix written by WriteCSR.
func ReadCSR(r io.Reader) (*sparse.CSR, error) {
	dims, err := readInts(r, 3)
	if err != nil {
		return nil, err
	}
	rows64, cols64, nnz64 := dims[0], dims[1], dims[2]
	// Bounds-check the header before trusting it with allocations: a
	// hostile or corrupted header must fail cleanly, not ask the
	// runtime for petabytes (fuzz-pinned).
	if rows64 < 0 || cols64 < 0 || nnz64 < 0 {
		return nil, fmt.Errorf("graphio: negative dimensions in header")
	}
	if rows64 > maxWireElems || cols64 > maxWireElems || nnz64 > maxWireElems {
		return nil, fmt.Errorf("graphio: implausible matrix header %dx%d nnz=%d", rows64, cols64, nnz64)
	}
	rows, cols, nnz := int(rows64), int(cols64), int(nnz64)
	m := &sparse.CSR{Rows: rows, Cols: cols,
		RowPtr: make([]int, 0, capHint(rows+1)), ColIdx: make([]int, 0, capHint(nnz)),
		Val: make([]float64, 0, capHint(nnz))}
	for i := 0; i <= rows; i++ {
		v, err := readInts(r, 1)
		if err != nil {
			return nil, err
		}
		m.RowPtr = append(m.RowPtr, int(v[0]))
	}
	for i := 0; i < nnz; i++ {
		v, err := readInts(r, 1)
		if err != nil {
			return nil, err
		}
		m.ColIdx = append(m.ColIdx, int(v[0]))
	}
	buf := make([]byte, 8)
	for i := 0; i < nnz; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		m.Val = append(m.Val, math.Float64frombits(binary.LittleEndian.Uint64(buf)))
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("graphio: loaded matrix invalid: %w", err)
	}
	return m, nil
}

// maxWireElems bounds any single on-wire element count (rows, columns,
// nonzeros, slice lengths): far above every legitimate profile, far
// below anything that could exhaust memory on its own.
const maxWireElems = 1 << 31

// capHint bounds a pre-allocation capacity for an on-wire count:
// trust small claims (one allocation), grow incrementally for large
// ones so a lying header costs at most the input's actual length in
// reads, never an up-front giant allocation.
func capHint(n int) int {
	const limit = 1 << 16
	if n > limit {
		return limit
	}
	if n < 0 {
		return 0
	}
	return n
}

// WriteDense writes a dense matrix.
func WriteDense(w io.Writer, m *dense.Matrix) error {
	if err := writeInts(w, int64(m.Rows), int64(m.Cols)); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadDense reads a dense matrix written by WriteDense.
func ReadDense(r io.Reader) (*dense.Matrix, error) {
	dims, err := readInts(r, 2)
	if err != nil {
		return nil, err
	}
	// Check each dimension and the product before allocating: a hostile
	// header must not overflow rows*cols into a small positive count or
	// demand a giant up-front allocation (fuzz-pinned).
	if dims[0] < 0 || dims[1] < 0 || dims[0] > maxWireElems || dims[1] > maxWireElems {
		return nil, fmt.Errorf("graphio: bad dense dimensions %dx%d", dims[0], dims[1])
	}
	rows, cols := int(dims[0]), int(dims[1])
	total := dims[0] * dims[1]
	if total > maxWireElems {
		return nil, fmt.Errorf("graphio: implausible dense payload %dx%d", rows, cols)
	}
	data := make([]float64, 0, capHint(int(total)))
	buf := make([]byte, 8)
	for i := int64(0); i < total; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(buf)))
	}
	return dense.FromSlice(rows, cols, data), nil
}

// WriteDataset serializes a full dataset.
func WriteDataset(w io.Writer, d *datasets.Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	if err := writeString(bw, d.Name); err != nil {
		return err
	}
	if err := writeInts(bw,
		int64(d.NumClasses), int64(d.BatchSize), int64(d.LayerWidth)); err != nil {
		return err
	}
	if err := writeIntSlice(bw, d.Fanouts); err != nil {
		return err
	}
	if err := WriteCSR(bw, d.Graph.Adj); err != nil {
		return err
	}
	if err := WriteDense(bw, d.Features); err != nil {
		return err
	}
	for _, s := range [][]int{d.Labels, d.Train, d.Val, d.Test} {
		if err := writeIntSlice(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDataset loads a dataset written by WriteDataset.
func ReadDataset(r io.Reader) (*datasets.Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if string(head) != string(magic) {
		return nil, fmt.Errorf("graphio: bad magic %q", head)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	meta, err := readInts(br, 3)
	if err != nil {
		return nil, err
	}
	fanouts, err := readIntSlice(br)
	if err != nil {
		return nil, err
	}
	adj, err := ReadCSR(br)
	if err != nil {
		return nil, err
	}
	if adj.Rows != adj.Cols {
		// graph.New panics on non-square adjacency; a corrupted file
		// must fail as an error instead (fuzz-pinned).
		return nil, fmt.Errorf("graphio: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	feats, err := ReadDense(br)
	if err != nil {
		return nil, err
	}
	var slices [4][]int
	for i := range slices {
		s, err := readIntSlice(br)
		if err != nil {
			return nil, err
		}
		slices[i] = s
	}
	d := &datasets.Dataset{
		Name:       name,
		Graph:      graph.New(adj),
		Features:   feats,
		Labels:     slices[0],
		NumClasses: int(meta[0]),
		Train:      slices[1],
		Val:        slices[2],
		Test:       slices[3],
		BatchSize:  int(meta[1]),
		Fanouts:    fanouts,
		LayerWidth: int(meta[2]),
	}
	if len(d.Labels) != d.Graph.NumVertices() {
		return nil, fmt.Errorf("graphio: %d labels for %d vertices", len(d.Labels), d.Graph.NumVertices())
	}
	if d.Features.Rows != d.Graph.NumVertices() {
		return nil, fmt.Errorf("graphio: %d feature rows for %d vertices", d.Features.Rows, d.Graph.NumVertices())
	}
	return d, nil
}

func writeInts(w io.Writer, vs ...int64) error {
	buf := make([]byte, 8)
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf, uint64(v))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func readInts(r io.Reader, n int) ([]int64, error) {
	buf := make([]byte, 8)
	out := make([]int64, n)
	for i := range out {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out[i] = int64(binary.LittleEndian.Uint64(buf))
	}
	return out, nil
}

func writeIntSlice(w io.Writer, s []int) error {
	if err := writeInts(w, int64(len(s))); err != nil {
		return err
	}
	for _, v := range s {
		if err := writeInts(w, int64(v)); err != nil {
			return err
		}
	}
	return nil
}

func readIntSlice(r io.Reader) ([]int, error) {
	n, err := readInts(r, 1)
	if err != nil {
		return nil, err
	}
	if n[0] < 0 || n[0] > maxWireElems {
		return nil, fmt.Errorf("graphio: implausible slice length %d", n[0])
	}
	// Incremental growth: a lying length costs at most the input's
	// real size in reads, never an up-front giant allocation.
	out := make([]int, 0, capHint(int(n[0])))
	buf := make([]byte, 8)
	for i := int64(0); i < n[0]; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out = append(out, int(int64(binary.LittleEndian.Uint64(buf))))
	}
	return out, nil
}

func writeString(w io.Writer, s string) error {
	if err := writeInts(w, int64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readInts(r, 1)
	if err != nil {
		return "", err
	}
	if n[0] < 0 || n[0] > 1<<20 {
		return "", fmt.Errorf("graphio: implausible string length %d", n[0])
	}
	buf := make([]byte, n[0])
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteParams serializes a flat parameter vector (model checkpoint).
func WriteParams(w io.Writer, params []float64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write([]byte("GNNCK1\n")); err != nil {
		return err
	}
	if err := writeInts(bw, int64(len(params))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range params {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadParams loads a checkpoint written by WriteParams.
func ReadParams(r io.Reader) ([]float64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 7)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if string(head) != "GNNCK1\n" {
		return nil, fmt.Errorf("graphio: bad checkpoint magic %q", head)
	}
	n, err := readInts(br, 1)
	if err != nil {
		return nil, err
	}
	if n[0] < 0 || n[0] > maxWireElems {
		return nil, fmt.Errorf("graphio: implausible parameter count %d", n[0])
	}
	out := make([]float64, 0, capHint(int(n[0])))
	buf := make([]byte, 8)
	for i := int64(0); i < n[0]; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf)))
	}
	return out, nil
}
