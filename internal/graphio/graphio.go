// Package graphio serializes graphs and datasets to a compact binary
// format so generated benchmark inputs can be saved, shared and
// reloaded without regenerating (R-MAT generation at the bench profile
// takes ~10s; loading takes a fraction of that).
//
// Format (little-endian):
//
//	magic "GNNDS1\n" | section tag bytes | payloads
//
// Sections: 'A' adjacency CSR, 'F' dense features, 'L' labels +
// splits, 'M' metadata. All integers are int64 on the wire.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/sparse"
)

var magic = []byte("GNNDS1\n")

// WriteCSR writes a sparse matrix.
func WriteCSR(w io.Writer, m *sparse.CSR) error {
	if err := writeInts(w, int64(m.Rows), int64(m.Cols), int64(m.NNZ())); err != nil {
		return err
	}
	for _, p := range m.RowPtr {
		if err := writeInts(w, int64(p)); err != nil {
			return err
		}
	}
	for _, c := range m.ColIdx {
		if err := writeInts(w, int64(c)); err != nil {
			return err
		}
	}
	for _, v := range m.Val {
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSR reads a sparse matrix written by WriteCSR.
func ReadCSR(r io.Reader) (*sparse.CSR, error) {
	dims, err := readInts(r, 3)
	if err != nil {
		return nil, err
	}
	rows, cols, nnz := int(dims[0]), int(dims[1]), int(dims[2])
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("graphio: negative dimensions in header")
	}
	m := &sparse.CSR{Rows: rows, Cols: cols,
		RowPtr: make([]int, rows+1), ColIdx: make([]int, nnz), Val: make([]float64, nnz)}
	for i := range m.RowPtr {
		v, err := readInts(r, 1)
		if err != nil {
			return nil, err
		}
		m.RowPtr[i] = int(v[0])
	}
	for i := range m.ColIdx {
		v, err := readInts(r, 1)
		if err != nil {
			return nil, err
		}
		m.ColIdx[i] = int(v[0])
	}
	for i := range m.Val {
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, err
		}
		m.Val[i] = math.Float64frombits(bits)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("graphio: loaded matrix invalid: %w", err)
	}
	return m, nil
}

// WriteDense writes a dense matrix.
func WriteDense(w io.Writer, m *dense.Matrix) error {
	if err := writeInts(w, int64(m.Rows), int64(m.Cols)); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadDense reads a dense matrix written by WriteDense.
func ReadDense(r io.Reader) (*dense.Matrix, error) {
	dims, err := readInts(r, 2)
	if err != nil {
		return nil, err
	}
	rows, cols := int(dims[0]), int(dims[1])
	if rows < 0 || cols < 0 || rows*cols < 0 {
		return nil, fmt.Errorf("graphio: bad dense dimensions %dx%d", rows, cols)
	}
	m := dense.New(rows, cols)
	buf := make([]byte, 8)
	for i := range m.Data {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return m, nil
}

// WriteDataset serializes a full dataset.
func WriteDataset(w io.Writer, d *datasets.Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	if err := writeString(bw, d.Name); err != nil {
		return err
	}
	if err := writeInts(bw,
		int64(d.NumClasses), int64(d.BatchSize), int64(d.LayerWidth)); err != nil {
		return err
	}
	if err := writeIntSlice(bw, d.Fanouts); err != nil {
		return err
	}
	if err := WriteCSR(bw, d.Graph.Adj); err != nil {
		return err
	}
	if err := WriteDense(bw, d.Features); err != nil {
		return err
	}
	for _, s := range [][]int{d.Labels, d.Train, d.Val, d.Test} {
		if err := writeIntSlice(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDataset loads a dataset written by WriteDataset.
func ReadDataset(r io.Reader) (*datasets.Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if string(head) != string(magic) {
		return nil, fmt.Errorf("graphio: bad magic %q", head)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	meta, err := readInts(br, 3)
	if err != nil {
		return nil, err
	}
	fanouts, err := readIntSlice(br)
	if err != nil {
		return nil, err
	}
	adj, err := ReadCSR(br)
	if err != nil {
		return nil, err
	}
	feats, err := ReadDense(br)
	if err != nil {
		return nil, err
	}
	var slices [4][]int
	for i := range slices {
		s, err := readIntSlice(br)
		if err != nil {
			return nil, err
		}
		slices[i] = s
	}
	d := &datasets.Dataset{
		Name:       name,
		Graph:      graph.New(adj),
		Features:   feats,
		Labels:     slices[0],
		NumClasses: int(meta[0]),
		Train:      slices[1],
		Val:        slices[2],
		Test:       slices[3],
		BatchSize:  int(meta[1]),
		Fanouts:    fanouts,
		LayerWidth: int(meta[2]),
	}
	if len(d.Labels) != d.Graph.NumVertices() {
		return nil, fmt.Errorf("graphio: %d labels for %d vertices", len(d.Labels), d.Graph.NumVertices())
	}
	if d.Features.Rows != d.Graph.NumVertices() {
		return nil, fmt.Errorf("graphio: %d feature rows for %d vertices", d.Features.Rows, d.Graph.NumVertices())
	}
	return d, nil
}

func writeInts(w io.Writer, vs ...int64) error {
	buf := make([]byte, 8)
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf, uint64(v))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func readInts(r io.Reader, n int) ([]int64, error) {
	buf := make([]byte, 8)
	out := make([]int64, n)
	for i := range out {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out[i] = int64(binary.LittleEndian.Uint64(buf))
	}
	return out, nil
}

func writeIntSlice(w io.Writer, s []int) error {
	if err := writeInts(w, int64(len(s))); err != nil {
		return err
	}
	for _, v := range s {
		if err := writeInts(w, int64(v)); err != nil {
			return err
		}
	}
	return nil
}

func readIntSlice(r io.Reader) ([]int, error) {
	n, err := readInts(r, 1)
	if err != nil {
		return nil, err
	}
	if n[0] < 0 || n[0] > 1<<40 {
		return nil, fmt.Errorf("graphio: implausible slice length %d", n[0])
	}
	vals, err := readInts(r, int(n[0]))
	if err != nil {
		return nil, err
	}
	out := make([]int, len(vals))
	for i, v := range vals {
		out[i] = int(v)
	}
	return out, nil
}

func writeString(w io.Writer, s string) error {
	if err := writeInts(w, int64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readInts(r, 1)
	if err != nil {
		return "", err
	}
	if n[0] < 0 || n[0] > 1<<20 {
		return "", fmt.Errorf("graphio: implausible string length %d", n[0])
	}
	buf := make([]byte, n[0])
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteParams serializes a flat parameter vector (model checkpoint).
func WriteParams(w io.Writer, params []float64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write([]byte("GNNCK1\n")); err != nil {
		return err
	}
	if err := writeInts(bw, int64(len(params))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range params {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadParams loads a checkpoint written by WriteParams.
func ReadParams(r io.Reader) ([]float64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 7)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if string(head) != "GNNCK1\n" {
		return nil, fmt.Errorf("graphio: bad checkpoint magic %q", head)
	}
	n, err := readInts(br, 1)
	if err != nil {
		return nil, err
	}
	if n[0] < 0 || n[0] > 1<<32 {
		return nil, fmt.Errorf("graphio: implausible parameter count %d", n[0])
	}
	out := make([]float64, n[0])
	buf := make([]byte, 8)
	for i := range out {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return out, nil
}
