package pipeline

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/distsample"
	"repro/internal/engine"
	"repro/internal/gnn"
	"repro/internal/graphio"
	"repro/internal/resilience"
)

// Phase names for the Figure 4 breakdown.
const (
	PhaseSampling     = "sampling"
	PhaseFeatureFetch = "feature-fetch"
	PhasePropagation  = "propagation"
)

// Algorithm selects the distributed sampling strategy.
type Algorithm int

const (
	// GraphReplicated replicates A on every rank (Section 5.1).
	GraphReplicated Algorithm = iota
	// GraphPartitioned partitions A 1.5D across the grid (Section 5.2).
	GraphPartitioned
)

// KAll is the explicit "sample every minibatch in one bulk" setting
// for Config.K. The schedule treats any K <= 0 as "all"; KAll differs
// from a plain 0 only for the autotuner, which reads 0 as "unset —
// choose for me" and leaves KAll (or any negative K) untouched.
const KAll = -1

// Config drives one simulated training run.
type Config struct {
	P int // simulated GPUs
	C int // replication factor (chosen per memory in Figure 4)
	K int // bulk size: minibatches sampled per bulk call globally; <= 0 = all (see KAll)

	Algorithm     Algorithm
	SparsityAware bool // Algorithm 2 row fetching (vs oblivious broadcast)

	// Collectives selects, per operation class, the collective
	// schedule the simulated cluster charges under (merged into
	// Model.Collectives; explicit Model entries win only when this is
	// unset). The zero value keeps the paper's FlatTree forms.
	Collectives cluster.Collectives

	// HierAllReduce is sugar for Collectives.AllReduce =
	// cluster.Hierarchical: the two-level (intra-node, then leaders)
	// gradient all-reduce that keeps network traffic proportional to
	// node count. An explicit Collectives.AllReduce selection wins.
	HierAllReduce bool

	// Topology selects the physical-link topology the simulated
	// cluster charges under (set on Model.Topology): nil keeps the
	// pure α–β model — no contention, bit-identical to the paper's
	// closed forms — while cluster.PerlmutterTopology or
	// cluster.OversubscribedTopology make links finite, shared
	// resources so concurrent transfers (same-collective members on a
	// shared NIC, prefetch streams against the gradient all-reduce)
	// split bandwidth instead of each charging full β.
	Topology *cluster.Topology

	// Backend selects the simulator's execution backend (set on
	// Model.Backend): the goroutine backend runs one goroutine per
	// rank, the discrete-event backend runs the whole cluster as one
	// event loop (cluster.DESBackend). Results are bit-identical
	// either way; only wall time differs. Zero resolves $GNN_BACKEND,
	// then goroutines.
	Backend cluster.Backend

	// Overlap runs the staged-execution engine in its software-
	// pipelined mode: bulk sampling and feature fetching for upcoming
	// minibatches proceed on their own simulated streams (bounded
	// queues, double-buffered BulkSample handoff) while the current
	// minibatch trains, so epoch time becomes the max over concurrent
	// streams instead of the sum of phases. Applies to both
	// algorithms: Graph Replicated sampling is communication-free
	// (Section 5.1), and the Graph Partitioned algorithm's collectives
	// run stream-safely on per-stage communicator clones
	// (cluster.Comm.ForStream), so its sampling and feature-fetch
	// stages prefetch on their own streams too. The paper's pipeline
	// is bulk synchronous; this is the natural next optimization its
	// structure permits. Off by default — the sequential schedule is
	// identical to the paper's Figure 3 loop, and either way the
	// training outcome is bit-identical (the schedule moves when work
	// is charged, never what is computed).
	Overlap bool

	Sampler string // "sage", "ladies" or "fastgcn"
	Hidden  int
	Layers  int // GNN depth; LADIES presets use 1 (Table 4)

	// Dropout applies inverted dropout at this rate on hidden
	// activations during training (0 disables).
	Dropout float64
	// Agg selects the neighbor aggregation (default GraphSAGE mean).
	Agg gnn.Aggregator

	// CachePolicy enables per-rank feature caching in the fetch step
	// (the SALIENT++-style extension of Section 8.1.2). CacheFrac is
	// the per-rank cache capacity as a fraction of the vertex count.
	CachePolicy cache.Policy
	CacheFrac   float64

	Epochs     int
	LR         float64
	MaxBatches int // process at most this many global batches per epoch (0 = all); timings are extrapolated
	// TrackVal evaluates validation accuracy after every epoch
	// (sampled evaluation on the dataset's Val split).
	TrackVal bool

	// Faults is the fail-stop injection plan (merged into Model.Faults;
	// an explicit Model.Faults wins only when this is nil). When a
	// planned failure fires, the run aborts at the failed rank's
	// simulated fail time, the driver retires the fired entry, restores
	// the latest epoch-boundary checkpoint (or restarts from scratch if
	// CkptInterval is 0) and re-runs — so training always completes,
	// and Result.Recovery reports what the recovery cost.
	Faults *cluster.FaultPlan
	// CkptInterval checkpoints the complete resumable state — model
	// parameters, Adam moments, dropout stream position, and every
	// rank's simulated-time accounting snapshot — every CkptInterval
	// completed epochs (0 disables). Each rank charges the checkpoint's
	// serialized bytes over HostLink at each boundary, so checkpointing
	// costs simulated time whether or not a failure ever fires. With
	// Topology == nil and CachePolicy == None, a failed-and-restored
	// run's Result is bit-identical to an unfailed run with the same
	// interval (the differential crash-recovery suite pins this).
	CkptInterval int

	Seed  int64
	Model cluster.CostModel
}

// withDefaults fills zero fields.
func (c Config) withDefaults(d *datasets.Dataset) Config {
	if c.C <= 0 {
		c.C = 1
	}
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.Sampler == "" {
		c.Sampler = "sage"
	}
	if c.Layers == 0 {
		if c.Sampler == "ladies" || c.Sampler == "fastgcn" {
			c.Layers = 1
		} else {
			c.Layers = len(d.Fanouts)
		}
	}
	if c.Epochs == 0 {
		c.Epochs = 1
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.Model.GPUsPerNode == 0 {
		c.Model = cluster.Perlmutter()
	}
	if c.HierAllReduce && c.Collectives.AllReduce == cluster.DefaultAlgorithm {
		c.Collectives.AllReduce = cluster.Hierarchical
	}
	c.Model.Collectives = c.Model.Collectives.Merge(c.Collectives)
	if c.Topology != nil {
		c.Model.Topology = c.Topology
	}
	if c.Backend != cluster.DefaultBackend {
		c.Model.Backend = c.Backend
	}
	if c.Faults != nil {
		c.Model.Faults = c.Faults
	}
	return c
}

// EpochStats is the per-epoch breakdown of Figure 4: simulated seconds
// per pipeline phase (max across ranks), plus training metrics.
//
// In the sequential schedule Total is the sum of the three phases. In
// the overlapped schedule the phases run on concurrent streams, so
// Total is the epoch makespan (max over streams) and may be smaller
// than the sum; Stall reports the exposed (un-hidden) prefetch
// latency the consumer streams had to wait out.
type EpochStats struct {
	Sampling     float64
	FeatureFetch float64
	Propagation  float64
	Total        float64
	// Stall is the synchronization-stall time of the overlapped
	// schedule (zero for sequential runs), summed over a rank's
	// streams and maxed across ranks — a diagnostic of exposed
	// prefetch latency, which can exceed the makespan when several
	// streams wait concurrently.
	Stall        float64
	SamplingComm float64
	FetchComm    float64
	// Loss is the epoch's global mean training loss: every rank's loss
	// sum weighted by the batches it actually counted, so uneven batch
	// splits across ranks do not skew it toward any one rank's share.
	Loss float64
	// LossBatches is the number of minibatch losses aggregated into
	// Loss across all ranks (dummy-padded iterations excluded).
	LossBatches int
	// ValAccuracy is populated when Config.TrackVal is set.
	ValAccuracy float64
}

// Result aggregates a run.
type Result struct {
	Epochs  []EpochStats
	Cluster *cluster.Result
	// Params holds rank 0's trained parameters.
	Params []float64
	Cfg    Config
	// EffectiveK is the bulk size the schedule actually used per
	// round: sampling blocks times batches per block per round. It can
	// exceed a requested 0 < Cfg.K < samplingBlocks, because every
	// block samples at least one batch per round — the schedule clamps
	// the bulk up rather than leaving blocks idle, and surfaces the
	// inflation here so memory-budgeted callers (the autotuner picked
	// K to fit) can see it.
	EffectiveK int
	// Recovery reports the restart bookkeeping when fault injection or
	// checkpointing was configured (nil otherwise): attempts, fired
	// failures, wasted simulated work. Diagnostic only — the
	// differential suite excludes it from bit-identity comparison.
	Recovery *resilience.Stats
}

// LastEpoch returns the final epoch's stats, or a zero EpochStats for
// a run with no recorded epochs.
func (r *Result) LastEpoch() EpochStats {
	if len(r.Epochs) == 0 {
		return EpochStats{}
	}
	return r.Epochs[len(r.Epochs)-1]
}

// schedule fixes, identically on every rank, how many bulk-sampling
// rounds an epoch has and how many training iterations each round has,
// so all ranks issue the same collective sequence even when batch
// counts divide unevenly (ranks without a real batch join with dummy
// work).
type schedule struct {
	samplingBlocks int // ranks (replicated) or grid rows (partitioned) sharing the batch list
	sampPerRound   int // batches each sampling block handles per bulk round
	rounds         int
	trainPerRound  int // training iterations per round per rank
	trainStride    int // replicated: 1; partitioned: c (row members interleave)
}

func makeSchedule(cfg Config, grid *cluster.Grid, totalBatches int) schedule {
	s := schedule{trainStride: 1, samplingBlocks: cfg.P}
	if cfg.Algorithm == GraphPartitioned {
		s.samplingBlocks = grid.Rows
		s.trainStride = cfg.C
	}
	bulk := cfg.K
	if bulk <= 0 || bulk > totalBatches {
		bulk = totalBatches
	}
	s.sampPerRound = bulk / s.samplingBlocks
	if s.sampPerRound == 0 {
		// A requested bulk below the block count cannot be honored:
		// every block samples at least one batch per round, so the
		// effective bulk is samplingBlocks > K. effectiveBulk surfaces
		// the inflation (Result.EffectiveK) instead of hiding it from
		// memory-budgeted callers.
		s.sampPerRound = 1
	}
	// The largest block owns ceil(total/blocks) batches.
	maxLocal := (totalBatches + s.samplingBlocks - 1) / s.samplingBlocks
	s.rounds = (maxLocal + s.sampPerRound - 1) / s.sampPerRound
	if s.rounds == 0 {
		s.rounds = 1
	}
	s.trainPerRound = (s.sampPerRound + s.trainStride - 1) / s.trainStride
	return s
}

// effectiveBulk is the global bulk size the schedule realizes per
// round. It exceeds the requested K exactly when 0 < K < samplingBlocks
// forced sampPerRound up to one batch per block.
func (s schedule) effectiveBulk() int { return s.samplingBlocks * s.sampPerRound }

// blockScale returns the extrapolation factor from a truncated batch
// list to the full epoch: the ratio of the largest per-block share of
// batches. blocks is the number of units the batch list is split over
// (p ranks for the replicated algorithm, p/c grid rows for the
// partitioned one).
func BlockScale(total, processed, blocks int) float64 {
	if processed >= total || processed == 0 {
		return 1
	}
	per := func(n int) float64 { return float64((n + blocks - 1) / blocks) }
	return per(total) / per(processed)
}

// fetchItem is the sampling stage's per-minibatch output: one
// extracted batch graph and its input frontier, handed to the
// feature-fetch stage.
type fetchItem struct {
	bg    *core.BatchGraph
	verts []int
}

// trainItem is the feature-fetch stage's output: the batch graph plus
// its gathered input features, handed to the propagation stage.
type trainItem struct {
	bg    *core.BatchGraph
	feats *dense.Matrix
}

// newSampler maps the config's sampler name to its implementation.
func newSampler(name string) core.Sampler {
	switch name {
	case "ladies":
		return core.LADIES{}
	case "fastgcn":
		return core.FastGCN{}
	default:
		return core.SAGE{}
	}
}

// Run simulates cfg.Epochs of distributed minibatch training over the
// dataset and returns per-epoch phase breakdowns. The epoch loop is
// expressed as a three-stage engine pipeline (bulk sampling → feature
// fetch → propagation); Config.Overlap selects the software-pipelined
// schedule, the default is the paper's bulk-synchronous one.
func Run(d *datasets.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(d)
	if cfg.P%cfg.C != 0 {
		return nil, fmt.Errorf("pipeline: c=%d must divide p=%d", cfg.C, cfg.P)
	}
	if err := cfg.Model.Collectives.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if err := cfg.Model.Topology.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if err := cfg.Model.Faults.Validate(cfg.P); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if cfg.CkptInterval < 0 {
		return nil, fmt.Errorf("pipeline: negative checkpoint interval %d", cfg.CkptInterval)
	}

	batches := d.Batches()
	totalBatches := len(batches)
	if cfg.MaxBatches > 0 && cfg.MaxBatches < totalBatches {
		batches = batches[:cfg.MaxBatches]
	}

	layerwise := cfg.Sampler == "ladies" || cfg.Sampler == "fastgcn"
	fanouts := d.Fanouts
	if layerwise {
		fanouts = make([]int, cfg.Layers)
		for i := range fanouts {
			fanouts[i] = d.LayerWidth
		}
	}
	if len(fanouts) != cfg.Layers {
		f := make([]int, cfg.Layers)
		for i := range f {
			f[i] = fanouts[i%len(fanouts)]
		}
		fanouts = f
	}

	// Per-rank loss sums and batch counts, aggregated after the run
	// into a global batch-weighted epoch loss (ranks may count unequal
	// batch shares when the batch list divides unevenly).
	lossSums := make([][]float64, cfg.P)
	lossCounts := make([][]int, cfg.P)
	var finalParams []float64
	var epochParams [][]float64 // rank 0 per-epoch snapshots for TrackVal
	if cfg.TrackVal {
		epochParams = make([][]float64, cfg.Epochs)
	}

	// Replicated-state dedup: data-parallel ranks hold bit-identical
	// parameters and optimizer state at every step, so the simulator
	// keeps ONE model and ONE Adam for the whole cluster instead of p
	// replicas. Ranks read the shared parameters concurrently
	// (Forward/Backward never mutate the model); the single write site
	// is the optimizer step, which runs exactly once per minibatch
	// inside the gradient all-reduce (AllReduceSumApply) while every
	// rank is synchronized in the collective. This removes the
	// dominant O(p·params) host-side cost per step — the simulated
	// times and training outcome are unchanged.
	newModel := func() *gnn.Model {
		m := gnn.NewModel(gnn.Config{
			In:      d.Features.Cols,
			Hidden:  cfg.Hidden,
			Classes: d.NumClasses,
			Layers:  cfg.Layers,
			Agg:     cfg.Agg,
			Seed:    cfg.Seed,
		})
		if cfg.Dropout > 0 {
			m.SetDropout(cfg.Dropout, cfg.Seed)
		}
		return m
	}
	model := newModel()
	opt := dense.NewAdam(cfg.LR)
	// Shared all-zero gradient vector contributed by iterations without
	// a real batch; the collective never mutates members' inputs.
	zeroGrads := make([]float64, model.NumParams())

	// Epoch-boundary checkpointing: the collector assembles each
	// boundary's checkpoint from per-rank contributions and publishes it
	// in serialized form; every restore decodes it afresh (graphio codec
	// on both sides of every recovery).
	var col *resilience.Collector
	if cfg.CkptInterval > 0 {
		col = resilience.NewCollector(cfg.P)
	}
	ckptBytes := resilience.CheckpointBytes(model.NumParams())

	// attempt runs the cluster once from startEpoch, optionally seeded
	// with a restored checkpoint. The cluster, grid, stores and
	// partitioned-sampling state are rebuilt per attempt: a failed run
	// leaves poisoned rendezvous and mid-flight arena state behind, and
	// rebuilding them is both deterministic and what a real restart does.
	var sched schedule
	var scale float64
	attempt := func(plan *cluster.FaultPlan, startEpoch int, ck *graphio.Checkpoint) (*cluster.Result, error) {
		m := cfg.Model
		m.Faults = plan
		cl := cluster.New(cfg.P, m)
		grid := cluster.NewGrid(cl, cfg.P, cfg.C)
		stores := NewFeatureStores(grid, d.Features)
		var parts []*distsample.Partitioned
		if cfg.Algorithm == GraphPartitioned {
			if grid.Rows%grid.C != 0 {
				return nil, fmt.Errorf("pipeline: partitioned algorithm needs c^2 | p (p=%d c=%d)", cfg.P, cfg.C)
			}
			parts = distsample.NewPartitionedSet(grid, d.Graph.Adj, cfg.SparsityAware)
		}
		sched = makeSchedule(cfg, grid, len(batches))
		// Extrapolation for MaxBatches truncation is per sampling block
		// (rank or grid row), not global: phase times are maxima across
		// ranks, so they scale with the largest per-block share.
		scale = BlockScale(totalBatches, len(batches), sched.samplingBlocks)
		world := grid.World()

		return cl.Run(func(r *cluster.Rank) error {
			if ck != nil {
				r.Restore(ck.Ranks[r.ID])
			}
			store := stores[r.ID]
			if lossSums[r.ID] == nil {
				lossSums[r.ID] = make([]float64, cfg.Epochs)
				lossCounts[r.ID] = make([]int, cfg.Epochs)
			}
			var featCache cache.Cache
			if cfg.CachePolicy != cache.None && cfg.CacheFrac > 0 {
				capacity := int(cfg.CacheFrac * float64(d.Graph.NumVertices()))
				featCache = cache.New(cfg.CachePolicy, capacity, d.Graph.Degrees())
			}

			var local [][]int
			trainOffset := 0
			if cfg.Algorithm == GraphPartitioned {
				local = distsample.LocalBatches(grid, r.ID, batches)
				trainOffset = grid.ColIndex(r.ID)
			} else {
				local = distsample.ReplicatedBatches(cfg.P, r.ID, batches)
			}
			sampler := newSampler(cfg.Sampler)
			// Communicators each stage drives: in overlapped mode the
			// engine gives every collective-bearing stage its own stream,
			// and the stage bodies reach the matching communicator clones
			// with ForStream (stream-safe collectives).
			fetchComms := []*cluster.Comm{grid.ColComm(r.ID)}
			var sampComms []*cluster.Comm
			if cfg.Algorithm == GraphPartitioned {
				sampComms = []*cluster.Comm{grid.ColComm(r.ID), grid.RowComm(r.ID)}
			}

			for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
				epochSeed := cfg.Seed + int64(epoch)*7919
				lossSum, lossN := 0.0, 0

				// Stage state: the sampling stage owns the current bulk
				// (and, in overlapped mode, the next one in flight — the
				// double buffer realized by its output queue).
				var bulk *core.BulkSample
				var chunk [][]int

				pipe := &engine.Pipeline{
					Overlap: cfg.Overlap,
					Stages: []engine.Stage{
						// 1) Sampling (Figure 3 left): one bulk call per
						// round, emitted one extracted minibatch at a
						// time. Every rank calls the same sampler the
						// same number of times; empty chunks still join
						// the partitioned collectives.
						{
							Name: PhaseSampling,
							// One full round of minibatches buffers
							// downstream while the next round's bulk is
							// sampled: the double-buffered BulkSample
							// handoff.
							Queue: sched.trainPerRound,
							Comms: sampComms,
							Run: func(rs *cluster.Rank, idx int, _ any) (any, error) {
								round, t := idx/sched.trainPerRound, idx%sched.trainPerRound
								if t == 0 {
									lo := round * sched.sampPerRound
									hi := lo + sched.sampPerRound
									if lo > len(local) {
										lo = len(local)
									}
									if hi > len(local) {
										hi = len(local)
									}
									chunk = local[lo:hi]
									rs.SetPhase(PhaseSampling)
									rs.PushPhase(PhaseSampling) // nested level for the driver's sub-phases
									if cfg.Algorithm == GraphPartitioned {
										switch cfg.Sampler {
										case "ladies":
											bulk = distsample.SampleLADIESPartitioned(rs, parts[rs.ID], chunk, d.LayerWidth, cfg.Layers, epochSeed)
										case "fastgcn":
											bulk = distsample.SampleFastGCNPartitioned(rs, parts[rs.ID], chunk, d.LayerWidth, cfg.Layers, epochSeed)
										default:
											bulk = distsample.SampleSAGEPartitioned(rs, parts[rs.ID], chunk, fanouts, epochSeed)
										}
									} else {
										bulk = distsample.SampleReplicated(rs, sampler, d.Graph.Adj, chunk, fanouts, epochSeed)
									}
									rs.PopPhase()
								}
								bi := t*sched.trainStride + trainOffset
								var it fetchItem
								if bi < len(chunk) {
									it.bg = bulk.ExtractBatch(bi)
									it.verts = it.bg.InputVertices()
								}
								return it, nil
							},
						},
						// 2) Feature fetch: all-to-allv over the process
						// column; iterations without a real batch join
						// with empty requests.
						{
							Name:  PhaseFeatureFetch,
							Queue: 1,
							Comms: fetchComms,
							Run: func(rf *cluster.Rank, idx int, in any) (any, error) {
								it := in.(fetchItem)
								rf.SetPhase(PhaseFeatureFetch)
								feats := store.FetchCached(rf, it.verts, featCache)
								return trainItem{bg: it.bg, feats: feats}, nil
							},
						},
						// 3) Propagation with data-parallel gradient
						// all-reduce, on the rank's main timeline;
						// iterations without a real batch contribute
						// zero gradients.
						{
							Name:  PhasePropagation,
							Comms: []*cluster.Comm{world},
							Run: func(rm *cluster.Rank, idx int, in any) (any, error) {
								ti := in.(trainItem)
								rm.SetPhase(PhasePropagation)
								grads := zeroGrads
								if ti.bg != nil {
									act, fwdFlops := model.Forward(ti.bg, ti.feats)
									labels := make([]int, len(ti.bg.Seeds))
									for i, v := range ti.bg.Seeds {
										labels[i] = d.Labels[v]
									}
									loss, dLogits := gnn.Loss(act, labels)
									g, bwdFlops := model.Backward(act, dLogits)
									grads = g
									rm.ChargeDense(fwdFlops + bwdFlops)
									rm.ChargeKernels(4 * cfg.Layers)
									lossSum += loss
									lossN++
								}

								// The gradient all-reduce schedule (flat /
								// ring / hierarchical) is dispatched by the
								// model's Collectives table. The optimizer
								// step runs once, on the shared model,
								// inside the collective; every rank still
								// charges the step's memory traffic.
								cluster.AllReduceSumApply(world, rm, grads, func(total []float64) {
									inv := 1.0 / float64(cfg.P)
									for i := range total {
										total[i] *= inv
									}
									opt.Step(model.Params(), total)
									model.NextDropoutSeed()
								})
								rm.ChargeDense(int64(3 * model.NumParams()))
								return nil, nil
							},
						},
					},
				}
				if err := pipe.Execute(r, sched.rounds*sched.trainPerRound); err != nil {
					return err
				}
				lossSums[r.ID][epoch] = lossSum
				lossCounts[r.ID][epoch] = lossN
				if cfg.TrackVal && r.ID == 0 {
					epochParams[epoch] = append([]float64(nil), model.Params()...)
				}
				// Epoch boundary bdry = epoch+1 completed epochs. Every
				// rank pays the checkpoint write (HostLink, before the
				// snapshot, so the restore point includes the charge) and
				// contributes its accounting snapshot; rank 0 adds the
				// replicated training state, which is stable here — no rank
				// can start the next epoch's first optimizer step until all
				// ranks pass this boundary's collective.
				if bdry := epoch + 1; col != nil && bdry%cfg.CkptInterval == 0 && bdry < cfg.Epochs {
					r.SetPhase(resilience.PhaseCheckpoint)
					r.ChargeLink(cluster.HostLink, ckptBytes)
					if r.ID == 0 {
						t, am, av := opt.State()
						if err := col.AddState(bdry, model.DropoutSeed(), model.Params(), t, am, av); err != nil {
							return err
						}
					}
					if err := col.AddRank(bdry, r.ID, r.Snapshot()); err != nil {
						return err
					}
				}
			}
			if r.ID == 0 {
				finalParams = append([]float64(nil), model.Params()...)
			}
			return nil
		})
	}

	// Restart driver. A clean run is exactly one attempt — when no plan
	// and no interval are configured the loop body reduces to the
	// pre-resilience code path, bit-identical. After a fault-class
	// failure the fired plan entry is retired (the restored timeline
	// must not re-fire it forever), the latest complete checkpoint is
	// decoded, and the next attempt resumes from its epoch; without a
	// checkpoint the deterministic initial state is rebuilt and training
	// restarts from scratch. Every restart removes one plan entry, so
	// the loop terminates.
	plan := cfg.Model.Faults
	var rec *resilience.Stats
	if plan != nil || col != nil {
		rec = &resilience.Stats{}
	}
	var res *cluster.Result
	restarted := false
	startEpoch, restoreClock := 0, 0.0
	var ck *graphio.Checkpoint
	for {
		if rec != nil {
			rec.Attempts++
		}
		if ck != nil {
			model.SetParams(ck.Params)
			model.SetDropoutSeed(ck.DropSeed)
			opt.SetState(ck.OptT, ck.OptM, ck.OptV)
		} else if restarted {
			model = newModel()
			opt = dense.NewAdam(cfg.LR)
		}
		r, err := attempt(plan, startEpoch, ck)
		if err == nil {
			res = r
			break
		}
		var rf *cluster.RankFailure
		if !errors.As(err, &rf) {
			return nil, err
		}
		plan = plan.Retire(rf)
		restarted = true
		ck, startEpoch, restoreClock = nil, 0, 0
		if col != nil {
			col.Abort()
			if ck, err = col.Latest(); err != nil {
				return nil, err
			}
			if ck != nil {
				startEpoch = ck.Epoch
				restoreClock = col.LatestClock()
			}
		}
		rec.RecordFailure(rf, startEpoch, restoreClock)
	}

	// Phase totals cover all epochs; each epoch does identical work, so
	// divide evenly and extrapolate for MaxBatches truncation.
	epochs := make([]EpochStats, cfg.Epochs)
	perEpoch := func(phase string) float64 {
		return res.Phase(phase) * scale / float64(cfg.Epochs)
	}
	perEpochComm := func(phase string) float64 {
		return res.PhaseComm(phase) * scale / float64(cfg.Epochs)
	}
	for e := range epochs {
		loss, lossN := AggregateLoss(lossSums, lossCounts, e)
		epochs[e] = EpochStats{
			Sampling:     perEpoch(PhaseSampling),
			FeatureFetch: perEpoch(PhaseFeatureFetch),
			Propagation:  perEpoch(PhasePropagation),
			Stall:        perEpoch(engine.PhaseStall),
			SamplingComm: perEpochComm(PhaseSampling),
			FetchComm:    perEpochComm(PhaseFeatureFetch),
			Loss:         loss,
			LossBatches:  lossN,
		}
		if cfg.Overlap {
			// Concurrent streams: epoch time is the makespan (max
			// over streams — the rank's final clock), not the sum of
			// the per-stream phase totals.
			epochs[e].Total = res.SimTime * scale / float64(cfg.Epochs)
		} else {
			epochs[e].Total = epochs[e].Sampling + epochs[e].FeatureFetch + epochs[e].Propagation
		}
		if cfg.TrackVal && epochParams[e] != nil {
			epochs[e].ValAccuracy = Evaluate(d, epochParams[e], cfg, d.Val, nil)
		}
	}
	return &Result{Epochs: epochs, Cluster: res, Params: finalParams, Cfg: cfg,
		EffectiveK: sched.effectiveBulk(), Recovery: rec}, nil
}

// AggregateLoss folds per-rank loss sums into the global batch-weighted
// mean for one epoch: sum of all ranks' loss sums over the total number
// of counted batches. A rank without a real batch that epoch carries
// zero weight; rank 0's local average is NOT the epoch loss whenever
// batches divide unevenly across ranks.
func AggregateLoss(sums [][]float64, counts [][]int, epoch int) (float64, int) {
	total, n := 0.0, 0
	for rank := range sums {
		if sums[rank] == nil {
			continue
		}
		total += sums[rank][epoch]
		n += counts[rank][epoch]
	}
	if n == 0 {
		return 0, 0
	}
	return total / float64(n), n
}
