package pipeline

import (
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/gnn"
	"repro/internal/graph"
)

// Run0Params returns freshly initialized (untrained) parameters for
// the configuration — the accuracy baseline for sanity checks.
func Run0Params(d *datasets.Dataset, cfg Config) []float64 {
	cfg = cfg.withDefaults(d)
	m := gnn.NewModel(gnn.Config{
		In:      d.Features.Cols,
		Hidden:  cfg.Hidden,
		Classes: d.NumClasses,
		Layers:  cfg.Layers,
		Seed:    cfg.Seed,
	})
	return m.Params()
}

// Evaluate computes classification accuracy of the trained parameters
// over the given vertex set, sampling their neighborhoods with the
// same fanouts used in training (the paper evaluates with a larger
// test fanout; pass testFanouts to override). Runs locally — accuracy
// is a model property, not a systems one.
func Evaluate(d *datasets.Dataset, params []float64, cfg Config, vertices []int, testFanouts []int) float64 {
	cfg = cfg.withDefaults(d)
	model := gnn.NewModel(gnn.Config{
		In:      d.Features.Cols,
		Hidden:  cfg.Hidden,
		Classes: d.NumClasses,
		Layers:  cfg.Layers,
		Agg:     cfg.Agg,
		Seed:    cfg.Seed,
	})
	model.SetParams(params)

	fanouts := testFanouts
	layerwise := cfg.Sampler == "ladies" || cfg.Sampler == "fastgcn"
	if fanouts == nil {
		fanouts = d.Fanouts
		if layerwise {
			fanouts = make([]int, cfg.Layers)
			for i := range fanouts {
				fanouts[i] = d.LayerWidth
			}
		}
	}
	var sampler core.Sampler
	switch cfg.Sampler {
	case "ladies":
		sampler = core.LADIES{}
	case "fastgcn":
		sampler = core.FastGCN{}
	default:
		sampler = core.SAGE{}
	}

	correct, total := 0, 0
	for _, batch := range graph.Batches(vertices, d.BatchSize) {
		bulk := core.SampleBulk(sampler, d.Graph.Adj, [][]int{batch}, fanouts, cfg.Seed+555)
		bg := bulk.ExtractBatch(0)
		feats := gnn.GatherFeatures(d.Features, bg.InputVertices())
		act, _ := model.Forward(bg, feats)
		labels := make([]int, len(bg.Seeds))
		for i, v := range bg.Seeds {
			labels[i] = d.Labels[v]
		}
		acc := dense.Accuracy(act.Logits, labels)
		correct += int(acc*float64(len(labels)) + 0.5)
		total += len(labels)
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// EvaluateFull computes exact (full-batch, non-sampled) accuracy over
// the given vertices: every layer aggregates over the entire graph.
// This is the sampling-free reference that sampled evaluation
// approximates; the gap between the two is the accuracy cost of
// sampling.
func EvaluateFull(d *datasets.Dataset, params []float64, cfg Config, vertices []int) float64 {
	cfg = cfg.withDefaults(d)
	model := gnn.NewModel(gnn.Config{
		In:      d.Features.Cols,
		Hidden:  cfg.Hidden,
		Classes: d.NumClasses,
		Layers:  cfg.Layers,
		Agg:     cfg.Agg,
		Seed:    cfg.Seed,
	})
	model.SetParams(params)
	bg := core.FullGraphBatch(d.Graph.Adj, cfg.Layers)
	act, _ := model.Forward(bg, d.Features)
	pred := dense.Argmax(act.Logits)
	correct := 0
	for _, v := range vertices {
		if pred[v] == d.Labels[v] {
			correct++
		}
	}
	if len(vertices) == 0 {
		return 0
	}
	return float64(correct) / float64(len(vertices))
}
