// Package pipeline implements the paper's end-to-end training pipeline
// (Section 6, Figure 3): bulk sampling, feature fetching with
// all-to-allv over process columns of the 1.5D-partitioned feature
// matrix, and per-minibatch forward/backward propagation with
// data-parallel gradient all-reduce.
package pipeline

import (
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/dense"
	"repro/internal/graph"
)

// FeatureStore is a rank's share of the 1.5D-partitioned feature
// matrix H: block row [Lo, Hi), replicated on the c members of the
// rank's process row. Each process column therefore holds the entirety
// of H (Section 6.2).
type FeatureStore struct {
	Grid   *cluster.Grid
	H      *dense.Matrix // rows [Lo, Hi) of the global feature matrix
	Lo, Hi int
	N      int

	// global backs cache serving in the simulation: a cached row's
	// contents equal the global row (a real cache would have copied
	// it at prefetch or on first fetch).
	global *dense.Matrix

	// scratch holds the epoch-persistent fetch workspaces of the c
	// replicas sharing this block row, indexed by grid column. Before
	// it, every FetchCached call rebuilt the request/response
	// bookkeeping from fresh heap once per batch.
	scratch []*fetchScratch
}

// fetchScratch is one rank's reusable buffers for FetchCached's two
// all-to-allv rounds. The request and response buffers cross the wire
// by reference; reuse is safe by the rendezvous happens-before edges:
// an owner reads request lists between the two rounds, and a requester
// rewrites its lists only after leaving round two — which the owner
// must have entered, so it is done reading. Response rows are read by
// requesters before they enter any later collective on the column
// communicator; the owner rewrites them only behind its next call's
// round one, which every member must have reached. The assembled
// output matrix is NOT part of the workspace — it outlives the call
// (the overlap pipeline hands it to the propagation stage).
type fetchScratch struct {
	reqBacking  []fetchRequest
	reqs        []*fetchRequest
	firstSlot   [][]int
	pos         map[int]int
	respBacking []fetchResponse
	resps       []*fetchResponse
	rowData     []float64
}

// NewFeatureStores slices the global feature matrix into the grid's
// block rows. Replicas in a process row share storage (they would hold
// identical copies on real hardware).
func NewFeatureStores(g *cluster.Grid, feats *dense.Matrix) []*FeatureStore {
	blocks := make([]*FeatureStore, g.Rows)
	for i := 0; i < g.Rows; i++ {
		lo, hi := graph.BlockRowRange(feats.Rows, g.Rows, i)
		h := dense.New(hi-lo, feats.Cols)
		copy(h.Data, feats.Data[lo*feats.Cols:hi*feats.Cols])
		blocks[i] = &FeatureStore{Grid: g, H: h, Lo: lo, Hi: hi, N: feats.Rows, global: feats,
			scratch: make([]*fetchScratch, g.C)}
	}
	out := make([]*FeatureStore, g.P)
	for rank := 0; rank < g.P; rank++ {
		out[rank] = blocks[g.RowIndex(rank)]
	}
	return out
}

// fetchScratchFor returns the calling rank's fetch workspace, building
// it on first use. Replicas of a process row index disjoint slots (by
// grid column), so the lazy writes never race. A store constructed
// without NewFeatureStores falls back to per-call buffers.
func (fs *FeatureStore) fetchScratchFor(rank int) *fetchScratch {
	if fs.scratch == nil {
		return &fetchScratch{}
	}
	j := fs.Grid.ColIndex(rank)
	s := fs.scratch[j]
	if s == nil {
		s = &fetchScratch{}
		fs.scratch[j] = s
	}
	return s
}

// fetchRequest asks an owner for specific global vertex rows.
type fetchRequest struct {
	vertices []int
}

// fetchResponse returns the requested rows, in request order. The
// matrix is held by value so a response array needs one allocation, not
// one per member.
type fetchResponse struct {
	rows dense.Matrix
}

// Fetch assembles the feature rows of the given global vertices via
// all-to-allv over the rank's process column (every column holds all
// of H). Vertices may repeat. The two collective rounds — requests,
// then row data — both really move the data; the row-data round
// dominates the modeled cost, and its volume shrinks as the
// replication factor c grows because each rank owns a larger block of
// H (the scaling lever of Figure 6).
func (fs *FeatureStore) Fetch(r *cluster.Rank, vertices []int) *dense.Matrix {
	return fs.FetchCached(r, vertices, nil)
}

// FetchCached is Fetch with an optional per-rank feature cache (the
// SALIENT++-style extension of Section 8.1.2): cached vertices are
// served from device memory and never enter the all-to-allv, shrinking
// the communication volume. Rows fetched remotely are admitted to the
// cache. Pass a nil cache to disable.
//
// Repeated vertices in one request are deduplicated before the
// all-to-allv: each distinct vertex crosses the wire (and touches the
// cache — one Lookup, at most one Admit) once per request, and its row
// is then copied into every output slot that asked for it.
//
// The collectives go through the communicator clone dedicated to the
// calling stream (ForStream), so a fetch stage prefetching on its own
// stream coexists with collective-bearing sampling on another.
func (fs *FeatureStore) FetchCached(r *cluster.Rank, vertices []int, c cache.Cache) *dense.Matrix {
	g := fs.Grid
	colComm := g.ColComm(r.ID).ForStream(r)
	members := colComm.Size() // == g.Rows
	f := fs.H.Cols
	out := dense.New(len(vertices), f)
	me := colComm.LocalIndex(r)

	// Partition the request by owning block row, deduplicating repeats
	// and remembering every output position each distinct vertex fills.
	// Cache hits are served immediately from device memory. A vertex has
	// exactly one owner, so one position map serves all block rows; the
	// common single-position case stays allocation-free (firstSlot), and
	// only genuine repeats spill into the lazy extra-slot table. The
	// bookkeeping comes from the rank's epoch-persistent workspace (see
	// fetchScratch for why reuse across batches is safe).
	sc := fs.fetchScratchFor(r.ID)
	if cap(sc.reqBacking) < members {
		sc.reqBacking = make([]fetchRequest, members)
		sc.reqs = make([]*fetchRequest, members)
		sc.firstSlot = make([][]int, members)
		sc.respBacking = make([]fetchResponse, members)
		sc.resps = make([]*fetchResponse, members)
		sc.pos = make(map[int]int, len(vertices))
	}
	reqBacking := sc.reqBacking[:members]
	reqs := sc.reqs[:members]
	firstSlot := sc.firstSlot[:members] // first output position per requested vertex
	for m := range reqs {
		reqBacking[m].vertices = reqBacking[m].vertices[:0]
		firstSlot[m] = firstSlot[m][:0]
		reqs[m] = &reqBacking[m]
	}
	pos := sc.pos // vertex -> index in its owner's request
	clear(pos)
	var extraSlots map[[2]int][]int // (owner, pos) -> further output positions
	var cacheHit map[int]bool       // vertices served from cache this request
	var cachedBytes int64
	for i, v := range vertices {
		if cacheHit[v] {
			copy(out.RowView(i), fs.global.RowView(v))
			cachedBytes += int64(8 * f)
			continue
		}
		owner := graph.BlockOwner(fs.N, members, v)
		if p, ok := pos[v]; ok {
			if extraSlots == nil {
				extraSlots = map[[2]int][]int{}
			}
			k := [2]int{owner, p}
			extraSlots[k] = append(extraSlots[k], i)
			continue
		}
		if c != nil && owner != me && c.Lookup(v) {
			if cacheHit == nil {
				cacheHit = map[int]bool{}
			}
			cacheHit[v] = true
			copy(out.RowView(i), fs.global.RowView(v))
			cachedBytes += int64(8 * f)
			continue
		}
		pos[v] = len(reqs[owner].vertices)
		reqs[owner].vertices = append(reqs[owner].vertices, v)
		firstSlot[owner] = append(firstSlot[owner], i)
	}
	if cachedBytes > 0 {
		r.ChargeMem(cachedBytes)
	}

	incoming := cluster.AllToAllv(colComm, r, reqs, func(q *fetchRequest) int {
		return 8 * len(q.vertices)
	})

	// Serve each requester from the local block; all response rows share
	// one backing allocation, reused across batches.
	respBacking := sc.respBacking[:members]
	resps := sc.resps[:members]
	totalRows := 0
	for _, q := range incoming {
		totalRows += len(q.vertices)
	}
	if cap(sc.rowData) < totalRows*f {
		sc.rowData = make([]float64, totalRows*f)
	}
	rowData := sc.rowData[:totalRows*f]
	var served int64
	for m, q := range incoming {
		rows := dense.Matrix{Rows: len(q.vertices), Cols: f, Data: rowData[:len(q.vertices)*f]}
		rowData = rowData[len(q.vertices)*f:]
		for i, v := range q.vertices {
			copy(rows.RowView(i), fs.H.RowView(v-fs.Lo))
		}
		respBacking[m] = fetchResponse{rows: rows}
		resps[m] = &respBacking[m]
		served += int64(len(q.vertices) * f * 8)
	}
	r.ChargeMem(served)

	got := cluster.AllToAllv(colComm, r, resps, func(p *fetchResponse) int {
		return p.rows.Bytes()
	})

	for m, p := range got {
		for i, slot := range firstSlot[m] {
			copy(out.RowView(slot), p.rows.RowView(i))
			for _, extra := range extraSlots[[2]int{m, i}] {
				copy(out.RowView(extra), p.rows.RowView(i))
			}
			if c != nil && m != me {
				c.Admit(reqs[m].vertices[i])
			}
		}
	}
	r.ChargeMem(int64(len(vertices) * f * 8))
	return out
}
