package pipeline

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datasets"
)

// TestBackendDifferential drives the goroutine and discrete-event
// backends through 1000 randomized tiny configurations and requires
// bit-identical Results from each pair. The goldens pin a handful of
// hand-picked configs; this sweep covers the config-space corners no
// one thought to pin — uneven bulk sizes, overlapped schedules, every
// collective table, both algorithms.
//
// Topology stays nil throughout: contended runs resolve the ledger in
// arrival order, which is deterministic per backend but deliberately
// unspecified across backends (see contention.go), so bit-identity is
// only promised for the pure α–β model.
func TestBackendDifferential(t *testing.T) {
	trials := 1000
	if testing.Short() {
		trials = 50
	}
	// GNN_DIFFERENTIAL_TRIALS overrides the sweep size: CI's race job
	// runs a reduced-trial sweep under -race, where each trial costs
	// roughly an order of magnitude more.
	if s := os.Getenv("GNN_DIFFERENTIAL_TRIALS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad GNN_DIFFERENTIAL_TRIALS %q: want a positive integer", s)
		}
		trials = n
	}
	d := datasets.SBM(datasets.SBMConfig{
		N: 128, Classes: 4, Features: 4,
		IntraDeg: 6, InterDeg: 2, Noise: 0.5,
		BatchSize: 16, Fanouts: []int{3, 2}, LayerWidth: 8, Seed: 11,
	})
	tables := []cluster.Collectives{
		{},
		{AllReduce: cluster.Ring, AllToAll: cluster.Pairwise},
		{AllReduce: cluster.Hierarchical},
	}
	rng := rand.New(rand.NewSource(20240817))
	run := func(cfg Config, be cluster.Backend) *Result {
		t.Helper()
		cfg.Backend = be
		res, err := Run(d, cfg)
		if err != nil {
			t.Fatalf("%+v backend=%v: %v", cfg, be, err)
		}
		return res
	}
	for trial := 0; trial < trials; trial++ {
		ps := []int{2, 4, 8}
		cfg := Config{
			P:           ps[rng.Intn(len(ps))],
			Epochs:      1,
			Seed:        rng.Int63n(1 << 20),
			MaxBatches:  1 + rng.Intn(4),
			K:           rng.Intn(5), // 0 = KAll
			Collectives: tables[rng.Intn(len(tables))],
		}
		// C must divide P; pick among P's divisors.
		divs := []int{1}
		for c := 2; c <= cfg.P; c++ {
			if cfg.P%c == 0 {
				divs = append(divs, c)
			}
		}
		cfg.C = divs[rng.Intn(len(divs))]
		// The partitioned algorithm needs c² | p; fall back to the
		// replicated one (with a chance of the overlapped schedule)
		// when the drawn grid doesn't qualify.
		if rng.Intn(2) == 1 && cfg.C > 1 && cfg.P%(cfg.C*cfg.C) == 0 {
			cfg.Algorithm = GraphPartitioned
			cfg.SparsityAware = rng.Intn(2) == 1
		} else {
			cfg.Overlap = rng.Intn(2) == 1
		}
		g := run(cfg, cluster.GoroutineBackend)
		dd := run(cfg, cluster.DESBackend)
		if !reflect.DeepEqual(g.Epochs, dd.Epochs) {
			t.Fatalf("trial %d %+v: epoch stats diverge\ngoroutine: %+v\ndes:       %+v",
				trial, cfg, g.Epochs, dd.Epochs)
		}
		if !reflect.DeepEqual(g.Params, dd.Params) {
			t.Fatalf("trial %d %+v: trained parameters diverge", trial, cfg)
		}
		if g.EffectiveK != dd.EffectiveK {
			t.Fatalf("trial %d %+v: EffectiveK %d vs %d", trial, cfg, g.EffectiveK, dd.EffectiveK)
		}
		if !reflect.DeepEqual(g.Cluster, dd.Cluster) {
			t.Fatalf("trial %d %+v: cluster accounting diverges\ngoroutine: %+v\ndes:       %+v",
				trial, cfg, g.Cluster, dd.Cluster)
		}
	}
}
