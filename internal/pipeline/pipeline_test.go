package pipeline

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/dense"
	"repro/internal/gnn"
)

func tinySBM() *datasets.Dataset {
	return datasets.SBM(datasets.SBMConfig{
		N: 512, Classes: 4, Features: 8,
		IntraDeg: 10, InterDeg: 2, Noise: 0.5,
		BatchSize: 32, Fanouts: []int{5, 3}, LayerWidth: 32, Seed: 7,
	})
}

func TestFeatureStoresPartition(t *testing.T) {
	d := tinySBM()
	cl := cluster.New(8, cluster.Perlmutter())
	g := cluster.NewGrid(cl, 8, 2)
	stores := NewFeatureStores(g, d.Features)
	covered := 0
	seen := map[int]bool{}
	for rank := 0; rank < 8; rank++ {
		fs := stores[rank]
		if !seen[fs.Lo] {
			seen[fs.Lo] = true
			covered += fs.Hi - fs.Lo
		}
		// Block contents must match the global matrix.
		for i := 0; i < fs.H.Rows; i += 7 {
			for j := 0; j < fs.H.Cols; j++ {
				if fs.H.At(i, j) != d.Features.At(fs.Lo+i, j) {
					t.Fatalf("rank %d feature block corrupt at (%d,%d)", rank, i, j)
				}
			}
		}
	}
	if covered != d.Features.Rows {
		t.Fatalf("blocks cover %d of %d rows", covered, d.Features.Rows)
	}
}

func TestFetchReturnsCorrectRows(t *testing.T) {
	d := tinySBM()
	cl := cluster.New(4, cluster.Perlmutter())
	g := cluster.NewGrid(cl, 4, 2)
	stores := NewFeatureStores(g, d.Features)
	want := []int{0, 100, 511, 100, 7}
	_, err := cl.Run(func(r *cluster.Rank) error {
		got := stores[r.ID].Fetch(r, want)
		for i, v := range want {
			for j := 0; j < got.Cols; j++ {
				if got.At(i, j) != d.Features.At(v, j) {
					t.Errorf("rank %d: fetched row %d col %d = %v, want %v",
						r.ID, i, j, got.At(i, j), d.Features.At(v, j))
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFetchEmptyIsSafe(t *testing.T) {
	d := tinySBM()
	cl := cluster.New(4, cluster.Perlmutter())
	g := cluster.NewGrid(cl, 4, 1)
	stores := NewFeatureStores(g, d.Features)
	_, err := cl.Run(func(r *cluster.Rank) error {
		var verts []int
		if r.ID == 0 {
			verts = []int{3, 4}
		}
		got := stores[r.ID].Fetch(r, verts)
		if got.Rows != len(verts) {
			t.Errorf("rank %d: got %d rows", r.ID, got.Rows)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReplicatedEpoch(t *testing.T) {
	d := tinySBM()
	res, err := Run(d, Config{P: 4, C: 2, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	e := res.LastEpoch()
	if e.Sampling <= 0 || e.FeatureFetch <= 0 || e.Propagation <= 0 {
		t.Fatalf("phase breakdown missing: %+v", e)
	}
	if math.Abs(e.Total-(e.Sampling+e.FeatureFetch+e.Propagation)) > 1e-9 {
		t.Fatal("total != sum of phases")
	}
	if res.Params == nil {
		t.Fatal("no trained parameters returned")
	}
}

func TestRunLossDecreasesAcrossEpochs(t *testing.T) {
	d := tinySBM()
	res, err := Run(d, Config{P: 2, C: 1, Epochs: 5, Seed: 2, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Epochs[0].Loss, res.LastEpoch().Loss
	if last >= first {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", first, last)
	}
}

func TestRunPartitionedEpoch(t *testing.T) {
	d := tinySBM()
	res, err := Run(d, Config{P: 4, C: 2, Epochs: 1, Seed: 3,
		Algorithm: GraphPartitioned, SparsityAware: true})
	if err != nil {
		t.Fatal(err)
	}
	e := res.LastEpoch()
	if e.Sampling <= 0 {
		t.Fatal("no sampling time")
	}
	if e.SamplingComm <= 0 {
		t.Fatal("partitioned sampling should communicate")
	}
}

func TestRunLadiesReplicated(t *testing.T) {
	d := tinySBM()
	res, err := Run(d, Config{P: 2, C: 1, Epochs: 1, Seed: 4, Sampler: "ladies"})
	if err != nil {
		t.Fatal(err)
	}
	if res.LastEpoch().Total <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestRunLadiesPartitioned(t *testing.T) {
	d := tinySBM()
	res, err := Run(d, Config{P: 4, C: 2, Epochs: 1, Seed: 5,
		Sampler: "ladies", Algorithm: GraphPartitioned, SparsityAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.LastEpoch().Total <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestRunRejectsBadGrid(t *testing.T) {
	d := tinySBM()
	if _, err := Run(d, Config{P: 4, C: 3}); err == nil {
		t.Fatal("expected error: c does not divide p")
	}
	if _, err := Run(d, Config{P: 8, C: 4, Algorithm: GraphPartitioned}); err == nil {
		t.Fatal("expected error: c^2 does not divide p for partitioned")
	}
}

func TestReplicationReducesFetchTime(t *testing.T) {
	// The core Figure 6 claim: raising c shrinks feature-fetch time
	// because more of H is rank-local.
	d := tinySBM()
	noRep, err := Run(d, Config{P: 8, C: 1, Epochs: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(d, Config{P: 8, C: 4, Epochs: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastEpoch().FeatureFetch >= noRep.LastEpoch().FeatureFetch {
		t.Fatalf("c=4 fetch (%v) not faster than c=1 (%v)",
			rep.LastEpoch().FeatureFetch, noRep.LastEpoch().FeatureFetch)
	}
}

func TestMaxBatchesExtrapolates(t *testing.T) {
	d := tinySBM()
	full, err := Run(d, Config{P: 2, C: 1, Epochs: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := Run(d, Config{P: 2, C: 1, Epochs: 1, Seed: 7, MaxBatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Extrapolated totals should land within 3x of the full run (they
	// measure the same per-batch work modulo batch variance).
	ratio := trunc.LastEpoch().Total / full.LastEpoch().Total
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("extrapolation off: ratio %v", ratio)
	}
}

func TestEvaluateLearnsSBM(t *testing.T) {
	d := tinySBM()
	cfg := Config{P: 2, C: 1, Epochs: 12, Seed: 8, LR: 0.02}
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := Evaluate(d, res.Params, cfg, d.Test, nil)
	if acc < 0.6 {
		t.Fatalf("test accuracy %.3f below 0.6 — model failed to learn", acc)
	}
	// Untrained (fresh Xavier) parameters must do markedly worse.
	fresh := Run0Params(d, cfg)
	freshAcc := Evaluate(d, fresh, cfg, d.Test, nil)
	if freshAcc >= acc {
		t.Fatalf("untrained accuracy %.3f >= trained %.3f", freshAcc, acc)
	}
}

func TestModelsStaySynchronizedAcrossRanks(t *testing.T) {
	// With deterministic dummy-padded collectives, every rank applies
	// identical optimizer steps; rank counts must not change the
	// learned parameters' loss trajectory shape. We check the weaker
	// invariant that training with p=1 and p=2 both converge.
	d := tinySBM()
	for _, p := range []int{1, 2} {
		res, err := Run(d, Config{P: p, C: 1, Epochs: 4, Seed: 9, LR: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		if res.LastEpoch().Loss >= res.Epochs[0].Loss {
			t.Fatalf("p=%d: loss did not improve", p)
		}
	}
}

func TestBlockScale(t *testing.T) {
	// Full set processed: no extrapolation.
	if BlockScale(100, 100, 8) != 1 {
		t.Fatal("full run must not scale")
	}
	// 256 batches over 128 ranks = 2 each; 24 processed = 1 each on
	// the busiest rank: scale 2, not 256/24.
	if got := BlockScale(256, 24, 128); got != 2 {
		t.Fatalf("BlockScale(256,24,128) = %v, want 2", got)
	}
	// Serial: plain ratio.
	if got := BlockScale(100, 25, 1); got != 4 {
		t.Fatalf("BlockScale(100,25,1) = %v, want 4", got)
	}
}

func TestRunFastGCNReplicated(t *testing.T) {
	d := tinySBM()
	res, err := Run(d, Config{P: 2, C: 1, Epochs: 1, Seed: 13, Sampler: "fastgcn"})
	if err != nil {
		t.Fatal(err)
	}
	if res.LastEpoch().Total <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestFastGCNPartitionedRuns(t *testing.T) {
	d := tinySBM()
	res, err := Run(d, Config{P: 4, C: 2, Sampler: "fastgcn",
		Algorithm: GraphPartitioned, SparsityAware: true, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.LastEpoch().Total <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestFeatureCacheReducesFetchTime(t *testing.T) {
	// Caching is a bandwidth optimization: with repeated fetches
	// deduplicated per request, its win is the β·bytes it keeps off
	// the wire, so measure it on a skewed-degree graph where the
	// static working set actually absorbs traffic, and assert the
	// traffic reduction directly as well.
	d := datasets.ProductsLike(datasets.Tiny)
	base, err := Run(d, Config{P: 8, C: 1, Epochs: 1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Run(d, Config{P: 8, C: 1, Epochs: 1, Seed: 14,
		CachePolicy: cache.StaticDegree, CacheFrac: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if cached.LastEpoch().FeatureFetch >= base.LastEpoch().FeatureFetch {
		t.Fatalf("cache did not reduce fetch: %v vs %v",
			cached.LastEpoch().FeatureFetch, base.LastEpoch().FeatureFetch)
	}
	bytesSent := func(r *Result) int64 {
		var total int64
		for _, s := range r.Cluster.Ranks {
			total += s.BytesSent
		}
		return total
	}
	if cb, bb := bytesSent(cached), bytesSent(base); cb >= bb {
		t.Fatalf("cache did not reduce wire traffic: %d vs %d bytes", cb, bb)
	}
	// Cached runs must still train correctly (same loss trajectory
	// shape: decreasing).
	if cached.LastEpoch().Loss <= 0 {
		t.Fatal("cached run lost the loss signal")
	}
}

func TestFetchCachedCorrectRows(t *testing.T) {
	d := tinySBM()
	cl := cluster.New(4, cluster.Perlmutter())
	g := cluster.NewGrid(cl, 4, 1)
	stores := NewFeatureStores(g, d.Features)
	want := []int{0, 100, 511, 100, 7, 0}
	_, err := cl.Run(func(r *cluster.Rank) error {
		c := cache.New(cache.StaticDegree, 64, d.Graph.Degrees())
		for trial := 0; trial < 2; trial++ { // second pass hits LRU/admitted
			got := stores[r.ID].FetchCached(r, want, c)
			for i, v := range want {
				for j := 0; j < got.Cols; j++ {
					if got.At(i, j) != d.Features.At(v, j) {
						t.Errorf("rank %d: cached fetch row %d wrong", r.ID, i)
						return nil
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateFullMatchesSampledRoughly(t *testing.T) {
	// Full-batch (exact) accuracy and sampled accuracy must roughly
	// agree on a well-trained model — the paper's claim that sampling
	// does not change the learning outcome.
	d := tinySBM()
	cfg := Config{P: 2, C: 1, Epochs: 10, Seed: 16, LR: 0.02}
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sampled := Evaluate(d, res.Params, cfg, d.Test, nil)
	exact := EvaluateFull(d, res.Params, cfg, d.Test)
	if exact < 0.6 {
		t.Fatalf("full-batch accuracy %.3f too low", exact)
	}
	if sampled < exact-0.15 || sampled > exact+0.15 {
		t.Fatalf("sampled %.3f vs exact %.3f diverge", sampled, exact)
	}
}

func TestSimulationDeterministic(t *testing.T) {
	// The simulated clocks must be a pure function of the computation:
	// identical configs produce bit-identical phase timings regardless
	// of goroutine scheduling.
	d := tinySBM()
	cfg := Config{P: 4, C: 2, Epochs: 1, Seed: 77}
	a, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.LastEpoch(), b.LastEpoch()
	if ea.Sampling != eb.Sampling || ea.FeatureFetch != eb.FeatureFetch ||
		ea.Propagation != eb.Propagation || ea.Loss != eb.Loss {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", ea, eb)
	}
}

func TestRunWithDropoutAndGCNAgg(t *testing.T) {
	d := tinySBM()
	res, err := Run(d, Config{P: 2, C: 1, Epochs: 4, Seed: 18, LR: 0.02,
		Dropout: 0.2, Agg: gnn.GCNAgg})
	if err != nil {
		t.Fatal(err)
	}
	if res.LastEpoch().Loss >= res.Epochs[0].Loss {
		t.Fatalf("dropout+GCN training failed to reduce loss: %v -> %v",
			res.Epochs[0].Loss, res.LastEpoch().Loss)
	}
	acc := Evaluate(d, res.Params, Config{P: 2, C: 1, Seed: 18, Agg: gnn.GCNAgg}, d.Test, nil)
	if acc < 0.4 {
		t.Fatalf("accuracy %.3f too low", acc)
	}
}

func TestTrackValAccuracyImproves(t *testing.T) {
	// A noisier SBM so the first epoch cannot already saturate.
	d := datasets.SBM(datasets.SBMConfig{
		N: 600, Classes: 8, Features: 8,
		IntraDeg: 6, InterDeg: 3, Noise: 2.0,
		BatchSize: 32, Fanouts: []int{5, 3}, LayerWidth: 32, Seed: 20,
	})
	res, err := Run(d, Config{P: 2, C: 1, Epochs: 6, Seed: 19, LR: 0.005, TrackVal: true})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Epochs[0].ValAccuracy, res.LastEpoch().ValAccuracy
	if last <= first {
		t.Fatalf("val accuracy did not improve: %.3f -> %.3f", first, last)
	}
	if first >= 0.99 {
		t.Fatalf("dataset too easy for the test: first-epoch accuracy %.3f", first)
	}
}

func TestOverlapFasterThanSequentialNotBelowBound(t *testing.T) {
	d := tinySBM()
	base := Config{P: 4, C: 1, K: 16, Epochs: 1, Seed: 23}
	seq, err := Run(d, base)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.Overlap = true
	ov, err := Run(d, over)
	if err != nil {
		t.Fatal(err)
	}
	eSeq, eOv := seq.LastEpoch(), ov.LastEpoch()
	if eOv.Total >= eSeq.Total {
		t.Fatalf("overlap (%v) not faster than sequential (%v)", eOv.Total, eSeq.Total)
	}
	// Lower bound: the staged engine prefetches both sampling and
	// feature fetch, but propagation sits on the critical path of
	// every schedule — the makespan cannot beat the training stream.
	bound := eSeq.Propagation
	if eOv.Total < bound*0.95 {
		t.Fatalf("overlap (%v) below physical bound (%v)", eOv.Total, bound)
	}
	// The exposed prefetch latency is reported, not silently dropped.
	if eOv.Stall < 0 {
		t.Fatalf("negative stall %v", eOv.Stall)
	}
	// Training outcome identical: overlap only reschedules work.
	if eOv.Loss != eSeq.Loss {
		t.Fatalf("overlap changed training: loss %v vs %v", eOv.Loss, eSeq.Loss)
	}
}

func TestOverlapTrainingBitIdenticalToSequential(t *testing.T) {
	// The overlapped schedule only reorders *when* work is charged to
	// the simulated clocks, never *what* is computed: with the same
	// seed, every epoch's loss, the trained parameters and the final
	// accuracy must match the sequential schedule exactly.
	d := tinySBM()
	base := Config{P: 4, C: 2, K: 8, Epochs: 3, Seed: 31, LR: 0.02, TrackVal: true}
	seq, err := Run(d, base)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.Overlap = true
	ov, err := Run(d, over)
	if err != nil {
		t.Fatal(err)
	}
	for e := range seq.Epochs {
		if seq.Epochs[e].Loss != ov.Epochs[e].Loss {
			t.Fatalf("epoch %d loss diverged: %v vs %v", e, seq.Epochs[e].Loss, ov.Epochs[e].Loss)
		}
		if seq.Epochs[e].ValAccuracy != ov.Epochs[e].ValAccuracy {
			t.Fatalf("epoch %d val accuracy diverged: %v vs %v",
				e, seq.Epochs[e].ValAccuracy, ov.Epochs[e].ValAccuracy)
		}
	}
	if len(seq.Params) != len(ov.Params) {
		t.Fatalf("param count diverged: %d vs %d", len(seq.Params), len(ov.Params))
	}
	for i := range seq.Params {
		if seq.Params[i] != ov.Params[i] {
			t.Fatalf("param %d diverged: %v vs %v", i, seq.Params[i], ov.Params[i])
		}
	}
	sa := Evaluate(d, seq.Params, base, d.Test, nil)
	oa := Evaluate(d, ov.Params, over, d.Test, nil)
	if sa != oa {
		t.Fatalf("test accuracy diverged: %v vs %v", sa, oa)
	}
}

func TestOverlapSimulatedTimeDeterministic(t *testing.T) {
	// The overlapped schedule runs real goroutines, but simulated time
	// must stay a pure function of the computation.
	d := tinySBM()
	cfg := Config{P: 4, C: 1, K: 16, Epochs: 1, Seed: 37, Overlap: true}
	a, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.LastEpoch(), b.LastEpoch()
	if ea.Total != eb.Total || ea.Stall != eb.Stall || ea.Sampling != eb.Sampling ||
		ea.FeatureFetch != eb.FeatureFetch || ea.Propagation != eb.Propagation {
		t.Fatalf("overlapped simulation not deterministic:\n%+v\n%+v", ea, eb)
	}
}

func TestPartitionedOverlapBitIdenticalToSequential(t *testing.T) {
	// The 1.5D partitioned schedule drives collectives from its
	// sampling and fetch stages; with stream-safe communicator clones
	// those stages prefetch on their own streams, and the overlapped
	// schedule must still compute exactly what the sequential one does:
	// same losses, parameters and accuracy at the same seed.
	d := tinySBM()
	for _, sampler := range []string{"sage", "ladies", "fastgcn"} {
		base := Config{P: 4, C: 2, K: 8, Epochs: 2, Seed: 43, LR: 0.02,
			Sampler: sampler, Algorithm: GraphPartitioned, SparsityAware: true}
		seq, err := Run(d, base)
		if err != nil {
			t.Fatalf("%s sequential: %v", sampler, err)
		}
		over := base
		over.Overlap = true
		ov, err := Run(d, over)
		if err != nil {
			t.Fatalf("%s overlapped: %v", sampler, err)
		}
		for e := range seq.Epochs {
			if seq.Epochs[e].Loss != ov.Epochs[e].Loss {
				t.Fatalf("%s epoch %d loss diverged: %v vs %v",
					sampler, e, seq.Epochs[e].Loss, ov.Epochs[e].Loss)
			}
			if seq.Epochs[e].LossBatches != ov.Epochs[e].LossBatches {
				t.Fatalf("%s epoch %d batch count diverged: %d vs %d",
					sampler, e, seq.Epochs[e].LossBatches, ov.Epochs[e].LossBatches)
			}
		}
		if len(seq.Params) != len(ov.Params) {
			t.Fatalf("%s param count diverged", sampler)
		}
		for i := range seq.Params {
			if seq.Params[i] != ov.Params[i] {
				t.Fatalf("%s param %d diverged: %v vs %v", sampler, i, seq.Params[i], ov.Params[i])
			}
		}
		sa := Evaluate(d, seq.Params, base, d.Test, nil)
		oa := Evaluate(d, ov.Params, over, d.Test, nil)
		if sa != oa {
			t.Fatalf("%s test accuracy diverged: %v vs %v", sampler, sa, oa)
		}
	}
}

func TestPartitionedOverlapMakespanWithinBounds(t *testing.T) {
	// The overlapped partitioned epoch can be no longer than the
	// sequential phase sum and no shorter than its busiest stream
	// (max of sampling, fetch and propagation).
	d := tinySBM()
	base := Config{P: 4, C: 2, K: 8, Epochs: 1, Seed: 47,
		Algorithm: GraphPartitioned, SparsityAware: true}
	seq, err := Run(d, base)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.Overlap = true
	ov, err := Run(d, over)
	if err != nil {
		t.Fatal(err)
	}
	eSeq, eOv := seq.LastEpoch(), ov.LastEpoch()
	if eOv.Total > eSeq.Total*(1+1e-9) {
		t.Fatalf("overlapped makespan %v exceeds sequential sum %v", eOv.Total, eSeq.Total)
	}
	bound := eOv.Sampling
	if eOv.FeatureFetch > bound {
		bound = eOv.FeatureFetch
	}
	if eOv.Propagation > bound {
		bound = eOv.Propagation
	}
	if eOv.Total < bound*(1-1e-9) {
		t.Fatalf("overlapped makespan %v below busiest-stream bound %v", eOv.Total, bound)
	}
	if eOv.Stall < 0 {
		t.Fatalf("negative stall %v", eOv.Stall)
	}
}

func TestPartitionedOverlapSimulatedTimeDeterministic(t *testing.T) {
	// Collectives on prefetch streams must not make simulated time
	// depend on goroutine scheduling.
	d := tinySBM()
	cfg := Config{P: 4, C: 2, K: 8, Epochs: 1, Seed: 53, Overlap: true,
		Algorithm: GraphPartitioned, SparsityAware: true}
	a, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.LastEpoch(), b.LastEpoch()
	if ea.Total != eb.Total || ea.Stall != eb.Stall || ea.Sampling != eb.Sampling ||
		ea.FeatureFetch != eb.FeatureFetch || ea.Propagation != eb.Propagation {
		t.Fatalf("partitioned overlap not deterministic:\n%+v\n%+v", ea, eb)
	}
}

func TestAggregateLossWeightsByBatchCount(t *testing.T) {
	// Rank 0: two batches with losses 1 and 3; rank 1: one batch with
	// loss 9. The epoch loss is the batch-weighted mean 13/3, not rank
	// 0's local average 2.
	sums := [][]float64{{4}, {9}}
	counts := [][]int{{2}, {1}}
	loss, n := AggregateLoss(sums, counts, 0)
	if n != 3 {
		t.Fatalf("counted %d batches, want 3", n)
	}
	if want := 13.0 / 3.0; loss != want {
		t.Fatalf("loss = %v, want %v (rank-0-only would be 2)", loss, want)
	}
	// A rank with no batches carries zero weight.
	loss, n = AggregateLoss([][]float64{{4}, {0}}, [][]int{{2}, {0}}, 0)
	if n != 2 || loss != 2 {
		t.Fatalf("zero-count rank mishandled: loss %v n %d", loss, n)
	}
	// No batches anywhere: zero, not NaN.
	if loss, n = AggregateLoss([][]float64{{0}}, [][]int{{0}}, 0); loss != 0 || n != 0 {
		t.Fatalf("empty epoch mishandled: loss %v n %d", loss, n)
	}
}

func TestLossAggregatesAcrossRanksUnevenBatches(t *testing.T) {
	// 3 batches over p=2 ranks: rank 0 counts 2, rank 1 counts 1. The
	// reported loss must cover all 3 (the old rank-0-local report
	// covered 2 and misweighted the epoch).
	d := tinySBM()
	res, err := Run(d, Config{P: 2, C: 1, Epochs: 1, Seed: 59, MaxBatches: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := res.LastEpoch()
	if e.LossBatches != 3 {
		t.Fatalf("aggregated %d batch losses, want 3 (all ranks)", e.LossBatches)
	}
	if e.Loss <= 0 {
		t.Fatalf("loss signal lost: %v", e.Loss)
	}
}

func TestSmallKScheduleSurfacesEffectiveBulk(t *testing.T) {
	// K below the sampling-block count cannot be honored (every block
	// samples at least one batch per round); the schedule clamps the
	// bulk up and the run surfaces the inflation.
	d := tinySBM()
	cl := cluster.New(8, cluster.Perlmutter())
	grid := cluster.NewGrid(cl, 8, 1)
	s := makeSchedule(Config{P: 8, C: 1, K: 3}, grid, 16)
	if s.sampPerRound != 1 {
		t.Fatalf("sampPerRound = %d, want clamp to 1", s.sampPerRound)
	}
	if got := s.effectiveBulk(); got != 8 {
		t.Fatalf("effectiveBulk = %d, want 8 (the block count)", got)
	}
	res, err := Run(d, Config{P: 8, C: 1, K: 3, Epochs: 1, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveK != 8 {
		t.Fatalf("EffectiveK = %d, want 8 > requested K=3", res.EffectiveK)
	}
	// An honorable K passes through unchanged.
	res, err = Run(d, Config{P: 4, C: 1, K: 8, Epochs: 1, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveK != 8 {
		t.Fatalf("EffectiveK = %d, want the requested 8", res.EffectiveK)
	}
}

// TestFetchCachedScratchReuse pins the per-rank scratch contract: a
// fetch over warm request/response arenas (dirtied by a previous
// call) returns the same rows as a cold one, and the returned matrix
// is freshly allocated — a later fetch must never overwrite an
// earlier result, because the overlap engine hands fetched features
// across stage boundaries while the next batch's fetch runs.
func TestFetchCachedScratchReuse(t *testing.T) {
	d := tinySBM()
	cl := cluster.New(4, cluster.Perlmutter())
	g := cluster.NewGrid(cl, 4, 2) // c=2: replicas share a store, scratch is per grid column
	stores := NewFeatureStores(g, d.Features)
	wantA := []int{0, 100, 511, 7}
	wantB := []int{3, 9, 200, 450, 12, 100}
	_, err := cl.Run(func(r *cluster.Rank) error {
		a := stores[r.ID].FetchCached(r, wantA, nil)
		b := stores[r.ID].FetchCached(r, wantB, nil) // warm scratch
		for i, v := range wantA {
			for j := 0; j < a.Cols; j++ {
				if a.At(i, j) != d.Features.At(v, j) {
					t.Errorf("rank %d: earlier fetch row %d clobbered by scratch reuse", r.ID, i)
					return nil
				}
			}
		}
		for i, v := range wantB {
			for j := 0; j < b.Cols; j++ {
				if b.At(i, j) != d.Features.At(v, j) {
					t.Errorf("rank %d: warm-scratch fetch row %d wrong", r.ID, i)
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFetchCachedDedupesRepeatedVertices(t *testing.T) {
	// Repeated vertices in one request cross the wire once: the wire
	// volume of [v, v, v, w] equals that of [v, w], rows land in every
	// slot, and the cache sees one Lookup and at most one Admit per
	// distinct vertex per request.
	d := tinySBM()
	fetchBytes := func(verts []int, withCache bool) (int64, cache.Stats, *dense.Matrix) {
		cl := cluster.New(4, cluster.Perlmutter())
		g := cluster.NewGrid(cl, 4, 1)
		stores := NewFeatureStores(g, d.Features)
		caches := make([]cache.Cache, 4)
		if withCache {
			for i := range caches {
				caches[i] = cache.New(cache.LRU, 64, nil)
			}
		}
		var out *dense.Matrix
		res, err := cl.Run(func(r *cluster.Rank) error {
			got := stores[r.ID].FetchCached(r, verts, caches[r.ID])
			if r.ID == 0 {
				out = got
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, s := range res.Ranks {
			total += s.BytesSent
		}
		var st cache.Stats
		if withCache {
			st = caches[0].Stats()
		}
		return total, st, out
	}
	// 400 is remote to rank 0 (4 ranks own 128 rows each).
	repeated, _, out := fetchBytes([]int{400, 400, 400, 7}, false)
	distinct, _, _ := fetchBytes([]int{400, 7}, false)
	if repeated != distinct {
		t.Fatalf("repeats crossed the wire: %d bytes vs %d for distinct", repeated, distinct)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < out.Cols; j++ {
			if out.At(i, j) != d.Features.At(400, j) {
				t.Fatalf("repeat slot %d row wrong at col %d", i, j)
			}
		}
	}
	for j := 0; j < out.Cols; j++ {
		if out.At(3, j) != d.Features.At(7, j) {
			t.Fatalf("distinct slot row wrong at col %d", j)
		}
	}
	// Cache accounting: one miss per distinct remote vertex on rank 0
	// ([400 x3] -> 1 miss), and a repeat of a cached vertex stays one
	// hit per request.
	_, st, _ := fetchBytes([]int{400, 400, 400}, true)
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("repeated request should Lookup once: %+v", st)
	}
}

func TestLastEpochEmptyResultIsZero(t *testing.T) {
	var r Result
	if got := r.LastEpoch(); got != (EpochStats{}) {
		t.Fatalf("LastEpoch on empty result = %+v, want zero", got)
	}
}

func TestHierAllReduceSameTraining(t *testing.T) {
	d := tinySBM()
	flat, err := Run(d, Config{P: 8, C: 2, Epochs: 2, Seed: 24, MaxBatches: 8})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := Run(d, Config{P: 8, C: 2, Epochs: 2, Seed: 24, MaxBatches: 8, HierAllReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	// Summation order differs between the algorithms (as with real
	// NCCL reductions) and Adam amplifies ULP-level differences over
	// steps, so compare training *outcomes*, not parameters: both
	// runs must learn equally well.
	fa := Evaluate(d, flat.Params, Config{P: 8, C: 2, Seed: 24}, d.Test, nil)
	ha := Evaluate(d, hier.Params, Config{P: 8, C: 2, Seed: 24}, d.Test, nil)
	if diff := fa - ha; diff > 0.1 || diff < -0.1 {
		t.Fatalf("accuracy diverges between all-reduce algorithms: %.3f vs %.3f", fa, ha)
	}
}

// Golden values captured on the pre-refactor code (inline α–β formulas,
// AllReduceSumHier as a special-case function) at these exact configs.
// The pluggable collective-algorithm layer must keep default (FlatTree)
// runs — and the Hierarchical selection that replaced AllReduceSumHier —
// bit-identical in simulated time and loss. The partitioned golden was
// captured with the AllReduceGeneric local-reduction memory charge
// applied to the old code, since that satellite fix deliberately adds
// the (documented) ChargeMem term the old generic all-reduce lacked.
func TestGoldenFlatTreeBitIdentical(t *testing.T) {
	d := tinySBM()
	// Every golden must hold bit-for-bit on both execution backends:
	// the backend moves the simulator's machinery, never its results.
	check := func(name string, cfg Config, wantSim, wantTotal, wantLoss float64) {
		t.Helper()
		for _, be := range []cluster.Backend{cluster.GoroutineBackend, cluster.DESBackend} {
			cfg.Backend = be
			res, err := Run(d, cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, be, err)
			}
			e := res.LastEpoch()
			if res.Cluster.SimTime != wantSim {
				t.Errorf("%s/%v: SimTime = %.17g, want %.17g", name, be, res.Cluster.SimTime, wantSim)
			}
			if e.Total != wantTotal {
				t.Errorf("%s/%v: Total = %.17g, want %.17g", name, be, e.Total, wantTotal)
			}
			if e.Loss != wantLoss {
				t.Errorf("%s/%v: Loss = %.17g, want %.17g", name, be, e.Loss, wantLoss)
			}
		}
	}
	check("replicated", Config{P: 8, C: 2, Epochs: 2, Seed: 5, MaxBatches: 8},
		0.00055022244746666686, 0.00055033819413333347, 0.65450965782981307)
	check("partitioned", Config{P: 8, C: 2, Epochs: 2, Seed: 5, MaxBatches: 8,
		Algorithm: GraphPartitioned, SparsityAware: true},
		0.001098003337466667, 0.00085527868810000049, 0.66800119073290198)
	check("hier", Config{P: 8, C: 2, Epochs: 2, Seed: 5, MaxBatches: 8, HierAllReduce: true},
		0.00054651823413333334, 0.00054663398079999996, 0.65450965782981296)
}

// The ring and pairwise schedules change only *when* work is charged,
// never what is computed: training losses must be bit-identical to the
// flat default, while the simulated time moves with the schedule.
func TestRingAndPairwiseSelectionSameValues(t *testing.T) {
	d := tinySBM()
	base := Config{P: 8, C: 2, Epochs: 2, Seed: 5, MaxBatches: 8}
	flat, err := Run(d, base)
	if err != nil {
		t.Fatal(err)
	}
	alt := base
	alt.Collectives = cluster.Collectives{AllReduce: cluster.Ring, AllToAll: cluster.Pairwise}
	ring, err := Run(d, alt)
	if err != nil {
		t.Fatal(err)
	}
	for e := range flat.Epochs {
		if flat.Epochs[e].Loss != ring.Epochs[e].Loss {
			t.Fatalf("epoch %d loss diverged: %v vs %v", e, flat.Epochs[e].Loss, ring.Epochs[e].Loss)
		}
	}
	for i, p := range flat.Params {
		if ring.Params[i] != p {
			t.Fatalf("param %d diverged under ring/pairwise selection", i)
		}
	}
	if flat.Cluster.SimTime == ring.Cluster.SimTime {
		t.Fatal("ring/pairwise selection did not change the simulated schedule")
	}
}

// TestRunRejectsInvalidCollectives pins the validation path.
func TestRunRejectsInvalidCollectives(t *testing.T) {
	d := tinySBM()
	_, err := Run(d, Config{P: 4, C: 1, Epochs: 1, Seed: 1,
		Collectives: cluster.Collectives{AllToAll: cluster.Ring}})
	if err == nil {
		t.Fatal("ring all-to-allv accepted")
	}
	_, err = Run(d, Config{P: 4, C: 1, Epochs: 1, Seed: 1,
		Collectives: cluster.Collectives{AllReduce: cluster.Pairwise}})
	if err == nil {
		t.Fatal("pairwise all-reduce accepted")
	}
}

// Overlap determinism must hold per collective algorithm: the
// software-pipelined schedule trains bit-identically to sequential and
// books a reproducible makespan under ring and hierarchical selections
// too, not just the flat default.
func TestOverlapDeterministicPerAlgorithm(t *testing.T) {
	d := tinySBM()
	for _, tbl := range []cluster.Collectives{
		{AllReduce: cluster.Ring, AllToAll: cluster.Pairwise},
		{AllReduce: cluster.Hierarchical},
	} {
		base := Config{P: 8, C: 2, Epochs: 2, Seed: 9, MaxBatches: 8, Collectives: tbl}
		seq, err := Run(d, base)
		if err != nil {
			t.Fatal(err)
		}
		over := base
		over.Overlap = true
		o1, err := Run(d, over)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := Run(d, over)
		if err != nil {
			t.Fatal(err)
		}
		for e := range seq.Epochs {
			if seq.Epochs[e].Loss != o1.Epochs[e].Loss {
				t.Fatalf("%v: overlap changed epoch %d loss", tbl, e)
			}
		}
		if o1.Cluster.SimTime != o2.Cluster.SimTime {
			t.Fatalf("%v: overlapped SimTime not deterministic: %.17g vs %.17g",
				tbl, o1.Cluster.SimTime, o2.Cluster.SimTime)
		}
	}
}

// Contention-off golden identity: with Topology == nil every strategy
// must charge bit-identically to the pre-topology code under every
// collective algorithm — the contention layer may not perturb the
// ideal charging path. Values captured at the introduction of the
// topology layer (the flat entries equal the pre-refactor goldens
// above, pinning the chain back to the original inline formulas).
func TestGoldenContentionOffPerAlgorithm(t *testing.T) {
	d := tinySBM()
	tables := map[string]cluster.Collectives{
		"flat": {},
		"ring": {AllReduce: cluster.Ring, AllToAll: cluster.Pairwise},
		"hier": {AllReduce: cluster.Hierarchical},
	}
	golden := []struct {
		algorithm Algorithm
		table     string
		sim, loss float64
	}{
		{GraphReplicated, "flat", 0.00055022244746666686, 0.65450965782981307},
		{GraphReplicated, "ring", 0.00073401284746666675, 0.65450965782981307},
		{GraphReplicated, "hier", 0.00054651823413333334, 0.65450965782981296},
		{GraphPartitioned, "flat", 0.001098003337466667, 0.66800119073290198},
		{GraphPartitioned, "ring", 0.0012977937374666669, 0.66800119073290198},
		{GraphPartitioned, "hier", 0.0010942991241333338, 0.66800119073290198},
	}
	for _, g := range golden {
		for _, be := range []cluster.Backend{cluster.GoroutineBackend, cluster.DESBackend} {
			// An explicit "ideal" parse is the nil topology: the same run.
			topo, err := cluster.ParseTopology("ideal")
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(d, Config{P: 8, C: 2, Epochs: 2, Seed: 5, MaxBatches: 8,
				Algorithm: g.algorithm, SparsityAware: g.algorithm == GraphPartitioned,
				Collectives: tables[g.table], Topology: topo, Backend: be})
			if err != nil {
				t.Fatalf("%v/%s/%v: %v", g.algorithm, g.table, be, err)
			}
			if got := res.Cluster.SimTime; got != g.sim {
				t.Errorf("%v/%s/%v: SimTime = %.17g, want %.17g", g.algorithm, g.table, be, got, g.sim)
			}
			if got := res.LastEpoch().Loss; got != g.loss {
				t.Errorf("%v/%s/%v: Loss = %.17g, want %.17g", g.algorithm, g.table, be, got, g.loss)
			}
			if res.Cluster.PhysLinks != nil {
				t.Errorf("%v/%s/%v: contention-off run reported physical links", g.algorithm, g.table, be)
			}
		}
	}
}

// A contention topology may change only *when* work is charged, never
// what is computed: training outcomes stay bit-identical while the
// oversubscribed fabric measurably stretches the schedule.
func TestOversubscribedTopologySlowsButPreservesTraining(t *testing.T) {
	d := tinySBM()
	base := Config{P: 8, C: 2, Epochs: 2, Seed: 5, MaxBatches: 8}
	ideal, err := Run(d, base)
	if err != nil {
		t.Fatal(err)
	}
	contended := base
	contended.Topology = cluster.OversubscribedTopology(4)
	over, err := Run(d, contended)
	if err != nil {
		t.Fatal(err)
	}
	for e := range ideal.Epochs {
		if ideal.Epochs[e].Loss != over.Epochs[e].Loss {
			t.Fatalf("epoch %d loss changed under contention: %v vs %v",
				e, ideal.Epochs[e].Loss, over.Epochs[e].Loss)
		}
	}
	for i, p := range ideal.Params {
		if over.Params[i] != p {
			t.Fatalf("param %d changed under contention", i)
		}
	}
	if over.Cluster.SimTime <= ideal.Cluster.SimTime {
		t.Fatalf("oversubscribed fabric did not slow the run: %v vs %v",
			over.Cluster.SimTime, ideal.Cluster.SimTime)
	}
	if len(over.Cluster.PhysLinks) == 0 {
		t.Fatal("contended run recorded no physical-link stats")
	}
}

// On the fully-provisioned Perlmutter topology (one NIC per GPU) a
// bulk-synchronous run never contends: every member of every
// collective flows through its own injection links, so the charged
// times agree with the ideal α–β model to floating-point round-off.
func TestPerlmutterTopologySequentialMatchesIdeal(t *testing.T) {
	d := tinySBM()
	base := Config{P: 8, C: 2, Epochs: 2, Seed: 5, MaxBatches: 8}
	ideal, err := Run(d, base)
	if err != nil {
		t.Fatal(err)
	}
	perl := base
	perl.Topology = cluster.PerlmutterTopology()
	res, err := Run(d, perl)
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(res.Cluster.SimTime - ideal.Cluster.SimTime)
	if diff > 1e-9*ideal.Cluster.SimTime {
		t.Fatalf("per-GPU-NIC sequential run diverged from ideal: %.17g vs %.17g",
			res.Cluster.SimTime, ideal.Cluster.SimTime)
	}
	for _, pl := range res.Cluster.PhysLinks {
		if pl.MaxConcurrency > 1 {
			t.Fatalf("sequential run contended on %s (concurrency %d)", pl.Name, pl.MaxConcurrency)
		}
	}
}

// The overlapped schedule still trains bit-identically to sequential
// under a contention topology — contention stretches stream clocks,
// never values — and the run completes without deadlock even though
// every collective takes an extra rendezvous round.
func TestOverlapUnderContentionSameTraining(t *testing.T) {
	d := tinySBM()
	base := Config{P: 8, C: 2, Epochs: 2, Seed: 9, MaxBatches: 8,
		Topology: cluster.OversubscribedTopology(4)}
	seq, err := Run(d, base)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.Overlap = true
	res, err := Run(d, over)
	if err != nil {
		t.Fatal(err)
	}
	for e := range seq.Epochs {
		if seq.Epochs[e].Loss != res.Epochs[e].Loss {
			t.Fatalf("overlap changed epoch %d loss under contention", e)
		}
	}
}

// Config.Topology rejects invalid layouts through Run's error path.
func TestRunRejectsInvalidTopology(t *testing.T) {
	d := tinySBM()
	_, err := Run(d, Config{P: 4, C: 1, Epochs: 1, Seed: 1,
		Topology: &cluster.Topology{Name: "bad", NICsPerNode: -1}})
	if err == nil {
		t.Fatal("invalid topology accepted")
	}
}
