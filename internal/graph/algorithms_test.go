package graph

import (
	"testing"

	"repro/internal/sparse"
)

// triangleGraph: vertices {0,1,2} form a triangle; 3 hangs off 2; 4-5
// form a separate edge.
func triangleGraph() *Graph {
	return New(sparse.FromEntries(6, 6, [][3]float64{
		{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, // directed triangle
		{2, 3, 1},
		{4, 5, 1},
	}))
}

func TestSymmetrize(t *testing.T) {
	g := Symmetrize(triangleGraph())
	if g.Adj.At(1, 0) != 1 || g.Adj.At(0, 1) != 1 {
		t.Fatal("edge not mirrored")
	}
	if g.Adj.At(5, 4) != 1 {
		t.Fatal("isolated edge not mirrored")
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if g.Adj.At(i, j) != g.Adj.At(j, i) {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

func TestTriangleCount(t *testing.T) {
	if got := TriangleCount(triangleGraph()); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
	// A 4-clique has 4 triangles.
	clique := NewCompleteGraph(4)
	if got := TriangleCount(clique); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	// A path has none.
	path := New(sparse.FromEntries(4, 4, [][3]float64{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}))
	if got := TriangleCount(path); got != 0 {
		t.Fatalf("path triangles = %d, want 0", got)
	}
}

// NewCompleteGraph returns K_n (directed both ways, no self loops).
func NewCompleteGraph(n int) *Graph {
	coo := sparse.NewCOO(n, n, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				coo.Add(i, j, 1)
			}
		}
	}
	return New(coo.ToCSR())
}

func TestConnectedComponents(t *testing.T) {
	labels, count := ConnectedComponents(triangleGraph())
	if count != 2 {
		t.Fatalf("components = %d, want 2", count)
	}
	// {0,1,2,3} share a component; {4,5} another.
	if labels[0] != labels[3] || labels[4] != labels[5] {
		t.Fatalf("labels wrong: %v", labels)
	}
	if labels[0] == labels[4] {
		t.Fatal("separate components merged")
	}
}

func TestConnectedComponentsFullyConnected(t *testing.T) {
	g := EnsureMinOutDegree(ErdosRenyi(100, 6, 51), 3, 52)
	_, count := ConnectedComponents(g)
	if count != 1 {
		t.Fatalf("dense random graph has %d components", count)
	}
}

func TestBFSLevels(t *testing.T) {
	levels := BFSLevels(triangleGraph(), 0)
	want := []int{0, 1, 1, 2, -1, -1}
	for i, w := range want {
		if levels[i] != w {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
}

func TestBFSLevelsMatchExplosionBFS(t *testing.T) {
	// Cross-check against a plain queue BFS on a random graph.
	g := Symmetrize(ErdosRenyi(200, 4, 53))
	src := 7
	want := make([]int, 200)
	for i := range want {
		want[i] = -1
	}
	want[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if want[u] == -1 {
				want[u] = want[v] + 1
				queue = append(queue, u)
			}
		}
	}
	got := BFSLevels(g, src)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: level %d, want %d", i, got[i], want[i])
		}
	}
}

func TestKCoreDecomposition(t *testing.T) {
	// Triangle + pendant: triangle vertices have core 2, pendant 1,
	// isolated edge vertices 1.
	core := KCoreDecomposition(triangleGraph())
	want := []int{2, 2, 2, 1, 1, 1}
	for i, w := range want {
		if core[i] != w {
			t.Fatalf("core = %v, want %v", core, want)
		}
	}
}

func TestKCoreClique(t *testing.T) {
	core := KCoreDecomposition(NewCompleteGraph(5))
	for v, c := range core {
		if c != 4 {
			t.Fatalf("K5 vertex %d core %d, want 4", v, c)
		}
	}
}

func TestSpGEMMMaskedAgainstUnmasked(t *testing.T) {
	g := Symmetrize(ErdosRenyi(60, 5, 54))
	a := g.Adj
	full, _ := sparse.SpGEMMSemiring(a, a, sparse.PlusTimes)
	masked, _ := sparse.SpGEMMMasked(a, a, a, sparse.PlusTimes)
	// Masked result must agree with the full product on the mask
	// pattern and store nothing outside it.
	for i := 0; i < masked.Rows; i++ {
		cols, vals := masked.Row(i)
		for k, c := range cols {
			if a.At(i, c) == 0 {
				t.Fatalf("entry (%d,%d) outside mask", i, c)
			}
			if full.At(i, c) != vals[k] {
				t.Fatalf("masked value (%d,%d) = %v, full %v", i, c, vals[k], full.At(i, c))
			}
		}
	}
}
