// Package graph provides the graph representation, synthetic graph
// generators, and partitioning utilities underlying the distributed
// sampling experiments.
package graph

import (
	"fmt"
	"math/rand"

	"repro/internal/sparse"
)

// Graph is a directed graph stored as a CSR adjacency matrix A where
// A[i][j] = 1 means an edge from i to j (j is an in-neighbor source for
// aggregation at i, matching the paper's P = QA convention where row i
// of A lists the vertices aggregated into i).
type Graph struct {
	Adj *sparse.CSR
}

// New wraps an adjacency matrix. The matrix must be square.
func New(adj *sparse.CSR) *Graph {
	if adj.Rows != adj.Cols {
		panic(fmt.Sprintf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols))
	}
	return &Graph{Adj: adj}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.Adj.Rows }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return g.Adj.NNZ() }

// AvgDegree returns the average out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}

// Degrees returns the out-degree of every vertex.
func (g *Graph) Degrees() []int {
	out := make([]int, g.NumVertices())
	for i := range out {
		out[i] = g.Adj.RowNNZ(i)
	}
	return out
}

// Neighbors returns the out-neighbors of v (aliased, do not modify).
func (g *Graph) Neighbors(v int) []int {
	cols, _ := g.Adj.Row(v)
	return cols
}

// RMATConfig parameterizes a Kronecker (R-MAT) generator, the standard
// scale-free generator used to stand in for the OGB/HipMCL datasets.
type RMATConfig struct {
	Scale      int     // vertices = 2^Scale
	EdgeFactor int     // directed edges ~= EdgeFactor * vertices
	A, B, C    float64 // R-MAT quadrant probabilities; D = 1-A-B-C
	Seed       int64
}

// RMAT generates a scale-free directed graph via recursive quadrant
// descent, discarding self loops and deduplicating parallel edges.
func RMAT(cfg RMATConfig) *Graph {
	n := 1 << cfg.Scale
	target := cfg.EdgeFactor * n
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := 1 - cfg.A - cfg.B - cfg.C
	if d < 0 {
		panic("graph: RMAT probabilities exceed 1")
	}
	coo := sparse.NewCOO(n, n, target)
	seen := make(map[int64]struct{}, target)
	attempts := 0
	for coo.NNZ() < target && attempts < target*20 {
		attempts++
		r, c := 0, 0
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			p := rng.Float64()
			switch {
			case p < cfg.A:
				// top-left: nothing to add
			case p < cfg.A+cfg.B:
				c |= 1 << bit
			case p < cfg.A+cfg.B+cfg.C:
				r |= 1 << bit
			default:
				r |= 1 << bit
				c |= 1 << bit
			}
		}
		if r == c {
			continue
		}
		key := int64(r)<<32 | int64(c)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		coo.Add(r, c, 1)
	}
	return New(coo.ToCSR())
}

// ErdosRenyi generates a uniform random directed graph with
// approximately avgDegree out-edges per vertex.
func ErdosRenyi(n int, avgDegree float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	target := int(avgDegree * float64(n))
	coo := sparse.NewCOO(n, n, target)
	seen := make(map[int64]struct{}, target)
	for coo.NNZ() < target {
		r, c := rng.Intn(n), rng.Intn(n)
		if r == c {
			continue
		}
		key := int64(r)<<32 | int64(c)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		coo.Add(r, c, 1)
	}
	return New(coo.ToCSR())
}

// EnsureMinOutDegree adds uniform random edges so that every vertex has
// at least minDeg out-neighbors. GNN sampling requires every frontier
// vertex to have someone to sample.
func EnsureMinOutDegree(g *Graph, minDeg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	coo := sparse.NewCOO(n, n, g.NumEdges()+n)
	for i := 0; i < n; i++ {
		cols, _ := g.Adj.Row(i)
		for _, c := range cols {
			coo.Add(i, c, 1)
		}
		have := map[int]struct{}{}
		for _, c := range cols {
			have[c] = struct{}{}
		}
		for len(have) < minDeg && len(have) < n-1 {
			c := rng.Intn(n)
			if c == i {
				continue
			}
			if _, dup := have[c]; dup {
				continue
			}
			have[c] = struct{}{}
			coo.Add(i, c, 1)
		}
	}
	adj := coo.ToCSR()
	// Parallel edges introduced by duplicate Adds were summed; clamp
	// values back to 1 to keep the adjacency binary.
	adj.Apply(func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return 0
	})
	return New(adj)
}
