package graph

import "fmt"

// BlockRowRange returns the half-open row interval [Lo, Hi) owned by
// block `idx` out of `blocks` when n rows are distributed in contiguous
// balanced block rows (the 1D and 1.5D partitioning of Section 5).
func BlockRowRange(n, blocks, idx int) (lo, hi int) {
	if idx < 0 || idx >= blocks {
		panic(fmt.Sprintf("graph: block index %d outside %d blocks", idx, blocks))
	}
	base := n / blocks
	rem := n % blocks
	lo = idx*base + min(idx, rem)
	size := base
	if idx < rem {
		size++
	}
	return lo, lo + size
}

// BlockOwner returns the block index owning row r under BlockRowRange
// partitioning.
func BlockOwner(n, blocks, r int) int {
	base := n / blocks
	rem := n % blocks
	// First rem blocks have size base+1.
	boundary := rem * (base + 1)
	if r < boundary {
		return r / (base + 1)
	}
	if base == 0 {
		return rem // degenerate: more blocks than rows
	}
	return rem + (r-boundary)/base
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Batches splits the given training vertex ids into contiguous batches
// of size b (the final batch may be smaller). The returned slices alias
// train.
func Batches(train []int, b int) [][]int {
	if b <= 0 {
		panic("graph: batch size must be positive")
	}
	var out [][]int
	for lo := 0; lo < len(train); lo += b {
		hi := lo + b
		if hi > len(train) {
			hi = len(train)
		}
		out = append(out, train[lo:hi])
	}
	return out
}
