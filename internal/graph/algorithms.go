package graph

import (
	"repro/internal/sparse"
)

// Graph analytics expressed in the same sparse linear algebra the
// sampling framework uses, demonstrating that the substrate is a
// general graph-algorithms library in the Combinatorial BLAS /
// GraphBLAST tradition the paper builds on.

// TriangleCount returns the number of triangles in the graph treated
// as undirected, computed with the masked SpGEMM identity
// Σ (A ⊙ (A·A)) / 6 over the symmetrized adjacency.
func TriangleCount(g *Graph) int64 {
	und := Symmetrize(g).Adj
	prod, _ := sparse.SpGEMMMasked(und, und, und, sparse.PlusTimes)
	var total float64
	for _, v := range prod.Val {
		total += v
	}
	return int64(total / 6)
}

// Symmetrize returns the graph with every edge mirrored (A ∨ Aᵀ),
// values forced to 1.
func Symmetrize(g *Graph) *Graph {
	at := g.Adj.Transpose()
	sum := sparse.AddCSR(g.Adj, at)
	sum.Apply(func(v float64) float64 {
		if v != 0 {
			return 1
		}
		return 0
	})
	return New(sum)
}

// ConnectedComponents labels the weakly connected components with
// label-propagation over the or-and frontier product: every vertex
// repeatedly adopts the minimum label in its closed neighborhood until
// a fixed point. Returns the component id per vertex (ids are the
// minimum vertex id in each component) and the component count.
func ConnectedComponents(g *Graph) ([]int, int) {
	und := Symmetrize(g).Adj
	n := g.NumVertices()
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			min := label[v]
			cols, _ := und.Row(v)
			for _, u := range cols {
				if label[u] < min {
					min = label[u]
				}
			}
			if min < label[v] {
				label[v] = min
				changed = true
			}
		}
	}
	seen := map[int]struct{}{}
	for _, l := range label {
		seen[l] = struct{}{}
	}
	return label, len(seen)
}

// BFSLevels returns each vertex's hop distance from the source over
// the symmetrized graph (-1 if unreachable), computed with or-and
// frontier SpMV — the frontier-expansion primitive sampling
// generalizes.
func BFSLevels(g *Graph, source int) []int {
	und := Symmetrize(g).Adj
	// BFS pulls along in-edges of the transposed view; rows of und
	// list neighbors symmetrically so direction is immaterial.
	n := g.NumVertices()
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[source] = 0
	frontier := make([]float64, n)
	frontier[source] = 1
	for depth := 1; ; depth++ {
		next := sparse.SpMVSemiring(und, frontier, sparse.OrAnd)
		advanced := false
		for i := range next {
			if next[i] != 0 && level[i] == -1 {
				level[i] = depth
				advanced = true
			} else {
				next[i] = 0
			}
		}
		if !advanced {
			return level
		}
		frontier = next
	}
}

// KCoreDecomposition returns each vertex's core number in the
// symmetrized graph (the largest k such that the vertex survives in
// the k-core) via iterative peeling.
func KCoreDecomposition(g *Graph) []int {
	und := Symmetrize(g).Adj
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = und.RowNNZ(v)
	}
	core := make([]int, n)
	removed := make([]bool, n)
	for remaining := n; remaining > 0; {
		// Find the minimum remaining degree; peel every vertex at it.
		minDeg := -1
		for v := 0; v < n; v++ {
			if !removed[v] && (minDeg == -1 || deg[v] < minDeg) {
				minDeg = deg[v]
			}
		}
		var queue []int
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] <= minDeg {
				queue = append(queue, v)
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if removed[v] {
				continue
			}
			removed[v] = true
			remaining--
			core[v] = minDeg
			cols, _ := und.Row(v)
			for _, u := range cols {
				if !removed[u] {
					deg[u]--
					if deg[u] <= minDeg {
						queue = append(queue, u)
					}
				}
			}
		}
	}
	return core
}
