package graph

import (
	"testing"
	"testing/quick"
)

func TestRMATBasicProperties(t *testing.T) {
	g := RMAT(RMATConfig{Scale: 10, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19, Seed: 1})
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices = %d, want 1024", g.NumVertices())
	}
	if err := g.Adj.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 6*1024 {
		t.Fatalf("edges = %d, too few for edge factor 8", g.NumEdges())
	}
	// No self loops.
	for i := 0; i < g.NumVertices(); i++ {
		for _, c := range g.Neighbors(i) {
			if c == i {
				t.Fatalf("self loop at %d", i)
			}
		}
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// R-MAT with skewed quadrant probabilities must produce a heavier
	// degree tail than Erdos-Renyi at the same size.
	rm := RMAT(RMATConfig{Scale: 11, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19, Seed: 2})
	er := ErdosRenyi(2048, 8, 2)
	maxDeg := func(g *Graph) int {
		m := 0
		for _, d := range g.Degrees() {
			if d > m {
				m = d
			}
		}
		return m
	}
	if maxDeg(rm) <= maxDeg(er) {
		t.Fatalf("R-MAT max degree %d not heavier than ER %d", maxDeg(rm), maxDeg(er))
	}
}

func TestRMATDeterministic(t *testing.T) {
	cfg := RMATConfig{Scale: 8, EdgeFactor: 4, A: 0.5, B: 0.2, C: 0.2, Seed: 7}
	a, b := RMAT(cfg), RMAT(cfg)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("R-MAT not deterministic for fixed seed")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(500, 6, 3)
	if err := g.Adj.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3000 {
		t.Fatalf("edges = %d, want 3000", g.NumEdges())
	}
	if g.AvgDegree() != 6 {
		t.Fatalf("avg degree = %v", g.AvgDegree())
	}
}

func TestEnsureMinOutDegree(t *testing.T) {
	g := ErdosRenyi(200, 1, 4)
	g2 := EnsureMinOutDegree(g, 3, 5)
	if err := g2.Adj.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, d := range g2.Degrees() {
		if d < 3 {
			t.Fatalf("vertex %d degree %d < 3", i, d)
		}
	}
	// Original edges must be preserved.
	for i := 0; i < g.NumVertices(); i++ {
		for _, c := range g.Neighbors(i) {
			if g2.Adj.At(i, c) != 1 {
				t.Fatalf("edge (%d,%d) lost", i, c)
			}
		}
	}
}

func TestBlockRowRangePartitionIsExact(t *testing.T) {
	check := func(nRaw, blocksRaw uint8) bool {
		n := int(nRaw)
		blocks := 1 + int(blocksRaw)%16
		covered := 0
		prevHi := 0
		for b := 0; b < blocks; b++ {
			lo, hi := BlockRowRange(n, blocks, b)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockOwnerConsistentWithRange(t *testing.T) {
	for _, n := range []int{1, 7, 64, 100, 101} {
		for _, blocks := range []int{1, 2, 3, 7, 8} {
			for r := 0; r < n; r++ {
				owner := BlockOwner(n, blocks, r)
				lo, hi := BlockRowRange(n, blocks, owner)
				if r < lo || r >= hi {
					t.Fatalf("n=%d blocks=%d row %d: owner %d has [%d,%d)", n, blocks, r, owner, lo, hi)
				}
			}
		}
	}
}

func TestBatches(t *testing.T) {
	train := make([]int, 10)
	for i := range train {
		train[i] = i
	}
	bs := Batches(train, 4)
	if len(bs) != 3 || len(bs[0]) != 4 || len(bs[2]) != 2 {
		t.Fatalf("batches wrong: %v", bs)
	}
}

func TestBatchesBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero batch size")
		}
	}()
	Batches([]int{1}, 0)
}
