package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Static call graph.
//
// Interprocedural analyzers (the facts layer, facts.go) need to know,
// for every function declared in a package, which functions its body
// can invoke. The graph is built per package over the type-checked
// ASTs and is deliberately static:
//
//   - direct calls (f(...)) and method calls (x.m(...)) resolve through
//     the type checker's Uses map, which devirtualizes a method call
//     whenever the receiver's static type is concrete; a call through
//     an interface value resolves to the interface method object, which
//     never carries facts — conservatively quiet.
//   - function values are tracked conservatively: every declared
//     function whose identifier appears outside call position is
//     "address-taken", and an indirect call (through a variable,
//     field or parameter of function type) gets an edge to every
//     address-taken function with an identical signature. Packages are
//     processed in dependency order, so the candidate set spans the
//     current package and everything it imports.
//
// Function literals are attributed to their enclosing declaration:
// a fact-relevant operation inside a closure taints the function that
// wrote the closure, which is where a human auditor would look.
//
// Nodes and edges are keyed by FuncKey, a stable, package-path-based
// symbol name — *types.Func object identity cannot cross packages here
// because test-augmented package variants are re-type-checked from
// scratch (see load.go) and so mint fresh objects.

// EdgeKind classifies how a call site reached its callee.
type EdgeKind uint8

const (
	// EdgeDirect is a plain call of a declared function.
	EdgeDirect EdgeKind = iota
	// EdgeMethod is a method call resolved on a concrete receiver type
	// (or an interface method, which carries no facts).
	EdgeMethod
	// EdgeFuncValue is an indirect call through a function value,
	// resolved conservatively by signature against the address-taken
	// set.
	EdgeFuncValue
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeDirect:
		return "direct"
	case EdgeMethod:
		return "method"
	case EdgeFuncValue:
		return "funcvalue"
	}
	return "unknown"
}

// Edge is one call site: the callee's FuncKey plus where and how.
type Edge struct {
	Callee string // FuncKey of the callee
	Pos    token.Pos
	Kind   EdgeKind
}

// CGNode is one declared function (or method) and its outgoing calls,
// in source order.
type CGNode struct {
	Key   string // FuncKey of this function
	Fn    *types.Func
	Edges []Edge
}

// CallGraph holds one package's nodes. Edges may point at functions in
// other packages (or the standard library); only module-internal
// callees ever carry facts.
type CallGraph struct {
	Pkg   *Package
	nodes map[string]*CGNode
	order []string // sorted keys, for deterministic iteration
}

// Node returns the graph node for a FuncKey, or nil.
func (g *CallGraph) Node(key string) *CGNode { return g.nodes[key] }

// Keys returns every node key in sorted order.
func (g *CallGraph) Keys() []string { return g.order }

// FuncKey names a function stably across packages and package
// variants: "pkg/path.Name" for package-level functions and
// "pkg/path.Recv.Name" for methods (receiver type's declaring
// package). Generic instantiations collapse onto their origin.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg, recv := recvTypeName(fn)
	if recv != "" {
		return pkg + "." + recv + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// shortKey trims a FuncKey to its last path segment for report text:
// "repro/internal/cluster.Queue.Recv" -> "cluster.Queue.Recv".
func shortKey(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// sigKey renders a function's signature (receiver excluded) with
// package-path qualification, the matching key for conservative
// func-value resolution.
func sigKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() != nil {
		// Match on the receiver-less shape: a method value bound to a
		// variable calls like a plain function.
		sig = types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	}
	return types.TypeString(sig, func(p *types.Package) string { return p.Path() })
}

// addrTakenSet accumulates, module-wide, the declared functions whose
// identifiers appear outside call position, keyed by signature. It
// lives on the FactBase so candidates span every already-processed
// package.
type addrTakenSet map[string][]string // sigKey -> sorted FuncKeys

func (s addrTakenSet) add(fn *types.Func) {
	sig := sigKey(fn)
	if sig == "" {
		return
	}
	key := FuncKey(fn)
	list := s[sig]
	i := sort.SearchStrings(list, key)
	if i < len(list) && list[i] == key {
		return
	}
	list = append(list, "")
	copy(list[i+1:], list[i:])
	list[i] = key
	s[sig] = list
}

// BuildCallGraph constructs the package's call graph, registering its
// address-taken functions into taken first so in-package indirect
// calls resolve against them.
func BuildCallGraph(pkg *Package, taken addrTakenSet) *CallGraph {
	g := &CallGraph{Pkg: pkg, nodes: map[string]*CGNode{}}

	// Pass 1: mark callee-position identifiers, so every other use of a
	// function identifier counts as address-taken.
	calleePos := map[*ast.Ident]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				calleePos[fun] = true
			case *ast.SelectorExpr:
				calleePos[fun.Sel] = true
			case *ast.IndexExpr:
				markGenericCallee(calleePos, fun.X)
			case *ast.IndexListExpr:
				markGenericCallee(calleePos, fun.X)
			}
			return true
		})
	}
	for id, obj := range pkg.Info.Uses {
		if fn, ok := obj.(*types.Func); ok && !calleePos[id] {
			taken.add(fn)
		}
	}

	// Pass 2: one node per declaration, edges in source order. Function
	// literal bodies contribute edges to their enclosing declaration.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			node := g.node(fn)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(pkg.Info, call); callee != nil {
					kind := EdgeDirect
					if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
						kind = EdgeMethod
					}
					node.Edges = append(node.Edges, Edge{Callee: FuncKey(callee), Pos: call.Pos(), Kind: kind})
					return true
				}
				// Unresolved: an indirect call if the operand is a plain
				// func-typed expression (not a builtin or conversion).
				if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsValue() {
					if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
						key := types.TypeString(stripRecv(sig), func(p *types.Package) string { return p.Path() })
						for _, cand := range taken[key] {
							node.Edges = append(node.Edges, Edge{Callee: cand, Pos: call.Pos(), Kind: EdgeFuncValue})
						}
					}
				}
				return true
			})
		}
	}

	g.order = make([]string, 0, len(g.nodes))
	for k := range g.nodes {
		g.order = append(g.order, k)
	}
	sort.Strings(g.order)
	return g
}

func stripRecv(sig *types.Signature) *types.Signature {
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

func markGenericCallee(calleePos map[*ast.Ident]bool, x ast.Expr) {
	switch fun := ast.Unparen(x).(type) {
	case *ast.Ident:
		calleePos[fun] = true
	case *ast.SelectorExpr:
		calleePos[fun.Sel] = true
	}
}

func (g *CallGraph) node(fn *types.Func) *CGNode {
	key := FuncKey(fn)
	n := g.nodes[key]
	if n == nil {
		n = &CGNode{Key: key, Fn: fn}
		g.nodes[key] = n
	}
	return n
}
