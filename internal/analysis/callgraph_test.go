package analysis

import (
	"go/token"
	"strings"
	"testing"
)

// loadCG builds the call graph over the testdata/callgraph fixture
// with a fresh address-taken set, the way RunPackage does.
func loadCG(t *testing.T) (*Package, *CallGraph, addrTakenSet) {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := LoadFixture(fset, "testdata/callgraph", "repro/fixture")
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	taken := addrTakenSet{}
	return pkg, BuildCallGraph(pkg, taken), taken
}

func edgesTo(g *CallGraph, caller, callee string) []Edge {
	node := g.Node(caller)
	if node == nil {
		return nil
	}
	var out []Edge
	for _, e := range node.Edges {
		if e.Callee == callee {
			out = append(out, e)
		}
	}
	return out
}

func TestCallGraphDirectEdge(t *testing.T) {
	_, g, _ := loadCG(t)
	es := edgesTo(g, "repro/fixture.caller", "repro/fixture.leaf")
	if len(es) != 1 || es[0].Kind != EdgeDirect {
		t.Fatalf("caller -> leaf: got %+v, want one direct edge", es)
	}
}

func TestCallGraphMethodEdge(t *testing.T) {
	_, g, _ := loadCG(t)
	es := edgesTo(g, "repro/fixture.methodCall", "repro/fixture.T.M")
	if len(es) != 1 || es[0].Kind != EdgeMethod {
		t.Fatalf("methodCall -> T.M: got %+v, want one method edge", es)
	}
}

func TestCallGraphFuncValueEdge(t *testing.T) {
	_, g, taken := loadCG(t)
	// leaf appears in argument position inside takesAddress, so it is
	// address-taken under its receiver-less signature...
	found := false
	for _, key := range taken["func()"] {
		found = found || key == "repro/fixture.leaf"
	}
	if !found {
		t.Fatalf("leaf not in address-taken set: %v", taken)
	}
	// ...and the indirect call f() resolves conservatively to it.
	es := edgesTo(g, "repro/fixture.indirect", "repro/fixture.leaf")
	if len(es) != 1 || es[0].Kind != EdgeFuncValue {
		t.Fatalf("indirect -> leaf: got %+v, want one funcvalue edge", es)
	}
}

func TestCallGraphCycle(t *testing.T) {
	_, g, _ := loadCG(t)
	if es := edgesTo(g, "repro/fixture.tickA", "repro/fixture.tickB"); len(es) != 1 {
		t.Fatalf("tickA -> tickB: got %+v", es)
	}
	if es := edgesTo(g, "repro/fixture.tickB", "repro/fixture.tickA"); len(es) != 1 {
		t.Fatalf("tickB -> tickA: got %+v", es)
	}
}

func TestCallGraphKeysSorted(t *testing.T) {
	_, g, _ := loadCG(t)
	keys := g.Keys()
	if len(keys) == 0 {
		t.Fatal("no nodes")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not strictly sorted at %d: %q >= %q", i, keys[i-1], keys[i])
		}
	}
}

// TestFactsCycleConverges: the tickA/tickB cycle must reach a fixpoint
// with the wall-clock fact on both functions, witness chains included.
func TestFactsCycleConverges(t *testing.T) {
	pkg, _, _ := loadCG(t)
	b := NewFactBase()
	g := BuildCallGraph(pkg, b.taken)
	b.AddPackage(pkg, nil, g)
	if !b.HasKey("repro/fixture.tickB", FactWallClock) {
		t.Fatal("tickB missing wallclock (direct atom)")
	}
	if !b.HasKey("repro/fixture.tickA", FactWallClock) {
		t.Fatal("tickA missing wallclock (one hop through the cycle)")
	}
	via := b.funcs["repro/fixture.tickA"].via[FactWallClock]
	if !strings.Contains(via, "time.Now") {
		t.Fatalf("tickA witness %q does not reach time.Now", via)
	}
}

// TestFactsRoundTrip: Export must reproduce itself through
// ImportFacts, and malformed inputs must be rejected with positions.
func TestFactsRoundTrip(t *testing.T) {
	fset := token.NewFileSet()
	pkg, err := LoadFixture(fset, "testdata/arenaescape", "repro/fixture")
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	b := NewFactBase()
	g := BuildCallGraph(pkg, b.taken)
	b.AddPackage(pkg, nil, g)

	exp := b.Export()
	if !strings.Contains(exp, "arena\trepro/fixture.epochArena\n") {
		t.Fatalf("export missing arena tag:\n%s", exp)
	}
	if !strings.Contains(exp, "repro/fixture.epochArena.scratch\tarenamem=") {
		t.Fatalf("export missing scratch arenamem fact:\n%s", exp)
	}
	b2, err := ImportFacts(exp)
	if err != nil {
		t.Fatalf("ImportFacts: %v", err)
	}
	if exp2 := b2.Export(); exp2 != exp {
		t.Fatalf("round trip drifted:\n-- first --\n%s\n-- second --\n%s", exp, exp2)
	}

	for _, bad := range []string{
		"bogus\tx",
		"arena",
		"func\tonly-a-key",
		"func\tk\tnope=v",
		"func\tk\twallclock",
	} {
		if _, err := ImportFacts(bad); err == nil {
			t.Errorf("ImportFacts(%q): want error, got nil", bad)
		}
	}
}
