package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// The -checks parser's conformance tables, in the accept/reject style
// of internal/cliutil's profile parser tests.

func namesOf(as []*analysis.Analyzer) string {
	names := make([]string, 0, len(as))
	for _, a := range as {
		names = append(names, a.Name)
	}
	return strings.Join(names, ",")
}

func TestByNameAccepts(t *testing.T) {
	all := namesOf(analysis.Analyzers)
	cases := []struct {
		sel  string
		want string
	}{
		{"", all},                      // empty selection = whole suite
		{"walltime", "walltime"},       // single check
		{"arenaescape", "arenaescape"}, // PR 9 analyzer is selectable
		{"charging,parkwake", "charging,parkwake"},
		{"parkwake,charging", "charging,parkwake"},     // suite order, not selection order
		{"charging,charging", "charging"},              // duplicates collapse
		{" walltime , maporder ", "walltime,maporder"}, // whitespace trimmed
		{"walltime,,maporder", "walltime,maporder"},    // empty elements skipped
		{",", ""}, // only empty elements: empty (explicit) selection
	}
	for _, c := range cases {
		got, err := analysis.ByName(c.sel)
		if err != nil {
			t.Errorf("ByName(%q): unexpected error %v", c.sel, err)
			continue
		}
		if names := namesOf(got); names != c.want {
			t.Errorf("ByName(%q) = %q, want %q", c.sel, names, c.want)
		}
	}
}

func TestByNameRejects(t *testing.T) {
	cases := []string{
		"nope",              // unknown check
		"walltime,nope",     // one bad apple rejects the selection
		"Walltime",          // names are case-sensitive
		"wall time",         // no spaces inside a name
		"walltime;maporder", // comma is the only separator
		"arena-escape",      // the analyzer is arenaescape, undashed
		"-",
	}
	for _, sel := range cases {
		if got, err := analysis.ByName(sel); err == nil {
			t.Errorf("ByName(%q) = %q, want error", sel, namesOf(got))
		}
	}
}

// FuzzByName: the parser must never panic, and every successful parse
// must return a duplicate-free subsequence of the suite.
func FuzzByName(f *testing.F) {
	for _, seed := range []string{
		"", "walltime", "walltime,charging", "nope", " walltime ,", ";;;",
		"charging,charging", "arenaescape,walltime", ",",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sel string) {
		got, err := analysis.ByName(sel)
		if err != nil {
			return
		}
		idx := -1
		for _, a := range got {
			pos := -1
			for i, s := range analysis.Analyzers {
				if s == a {
					pos = i
					break
				}
			}
			if pos < 0 {
				t.Fatalf("ByName(%q) returned analyzer %q not in the suite", sel, a.Name)
			}
			if pos <= idx {
				t.Fatalf("ByName(%q) out of suite order or duplicated at %q", sel, a.Name)
			}
			idx = pos
		}
	})
}
