package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer runs over a want-annotated fixture package under
// internal/analysis/testdata. The charging and parkwake fixtures load
// under the real cluster import path because those checks scope
// themselves by package; the rest use a neutral path.
func TestWalltime(t *testing.T) {
	analysistest.Run(t, analysis.Walltime, "testdata/walltime", "repro/fixture")
}

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, analysis.GlobalRand, "testdata/globalrand", "repro/fixture")
}

func TestCharging(t *testing.T) {
	analysistest.Run(t, analysis.Charging, "testdata/charging", "repro/internal/cluster")
}

func TestParkWake(t *testing.T) {
	analysistest.Run(t, analysis.ParkWake, "testdata/parkwake", "repro/internal/cluster")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "testdata/maporder", "repro/fixture")
}

func TestBenchpool(t *testing.T) {
	analysistest.Run(t, analysis.Benchpool, "testdata/benchpool", "repro/internal/bench")
}

func TestArenaEscape(t *testing.T) {
	analysistest.Run(t, analysis.ArenaEscape, "testdata/arenaescape", "repro/fixture")
}

func TestFaultseam(t *testing.T) {
	analysistest.Run(t, analysis.Faultseam, "testdata/faultseam", "repro/internal/pipeline")
}

// TestAllowMarkers runs the marker-grammar fixture: malformed and
// unknown-check markers are findings under the "allow" pseudo-check
// and do not suppress, while a well-formed marker does.
func TestAllowMarkers(t *testing.T) {
	analysistest.Run(t, analysis.Walltime, "testdata/allow", "repro/fixture")
}
