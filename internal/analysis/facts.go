package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The facts layer.
//
// A fact is a per-function summary exported by the analysis framework
// and consumed by analyzers in any package: "this function reaches the
// wall clock", "this function may park the calling task", "this
// function returns arena-backed memory". Facts are what turn the
// per-function analyzers into interprocedural ones — wrapping a
// violation in a helper no longer hides it, because the helper's
// summary carries the violation to every call site.
//
// Facts are computed once per module, package by package in dependency
// order (a package's callees in other packages are summarized before
// it), with a fixpoint iteration inside each package so in-package
// call cycles converge. Suppression markers participate: an atom on a
// //gnnvet:allow'd line seeds no fact, so an audited exception does
// not taint its callers — the marker is the audit.
//
// Each fact carries a witness chain ("cluster.Queue.Recv → time.Now")
// so a transitive finding tells the reader the path, not just the
// verdict.

// Fact enumerates the per-function summaries the suite exchanges.
type Fact uint8

const (
	// FactWallClock: calls time.Now/Since/Sleep/... directly or
	// transitively (outside test files and allowed lines).
	FactWallClock Fact = iota
	// FactMayPark: may park the calling rank's task — calls a
	// collective, Queue.Send/Recv, Forked.Join or sim.Task.Park,
	// directly or transitively.
	FactMayPark
	// FactBlocksNative: blocks on a naked channel rendezvous (send,
	// receive, select, range-over-channel) or sync.Cond.Wait outside
	// the park/wake seam, directly or transitively.
	FactBlocksNative
	// FactCostAccessor: returns a raw cost parameter
	// (CostModel.Alpha/Beta, Topology bandwidths) unchanged —
	// arithmetic on its result is laundered charging-path arithmetic.
	FactCostAccessor
	// FactArenaMem: returns memory backed by an epoch-persistent arena
	// (a //gnnvet:arena type) — the result dies at the next reuse of
	// the arena and must not be stored anywhere that outlives it.
	FactArenaMem
	numFacts
)

var factNames = [numFacts]string{
	"wallclock", "maypark", "blocksnative", "costaccessor", "arenamem",
}

func (f Fact) String() string { return factNames[f] }

type funcFacts struct {
	has [numFacts]bool
	via [numFacts]string
}

// FactBase holds every summarized function in the module, keyed by
// FuncKey, plus the module's arena-tagged types and address-taken
// function registry.
type FactBase struct {
	funcs      map[string]*funcFacts
	arenaTypes map[string]bool // "pkg/path.TypeName"
	taken      addrTakenSet
}

// NewFactBase returns an empty fact base.
func NewFactBase() *FactBase {
	return &FactBase{
		funcs:      map[string]*funcFacts{},
		arenaTypes: map[string]bool{},
		taken:      addrTakenSet{},
	}
}

// Has reports whether fn carries the fact.
func (b *FactBase) Has(fn *types.Func, f Fact) bool {
	if fn == nil {
		return false
	}
	ff := b.funcs[FuncKey(fn)]
	return ff != nil && ff.has[f]
}

// Via returns the fact's witness chain for fn ("Queue.Recv →
// chan receive (queue.go:12)"), or "".
func (b *FactBase) Via(fn *types.Func, f Fact) string {
	if fn == nil {
		return ""
	}
	ff := b.funcs[FuncKey(fn)]
	if ff == nil {
		return ""
	}
	return ff.via[f]
}

// HasKey is Has by FuncKey, for callers holding graph edges.
func (b *FactBase) HasKey(key string, f Fact) bool {
	ff := b.funcs[key]
	return ff != nil && ff.has[f]
}

// IsArenaType reports whether t (after pointer indirection) is a
// //gnnvet:arena-tagged named type.
func (b *FactBase) IsArenaType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return b.arenaTypes[obj.Pkg().Path()+"."+obj.Name()]
}

func (b *FactBase) facts(key string) *funcFacts {
	ff := b.funcs[key]
	if ff == nil {
		ff = &funcFacts{}
		b.funcs[key] = ff
	}
	return ff
}

// set records a fact with its witness, returning true on change.
// The first witness wins — later, longer paths don't churn reports.
func (b *FactBase) set(key string, f Fact, via string) bool {
	ff := b.facts(key)
	if ff.has[f] {
		return false
	}
	ff.has[f] = true
	if len(via) > 160 {
		via = via[:160] + "…"
	}
	ff.via[f] = via
	return true
}

// AddPackage summarizes one package into the base: arena type tags,
// atomic facts from function bodies (respecting the package's allow
// markers), and a fixpoint propagation over the package's call graph.
// Packages must be added in dependency order.
func (b *FactBase) AddPackage(pkg *Package, allow *allowIndex, g *CallGraph) {
	b.scanArenaTypes(pkg)

	decls := map[string]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, _ := pkg.Info.Defs[fd.Name].(*types.Func); fn != nil {
				decls[FuncKey(fn)] = fd
			}
		}
	}

	// Atomic seeds: one pass, before propagation.
	for _, key := range g.Keys() {
		if fd := decls[key]; fd != nil && !isTestFile(pkg.Fset, fd) {
			b.seedAtoms(pkg, allow, key, fd)
		}
	}

	// Fixpoint: edge propagation plus the return-shape facts
	// (costaccessor, arenamem), which re-examine return statements as
	// their callees gain facts. In-package cycles converge here;
	// cross-package cycles cannot exist (imports form a DAG).
	for changed := true; changed; {
		changed = false
		for _, key := range g.Keys() {
			node := g.Node(key)
			for _, e := range node.Edges {
				cf := b.funcs[e.Callee]
				if cf == nil {
					continue
				}
				for _, f := range [...]Fact{FactWallClock, FactMayPark, FactBlocksNative} {
					if !cf.has[f] {
						continue
					}
					// A call site under the fact's own //gnnvet:allow is
					// audited like an allowed atom: the taint stops there
					// instead of spreading to this function's callers.
					if c := factAllowCheck(f); c != "" && allow != nil && allow.allowed(c, pkg.Fset, e.Pos) {
						continue
					}
					if b.set(key, f, shortKey(e.Callee)+" → "+cf.via[f]) {
						changed = true
					}
				}
			}
			fd := decls[key]
			if fd == nil || isTestFile(pkg.Fset, fd) {
				continue
			}
			if via, ok := b.costAccessorReturn(pkg, fd); ok && b.set(key, FactCostAccessor, via) {
				changed = true
			}
			if via, ok := b.arenaMemReturn(pkg, fd); ok && b.set(key, FactArenaMem, via) {
				changed = true
			}
		}
	}
}

// factAllowCheck maps a violation-carrying fact to the check whose
// allow marker audits it; facts that are context (maypark — parking is
// legal, only parking under a lock is not) propagate unconditionally.
func factAllowCheck(f Fact) string {
	switch f {
	case FactWallClock:
		return Walltime.Name
	case FactBlocksNative:
		return ParkWake.Name
	}
	return ""
}

func isTestFile(fset *token.FileSet, n ast.Node) bool {
	return strings.HasSuffix(fset.Position(n.Pos()).Filename, "_test.go")
}

// scanArenaTypes records every type declaration carrying a
// //gnnvet:arena directive (on the decl's or the spec's doc comment,
// or a trailing line comment).
func (b *FactBase) scanArenaTypes(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			declTag := hasArenaDirective(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if declTag || hasArenaDirective(ts.Doc) || hasArenaDirective(ts.Comment) {
					b.arenaTypes[pkg.Path+"."+ts.Name.Name] = true
				}
			}
		}
	}
}

func hasArenaDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "gnnvet:arena" || strings.HasPrefix(text, "gnnvet:arena ") {
			return true
		}
	}
	return false
}

// seedAtoms records the directly-observable facts of one function
// body: wall-clock calls, park calls, and naked channel blocking.
// Function literals inside the body are attributed to the declaration.
func (b *FactBase) seedAtoms(pkg *Package, allow *allowIndex, key string, fd *ast.FuncDecl) {
	filename := baseName(pkg.Fset.Position(fd.Pos()).Filename)
	nativeExempt := blocksNativeExempt(pkg.Path, filename)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pkg.Info, n)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "time" && walltimeFuncs[fn.Name()] {
				if allow == nil || !allow.allowed(Walltime.Name, pkg.Fset, n.Pos()) {
					b.set(key, FactWallClock, "time."+fn.Name())
				}
			}
			p, recv := recvTypeName(fn)
			if parkCalls[parkKey{p, recv, fn.Name()}] {
				name := fn.Name()
				if recv != "" {
					name = recv + "." + name
				}
				b.set(key, FactMayPark, name)
			}
			if !nativeExempt && isCondWait(fn) {
				if allow == nil || !allow.allowed(ParkWake.Name, pkg.Fset, n.Pos()) {
					b.set(key, FactBlocksNative, atomAt(pkg.Fset, "sync.Cond.Wait", n.Pos()))
				}
			}
		case *ast.SendStmt:
			b.seedNative(pkg, allow, key, "channel send", n.Pos(), nativeExempt)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				b.seedNative(pkg, allow, key, "channel receive", n.Pos(), nativeExempt)
			}
		case *ast.SelectStmt:
			b.seedNative(pkg, allow, key, "select", n.Pos(), nativeExempt)
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					b.seedNative(pkg, allow, key, "range over channel", n.Pos(), nativeExempt)
				}
			}
		}
		return true
	})
}

func (b *FactBase) seedNative(pkg *Package, allow *allowIndex, key, what string, pos token.Pos, exempt bool) {
	if exempt {
		return
	}
	if allow != nil && allow.allowed(ParkWake.Name, pkg.Fset, pos) {
		return
	}
	b.set(key, FactBlocksNative, atomAt(pkg.Fset, what, pos))
}

func atomAt(fset *token.FileSet, what string, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s (%s:%d)", what, baseName(p.Filename), p.Line)
}

func baseName(full string) string {
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}

// blocksNativeExempt: the layers below the park/wake seam legitimately
// use channels — the seam files in internal/cluster, the discrete-event
// scheduler, and the bench worker pool.
func blocksNativeExempt(pkgPath, filename string) bool {
	switch pkgPath {
	case clusterPath:
		return parkWakeExemptFiles[filename]
	case clusterPath + "/sim":
		return true
	case benchpoolScope:
		return filename == benchpoolSeam
	}
	return false
}

// isCondWait reports sync.Cond.Wait (sync.WaitGroup.Wait is NOT a
// blocksnative atom: compute fan-out below the simulation — the SpGEMM
// worker pool, the bench pool — joins plain worker goroutines with a
// WaitGroup, which completes without scheduler help).
func isCondWait(fn *types.Func) bool {
	if fn.Name() != "Wait" {
		return false
	}
	pkg, recv := recvTypeName(fn)
	return pkg == "sync" && recv == "Cond"
}

// costAccessorReturn reports whether fd returns a raw cost parameter:
// a return whose expression is (through parens and indexing) a
// protected CostModel/Topology field selector, or a call to a function
// already known to be a cost accessor.
func (b *FactBase) costAccessorReturn(pkg *Package, fd *ast.FuncDecl) (string, bool) {
	for _, ret := range outerReturns(fd.Body) {
		for _, res := range ret.Results {
			e := unwrapExpr(res)
			if sel, ok := e.(*ast.SelectorExpr); ok {
				if owner, ok := costParamSelector(pkg.Info, sel); ok {
					return owner + "." + sel.Sel.Name, true
				}
			}
			if call, ok := e.(*ast.CallExpr); ok {
				if fn := calleeFunc(pkg.Info, call); fn != nil && b.Has(fn, FactCostAccessor) {
					return shortKey(FuncKey(fn)) + " → " + b.Via(fn, FactCostAccessor), true
				}
			}
		}
	}
	return "", false
}

// arenaMemReturn reports whether fd returns arena-backed memory: a
// return whose expression is tainted under the arena dataflow of
// arenaescape.go (selectors on //gnnvet:arena types, calls to
// FactArenaMem functions, and locals derived from either).
func (b *FactBase) arenaMemReturn(pkg *Package, fd *ast.FuncDecl) (string, bool) {
	tw := newTaintWalk(pkg, b)
	via, found := "", false
	tw.walk(fd.Body, func(ret *ast.ReturnStmt) {
		if found {
			return
		}
		for _, res := range ret.Results {
			if tw.tainted(res) {
				via, found = atomAt(pkg.Fset, "returns arena-backed memory", ret.Pos()), true
				return
			}
		}
	}, nil)
	return via, found
}

// costParamSelector reports whether sel reads a protected cost
// parameter (CostModel.Alpha/Beta, Topology bandwidths) and which type
// owns it — shared by the charging analyzer and the accessor fact.
func costParamSelector(info *types.Info, sel *ast.SelectorExpr) (owner string, ok bool) {
	for name, fs := range chargingFields {
		if fs[sel.Sel.Name] {
			if tv, found := info.Types[sel.X]; found && namedIn(tv.Type, clusterPath, name) {
				return name, true
			}
		}
	}
	return "", false
}

// unwrapExpr strips parens and index wrappers: (m.Alpha), alpha[i].
func unwrapExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return e
		}
	}
}

// outerReturns collects the return statements belonging to the body
// itself, excluding those inside nested function literals (a
// closure's return is not the function's).
func outerReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var rets []*ast.ReturnStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			rets = append(rets, n)
		}
		return true
	}
	ast.Inspect(body, walk)
	return rets
}

// Export serializes the base deterministically: one line per arena
// type, one tab-separated line per function with facts. The format
// round-trips through ImportFacts — the CI SARIF artifact embeds it so
// a reviewer can see what the engine concluded.
func (b *FactBase) Export() string {
	var sb strings.Builder
	arenas := make([]string, 0, len(b.arenaTypes))
	for t := range b.arenaTypes {
		arenas = append(arenas, t)
	}
	sort.Strings(arenas)
	for _, t := range arenas {
		fmt.Fprintf(&sb, "arena\t%s\n", t)
	}
	keys := make([]string, 0, len(b.funcs))
	for k, ff := range b.funcs {
		any := false
		for _, h := range ff.has {
			any = any || h
		}
		if any {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		ff := b.funcs[k]
		sb.WriteString("func\t")
		sb.WriteString(k)
		for f := Fact(0); f < numFacts; f++ {
			if ff.has[f] {
				fmt.Fprintf(&sb, "\t%s=%s", factNames[f], ff.via[f])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ImportFacts parses an Export'd fact base. The address-taken registry
// is not serialized (it only matters during graph construction).
func ImportFacts(s string) (*FactBase, error) {
	b := NewFactBase()
	for ln, line := range strings.Split(s, "\n") {
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "arena":
			if len(fields) != 2 || fields[1] == "" {
				return nil, fmt.Errorf("facts: line %d: malformed arena entry", ln+1)
			}
			b.arenaTypes[fields[1]] = true
		case "func":
			if len(fields) < 3 || fields[1] == "" {
				return nil, fmt.Errorf("facts: line %d: malformed func entry", ln+1)
			}
			for _, fv := range fields[2:] {
				name, via, ok := strings.Cut(fv, "=")
				if !ok {
					return nil, fmt.Errorf("facts: line %d: fact without witness", ln+1)
				}
				found := false
				for f := Fact(0); f < numFacts; f++ {
					if factNames[f] == name {
						b.set(fields[1], f, via)
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("facts: line %d: unknown fact %q", ln+1, name)
				}
			}
		default:
			return nil, fmt.Errorf("facts: line %d: unknown record %q", ln+1, fields[0])
		}
	}
	return b, nil
}
