package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder catches Go's randomized map-iteration order leaking into
// results. The repo's contract is bit-identical output for a given
// config, and three leak shapes have bitten reviewers before:
// accumulating floats across a map walk (float addition does not
// commute in the last ulp), appending map entries to a slice that is
// never re-sorted, and writing formatted output directly from the
// walk. All three must iterate sorted keys instead. The one sanctioned
// unsorted walk is the collect-keys idiom itself —
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// — where the append carries exactly the key and the subsequent sort
// re-establishes order; order-independent bodies (per-key map writes,
// integer counters, min/max folds) are not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "order-sensitive map iteration (float folds, appends, direct output) must walk sorted keys",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rng)
			return true
		})
	}
	return nil
}

func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	keyID, _ := rng.Key.(*ast.Ident)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map walk is assessed on its own.
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return false
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, keyID, n)
		case *ast.CallExpr:
			if writesOutput(pass, n) {
				pass.Reportf(n.Pos(),
					"output written inside map iteration: line order follows Go's randomized map order; iterate sorted keys")
			}
		}
		return true
	})
}

// checkMapRangeAssign flags the two order-sensitive assignment shapes
// inside a map walk: float accumulation and appends that outlive the
// loop.
func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, keyID *ast.Ident, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if !isFloat(pass.TypesInfo.Types[lhs].Type) {
				continue
			}
			// Accumulating into a per-key bucket (b[k] += v with k the
			// range key) touches each target once; order cannot matter.
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isIdentUse(pass, ix.Index, keyID) {
				continue
			}
			pass.Reportf(as.Pos(),
				"float accumulation inside map iteration: float addition rounds differently per order, so the total depends on Go's randomized map order; iterate sorted keys")
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Uses[lhs]
			if obj == nil {
				obj = pass.TypesInfo.Defs[lhs]
			}
			// Appends into loop-local slices die with the iteration.
			if obj == nil || (obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End()) {
				continue
			}
			// The collect-keys idiom: appending exactly the key, to be
			// sorted after the loop.
			if len(call.Args) == 2 && isIdentUse(pass, call.Args[1], keyID) && !call.Ellipsis.IsValid() {
				continue
			}
			pass.Reportf(as.Pos(),
				"append inside map iteration: element order follows Go's randomized map order; collect and sort keys first (only `s = append(s, key)` before a sort is order-safe)")
		}
	}
}

// writesOutput reports calls that emit bytes somewhere ordered: the
// fmt printers that write (Print*/Fprint*; Sprint* is pure) and
// Write/WriteString/Encode-shaped methods (io.Writer, strings.Builder,
// json.Encoder, ...).
func writesOutput(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		name := fn.Name()
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return true
		}
	}
	return false
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isIdentUse reports whether e is a use of the same object as id.
func isIdentUse(pass *Pass, e ast.Expr, id *ast.Ident) bool {
	if id == nil {
		return false
	}
	use, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	want := pass.TypesInfo.Defs[id]
	if want == nil {
		want = pass.TypesInfo.Uses[id]
	}
	got := pass.TypesInfo.Uses[use]
	if got == nil {
		got = pass.TypesInfo.Defs[use]
	}
	return want != nil && want == got
}
