// Fixture: unlike walltime, globalrand covers _test.go files too — a
// test drawing from the shared generator is order-dependent on every
// other test.
package fix

import "math/rand"

func globalInTest() float64 {
	return rand.Float64() // want `global math/rand state: math/rand\.Float64`
}
