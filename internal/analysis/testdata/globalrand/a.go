// Fixture: the process-wide math/rand generator couples every call
// site's draws; only seeded generators are reproducible.
package fix

import "math/rand"

func sharedState(xs []int) int {
	rand.Seed(7)                           // want `global math/rand state: math/rand\.Seed`
	rand.Shuffle(len(xs), func(i, j int) { // want `global math/rand state: math/rand\.Shuffle`
		xs[i], xs[j] = xs[j], xs[i]
	})
	if rand.Intn(2) == 0 { // want `global math/rand state: math/rand\.Intn`
		return rand.Int() // want `global math/rand state: math/rand\.Int draws`
	}
	return xs[0]
}

// Seeded generators are the sanctioned path; the constructors are
// exempt by name so this function needs no marker.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// auditedGlobal shows the escape hatch for a site that genuinely wants
// the shared generator.
func auditedGlobal() int {
	//gnnvet:allow globalrand — fixture: audited shared-generator use
	return rand.Int()
}
