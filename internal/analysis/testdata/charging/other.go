// Fixture: every file off the charging path must call a charging
// helper rather than inline α–β math.
package cluster

func inlinedCharge(m CostModel, l Link, bytes int64) float64 {
	return m.Alpha[l] + float64(bytes)*m.Beta[l] // want `CostModel\.Alpha may be priced only` `CostModel\.Beta may be priced only`
}

func bandwidthMath(t *Topology) float64 {
	return t.NICBps / t.Oversub // want `Topology\.NICBps may be priced only` `Topology\.Oversub may be priced only`
}

func negated(m CostModel, l Link) float64 {
	return -m.Beta[l] // want `CostModel\.Beta may be priced only`
}

// A plain read or copy is not arithmetic.
func plainRead(m CostModel, l Link) float64 { return m.Alpha[l] }

func passAlong(t Topology) float64 { return t.NVLinkBps }

// auditedSite shows the escape hatch.
func auditedSite(m CostModel, l Link) float64 {
	//gnnvet:allow charging — fixture: audited inline cost math
	return m.Alpha[l] * 2
}
