// Fixture: a function that returns a raw cost parameter unchanged is
// a cost accessor; arithmetic on its call result is the same inlined
// α–β math, laundered through a call — and the facts layer flags it
// wherever it happens.
package cluster

// rawAlpha earns the accessor fact: a plain read in a return is not
// arithmetic, so the accessor itself is not a finding.
func rawAlpha(m CostModel, l Link) float64 { return m.Alpha[l] }

// relay launders the accessor through a second hop and inherits the
// fact.
func relay(m CostModel, l Link) float64 { return rawAlpha(m, l) }

func launderedCharge(m CostModel, l Link, bytes int64) float64 {
	return rawAlpha(m, l) * float64(bytes) // want `cost-parameter arithmetic laundered through cluster\.rawAlpha \(returns CostModel\.Alpha\)`
}

func launderedTwice(m CostModel, l Link) float64 {
	return 2 * relay(m, l) // want `laundered through cluster\.relay \(returns cluster\.rawAlpha → CostModel\.Alpha\)`
}

// Copying the result is not arithmetic.
func holdsAccessor(m CostModel, l Link) float64 { return relay(m, l) }

// auditedLaunder shows the escape hatch.
func auditedLaunder(m CostModel, l Link) float64 {
	//gnnvet:allow charging — fixture: audited laundered cost math
	return rawAlpha(m, l) * 2
}
