// Fixture: costmodel.go is on the charging path — α–β arithmetic here
// is the point and is never flagged. The type stubs mirror the real
// package's shapes (the analyzer matches by package path + type name +
// field name).
package cluster

// Link indexes the fixture's link tiers.
type Link int

// CostModel mirrors the real α–β table.
type CostModel struct {
	Alpha [2]float64
	Beta  [2]float64
}

// Topology mirrors the real physical-link bandwidths.
type Topology struct {
	NVLinkBps float64
	NICBps    float64
	PCIeBps   float64
	Oversub   float64
}

func (m CostModel) wireTime(l Link, bytes int64) float64 {
	return m.Alpha[l] + float64(bytes)*m.Beta[l]
}
