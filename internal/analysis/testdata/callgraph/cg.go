// Fixture for the call-graph and facts unit tests: direct edges,
// a devirtualized method edge, a conservative func-value edge, and a
// two-function cycle whose wall-clock atom must converge under the
// fixpoint.
package fix

import "time"

func leaf() {}

func caller() { leaf() }

type T struct{}

func (T) M() {}

func methodCall(t T) { t.M() }

// indirect calls through a function value: the conservative edge goes
// to every address-taken function with a matching signature.
func indirect(f func()) { f() }

// takesAddress puts leaf in the address-taken set (argument position
// is not call position).
func takesAddress() { indirect(leaf) }

// tickA and tickB form a cycle; tickB holds the atom, and propagation
// must reach tickA without spinning.
func tickA() time.Time { return tickB() }

func tickB() time.Time {
	tickA()
	return time.Now()
}
