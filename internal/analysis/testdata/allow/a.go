// Fixture: the suppression-marker grammar itself. A marker without a
// reason, or naming a check that does not exist, is a finding — and it
// suppresses nothing, so the underlying finding survives too.
package fix

import "time"

func missingReason() time.Time {
	//gnnvet:allow walltime // want `malformed gnnvet:allow marker`
	return time.Now() // want `wall clock in simulated-time code`
}

func missingSeparator() time.Time {
	//gnnvet:allow walltime because the dash separator is mandatory // want `malformed gnnvet:allow marker`
	return time.Now() // want `wall clock in simulated-time code`
}

func unknownCheck() time.Time {
	//gnnvet:allow wallclock — fixture: typo'd check name // want `unknown check "wallclock"`
	return time.Now() // want `wall clock in simulated-time code`
}

// A well-formed marker still suppresses here, proving the fixture
// exercises the same filter gnnvet uses.
func wellFormed() time.Time {
	//gnnvet:allow walltime — fixture: well-formed marker, finding suppressed
	return time.Now()
}
