// Fixture: simulated-time code must not read the wall clock.
package fix

import "time"

// simLoop stands in for simulator code, where a wall-clock read makes
// the run a function of the machine instead of the config.
func simLoop() time.Duration {
	t0 := time.Now()             // want `wall clock in simulated-time code: time\.Now`
	time.Sleep(time.Millisecond) // want `wall clock in simulated-time code: time\.Sleep`
	return time.Since(t0)        // want `wall clock in simulated-time code: time\.Since`
}

// measured is the audited exception: a marker naming the check and a
// reason silences the finding on its own line and the line below.
func measured() time.Duration {
	//gnnvet:allow walltime — fixture: harness wall-timing, measuring the real clock is the point
	t0 := time.Now()
	d := time.Since(t0) //gnnvet:allow walltime — fixture: trailing-marker form
	return d
}

// Constructing time values is not a clock read.
func epoch() time.Time { return time.Unix(0, 0) }
