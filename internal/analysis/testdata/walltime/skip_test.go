// Fixture: walltime skips _test.go files — tests and benchmarks may
// time themselves.
package fix

import "time"

func wallInTest() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
