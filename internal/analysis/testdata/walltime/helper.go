// Fixture: the facts layer carries a wall-clock read across function
// and file boundaries — wrapping time.Now in a helper (this file) no
// longer hides it from callers (here and in a.go's neighborhood).
package fix

import "time"

// stamp wraps the clock read: the atom is flagged here, and the
// function's summary taints every caller.
func stamp() time.Time {
	return time.Now() // want `wall clock in simulated-time code: time\.Now`
}

// oneDeep was invisible to the per-function analyzer — no time.* call
// in sight — yet it reaches the wall clock.
func oneDeep() time.Time {
	return stamp() // want `call reaches the wall clock: fixture\.stamp → time\.Now`
}

// twoDeep shows the witness chain growing one hop per level.
func twoDeep() time.Time {
	return oneDeep() // want `call reaches the wall clock: fixture\.oneDeep → fixture\.stamp → time\.Now`
}

// callsMeasured is clean: measured's atoms (a.go) sit under audited
// markers, so its summary carries no taint — the marker is the audit.
func callsMeasured() time.Duration { return measured() }

// auditedCaller audits the transitive finding at the call site; the
// taint stops here rather than spreading to auditedCaller's callers.
func auditedCaller() time.Time {
	//gnnvet:allow walltime — fixture: wrapper audited where the helper is invoked
	return stamp()
}

// callsAuditedCaller is therefore clean.
func callsAuditedCaller() time.Time { return auditedCaller() }
