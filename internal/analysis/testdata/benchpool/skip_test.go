// Fixture: benchpool skips _test.go files — tests may orchestrate
// concurrency to probe the pool itself.
package bench

func chanInTest() {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
	<-ch
}
