// Fixture: pool.go is the audited concurrency seam — its goroutines
// and synchronization are the implementation every experiment is
// steered toward, so the file is exempt wholesale.
package bench

import (
	"sync"
	"sync/atomic"
)

func runCells(n, workers int, fn func(cell int) error) []error {
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return errs
}
