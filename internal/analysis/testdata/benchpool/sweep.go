// Fixture: bench-harness code must not hand-roll concurrency — the
// worker pool (pool.go) is the package's one concurrency seam, and
// experiments reach it through runCells.
package bench

func handRolledFanOut(cells []int) []int {
	results := make(chan int, len(cells)) // want `channel type outside the pool seam`
	for range cells {
		go func() { // want `goroutine outside the pool seam`
			results <- 1 // want `channel send outside the pool seam`
		}()
	}
	out := make([]int, 0, len(cells))
	for range cells {
		out = append(out, <-results) // want `channel receive outside the pool seam`
	}
	return out
}

func drain(ch chan int) int { // want `channel type outside the pool seam`
	total := 0
	for v := range ch { // want `range over a channel outside the pool seam`
		total += v
	}
	select { // want `select outside the pool seam`
	default:
	}
	return total
}

// The steered-toward shape: enumerate cells, let the pool run them.
func pooledSweep(n int) []error {
	return runCells(n, 4, func(cell int) error { return nil })
}

// An audited exception outside the seam carries a marker.
func auditedSpawn(done func()) {
	go done() //gnnvet:allow benchpool — fixture: trailing-marker form
}
