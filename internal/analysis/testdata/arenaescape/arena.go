// Fixture: an epoch arena in the shape of PR 8's stageArena / sparse
// Scratch. The //gnnvet:arena directive marks the type; the facts
// layer then summarizes scratch() as returning arena-backed memory,
// and escape.go's stores are judged against that summary across the
// file boundary.
package fix

//gnnvet:arena
type epochArena struct {
	ints []int
}

// scratch hands out arena-backed memory: that is the FactArenaMem
// summary, not a finding — returning it is how an arena works.
func (a *epochArena) scratch(n int) []int {
	if cap(a.ints) < n {
		a.ints = make([]int, n)
	}
	return a.ints[:n]
}

// Reset recycles the arena for the next epoch; stores into the arena's
// own fields are its bookkeeping, never an escape.
func (a *epochArena) Reset() { a.ints = a.ints[:0] }
