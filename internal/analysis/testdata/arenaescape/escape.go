// Fixture: arena-backed buffers must die with the epoch. Using one
// within the epoch — or copying it out — is clean; storing it into a
// field, global or capture that outlives Reset is a use-after-reuse
// bug the race detector cannot see.
package fix

// result is a long-lived output record (owned by the caller).
type result struct {
	ids []int
}

var lastIDs []int

// withinEpoch is the clean half: the buffer is consumed inside the
// epoch, and what escapes is an explicit copy that owns its backing.
func withinEpoch(a *epochArena, out *result) int {
	buf := a.scratch(8)
	sum := 0
	for _, v := range buf {
		sum += v
	}
	out.ids = append([]int(nil), buf...)
	return sum
}

// fieldEscape stores the buffer into a field that outlives Reset —
// the next epoch rewrites out.ids behind the caller's back.
func fieldEscape(a *epochArena, out *result) {
	buf := a.scratch(8)
	out.ids = buf // want `arena-backed memory stored into a field of out, which the caller owns beyond this epoch`
}

// directFieldEscape does it without the intermediate local; the
// report names the summarized accessor as the witness.
func directFieldEscape(a *epochArena, out *result) {
	out.ids = a.scratch(8) // want `stored into a field of out, which the caller owns beyond this epoch.*fixture\.epochArena\.scratch returns arena-backed memory`
}

// globalEscape parks the buffer in a package variable.
func globalEscape(a *epochArena) {
	lastIDs = a.scratch(8) // want `arena-backed memory stored into package-level lastIDs`
}

var deferred func() int

// closureEscape smuggles the buffer out through a capture.
func closureEscape(a *epochArena) {
	buf := a.scratch(8)
	deferred = func() int { return len(buf) } // want `closure capturing arena-backed buf escapes the epoch`
}

// valueReceiver is clean: storing into a field of a by-value struct
// dies with the frame.
func valueReceiver(a *epochArena, out result) {
	out.ids = a.scratch(8)
}

// auditedEscape shows the escape hatch: the marker is the audit.
func auditedEscape(a *epochArena, out *result) {
	//gnnvet:allow arenaescape — fixture: caller consumes out before the next epoch by contract
	out.ids = a.scratch(8)
}
