// Fixture: Go randomizes map-iteration order, so order-sensitive loop
// bodies — float folds, appends that outlive the loop, direct output —
// must walk sorted keys instead.
package fix

import (
	"fmt"
	"os"
	"sort"
)

func floatFold(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `float accumulation inside map iteration`
	}
	return sum
}

func unsortedAppend(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append inside map iteration`
	}
	return out
}

func directOutput(m map[string]int) {
	for k := range m {
		fmt.Fprintln(os.Stdout, k) // want `output written inside map iteration`
	}
}

// collectAndSort is the sanctioned idiom: the append carries exactly
// the range key and the sort after the loop re-establishes order.
func collectAndSort(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// Order-independent bodies are fine: integer addition commutes
// exactly, and a per-key bucket is written once per key.
func counters(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func perKeyBucket(m map[string]float64, buckets map[string]float64) {
	for k, v := range m {
		buckets[k] += v
	}
}

// auditedDump shows the escape hatch for output whose order is
// acknowledged cosmetic.
func auditedDump(m map[string]int) {
	for k := range m {
		//gnnvet:allow maporder — fixture: debug dump, order acknowledged cosmetic
		fmt.Fprintln(os.Stdout, k)
	}
}
