// Fixture: type stubs mirroring the real fault-seam value types in
// repro/internal/cluster (the analyzer matches named types by name, so
// the stubs carry the real names). The fixture package loads as
// repro/internal/pipeline — a package outside the seam.
package pipeline

// FaultPlan mirrors cluster.FaultPlan.
type FaultPlan struct {
	Failures []Failure
}

// Failure mirrors cluster.Failure.
type Failure struct {
	Rank int
	At   float64
}

// RankFailure mirrors cluster.RankFailure.
type RankFailure struct {
	Rank int
	At   float64
}

// CostModel carries the seam field, like cluster.CostModel.
type CostModel struct {
	Faults *FaultPlan
}
