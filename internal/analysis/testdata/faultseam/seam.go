// Fixture: fault-injection plan construction outside the seam
// packages. Hand-rolled FaultPlan/Failure literals bypass Validate and
// the sweep conventions; a synthesized RankFailure forges the recovery
// contract's root-cause error. Passing plans along (field reads,
// assignments of existing values) is fine — only construction is
// confined.
package pipeline

func handRolledPlan() *FaultPlan {
	return &FaultPlan{ // want `fault-injection value FaultPlan constructed outside the FaultPlan seam: build plans with resilience\.FailAt / resilience\.Plan / resilience\.RandomPlan \(or cliutil\.ParseFaults for flag input\)`
		Failures: []Failure{{Rank: 1, At: 0.5}}, // want `fault-injection value Failure constructed outside the FaultPlan seam: build entries with resilience\.Failure`
	}
}

func forgedFailure() *RankFailure {
	return &RankFailure{Rank: 0, At: 1} // want `fault-injection value RankFailure constructed outside the FaultPlan seam: RankFailure is produced by the cluster's fail-stop machinery only; synthesizing one forges the recovery contract's root-cause error`
}

func valueForm() Failure {
	return Failure{Rank: 2, At: 1.5} // want `fault-injection value Failure constructed outside the FaultPlan seam: build entries with resilience\.Failure`
}

// passingThrough moves an existing plan between models without
// constructing anything: the seam's intended use.
func passingThrough(m *CostModel, plan *FaultPlan) {
	m.Faults = plan
}

// zeroModel constructs an unrelated literal; only the three seam types
// are confined.
func zeroModel() CostModel {
	return CostModel{}
}

// audited shows the escape hatch.
func audited() *FaultPlan {
	//gnnvet:allow faultseam — fixture: audited hand-rolled plan
	return &FaultPlan{}
}
