// Fixture: the facts layer sees through helpers — a naked block or a
// park-capable call one level down is as fatal to the DES backend as
// an inline one.
package cluster

import "sync"

// blockingHelper holds the atom: flagged here, and its summary taints
// every caller.
func blockingHelper(ch chan int) int {
	return <-ch // want `naked channel receive`
}

// callsBlockingHelper has no channel in sight, yet hangs the DES
// backend just the same.
func callsBlockingHelper(ch chan int) int {
	return blockingHelper(ch) // want `call blocks outside the scheduler: cluster\.blockingHelper → channel receive`
}

// rendezvous reaches the collective park one call down.
func rendezvous() { Barrier() }

type cache struct{ mu sync.Mutex }

// lockedTransitivePark is the pattern the per-function analyzer
// missed: no park call in sight while the mutex is held, but the
// helper reaches one.
func (c *cache) lockedTransitivePark() {
	c.mu.Lock()
	rendezvous() // want `cluster\.rendezvous \(→ Barrier\) may park the rank while c\.mu is locked`
	c.mu.Unlock()
}

// unlockedTransitivePark is clean: parking without a lock held is the
// design, however many calls deep.
func unlockedTransitivePark() { rendezvous() }

// auditedTransitive audits the native block at the call site — the
// finding is suppressed and the taint stops here, so callers of this
// wrapper stay clean.
func auditedTransitive(ch chan int) int {
	//gnnvet:allow parkwake — fixture: audited native block below the simulated clock
	return blockingHelper(ch)
}

func callsAuditedTransitive(ch chan int) int { return auditedTransitive(ch) }
