// Fixture: queue.go is the park/wake seam — its channel use is the
// implementation everything above it is steered toward, so the file is
// exempt. The stubs also give the fixture park-capable callees: the
// analyzer recognizes Queue.Send/Recv and Barrier by name in this
// package path.
package cluster

// Queue stubs the backend-neutral queue.
type Queue struct{ ch chan int }

func (q *Queue) Send(v int) { q.ch <- v }
func (q *Queue) Recv() int  { return <-q.ch }

// Barrier stubs the collective rendezvous.
func Barrier() {}
