// Fixture: cluster-driven code runs on rank timelines; under the DES
// backend exactly one task is runnable, so any block that bypasses the
// scheduler's park/wake hangs the simulation.
package cluster

import (
	"sync"
	"time"
)

func nakedChannel(ch chan int) int {
	ch <- 1     // want `naked channel send`
	return <-ch // want `naked channel receive`
}

func rawSpawn() {
	go func() {}() // want `raw goroutine spawn`
}

func waitGroupJoin(wg *sync.WaitGroup) {
	wg.Wait() // want `sync\.WaitGroup\.Wait blocks outside the scheduler`
}

func osSleep() {
	time.Sleep(time.Microsecond) // want `time\.Sleep blocks the OS thread`
}

func selectWait(ch chan int) {
	select { // want `select blocks outside the scheduler`
	case <-ch: // want `naked channel receive`
	}
}

func drain(ch chan int) int {
	n := 0
	for v := range ch { // want `ranging over a channel`
		n += v
	}
	return n
}

type registry struct {
	mu sync.Mutex
	q  Queue
}

func (g *registry) lockedPark() int {
	g.mu.Lock()
	v := g.q.Recv() // want `Recv may park the rank while g\.mu is locked:`
	g.mu.Unlock()
	return v
}

func (g *registry) deferredPark() {
	g.mu.Lock()
	defer g.mu.Unlock()
	// The lexical tracker sees both the outstanding Lock and the
	// deferred Unlock, so the park site reports twice.
	Barrier() // want `Barrier may park the rank while g\.mu is locked:` `deferred Unlock holds it to return`
}

func (g *registry) unlockThenPark() int {
	g.mu.Lock()
	g.mu.Unlock()
	return g.q.Recv() // lock released before blocking: fine
}

// auditedJoin shows the escape hatch for driver-level code that runs
// outside simulated time.
func auditedJoin(wg *sync.WaitGroup) {
	//gnnvet:allow parkwake — fixture: driver-level join below the simulated clock
	wg.Wait()
}
