package analysis

import (
	"go/ast"
	"go/token"
)

// Charging protects the single charging path PRs 3 and 4 fought for:
// inside internal/cluster, the α–β parameters (CostModel.Alpha/Beta)
// and the physical link bandwidths (Topology.*Bps, Oversub) may enter
// arithmetic only in collectives.go (chargeCollective and the cost
// constructors), contention.go (the fair-share ledger) and
// costmodel.go (the model's own helpers). Before PR 3 the repo had
// eight inlined α+β·bytes sites; every one was a place a future cost
// change could silently miss. This analyzer keeps them from growing
// back: any other file wanting a transfer time must call a charging
// helper, not reprice the wire itself.
var Charging = &Analyzer{
	Name: "charging",
	Doc:  "cost-parameter arithmetic only in collectives.go/contention.go/costmodel.go",
	Run:  runCharging,
}

const clusterPath = "repro/internal/cluster"

var chargingExemptFiles = map[string]bool{
	"collectives.go": true,
	"contention.go":  true,
	"costmodel.go":   true,
}

// chargingFields maps an owning type (in internal/cluster) to its
// protected cost-parameter fields.
var chargingFields = map[string]map[string]bool{
	"CostModel": {"Alpha": true, "Beta": true},
	"Topology":  {"NVLinkBps": true, "NICBps": true, "PCIeBps": true, "Oversub": true},
}

func runCharging(pass *Pass) error {
	inCluster := pass.Pkg != nil && pass.Pkg.Path() == clusterPath
	WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Direct reads of protected fields only exist inside the
			// cluster package (the fields are unexported consumers of
			// exported params; other packages hold them by value too) —
			// the field-level rule stays scoped there.
			if !inCluster || pass.IsTestFile(n) || chargingExemptFiles[pass.Filename(n)] {
				return true
			}
			sel := n
			owner, fields := "", map[string]bool(nil)
			for name, fs := range chargingFields {
				if fs[sel.Sel.Name] {
					owner, fields = name, fs
					break
				}
			}
			if fields == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sel.X]
			if !ok || !namedIn(tv.Type, clusterPath, owner) {
				return true
			}
			if inArithmetic(stack) {
				pass.Reportf(sel.Pos(),
					"cost-parameter arithmetic outside the charging path: %s.%s may be priced only in collectives.go/contention.go/costmodel.go — call a charging helper instead of inlining α–β math",
					owner, sel.Sel.Name)
			}
		case *ast.CallExpr:
			// Transitive, module-wide: arithmetic on the result of a
			// function summarized as returning a raw cost parameter is
			// the same inlined α–β math, laundered through a call.
			if pass.Facts == nil || pass.IsTestFile(n) {
				return true
			}
			if inCluster && chargingExemptFiles[pass.Filename(n)] {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, n)
			if fn != nil && pass.Facts.Has(fn, FactCostAccessor) && inArithmetic(stack) {
				pass.Reportf(n.Pos(),
					"cost-parameter arithmetic laundered through %s (returns %s): pricing belongs in collectives.go/contention.go/costmodel.go — call a charging helper instead",
					shortKey(FuncKey(fn)), pass.Facts.Via(fn, FactCostAccessor))
			}
		}
		return true
	})
	return nil
}

// inArithmetic reports whether the innermost non-wrapper ancestor uses
// the node as an arithmetic operand: a +-*/ binary expression, an
// arithmetic compound assignment, or unary minus. Index and paren
// wrappers (Alpha[link]) are looked through; plain reads, copies and
// argument passing are not arithmetic.
func inArithmetic(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.IndexExpr:
			continue
		case *ast.BinaryExpr:
			switch p.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				return true
			}
			return false
		case *ast.UnaryExpr:
			return p.Op == token.SUB
		case *ast.AssignStmt:
			switch p.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				return true
			}
			return false
		default:
			return false
		}
	}
	return false
}
